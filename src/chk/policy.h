// Checked atomics policy: plugs the chk::* instrumented primitives into the
// policy seam the production lock-free structures are templatized over
// (common/atomics_policy.h). shm::BasicSpscQueue<T, CheckedPolicy> etc. is
// the SAME source that ships, executed under the model checker.
#pragma once

#include <algorithm>
#include <cstring>
#include <mutex>

#include "chk/atomic.h"

namespace oaf::chk {

struct CheckedPolicy {
  static constexpr bool kChecked = true;

  template <typename T>
  using atomic = chk::atomic<T>;

  template <typename T>
  using var = chk::var<T>;

  using mutex = chk::mutex;
  /// Scoped guard matching StdAtomicsPolicy::lock; chk::mutex is annotated
  /// as a capability so the same GUARDED_BY contracts hold under the checker.
  using lock = std::lock_guard<chk::mutex>;

  static void fence(std::memory_order mo) { thread_fence(mo); }

  /// Word-wise copy where each destination word is lazily promoted to a
  /// relaxed-atomic location in the engine. This models the copy the way the
  /// C++ memory model requires a seqlock's data words to be modelled
  /// (relaxed atomics): a concurrent overwriter can land mid-copy (torn
  /// payloads), individual word loads can return stale values, and — the
  /// part plain bytes cannot express — fence pairing through the data words
  /// works, so a correctly fenced sequence-validation protocol around the
  /// copy passes while a mis-fenced one is caught. Exempt from the race
  /// detector by design: tearing here is the documented benign race the
  /// surrounding protocol must mask.
  template <typename T>
  static void torn_copy(T& dst, const T& src) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto* d = reinterpret_cast<unsigned char*>(&dst);
    const auto* s = reinterpret_cast<const unsigned char*>(&src);
    Execution* e = Execution::current();
    for (size_t off = 0; off < sizeof(T); off += 8) {
      const size_t n = std::min<size_t>(8, sizeof(T) - off);
      u64 w = 0;
      std::memcpy(&w, s + off, n);
      if (e != nullptr) {
        u64 cur = 0;
        std::memcpy(&cur, d + off, n);
        e->atomic_store(e->locate_atomic(d + off, cur, "torn"), w,
                        std::memory_order_relaxed);
      }
      std::memcpy(d + off, &w, n);
    }
  }
  template <typename T>
  static T torn_read(const T& src) {
    static_assert(std::is_trivially_copyable_v<T>);
    T out{};
    auto* d = reinterpret_cast<unsigned char*>(&out);
    // The engine's store history is authoritative for the value read: a
    // word may come back stale, exactly like a relaxed load on hardware.
    const auto* s = reinterpret_cast<const unsigned char*>(&src);
    Execution* e = Execution::current();
    for (size_t off = 0; off < sizeof(T); off += 8) {
      const size_t n = std::min<size_t>(8, sizeof(T) - off);
      u64 w = 0;
      std::memcpy(&w, s + off, n);
      if (e != nullptr) {
        w = e->atomic_load(
            e->locate_atomic(const_cast<unsigned char*>(s) + off, w, "torn"),
            std::memory_order_relaxed);
      }
      std::memcpy(d + off, &w, n);
    }
    return out;
  }
};

}  // namespace oaf::chk

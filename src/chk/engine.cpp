#include "chk/engine.h"

#include <cstdio>

namespace oaf::chk {

namespace {

Execution* g_current = nullptr;

constexpr size_t kFiberStackBytes = 256 * 1024;

bool is_acquire(std::memory_order mo) {
  return mo == std::memory_order_acquire || mo == std::memory_order_consume ||
         mo == std::memory_order_acq_rel || mo == std::memory_order_seq_cst;
}
bool is_release(std::memory_order mo) {
  return mo == std::memory_order_release || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst;
}

const char* mo_name(std::memory_order mo) {
  switch (mo) {
    case std::memory_order_relaxed: return "rlx";
    case std::memory_order_consume: return "cns";
    case std::memory_order_acquire: return "acq";
    case std::memory_order_release: return "rel";
    case std::memory_order_acq_rel: return "a/r";
    case std::memory_order_seq_cst: return "sc";
  }
  return "?";
}

}  // namespace

// ---------------------------------------------------------------- Explorer

Explorer::Explorer(Mode mode, u64 seed, std::vector<u32> replay)
    : mode_(mode),
      rng_state_(seed != 0 ? seed : 0x9e3779b97f4a7c15ULL),
      replay_(std::move(replay)) {}

u64 Explorer::next_random() {
  rng_state_ += 0x9e3779b97f4a7c15ULL;
  u64 z = rng_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

u32 Explorer::choose(u32 n) {
  if (n <= 1) return 0;  // not a real choice; keep sequences short
  u32 c = 0;
  switch (mode_) {
    case Mode::kDfs:
      if (pos_ < path_.size()) {
        c = path_[pos_].chosen;  // replaying the prefix of this DFS branch
      } else {
        path_.push_back(Node{0, n});
      }
      pos_++;
      break;
    case Mode::kRandom:
      c = static_cast<u32>(next_random() % n);
      break;
    case Mode::kReplay:
      c = pos_ < replay_.size() ? replay_[pos_] : 0;
      if (c >= n) c = 0;
      pos_++;
      break;
  }
  taken_.push_back(c);
  return c;
}

void Explorer::begin_execution() {
  pos_ = 0;
  taken_.clear();
}

bool Explorer::advance() {
  switch (mode_) {
    case Mode::kRandom:
      return true;
    case Mode::kReplay:
      return false;
    case Mode::kDfs:
      while (!path_.empty()) {
        if (path_.back().chosen + 1 < path_.back().arity) {
          path_.back().chosen++;
          return true;
        }
        path_.pop_back();
      }
      return false;
  }
  return false;
}

// --------------------------------------------------------------- Execution

Execution::Execution(Explorer* explorer, u32 n_threads, i32 preemption_bound)
    : explorer_(explorer),
      n_threads_(n_threads),
      preemption_bound_(preemption_bound) {
  if (n_threads_ > kMaxThreads) n_threads_ = kMaxThreads;
}

Execution::~Execution() {
  if (g_current == this) g_current = nullptr;
}

Execution* Execution::current() { return g_current; }

void Execution::trampoline() {
  Execution* e = g_current;
  e->fiber_main(e->current_);
  // Returning resumes main_ctx_ via uc_link.
}

void Execution::fiber_main(u32 tid) {
  try {
    hooks_->body(tid);
  } catch (const ModelFailure& f) {
    if (!failed_) {
      failed_ = true;
      failure_ = f.message;
    }
  } catch (const AbortExecution&) {
    // Unwound after a failure elsewhere; nothing to record.
  } catch (const std::exception& e) {
    if (!failed_) {
      failed_ = true;
      failure_ = std::string("uncaught exception in model thread: ") + e.what();
    }
  } catch (...) {
    if (!failed_) {
      failed_ = true;
      failure_ = "uncaught exception in model thread";
    }
  }
  threads_[tid].state = ThreadState::kFinished;
}

void Execution::run(const Hooks& hooks) {
  hooks_ = &hooks;
  g_current = this;
  explorer_->begin_execution();
  current_ = kMainSlot;

  try {
    hooks.setup();
  } catch (const ModelFailure& f) {
    failed_ = true;
    failure_ = f.message;
  }

  if (!failed_) {
    // Spawn fibers: each inherits the setup clock (everything setup did
    // happens-before every thread) plus a tick in its own slot.
    for (u32 t = 0; t < n_threads_; ++t) {
      Thread& th = threads_[t];
      th.state = ThreadState::kRunnable;
      th.clock = threads_[kMainSlot].clock;
      th.clock.c[t]++;
      th.stack.resize(kFiberStackBytes);
      getcontext(&th.ctx);
      th.ctx.uc_stack.ss_sp = th.stack.data();
      th.ctx.uc_stack.ss_size = th.stack.size();
      th.ctx.uc_link = &main_ctx_;
      makecontext(&th.ctx, reinterpret_cast<void (*)()>(&trampoline), 0);
    }
    // Eagerly advance every thread to its first instrumented operation:
    // the code before it is thread-local, so this costs no coverage and
    // removes n! redundant "who starts first" schedules from the DFS.
    for (u32 t = 0; t < n_threads_; ++t) resume(t);

    while (!failed_) {
      bool any_unfinished = false;
      bool any_runnable = false;
      for (u32 t = 0; t < n_threads_; ++t) {
        if (threads_[t].state == ThreadState::kFinished) continue;
        any_unfinished = true;
        if (threads_[t].state == ThreadState::kRunnable) any_runnable = true;
      }
      if (!any_unfinished) break;
      if (!any_runnable) {
        failed_ = true;
        failure_ = "deadlock: every live thread is blocked on a chk::mutex";
        break;
      }
      resume(pick_next());
    }
    abort_remaining();
  }

  current_ = kMainSlot;
  for (u32 t = 0; t < n_threads_; ++t) {
    threads_[kMainSlot].clock.join(threads_[t].clock);
  }
  if (!failed_) {
    try {
      hooks.finish();
    } catch (const ModelFailure& f) {
      failed_ = true;
      failure_ = f.message;
    }
  }
  hooks.teardown();
  current_ = kNoThread;
  g_current = nullptr;
  hooks_ = nullptr;
}

void Execution::abort_remaining() {
  abort_ = true;
  for (u32 t = 0; t < n_threads_; ++t) {
    while (threads_[t].state != ThreadState::kFinished) resume(t);
  }
  abort_ = false;
}

void Execution::resume(u32 tid) {
  current_ = tid;
  swapcontext(&main_ctx_, &threads_[tid].ctx);
  current_ = kNoThread;
}

void Execution::yield_to_main() {
  const u32 self = current_;
  swapcontext(&threads_[self].ctx, &main_ctx_);
  if (abort_) throw AbortExecution{};
}

void Execution::sched_point() {
  if (!in_fiber() || abort_) return;
  yield_to_main();
}

void Execution::interleave_point() { sched_point(); }

u32 Execution::pick_next() {
  // Candidates ordered with the previously running thread first, so the
  // DFS explores the preemption-free continuation before any switch.
  u32 cand[kMaxThreads] = {};
  u32 n = 0;
  const bool prev_runnable =
      last_running_ != kNoThread &&
      threads_[last_running_].state == ThreadState::kRunnable;
  const bool budget_left =
      preemption_bound_ < 0 || preemptions_ < preemption_bound_;
  if (prev_runnable) cand[n++] = last_running_;
  if (!prev_runnable || budget_left) {
    for (u32 t = 0; t < n_threads_; ++t) {
      if (t == last_running_) continue;
      if (threads_[t].state == ThreadState::kRunnable) cand[n++] = t;
    }
  }
  const u32 pick = cand[explorer_->choose(n)];
  if (prev_runnable && pick != last_running_) preemptions_++;
  last_running_ = pick;
  return pick;
}

// ------------------------------------------------------------ registration

u32 Execution::register_atomic(void* addr, u64 init, const char* name) {
  auto it = atomic_ids_.find(addr);
  u32 id = 0;
  if (it != atomic_ids_.end()) {
    id = it->second;  // re-constructed in place (e.g. ring re-format)
  } else {
    id = static_cast<u32>(atomics_.size());
    atomics_.push_back(AtomicLoc{});
    atomics_[id].name = name;
    atomic_ids_.emplace(addr, id);
  }
  AtomicLoc& loc = atomics_[id];
  StoreRec s;
  s.value = init;
  s.index = loc.stores.size();
  s.thread = phase_thread();
  s.hb = clock();
  loc.stores.push_back(s);
  loc.floor[phase_thread()] = s.index;
  return id;
}

u32 Execution::locate_atomic(void* addr, u64 init, const char* name) {
  auto it = atomic_ids_.find(addr);
  if (it != atomic_ids_.end()) return it->second;
  return register_atomic(addr, init, name);
}

u32 Execution::register_var(void* addr, const char* name) {
  auto it = var_ids_.find(addr);
  if (it != var_ids_.end()) return it->second;
  const u32 id = static_cast<u32>(vars_.size());
  vars_.push_back(VarLoc{});
  vars_[id].name = name;
  var_ids_.emplace(addr, id);
  return id;
}

u32 Execution::register_mutex(void* addr) {
  auto it = mutex_ids_.find(addr);
  if (it != mutex_ids_.end()) return it->second;
  const u32 id = static_cast<u32>(mutexes_.size());
  mutexes_.push_back(MutexLoc{});
  mutex_ids_.emplace(addr, id);
  return id;
}

// ------------------------------------------------------------ atomics

VectorClock Execution::release_clock_for_store(std::memory_order mo) {
  if (is_release(mo)) return clock();
  Thread& t = cur();
  if (t.fence_release_armed) return t.fence_release;
  return VectorClock{};
}

u64 Execution::atomic_load(u32 loc_id, std::memory_order mo) {
  AtomicLoc& loc = atomics_[loc_id];
  if (abort_) return loc.stores.back().value;
  sched_point();
  tick();
  // Coherence + happens-before floor: the oldest store this thread may
  // still legally observe.
  u64 floor = loc.floor[phase_thread()];
  const VectorClock& my = clock();
  for (const StoreRec& s : loc.stores) {
    if (s.index > floor && s.hb.leq(my)) floor = s.index;
  }
  if (mo == std::memory_order_seq_cst && loc.has_sc_store &&
      loc.last_sc_store > floor) {
    // An SC load cannot read anything older than the latest SC store.
    floor = loc.last_sc_store;
  }
  const u64 latest = loc.stores.back().index;
  const u32 span = static_cast<u32>(latest - floor + 1);
  // Candidate 0 is the newest store; higher choices read progressively
  // staler values (the modelled store buffer).
  const u32 back = explorer_->choose(span);
  const StoreRec& s = loc.stores[latest - back];
  loc.floor[phase_thread()] = s.index;
  Thread& t = cur();
  if (is_acquire(mo)) {
    t.clock.join(s.release);
  } else {
    t.acq_pending.join(s.release);
  }
  log("load", 0, loc_id, s.value, back, mo);
  return s.value;
}

void Execution::atomic_store(u32 loc_id, u64 v, std::memory_order mo) {
  AtomicLoc& loc = atomics_[loc_id];
  if (abort_) {
    StoreRec s = loc.stores.back();
    s.value = v;
    s.index++;
    loc.stores.push_back(s);
    return;
  }
  sched_point();
  tick();
  StoreRec s;
  s.value = v;
  s.index = loc.stores.size();
  s.thread = phase_thread();
  s.hb = clock();
  s.release = release_clock_for_store(mo);
  loc.stores.push_back(s);
  loc.floor[phase_thread()] = s.index;
  if (mo == std::memory_order_seq_cst) {
    loc.last_sc_store = s.index;
    loc.has_sc_store = true;
  }
  log("store", 0, loc_id, v, 0, mo);
}

u64 Execution::atomic_rmw(u32 loc_id, const std::function<u64(u64)>& f,
                          std::memory_order mo, const char* what) {
  AtomicLoc& loc = atomics_[loc_id];
  if (abort_) {
    StoreRec s = loc.stores.back();
    const u64 old = s.value;
    s.value = f(old);
    s.index++;
    loc.stores.push_back(s);
    return old;
  }
  sched_point();
  tick();
  // An RMW always reads the latest store in modification order.
  const StoreRec prev = loc.stores.back();
  Thread& t = cur();
  if (is_acquire(mo)) {
    t.clock.join(prev.release);
  } else {
    t.acq_pending.join(prev.release);
  }
  StoreRec s;
  s.value = f(prev.value);
  s.index = loc.stores.size();
  s.thread = phase_thread();
  s.hb = clock();
  // Release-sequence continuation: an RMW carries the prior head's release
  // clock forward even when the RMW itself is relaxed.
  s.release = release_clock_for_store(mo);
  s.release.join(prev.release);
  loc.stores.push_back(s);
  loc.floor[phase_thread()] = s.index;
  if (mo == std::memory_order_seq_cst) {
    loc.last_sc_store = s.index;
    loc.has_sc_store = true;
  }
  log(what, 0, loc_id, prev.value, s.value, mo);
  return prev.value;
}

bool Execution::atomic_cas(u32 loc_id, u64& expected, u64 desired,
                           std::memory_order ok, std::memory_order fail) {
  AtomicLoc& loc = atomics_[loc_id];
  if (abort_) {
    const u64 cur_v = loc.stores.back().value;
    if (cur_v != expected) {
      expected = cur_v;
      return false;
    }
    StoreRec s = loc.stores.back();
    s.value = desired;
    s.index++;
    loc.stores.push_back(s);
    return true;
  }
  sched_point();
  tick();
  const StoreRec prev = loc.stores.back();
  Thread& t = cur();
  if (prev.value != expected) {
    // Failed CAS = atomic load of the current value with the failure order.
    if (is_acquire(fail)) {
      t.clock.join(prev.release);
    } else {
      t.acq_pending.join(prev.release);
    }
    loc.floor[phase_thread()] = prev.index;
    log("cas-", 0, loc_id, prev.value, expected, fail);
    expected = prev.value;
    return false;
  }
  if (is_acquire(ok)) {
    t.clock.join(prev.release);
  } else {
    t.acq_pending.join(prev.release);
  }
  StoreRec s;
  s.value = desired;
  s.index = loc.stores.size();
  s.thread = phase_thread();
  s.hb = clock();
  s.release = release_clock_for_store(ok);
  s.release.join(prev.release);  // release sequence
  loc.stores.push_back(s);
  loc.floor[phase_thread()] = s.index;
  if (ok == std::memory_order_seq_cst) {
    loc.last_sc_store = s.index;
    loc.has_sc_store = true;
  }
  log("cas+", 0, loc_id, expected, desired, ok);
  return true;
}

void Execution::fence(std::memory_order mo) {
  if (abort_) return;
  sched_point();
  tick();
  Thread& t = cur();
  if (is_acquire(mo)) {
    // Prior relaxed loads retroactively act as acquire.
    t.clock.join(t.acq_pending);
  }
  if (is_release(mo)) {
    // Later relaxed stores act as release of everything up to here.
    t.fence_release = t.clock;
    t.fence_release_armed = true;
  }
  log("fence", 3, 0, 0, 0, mo);
}

// ------------------------------------------------------------ plain vars

void Execution::check_var_access(VarLoc& v, bool is_write) {
  const VectorClock& my = clock();
  if (v.last_writer != kNoThread && v.last_writer != phase_thread() &&
      v.write_epoch > my.c[v.last_writer]) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "data race on %s: %s by thread %u not ordered with write by "
                  "thread %u",
                  v.name, is_write ? "write" : "read", phase_thread(),
                  v.last_writer);
    fail(buf);
  }
  if (is_write) {
    for (u32 r = 0; r < kClockSlots; ++r) {
      if (r == phase_thread()) continue;
      if (v.read_epochs[r] > my.c[r]) {
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "data race on %s: write by thread %u not ordered with "
                      "read by thread %u",
                      v.name, phase_thread(), r);
        fail(buf);
      }
    }
  }
}

void Execution::var_write(u32 loc_id) {
  if (abort_) return;
  VarLoc& v = vars_[loc_id];
  tick();
  check_var_access(v, /*is_write=*/true);
  v.last_writer = phase_thread();
  v.write_epoch = clock().c[phase_thread()];
  log("write", 1, loc_id, 0, 0, std::memory_order_relaxed);
}

void Execution::var_read(u32 loc_id) {
  if (abort_) return;
  VarLoc& v = vars_[loc_id];
  tick();
  check_var_access(v, /*is_write=*/false);
  v.read_epochs[phase_thread()] = clock().c[phase_thread()];
  log("read", 1, loc_id, 0, 0, std::memory_order_relaxed);
}

// ------------------------------------------------------------ mutex

void Execution::mutex_lock(u32 loc_id) {
  if (abort_) return;
  sched_point();
  tick();
  while (mutexes_[loc_id].owner != kNoThread) {
    if (mutexes_[loc_id].owner == phase_thread()) {
      fail("recursive chk::mutex lock");
    }
    if (!in_fiber()) {
      fail("chk::mutex contended outside model threads");
    }
    Thread& t = cur();
    t.state = ThreadState::kBlocked;
    t.waiting_mutex = loc_id;
    yield_to_main();
  }
  MutexLoc& m = mutexes_[loc_id];
  m.owner = phase_thread();
  cur().clock.join(m.release);
  log("lock", 2, loc_id, 0, 0, std::memory_order_acquire);
}

void Execution::mutex_unlock(u32 loc_id) {
  if (abort_) return;
  sched_point();
  tick();
  MutexLoc& m = mutexes_[loc_id];
  if (m.owner != phase_thread()) {
    fail("chk::mutex unlock by non-owner");
  }
  m.owner = kNoThread;
  m.release = clock();
  for (u32 t = 0; t < n_threads_; ++t) {
    if (threads_[t].state == ThreadState::kBlocked &&
        threads_[t].waiting_mutex == loc_id) {
      threads_[t].state = ThreadState::kRunnable;
      threads_[t].waiting_mutex = kNoThread;
    }
  }
  log("unlock", 2, loc_id, 0, 0, std::memory_order_release);
}

// ------------------------------------------------------------ misc

u32 Execution::choose(u32 n) {
  if (abort_ || n <= 1) return 0;
  return explorer_->choose(n);
}

void Execution::fail(std::string message) {
  throw ModelFailure{std::move(message)};
}

void Execution::log(const char* op, u32 loc_kind, u32 loc, u64 a, u64 b,
                    std::memory_order mo) {
  ops_.push_back(OpRec{phase_thread(), op, loc_label(loc_kind, loc), a, b, mo});
}

std::string Execution::loc_label(u32 kind, u32 loc) const {
  char buf[128];
  switch (kind) {
    case 0:
      std::snprintf(buf, sizeof(buf), "%s#%u", atomics_[loc].name, loc);
      break;
    case 1:
      std::snprintf(buf, sizeof(buf), "%s#v%u", vars_[loc].name, loc);
      break;
    case 2:
      std::snprintf(buf, sizeof(buf), "mutex#%u", loc);
      break;
    default:
      return "";
  }
  return buf;
}

std::string Execution::trace() const {
  std::string out;
  for (const OpRec& op : ops_) {
    char buf[256];
    if (op.thread == kMainSlot) {
      std::snprintf(buf, sizeof(buf), "  main %-5s %s", op.op,
                    op.loc.c_str());
    } else {
      std::snprintf(buf, sizeof(buf), "  T%u   %-5s %s", op.thread, op.op,
                    op.loc.c_str());
    }
    out += buf;
    std::snprintf(buf, sizeof(buf), " a=%llu b=%llu [%s]\n",
                  static_cast<unsigned long long>(op.a),
                  static_cast<unsigned long long>(op.b), mo_name(op.mo));
    out += buf;
  }
  if (failed_) {
    out += "  FAILURE: ";
    out += failure_;
    out += '\n';
  }
  return out;
}

void model_assert(bool cond, const char* message) {
  if (cond) return;
  Execution* e = Execution::current();
  if (e != nullptr) e->fail(message);
  else throw ModelFailure{message};
}

}  // namespace oaf::chk

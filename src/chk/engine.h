// Deterministic concurrency model-checker engine (loom/relacy-style).
//
// A model's threads run as cooperative ucontext fibers — never as OS threads
// — so the only interleaving that exists is the one the explorer chooses.
// Every instrumented operation (chk::atomic load/store/RMW, chk::mutex
// lock/unlock, fences) is a scheduling point: the running fiber yields to
// the engine, the explorer picks which thread executes next, and the chosen
// fiber performs exactly one shared-memory operation before yielding again.
// Exhaustive DFS enumerates every choice sequence under a configurable
// preemption bound (CHESS-style); beyond small models a seeded random mode
// samples schedules instead. Both are fully deterministic: an execution is
// identified by its choice sequence, and any failure replays from it.
//
// The memory model is C++11-aware in the way that matters for lock-free
// code: every atomic store is kept in a per-location history with the
// storing thread's vector clock, and a load may read any store that
// coherence and happens-before still allow — so a relaxed or mis-paired
// acquire/release protocol actually exposes stale values instead of the
// interleaved-sequential-consistency a naive checker (or TSan on a TSO
// host) would give. Release sequences, RMW atomicity, standalone fences and
// the flush-on-seq_cst restriction are modelled; consume is treated as
// acquire. Non-atomic cross-thread data lives in chk::var<T>, checked for
// data races with a FastTrack-style vector-clock detector.
//
// Single-real-thread by construction: at most one fiber runs at any instant,
// the engine itself needs no synchronization, and wall-clock time never
// appears — models are replayable byte-for-byte.
#pragma once

#include <ucontext.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace oaf::chk {

/// Maximum model threads (fibers); slot kMainSlot is the setup/finish phase.
inline constexpr u32 kMaxThreads = 6;
inline constexpr u32 kClockSlots = kMaxThreads + 1;
inline constexpr u32 kMainSlot = kMaxThreads;
inline constexpr u32 kNoThread = 0xffffffffu;

struct VectorClock {
  std::array<u64, kClockSlots> c{};

  void join(const VectorClock& o) {
    for (u32 i = 0; i < kClockSlots; ++i) {
      if (o.c[i] > c[i]) c[i] = o.c[i];
    }
  }
  [[nodiscard]] bool leq(const VectorClock& o) const {
    for (u32 i = 0; i < kClockSlots; ++i) {
      if (c[i] > o.c[i]) return false;
    }
    return true;
  }
};

/// Thrown (within one fiber's own stack) when an invariant, race, or model
/// assertion fails; recorded by the engine and reported with the schedule.
struct ModelFailure {
  std::string message;
};

/// Thrown into still-running fibers to unwind them after the execution is
/// over (failure elsewhere); never escapes the engine.
struct AbortExecution {};

/// Chooses among alternatives at every nondeterministic point. One explorer
/// drives many executions: exhaustive DFS over choice sequences, seeded
/// random sampling, or exact replay of a recorded sequence.
class Explorer {
 public:
  enum class Mode { kDfs, kRandom, kReplay };

  Explorer(Mode mode, u64 seed, std::vector<u32> replay = {});

  /// Pick one of n alternatives (n >= 1). Records the choice.
  u32 choose(u32 n);

  /// Reset for the next execution. DFS: advance to the next unexplored
  /// path; returns false when the tree is exhausted. Random: reseed the
  /// next sample. Replay: returns false (single execution).
  bool advance();

  void begin_execution();

  /// Choice sequence of the execution in progress (or just finished).
  [[nodiscard]] const std::vector<u32>& choices() const { return taken_; }

 private:
  struct Node {
    u32 chosen;
    u32 arity;
  };

  u64 next_random();

  Mode mode_;
  u64 rng_state_;
  std::vector<Node> path_;  // DFS: persistent prefix to replay, then extend
  size_t pos_ = 0;
  std::vector<u32> replay_;
  std::vector<u32> taken_;  // choices of the current execution
};

/// One interleaving of one model instance. See run().
class Execution {
 public:
  struct Hooks {
    std::function<void()> setup;      ///< construct model (registers state)
    std::function<void(u32)> body;    ///< thread body, index 0..n_threads-1
    std::function<void()> finish;     ///< invariants after all threads join
    std::function<void()> teardown;   ///< destroy model
  };

  Execution(Explorer* explorer, u32 n_threads, i32 preemption_bound);
  Execution(const Execution&) = delete;
  Execution& operator=(const Execution&) = delete;
  ~Execution();

  /// Run setup, interleave the thread bodies to completion (or failure),
  /// then finish + teardown. After run(), failed()/failure() report the
  /// outcome and trace() the executed schedule.
  void run(const Hooks& hooks);

  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] const std::string& failure() const { return failure_; }
  [[nodiscard]] std::string trace() const;

  /// The execution currently running on this (real) thread, if any.
  static Execution* current();

  // ---- instrumentation interface (chk::atomic / chk::var / chk::mutex) ----

  u32 register_atomic(void* addr, u64 init, const char* name);
  /// Like register_atomic, but an address seen before keeps its history
  /// unchanged (no fresh init store). Used by torn_copy/torn_read, which
  /// lazily promote plain memory words to relaxed-atomic locations so
  /// seqlock-style fence pairing through the data words is modelled.
  u32 locate_atomic(void* addr, u64 init, const char* name);
  u32 register_var(void* addr, const char* name);
  u32 register_mutex(void* addr);
  void rename_atomic(u32 loc, const char* name) { atomics_[loc].name = name; }

  u64 atomic_load(u32 loc, std::memory_order mo);
  void atomic_store(u32 loc, u64 v, std::memory_order mo);
  /// Generic RMW: stores f(old), returns old.
  u64 atomic_rmw(u32 loc, const std::function<u64(u64)>& f,
                 std::memory_order mo, const char* what);
  bool atomic_cas(u32 loc, u64& expected, u64 desired, std::memory_order ok,
                  std::memory_order fail);
  void fence(std::memory_order mo);

  void var_write(u32 loc);
  void var_read(u32 loc);

  void mutex_lock(u32 loc);
  void mutex_unlock(u32 loc);

  /// Model-level nondeterminism (and torn_copy interleaving points).
  u32 choose(u32 n);
  void interleave_point();

  /// Record a model assertion failure; throws ModelFailure (fiber) which
  /// the engine catches and attributes to the running schedule.
  [[noreturn]] void fail(std::string message);

 private:
  enum class ThreadState { kUnstarted, kRunnable, kBlocked, kFinished };

  struct Thread {
    ThreadState state = ThreadState::kUnstarted;
    VectorClock clock;
    VectorClock acq_pending;  // release clocks read relaxed, armed by fences
    VectorClock fence_release;
    bool fence_release_armed = false;
    u32 waiting_mutex = kNoThread;
    ucontext_t ctx{};
    std::vector<u8> stack;
  };

  struct StoreRec {
    u64 value = 0;
    u64 index = 0;
    u32 thread = kMainSlot;
    VectorClock release;  // what an acquire load of this store synchronizes with
    VectorClock hb;       // storing thread's clock: prunes stale candidates
  };

  struct AtomicLoc {
    const char* name = "";
    std::vector<StoreRec> stores;
    std::array<u64, kClockSlots> floor{};  // per-thread min readable index
    u64 last_sc_store = 0;                 // mod index of latest seq_cst store
    bool has_sc_store = false;
  };

  struct VarLoc {
    const char* name = "";
    u32 last_writer = kNoThread;
    u64 write_epoch = 0;
    std::array<u64, kClockSlots> read_epochs{};
  };

  struct MutexLoc {
    u32 owner = kNoThread;
    VectorClock release;
  };

  struct OpRec {
    u32 thread;
    const char* op;
    std::string loc;
    u64 a;
    u64 b;
    std::memory_order mo;
  };

  static void trampoline();

  void sched_point();
  void yield_to_main();
  void resume(u32 tid);
  u32 pick_next();
  void fiber_main(u32 tid);
  void abort_remaining();
  VectorClock& clock() { return threads_[phase_thread()].clock; }
  Thread& cur() { return threads_[phase_thread()]; }
  [[nodiscard]] u32 phase_thread() const {
    return current_ == kNoThread ? kMainSlot : current_;
  }
  void tick() { clock().c[phase_thread()]++; }
  void log(const char* op, u32 loc_kind, u32 loc, u64 a, u64 b,
           std::memory_order mo);
  std::string loc_label(u32 kind, u32 loc) const;
  void check_var_access(VarLoc& v, bool is_write);
  VectorClock release_clock_for_store(std::memory_order mo);
  [[nodiscard]] bool in_fiber() const {
    return current_ != kNoThread && current_ != kMainSlot;
  }

  Explorer* explorer_;
  u32 n_threads_;
  i32 preemption_bound_;
  i32 preemptions_ = 0;

  std::array<Thread, kMaxThreads + 1> threads_;  // [kMainSlot] = main phase
  ucontext_t main_ctx_{};
  u32 current_ = kNoThread;  // kNoThread outside run(); kMainSlot in setup
  u32 last_running_ = kNoThread;
  bool abort_ = false;

  // Deques, not vectors: torn_copy/torn_read (and policy structures built
  // inside threads) register locations lazily MID-execution while another
  // suspended fiber holds a reference into the container across its
  // sched_point() yield. A vector push_back could reallocate under that
  // reference; deque growth never invalidates element references.
  std::deque<AtomicLoc> atomics_;
  std::deque<VarLoc> vars_;
  std::deque<MutexLoc> mutexes_;
  std::unordered_map<void*, u32> atomic_ids_;
  std::unordered_map<void*, u32> var_ids_;
  std::unordered_map<void*, u32> mutex_ids_;

  std::vector<OpRec> ops_;
  bool failed_ = false;
  std::string failure_;

  const Hooks* hooks_ = nullptr;
};

/// Convenience assertion usable from model threads and finish() hooks.
void model_assert(bool cond, const char* message);

}  // namespace oaf::chk

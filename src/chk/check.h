// Model-check driver: explore the interleavings of a small concurrent model
// and report the first failing schedule, replayably.
//
// A model is a struct:
//
//   struct MpScModel {
//     static constexpr oaf::u32 kThreads = 2;
//     oaf::chk::atomic<oaf::u64> flag{0};   // or a policy-templatized
//     oaf::chk::var<oaf::u64> data{0};      // production structure over
//                                           // chk::CheckedPolicy
//     void thread(oaf::u32 t) { ... }       // one body per thread index
//     void finish() { CHK_ASSERT(...); }    // optional: post-join invariants
//   };
//
//   auto r = oaf::chk::check<MpScModel>({.preemption_bound = 3});
//   ASSERT_TRUE(r.ok) << r.report();
//
// A fresh model instance is constructed for every explored execution
// (construction is the "setup" phase, happens-before every thread). With
// default options the explorer runs an exhaustive DFS over scheduling and
// stale-read choices under a preemption bound; opts.random_executions
// switches to seeded random sampling for bigger models. Any failure —
// CHK_ASSERT, a data race on a chk::var, a deadlock, an uncaught exception —
// carries the full operation trace and the choice sequence that reproduces
// it: check() again with Options{.replay = r.choices} pins that schedule.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "chk/atomic.h"
#include "chk/engine.h"

namespace oaf::chk {

struct Options {
  /// Max context switches away from a runnable thread (CHESS bound);
  /// < 0 = unbounded. Most protocol bugs need 1-3 preemptions.
  i32 preemption_bound = 3;
  /// DFS safety valve: stop after this many executions even if the tree is
  /// not exhausted (result.exhausted says which happened).
  u64 max_executions = 200000;
  /// > 0: run this many seeded-random schedules instead of DFS.
  u64 random_executions = 0;
  u64 seed = 1;
  /// Non-empty: replay exactly this recorded choice sequence once.
  std::vector<u32> replay;
};

struct RunResult {
  bool ok = true;
  bool exhausted = false;  ///< DFS fully explored under the bound
  u64 executions = 0;
  std::string failure;     ///< first failure message (empty when ok)
  std::string trace;       ///< schedule of the failing execution
  std::vector<u32> choices;  ///< replay token for the failing execution

  /// Human-readable report: failure, replay token, and the schedule.
  [[nodiscard]] std::string report() const {
    if (ok) return "ok";
    std::string out = "model failure: " + failure + "\n  replay = {";
    for (size_t i = 0; i < choices.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(choices[i]);
    }
    out += "}\n  schedule (op a=operand b=aux [order]):\n" + trace;
    return out;
  }
};

template <class Model>
RunResult check(const Options& opt = {}) {
  const Explorer::Mode mode = !opt.replay.empty()  ? Explorer::Mode::kReplay
                              : opt.random_executions > 0
                                  ? Explorer::Mode::kRandom
                                  : Explorer::Mode::kDfs;
  Explorer explorer(mode, opt.seed, opt.replay);
  const u64 limit = mode == Explorer::Mode::kReplay ? 1
                    : mode == Explorer::Mode::kRandom ? opt.random_executions
                                                      : opt.max_executions;
  RunResult r;
  while (r.executions < limit) {
    Execution exec(&explorer, Model::kThreads, opt.preemption_bound);
    std::unique_ptr<Model> model;
    Execution::Hooks hooks;
    hooks.setup = [&model] { model = std::make_unique<Model>(); };
    hooks.body = [&model](u32 t) { model->thread(t); };
    hooks.finish = [&model] {
      if constexpr (requires(Model & m) { m.finish(); }) model->finish();
    };
    hooks.teardown = [&model] { model.reset(); };
    exec.run(hooks);
    r.executions++;
    if (exec.failed()) {
      r.ok = false;
      r.failure = exec.failure();
      r.trace = exec.trace();
      r.choices = explorer.choices();
      return r;
    }
    if (!explorer.advance()) {
      r.exhausted = mode == Explorer::Mode::kDfs;
      break;
    }
  }
  return r;
}

}  // namespace oaf::chk

/// Assert inside model threads / finish(): failing records the schedule and
/// aborts the execution (not the process).
#define CHK_ASSERT(cond, msg) ::oaf::chk::model_assert((cond), (msg))

// Instrumented counterparts of std::atomic / plain values / std::mutex that
// route every access through the model-checker engine. Drop-in within the
// atomics-policy seam (common/atomics_policy.h): the lock-free structures
// templatized over a policy compile unchanged against these.
//
// Objects registered with the engine are keyed by address, so a structure
// placement-new'ed over the same memory (shm ring re-format) keeps one
// location history — exactly what epoch-fencing models need.
//
// Outside a running Execution (or used by a different execution than the
// one that registered them), the wrappers degrade to plain single-threaded
// behavior on a mirror value, so constructing/inspecting model state from
// test code outside chk::check() is safe.
#pragma once

#include <cstring>
#include "common/thread_annotations.h"
#include <type_traits>

#include "chk/engine.h"

namespace oaf::chk {

inline constexpr u32 kNoLoc = 0xffffffffu;

namespace detail {

template <typename T>
u64 to_word(T v) {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= sizeof(u64),
                "chk::atomic models word-sized trivially copyable types");
  u64 w = 0;
  std::memcpy(&w, &v, sizeof(T));
  return w;
}

template <typename T>
T from_word(u64 w) {
  T v{};
  std::memcpy(&v, &w, sizeof(T));
  return v;
}

}  // namespace detail

template <typename T>
class atomic {
 public:
  atomic() : atomic(T{}) {}
  explicit atomic(T v) : mirror_(v) {
    home_ = Execution::current();
    if (home_ != nullptr) {
      loc_ = home_->register_atomic(this, detail::to_word(v), "atomic");
    }
  }
  atomic(const atomic&) = delete;
  atomic& operator=(const atomic&) = delete;

  /// Attach a display name used in failure traces (engine-only feature;
  /// see Policy::label()).
  void set_name(const char* name) {
    if (live()) home_->rename_atomic(loc_, name);
  }

  T load(std::memory_order mo = std::memory_order_seq_cst) const {
    if (!live()) return mirror_;
    return detail::from_word<T>(home_->atomic_load(loc_, mo));
  }

  void store(T v, std::memory_order mo = std::memory_order_seq_cst) {
    mirror_ = v;
    if (!live()) return;
    home_->atomic_store(loc_, detail::to_word(v), mo);
  }

  T exchange(T v, std::memory_order mo = std::memory_order_seq_cst) {
    if (!live()) {
      T old = mirror_;
      mirror_ = v;
      return old;
    }
    const u64 w = detail::to_word(v);
    const u64 old = home_->atomic_rmw(
        loc_, [w](u64) { return w; }, mo, "xchg");
    mirror_ = v;
    return detail::from_word<T>(old);
  }

  T fetch_add(T delta, std::memory_order mo = std::memory_order_seq_cst) {
    static_assert(std::is_integral_v<T>, "fetch_add requires an integer");
    if (!live()) {
      T old = mirror_;
      mirror_ = static_cast<T>(mirror_ + delta);
      return old;
    }
    const u64 old = home_->atomic_rmw(
        loc_,
        [delta](u64 w) {
          return detail::to_word(
              static_cast<T>(detail::from_word<T>(w) + delta));
        },
        mo, "f.add");
    mirror_ = static_cast<T>(detail::from_word<T>(old) + delta);
    return detail::from_word<T>(old);
  }

  T fetch_sub(T delta, std::memory_order mo = std::memory_order_seq_cst) {
    return fetch_add(static_cast<T>(T{} - delta), mo);
  }

  bool compare_exchange_strong(T& expected, T desired, std::memory_order ok,
                               std::memory_order fail) {
    if (!live()) {
      if (mirror_ != expected) {
        expected = mirror_;
        return false;
      }
      mirror_ = desired;
      return true;
    }
    u64 exp = detail::to_word(expected);
    const bool won =
        home_->atomic_cas(loc_, exp, detail::to_word(desired), ok, fail);
    if (won) {
      mirror_ = desired;
    } else {
      expected = detail::from_word<T>(exp);
    }
    return won;
  }
  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order mo = std::memory_order_seq_cst) {
    return compare_exchange_strong(expected, desired, mo,
                                   std::memory_order_relaxed);
  }
  /// The engine has no spurious failures: weak == strong.
  bool compare_exchange_weak(T& expected, T desired, std::memory_order ok,
                             std::memory_order fail) {
    return compare_exchange_strong(expected, desired, ok, fail);
  }
  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order mo = std::memory_order_seq_cst) {
    return compare_exchange_strong(expected, desired, mo,
                                   std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] bool live() const {
    return loc_ != kNoLoc && home_ != nullptr && home_ == Execution::current();
  }

  T mirror_;
  Execution* home_ = nullptr;
  u32 loc_ = kNoLoc;
};

/// Non-atomic cross-thread value: every access is fed to the vector-clock
/// race detector. Unsynchronized conflicting accesses fail the model.
template <typename T>
class var {
  static_assert(std::is_trivially_copyable_v<T>,
                "chk::var requires trivially copyable values");

 public:
  var() : var(T{}) {}
  var(T v) : v_(v) {  // NOLINT(google-explicit-constructor): mirrors plain T
    attach();
    if (live()) home_->var_write(loc_);
  }
  var(const var& o) : v_(static_cast<T>(o)) {
    attach();
    if (live()) home_->var_write(loc_);
  }
  var& operator=(T v) {
    if (live()) home_->var_write(loc_);
    v_ = v;
    return *this;
  }
  var& operator=(const var& o) { return *this = static_cast<T>(o); }

  operator T() const {  // NOLINT(google-explicit-constructor)
    if (live()) home_->var_read(loc_);
    return v_;
  }

 private:
  void attach() {
    home_ = Execution::current();
    if (home_ != nullptr) loc_ = home_->register_var(this, "var");
  }
  [[nodiscard]] bool live() const {
    return loc_ != kNoLoc && home_ != nullptr && home_ == Execution::current();
  }

  T v_;
  Execution* home_ = nullptr;
  u32 loc_ = kNoLoc;
};

/// Scheduler-aware mutex: lock() blocks the fiber (never the process), and
/// unlock -> lock pairs carry acquire/release clocks. BasicLockable, so
/// std::lock_guard works.
class OAF_CAPABILITY("mutex") mutex {
 public:
  mutex() {
    home_ = Execution::current();
    if (home_ != nullptr) loc_ = home_->register_mutex(this);
  }
  mutex(const mutex&) = delete;
  mutex& operator=(const mutex&) = delete;

  void lock() OAF_ACQUIRE() {
    if (live()) home_->mutex_lock(loc_);
  }
  void unlock() OAF_RELEASE() {
    if (live()) home_->mutex_unlock(loc_);
  }

 private:
  [[nodiscard]] bool live() const {
    return loc_ != kNoLoc && home_ != nullptr && home_ == Execution::current();
  }

  Execution* home_ = nullptr;
  u32 loc_ = kNoLoc;
};

inline void thread_fence(std::memory_order mo) {
  Execution* e = Execution::current();
  if (e != nullptr) e->fence(mo);
}

/// Extra model-level nondeterminism: returns a value in [0, n).
inline u32 nondet(u32 n) {
  Execution* e = Execution::current();
  return e != nullptr ? e->choose(n) : 0;
}

}  // namespace oaf::chk

#include "nfs/nfs.h"

#include <cstring>

namespace oaf::nfs {

namespace {
constexpr std::span<const u8> kEmpty;
}

NfsClient::NfsClient(sim::Scheduler& sched, const NfsParams& params)
    : sched_(sched),
      params_(params),
      wire_(sched, params.link_bytes_per_sec),
      server_disk_(sched, 4) {}

DurNs NfsClient::rpc_time(u64 bytes) const {
  return params_.rpc_overhead_ns +
         transfer_time_ns(bytes, params_.link_bytes_per_sec) +
         params_.server_disk_latency_ns +
         transfer_time_ns(bytes, params_.server_disk_bytes_per_sec);
}

DurNs NfsClient::pipelined_transfer_ns(u64 bytes, u64 chunk) const {
  // `rpc_pipeline` RPCs overlap: wire serialization is the hard floor, the
  // per-RPC overhead and disk stage amortize across the in-flight window.
  const u64 rpcs = ceil_div(bytes, chunk);
  const DurNs wire = transfer_time_ns(bytes, params_.link_bytes_per_sec);
  const DurNs per_rpc = params_.rpc_overhead_ns + params_.server_disk_latency_ns +
                        transfer_time_ns(chunk, params_.server_disk_bytes_per_sec);
  const u32 pipe = params_.rpc_pipeline == 0 ? 1 : params_.rpc_pipeline;
  return wire + static_cast<DurNs>(rpcs) * per_rpc / pipe + per_rpc;
}

u64 NfsClient::server_file_size(const std::string& file) const {
  const auto it = server_files_.find(file);
  return it == server_files_.end() ? 0 : it->second.size();
}

std::span<const u8> NfsClient::server_file(const std::string& file) const {
  const auto it = server_files_.find(file);
  return it == server_files_.end() ? kEmpty : std::span<const u8>(it->second);
}

// ---------------------------------------------------------------------------
// Dirty-range tracking (merged intervals per file, like page-cache pages)
// ---------------------------------------------------------------------------

void NfsClient::add_dirty(const std::string& file, u64 offset, u64 length) {
  if (length == 0) return;
  auto& ranges = dirty_[file];
  u64 start = offset;
  u64 end = offset + length;

  // Merge every interval overlapping or adjacent to [start, end).
  auto it = ranges.upper_bound(start);
  if (it != ranges.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) it = prev;
  }
  while (it != ranges.end() && it->first <= end) {
    // Overlapping bytes were already dirty; do not double-count them.
    const u64 overlap_start = std::max(start, it->first);
    const u64 overlap_end = std::min(end, it->second);
    if (overlap_end > overlap_start) {
      dirty_bytes_ -= overlap_end - overlap_start;
    }
    start = std::min(start, it->first);
    end = std::max(end, it->second);
    it = ranges.erase(it);
  }
  ranges[start] = end;
  dirty_bytes_ += length;
}

u64 NfsClient::pop_dirty_chunk() {
  if (dirty_.empty()) return 0;
  auto file_it = dirty_.begin();
  while (file_it != dirty_.end() && file_it->second.empty()) {
    file_it = dirty_.erase(file_it);
  }
  if (file_it == dirty_.end()) return 0;
  auto& ranges = file_it->second;
  auto range = ranges.begin();
  const u64 take = std::min(params_.wsize, range->second - range->first);
  const u64 new_start = range->first + take;
  const u64 end = range->second;
  ranges.erase(range);
  if (new_start < end) ranges[new_start] = end;
  if (ranges.empty()) dirty_.erase(file_it);
  return take;
}

// ---------------------------------------------------------------------------
// Writes
// ---------------------------------------------------------------------------

void NfsClient::write(const std::string& file, u64 offset,
                      std::span<const u8> data, IoCb cb) {
  // Land the bytes in the server image immediately (functional model — the
  // timing below decides when the application sees completion).
  auto& contents = server_files_[file];
  if (contents.size() < offset + data.size()) {
    contents.resize(offset + data.size());
  }
  std::memcpy(contents.data() + offset, data.data(), data.size());

  if (!params_.async_mount) {
    rpcs_sent_ += ceil_div(data.size(), params_.wsize);
    sched_.schedule_after(pipelined_transfer_ns(data.size(), params_.wsize),
                          [cb = std::move(cb)] { cb(Status::ok()); });
    return;
  }

  // Async mount: absorb into the page cache at memcpy speed, then kick the
  // background flusher. Block only when the dirty limit is exceeded.
  add_dirty(file, offset, data.size());
  if (!flusher_active_) {
    flusher_active_ = true;
    sched_.post([this] { flush_chunk(); });
  }

  const DurNs cache_copy =
      transfer_time_ns(data.size(), params_.page_cache_bytes_per_sec);
  if (dirty_bytes_ <= params_.dirty_limit_bytes) {
    sched_.schedule_after(cache_copy, [cb = std::move(cb)] { cb(Status::ok()); });
  } else {
    // Over the limit: the writer throttles until the flusher drains back
    // under the threshold (Linux balance_dirty_pages behaviour).
    dirty_waiters_.emplace_back(params_.dirty_limit_bytes, std::move(cb));
  }
}

void NfsClient::flush_chunk() {
  const u64 chunk = pop_dirty_chunk();
  if (chunk == 0) {
    flusher_active_ = false;
    for (auto& cb : commit_waiters_) cb(Status::ok());
    commit_waiters_.clear();
    return;
  }
  rpcs_sent_++;
  // One WRITE RPC: wire serialization plus per-RPC overhead, then the
  // server disk stage. The flusher keeps `rpc_pipeline` RPCs outstanding by
  // issuing the next chunk as soon as this one is on the wire.
  const DurNs amortized_tail =
      (params_.rpc_overhead_ns + params_.server_disk_latency_ns) /
      (params_.rpc_pipeline == 0 ? 1 : params_.rpc_pipeline);
  wire_.transmit(chunk, amortized_tail, [this, chunk] {
    server_disk_.submit(
        transfer_time_ns(chunk, params_.server_disk_bytes_per_sec),
        [this, chunk] {
          dirty_bytes_ -= chunk;
          drain_waiters();
          flush_chunk();
        });
  });
}

void NfsClient::drain_waiters() {
  std::vector<std::pair<u64, IoCb>> still_waiting;
  for (auto& [threshold, cb] : dirty_waiters_) {
    if (dirty_bytes_ <= threshold) {
      cb(Status::ok());
    } else {
      still_waiting.emplace_back(threshold, std::move(cb));
    }
  }
  dirty_waiters_ = std::move(still_waiting);
}

void NfsClient::commit(IoCb cb) {
  if (!flusher_active_ && dirty_.empty()) {
    sched_.post([cb = std::move(cb)] { cb(Status::ok()); });
    return;
  }
  commit_waiters_.push_back(std::move(cb));
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

void NfsClient::read(const std::string& file, u64 offset, std::span<u8> out,
                     IoCb cb) {
  const auto it = server_files_.find(file);
  if (it == server_files_.end() || offset + out.size() > it->second.size()) {
    sched_.post([cb = std::move(cb)] {
      cb(make_error(StatusCode::kOutOfRange, "NFS short read"));
    });
    return;
  }
  std::memcpy(out.data(), it->second.data() + offset, out.size());

  // Cache hit: some stream's readahead window already fetched this range.
  for (size_t i = 0; i < ra_windows_.size(); ++i) {
    const RaWindow& w = ra_windows_[i];
    if (w.file == file && offset >= w.start && offset + out.size() <= w.end) {
      // LRU touch.
      RaWindow touched = w;
      ra_windows_.erase(ra_windows_.begin() + static_cast<long>(i));
      ra_windows_.push_back(touched);
      const DurNs cache_copy =
          transfer_time_ns(out.size(), params_.page_cache_bytes_per_sec);
      sched_.schedule_after(cache_copy,
                            [cb = std::move(cb)] { cb(Status::ok()); });
      return;
    }
  }

  // Fetch the requested bytes plus the readahead window through the
  // pipelined RPC engine; completion when the requested bytes land.
  const u64 window =
      out.size() + static_cast<u64>(params_.readahead_chunks) * params_.rsize;
  const u64 fetch =
      std::min<u64>(window, it->second.size() > offset
                                ? it->second.size() - offset
                                : out.size());
  rpcs_sent_ += ceil_div(fetch, params_.rsize);
  wire_.transmit(fetch, 0, [] {});  // the window occupies the shared wire
  if (ra_windows_.size() >= kMaxRaWindows) {
    ra_windows_.erase(ra_windows_.begin());
  }
  ra_windows_.push_back(RaWindow{file, offset, offset + fetch});
  sched_.schedule_after(pipelined_transfer_ns(out.size(), params_.rsize),
                        [cb = std::move(cb)] { cb(Status::ok()); });
}

}  // namespace oaf::nfs

// NFS baseline (paper §5.7, Figs 16–19 comparisons).
//
// Models an NFSv3-style client with an *async* mount — the configuration
// the paper names as the reason NFS can beat a storage fabric on bursty
// multi-dataset writes: dirty pages are absorbed by the client page cache at
// memory speed and flushed in the background, so the application observes
// buffered-write bandwidth until the dirty limit is hit. The writeback
// flusher walks each file's dirty ranges in file order (like the kernel's
// page-cache radix tree), so interleaved small writes still leave the client
// as wsize-sized WRITE RPCs. Reads go over rsize-chunked, pipelined RPCs
// with a sequential readahead window. The server keeps file contents in
// memory (correctness) and charges a disk-rate model (timing).
//
// This is a timing-plane component; it runs on the sim scheduler.
#pragma once

#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "sim/resource.h"
#include "sim/scheduler.h"

namespace oaf::nfs {

struct NfsParams {
  u64 wsize = 128 * kKiB;            ///< write RPC transfer size
  u64 rsize = 128 * kKiB;            ///< read RPC transfer size
  DurNs rpc_overhead_ns = 380'000;   ///< per-RPC client+server+net overhead (VM)
  u32 rpc_pipeline = 2;              ///< concurrent RPC slots (amortizes overhead)
  double link_bytes_per_sec = gbps_to_bytes_per_sec(25.0);
  double server_disk_bytes_per_sec = 0.6e9;
  DurNs server_disk_latency_ns = 80'000;
  bool async_mount = true;           ///< client-side write-behind
  u64 dirty_limit_bytes = 512 * kMiB;///< page cache absorbs up to this
  double page_cache_bytes_per_sec = 8e9;  ///< memcpy into the page cache
  u32 readahead_chunks = 2;          ///< sequential readahead window (rsize units)
};

class NfsClient {
 public:
  using IoCb = std::function<void(Status)>;

  NfsClient(sim::Scheduler& sched, const NfsParams& params);

  /// Write `data` at `offset` of `file`. With an async mount this completes
  /// at page-cache speed while dirty bytes remain under the limit;
  /// otherwise it waits for RPC round trips.
  void write(const std::string& file, u64 offset, std::span<const u8> data,
             IoCb cb);

  /// Read into `out` from `offset`. Sequential access hits the readahead
  /// window; other access pays pipelined rsize-chunked RPCs.
  void read(const std::string& file, u64 offset, std::span<u8> out, IoCb cb);

  /// COMMIT: block until all dirty bytes are on the server.
  void commit(IoCb cb);

  // --- introspection ---------------------------------------------------
  [[nodiscard]] u64 dirty_bytes() const { return dirty_bytes_; }
  [[nodiscard]] u64 rpcs_sent() const { return rpcs_sent_; }
  [[nodiscard]] u64 server_file_size(const std::string& file) const;
  [[nodiscard]] std::span<const u8> server_file(const std::string& file) const;

 private:
  /// Time one RPC of `bytes` occupies end to end (overhead + wire + disk).
  [[nodiscard]] DurNs rpc_time(u64 bytes) const;
  /// Completion time for a pipelined transfer of `bytes` in `chunk` RPCs.
  [[nodiscard]] DurNs pipelined_transfer_ns(u64 bytes, u64 chunk) const;

  void add_dirty(const std::string& file, u64 offset, u64 length);
  /// Pop up to wsize of contiguous dirty bytes (file order). Returns 0 when
  /// clean.
  u64 pop_dirty_chunk();
  void flush_chunk();
  void drain_waiters();

  sim::Scheduler& sched_;
  NfsParams params_;
  sim::Throttle wire_;
  sim::Resource server_disk_;

  std::map<std::string, std::vector<u8>> server_files_;

  // Write-behind state: per-file merged dirty intervals (offset -> end).
  std::map<std::string, std::map<u64, u64>> dirty_;
  u64 dirty_bytes_ = 0;
  bool flusher_active_ = false;
  std::vector<std::pair<u64, IoCb>> dirty_waiters_;  // (threshold, cb)
  std::vector<IoCb> commit_waiters_;

  // Readahead state: one window per detected stream (the kernel keeps
  // per-stream readahead state, which is what lets NFS serve h5bench's
  // interleaved multi-dataset reads from the page cache).
  struct RaWindow {
    std::string file;
    u64 start = 0;
    u64 end = 0;  ///< exclusive
  };
  static constexpr size_t kMaxRaWindows = 8;
  std::vector<RaWindow> ra_windows_;  // back = most recently used

  u64 rpcs_sent_ = 0;
};

}  // namespace oaf::nfs

// Tail-latency attribution: per-I/O stage ledgers feeding sliding-window
// per-stage histograms, plus an SLO watchdog (DESIGN.md §13).
//
// The trace plane (telemetry/trace.h) answers "what happened to THIS I/O" —
// after the fact, with a Chrome timeline. The attribution plane answers the
// operational question the adaptivity controller and the operator both ask:
// "which stage made p999 spike in the last few seconds, and which I/Os did
// it?" — continuously, with bounded memory, while the run is still going.
//
// Three pieces:
//   - StageLedger: a compact fixed-size accumulator threaded through the
//     initiator's Pending and the target's IoCtx. Each lifecycle transition
//     calls enter(stage, now), which closes the currently-open phase into
//     its stage bucket and opens the next; detours (retries, queue-full
//     backoff, redrives) are credited explicitly. finalize() carves the
//     remotely-reported device/target residency out of the phase that was
//     open across the wire round-trip, so the remainder is genuine fabric
//     time — stages sum to end-to-end latency, nothing double-counted.
//   - Attribution: a ring of time-bucketed windows (default 8 × 1 s), each
//     holding per-stage and per-op-class Histograms, SLO breach counts, and
//     a top-K slowest tracker. Slots are tagged with their absolute window
//     index (now / window_ns); a record into a slot whose tag is stale
//     resets and retags it, which makes empty windows, forward clock steps,
//     and ring wraparound all the same non-special case. heat_json()/
//     top_json() serve the `oaf_stat heat|top` verbs.
//   - SLO watchdog: per-op-class latency budgets (--slo-read-us /
//     --slo-write-us). record() returns whether the I/O breached — the
//     caller uses that verdict to trigger retroactive anomaly capture
//     (telemetry/anomaly.h) — and maintains breach counters/gauges.
//
// Threading: record() takes one mutex (per-I/O cadence, same trade-off as
// HistogramMetric); the enabled flag is a relaxed atomic so the disabled
// path is one load. Ledger stamping itself is plain arithmetic on caller-
// owned state and needs no synchronisation.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/mutex.h"
#include "common/types.h"
#include "telemetry/metrics.h"
#include "telemetry/prof/cost_center.h"

namespace oaf::telemetry {

/// Lifecycle stages an I/O's nanoseconds are attributed to. Initiator and
/// target use overlapping subsets of the same vocabulary so one heatmap
/// renders both sides.
enum class Stage : u8 {
  kQueue = 0,    ///< submitted but not yet encoding (QD/admission wait)
  kEncode = 1,   ///< capsule build + payload staging (shm fill / inline copy)
  kGrant = 2,    ///< capsule sent, waiting for R2T / first response byte
  kXfer = 3,     ///< data transfer on the wire (minus remote residency)
  kDevice = 4,   ///< simulated device service time (reported by target)
  kTarget = 5,   ///< target-side processing outside the device (reported)
  kComplete = 6, ///< response send / completion processing
  kDetour = 7,   ///< off-path time: retries, backoff, redrives, aborts
};
inline constexpr size_t kStageCount = 8;

[[nodiscard]] const char* to_string(Stage s);

// The profiling plane's cost centers mirror the stage vocabulary value for
// value, so StageLedger transitions can stamp the thread-local cost-center
// token with a plain cast (prof/cost_center.h documents the extra centers).
static_assert(static_cast<u8>(prof::CostCenter::kQueue) ==
              static_cast<u8>(Stage::kQueue));
static_assert(static_cast<u8>(prof::CostCenter::kEncode) ==
              static_cast<u8>(Stage::kEncode));
static_assert(static_cast<u8>(prof::CostCenter::kGrant) ==
              static_cast<u8>(Stage::kGrant));
static_assert(static_cast<u8>(prof::CostCenter::kXfer) ==
              static_cast<u8>(Stage::kXfer));
static_assert(static_cast<u8>(prof::CostCenter::kDevice) ==
              static_cast<u8>(Stage::kDevice));
static_assert(static_cast<u8>(prof::CostCenter::kTarget) ==
              static_cast<u8>(Stage::kTarget));
static_assert(static_cast<u8>(prof::CostCenter::kComplete) ==
              static_cast<u8>(Stage::kComplete));
static_assert(static_cast<u8>(prof::CostCenter::kDetour) ==
              static_cast<u8>(Stage::kDetour));
static_assert(kStageCount <= prof::kCostCenterCount);

/// Op classes with independent SLOs.
enum class OpClass : u8 { kRead = 0, kWrite = 1 };
inline constexpr size_t kOpClassCount = 2;

[[nodiscard]] const char* to_string(OpClass c);

/// Fixed-size per-I/O stage accumulator. Lives inline in Pending/IoCtx;
/// 88 bytes, no allocation, no locks. The open-phase cursor means call
/// sites only mark transitions — durations fall out.
struct StageLedger {
  std::array<i64, kStageCount> stage_ns{};
  TimeNs phase_start = 0;  ///< when the open stage started accruing
  i8 open_stage = -1;      ///< Stage currently accruing, -1 = closed
  u8 touched = 0;          ///< bitmask of stages that were ever credited

  /// Zero everything and open `first` (normally kQueue) at `now`.
  void reset(TimeNs now, Stage first = Stage::kQueue) {
    stage_ns.fill(0);
    touched = 0;
    open_stage = static_cast<i8>(first);
    phase_start = now;
    touched |= static_cast<u8>(1u << static_cast<u8>(first));
    prof::set_cost_center(static_cast<prof::CostCenter>(first));
  }

  /// Close the open phase into its stage and open `s` at `now`. Also stamps
  /// the thread's cost-center token so CPU samples and allocations that land
  /// while this phase is open are attributed to the same stage the
  /// nanoseconds are.
  void enter(Stage s, TimeNs now) {
    close(now);
    open_stage = static_cast<i8>(s);
    phase_start = now;
    touched |= static_cast<u8>(1u << static_cast<u8>(s));
    prof::set_cost_center(static_cast<prof::CostCenter>(s));
  }

  /// Credit `d` nanoseconds to `s` without moving the open-phase cursor
  /// (detours: retry gaps, backoff sleeps, redrive parking).
  void credit(Stage s, DurNs d) {
    if (d <= 0) return;
    stage_ns[static_cast<size_t>(s)] += d;
    touched |= static_cast<u8>(1u << static_cast<u8>(s));
  }

  /// Close the open phase (if any) at `now` without opening another.
  void close(TimeNs now) {
    if (open_stage < 0) return;
    const i64 d = now - phase_start;
    if (d > 0) stage_ns[static_cast<size_t>(open_stage)] += d;
    open_stage = -1;
  }

  /// Completion: close the open phase, then carve the remotely-reported
  /// device/target residency out of the wire-wait stages (clamped — a
  /// skewed clock cannot push a stage negative) and credit kDevice/kTarget.
  /// Carve order is the stage open at completion first (a write's device
  /// wait sits in the kXfer tail), then kGrant (a read's device wait sits
  /// between capsule send and first data), then kXfer — whatever held the
  /// round-trip keeps only the fabric remainder.
  void finalize(TimeNs now, DurNs device_ns, DurNs target_ns) {
    const i8 wire_stage = open_stage;
    close(now);
    if (device_ns < 0) device_ns = 0;
    if (target_ns < 0) target_ns = 0;
    const i64 remote = device_ns + target_ns;
    if (remote <= 0) return;
    const size_t order[3] = {
        wire_stage >= 0 ? static_cast<size_t>(wire_stage)
                        : static_cast<size_t>(Stage::kGrant),
        static_cast<size_t>(Stage::kGrant), static_cast<size_t>(Stage::kXfer)};
    i64 left = remote;
    for (const size_t s : order) {
      if (left <= 0) break;
      i64& wire = stage_ns[s];
      const i64 carve = left < wire ? left : wire;
      wire -= carve;
      left -= carve;
    }
    const i64 carved = remote - left;
    const i64 dev = device_ns < carved ? device_ns : carved;
    credit(Stage::kDevice, dev);
    credit(Stage::kTarget, carved - dev);
  }

  [[nodiscard]] bool was_touched(Stage s) const {
    return (touched & (1u << static_cast<u8>(s))) != 0;
  }
  [[nodiscard]] i64 total_ns() const {
    i64 t = 0;
    for (const i64 v : stage_ns) t += v;
    return t;
  }
};

struct AttributionOptions {
  DurNs window_ns = 1'000'000'000;  ///< width of one window
  size_t windows = 8;               ///< ring depth (history = windows × width)
  size_t top_k = 8;                 ///< slowest I/Os tracked per window
  DurNs slo_read_ns = 0;            ///< read SLO; 0 = no read SLO
  DurNs slo_write_ns = 0;           ///< write SLO; 0 = no write SLO
};

/// One slowest-I/O record (top-K tracker entry).
struct TopEntry {
  i64 total_ns = 0;
  u64 trace_id = 0;
  OpClass op = OpClass::kRead;
  std::array<i64, kStageCount> stage_ns{};
};

/// Test/JSON-facing snapshot of one window.
struct WindowStats {
  u64 index = 0;  ///< absolute window index (start = index * window_ns)
  std::array<Histogram, kStageCount> stages{};
  std::array<Histogram, kOpClassCount> classes{};
  std::array<u64, kOpClassCount> breaches{};
  std::vector<TopEntry> top;  ///< sorted slowest-first
};

class Attribution {
 public:
  Attribution();

  /// (Re)arm with new options: resets the window ring and enables recording.
  void configure(const AttributionOptions& opts);
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] AttributionOptions options() const;
  [[nodiscard]] DurNs slo_for(OpClass c) const;

  /// Fold one completed I/O into the current window and the cumulative
  /// per-stage registry histograms. Returns true when the I/O breached its
  /// op-class SLO (the caller's cue to promote an anomaly capture).
  bool record(OpClass op, const StageLedger& ledger, i64 total_ns,
              u64 trace_id, TimeNs now);

  /// Attribute off-path time discovered outside a ledger's lifecycle
  /// (PathGroup redrives land here: the group, not the path, knows the gap).
  void record_detour(OpClass op, DurNs detour_ns, TimeNs now);

  /// Windowed per-stage heatmap JSON (`oaf_stat heat`): oldest→newest live
  /// windows with per-stage and per-class windowed quantiles + breaches.
  [[nodiscard]] std::string heat_json(TimeNs now) const;
  /// Top-K slowest I/Os per live window (`oaf_stat top`), with per-stage
  /// breakdowns — "show me the three I/Os that made p999 spike".
  [[nodiscard]] std::string top_json(TimeNs now) const;
  /// Cumulative per-stage summary (oaf_perf --json "stages" section).
  [[nodiscard]] std::string summary_json() const;

  /// Live (non-stale) windows oldest→newest as of `now`. Test hook.
  [[nodiscard]] std::vector<WindowStats> snapshot_windows(TimeNs now) const;

  /// Drop all windowed state (cumulative registry metrics are reset via
  /// MetricsRegistry::reset_for_test). Tests only.
  void reset_for_test();

 private:
  struct Slot {
    static constexpr u64 kEmpty = ~u64{0};
    u64 widx = kEmpty;  ///< absolute window index this slot holds
    std::array<Histogram, kStageCount> stages{};
    std::array<Histogram, kOpClassCount> classes{};
    std::array<u64, kOpClassCount> breaches{};
    std::vector<TopEntry> top;  ///< sorted slowest-first, ≤ top_k entries

    void reset(u64 new_widx) {
      widx = new_widx;
      for (auto& h : stages) h.reset();
      for (auto& h : classes) h.reset();
      breaches.fill(0);
      top.clear();
    }
  };

  /// Slot for the window containing `now`, resetting/retagging stale slots
  /// and publishing the previous window's breach gauge on rotation. Caller
  /// holds mu_.
  Slot& slot_for_locked(TimeNs now) OAF_REQUIRES(mu_);
  void push_top_locked(Slot& slot, const TopEntry& e) OAF_REQUIRES(mu_);

  mutable Mutex mu_;
  AttributionOptions opts_ OAF_GUARDED_BY(mu_);
  std::vector<Slot> slots_ OAF_GUARDED_BY(mu_);
  u64 last_widx_ OAF_GUARDED_BY(mu_) = Slot::kEmpty;
  std::atomic<bool> enabled_{false};

  // Cached registry handles (telemetry may be compiled out → null-safe use).
  std::array<HistogramMetric*, kStageCount> stage_hist_{};
  Counter* breaches_total_ = nullptr;
  Counter* read_breaches_total_ = nullptr;
  Counter* write_breaches_total_ = nullptr;
  Gauge* last_window_breaches_ = nullptr;
};

/// Process-global attribution engine (disabled until configure()).
Attribution& attribution();

}  // namespace oaf::telemetry

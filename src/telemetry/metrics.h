// Metrics registry: named counters, gauges, and latency histograms with
// Prometheus-text and JSON exposition (ROADMAP: observability prerequisite
// for runtime adaptivity — you cannot steer shm-vs-TCP, chunk size, or poll
// budgets on signals you cannot see).
//
// Design rules:
//   - Registration is slow-path (mutex, name-keyed dedupe); recording is
//     hot-path (one relaxed atomic RMW for counters/gauges, a short mutex
//     for histograms, which record once per I/O, not per byte).
//   - Handles returned by counter()/gauge()/histogram() are stable for the
//     registry's lifetime — components cache them at construction and never
//     look up by name on the data path.
//   - Callback gauges sample external state (shm slot occupancy, active
//     associations) at exposition time; handles are RAII so a component that
//     dies stops being sampled. Several callbacks may share one metric name:
//     exposition sums them (e.g. slot occupancy across endpoints).
//   - Exposition output is sorted by name, so it is deterministic.
//
// Templatized over an atomics policy (common/atomics_policy.h): production
// uses the Counter/Gauge/MetricsRegistry aliases (std::atomic/std::mutex);
// the deterministic model checker instantiates the Basic* forms with
// chk::CheckedPolicy to verify the concurrent find-or-create and hot-path
// protocols (tests/chk/metrics_model_test.cpp). The registration/exposition
// slow paths are ordinary template members; exposition bodies live in
// metrics.cpp and are only instantiated for the production policy.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/atomics_policy.h"
#include "common/thread_annotations.h"
#include "common/histogram.h"
#include "common/types.h"

namespace oaf::telemetry {

/// Monotonically increasing event count. Safe from any thread.
template <typename Policy = StdAtomicsPolicy>
class BasicCounter {
 public:
  void inc(u64 delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] u64 value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  typename Policy::template atomic<u64> v_{0};
};

/// Instantaneous signed value. Safe from any thread.
template <typename Policy = StdAtomicsPolicy>
class BasicGauge {
 public:
  void set(i64 v) { v_.store(v, std::memory_order_relaxed); }
  void add(i64 delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] i64 value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  typename Policy::template atomic<i64> v_{0};
};

/// Latency distribution (wraps common/histogram.h). The mutex is fine for
/// per-I/O recording cadence; engines that need per-byte rates use counters.
template <typename Policy = StdAtomicsPolicy>
class BasicHistogramMetric {
 public:
  void record(i64 value) {
    typename Policy::lock lk(mu_);
    h_.record(value);
  }
  [[nodiscard]] Histogram snapshot() const {
    typename Policy::lock lk(mu_);
    return h_;
  }
  void reset() {
    typename Policy::lock lk(mu_);
    h_.reset();
  }

 private:
  mutable typename Policy::mutex mu_;
  Histogram h_ OAF_GUARDED_BY(mu_);
};

template <typename Policy = StdAtomicsPolicy>
class BasicMetricsRegistry {
 public:
  using Counter = BasicCounter<Policy>;
  using Gauge = BasicGauge<Policy>;
  using HistogramMetric = BasicHistogramMetric<Policy>;

  BasicMetricsRegistry() = default;
  BasicMetricsRegistry(const BasicMetricsRegistry&) = delete;
  BasicMetricsRegistry& operator=(const BasicMetricsRegistry&) = delete;

  /// Find-or-create. A second registration under the same name returns the
  /// same handle (components on different connections share process totals).
  Counter* counter(std::string_view name, std::string_view help) {
    typename Policy::lock lk(mu_);
    return find_or_create(counters_, name, help,
                          [] { return std::make_unique<Counter>(); });
  }
  Gauge* gauge(std::string_view name, std::string_view help) {
    typename Policy::lock lk(mu_);
    return find_or_create(gauges_, name, help,
                          [] { return std::make_unique<Gauge>(); });
  }
  HistogramMetric* histogram(std::string_view name, std::string_view help) {
    typename Policy::lock lk(mu_);
    return find_or_create(
        histograms_, name, help,
        [] { return std::make_unique<HistogramMetric>(); });
  }

  /// RAII registration for a sampled gauge. Destroying (or move-assigning
  /// over) the handle unregisters the callback.
  class CallbackHandle {
   public:
    CallbackHandle() = default;
    CallbackHandle(CallbackHandle&& o) noexcept { *this = std::move(o); }
    CallbackHandle& operator=(CallbackHandle&& o) noexcept {
      release();
      registry_ = o.registry_;
      id_ = o.id_;
      o.registry_ = nullptr;
      return *this;
    }
    CallbackHandle(const CallbackHandle&) = delete;
    CallbackHandle& operator=(const CallbackHandle&) = delete;
    ~CallbackHandle() { release(); }

   private:
    friend class BasicMetricsRegistry;
    CallbackHandle(BasicMetricsRegistry* r, u64 id) : registry_(r), id_(id) {}
    void release() {
      if (registry_ == nullptr) return;
      typename Policy::lock lk(registry_->mu_);
      for (auto it = registry_->callbacks_.begin();
           it != registry_->callbacks_.end();) {
        auto& vec = it->second;
        for (size_t i = vec.size(); i > 0; --i) {
          if (vec[i - 1].id == id_) vec.erase(vec.begin() + (i - 1));
        }
        if (vec.empty()) {
          it = registry_->callbacks_.erase(it);
        } else {
          ++it;
        }
      }
      registry_ = nullptr;
    }
    BasicMetricsRegistry* registry_ = nullptr;
    u64 id_ = 0;
  };

  /// Register `fn` to be sampled at exposition time under `name`. Callbacks
  /// sharing a name are summed. `fn` must stay valid until the handle dies
  /// and must not call back into the registry.
  [[nodiscard]] CallbackHandle callback_gauge(std::string_view name,
                                              std::string_view help,
                                              std::function<i64()> fn) {
    typename Policy::lock lk(mu_);
    const u64 id = next_callback_id_++;
    auto it = callbacks_.find(name);
    if (it == callbacks_.end()) {
      it = callbacks_.emplace(std::string(name), std::vector<CallbackEntry>{})
               .first;
    }
    it->second.push_back(CallbackEntry{id, std::string(help), std::move(fn)});
    return CallbackHandle(this, id);
  }

  /// Prometheus text exposition format, metrics sorted by name.
  [[nodiscard]] std::string to_prometheus() const;

  /// One JSON object: {"counters":{..},"gauges":{..},"histograms":{..}}.
  /// Callback gauges appear under "gauges".
  [[nodiscard]] std::string to_json() const;

  /// Number of distinct metric names currently registered.
  [[nodiscard]] size_t size() const {
    typename Policy::lock lk(mu_);
    size_t n = counters_.size() + gauges_.size() + histograms_.size();
    for (const auto& [name, entries] : callbacks_) {
      (void)entries;
      // A callback name not shadowed by a stored gauge is its own metric.
      if (gauges_.find(name) == gauges_.end()) n++;
    }
    return n;
  }

  /// Zero every counter/gauge/histogram (callback gauges sample live state
  /// and are unaffected). Tests only — production totals are monotonic.
  void reset_for_test() {
    typename Policy::lock lk(mu_);
    for (auto& [name, entry] : counters_) entry.second->reset();
    for (auto& [name, entry] : gauges_) entry.second->set(0);
    for (auto& [name, entry] : histograms_) entry.second->reset();
  }

 private:
  struct CallbackEntry {
    u64 id = 0;
    std::string help;
    std::function<i64()> fn;
  };

  template <typename Map, typename Factory>
  static auto* find_or_create(Map& map, std::string_view name,
                              std::string_view help, Factory make) {
    auto it = map.find(name);
    if (it == map.end()) {
      it = map.emplace(std::string(name),
                       std::make_pair(std::string(help), make()))
               .first;
    }
    return it->second.second.get();
  }

  /// Snapshot of callback gauges summed by name, taken under the mutex.
  [[nodiscard]] std::map<std::string, std::pair<std::string, i64>>
  sample_callbacks_locked() const OAF_REQUIRES(mu_);

  mutable typename Policy::mutex mu_;
  std::map<std::string, std::pair<std::string, std::unique_ptr<Counter>>,
           std::less<>>
      counters_ OAF_GUARDED_BY(mu_);
  std::map<std::string, std::pair<std::string, std::unique_ptr<Gauge>>,
           std::less<>>
      gauges_ OAF_GUARDED_BY(mu_);
  std::map<std::string,
           std::pair<std::string, std::unique_ptr<HistogramMetric>>,
           std::less<>>
      histograms_ OAF_GUARDED_BY(mu_);
  std::map<std::string, std::vector<CallbackEntry>, std::less<>> callbacks_
      OAF_GUARDED_BY(mu_);
  u64 next_callback_id_ OAF_GUARDED_BY(mu_) = 1;
};

/// Prometheus text-format escaping (exposition format spec): HELP text
/// escapes backslash and newline; label values additionally escape the
/// double quote. Without these a help string containing a newline would
/// corrupt the whole exposition (the remainder of the line parses as a
/// sample).
[[nodiscard]] std::string prometheus_escape_help(std::string_view s);
[[nodiscard]] std::string prometheus_escape_label(std::string_view s);

/// Production metrics types (std::atomic/std::mutex policy).
using Counter = BasicCounter<StdAtomicsPolicy>;
using Gauge = BasicGauge<StdAtomicsPolicy>;
using HistogramMetric = BasicHistogramMetric<StdAtomicsPolicy>;
using MetricsRegistry = BasicMetricsRegistry<StdAtomicsPolicy>;

extern template class BasicMetricsRegistry<StdAtomicsPolicy>;

}  // namespace oaf::telemetry

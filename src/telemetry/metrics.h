// Metrics registry: named counters, gauges, and latency histograms with
// Prometheus-text and JSON exposition (ROADMAP: observability prerequisite
// for runtime adaptivity — you cannot steer shm-vs-TCP, chunk size, or poll
// budgets on signals you cannot see).
//
// Design rules:
//   - Registration is slow-path (mutex, name-keyed dedupe); recording is
//     hot-path (one relaxed atomic RMW for counters/gauges, a short mutex
//     for histograms, which record once per I/O, not per byte).
//   - Handles returned by counter()/gauge()/histogram() are stable for the
//     registry's lifetime — components cache them at construction and never
//     look up by name on the data path.
//   - Callback gauges sample external state (shm slot occupancy, active
//     associations) at exposition time; handles are RAII so a component that
//     dies stops being sampled. Several callbacks may share one metric name:
//     exposition sums them (e.g. slot occupancy across endpoints).
//   - Exposition output is sorted by name, so it is deterministic.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"

namespace oaf::telemetry {

/// Monotonically increasing event count. Safe from any thread.
class Counter {
 public:
  void inc(u64 delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] u64 value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<u64> v_{0};
};

/// Instantaneous signed value. Safe from any thread.
class Gauge {
 public:
  void set(i64 v) { v_.store(v, std::memory_order_relaxed); }
  void add(i64 delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] i64 value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<i64> v_{0};
};

/// Latency distribution (wraps common/histogram.h). The mutex is fine for
/// per-I/O recording cadence; engines that need per-byte rates use counters.
class HistogramMetric {
 public:
  void record(i64 value) {
    std::lock_guard<std::mutex> lk(mu_);
    h_.record(value);
  }
  [[nodiscard]] Histogram snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    return h_;
  }
  void reset() {
    std::lock_guard<std::mutex> lk(mu_);
    h_.reset();
  }

 private:
  mutable std::mutex mu_;
  Histogram h_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. A second registration under the same name returns the
  /// same handle (components on different connections share process totals).
  Counter* counter(std::string_view name, std::string_view help);
  Gauge* gauge(std::string_view name, std::string_view help);
  HistogramMetric* histogram(std::string_view name, std::string_view help);

  /// RAII registration for a sampled gauge. Destroying (or move-assigning
  /// over) the handle unregisters the callback.
  class CallbackHandle {
   public:
    CallbackHandle() = default;
    CallbackHandle(CallbackHandle&& o) noexcept { *this = std::move(o); }
    CallbackHandle& operator=(CallbackHandle&& o) noexcept {
      release();
      registry_ = o.registry_;
      id_ = o.id_;
      o.registry_ = nullptr;
      return *this;
    }
    CallbackHandle(const CallbackHandle&) = delete;
    CallbackHandle& operator=(const CallbackHandle&) = delete;
    ~CallbackHandle() { release(); }

   private:
    friend class MetricsRegistry;
    CallbackHandle(MetricsRegistry* r, u64 id) : registry_(r), id_(id) {}
    void release();
    MetricsRegistry* registry_ = nullptr;
    u64 id_ = 0;
  };

  /// Register `fn` to be sampled at exposition time under `name`. Callbacks
  /// sharing a name are summed. `fn` must stay valid until the handle dies
  /// and must not call back into the registry.
  [[nodiscard]] CallbackHandle callback_gauge(std::string_view name,
                                              std::string_view help,
                                              std::function<i64()> fn);

  /// Prometheus text exposition format, metrics sorted by name.
  [[nodiscard]] std::string to_prometheus() const;

  /// One JSON object: {"counters":{..},"gauges":{..},"histograms":{..}}.
  /// Callback gauges appear under "gauges".
  [[nodiscard]] std::string to_json() const;

  /// Number of distinct metric names currently registered.
  [[nodiscard]] size_t size() const;

  /// Zero every counter/gauge/histogram (callback gauges sample live state
  /// and are unaffected). Tests only — production totals are monotonic.
  void reset_for_test();

 private:
  struct CallbackEntry {
    u64 id = 0;
    std::string help;
    std::function<i64()> fn;
  };

  /// Snapshot of callback gauges summed by name, taken under the mutex.
  [[nodiscard]] std::map<std::string, std::pair<std::string, i64>>
  sample_callbacks_locked() const;

  mutable std::mutex mu_;
  std::map<std::string, std::pair<std::string, std::unique_ptr<Counter>>,
           std::less<>>
      counters_;
  std::map<std::string, std::pair<std::string, std::unique_ptr<Gauge>>,
           std::less<>>
      gauges_;
  std::map<std::string, std::pair<std::string, std::unique_ptr<HistogramMetric>>,
           std::less<>>
      histograms_;
  std::map<std::string, std::vector<CallbackEntry>, std::less<>> callbacks_;
  u64 next_callback_id_ = 1;
};

}  // namespace oaf::telemetry

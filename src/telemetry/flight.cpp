#include "telemetry/flight.h"

#include <csignal>
#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "common/json.h"
#include "common/log.h"
#include "telemetry/telemetry.h"

namespace oaf::telemetry {

namespace {

void fatal_signal_handler(int signo) {
  // Best-effort postmortem; see the async-signal-safety note in flight.h.
  flight().dump_now(strsignal(signo) != nullptr ? strsignal(signo) : "signal");
  // Restore default disposition and re-raise so the process still dies with
  // the original signal (core dumps, wait status, CI markers all intact).
  std::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

FlightRecorder::FlightRecorder(size_t capacity) : ring_(capacity) {
  ring_.set_enabled(true);
  track_ = ring_.track("flight");
}

void FlightRecorder::install(const FlightOptions& opts) {
  dir_ = opts.dir.empty() ? "." : opts.dir;
  if (opts.fatal_signals && !armed_) {
    for (int signo : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
      struct sigaction sa = {};
      sa.sa_handler = fatal_signal_handler;
      sigemptyset(&sa.sa_mask);
      // SA_NODEFER is NOT set: a crash inside the handler re-enters with
      // the signal blocked -> default action, no infinite loop.
      sa.sa_flags = 0;
      sigaction(signo, &sa, nullptr);
    }
  }
  armed_ = true;
}

std::string FlightRecorder::dump_now(const char* reason) {
  if (!armed_) return {};
  bool expected = false;
  if (!dumping_.compare_exchange_strong(expected, true)) return {};

  const std::string path =
      dir_ + "/oaf_flight_" + std::to_string(::getpid()) + ".json";

  JsonWriter w;
  w.begin_object();
  w.key("reason").value(reason != nullptr ? reason : "unknown");
  w.key("pid").value(static_cast<u64>(::getpid()));
  w.key("dropped_events").value(ring_.dropped());
  // Chrome-trace form so the postmortem loads straight into Perfetto.
  w.key("trace").raw(ring_.to_chrome_json());
  w.key("metrics").raw(metrics().to_json());
  w.end_object();
  const std::string doc = w.take();

  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    dumping_.store(false);
    return {};
  }
  const bool wrote = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  const bool closed = std::fclose(f) == 0;
  dumping_.store(false);
  if (!wrote || !closed) return {};
  OAF_WARN("flight recorder dumped to %s (reason: %s)", path.c_str(),
           reason != nullptr ? reason : "unknown");
  return path;
}

FlightRecorder& flight() {
  static FlightRecorder* instance = new FlightRecorder();
  return *instance;
}

}  // namespace oaf::telemetry

#include "telemetry/telemetry.h"

namespace oaf::telemetry {

MetricsRegistry& metrics() {
  static MetricsRegistry* r = new MetricsRegistry();  // leaked: outlive statics
  return *r;
}

TraceRecorder& tracer() {
  static TraceRecorder* t = new TraceRecorder();
  return *t;
}

}  // namespace oaf::telemetry

#include "telemetry/attribution.h"

#include <algorithm>

#include "common/json.h"
#include "telemetry/telemetry.h"

namespace oaf::telemetry {

namespace {

constexpr const char* kStageNames[kStageCount] = {
    "queue", "encode", "grant", "xfer", "device", "target", "complete",
    "detour"};

constexpr const char* kClassNames[kOpClassCount] = {"read", "write"};

/// Registry histogram names, one per stage (audited: histograms end _ns).
constexpr const char* kStageMetricNames[kStageCount] = {
    "oaf_stage_queue_ns",  "oaf_stage_encode_ns", "oaf_stage_grant_ns",
    "oaf_stage_xfer_ns",   "oaf_stage_device_ns", "oaf_stage_target_ns",
    "oaf_stage_complete_ns", "oaf_stage_detour_ns"};

void histogram_json(JsonWriter& w, const Histogram& h) {
  w.begin_object();
  w.key("count").value(h.count());
  w.key("p50").value(h.p50());
  w.key("p99").value(h.p99());
  w.key("p999").value(h.p999());
  w.key("max").value(h.max());
  w.end_object();
}

}  // namespace

const char* to_string(Stage s) {
  const auto i = static_cast<size_t>(s);
  return i < kStageCount ? kStageNames[i] : "?";
}

const char* to_string(OpClass c) {
  const auto i = static_cast<size_t>(c);
  return i < kOpClassCount ? kClassNames[i] : "?";
}

Attribution::Attribution() {
  for (size_t s = 0; s < kStageCount; ++s) {
    stage_hist_[s] = metrics().histogram(
        kStageMetricNames[s], "Cumulative per-I/O time in this stage");
  }
  breaches_total_ =
      metrics().counter("oaf_slo_breaches_total", "I/Os that breached their SLO");
  read_breaches_total_ = metrics().counter("oaf_slo_read_breaches_total",
                                           "Read I/Os over --slo-read-us");
  write_breaches_total_ = metrics().counter("oaf_slo_write_breaches_total",
                                            "Write I/Os over --slo-write-us");
  last_window_breaches_ =
      metrics().gauge("oaf_slo_last_window_breaches",
                      "SLO breaches in the last completed window");
  slots_.resize(opts_.windows);
}

void Attribution::configure(const AttributionOptions& opts) {
  {
    MutexLock lk(mu_);
    opts_ = opts;
    if (opts_.window_ns <= 0) opts_.window_ns = 1'000'000'000;
    if (opts_.windows == 0) opts_.windows = 1;
    slots_.assign(opts_.windows, Slot{});
    last_widx_ = Slot::kEmpty;
  }
  set_enabled(true);
}

AttributionOptions Attribution::options() const {
  MutexLock lk(mu_);
  return opts_;
}

DurNs Attribution::slo_for(OpClass c) const {
  MutexLock lk(mu_);
  return c == OpClass::kWrite ? opts_.slo_write_ns : opts_.slo_read_ns;
}

Attribution::Slot& Attribution::slot_for_locked(TimeNs now) {
  if (now < 0) now = 0;
  const u64 widx = static_cast<u64>(now) / static_cast<u64>(opts_.window_ns);
  Slot& slot = slots_[widx % slots_.size()];
  if (slot.widx != widx) {
    // Rotation: the previous current window (if it still lives in the ring)
    // is now complete — publish its breach total before anything is lost.
    if (last_widx_ != Slot::kEmpty && widx > last_widx_ &&
        last_window_breaches_ != nullptr) {
      const Slot& prev = slots_[last_widx_ % slots_.size()];
      if (prev.widx == last_widx_) {
        last_window_breaches_->set(
            static_cast<i64>(prev.breaches[0] + prev.breaches[1]));
      }
    }
    slot.reset(widx);
  }
  if (last_widx_ == Slot::kEmpty || widx > last_widx_) last_widx_ = widx;
  return slot;
}

void Attribution::push_top_locked(Slot& slot, const TopEntry& e) {
  // Sorted slowest-first; evict the fastest (back) when over top_k. The
  // bound keeps insertion O(top_k) — fine at per-I/O cadence for small K.
  if (slot.top.size() >= opts_.top_k && !slot.top.empty() &&
      e.total_ns <= slot.top.back().total_ns) {
    return;
  }
  auto it = std::upper_bound(
      slot.top.begin(), slot.top.end(), e,
      [](const TopEntry& a, const TopEntry& b) { return a.total_ns > b.total_ns; });
  slot.top.insert(it, e);
  if (slot.top.size() > opts_.top_k) slot.top.pop_back();
}

bool Attribution::record(OpClass op, const StageLedger& ledger, i64 total_ns,
                         u64 trace_id, TimeNs now) {
  if (!enabled()) return false;
  if (total_ns < 0) total_ns = 0;

  MutexLock lk(mu_);
  Slot& slot = slot_for_locked(now);

  for (size_t s = 0; s < kStageCount; ++s) {
    if (!ledger.was_touched(static_cast<Stage>(s))) continue;
    slot.stages[s].record(ledger.stage_ns[s]);
    if (stage_hist_[s] != nullptr) stage_hist_[s]->record(ledger.stage_ns[s]);
  }
  const auto cls = static_cast<size_t>(op);
  slot.classes[cls].record(total_ns);

  const DurNs slo =
      op == OpClass::kWrite ? opts_.slo_write_ns : opts_.slo_read_ns;
  const bool breach = slo > 0 && total_ns > slo;
  if (breach) {
    slot.breaches[cls]++;
    bump(breaches_total_);
    bump(op == OpClass::kWrite ? write_breaches_total_ : read_breaches_total_);
  }

  TopEntry e;
  e.total_ns = total_ns;
  e.trace_id = trace_id;
  e.op = op;
  e.stage_ns = ledger.stage_ns;
  push_top_locked(slot, e);
  return breach;
}

void Attribution::record_detour(OpClass op, DurNs detour_ns, TimeNs now) {
  if (!enabled() || detour_ns <= 0) return;
  MutexLock lk(mu_);
  Slot& slot = slot_for_locked(now);
  (void)op;
  const auto d = static_cast<size_t>(Stage::kDetour);
  slot.stages[d].record(detour_ns);
  if (stage_hist_[d] != nullptr) stage_hist_[d]->record(detour_ns);
}

std::vector<WindowStats> Attribution::snapshot_windows(TimeNs now) const {
  if (now < 0) now = 0;
  MutexLock lk(mu_);
  const u64 cur = static_cast<u64>(now) / static_cast<u64>(opts_.window_ns);
  const u64 depth = slots_.size();
  const u64 first = cur + 1 >= depth ? cur + 1 - depth : 0;
  std::vector<WindowStats> out;
  for (u64 widx = first; widx <= cur; ++widx) {
    const Slot& slot = slots_[widx % depth];
    if (slot.widx != widx) continue;  // stale or never filled: skip
    WindowStats w;
    w.index = widx;
    w.stages = slot.stages;
    w.classes = slot.classes;
    w.breaches = slot.breaches;
    w.top = slot.top;
    out.push_back(std::move(w));
  }
  return out;
}

std::string Attribution::heat_json(TimeNs now) const {
  const AttributionOptions opts = options();
  const std::vector<WindowStats> windows = snapshot_windows(now);
  JsonWriter w;
  w.begin_object();
  w.key("window_ns").value(static_cast<i64>(opts.window_ns));
  w.key("slo_read_ns").value(static_cast<i64>(opts.slo_read_ns));
  w.key("slo_write_ns").value(static_cast<i64>(opts.slo_write_ns));
  w.key("windows").begin_array();
  for (const WindowStats& win : windows) {
    w.begin_object();
    w.key("index").value(win.index);
    w.key("start_ns").value(
        static_cast<i64>(win.index * static_cast<u64>(opts.window_ns)));
    w.key("stages").begin_object();
    for (size_t s = 0; s < kStageCount; ++s) {
      if (win.stages[s].count() == 0) continue;
      w.key(kStageNames[s]);
      histogram_json(w, win.stages[s]);
    }
    w.end_object();
    w.key("classes").begin_object();
    for (size_t c = 0; c < kOpClassCount; ++c) {
      if (win.classes[c].count() == 0 && win.breaches[c] == 0) continue;
      w.key(kClassNames[c]).begin_object();
      w.key("count").value(win.classes[c].count());
      w.key("p50").value(win.classes[c].p50());
      w.key("p99").value(win.classes[c].p99());
      w.key("p999").value(win.classes[c].p999());
      w.key("max").value(win.classes[c].max());
      w.key("breaches").value(win.breaches[c]);
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string Attribution::top_json(TimeNs now) const {
  const AttributionOptions opts = options();
  const std::vector<WindowStats> windows = snapshot_windows(now);
  JsonWriter w;
  w.begin_object();
  w.key("window_ns").value(static_cast<i64>(opts.window_ns));
  w.key("windows").begin_array();
  for (const WindowStats& win : windows) {
    w.begin_object();
    w.key("index").value(win.index);
    w.key("top").begin_array();
    for (const TopEntry& e : win.top) {
      w.begin_object();
      w.key("total_ns").value(e.total_ns);
      w.key("trace_id").value(e.trace_id);
      w.key("op").value(to_string(e.op));
      w.key("stages").begin_object();
      for (size_t s = 0; s < kStageCount; ++s) {
        if (e.stage_ns[s] == 0) continue;
        w.key(kStageNames[s]).value(e.stage_ns[s]);
      }
      w.end_object();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string Attribution::summary_json() const {
  JsonWriter w;
  w.begin_object();
  for (size_t s = 0; s < kStageCount; ++s) {
    if (stage_hist_[s] == nullptr) continue;
    const Histogram h = stage_hist_[s]->snapshot();
    w.key(kStageNames[s]).begin_object();
    w.key("count").value(h.count());
    w.key("mean").value(h.mean());
    w.key("p50").value(h.p50());
    w.key("p99").value(h.p99());
    w.key("p999").value(h.p999());
    w.key("max").value(h.max());
    w.end_object();
  }
  w.end_object();
  return w.take();
}

void Attribution::reset_for_test() {
  MutexLock lk(mu_);
  for (Slot& s : slots_) s = Slot{};
  last_widx_ = Slot::kEmpty;
}

Attribution& attribution() {
  static Attribution* instance = new Attribution();
  return *instance;
}

}  // namespace oaf::telemetry

#include "telemetry/stat_server.h"

#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/log.h"

namespace oaf::telemetry {

namespace {

bool send_all(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n <= 0) return false;
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

void StatServer::handle(const std::string& name,
                        std::function<std::string()> provider) {
  handlers_[name] = std::move(provider);
}

Status StatServer::start(u16 port) {
  if (running()) return make_error(StatusCode::kFailedPrecondition,
                                   "stat server already running");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return make_error(StatusCode::kInternal, "socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 8) != 0) {
    ::close(fd);
    return make_error(StatusCode::kInternal, "bind/listen failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return make_error(StatusCode::kInternal, "getsockname failed");
  }
  port_.store(ntohs(addr.sin_port), std::memory_order_release);
  listen_fd_.store(fd, std::memory_order_release);
  thread_ = std::thread([this, fd] { serve(fd); });
  OAF_INFO("stat server listening on 127.0.0.1:%u", ntohs(addr.sin_port));
  return Status::ok();
}

void StatServer::stop() {
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd < 0) return;
  // shutdown() unblocks the accept() in the server thread; join BEFORE
  // close so the fd number cannot be recycled under a still-blocked
  // accept() (the affinity/lock annotation pass flagged the old
  // close-then-join order).
  ::shutdown(fd, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(fd);
  port_.store(0, std::memory_order_release);
}

void StatServer::serve(const int listen_fd) {
  while (true) {
    const int client = ::accept(listen_fd, nullptr, nullptr);
    if (client < 0) return;  // listener closed by stop()

    std::string line;
    char c = 0;
    while (line.size() < 256 && ::recv(client, &c, 1, 0) == 1) {
      if (c == '\n') break;
      if (c != '\r') line.push_back(c);
    }

    std::string response;
    const auto it = handlers_.find(line);
    if (it != handlers_.end()) {
      response = it->second();
      if (response.empty() || response.back() != '\n') response += '\n';
    } else if (line == "help") {
      for (const auto& [name, fn] : handlers_) {
        response += name;
        response += '\n';
      }
      response += "help\n";
    } else {
      response = "ERR unknown command " + line + "\n";
    }
    send_all(client, response.data(), response.size());
    ::close(client);
  }
}

Result<std::string> stat_query(u16 port, const std::string& command) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return make_error(StatusCode::kInternal, "socket() failed");
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return make_error(StatusCode::kUnavailable,
                      "connect to 127.0.0.1:" + std::to_string(port) +
                          " failed");
  }
  std::string req = command + "\n";
  if (!send_all(fd, req.data(), req.size())) {
    ::close(fd);
    return make_error(StatusCode::kInternal, "send failed");
  }
  std::string out;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

}  // namespace oaf::telemetry

// Live introspection endpoint: a tiny line-protocol TCP server.
//
// Opt-in (--stat-port in oaf_target / oaf_perf): binds 127.0.0.1:<port>,
// accepts one command line per connection, writes the response, closes.
// Protocol: the client sends a command name terminated by '\n'; unknown
// commands get "ERR unknown command <name>\n". Standard commands:
//
//   metrics   Prometheus text exposition of the process registry
//   conns     per-connection state (JSON): channel kind, epoch, in-flight,
//             resilience counters
//   trace     current trace-ring snapshot (Chrome trace JSON)
//   help      the registered command list
//
// Providers are plain std::function<std::string()> registered by the tool;
// they run on the server thread, so a provider that touches reactor-owned
// state must marshal onto the executor itself (oaf_target's conns provider
// posts to the executor and waits). The server owns one background thread;
// stop() (or destruction) shuts it down deterministically.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/types.h"

namespace oaf::telemetry {

class StatServer {
 public:
  StatServer() = default;
  ~StatServer() { stop(); }

  StatServer(const StatServer&) = delete;
  StatServer& operator=(const StatServer&) = delete;

  /// Register `name` -> provider. Call before start(); the command table is
  /// read-only once the server thread runs.
  void handle(const std::string& name, std::function<std::string()> provider);

  /// Bind 127.0.0.1:`port` (0 = ephemeral; see port()) and start serving.
  Status start(u16 port);

  /// Port actually bound (useful with port 0), 0 when not running.
  [[nodiscard]] u16 port() const {
    return port_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool running() const {
    return listen_fd_.load(std::memory_order_acquire) >= 0;
  }

  /// Shut down: unblock the accept, join the thread, then close the
  /// listener. Ordering matters — closing before the join lets the kernel
  /// recycle the fd number while serve() is still blocked in accept() on
  /// it, silently attaching the stat server to an unrelated socket.
  void stop();

 private:
  /// Runs on the server thread with its own copy of the listener fd, so it
  /// never observes stop()'s teardown writes.
  void serve(int listen_fd);

  /// Written by handle() before start(), read by the server thread after —
  /// const from the thread's point of view, so no lock is needed.
  std::map<std::string, std::function<std::string()>> handlers_;
  std::thread thread_;
  std::atomic<int> listen_fd_{-1};
  std::atomic<u16> port_{0};
};

/// One-shot client helper: connect to 127.0.0.1:`port`, send `command`,
/// return the full response. Shared by tools/oaf_stat and the tests.
Result<std::string> stat_query(u16 port, const std::string& command);

}  // namespace oaf::telemetry

#include "telemetry/metrics.h"

#include <cstdio>

#include "common/json.h"

namespace oaf::telemetry {

std::string prometheus_escape_help(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string prometheus_escape_label(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '"') {
      out += "\\\"";
    } else {
      out += c;
    }
  }
  return out;
}

namespace {

void append_header(std::string& out, const std::string& name,
                   const std::string& help, const char* type) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += prometheus_escape_help(help);
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

void append_number(std::string& out, u64 v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_number(std::string& out, i64 v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

}  // namespace

// Exposition walks std::string/std::map state that the model checker has no
// instrumentation for, so these members are defined here and instantiated
// only for the production policy; checked-policy models never call them.

template <typename Policy>
std::map<std::string, std::pair<std::string, i64>>
BasicMetricsRegistry<Policy>::sample_callbacks_locked() const {
  std::map<std::string, std::pair<std::string, i64>> out;
  for (const auto& [name, entries] : callbacks_) {
    if (entries.empty()) continue;
    i64 sum = 0;
    for (const auto& e : entries) sum += e.fn ? e.fn() : 0;
    out.emplace(name, std::make_pair(entries.front().help, sum));
  }
  return out;
}

template <typename Policy>
std::string BasicMetricsRegistry<Policy>::to_prometheus() const {
  typename Policy::lock lk(mu_);
  // Blocks keyed by metric name so the merged output is globally sorted
  // regardless of which kind each metric is.
  std::map<std::string, std::string> blocks;

  for (const auto& [name, entry] : counters_) {
    std::string b;
    append_header(b, name, entry.first, "counter");
    b += name;
    b += ' ';
    append_number(b, entry.second->value());
    b += '\n';
    blocks[name] = std::move(b);
  }
  for (const auto& [name, entry] : gauges_) {
    std::string b;
    append_header(b, name, entry.first, "gauge");
    b += name;
    b += ' ';
    append_number(b, entry.second->value());
    b += '\n';
    blocks[name] = std::move(b);
  }
  for (const auto& [name, help_value] : sample_callbacks_locked()) {
    std::string b;
    append_header(b, name, help_value.first, "gauge");
    b += name;
    b += ' ';
    append_number(b, help_value.second);
    b += '\n';
    blocks[name] = std::move(b);
  }
  static constexpr struct {
    const char* label;
    double q;
  } kQuantiles[] = {{"0.5", 0.50}, {"0.99", 0.99}, {"0.999", 0.999},
                    {"0.9999", 0.9999}};
  for (const auto& [name, entry] : histograms_) {
    const Histogram h = entry.second->snapshot();
    std::string b;
    append_header(b, name, entry.first, "summary");
    for (const auto& q : kQuantiles) {
      b += name;
      b += "{quantile=\"";
      b += q.label;
      b += "\"} ";
      append_number(b, h.quantile(q.q));
      b += '\n';
    }
    b += name;
    b += "_sum ";
    append_number(b, h.sum());
    b += '\n';
    b += name;
    b += "_count ";
    append_number(b, h.count());
    b += '\n';
    blocks[name] = std::move(b);
  }

  std::string out;
  for (auto& [name, block] : blocks) out += block;
  return out;
}

template <typename Policy>
std::string BasicMetricsRegistry<Policy>::to_json() const {
  typename Policy::lock lk(mu_);
  JsonWriter w;
  w.begin_object();

  w.key("counters").begin_object();
  for (const auto& [name, entry] : counters_) {
    w.key(name).value(entry.second->value());
  }
  w.end_object();

  w.key("gauges").begin_object();
  {
    // Merge stored and callback gauges so the section stays name-sorted.
    const auto sampled = sample_callbacks_locked();
    auto git = gauges_.begin();
    auto cit = sampled.begin();
    while (git != gauges_.end() || cit != sampled.end()) {
      if (cit == sampled.end() ||
          (git != gauges_.end() && git->first < cit->first)) {
        w.key(git->first).value(git->second.second->value());
        ++git;
      } else {
        w.key(cit->first).value(cit->second.second);
        ++cit;
      }
    }
  }
  w.end_object();

  w.key("histograms").begin_object();
  for (const auto& [name, entry] : histograms_) {
    const Histogram h = entry.second->snapshot();
    w.key(name).begin_object();
    w.key("count").value(h.count());
    w.key("min").value(h.min());
    w.key("max").value(h.max());
    w.key("mean").value(h.mean());
    w.key("p50").value(h.p50());
    w.key("p99").value(h.p99());
    w.key("p999").value(h.p999());
    w.key("p9999").value(h.p9999());
    w.end_object();
  }
  w.end_object();

  w.end_object();
  return w.take();
}

template class BasicMetricsRegistry<StdAtomicsPolicy>;

}  // namespace oaf::telemetry

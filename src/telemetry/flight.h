// Always-on flight recorder: a small, compiled-in, drops-oldest trace ring
// that survives even when full tracing is disabled, dumped to a postmortem
// JSON file when the process dies badly.
//
// The main TraceRecorder ring (telemetry/trace.h) is opt-in and sized for
// offline analysis; the flight ring is its black-box sibling — always
// recording the *cheap* events that matter for a postmortem (the resilience
// ladder's deadline/abort/demote/reconnect instants, TermReqs, escalation
// exhaustion) so the last seconds before a crash are reconstructible.
//
// Lifecycle:
//   1. Process start: flight() exists, ring enabled, dumping DISARMED —
//      unit tests that exercise abort paths don't litter the filesystem.
//   2. Tools call flight().install({...}) to arm dumping (and optionally
//      hook fatal signals: SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL).
//   3. On a fatal signal, a received/sent TermReq, or escalation-ladder
//      exhaustion, dump_now(reason) writes oaf_flight_<pid>.json — the ring
//      snapshot (Chrome trace form) plus a full metrics snapshot — then the
//      signal is re-raised with default disposition so the exit status is
//      preserved.
//
// dump_now() from a signal handler is deliberately best-effort: it
// allocates and calls stdio, which is not async-signal-safe. That is the
// standard flight-recorder trade-off — the alternative is no data at all —
// and a recursion guard makes a crash-inside-dump terminate instead of
// looping.
#pragma once

#include <string>

#include "telemetry/trace.h"

namespace oaf::telemetry {

struct FlightOptions {
  std::string dir = ".";       ///< directory for oaf_flight_<pid>.json
  bool fatal_signals = true;   ///< install SIGSEGV/SIGABRT/... handlers
};

class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity = 1024);

  /// The always-enabled ring. Mirror cheap, high-signal events here.
  TraceRecorder& ring() { return ring_; }

  /// Convenience: record an instant on the flight track.
  void note(const char* cat, const char* name, u64 id, TimeNs now,
            const char* arg_name = nullptr, i64 arg = 0) {
    ring_.instant(track_, cat, name, id, now, arg_name, arg);
  }

  /// Arm dumping (and optionally fatal-signal hooks). Idempotent; the
  /// first caller wins the signal-handler installation.
  void install(const FlightOptions& opts);
  [[nodiscard]] bool armed() const { return armed_; }

  /// Write the postmortem file if armed. Returns the path written, or an
  /// empty string when disarmed, re-entered, or on I/O failure.
  std::string dump_now(const char* reason);

 private:
  TraceRecorder ring_;
  u32 track_ = 0;
  std::string dir_ = ".";
  bool armed_ = false;
  std::atomic<bool> dumping_{false};
};

/// Process-global flight recorder (always recording, dump disarmed until
/// install()).
FlightRecorder& flight();

}  // namespace oaf::telemetry

// Merge an initiator trace and a target trace into one Chrome timeline.
//
// Each process exports its own trace ring (telemetry/trace.h) with pid 1 and
// timestamps on its own monotonic clock (ns since process start). The merge
// re-homes the two documents into a single trace:
//
//   - initiator events keep their timestamps and become pid 1
//     ("oaf-initiator"); target events become pid 2 ("oaf-target") with
//     ts shifted by -offset, where offset is the target-minus-initiator
//     clock offset estimated NTP-style during the session (clock_sync.h)
//     and embedded by oaf_perf in the initiator document's
//     otherData.clock_offset_ns;
//   - thread_name metadata from both sides is preserved under the new pids;
//   - a span on the target for an I/O issued by the initiator shares its
//     async id (the CapsuleCmd trace id == the initiator attempt
//     generation), so the two sides of one I/O line up vertically on the
//     corrected timeline and are linked for id-based queries.
//
// Output is byte-deterministic for given inputs (golden-file tested).
#pragma once

#include <string>

#include "common/status.h"
#include "common/types.h"

namespace oaf::telemetry {

struct TraceMergeOptions {
  /// When set, overrides the offset read from the initiator document's
  /// otherData.clock_offset_ns (target clock minus initiator clock, ns).
  bool has_offset_override = false;
  i64 offset_ns_override = 0;
};

/// Merge two Chrome trace JSON documents (as produced by
/// TraceRecorder::to_chrome_json). Returns the merged document.
Result<std::string> merge_chrome_traces(const std::string& initiator_json,
                                        const std::string& target_json,
                                        const TraceMergeOptions& opts = {});

}  // namespace oaf::telemetry

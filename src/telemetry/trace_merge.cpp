#include "telemetry/trace_merge.h"

#include <cmath>

#include "common/json.h"
#include "common/json_parse.h"
#include "telemetry/trace.h"

namespace oaf::telemetry {

namespace {

/// Chrome ts/dur fields are µs with 3 decimals (our writer's convention);
/// recover the exact nanosecond count.
i64 us_field_to_ns(const JsonValue& v) {
  return static_cast<i64>(std::llround(v.as_double() * 1000.0));
}

void emit_us(JsonWriter& w, i64 ns) {
  std::string s;
  detail::append_us(s, ns);
  w.raw(s);
}

/// Re-emit a parsed JSON value. Numbers that are exactly integral are
/// written as integers so values like byte counts survive with full
/// precision (the writer's %.9g double form keeps only 9 significant
/// digits).
void emit_value(JsonWriter& w, const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      w.raw("null");
      break;
    case JsonValue::Kind::kBool:
      w.raw(v.as_bool() ? "true" : "false");
      break;
    case JsonValue::Kind::kNumber: {
      const double d = v.as_double();
      if (std::floor(d) == d && std::fabs(d) < 9.2e18) {
        w.value(static_cast<i64>(d));
      } else {
        w.value(d);
      }
      break;
    }
    case JsonValue::Kind::kString:
      w.value(v.as_string());
      break;
    case JsonValue::Kind::kArray:
      w.begin_array();
      for (const auto& item : v.items()) emit_value(w, item);
      w.end_array();
      break;
    case JsonValue::Kind::kObject:
      w.begin_object();
      for (const auto& [k, mv] : v.members()) {
        w.key(k);
        emit_value(w, mv);
      }
      w.end_object();
      break;
  }
}

/// Emit one trace event under the merged pid; `shift_ns` is subtracted from
/// ts (0 for the initiator side). Member order is preserved so merged
/// documents stay byte-deterministic.
void emit_event(JsonWriter& w, const JsonValue& ev, u64 pid, i64 shift_ns) {
  w.begin_object();
  for (const auto& [k, v] : ev.members()) {
    if (k == "pid") {
      w.key("pid").value(pid);
    } else if (k == "ts") {
      w.key("ts");
      emit_us(w, us_field_to_ns(v) - shift_ns);
    } else if (k == "dur") {
      w.key("dur");
      emit_us(w, us_field_to_ns(v));
    } else {
      w.key(k);
      emit_value(w, v);
    }
  }
  w.end_object();
}

bool is_metadata(const JsonValue& ev) {
  return ev["ph"].as_string() == "M";
}

void emit_side(JsonWriter& w, const JsonValue& doc, u64 pid,
               const char* process_name, i64 shift_ns) {
  // Fresh process_name record (the per-process docs all claim "nvme-oaf").
  w.begin_object();
  w.key("name").value("process_name");
  w.key("ph").value("M");
  w.key("pid").value(pid);
  w.key("tid").value(u64{0});
  w.key("args").begin_object().key("name").value(process_name).end_object();
  w.end_object();

  const JsonValue& events = doc["traceEvents"];
  for (const auto& ev : events.items()) {
    if (is_metadata(ev)) {
      if (ev["name"].as_string() == "process_name") continue;
      emit_event(w, ev, pid, 0);  // thread_name metadata: no ts to shift
    } else {
      emit_event(w, ev, pid, shift_ns);
    }
  }
}

}  // namespace

Result<std::string> merge_chrome_traces(const std::string& initiator_json,
                                        const std::string& target_json,
                                        const TraceMergeOptions& opts) {
  auto init_doc = json_parse(initiator_json);
  if (!init_doc) {
    return make_error(init_doc.status().code(),
                      "initiator trace: " + init_doc.status().to_string());
  }
  auto tgt_doc = json_parse(target_json);
  if (!tgt_doc) {
    return make_error(tgt_doc.status().code(),
                      "target trace: " + tgt_doc.status().to_string());
  }
  const JsonValue& init = init_doc.value();
  const JsonValue& tgt = tgt_doc.value();
  if (!init["traceEvents"].is_array() || !tgt["traceEvents"].is_array()) {
    return make_error(StatusCode::kInvalidArgument,
                      "input is not a Chrome trace document");
  }

  const i64 offset_ns = opts.has_offset_override
                            ? opts.offset_ns_override
                            : init["otherData"]["clock_offset_ns"].as_i64();

  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ns");
  w.key("traceEvents").begin_array();
  emit_side(w, init, 1, "oaf-initiator", 0);
  emit_side(w, tgt, 2, "oaf-target", offset_ns);
  w.end_array();
  w.key("otherData").begin_object();
  w.key("clock_offset_ns").value(offset_ns);
  w.key("initiator_dropped_events")
      .value(init["otherData"]["dropped_events"].as_i64());
  w.key("target_dropped_events")
      .value(tgt["otherData"]["dropped_events"].as_i64());
  w.end_object();
  w.end_object();
  return w.take();
}

}  // namespace oaf::telemetry

// Telemetry entry points: process-global registry/recorder singletons and the
// compile-out gate used by instrumentation sites.
//
// Two independent switches (DESIGN.md §9):
//   - Compile time: building with -DOAF_TELEMETRY_OFF (CMake option
//     OAF_TELEMETRY=OFF) removes every OAF_TEL(...) call site from the
//     binary. The telemetry *types* still compile either way, so tests and
//     tools that use the API directly keep working.
//   - Runtime: the TraceRecorder is additionally gated by set_enabled() — a
//     single relaxed load per record when tracing is off. Counters/gauges
//     stay live whenever compiled in (a relaxed increment is cheaper than a
//     branch-plus-increment would save, and the registry is the source of
//     truth for the target's stats dumps).
#pragma once

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

#if defined(OAF_TELEMETRY_OFF)
#define OAF_TELEMETRY_COMPILED 0
#else
#define OAF_TELEMETRY_COMPILED 1
#endif

#if OAF_TELEMETRY_COMPILED
/// Wrap an instrumentation statement so it vanishes when telemetry is
/// compiled out: OAF_TEL(counter_->inc());
#define OAF_TEL(expr)   \
  do {                  \
    expr;               \
  } while (0)
#else
#define OAF_TEL(expr) \
  do {                \
  } while (0)
#endif

namespace oaf::telemetry {

/// Process-global metrics registry. Components resolve their handles once
/// (construction time) and cache the returned pointers.
MetricsRegistry& metrics();

/// Process-global trace recorder (disabled until set_enabled(true)).
TraceRecorder& tracer();

/// Null-safe counter bump for cached handles that may be absent when
/// telemetry is compiled out or a component skipped registration.
inline void bump(Counter* c, u64 n = 1) {
  if (c != nullptr) c->inc(n);
}

}  // namespace oaf::telemetry

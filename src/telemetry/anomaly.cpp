#include "telemetry/anomaly.h"

#include <cstdio>

#include <unistd.h>

#include "common/json.h"
#include "common/log.h"
#include "telemetry/telemetry.h"

namespace oaf::telemetry {

AnomalyRecorder::AnomalyRecorder(size_t capacity) : ring_(capacity) {
  ring_.set_enabled(true);
  captures_total_ = metrics().counter("oaf_anomaly_captures_total",
                                      "Anomaly capture files written");
}

void AnomalyRecorder::configure(const AnomalyOptions& opts) {
  MutexLock lk(mu_);
  opts_ = opts;
  if (opts_.dir.empty()) opts_.dir = ".";
  armed_ = true;
}

AnomalyOptions AnomalyRecorder::options() const {
  MutexLock lk(mu_);
  return opts_;
}

i64 AnomalyRecorder::begin_capture(TimeNs now) {
  MutexLock lk(mu_);
  if (!armed_) return -1;
  if (static_cast<size_t>(next_index_) >= opts_.max_captures) return -1;
  if (claimed_once_ && now - last_claim_ns_ < opts_.min_interval_ns) return -1;
  claimed_once_ = true;
  last_claim_ns_ = now;
  return next_index_++;
}

std::string AnomalyRecorder::events_json(u64 trace_id, TimeNs from_ns,
                                         TimeNs to_ns, i64 ts_adjust_ns,
                                         size_t max_events) const {
  const std::vector<TraceEvent> events = ring_.snapshot();
  JsonWriter w;
  w.begin_array();
  size_t emitted = 0;
  for (const TraceEvent& ev : events) {
    if (ev.name == nullptr || ev.cat == nullptr) continue;  // blank slot
    const bool ours = trace_id != 0 && ev.id == trace_id;
    const bool neighbour = ev.ts_ns >= from_ns && ev.ts_ns <= to_ns;
    if (!ours && !neighbour) continue;
    if (emitted++ >= max_events) break;
    w.begin_object();
    w.key("name").value(ev.name);
    w.key("cat").value(ev.cat);
    const char ph[2] = {ev.phase, '\0'};
    w.key("ph").value(static_cast<const char*>(ph));
    w.key("ts_ns").value(ev.ts_ns + ts_adjust_ns);
    w.key("id").value(ev.id);
    if (ev.phase == 'X') w.key("dur_ns").value(static_cast<i64>(ev.dur_ns));
    if (ev.arg_name != nullptr) {
      w.key(ev.arg_name).value(ev.arg);
    }
    w.end_object();
  }
  w.end_array();
  return w.take();
}

std::string AnomalyRecorder::capture(const AnomalyContext& ctx) {
  AnomalyOptions opts;
  {
    MutexLock lk(mu_);
    if (!armed_) return {};
    opts = opts_;
  }

  const std::string local_events = events_json(
      ctx.trace_id, ctx.t_from_ns, ctx.t_to_ns, 0, opts.max_events);

  JsonWriter w;
  w.begin_object();
  w.key("reason").value(ctx.reason != nullptr ? ctx.reason : "unknown");
  w.key("trace_id").value(ctx.trace_id);
  w.key("op").value(to_string(ctx.op));
  w.key("total_ns").value(ctx.total_ns);
  w.key("slo_ns").value(ctx.slo_ns);
  w.key("stages").begin_object();
  for (size_t s = 0; s < kStageCount; ++s) {
    if (ctx.stage_ns[s] == 0) continue;
    w.key(to_string(static_cast<Stage>(s))).value(ctx.stage_ns[s]);
  }
  w.end_object();
  w.key("clock_offset_ns").value(ctx.clock_offset_ns);
  w.key("local").begin_object();
  w.key("pid").value(static_cast<u64>(::getpid()));
  w.key("events").raw(local_events);
  w.end_object();
  w.key("remote").begin_object();
  w.key("pid").value(ctx.remote_pid);
  w.key("events").raw(ctx.remote_events_json.empty()
                          ? std::string_view("[]")
                          : std::string_view(ctx.remote_events_json));
  w.end_object();
  // The windowed heatmap as of the breach — which stage was hot is visible
  // without a second tool invocation.
  w.key("heat").raw(attribution().heat_json(ctx.t_to_ns));
  w.end_object();
  const std::string doc = w.take();

  const std::string path =
      opts.dir + "/oaf_anomaly_" + std::to_string(ctx.index) + ".json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return {};
  const bool wrote = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) return {};
  bump(captures_total_);
  OAF_WARN("anomaly capture written to %s (trace_id %llu, %lld ns > %lld ns)",
           path.c_str(), static_cast<unsigned long long>(ctx.trace_id),
           static_cast<long long>(ctx.total_ns),
           static_cast<long long>(ctx.slo_ns));
  return path;
}

void AnomalyRecorder::reset_for_test() {
  MutexLock lk(mu_);
  armed_ = false;
  next_index_ = 0;
  last_claim_ns_ = 0;
  claimed_once_ = false;
  opts_ = AnomalyOptions{};
}

AnomalyRecorder& anomaly() {
  static AnomalyRecorder* instance = new AnomalyRecorder();
  return *instance;
}

}  // namespace oaf::telemetry

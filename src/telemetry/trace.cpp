#include "telemetry/trace.h"

namespace oaf::telemetry {

// The implementation lives in the header (class template over the atomics
// policy); the production instantiation is compiled once, here.
template class BasicTraceRecorder<StdAtomicsPolicy>;

}  // namespace oaf::telemetry

#include "telemetry/trace.h"

#include <cstdio>

#include "common/json.h"

namespace oaf::telemetry {

namespace {

/// Chrome's ts/dur fields are microseconds; emit ns with fixed 3-decimal
/// precision so nanosecond-granular sim timestamps survive round-tripping
/// and output is byte-stable.
void append_us(std::string& out, i64 ns) {
  const char* sign = "";
  if (ns < 0) {
    sign = "-";
    ns = -ns;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%lld.%03lld", sign,
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  out += buf;
}

}  // namespace

TraceRecorder::TraceRecorder(size_t capacity)
    : ring_(capacity > 0 ? capacity : 1) {}

u32 TraceRecorder::track(const std::string& name) {
  std::lock_guard<std::mutex> lk(track_mu_);
  for (size_t i = 0; i < track_names_.size(); ++i) {
    if (track_names_[i] == name) return static_cast<u32>(i + 1);
  }
  track_names_.push_back(name);
  return static_cast<u32>(track_names_.size());
}

u64 TraceRecorder::dropped() const {
  const u64 head = head_.load(std::memory_order_relaxed);
  const u64 cap = ring_.size();
  return head > cap ? head - cap : 0;
}

u64 TraceRecorder::size() const {
  const u64 head = head_.load(std::memory_order_relaxed);
  const u64 cap = ring_.size();
  return head > cap ? cap : head;
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  const u64 head = head_.load(std::memory_order_acquire);
  const u64 cap = ring_.size();
  const u64 first = head > cap ? head - cap : 0;
  std::vector<TraceEvent> out;
  out.reserve(head - first);
  for (u64 i = first; i < head; ++i) out.push_back(ring_[i % cap]);
  return out;
}

std::string TraceRecorder::to_chrome_json() const {
  std::vector<std::string> tracks;
  {
    std::lock_guard<std::mutex> lk(track_mu_);
    tracks = track_names_;
  }
  const std::vector<TraceEvent> events = snapshot();

  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ns");
  w.key("traceEvents").begin_array();

  // Metadata first: one process, each track a named thread lane.
  w.begin_object();
  w.key("name").value("process_name");
  w.key("ph").value("M");
  w.key("pid").value(u64{1});
  w.key("tid").value(u64{0});
  w.key("args").begin_object().key("name").value("nvme-oaf").end_object();
  w.end_object();
  for (size_t i = 0; i < tracks.size(); ++i) {
    w.begin_object();
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(u64{1});
    w.key("tid").value(static_cast<u64>(i + 1));
    w.key("args").begin_object().key("name").value(tracks[i]).end_object();
    w.end_object();
  }

  for (const TraceEvent& ev : events) {
    if (ev.name == nullptr || ev.cat == nullptr) continue;  // torn/blank slot
    w.begin_object();
    w.key("name").value(ev.name);
    w.key("cat").value(ev.cat);
    const char ph[2] = {ev.phase, '\0'};
    w.key("ph").value(static_cast<const char*>(ph));
    w.key("pid").value(u64{1});
    w.key("tid").value(static_cast<u64>(ev.track));
    std::string ts;
    append_us(ts, ev.ts_ns);
    w.key("ts").raw(ts);
    if (ev.phase == 'X') {
      std::string dur;
      append_us(dur, ev.dur_ns);
      w.key("dur").raw(dur);
    }
    if (ev.phase == 'b' || ev.phase == 'e') {
      char idbuf[32];
      std::snprintf(idbuf, sizeof(idbuf), "0x%llx",
                    static_cast<unsigned long long>(ev.id));
      w.key("id").value(static_cast<const char*>(idbuf));
    }
    if (ev.phase == 'i') {
      w.key("s").value("t");  // thread-scoped instant
    }
    if (ev.arg_name != nullptr) {
      w.key("args").begin_object().key(ev.arg_name).value(ev.arg).end_object();
    } else if (ev.phase == 'b' || ev.phase == 'e') {
      // Async events require an args object in some viewers.
      w.key("args").begin_object().end_object();
    }
    w.end_object();
  }

  w.end_array();
  w.key("otherData").begin_object();
  w.key("dropped_events").value(dropped());
  w.end_object();
  w.end_object();
  return w.take();
}

bool TraceRecorder::write_chrome_json(const std::string& path) const {
  const std::string doc = to_chrome_json();
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
  const bool ok = (n == doc.size()) && (std::fclose(f) == 0);
  if (n != doc.size()) std::fclose(f);
  return ok;
}

void TraceRecorder::reset() {
  head_.store(0, std::memory_order_relaxed);
  for (auto& ev : ring_) ev = TraceEvent{};
}

}  // namespace oaf::telemetry

// Per-I/O span recorder: a bounded lock-free ring of trace events exportable
// as Chrome trace_event JSON (chrome://tracing, Perfetto).
//
// One I/O's lifecycle — submit → capsule encode → R2T/in-capsule decision →
// shm slot acquire/park → data transfer → completion, plus abort/retry/
// reconnect detours — renders as nested/async spans across the initiator and
// target tracks on a single timeline. Span begin/end pairs are matched by
// (category, id, name) using async 'b'/'e' phases, so a span may start on the
// initiator thread and be annotated from anywhere that knows the command's
// generation tag.
//
// Recording is wait-free: one relaxed fetch_add on the ring head plus a plain
// slot store. When the ring wraps, the oldest events are overwritten and a
// drop counter advances — exporters say how much history was lost instead of
// silently pretending completeness. Concurrent writers may tear a slot that
// is being overwritten mid-export; export is documented as a quiescent-point
// operation (end of run, signal handler context on its own thread is fine
// because production dumps happen from the executor loop).
//
// All name/category strings must be string literals (or otherwise outlive the
// recorder): slots store `const char*` so recording never allocates.
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"

namespace oaf::telemetry {

struct TraceEvent {
  const char* name = nullptr;  ///< span/instant name (string literal)
  const char* cat = nullptr;   ///< category, groups related spans (literal)
  char phase = 'i';            ///< 'b'/'e' async span, 'X' complete, 'i' instant
  u32 track = 0;               ///< rendered as a thread lane; see track()
  TimeNs ts_ns = 0;            ///< event time (executor clock)
  DurNs dur_ns = 0;            ///< for 'X' only
  u64 id = 0;                  ///< async pairing id (command generation/seq)
  const char* arg_name = nullptr;  ///< optional single argument (literal)
  i64 arg = 0;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity = 1 << 16);

  /// Runtime toggle. record() is a single relaxed load when disabled.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Register (or find) a display lane. Typical names: "init:conn0",
  /// "target:conn0", "af:client". Cheap enough for per-connection setup,
  /// not meant for the per-event path — cache the returned id.
  u32 track(const std::string& name);

  void record(const TraceEvent& ev) {
    if (!enabled()) return;
    const u64 idx = head_.fetch_add(1, std::memory_order_relaxed);
    ring_[idx % ring_.size()] = ev;
  }

  /// Async span begin/end, matched by (cat, id, name).
  void begin(u32 track, const char* cat, const char* name, u64 id, TimeNs now,
             const char* arg_name = nullptr, i64 arg = 0) {
    record({name, cat, 'b', track, now, 0, id, arg_name, arg});
  }
  void end(u32 track, const char* cat, const char* name, u64 id, TimeNs now) {
    record({name, cat, 'e', track, now, 0, id, nullptr, 0});
  }
  /// Complete span: [start, start+dur] known at record time.
  void complete(u32 track, const char* cat, const char* name, u64 id,
                TimeNs start, DurNs dur, const char* arg_name = nullptr,
                i64 arg = 0) {
    record({name, cat, 'X', track, start, dur, id, arg_name, arg});
  }
  /// Zero-duration marker.
  void instant(u32 track, const char* cat, const char* name, u64 id,
               TimeNs now, const char* arg_name = nullptr, i64 arg = 0) {
    record({name, cat, 'i', track, now, 0, id, arg_name, arg});
  }

  /// Events recorded but overwritten by ring wrap-around.
  [[nodiscard]] u64 dropped() const;
  /// Events currently held (min(recorded, capacity)).
  [[nodiscard]] u64 size() const;
  [[nodiscard]] size_t capacity() const { return ring_.size(); }

  /// Copy retained events oldest-first. Quiescent-point operation.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Full Chrome trace_event JSON document (object form, with thread-name
  /// metadata so tracks render with their registered names). Deterministic
  /// for a given event sequence. Quiescent-point operation.
  [[nodiscard]] std::string to_chrome_json() const;

  /// Write to_chrome_json() to `path`; returns false on I/O error.
  bool write_chrome_json(const std::string& path) const;

  /// Drop all events and the drop counter; track registrations survive so
  /// cached track ids stay valid.
  void reset();

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<u64> head_{0};
  std::vector<TraceEvent> ring_;

  mutable std::mutex track_mu_;
  std::vector<std::string> track_names_;
};

}  // namespace oaf::telemetry

// Per-I/O span recorder: a bounded lock-free ring of trace events exportable
// as Chrome trace_event JSON (chrome://tracing, Perfetto).
//
// One I/O's lifecycle — submit → capsule encode → R2T/in-capsule decision →
// shm slot acquire/park → data transfer → completion, plus abort/retry/
// reconnect detours — renders as nested/async spans across the initiator and
// target tracks on a single timeline. Span begin/end pairs are matched by
// (category, id, name) using async 'b'/'e' phases, so a span may start on the
// initiator thread and be annotated from anywhere that knows the command's
// generation tag.
//
// Recording is wait-free: one relaxed fetch_add on the ring head, one CAS to
// claim the slot's sequence word, and the payload copy. Each slot carries a
// seqlock-style sequence number — odd while a writer owns it, even once the
// record for a given ring index is published — so a reader can detect and
// skip records that are mid-write or overwritten during the copy, and a
// writer that finds the slot claimed by a wrap-around racer drops its event
// instead of tearing the slot (collision_drops() counts these). When the
// ring wraps, the oldest events are overwritten and a drop counter advances —
// exporters say how much history was lost instead of silently pretending
// completeness. snapshot()/export may run concurrently with recording; torn
// or in-flight slots are skipped, never emitted.
//
// All name/category strings must be string literals (or otherwise outlive the
// recorder): slots store `const char*` so recording never allocates.
//
// Templatized over an atomics policy (common/atomics_policy.h): production
// uses the TraceRecorder alias (std::atomic); the deterministic model checker
// instantiates BasicTraceRecorder<chk::CheckedPolicy>, where the policy's
// torn_copy interleaves mid-copy so the sequence protocol is verified against
// genuinely torn payloads (tests/chk/trace_ring_model_test.cpp).
#pragma once

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/atomics_policy.h"
#include "common/thread_annotations.h"
#include "common/json.h"
#include "common/types.h"

namespace oaf::telemetry {

struct TraceEvent {
  const char* name = nullptr;  ///< span/instant name (string literal)
  const char* cat = nullptr;   ///< category, groups related spans (literal)
  char phase = 'i';            ///< 'b'/'e' async span, 'X' complete, 'i' instant
  u32 track = 0;               ///< rendered as a thread lane; see track()
  TimeNs ts_ns = 0;            ///< event time (executor clock)
  DurNs dur_ns = 0;            ///< for 'X' only
  u64 id = 0;                  ///< async pairing id (command generation/seq)
  const char* arg_name = nullptr;  ///< optional single argument (literal)
  i64 arg = 0;
};

// Records are copied into/out of the lock-free ring word-by-word under the
// seqlock protocol (Policy::torn_copy/torn_read): the type must stay
// trivially copyable, and growing it widens every slot — deliberate only.
static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "TraceEvent is copied raw through the trace ring");
static_assert(sizeof(void*) != 8 || sizeof(TraceEvent) == 64,
              "TraceEvent slot footprint changed (LP64)");

namespace detail {

/// Chrome's ts/dur fields are microseconds; emit ns with fixed 3-decimal
/// precision so nanosecond-granular sim timestamps survive round-tripping
/// and output is byte-stable.
inline void append_us(std::string& out, i64 ns) {
  const char* sign = "";
  if (ns < 0) {
    sign = "-";
    ns = -ns;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%lld.%03lld", sign,
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  out += buf;
}

}  // namespace detail

template <typename Policy = StdAtomicsPolicy>
class BasicTraceRecorder {
  template <typename U>
  using Atomic = typename Policy::template atomic<U>;

 public:
  explicit BasicTraceRecorder(size_t capacity = 1 << 16)
      : ring_(capacity > 0 ? capacity : 1) {}

  /// Runtime toggle. record() is a single relaxed load when disabled.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Register (or find) a display lane. Typical names: "init:conn0",
  /// "target:conn0", "af:client". Cheap enough for per-connection setup,
  /// not meant for the per-event path — cache the returned id.
  u32 track(const std::string& name) {
    typename Policy::lock lk(track_mu_);
    for (size_t i = 0; i < track_names_.size(); ++i) {
      if (track_names_[i] == name) return static_cast<u32>(i + 1);
    }
    track_names_.push_back(name);
    return static_cast<u32>(track_names_.size());
  }

  void record(const TraceEvent& ev) {
    if (!enabled()) return;
    const u64 idx = head_.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = ring_[idx % ring_.size()];
    // Sequence protocol: the record for ring index i is published when
    // seq == 2*(i+1); a writer owns the slot while seq == 2*(i+1)-1 (odd).
    // Values grow monotonically per slot, so there is no ABA.
    const u64 published = 2 * (idx + 1);
    const u64 claimed = published - 1;
    u64 cur = slot.seq.load(std::memory_order_relaxed);
    if ((cur & 1) != 0 || cur >= claimed ||
        !slot.seq.compare_exchange_strong(cur, claimed,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
      // A wrap-around racer owns this slot (or already published a newer
      // record). Drop OUR event rather than tear THEIRS — recording stays
      // wait-free and no torn record can ever be exported.
      collisions_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // The claim must be visible before any payload word: a snapshot that
    // observes one of our payload stores and re-checks seq (its acquire
    // fence pairs with this release fence) is then guaranteed to see the
    // claim and reject the torn record. A release CAS would NOT give this —
    // release orders prior writes, not the later payload stores.
    Policy::fence(std::memory_order_release);
    Policy::torn_copy(slot.ev, ev);
    slot.seq.store(published, std::memory_order_release);
  }

  /// Async span begin/end, matched by (cat, id, name).
  void begin(u32 track, const char* cat, const char* name, u64 id, TimeNs now,
             const char* arg_name = nullptr, i64 arg = 0) {
    record({name, cat, 'b', track, now, 0, id, arg_name, arg});
  }
  void end(u32 track, const char* cat, const char* name, u64 id, TimeNs now) {
    record({name, cat, 'e', track, now, 0, id, nullptr, 0});
  }
  /// Complete span: [start, start+dur] known at record time.
  void complete(u32 track, const char* cat, const char* name, u64 id,
                TimeNs start, DurNs dur, const char* arg_name = nullptr,
                i64 arg = 0) {
    record({name, cat, 'X', track, start, dur, id, arg_name, arg});
  }
  /// Zero-duration marker.
  void instant(u32 track, const char* cat, const char* name, u64 id,
               TimeNs now, const char* arg_name = nullptr, i64 arg = 0) {
    record({name, cat, 'i', track, now, 0, id, arg_name, arg});
  }

  /// Events recorded but overwritten by ring wrap-around.
  [[nodiscard]] u64 dropped() const {
    const u64 head = head_.load(std::memory_order_relaxed);
    const u64 cap = ring_.size();
    return head > cap ? head - cap : 0;
  }
  /// Events dropped because a wrap-around racer owned the slot (only
  /// possible when writers lap the ring concurrently).
  [[nodiscard]] u64 collision_drops() const {
    return collisions_.load(std::memory_order_relaxed);
  }
  /// Events currently held (min(recorded, capacity)), upper bound when
  /// writers are concurrently wrapping.
  [[nodiscard]] u64 size() const {
    const u64 head = head_.load(std::memory_order_relaxed);
    const u64 cap = ring_.size();
    return head > cap ? cap : head;
  }
  [[nodiscard]] size_t capacity() const { return ring_.size(); }

  /// Copy retained events oldest-first. Safe concurrently with record():
  /// slots that are mid-write or get overwritten during the copy fail the
  /// sequence re-check and are skipped.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const {
    const u64 head = head_.load(std::memory_order_acquire);
    const u64 cap = ring_.size();
    const u64 first = head > cap ? head - cap : 0;
    std::vector<TraceEvent> out;
    out.reserve(head - first);
    for (u64 i = first; i < head; ++i) {
      const Slot& slot = ring_[i % cap];
      const u64 want = 2 * (i + 1);
      if (slot.seq.load(std::memory_order_acquire) != want) continue;
      TraceEvent ev = Policy::torn_read(slot.ev);
      Policy::fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != want) continue;
      out.push_back(ev);
    }
    return out;
  }

  /// Full Chrome trace_event JSON document (object form, with thread-name
  /// metadata so tracks render with their registered names). Deterministic
  /// for a given event sequence. `extra_other_data` entries are appended to
  /// the otherData object — oaf_perf uses this to embed the estimated
  /// initiator<->target clock offset so tools/oaf_trace_merge can correct
  /// target timestamps without a side channel.
  [[nodiscard]] std::string to_chrome_json(
      const std::vector<std::pair<std::string, i64>>& extra_other_data =
          {}) const {
    std::vector<std::string> tracks;
    {
      typename Policy::lock lk(track_mu_);
      tracks = track_names_;
    }
    const std::vector<TraceEvent> events = snapshot();

    JsonWriter w;
    w.begin_object();
    w.key("displayTimeUnit").value("ns");
    w.key("traceEvents").begin_array();

    // Metadata first: one process, each track a named thread lane.
    w.begin_object();
    w.key("name").value("process_name");
    w.key("ph").value("M");
    w.key("pid").value(u64{1});
    w.key("tid").value(u64{0});
    w.key("args").begin_object().key("name").value("nvme-oaf").end_object();
    w.end_object();
    for (size_t i = 0; i < tracks.size(); ++i) {
      w.begin_object();
      w.key("name").value("thread_name");
      w.key("ph").value("M");
      w.key("pid").value(u64{1});
      w.key("tid").value(static_cast<u64>(i + 1));
      w.key("args").begin_object().key("name").value(tracks[i]).end_object();
      w.end_object();
    }

    for (const TraceEvent& ev : events) {
      if (ev.name == nullptr || ev.cat == nullptr) continue;  // blank slot
      w.begin_object();
      w.key("name").value(ev.name);
      w.key("cat").value(ev.cat);
      const char ph[2] = {ev.phase, '\0'};
      w.key("ph").value(static_cast<const char*>(ph));
      w.key("pid").value(u64{1});
      w.key("tid").value(static_cast<u64>(ev.track));
      std::string ts;
      detail::append_us(ts, ev.ts_ns);
      w.key("ts").raw(ts);
      if (ev.phase == 'X') {
        std::string dur;
        detail::append_us(dur, ev.dur_ns);
        w.key("dur").raw(dur);
      }
      if (ev.phase == 'b' || ev.phase == 'e') {
        char idbuf[32];
        std::snprintf(idbuf, sizeof(idbuf), "0x%llx",
                      static_cast<unsigned long long>(ev.id));
        w.key("id").value(static_cast<const char*>(idbuf));
      }
      if (ev.phase == 'i') {
        w.key("s").value("t");  // thread-scoped instant
      }
      if (ev.arg_name != nullptr) {
        w.key("args").begin_object().key(ev.arg_name).value(ev.arg)
            .end_object();
      } else if (ev.phase == 'b' || ev.phase == 'e') {
        // Async events require an args object in some viewers.
        w.key("args").begin_object().end_object();
      }
      w.end_object();
    }

    w.end_array();
    w.key("otherData").begin_object();
    w.key("dropped_events").value(dropped());
    for (const auto& [k, v] : extra_other_data) {
      w.key(k).value(v);
    }
    w.end_object();
    w.end_object();
    return w.take();
  }

  /// Write to_chrome_json() to `path`; returns false on I/O error.
  bool write_chrome_json(const std::string& path,
                         const std::vector<std::pair<std::string, i64>>&
                             extra_other_data = {}) const {
    const std::string doc = to_chrome_json(extra_other_data);
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const bool wrote = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    const bool closed = std::fclose(f) == 0;
    return wrote && closed;
  }

  /// Drop all events and the drop counter; track registrations survive so
  /// cached track ids stay valid. Quiescent-point operation (unlike
  /// snapshot, reset must not race recording).
  void reset() {
    head_.store(0, std::memory_order_relaxed);
    collisions_.store(0, std::memory_order_relaxed);
    for (auto& slot : ring_) {
      slot.seq.store(0, std::memory_order_relaxed);
      slot.ev = TraceEvent{};
    }
  }

 private:
  struct Slot {
    Atomic<u64> seq{0};  // 2*(i+1)-1 while writing index i, 2*(i+1) published
    TraceEvent ev;
  };

  Atomic<bool> enabled_{false};
  Atomic<u64> head_{0};
  Atomic<u64> collisions_{0};
  std::vector<Slot> ring_;

  mutable typename Policy::mutex track_mu_;
  std::vector<std::string> track_names_ OAF_GUARDED_BY(track_mu_);
};

/// Production recorder (std::atomic policy).
using TraceRecorder = BasicTraceRecorder<StdAtomicsPolicy>;

extern template class BasicTraceRecorder<StdAtomicsPolicy>;

}  // namespace oaf::telemetry

// NTP-style initiator <-> target clock-offset estimation.
//
// Both processes timestamp trace events with their own monotonic clock
// (RealExecutor::now() counts from process start), so merging the two trace
// rings onto one timeline needs the offset between the clocks. The transport
// gives us exactly the four timestamps the classic NTP algorithm wants:
//
//   t1  initiator clock when the probe left (ICReq::t_sent_ns or
//       KeepAlive ping t_sent_ns)
//   t2  target clock when the probe arrived
//   t3  target clock when the echo left (ICResp::t_now_ns or KeepAlive echo
//       t_sent_ns; the target echoes immediately, so t2 == t3 on this stack)
//   t4  initiator clock when the echo arrived
//
//   offset = ((t2 - t1) + (t3 - t4)) / 2      rtt = (t4 - t1) - (t3 - t2)
//
// `offset` maps a target timestamp onto the initiator timeline:
// t_initiator = t_target - offset. The estimate's error is bounded by half
// the path asymmetry, itself bounded by rtt/2 — so we keep the sample with
// the smallest rtt seen (fresh samples arrive with every KeepAlive echo,
// which also tracks slow drift between the two clocks).
#pragma once

#include "common/types.h"

namespace oaf::telemetry {

class ClockSyncEstimator {
 public:
  /// Feed one probe/echo exchange. `t2` and `t3` are the remote (target)
  /// clock; `t1`/`t4` the local clock. Call with t2 == t3 when the peer
  /// reports a single echo timestamp. Samples with t4 < t1 (clock retreat,
  /// impossible on a monotonic clock — indicates a corrupt echo) are
  /// dropped.
  void add_sample(u64 t1, u64 t2, u64 t3, u64 t4) {
    if (t4 < t1) return;
    const i64 rtt = static_cast<i64>(t4 - t1) - (static_cast<i64>(t3) -
                                                 static_cast<i64>(t2));
    if (rtt < 0) return;  // echo claims to have taken negative wire time
    ++samples_;
    if (best_rtt_ns_ >= 0 && rtt >= best_rtt_ns_) return;
    best_rtt_ns_ = rtt;
    // Sum both one-way deltas in signed space; u64 wrap is not a concern
    // for monotonic nanosecond clocks (584 years of uptime).
    offset_ns_ = (static_cast<i64>(t2) - static_cast<i64>(t1) +
                  static_cast<i64>(t3) - static_cast<i64>(t4)) /
                 2;
  }

  /// Remote-minus-local clock offset (ns) of the best sample so far.
  /// Subtract from remote timestamps to land them on the local timeline.
  [[nodiscard]] i64 offset_ns() const { return offset_ns_; }

  /// Round-trip time (ns) of the best sample; -1 before any sample.
  [[nodiscard]] i64 best_rtt_ns() const { return best_rtt_ns_; }

  [[nodiscard]] u64 samples() const { return samples_; }
  [[nodiscard]] bool valid() const { return best_rtt_ns_ >= 0; }

 private:
  i64 offset_ns_ = 0;
  i64 best_rtt_ns_ = -1;
  u64 samples_ = 0;
};

}  // namespace oaf::telemetry

// Reactor health plane: where does the event loop's wall time go?
//
// RealExecutor reports two event kinds — a task execution (with the
// run-queue depth observed when it was popped) and an idle wait. From those
// the plane derives the busy/idle split, a task-duration histogram, and
// run-queue depth peaks, exported two ways:
//
//   * metrics registry (oaf_reactor_* instruments) for Prometheus-style
//     scraping alongside every other oaf_ metric;
//   * prof_json() / `oaf_stat prof`, which adds derived values (busy
//     fraction, p50/p99 task duration) that a scrape-side query would
//     otherwise have to compute.
//
// One process-global instance aggregates across executors, matching how the
// busy-poll governor aggregates across connections. Recording is one
// histogram record + a handful of relaxed atomics per *task batch*, far off
// the per-I/O fast path.
#pragma once

#include <atomic>
#include <string>

#include "common/histogram.h"
#include "common/mutex.h"
#include "common/types.h"
#include "telemetry/metrics.h"

namespace oaf::telemetry::prof {

class ReactorHealth {
 public:
  ReactorHealth();

  /// One executor task ran for task_ns; runq_depth tasks were waiting when
  /// it was popped (including itself).
  void on_task(DurNs task_ns, u64 runq_depth);

  /// The loop slept (cv wait) for idle_ns before new work arrived.
  void on_idle(DurNs idle_ns);

  struct Snapshot {
    u64 tasks = 0;
    u64 idles = 0;
    u64 busy_ns = 0;
    u64 idle_ns = 0;
    u64 runq_peak = 0;
    u64 runq_last = 0;
  };
  Snapshot snapshot() const;

  /// Health JSON for `oaf_stat prof`: snapshot + busy fraction + task
  /// duration quantiles.
  std::string json() const;

  void reset_for_test();

 private:
  std::atomic<u64> tasks_{0};
  std::atomic<u64> idles_{0};
  std::atomic<u64> busy_ns_{0};
  std::atomic<u64> idle_ns_{0};
  std::atomic<u64> runq_peak_{0};
  std::atomic<u64> runq_last_{0};

  mutable Mutex hist_mu_;
  Histogram task_ns_hist_ OAF_GUARDED_BY(hist_mu_);

  // Cached registry handles (stable for process lifetime).
  Counter* m_tasks_;
  Counter* m_idles_;
  Counter* m_busy_ns_;
  Counter* m_idle_ns_;
  HistogramMetric* m_poll_ns_;
  Gauge* m_runq_depth_;
  Gauge* m_runq_peak_;
};

/// Process-global health plane shared by all executors.
ReactorHealth& reactor_health();

}  // namespace oaf::telemetry::prof

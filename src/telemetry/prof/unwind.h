// Async-signal-safe frame-pointer unwinding.
//
// Walks the classic frame-pointer chain (SysV x86-64 / AAPCS64 with
// -fno-omit-frame-pointer):
//
//       fp -> [ caller's fp ][ return address ]
//
// The walk is pure and bounded — no allocation, no libc, every dereference
// checked against the thread's stack bounds — so the SIGPROF handler can
// call it on whatever register state it interrupted, including a thread
// mid-way through a function prologue or running frameless leaf code. In
// those cases the sanity checks fail fast and the sample keeps only the
// leaf PC, which is still a valid (if shallow) profile datum.
#pragma once

#include <cstddef>

#include "common/types.h"

namespace oaf::telemetry::prof {

/// Walk the frame chain starting at (pc, fp) within [stack_lo, stack_hi).
/// Writes up to max_frames PCs to out, leaf first; returns the count
/// (>= 1 whenever max_frames >= 1: the interrupted PC itself is frame 0).
/// Stops on: null, misaligned, or out-of-bounds fp; a chain that fails to
/// grow strictly toward stack_hi (cycle guard); a null return address.
inline std::size_t unwind_frame_pointers(u64 pc, u64 fp, u64 stack_lo,
                                         u64 stack_hi, u64* out,
                                         std::size_t max_frames) {
  std::size_t n = 0;
  if (max_frames == 0) return 0;
  out[n++] = pc;
  u64 cur = fp;
  while (n < max_frames) {
    if (cur == 0 || (cur & (sizeof(u64) - 1)) != 0) break;
    if (stack_hi < 2 * sizeof(u64) || cur < stack_lo ||
        cur > stack_hi - 2 * sizeof(u64)) {
      break;
    }
    const u64* frame = reinterpret_cast<const u64*>(cur);
    const u64 next_fp = frame[0];
    const u64 ret = frame[1];
    if (ret == 0) break;
    out[n++] = ret;
    if (next_fp <= cur) break;  // frames must move strictly toward the base
    cur = next_fp;
  }
  return n;
}

}  // namespace oaf::telemetry::prof

// Allocation interposer — compiled only when -DOAF_PROF=ON.
//
// Two interception layers, both forwarding to glibc's internal entry points
// (__libc_malloc & co.) and charging the AllocLedger on the way through:
//
//   * strong definitions of malloc/calloc/realloc/free catch direct C-level
//     calls from this binary (and, when the executable is linked with
//     -rdynamic / ENABLE_EXPORTS, calls made inside shared libraries such
//     as libstdc++'s internal buffers);
//   * replacements of the replaceable global operator new/delete family
//     catch C++ allocations even WITHOUT -rdynamic, because a strong
//     definition in the executable always beats the libstdc++ one. These
//     call the internal counted path directly — never the public malloc —
//     so a binary with both layers active never double-counts.
//
// The whole file compiles to just the anchor (returning 0) under
// ASan/TSan/MSan: sanitizers own malloc, and fighting their interceptors
// corrupts their shadow state (DESIGN.md §15 documents this caveat). Same
// on non-glibc platforms, where __libc_malloc does not exist.
//
// Ledger calls are relaxed atomics on constinit storage: no locks, no
// recursion, safe from any context malloc itself is safe from.
#include <cstddef>
#include <new>

#include "telemetry/prof/alloc_ledger.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define OAF_PROF_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define OAF_PROF_SANITIZED 1
#endif
#endif
#ifndef OAF_PROF_SANITIZED
#define OAF_PROF_SANITIZED 0
#endif

#if defined(__GLIBC__) && !OAF_PROF_SANITIZED
#define OAF_PROF_CAN_INTERPOSE 1
#else
#define OAF_PROF_CAN_INTERPOSE 0
#endif

#if OAF_PROF_CAN_INTERPOSE

extern "C" {
void* __libc_malloc(std::size_t size);
void* __libc_calloc(std::size_t n, std::size_t size);
void* __libc_realloc(void* ptr, std::size_t size);
void* __libc_memalign(std::size_t alignment, std::size_t size);
void __libc_free(void* ptr);
}

namespace {

using oaf::telemetry::prof::alloc_ledger;

void* counted_malloc(std::size_t size) {
  void* p = __libc_malloc(size);
  if (p != nullptr) alloc_ledger().record_alloc(size);
  return p;
}

void* counted_memalign(std::size_t alignment, std::size_t size) {
  void* p = __libc_memalign(alignment, size);
  if (p != nullptr) alloc_ledger().record_alloc(size);
  return p;
}

void counted_free(void* ptr) {
  if (ptr == nullptr) return;
  alloc_ledger().record_free();
  __libc_free(ptr);
}

[[noreturn]] void throw_bad_alloc() { throw std::bad_alloc(); }

void* new_or_throw(std::size_t size) {
  void* p = counted_malloc(size);
  if (p == nullptr) throw_bad_alloc();
  return p;
}

void* aligned_new_or_throw(std::size_t size, std::align_val_t al) {
  void* p = counted_memalign(static_cast<std::size_t>(al), size);
  if (p == nullptr) throw_bad_alloc();
  return p;
}

}  // namespace

// ---- C layer ------------------------------------------------------------

extern "C" {

void* malloc(std::size_t size) { return counted_malloc(size); }

void* calloc(std::size_t n, std::size_t size) {
  void* p = __libc_calloc(n, size);
  if (p != nullptr) alloc_ledger().record_alloc(n * size);
  return p;
}

void* realloc(void* ptr, std::size_t size) {
  void* p = __libc_realloc(ptr, size);
  if (p != nullptr && size != 0) {
    if (ptr != nullptr) alloc_ledger().record_free();
    alloc_ledger().record_alloc(size);
  }
  return p;
}

void free(void* ptr) { counted_free(ptr); }

int oaf_prof_interpose_anchor() { return 1; }

}  // extern "C"

// ---- C++ layer ----------------------------------------------------------

void* operator new(std::size_t size) { return new_or_throw(size); }
void* operator new[](std::size_t size) { return new_or_throw(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_malloc(size);
}
void* operator new(std::size_t size, std::align_val_t al) {
  return aligned_new_or_throw(size, al);
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return aligned_new_or_throw(size, al);
}
void* operator new(std::size_t size, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  return counted_memalign(static_cast<std::size_t>(al), size);
}
void* operator new[](std::size_t size, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  return counted_memalign(static_cast<std::size_t>(al), size);
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}

#else  // !OAF_PROF_CAN_INTERPOSE

// Interposition unavailable (sanitizer build or non-glibc): the anchor
// still links so interposer_active() reports an honest false.
extern "C" int oaf_prof_interpose_anchor() { return 0; }

#endif  // OAF_PROF_CAN_INTERPOSE

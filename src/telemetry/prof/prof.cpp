#include "telemetry/prof/prof.h"

#include <sstream>

#include "telemetry/telemetry.h"

namespace oaf::telemetry::prof {

namespace {

void append_cycles_json(std::ostringstream& os) {
  const CycleLedger::Snapshot s = cycle_ledger().snapshot();
  os << "{\"enabled\":" << (cycle_ledger().enabled() ? "true" : "false")
     << ",\"ios\":" << s.ios << ",\"per_center\":{";
  u64 hot_cycles = 0;
  bool first = true;
  for (std::size_t i = 0; i < kCostCenterCount; ++i) {
    if (s.visits[i] == 0) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << to_string(static_cast<CostCenter>(i))
       << "\":{\"cycles\":" << s.cycles[i] << ",\"visits\":" << s.visits[i]
       << '}';
    // The reactor/idle centers are machine bookkeeping, not per-I/O cost.
    const auto c = static_cast<CostCenter>(i);
    if (c != CostCenter::kReactor && c != CostCenter::kIdle) {
      hot_cycles += s.cycles[i];
    }
  }
  os << "},\"hot_cycles\":" << hot_cycles;
  if (s.ios > 0) os << ",\"cycles_per_io\":" << hot_cycles / s.ios;
  os << '}';
}

void append_busy_poll_json(std::ostringstream& os) {
  // find-or-create: reads zeros when no governor has registered yet, which
  // is exactly what "no busy-poll activity" should look like.
  auto& m = metrics();
  const char* help = "Registered by BusyPollGovernor (af/busy_poll.h)";
  os << "{\"hits\":"
     << m.counter("oaf_busy_poll_hits_total", help)->value()
     << ",\"misses\":"
     << m.counter("oaf_busy_poll_misses_total", help)->value()
     << ",\"retunes\":"
     << m.counter("oaf_busy_poll_retunes_total", help)->value()
     << ",\"interrupt_fallbacks\":"
     << m.counter("oaf_busy_poll_interrupt_fallbacks_total", help)->value()
     << ",\"budget_ns\":"
     << m.gauge("oaf_busy_poll_budget_ns", help)->value()
     << ",\"hit_permille\":"
     << m.gauge("oaf_busy_poll_hit_permille", help)->value()
     << ",\"workload_class\":"
     << m.gauge("oaf_busy_poll_workload_class", help)->value()
     << ",\"escalation\":"
     << m.gauge("oaf_busy_poll_escalation", help)->value() << '}';
}

}  // namespace

std::string prof_json() {
  std::ostringstream os;
  os << "{\"reactor\":" << reactor_health().json() << ",\"cycles\":";
  append_cycles_json(os);
  os << ",\"allocs\":" << alloc_ledger_json()
     << ",\"sampler\":" << profiler().stats_json() << ",\"busy_poll\":";
  append_busy_poll_json(os);
  os << '}';
  return os.str();
}

}  // namespace oaf::telemetry::prof

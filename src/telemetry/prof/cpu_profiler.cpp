// Sampling profiler implementation. Signal-context code is confined to
// sigprof_handler() and the pure helpers it calls (unwind_frame_pointers,
// SampleRing::push) — everything else runs in normal thread context.
#ifndef _GNU_SOURCE
#define _GNU_SOURCE  // dladdr, pthread_getattr_np
#endif

#include "telemetry/prof/cpu_profiler.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "telemetry/prof/cost_center.h"
#include "telemetry/prof/unwind.h"

#if defined(__linux__)
#include <cxxabi.h>
#include <dlfcn.h>
#include <pthread.h>
#include <csignal>
#include <ctime>
#include <sys/syscall.h>
#include <ucontext.h>
#include <unistd.h>
#define OAF_PROF_SAMPLER 1
#else
#define OAF_PROF_SAMPLER 0
#endif

namespace oaf::telemetry::prof {

struct ThreadState {
  std::string name;
  u64 tid = 0;
  u64 stack_lo = 0;
  u64 stack_hi = 0;
  std::unique_ptr<SampleRing> ring;
  std::atomic<u64> samples{0};
#if OAF_PROF_SAMPLER
  pthread_t pthread{};
  timer_t timer{};
  bool timer_armed = false;
#endif
};

namespace {

// The handler's only route to its thread's state. Written once at
// registration (normal context); read from signal context on the same
// thread, which by construction observes the completed store.
thread_local ThreadState* t_self = nullptr;

#if OAF_PROF_SAMPLER

void sigprof_handler(int /*signo*/, siginfo_t* /*info*/, void* ucontext) {
  // Async-signal-safe region: TLS reads, clock_gettime, bounded pointer
  // walks, relaxed atomics. No allocation, no locks, no iostream.
  ThreadState* ts = t_self;
  if (ts == nullptr || ts->ring == nullptr) return;
  const auto* uc = static_cast<const ucontext_t*>(ucontext);
  u64 pc = 0;
  u64 fp = 0;
#if defined(__x86_64__)
  pc = static_cast<u64>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<u64>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__)
  pc = static_cast<u64>(uc->uc_mcontext.pc);
  fp = static_cast<u64>(uc->uc_mcontext.regs[29]);
#else
  (void)uc;
#endif
  Sample s;
  struct timespec now {};
  clock_gettime(CLOCK_MONOTONIC, &now);
  s.time_ns = static_cast<u64>(now.tv_sec) * 1000000000ull +
              static_cast<u64>(now.tv_nsec);
  s.cost_center = internal::g_cost_center;
  s.nframes = static_cast<u32>(
      pc == 0 ? 0
              : unwind_frame_pointers(pc, fp, ts->stack_lo, ts->stack_hi,
                                      s.frames.data(), kMaxFrames));
  if (s.nframes == 0) return;
  ts->ring->push(s);
  ts->samples.fetch_add(1, std::memory_order_relaxed);
}

/// Capture the calling thread's stack bounds for the unwinder's bounds
/// checks. Failure degrades to leaf-only samples, never to wild reads.
void stack_bounds(u64* lo, u64* hi) {
  *lo = 0;
  *hi = 0;
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) != 0) return;
  void* addr = nullptr;
  std::size_t size = 0;
  if (pthread_attr_getstack(&attr, &addr, &size) == 0) {
    *lo = reinterpret_cast<u64>(addr);
    *hi = *lo + size;
  }
  pthread_attr_destroy(&attr);
}

#endif  // OAF_PROF_SAMPLER

/// Best-effort symbolization: exact symbol via dladdr (needs -rdynamic for
/// non-exported functions), demangled when possible, else module+offset,
/// else raw hex. Offline path — allocation is fine here.
std::string symbolize(u64 pc) {
#if OAF_PROF_SAMPLER
  Dl_info info{};
  // Return addresses point one past the call; back up so a call that ends a
  // function does not get attributed to the next symbol.
  if (dladdr(reinterpret_cast<void*>(pc - 1), &info) != 0 &&
      info.dli_sname != nullptr) {
    int status = -1;
    char* dem =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    std::string out = (status == 0 && dem != nullptr) ? dem : info.dli_sname;
    std::free(dem);
    // Collapsed format is ';'-separated; scrub the separator from names.
    std::replace(out.begin(), out.end(), ';', ',');
    return out;
  }
#endif
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(pc));
  return buf;
}

}  // namespace

CpuProfiler::CpuProfiler() = default;

CpuProfiler::~CpuProfiler() {
  stop();
  // ThreadStates are leaked by design (see header): a SIGPROF already in
  // flight when we tear down must never dereference freed memory.
}

Status CpuProfiler::register_this_thread(const std::string& name) {
#if OAF_PROF_SAMPLER
  if (t_self != nullptr) return Status::ok();  // idempotent per thread
  // Touch the cost-center TLS now so its slot exists before the first
  // signal-context read.
  set_cost_center(current_cost_center());
  auto* ts = new ThreadState;
  ts->name = name.empty() ? "thread" : name;
  ts->tid = static_cast<u64>(::syscall(SYS_gettid));
  ts->pthread = pthread_self();
  stack_bounds(&ts->stack_lo, &ts->stack_hi);
  {
    MutexLock lock(mu_);
    ts->ring = std::make_unique<SampleRing>(
        opts_.ring_slots != 0 ? opts_.ring_slots : ProfilerOptions{}.ring_slots);
    threads_.push_back(ts);
    t_self = ts;
    if (running_) return arm_locked(ts);
  }
  return Status::ok();
#else
  (void)name;
  return make_error(StatusCode::kUnimplemented,
                    "sampling profiler requires linux");
#endif
}

#if OAF_PROF_SAMPLER
Status CpuProfiler::arm_locked(ThreadState* ts) {
  if (ts->timer_armed) return Status::ok();
  clockid_t clk;
  if (pthread_getcpuclockid(ts->pthread, &clk) != 0) {
    return make_error(StatusCode::kInternal, "pthread_getcpuclockid failed");
  }
  struct sigevent sev {};
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
#if defined(sigev_notify_thread_id)
  sev.sigev_notify_thread_id = static_cast<pid_t>(ts->tid);
#else
  sev._sigev_un._tid = static_cast<pid_t>(ts->tid);
#endif
  if (timer_create(clk, &sev, &ts->timer) != 0) {
    return make_error(StatusCode::kInternal, "timer_create failed");
  }
  const long period_ns =
      static_cast<long>(1000000000ull / (opts_.sample_hz ? opts_.sample_hz : 1));
  struct itimerspec its {};
  its.it_interval.tv_sec = 0;
  its.it_interval.tv_nsec = period_ns;
  its.it_value = its.it_interval;
  if (timer_settime(ts->timer, 0, &its, nullptr) != 0) {
    timer_delete(ts->timer);
    return make_error(StatusCode::kInternal, "timer_settime failed");
  }
  ts->timer_armed = true;
  return Status::ok();
}
#else
Status CpuProfiler::arm_locked(ThreadState*) {
  return make_error(StatusCode::kUnimplemented,
                    "sampling profiler requires linux");
}
#endif

Status CpuProfiler::start(const ProfilerOptions& opts) {
#if OAF_PROF_SAMPLER
  MutexLock lock(mu_);
  if (running_) {
    return make_error(StatusCode::kFailedPrecondition, "already running");
  }
  if (threads_.empty()) {
    return make_error(StatusCode::kFailedPrecondition,
                      "no thread registered; call register_this_thread()");
  }
  if (opts.sample_hz == 0) {
    return make_error(StatusCode::kInvalidArgument, "sample_hz must be > 0");
  }
  opts_ = opts;
  struct sigaction sa {};
  sa.sa_sigaction = sigprof_handler;
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&sa.sa_mask);
  if (sigaction(SIGPROF, &sa, nullptr) != 0) {
    return make_error(StatusCode::kInternal, "sigaction(SIGPROF) failed");
  }
  for (ThreadState* ts : threads_) {
    if (Status s = arm_locked(ts); !s.is_ok()) return s;
  }
  running_ = true;
  return Status::ok();
#else
  (void)opts;
  return make_error(StatusCode::kUnimplemented,
                    "sampling profiler requires linux");
#endif
}

void CpuProfiler::stop() {
#if OAF_PROF_SAMPLER
  MutexLock lock(mu_);
  if (!running_) return;
  for (ThreadState* ts : threads_) {
    if (ts->timer_armed) {
      timer_delete(ts->timer);
      ts->timer_armed = false;
    }
  }
  running_ = false;
#endif
}

bool CpuProfiler::running() const {
  MutexLock lock(mu_);
  return running_;
}

u64 CpuProfiler::samples_total() const {
  MutexLock lock(mu_);
  u64 n = 0;
  for (const ThreadState* ts : threads_) {
    n += ts->samples.load(std::memory_order_relaxed);
  }
  return n;
}

u64 CpuProfiler::dropped_total() const {
  MutexLock lock(mu_);
  u64 n = 0;
  for (const ThreadState* ts : threads_) {
    if (ts->ring) n += ts->ring->dropped();
  }
  return n;
}

std::string CpuProfiler::collapsed() {
  MutexLock lock(mu_);
  std::map<u64, std::string> symcache;
  auto sym = [&symcache](u64 pc) -> const std::string& {
    auto it = symcache.find(pc);
    if (it == symcache.end()) {
      it = symcache.emplace(pc, symbolize(pc)).first;
    }
    return it->second;
  };
  std::map<std::string, u64> agg;
  Sample s;
  for (ThreadState* ts : threads_) {
    if (!ts->ring) continue;
    while (ts->ring->pop(&s)) {
      std::string line = ts->name;
      line += ";cc:";
      line += to_string(clamp_cost_center(s.cost_center));
      // Root-to-leaf order, the collapsed-stack convention.
      for (u32 i = s.nframes; i-- > 0;) {
        line += ';';
        line += sym(s.frames[i]);
      }
      ++agg[line];
    }
  }
  std::string out;
  for (const auto& [stack, count] : agg) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

bool CpuProfiler::write_collapsed(const std::string& path) {
  const std::string text = collapsed();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

std::string CpuProfiler::stats_json() const {
  MutexLock lock(mu_);
  std::ostringstream os;
  os << "{\"running\":" << (running_ ? "true" : "false")
     << ",\"sample_hz\":" << opts_.sample_hz << ",\"threads\":[";
  bool first = true;
  u64 samples = 0;
  u64 dropped = 0;
  u64 pending = 0;
  for (const ThreadState* ts : threads_) {
    if (!first) os << ',';
    first = false;
    const u64 tsamples = ts->samples.load(std::memory_order_relaxed);
    const u64 tdropped = ts->ring ? ts->ring->dropped() : 0;
    os << "{\"name\":\"" << ts->name << "\",\"tid\":" << ts->tid
       << ",\"samples\":" << tsamples << ",\"dropped\":" << tdropped << "}";
    samples += tsamples;
    dropped += tdropped;
    pending += ts->ring ? ts->ring->size() : 0;
  }
  os << "],\"samples_total\":" << samples << ",\"dropped_total\":" << dropped
     << ",\"pending\":" << pending << "}";
  return os.str();
}

CpuProfiler& profiler() {
  static CpuProfiler* p = new CpuProfiler;  // never destroyed: see dtor note
  return *p;
}

}  // namespace oaf::telemetry::prof

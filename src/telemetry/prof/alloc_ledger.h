// Allocation ledger: allocs / frees / bytes per cost center.
//
// The counters are fed by the OAF_PROF interposer (alloc_interpose.cpp),
// which replaces malloc/calloc/realloc/free and the operator new/delete
// family, attributes each event to the calling thread's cost-center token,
// and forwards to the real glibc allocator. The ledger itself is
// allocation-free and lock-free (relaxed atomics only), because it runs
// INSIDE malloc: any allocation or lock here would recurse or deadlock.
//
// Without OAF_PROF (or under ASan/TSan, which own malloc) the interposer is
// absent, interposer_active() reports false, and every count reads zero —
// callers print "interposer absent" rather than a misleading 0 allocs/IO.
#pragma once

#include <array>
#include <atomic>
#include <string>

#include "common/types.h"
#include "telemetry/prof/cost_center.h"

namespace oaf::telemetry::prof {

struct AllocCounts {
  u64 allocs = 0;
  u64 frees = 0;
  u64 bytes = 0;
};

class AllocLedger {
 public:
  struct Snapshot {
    std::array<AllocCounts, kCostCenterCount> center;
    AllocCounts total;
  };

  /// Called from inside malloc — async-signal-safe discipline applies.
  void record_alloc(std::size_t bytes) {
    const auto i = center_index();
    allocs_[i].fetch_add(1, std::memory_order_relaxed);
    bytes_[i].fetch_add(bytes, std::memory_order_relaxed);
  }

  void record_free() {
    frees_[center_index()].fetch_add(1, std::memory_order_relaxed);
  }

  Snapshot snapshot() const {
    Snapshot s{};
    for (std::size_t i = 0; i < kCostCenterCount; ++i) {
      s.center[i].allocs = allocs_[i].load(std::memory_order_relaxed);
      s.center[i].frees = frees_[i].load(std::memory_order_relaxed);
      s.center[i].bytes = bytes_[i].load(std::memory_order_relaxed);
      s.total.allocs += s.center[i].allocs;
      s.total.frees += s.center[i].frees;
      s.total.bytes += s.center[i].bytes;
    }
    return s;
  }

  void reset_for_test() {
    for (std::size_t i = 0; i < kCostCenterCount; ++i) {
      allocs_[i].store(0, std::memory_order_relaxed);
      frees_[i].store(0, std::memory_order_relaxed);
      bytes_[i].store(0, std::memory_order_relaxed);
    }
  }

 private:
  static std::size_t center_index() {
    const u32 raw = internal::g_cost_center;
    return raw < kCostCenterCount
               ? raw
               : static_cast<std::size_t>(CostCenter::kOther);
  }

  std::atomic<u64> allocs_[kCostCenterCount]{};
  std::atomic<u64> frees_[kCostCenterCount]{};
  std::atomic<u64> bytes_[kCostCenterCount]{};
};

/// Process-global ledger. constinit (defined in alloc_ledger.cpp): usable
/// from allocations that happen during static initialization, before any
/// dynamic constructor has run.
AllocLedger& alloc_ledger();

/// True when the malloc/operator-new interposer is linked into this binary
/// (OAF_PROF build, no sanitizer owning the allocator). Counts are only
/// meaningful when this is true.
bool interposer_active();

/// Ledger snapshot as JSON (per-center + totals) for `oaf_stat prof`.
std::string alloc_ledger_json();

}  // namespace oaf::telemetry::prof

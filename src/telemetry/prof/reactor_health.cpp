#include "telemetry/prof/reactor_health.h"

#include <algorithm>
#include <sstream>

#include "telemetry/telemetry.h"

namespace oaf::telemetry::prof {

ReactorHealth::ReactorHealth() {
  auto& m = metrics();
  m_tasks_ = m.counter("oaf_reactor_tasks_total",
                       "Tasks executed by reactor event loops");
  m_idles_ = m.counter("oaf_reactor_idle_waits_total",
                       "Times a reactor loop went to sleep empty");
  m_busy_ns_ = m.counter("oaf_reactor_busy_ns_total",
                         "Wall nanoseconds reactors spent running tasks");
  m_idle_ns_ = m.counter("oaf_reactor_idle_ns_total",
                         "Wall nanoseconds reactors spent asleep");
  m_poll_ns_ = m.histogram("oaf_reactor_poll_ns",
                           "Per-task reactor dispatch duration");
  m_runq_depth_ = m.gauge("oaf_reactor_runq_depth",
                          "Run-queue depth at the last task dispatch");
  m_runq_peak_ = m.gauge("oaf_reactor_runq_peak",
                         "Highest run-queue depth observed");
}

void ReactorHealth::on_task(DurNs task_ns, u64 runq_depth) {
  const u64 ns = task_ns > 0 ? static_cast<u64>(task_ns) : 0;
  tasks_.fetch_add(1, std::memory_order_relaxed);
  busy_ns_.fetch_add(ns, std::memory_order_relaxed);
  runq_last_.store(runq_depth, std::memory_order_relaxed);
  u64 peak = runq_peak_.load(std::memory_order_relaxed);
  while (runq_depth > peak &&
         !runq_peak_.compare_exchange_weak(peak, runq_depth,
                                           std::memory_order_relaxed)) {
  }
  {
    MutexLock lock(hist_mu_);
    task_ns_hist_.record(static_cast<i64>(ns));
  }
  m_tasks_->inc();
  m_busy_ns_->inc(ns);
  m_poll_ns_->record(static_cast<i64>(ns));
  m_runq_depth_->set(static_cast<i64>(runq_depth));
  m_runq_peak_->set(
      static_cast<i64>(runq_peak_.load(std::memory_order_relaxed)));
}

void ReactorHealth::on_idle(DurNs idle_ns) {
  const u64 ns = idle_ns > 0 ? static_cast<u64>(idle_ns) : 0;
  idles_.fetch_add(1, std::memory_order_relaxed);
  idle_ns_.fetch_add(ns, std::memory_order_relaxed);
  m_idles_->inc();
  m_idle_ns_->inc(ns);
}

ReactorHealth::Snapshot ReactorHealth::snapshot() const {
  Snapshot s;
  s.tasks = tasks_.load(std::memory_order_relaxed);
  s.idles = idles_.load(std::memory_order_relaxed);
  s.busy_ns = busy_ns_.load(std::memory_order_relaxed);
  s.idle_ns = idle_ns_.load(std::memory_order_relaxed);
  s.runq_peak = runq_peak_.load(std::memory_order_relaxed);
  s.runq_last = runq_last_.load(std::memory_order_relaxed);
  return s;
}

std::string ReactorHealth::json() const {
  const Snapshot s = snapshot();
  Histogram h;
  {
    MutexLock lock(hist_mu_);
    h = task_ns_hist_;
  }
  const u64 total = s.busy_ns + s.idle_ns;
  const u64 busy_permille = total > 0 ? s.busy_ns * 1000 / total : 0;
  std::ostringstream os;
  os << "{\"tasks\":" << s.tasks << ",\"idle_waits\":" << s.idles
     << ",\"busy_ns\":" << s.busy_ns << ",\"idle_ns\":" << s.idle_ns
     << ",\"busy_permille\":" << busy_permille
     << ",\"runq_depth\":" << s.runq_last << ",\"runq_peak\":" << s.runq_peak
     << ",\"task_ns\":{\"count\":" << h.count();
  if (h.count() > 0) {
    os << ",\"p50\":" << h.quantile(0.50) << ",\"p99\":" << h.quantile(0.99)
       << ",\"max\":" << h.max();
  }
  os << "}}";
  return os.str();
}

void ReactorHealth::reset_for_test() {
  tasks_.store(0, std::memory_order_relaxed);
  idles_.store(0, std::memory_order_relaxed);
  busy_ns_.store(0, std::memory_order_relaxed);
  idle_ns_.store(0, std::memory_order_relaxed);
  runq_peak_.store(0, std::memory_order_relaxed);
  runq_last_.store(0, std::memory_order_relaxed);
  MutexLock lock(hist_mu_);
  task_ns_hist_.reset();
}

ReactorHealth& reactor_health() {
  static ReactorHealth* h = new ReactorHealth;  // registry handles: immortal
  return *h;
}

}  // namespace oaf::telemetry::prof

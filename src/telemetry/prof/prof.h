// Profiling plane facade (DESIGN.md §15).
//
// Single include for consumers (tools, benches) and the one-call JSON
// aggregation behind the `oaf_stat prof` verb. Everything prof_json() reads
// is atomics or registry handles — no executor state — so stat-server
// threads may call it without marshalling onto a reactor.
#pragma once

#include <string>

#include "telemetry/prof/alloc_ledger.h"
#include "telemetry/prof/cost_center.h"
#include "telemetry/prof/cpu_profiler.h"
#include "telemetry/prof/reactor_health.h"

namespace oaf::telemetry::prof {

/// Live profiling snapshot:
///   {"reactor":{...},            // busy/idle split, runq, task quantiles
///    "cycles":{...},             // per-cost-center TSC cycles + cycles/IO
///    "allocs":{...},             // alloc ledger (zeros unless interposed)
///    "sampler":{...},            // CPU sampler status
///    "busy_poll":{...}}          // governor budget utilization
std::string prof_json();

}  // namespace oaf::telemetry::prof

// Wait-free SPSC ring for CPU profile samples.
//
// The producer is the SIGPROF handler running ON the sampled thread; the
// consumer is the profiler's drain (collapse/stop), running on whichever
// thread asks for output. push() is async-signal-safe: plain loads/stores
// and relaxed/acquire-release atomics, no allocation, no locks, and a full
// ring drops the sample (counted) rather than waiting.
//
// Same discipline as the shm trace ring: single producer, single consumer,
// monotonically increasing head/tail, capacity a power of two.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <vector>

#include "common/types.h"

namespace oaf::telemetry::prof {

/// Deepest stack the sampler records. Frames beyond this are truncated at
/// the root end — the leaf (where the cycles actually burn) is always kept.
inline constexpr std::size_t kMaxFrames = 24;

struct Sample {
  u64 time_ns = 0;      ///< CLOCK_MONOTONIC at sample time
  u32 cost_center = 0;  ///< raw thread-local token (clamped at decode)
  u32 nframes = 0;
  std::array<u64, kMaxFrames> frames{};  ///< frames[0] is the leaf PC
};

class SampleRing {
 public:
  /// Capacity is rounded up to a power of two. Slots are allocated here, at
  /// registration time, never from the signal handler.
  explicit SampleRing(std::size_t min_slots) {
    std::size_t cap = 1;
    while (cap < min_slots) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  /// Producer side (signal handler). Never blocks; returns false on drop.
  bool push(const Sample& s) {
    const u64 h = head_.load(std::memory_order_relaxed);
    const u64 t = tail_.load(std::memory_order_acquire);
    if (h - t > mask_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[static_cast<std::size_t>(h) & mask_] = s;
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when empty.
  bool pop(Sample* out) {
    const u64 t = tail_.load(std::memory_order_relaxed);
    const u64 h = head_.load(std::memory_order_acquire);
    if (t == h) return false;
    *out = slots_[static_cast<std::size_t>(t) & mask_];
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  std::size_t size() const {
    const u64 t = tail_.load(std::memory_order_acquire);
    const u64 h = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(h - t);
  }
  std::size_t capacity() const { return mask_ + 1; }
  u64 dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  std::vector<Sample> slots_;
  std::size_t mask_ = 0;
  std::atomic<u64> head_{0};
  std::atomic<u64> tail_{0};
  std::atomic<u64> dropped_{0};
};

}  // namespace oaf::telemetry::prof

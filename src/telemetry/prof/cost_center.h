// Cost centers: a thread-local token naming what the CPU is doing right now.
//
// The profiling plane (DESIGN.md §15) attributes three currencies — CPU
// samples, TSC cycles, and heap allocations — to the same small set of
// centers. The first eight values mirror telemetry::Stage one-to-one so a
// StageLedger::enter() can stamp the token for free; the remainder cover
// work that happens outside a per-I/O stage (submission path, reactor
// bookkeeping, idle waits, control plane).
//
// Reading the token must be async-signal-safe: the SIGPROF sampler reads it
// from the interrupted thread, and the allocation interposer reads it from
// inside malloc. A plain thread_local word satisfies both — the only
// concurrent reader is a signal handler running on the owning thread, which
// always observes a fully written value.
#pragma once

#include <atomic>
#include <cstddef>

#include "common/types.h"

namespace oaf::telemetry::prof {

enum class CostCenter : u8 {
  // 0..7 mirror telemetry::Stage (static_asserted in attribution.h).
  kQueue = 0,
  kEncode = 1,
  kGrant = 2,
  kXfer = 3,
  kDevice = 4,
  kTarget = 5,
  kComplete = 6,
  kDetour = 7,
  // Centers with no Stage counterpart.
  kSubmit = 8,   ///< initiator submit fast path (user call -> wire)
  kReactor = 9,  ///< executor loop bookkeeping between tasks
  kIdle = 10,    ///< blocked in cv/poll waits
  kControl = 11, ///< connect/login/admin, reconfiguration
  kOther = 12,   ///< anything not yet scoped (the default)
};

inline constexpr std::size_t kCostCenterCount = 13;

const char* to_string(CostCenter c);

namespace internal {
// Not an atomic on purpose: stores happen on the owning thread and the only
// concurrent reader (the SIGPROF handler) runs on that same thread.
extern thread_local u32 g_cost_center;
}  // namespace internal

inline void set_cost_center(CostCenter c) {
  internal::g_cost_center = static_cast<u32>(c);
}

inline CostCenter current_cost_center() {
  return static_cast<CostCenter>(internal::g_cost_center);
}

/// Clamp a raw token (e.g. read by the sampler) to a valid center.
inline CostCenter clamp_cost_center(u32 raw) {
  return raw < kCostCenterCount ? static_cast<CostCenter>(raw)
                                : CostCenter::kOther;
}

/// Raw cycle counter. TSC on x86; zero elsewhere (cycle accounting then
/// degrades to "disabled" rather than lying with a slow clock syscall).
inline u64 rdcycles() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#else
  return 0;
#endif
}

/// Process-wide per-cost-center cycle and visit accounting, plus the I/O
/// completion count that turns totals into cycles/IO. All relaxed atomics:
/// the charge path is a fast path (submit/complete), and cross-center skew
/// of a few cycles is irrelevant at reporting granularity.
class CycleLedger {
 public:
  struct Snapshot {
    u64 cycles[kCostCenterCount];
    u64 visits[kCostCenterCount];
    u64 ios;
  };

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Cycles + one visit (a scope completed in this center).
  void charge(CostCenter c, u64 cycles) {
    const auto i = static_cast<std::size_t>(c);
    cycles_[i].fetch_add(cycles, std::memory_order_relaxed);
    visits_[i].fetch_add(1, std::memory_order_relaxed);
  }

  /// Cycles only — a scope was paused by a nested one (exclusive-time
  /// accounting): the segment's cycles land now, the visit at scope exit.
  void charge_partial(CostCenter c, u64 cycles) {
    cycles_[static_cast<std::size_t>(c)].fetch_add(cycles,
                                                   std::memory_order_relaxed);
  }

  /// Count a completed I/O (the cycles/IO denominator). No-op when cycle
  /// accounting is off so the disarmed fast path stays one relaxed load.
  void add_io() {
    if (enabled()) ios_.fetch_add(1, std::memory_order_relaxed);
  }

  Snapshot snapshot() const {
    Snapshot s{};
    for (std::size_t i = 0; i < kCostCenterCount; ++i) {
      s.cycles[i] = cycles_[i].load(std::memory_order_relaxed);
      s.visits[i] = visits_[i].load(std::memory_order_relaxed);
    }
    s.ios = ios_.load(std::memory_order_relaxed);
    return s;
  }

  void reset_for_test() {
    for (std::size_t i = 0; i < kCostCenterCount; ++i) {
      cycles_[i].store(0, std::memory_order_relaxed);
      visits_[i].store(0, std::memory_order_relaxed);
    }
    ios_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<u64> cycles_[kCostCenterCount]{};
  std::atomic<u64> visits_[kCostCenterCount]{};
  std::atomic<u64> ios_{0};
};

/// Process-global ledger (constinit in cost_center.cpp: safe to touch from
/// static-initialization-time allocation callbacks).
CycleLedger& cycle_ledger();

class CostScope;
namespace internal {
// Innermost armed CostScope on this thread (exclusive-time bookkeeping).
extern thread_local CostScope* g_scope_top;
}  // namespace internal

/// RAII scope: stamps the thread's cost-center token (restoring the previous
/// one on exit) and, when cycle accounting is armed, charges elapsed TSC to
/// the center. Accounting is EXCLUSIVE: entering a nested scope pauses the
/// parent (charging its segment so far) and leaving resumes it, so summing
/// per-center cycles never counts the same cycle twice. Disarmed cost: two
/// TLS word stores + one relaxed load.
class CostScope {
 public:
  explicit CostScope(CostCenter c) : prev_(internal::g_cost_center), c_(c) {
    internal::g_cost_center = static_cast<u32>(c);
    if (cycle_ledger().enabled()) {
      armed_ = true;
      const u64 now = rdcycles();
      parent_ = internal::g_scope_top;
      if (parent_ != nullptr) {
        cycle_ledger().charge_partial(parent_->c_, now - parent_->start_);
      }
      start_ = now;
      internal::g_scope_top = this;
    }
  }
  ~CostScope() {
    if (armed_) {
      const u64 now = rdcycles();
      cycle_ledger().charge(c_, now - start_);
      internal::g_scope_top = parent_;
      if (parent_ != nullptr) parent_->start_ = now;
    }
    internal::g_cost_center = prev_;
  }
  CostScope(const CostScope&) = delete;
  CostScope& operator=(const CostScope&) = delete;

 private:
  u32 prev_;
  CostCenter c_;
  u64 start_ = 0;
  CostScope* parent_ = nullptr;
  bool armed_ = false;
};

}  // namespace oaf::telemetry::prof

#include "telemetry/prof/cost_center.h"

namespace oaf::telemetry::prof {

namespace internal {
// Static (non-dynamic) initializer: valid before any constructor runs, so
// the allocation interposer may read it during static initialization.
thread_local u32 g_cost_center = static_cast<u32>(CostCenter::kOther);
thread_local CostScope* g_scope_top = nullptr;
}  // namespace internal

const char* to_string(CostCenter c) {
  switch (c) {
    case CostCenter::kQueue:
      return "queue";
    case CostCenter::kEncode:
      return "encode";
    case CostCenter::kGrant:
      return "grant";
    case CostCenter::kXfer:
      return "xfer";
    case CostCenter::kDevice:
      return "device";
    case CostCenter::kTarget:
      return "target";
    case CostCenter::kComplete:
      return "complete";
    case CostCenter::kDetour:
      return "detour";
    case CostCenter::kSubmit:
      return "submit";
    case CostCenter::kReactor:
      return "reactor";
    case CostCenter::kIdle:
      return "idle";
    case CostCenter::kControl:
      return "control";
    case CostCenter::kOther:
      return "other";
  }
  return "other";
}

CycleLedger& cycle_ledger() {
  // constinit, not a lazily-constructed Meyers static: CostScope may consult
  // the ledger before main() (static-init-time code paths), and the guard
  // variable a dynamic initializer needs is not async-signal-safe.
  static constinit CycleLedger ledger;
  return ledger;
}

}  // namespace oaf::telemetry::prof

#include "telemetry/prof/alloc_ledger.h"

#include <sstream>

namespace oaf::telemetry::prof {

namespace {
// constinit: std::atomic's constexpr default constructor zero-initializes
// at load time, so the interposer may charge this ledger for allocations
// made before main() without tripping a dynamic-init guard inside malloc.
constinit AllocLedger g_alloc_ledger;
}  // namespace

AllocLedger& alloc_ledger() { return g_alloc_ledger; }

#if defined(OAF_PROF)
// Defined in alloc_interpose.cpp. Referencing it here forces the linker to
// pull the interposer object out of the static archive into any binary that
// queries the ledger — a TU that only *defines* strong malloc symbols is
// otherwise dead to the linker and silently left out.
extern "C" int oaf_prof_interpose_anchor();

bool interposer_active() { return oaf_prof_interpose_anchor() != 0; }
#else
bool interposer_active() { return false; }
#endif

std::string alloc_ledger_json() {
  const AllocLedger::Snapshot s = alloc_ledger().snapshot();
  std::ostringstream os;
  os << "{\"interposed\":" << (interposer_active() ? "true" : "false")
     << ",\"total\":{\"allocs\":" << s.total.allocs
     << ",\"frees\":" << s.total.frees << ",\"bytes\":" << s.total.bytes
     << "},\"per_center\":{";
  bool first = true;
  for (std::size_t i = 0; i < kCostCenterCount; ++i) {
    const AllocCounts& c = s.center[i];
    if (c.allocs == 0 && c.frees == 0) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << to_string(static_cast<CostCenter>(i))
       << "\":{\"allocs\":" << c.allocs << ",\"frees\":" << c.frees
       << ",\"bytes\":" << c.bytes << '}';
  }
  os << "}}";
  return os.str();
}

}  // namespace oaf::telemetry::prof

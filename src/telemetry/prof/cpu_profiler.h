// Signal-based sampling CPU profiler (DESIGN.md §15).
//
// Each registered thread gets a POSIX per-thread CPU-time timer
// (timer_create + pthread_getcpuclockid) that delivers SIGPROF to that
// thread at the configured rate. The handler — the only code that runs in
// signal context — reads PC/FP out of the ucontext, walks the frame-pointer
// chain (unwind.h), stamps the sample with the thread's cost-center token,
// and pushes it into the thread's wait-free SPSC ring. Everything heavy
// (symbolization via dladdr/__cxa_demangle, aggregation, file output)
// happens offline on the draining thread.
//
// Contract:
//   * register_this_thread() from each thread to be profiled, before or
//     after start() — late registrations are armed immediately.
//   * threads must outlive stop(); register only long-lived threads
//     (main, reactor), not transient pool workers.
//   * full stacks need -fno-omit-frame-pointer (the OAF_PROF build adds
//     it); without it samples degrade to leaf-PC-only, never to garbage.
#pragma once

#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/types.h"
#include "telemetry/prof/sample_ring.h"

namespace oaf::telemetry::prof {

struct ProfilerOptions {
  /// Prime by default so the sampler cannot phase-lock with millisecond-
  /// periodic work (timers, keepalives) and systematically miss or
  /// over-count it.
  u32 sample_hz = 997;
  std::size_t ring_slots = 8192;  ///< per thread, rounded up to a power of 2
};

/// Per-thread sampler state (ring, timer, stack bounds). Defined in the
/// .cpp; heap-allocated at registration and intentionally never freed, so a
/// signal in flight during stop() can never touch dead memory.
struct ThreadState;

class CpuProfiler {
 public:
  CpuProfiler();
  ~CpuProfiler();

  /// Register the calling thread for sampling under the given display name.
  /// Allocates the ring and captures stack bounds here (never in the
  /// handler). Idempotent per thread.
  Status register_this_thread(const std::string& name);

  /// Install the SIGPROF handler and arm one CPU-time timer per registered
  /// thread. Fails if already running or no thread is registered.
  Status start(const ProfilerOptions& opts);

  /// Disarm all timers. In-flight signals may still land; rings stay alive
  /// forever so a straggler sample is stored, not lost to a use-after-free.
  void stop();

  bool running() const;
  u64 samples_total() const;
  u64 dropped_total() const;

  /// Drain every ring, symbolize, and aggregate into collapsed-stack text:
  ///   thread;cc:center;outer;...;leaf <count>\n
  /// sorted lexicographically (deterministic for a given sample multiset).
  std::string collapsed();

  /// collapsed() to a file. Returns false on I/O failure.
  bool write_collapsed(const std::string& path);

  /// Sampler status for the `oaf_stat prof` verb.
  std::string stats_json() const;

 private:
  mutable Mutex mu_;
  std::vector<ThreadState*> threads_ OAF_GUARDED_BY(mu_);
  bool running_ OAF_GUARDED_BY(mu_) = false;
  ProfilerOptions opts_ OAF_GUARDED_BY(mu_);

  Status arm_locked(ThreadState* ts) OAF_REQUIRES(mu_);
};

/// Process-global profiler instance.
CpuProfiler& profiler();

}  // namespace oaf::telemetry::prof

// Retroactive anomaly capture (Hindsight-style): every I/O's spans buffer in
// an always-on wait-free trace ring regardless of trace mode; when an I/O
// breaches its SLO the ring's recent history — the breaching I/O, its
// neighbours on the same connection, and the peer-side half fetched over the
// wire by trace_id — is promoted to a durable oaf_anomaly_<n>.json.
//
// The trade the flight recorder makes for crashes, this makes for tail
// latency: record everything cheaply all the time, pay the serialization
// cost only for the handful of I/Os that turn out to matter, after they
// turn out to matter. Tracing stays off; the evidence survives anyway.
//
// Lifecycle:
//   1. Process start: anomaly() exists, ring enabled, capture DISARMED —
//      unit tests exercising SLO paths don't litter the filesystem.
//   2. Tools call anomaly().configure({dir, ...}) to arm capture.
//   3. The initiator's completion path asks attribution().record() for the
//      breach verdict; on breach it calls begin_capture() (rate-limited so
//      one stall doesn't produce a capture per queued I/O), fetches the
//      target-side events with an AnomalyReq PDU keyed by the wire
//      trace_id, and writes one file containing BOTH halves — the remote
//      timestamps pre-corrected onto the local clock via the NTP-style
//      offset estimate, so one capture shows both sides on one timeline.
//   4. A fetch timeout still writes the capture with an empty remote half:
//      evidence with a gap beats no evidence.
//
// The target arms its own recorder when given SLO flags and captures
// locally (no reverse fetch); either side answers AnomalyReq from its ring.
#pragma once

#include <string>

#include "common/mutex.h"
#include "common/types.h"
#include "telemetry/attribution.h"
#include "telemetry/trace.h"

namespace oaf::telemetry {

struct AnomalyOptions {
  std::string dir = ".";  ///< directory for oaf_anomaly_<n>.json
  size_t max_captures = 8;
  /// Minimum spacing between captures. One 5 ms stall breaches every
  /// queued I/O at once; the first breach captures, the rest are counted
  /// by the SLO metrics but produce no further files until this elapses.
  DurNs min_interval_ns = 5'000'000'000;
  size_t max_events = 1024;  ///< per-side event cap in one capture
};

/// Everything one capture file records besides the local ring contents.
struct AnomalyContext {
  i64 index = 0;             ///< from begin_capture()
  const char* reason = "slo_breach";
  u64 trace_id = 0;          ///< wire trace id of the breaching I/O
  OpClass op = OpClass::kRead;
  i64 total_ns = 0;          ///< end-to-end latency that breached
  i64 slo_ns = 0;            ///< the budget it breached
  std::array<i64, kStageCount> stage_ns{};  ///< the I/O's stage ledger
  TimeNs t_from_ns = 0;      ///< local-clock window for neighbour events
  TimeNs t_to_ns = 0;
  i64 clock_offset_ns = 0;   ///< remote-minus-local estimate used
  u64 remote_pid = 0;        ///< 0 = no remote half (timeout / local-only)
  std::string remote_events_json;  ///< pre-rendered JSON array, "" = none
};

class AnomalyRecorder {
 public:
  explicit AnomalyRecorder(size_t capacity = 4096);

  /// The always-enabled span buffer. Components mirror per-I/O span
  /// begin/end plus high-signal instants here (wrapped in OAF_TEL like
  /// every other instrumentation site).
  TraceRecorder& ring() { return ring_; }
  u32 track(const std::string& name) { return ring_.track(name); }

  /// Arm capture into opts.dir. Idempotent.
  void configure(const AnomalyOptions& opts);
  [[nodiscard]] bool armed() const {
    // Read under the lock: configure()/reset_for_test() write armed_ from
    // tool threads while completion paths poll it — the unlocked read the
    // annotation pass flagged was a (benign-looking) data race.
    MutexLock lk(mu_);
    return armed_;
  }
  [[nodiscard]] AnomalyOptions options() const;

  /// Rate-limit gate: claims a capture slot when armed, under max_captures,
  /// and min_interval_ns past the previous claim. Returns the capture index
  /// (the <n> in the filename) or -1 when suppressed. The claim is consumed
  /// whether or not the remote fetch later succeeds.
  [[nodiscard]] i64 begin_capture(TimeNs now);

  /// Write oaf_anomaly_<ctx.index>.json: context + both event halves + the
  /// current attribution heatmap. Returns the path, or "" on I/O failure.
  std::string capture(const AnomalyContext& ctx);

  /// The local ring filtered for one capture: events whose async id matches
  /// `trace_id` (the I/O's full span set) plus any event inside
  /// [from_ns, to_ns] (neighbour I/Os, instants). `ts_adjust_ns` is added
  /// to every emitted ts_ns — the target answers AnomalyReq with
  /// -offset so its events land on the initiator's clock. Returns a JSON
  /// array, at most `max_events` entries, oldest first.
  [[nodiscard]] std::string events_json(u64 trace_id, TimeNs from_ns,
                                        TimeNs to_ns, i64 ts_adjust_ns,
                                        size_t max_events) const;

  [[nodiscard]] u64 captures() const {
    MutexLock lk(mu_);
    return static_cast<u64>(next_index_);
  }

  /// Disarm and forget capture history (ring events survive). Tests only.
  void reset_for_test();

 private:
  TraceRecorder ring_;
  mutable Mutex mu_;
  AnomalyOptions opts_ OAF_GUARDED_BY(mu_);
  bool armed_ OAF_GUARDED_BY(mu_) = false;
  i64 next_index_ OAF_GUARDED_BY(mu_) = 0;
  TimeNs last_claim_ns_ OAF_GUARDED_BY(mu_) = 0;
  bool claimed_once_ OAF_GUARDED_BY(mu_) = false;
  Counter* captures_total_ = nullptr;  ///< set once in the ctor
};

/// Process-global anomaly recorder (always recording, capture disarmed
/// until configure()).
AnomalyRecorder& anomaly();

}  // namespace oaf::telemetry

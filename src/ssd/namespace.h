// NVM subsystem structure: namespaces map NSIDs to devices, mirroring the
// controller/namespace hierarchy the NVMe-oF target exposes (paper §2.1).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "ssd/device.h"

namespace oaf::ssd {

struct NamespaceInfo {
  u32 nsid = 0;
  u32 block_size = 0;
  u64 num_blocks = 0;
  [[nodiscard]] u64 capacity_bytes() const {
    return static_cast<u64>(block_size) * num_blocks;
  }
};

/// A collection of namespaces behind one NVM subsystem NQN.
class Subsystem {
 public:
  explicit Subsystem(std::string nqn) : nqn_(std::move(nqn)) {}

  [[nodiscard]] const std::string& nqn() const { return nqn_; }

  /// Register a device as namespace `nsid`. The subsystem does not own the
  /// device (devices may be shared with other harness components).
  Status add_namespace(u32 nsid, Device* device) {
    if (nsid == 0 || device == nullptr) {
      return make_error(StatusCode::kInvalidArgument, "nsid must be >= 1");
    }
    if (namespaces_.contains(nsid)) {
      return make_error(StatusCode::kAlreadyExists, "namespace exists");
    }
    namespaces_[nsid] = device;
    return Status::ok();
  }

  [[nodiscard]] Device* find(u32 nsid) const {
    const auto it = namespaces_.find(nsid);
    return it == namespaces_.end() ? nullptr : it->second;
  }

  [[nodiscard]] std::vector<NamespaceInfo> list() const {
    std::vector<NamespaceInfo> out;
    out.reserve(namespaces_.size());
    for (const auto& [nsid, dev] : namespaces_) {
      out.push_back({nsid, dev->block_size(), dev->num_blocks()});
    }
    return out;
  }

  [[nodiscard]] size_t namespace_count() const { return namespaces_.size(); }

 private:
  std::string nqn_;
  std::map<u32, Device*> namespaces_;
};

}  // namespace oaf::ssd

// Functional-plane device: executes synchronously on the block store and
// completes through the owning executor (keeping the async contract so
// protocol engines never see re-entrant completions).
#pragma once

#include "common/executor.h"
#include "ssd/device.h"

namespace oaf::ssd {

class RealDevice final : public Device {
 public:
  RealDevice(Executor& exec, u32 block_size, u64 num_blocks)
      : exec_(exec), store_(block_size, num_blocks) {}

  void submit_write(const pdu::NvmeCmd& cmd, std::span<const u8> data,
                    Completion done) override {
    const TimeNs start = exec_.now();
    pdu::NvmeCpl cpl;
    cpl.cid = cmd.cid;
    if (data.size() != cmd.data_bytes(store_.block_size())) {
      cpl.status = pdu::NvmeStatus::kInvalidField;
    } else if (auto st = store_.write(cmd.slba, data); !st) {
      cpl.status = st.code() == StatusCode::kOutOfRange
                       ? pdu::NvmeStatus::kLbaOutOfRange
                       : pdu::NvmeStatus::kInternalError;
    }
    finish(cpl, start, std::move(done));
  }

  void submit_read(const pdu::NvmeCmd& cmd, std::span<u8> out,
                   Completion done) override {
    const TimeNs start = exec_.now();
    pdu::NvmeCpl cpl;
    cpl.cid = cmd.cid;
    if (out.size() != cmd.data_bytes(store_.block_size())) {
      cpl.status = pdu::NvmeStatus::kInvalidField;
    } else if (auto st = store_.read(cmd.slba, out); !st) {
      cpl.status = st.code() == StatusCode::kOutOfRange
                       ? pdu::NvmeStatus::kLbaOutOfRange
                       : pdu::NvmeStatus::kInternalError;
    }
    finish(cpl, start, std::move(done));
  }

  void submit_other(const pdu::NvmeCmd& cmd, Completion done) override {
    const TimeNs start = exec_.now();
    pdu::NvmeCpl cpl;
    cpl.cid = cmd.cid;
    if (cmd.opcode != pdu::NvmeOpcode::kFlush &&
        cmd.opcode != pdu::NvmeOpcode::kIdentify) {
      cpl.status = pdu::NvmeStatus::kInvalidOpcode;
    }
    finish(cpl, start, std::move(done));
  }

  [[nodiscard]] u32 block_size() const override { return store_.block_size(); }
  [[nodiscard]] u64 num_blocks() const override { return store_.num_blocks(); }

  [[nodiscard]] BlockStore& store() { return store_; }

 private:
  void finish(pdu::NvmeCpl cpl, TimeNs start, Completion done) {
    exec_.post([cpl, start, &exec = exec_, done = std::move(done)]() mutable {
      std::move(done)(cpl, exec.now() - start);
    });
  }

  Executor& exec_;
  BlockStore store_;
};

}  // namespace oaf::ssd

// Sparse in-memory block store backing an emulated NVMe namespace.
//
// The paper's SSDs are QEMU-emulated devices whose contents live in host
// DRAM; ours are the same minus QEMU. Storage is allocated lazily in
// fixed-size extents so a multi-GiB namespace costs memory only where it
// has been written; reads of never-written blocks return zeros, as a fresh
// (deallocated/TRIMmed) SSD does.
#pragma once

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "common/units.h"

namespace oaf::ssd {

class BlockStore {
 public:
  static constexpr u64 kExtentBytes = 256 * kKiB;

  BlockStore(u32 block_size, u64 num_blocks)
      : block_size_(block_size), num_blocks_(num_blocks) {}

  [[nodiscard]] u32 block_size() const { return block_size_; }
  [[nodiscard]] u64 num_blocks() const { return num_blocks_; }
  [[nodiscard]] u64 capacity_bytes() const { return block_size_ * num_blocks_; }

  /// Write `data` starting at logical block `slba`. `data.size()` must be a
  /// multiple of the block size and the range must fit the namespace.
  Status write(u64 slba, std::span<const u8> data);

  /// Read into `out` starting at logical block `slba` (same constraints).
  Status read(u64 slba, std::span<u8> out) const;

  /// Number of extents materialized (for memory-accounting tests).
  [[nodiscard]] size_t extents_allocated() const { return extents_.size(); }

 private:
  Status check_range(u64 slba, u64 bytes) const;

  u32 block_size_;
  u64 num_blocks_;
  // extent index -> lazily allocated extent buffer
  std::unordered_map<u64, std::unique_ptr<u8[]>> extents_;
};

}  // namespace oaf::ssd

#include "ssd/block_store.h"

#include <cstring>

namespace oaf::ssd {

Status BlockStore::check_range(u64 slba, u64 bytes) const {
  if (block_size_ == 0 || bytes % block_size_ != 0) {
    return make_error(StatusCode::kInvalidArgument,
                      "length not a multiple of block size");
  }
  const u64 blocks = bytes / block_size_;
  if (slba >= num_blocks_ || blocks > num_blocks_ - slba) {
    return make_error(StatusCode::kOutOfRange, "LBA range exceeds namespace");
  }
  return Status::ok();
}

Status BlockStore::write(u64 slba, std::span<const u8> data) {
  if (auto st = check_range(slba, data.size()); !st) return st;
  u64 offset = slba * block_size_;
  const u8* src = data.data();
  u64 remaining = data.size();
  while (remaining > 0) {
    const u64 extent_idx = offset / kExtentBytes;
    const u64 within = offset % kExtentBytes;
    const u64 n = std::min(remaining, kExtentBytes - within);
    auto& extent = extents_[extent_idx];
    if (!extent) {
      extent = std::make_unique<u8[]>(kExtentBytes);
      std::memset(extent.get(), 0, kExtentBytes);
    }
    std::memcpy(extent.get() + within, src, n);
    src += n;
    offset += n;
    remaining -= n;
  }
  return Status::ok();
}

Status BlockStore::read(u64 slba, std::span<u8> out) const {
  if (auto st = check_range(slba, out.size()); !st) return st;
  u64 offset = slba * block_size_;
  u8* dst = out.data();
  u64 remaining = out.size();
  while (remaining > 0) {
    const u64 extent_idx = offset / kExtentBytes;
    const u64 within = offset % kExtentBytes;
    const u64 n = std::min(remaining, kExtentBytes - within);
    const auto it = extents_.find(extent_idx);
    if (it == extents_.end()) {
      std::memset(dst, 0, n);  // unwritten blocks read as zeros
    } else {
      std::memcpy(dst, it->second.get() + within, n);
    }
    dst += n;
    offset += n;
    remaining -= n;
  }
  return Status::ok();
}

}  // namespace oaf::ssd

// Timing-plane device: the emulated-SSD service model.
//
// Service time for a command = fixed base latency (flash access + QEMU
// emulation overhead; reads pay more than writes because writes land in the
// device write cache) + bytes / per-op streaming rate, with optional
// exponential jitter. Commands run on a station with `parallelism` servers
// (internal channel/die concurrency) and all data additionally serializes
// through a device-level bandwidth throttle (the aggregate flash/emulation
// throughput cap). This produces the paper's Fig 14 concurrency curve:
// bandwidth grows with queue depth until either the station or the throttle
// saturates. Data still moves through the block store for integrity.
#pragma once

#include "common/rng.h"
#include "sim/resource.h"
#include "sim/scheduler.h"
#include "ssd/device.h"

namespace oaf::ssd {

struct SimDeviceParams {
  u32 block_size = 512;
  u64 num_blocks = 8ULL * 1024 * 1024 * 1024 / 512;  // 8 GiB namespace
  DurNs read_base_ns = 220'000;    ///< per-read fixed latency
  DurNs write_base_ns = 60'000;    ///< per-write fixed latency (write cache)
  double read_bytes_per_sec = 3.2e9;   ///< per-op streaming rate, reads
  double write_bytes_per_sec = 3.0e9;  ///< per-op streaming rate, writes
  double max_read_bytes_per_sec = 6.0e9;   ///< device aggregate read cap
  double max_write_bytes_per_sec = 4.2e9;  ///< device aggregate write cap
  int parallelism = 16;            ///< internal command concurrency
  double jitter_frac = 0.05;       ///< exponential jitter, fraction of base
  u64 rng_seed = 7;
};

class SimDevice final : public Device {
 public:
  SimDevice(sim::Scheduler& sched, const SimDeviceParams& params)
      : sched_(sched),
        params_(params),
        store_(params.block_size, params.num_blocks),
        station_(sched, params.parallelism),
        read_bw_(sched, params.max_read_bytes_per_sec),
        write_bw_(sched, params.max_write_bytes_per_sec),
        rng_(params.rng_seed) {}

  void submit_write(const pdu::NvmeCmd& cmd, std::span<const u8> data,
                    Completion done) override {
    const TimeNs start = sched_.now();
    pdu::NvmeCpl cpl;
    cpl.cid = cmd.cid;
    if (data.size() != cmd.data_bytes(params_.block_size)) {
      cpl.status = pdu::NvmeStatus::kInvalidField;
      complete_now(cpl, start, std::move(done));
      return;
    }
    if (auto st = store_.write(cmd.slba, data); !st) {
      cpl.status = pdu::NvmeStatus::kLbaOutOfRange;
      complete_now(cpl, start, std::move(done));
      return;
    }
    run(data.size(), /*is_write=*/true, cpl, start, std::move(done));
  }

  void submit_read(const pdu::NvmeCmd& cmd, std::span<u8> out,
                   Completion done) override {
    const TimeNs start = sched_.now();
    pdu::NvmeCpl cpl;
    cpl.cid = cmd.cid;
    if (out.size() != cmd.data_bytes(params_.block_size)) {
      cpl.status = pdu::NvmeStatus::kInvalidField;
      complete_now(cpl, start, std::move(done));
      return;
    }
    if (auto st = store_.read(cmd.slba, out); !st) {
      cpl.status = pdu::NvmeStatus::kLbaOutOfRange;
      complete_now(cpl, start, std::move(done));
      return;
    }
    run(out.size(), /*is_write=*/false, cpl, start, std::move(done));
  }

  void submit_other(const pdu::NvmeCmd& cmd, Completion done) override {
    const TimeNs start = sched_.now();
    pdu::NvmeCpl cpl;
    cpl.cid = cmd.cid;
    if (cmd.opcode != pdu::NvmeOpcode::kFlush &&
        cmd.opcode != pdu::NvmeOpcode::kIdentify) {
      cpl.status = pdu::NvmeStatus::kInvalidOpcode;
      complete_now(cpl, start, std::move(done));
      return;
    }
    // Flush drains the write cache: model as one base write latency.
    station_.submit(params_.write_base_ns,
                    [this, cpl, start, done = std::move(done)]() mutable {
                      std::move(done)(cpl, sched_.now() - start);
                    });
  }

  [[nodiscard]] u32 block_size() const override { return params_.block_size; }
  [[nodiscard]] u64 num_blocks() const override { return params_.num_blocks; }

  [[nodiscard]] BlockStore& store() { return store_; }
  [[nodiscard]] const SimDeviceParams& params() const { return params_; }
  [[nodiscard]] u64 commands_completed() const { return station_.jobs_completed(); }

 private:
  void complete_now(pdu::NvmeCpl cpl, TimeNs start, Completion done) {
    sched_.post([this, cpl, start, done = std::move(done)]() mutable {
      std::move(done)(cpl, sched_.now() - start);
    });
  }

  void run(u64 bytes, bool is_write, pdu::NvmeCpl cpl, TimeNs start,
           Completion done) {
    const DurNs base = is_write ? params_.write_base_ns : params_.read_base_ns;
    const double rate =
        is_write ? params_.write_bytes_per_sec : params_.read_bytes_per_sec;
    DurNs service = base + transfer_time_ns(bytes, rate);
    if (params_.jitter_frac > 0) {
      service += static_cast<DurNs>(
          rng_.next_exponential(params_.jitter_frac * static_cast<double>(base)));
    }
    auto& bw = is_write ? write_bw_ : read_bw_;
    // The command first streams its data through the device's aggregate
    // bandwidth stage, then occupies an internal execution slot.
    bw.transmit(bytes, 0, [this, service, cpl, start, done = std::move(done)]() mutable {
      station_.submit(service, [this, cpl, start, done = std::move(done)]() mutable {
        std::move(done)(cpl, sched_.now() - start);
      });
    });
  }

  sim::Scheduler& sched_;
  SimDeviceParams params_;
  BlockStore store_;
  sim::Resource station_;
  sim::Throttle read_bw_;
  sim::Throttle write_bw_;
  Rng rng_;
};

}  // namespace oaf::ssd

// NVMe device abstraction shared by both planes.
//
// The NVMe-oF target submits commands against this interface. The
// functional-plane device executes immediately on the block store; the
// timing-plane device adds an emulated-SSD service-time model: a fixed
// per-command latency (QEMU emulation + flash access) plus a per-byte
// streaming cost, executed on a station with limited internal parallelism
// and an aggregate bandwidth cap. Completions report the device residency
// time so the target can return the "I/O time" component of the paper's
// latency breakdowns (Figs 3, 12).
#pragma once

#include <span>

#include "af/once_callback.h"
#include "common/types.h"
#include "pdu/nvme_cmd.h"
#include "ssd/block_store.h"

namespace oaf::ssd {

class Device {
 public:
  /// cpl: NVMe completion; io_time: wall (virtual) time the command spent in
  /// the device from submission to completion. A linear token: the device
  /// must invoke it exactly once — losing it is the target-side response
  /// wedge, and aborts at the drop site (af/once_callback.h).
  using Completion = af::OnceCallback<void(pdu::NvmeCpl cpl, DurNs io_time)>;

  virtual ~Device() = default;

  /// Write `data` (multiple of block size) at cmd.slba.
  virtual void submit_write(const pdu::NvmeCmd& cmd, std::span<const u8> data,
                            Completion done) = 0;

  /// Read into `out`; `out` must cover cmd's full transfer length. The
  /// buffer must stay alive until `done` fires.
  virtual void submit_read(const pdu::NvmeCmd& cmd, std::span<u8> out,
                           Completion done) = 0;

  /// Flush / other data-less commands.
  virtual void submit_other(const pdu::NvmeCmd& cmd, Completion done) = 0;

  [[nodiscard]] virtual u32 block_size() const = 0;
  [[nodiscard]] virtual u64 num_blocks() const = 0;
};

}  // namespace oaf::ssd

// Workload specification for the perf-style driver (the SPDK `perf`
// equivalent the paper uses for all microbenchmarks, §5.1).
#pragma once

#include "common/rng.h"
#include "common/types.h"
#include "common/units.h"

namespace oaf::bench {

struct WorkloadSpec {
  u64 io_bytes = 128 * kKiB;
  bool sequential = true;
  double read_fraction = 1.0;   ///< 1.0 = pure read, 0.0 = pure write
  u32 queue_depth = 128;
  DurNs duration = 400 * 1000 * 1000;  ///< virtual run time (paper: 20 s; we
                                       ///< use a shorter deterministic run)
  DurNs warmup = 50 * 1000 * 1000;     ///< stats discarded before this point
  u64 working_set_bytes = 1 * kGiB;
  u64 seed = 1;
  /// Rate at which the application produces write payloads ("fill and copy
  /// out the buffer" — the client preparation the paper charges to the
  /// "other" latency component in Fig 3).
  double app_fill_bytes_per_sec = 6e9;

  [[nodiscard]] WorkloadSpec with_io(u64 bytes) const {
    WorkloadSpec s = *this;
    s.io_bytes = bytes;
    return s;
  }
  [[nodiscard]] WorkloadSpec with_mix(double read_frac, bool seq) const {
    WorkloadSpec s = *this;
    s.read_fraction = read_frac;
    s.sequential = seq;
    return s;
  }
  [[nodiscard]] WorkloadSpec with_qd(u32 qd) const {
    WorkloadSpec s = *this;
    s.queue_depth = qd;
    return s;
  }

  static WorkloadSpec seq_read(u64 io) { return WorkloadSpec{}.with_io(io); }
  static WorkloadSpec seq_write(u64 io) {
    return WorkloadSpec{}.with_io(io).with_mix(0.0, true);
  }
  static WorkloadSpec rand_mix(u64 io, double read_frac) {
    return WorkloadSpec{}.with_io(io).with_mix(read_frac, false);
  }
};

/// Offset stream for a workload: sequential wrap-around or uniform random,
/// always io-size-aligned within the working set.
class OffsetStream {
 public:
  OffsetStream(const WorkloadSpec& spec, u64 seed_salt = 0)
      : spec_(spec), rng_(spec.seed + seed_salt) {
    slots_ = spec.working_set_bytes / spec.io_bytes;
    if (slots_ == 0) slots_ = 1;
  }

  /// Byte offset of the next I/O.
  u64 next_offset() {
    if (spec_.sequential) {
      const u64 off = cursor_ * spec_.io_bytes;
      cursor_ = (cursor_ + 1) % slots_;
      return off;
    }
    return rng_.next_below(slots_) * spec_.io_bytes;
  }

  /// True if the next I/O should be a read.
  bool next_is_read() { return rng_.next_bool(spec_.read_fraction); }

 private:
  WorkloadSpec spec_;
  Rng rng_;
  u64 slots_;
  u64 cursor_ = 0;
};

}  // namespace oaf::bench

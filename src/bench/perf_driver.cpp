#include "bench/perf_driver.h"

namespace oaf::bench {

namespace {
/// How long a congested issue slot sleeps before re-checking. Short enough
/// that throughput recovers promptly when the target drains; long enough
/// that a saturated target is not polled into the ground.
constexpr DurNs kCongestionPollNs = 100'000;  // 100 us
}  // namespace

PerfDriver::PerfDriver(Executor& exec, nvmf::IoSession& initiator,
                       WorkloadSpec spec, u32 nsid)
    : exec_(exec),
      initiator_(initiator),
      spec_(spec),
      nsid_(nsid),
      stream_(spec),
      fill_core_(exec, 1) {
  buffers_.resize(spec_.queue_depth);
  for (auto& b : buffers_) b.resize(spec_.io_bytes);
}

void PerfDriver::run(DoneCb done) {
  done_ = std::move(done);
  t0_ = exec_.now();
  warmup_end_ = t0_ + spec_.warmup;
  stop_at_ = t0_ + spec_.duration;
  for (u32 i = 0; i < spec_.queue_depth; ++i) issue();
}

void PerfDriver::issue() {
  if (exec_.now() >= stop_at_) {
    stopped_issuing_ = true;
    maybe_finish();
    return;
  }
  if (initiator_.congested()) {
    // The session is backing off from target kQueueFull pushback: park this
    // issue slot and poll, instead of feeding more work to a saturated
    // target (DESIGN.md §12).
    congestion_defers_++;
    exec_.schedule_after(kCongestionPollNs, [this] { issue(); });
    return;
  }
  const bool is_read = stream_.next_is_read();
  const u64 offset = stream_.next_offset();
  outstanding_++;
  if (is_read) {
    submit_read(offset);
  } else {
    submit_write(offset);
  }
}

void PerfDriver::submit_read(u64 offset) {
  const TimeNs op_start = exec_.now();
  const u64 slba = offset / nvmf::IoSession::kBlockSize;

  if (initiator_.supports_zero_copy()) {
    initiator_.zero_copy_read(
        nsid_, slba, spec_.io_bytes,
        [this, op_start](Result<nvmf::IoSession::ReadView> view,
                         nvmf::IoSession::IoResult r) {
          // The application consumes the payload in place, then releases
          // the slot; perf does not inspect the data.
          if (view.is_ok()) view.value().release();
          on_complete(op_start, 0, view.is_ok() && r.ok(), r);
        });
    return;
  }

  auto& buf = buffers_[next_buffer_++ % buffers_.size()];
  initiator_.read(nsid_, slba, buf,
                  [this, op_start](nvmf::IoSession::IoResult r) {
                    on_complete(op_start, 0, r.ok(), r);
                  });
}

void PerfDriver::submit_write(u64 offset) {
  const TimeNs op_start = exec_.now();
  const u64 slba = offset / nvmf::IoSession::kBlockSize;
  const DurNs fill_ns =
      transfer_time_ns(spec_.io_bytes, spec_.app_fill_bytes_per_sec);

  // The application first produces the payload (one core), then submits.
  fill_core_.submit(fill_ns, [this, op_start, slba, fill_ns] {
    if (initiator_.supports_zero_copy()) {
      auto ticket = initiator_.zero_copy_write_begin(spec_.io_bytes);
      if (ticket.is_ok()) {
        initiator_.zero_copy_write(
            ticket.value(), nsid_, slba, spec_.io_bytes,
            [this, op_start, fill_ns](nvmf::IoSession::IoResult r) {
              on_complete(op_start, fill_ns, r.ok(), r);
            });
        return;
      }
      // Slot pressure: fall through to the staged path.
    }
    auto& buf = buffers_[next_buffer_++ % buffers_.size()];
    initiator_.write(nsid_, slba, buf,
                     [this, op_start, fill_ns](nvmf::IoSession::IoResult r) {
                       on_complete(op_start, fill_ns, r.ok(), r);
                     });
  });
}

void PerfDriver::on_complete(TimeNs op_start, DurNs fill_ns, bool ok,
                             const nvmf::IoSession::IoResult& r) {
  outstanding_--;
  const TimeNs now = exec_.now();
  last_completion_ = now;
  if (!ok) stats_.failures++;  // counted across the whole run, warmup included
  if (ok && now >= warmup_end_) {
    const DurNs total = now - op_start;
    stats_.ios_completed++;
    stats_.bytes_moved += spec_.io_bytes;
    stats_.latency.record(total);
    LatencyParts parts;
    parts.io = static_cast<DurNs>(r.io_time_ns);
    parts.other = static_cast<DurNs>(r.target_time_ns) + fill_ns;
    parts.comm = total - parts.io - parts.other;
    if (parts.comm < 0) parts.comm = 0;
    stats_.breakdown.record(parts);
  }
  issue();
}

void PerfDriver::maybe_finish() {
  if (outstanding_ > 0 || !stopped_issuing_ || done_ == nullptr) return;
  stats_.elapsed = last_completion_ - warmup_end_;
  if (stats_.elapsed <= 0) stats_.elapsed = 1;
  auto done = std::move(done_);
  done_ = nullptr;
  done(std::move(stats_));
}

}  // namespace oaf::bench

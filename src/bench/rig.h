// Experiment rig: builds the paper's measurement topology on the timing
// plane — N client applications, each with its own NVMe-oF connection and
// (by default) its own emulated SSD behind one target VM, over a chosen
// fabric — and runs one perf workload per stream (paper §3.1/§5.1).
//
// Transports:
//   kTcpStock            stock SPDK NVMe/TCP (interrupt rx, 128 KiB chunks)
//   kAfTcpOnly           AF's optimized TCP mode (adaptive busy poll,
//                        tuned chunk size) — the inter-node fallback
//   kRdma / kRoce        NVMe/RDMA over IB-56G or RoCE-100G link models
//   kAfShm               full NVMe-oAF (SHM-0-copy)
//   kAfShmBaselineLocked Fig 8 ablation: locked shm, conservative flow
//   kAfShmLockFree       Fig 8 ablation: + lock-free double buffer
//   kAfShmFlowCtl        Fig 8 ablation: + shm flow control (no zero-copy)
//
// All TCP-based streams share one full-duplex link (one NIC/VM pair) unless
// `shared_tcp_link` is false (the Fig 18 "case-1" topology where each
// client-target pair sits on its own node pair).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "af/locality.h"
#include "bench/calibration.h"
#include "bench/perf_driver.h"
#include "net/copier.h"
#include "net/sim_channel.h"
#include "nvmf/initiator.h"
#include "nvmf/target.h"
#include "sim/scheduler.h"
#include "ssd/sim_device.h"

namespace oaf::bench {

enum class Transport {
  kTcpStock,
  kAfTcpOnly,
  kRdma,
  kRoce,
  kAfShm,
  kAfShmBaselineLocked,
  kAfShmLockFree,
  kAfShmFlowCtl,
  /// Paper future work (§5.5/§8): carry the AF *control* PDUs over RDMA
  /// instead of TCP to attack the residual control-plane latency.
  kAfShmRdmaControl,
  /// Paper §6 hardening: full NVMe-oAF with slot payloads encrypted.
  kAfShmEncrypted,
};

const char* to_string(Transport t);

struct RigOptions {
  net::TcpFabricParams tcp = tcp_25g();
  net::RdmaFabricParams rdma = rdma_56g();
  net::RdmaFabricParams roce = roce_100g();
  net::ShmFabricParams shm = host_shm();
  ssd::SimDeviceParams device = emulated_ssd();
  bool shared_tcp_link = true;
  u32 queue_depth = 128;
  u64 max_io_bytes = 512 * kKiB;  ///< shm slot size
};

struct StreamSpec {
  Transport transport = Transport::kAfShm;
  WorkloadSpec workload;
  /// When set, replaces the transport's canonical AfConfig (used by the
  /// chunk-size and busy-poll sweeps that vary one knob at a time).
  std::optional<af::AfConfig> config_override;
};

class Rig {
 public:
  Rig(sim::Scheduler& sched, RigOptions opts, std::vector<StreamSpec> streams);
  ~Rig();

  Rig(const Rig&) = delete;
  Rig& operator=(const Rig&) = delete;

  /// Connect every stream (phase 1). Drives the scheduler until all
  /// handshakes complete. Called by run(); exposed for harnesses that drive
  /// their own application (e.g. the h5bench figures).
  void connect_all();

  /// Connect every stream, run all workloads to completion, and return the
  /// per-stream stats. Drives the scheduler internally.
  std::vector<RunStats> run();

  [[nodiscard]] nvmf::NvmfInitiator& initiator(size_t i) {
    return *streams_[i]->initiator;
  }
  [[nodiscard]] ssd::SimDevice& device(size_t i) { return *streams_[i]->device; }
  [[nodiscard]] size_t stream_count() const { return streams_.size(); }

  /// Aggregate bandwidth across streams, MiB/s.
  static double aggregate_mib_s(const std::vector<RunStats>& stats);
  /// Mean of per-stream average latencies, µs.
  static double mean_latency_us(const std::vector<RunStats>& stats);

 private:
  struct Stream {
    StreamSpec spec;
    std::unique_ptr<net::SimTcpLink> own_tcp_link;  // when not shared
    std::unique_ptr<net::MsgChannel> client_ch;
    std::unique_ptr<net::MsgChannel> target_ch;
    std::unique_ptr<net::Copier> client_copier;
    std::unique_ptr<net::Copier> target_copier;
    std::unique_ptr<ssd::SimDevice> device;
    std::unique_ptr<ssd::Subsystem> subsystem;
    std::unique_ptr<nvmf::NvmfTargetConnection> target;
    std::unique_ptr<nvmf::NvmfInitiator> initiator;
    std::unique_ptr<PerfDriver> driver;
  };

  [[nodiscard]] af::AfConfig config_for(Transport t) const;

  sim::Scheduler& sched_;
  RigOptions opts_;
  af::ShmBroker host_broker_;    ///< the co-located physical host
  af::ShmBroker remote_broker_;  ///< "some other node" for TCP-only modes
  std::unique_ptr<net::SimTcpLink> tcp_link_;
  std::unique_ptr<net::SimRdmaLink> rdma_link_;
  std::unique_ptr<net::SimRdmaLink> roce_link_;
  std::unique_ptr<net::SimMemoryBus> mem_bus_;
  std::vector<std::unique_ptr<Stream>> streams_;
};

}  // namespace oaf::bench

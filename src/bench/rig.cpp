#include "bench/rig.h"

#include "common/log.h"

namespace oaf::bench {

const char* to_string(Transport t) {
  switch (t) {
    case Transport::kTcpStock:
      return "NVMe/TCP";
    case Transport::kAfTcpOnly:
      return "AF (TCP mode)";
    case Transport::kRdma:
      return "NVMe/RDMA";
    case Transport::kRoce:
      return "NVMe/RoCE";
    case Transport::kAfShm:
      return "NVMe-oAF (SHM-0-copy)";
    case Transport::kAfShmBaselineLocked:
      return "SHM-baseline";
    case Transport::kAfShmLockFree:
      return "SHM-lock-free";
    case Transport::kAfShmFlowCtl:
      return "SHM-flow-ctl";
    case Transport::kAfShmRdmaControl:
      return "NVMe-oAF (RDMA control)";
    case Transport::kAfShmEncrypted:
      return "NVMe-oAF (encrypted shm)";
  }
  return "?";
}

af::AfConfig Rig::config_for(Transport t) const {
  switch (t) {
    case Transport::kTcpStock:
      return af_stock_tcp();
    case Transport::kAfTcpOnly: {
      // AF's inter-node mode: the TCP optimizations of §4.5 without shm.
      af::AfConfig cfg = af_stock_tcp();
      cfg.chunk_bytes = 512 * kKiB;
      cfg.busy_poll = af::BusyPollPolicy::kAdaptive;
      return cfg;
    }
    case Transport::kRdma:
    case Transport::kRoce:
      return af_rdma();
    case Transport::kAfShm:
    case Transport::kAfShmRdmaControl:
      return af_full(opts_.max_io_bytes, opts_.queue_depth);
    case Transport::kAfShmEncrypted: {
      af::AfConfig cfg = af_full(opts_.max_io_bytes, opts_.queue_depth);
      cfg.encrypt_shm = true;
      cfg.shm_key = 0xFEEDFACE12345678ULL;
      return cfg;
    }
    case Transport::kAfShmBaselineLocked: {
      // Pre-optimization designs keep SPDK's stock 128 KiB chunking for
      // their notifications; the chunk tuning belongs to §4.5.
      af::AfConfig cfg = af_full(opts_.max_io_bytes, opts_.queue_depth);
      cfg.shm_access = af::ShmAccessMode::kLocked;
      cfg.flow_control = af::FlowControlMode::kConservative;
      cfg.zero_copy = false;
      cfg.chunk_bytes = 128 * kKiB;
      cfg.busy_poll = af::BusyPollPolicy::kInterrupt;
      return cfg;
    }
    case Transport::kAfShmLockFree: {
      af::AfConfig cfg = af_full(opts_.max_io_bytes, opts_.queue_depth);
      cfg.flow_control = af::FlowControlMode::kConservative;
      cfg.zero_copy = false;
      cfg.chunk_bytes = 128 * kKiB;
      cfg.busy_poll = af::BusyPollPolicy::kInterrupt;
      return cfg;
    }
    case Transport::kAfShmFlowCtl: {
      af::AfConfig cfg = af_full(opts_.max_io_bytes, opts_.queue_depth);
      cfg.zero_copy = false;
      cfg.chunk_bytes = 128 * kKiB;
      cfg.busy_poll = af::BusyPollPolicy::kInterrupt;
      return cfg;
    }
  }
  return af_stock_tcp();
}

Rig::Rig(sim::Scheduler& sched, RigOptions opts, std::vector<StreamSpec> streams)
    : sched_(sched),
      opts_(opts),
      host_broker_(0xA11CE),
      remote_broker_(0xB0B) {
  bool any_tcp = false;
  bool any_rdma = false;
  bool any_roce = false;
  bool any_shm = false;
  for (const auto& s : streams) {
    switch (s.transport) {
      case Transport::kRdma:
      case Transport::kAfShmRdmaControl:
        any_rdma = true;
        break;
      case Transport::kRoce:
        any_roce = true;
        break;
      default:
        any_tcp = true;  // AF modes carry control PDUs over TCP too
        break;
    }
    if (s.transport == Transport::kAfShm ||
        s.transport == Transport::kAfShmBaselineLocked ||
        s.transport == Transport::kAfShmLockFree ||
        s.transport == Transport::kAfShmFlowCtl ||
        s.transport == Transport::kAfShmRdmaControl ||
        s.transport == Transport::kAfShmEncrypted) {
      any_shm = true;
    }
  }
  if (any_tcp && opts_.shared_tcp_link) {
    tcp_link_ = std::make_unique<net::SimTcpLink>(sched_, opts_.tcp);
  }
  if (any_rdma) rdma_link_ = std::make_unique<net::SimRdmaLink>(sched_, opts_.rdma);
  if (any_roce) roce_link_ = std::make_unique<net::SimRdmaLink>(sched_, opts_.roce);
  if (any_shm) mem_bus_ = std::make_unique<net::SimMemoryBus>(sched_, opts_.shm);

  int index = 0;
  for (const auto& spec : streams) {
    auto stream = std::make_unique<Stream>();
    stream->spec = spec;

    // Channel.
    net::ChannelPair pair;
    switch (spec.transport) {
      case Transport::kRdma:
      case Transport::kAfShmRdmaControl:
        pair = rdma_link_->connect();
        break;
      case Transport::kRoce:
        pair = roce_link_->connect();
        break;
      default:
        if (opts_.shared_tcp_link) {
          pair = tcp_link_->connect();
        } else {
          stream->own_tcp_link =
              std::make_unique<net::SimTcpLink>(sched_, opts_.tcp);
          pair = stream->own_tcp_link->connect();
        }
        break;
    }
    stream->client_ch = std::move(pair.first);
    stream->target_ch = std::move(pair.second);

    // Copiers: shm streams charge real memory-bus time; pure network
    // streams never touch the shm path, so the inline copier suffices.
    const bool uses_shm = spec.transport == Transport::kAfShm ||
                          spec.transport == Transport::kAfShmBaselineLocked ||
                          spec.transport == Transport::kAfShmLockFree ||
                          spec.transport == Transport::kAfShmFlowCtl ||
                          spec.transport == Transport::kAfShmRdmaControl ||
                          spec.transport == Transport::kAfShmEncrypted;
    if (uses_shm) {
      stream->client_copier = std::make_unique<net::SimCopier>(*mem_bus_);
      stream->target_copier = std::make_unique<net::SimCopier>(*mem_bus_);
    } else {
      stream->client_copier = std::make_unique<net::InlineCopier>();
      stream->target_copier = std::make_unique<net::InlineCopier>();
    }

    // Device + subsystem: the RoCE testbed used the one real SSD.
    ssd::SimDeviceParams dev_params =
        spec.transport == Transport::kRoce ? real_ssd() : opts_.device;
    dev_params.rng_seed = opts_.device.rng_seed + static_cast<u64>(index);
    stream->device = std::make_unique<ssd::SimDevice>(sched_, dev_params);
    stream->subsystem = std::make_unique<ssd::Subsystem>(
        "nqn.2026-07.io.oaf:rig" + std::to_string(index));
    (void)stream->subsystem->add_namespace(1, stream->device.get());

    // Endpoints.
    const af::AfConfig cfg = spec.config_override.has_value()
                                 ? *spec.config_override
                                 : config_for(spec.transport);
    af::ShmBroker& client_broker = uses_shm ? host_broker_ : remote_broker_;
    const std::string conn_name = "rig_conn" + std::to_string(index);

    nvmf::TargetOptions topts{cfg, conn_name};
    stream->target = std::make_unique<nvmf::NvmfTargetConnection>(
        sched_, *stream->target_ch, *stream->target_copier, host_broker_,
        *stream->subsystem, topts);

    nvmf::InitiatorOptions iopts;
    iopts.af = cfg;
    iopts.connection_name = conn_name;
    iopts.queue_depth = spec.workload.queue_depth;
    stream->initiator = std::make_unique<nvmf::NvmfInitiator>(
        sched_, *stream->client_ch, *stream->client_copier, client_broker, iopts);

    streams_.push_back(std::move(stream));
    index++;
  }
}

Rig::~Rig() = default;

void Rig::connect_all() {
  size_t connected = 0;
  for (auto& s : streams_) {
    s->initiator->connect([&connected](Status st) {
      if (!st) OAF_ERROR("rig connect failed: %s", st.to_string().c_str());
      connected++;
    });
  }
  sched_.run();
  if (connected != streams_.size()) {
    OAF_ERROR("rig: only %zu/%zu streams connected", connected, streams_.size());
  }
}

std::vector<RunStats> Rig::run() {
  connect_all();

  // Run every stream's workload concurrently.
  std::vector<RunStats> results(streams_.size());
  size_t done = 0;
  for (size_t i = 0; i < streams_.size(); ++i) {
    auto& s = streams_[i];
    s->driver = std::make_unique<PerfDriver>(sched_, *s->initiator,
                                             s->spec.workload);
    s->driver->run([&results, &done, i](RunStats stats) {
      results[i] = std::move(stats);
      done++;
    });
  }
  sched_.run();
  if (done != streams_.size()) {
    OAF_ERROR("rig: only %zu/%zu streams finished", done, streams_.size());
  }
  return results;
}

double Rig::aggregate_mib_s(const std::vector<RunStats>& stats) {
  double sum = 0;
  for (const auto& s : stats) sum += s.bandwidth_mib_s();
  return sum;
}

double Rig::mean_latency_us(const std::vector<RunStats>& stats) {
  if (stats.empty()) return 0;
  double sum = 0;
  for (const auto& s : stats) sum += s.avg_latency_us();
  return sum / static_cast<double>(stats.size());
}

}  // namespace oaf::bench

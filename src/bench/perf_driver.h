// Perf-style workload driver — the repo's equivalent of SPDK's `perf`
// client (paper §5.1): keeps `queue_depth` I/Os outstanding against one
// initiator for a fixed (virtual) duration and reports bandwidth, IOPS,
// latency percentiles, and the io/comm/other breakdown.
//
// Like the paper's co-designed perf, the driver uses the zero-copy buffer
// API whenever the connection offers it: write payloads are produced
// directly into shm slots and read payloads are consumed from them. Payload
// production time ("fill") is charged against a single app core and counted
// in the "other" latency component.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "bench/workload.h"
#include "common/stats.h"
#include "nvmf/io_session.h"
#include "sim/resource.h"

namespace oaf::bench {

class PerfDriver {
 public:
  using DoneCb = std::function<void(RunStats)>;

  /// Drives any IoSession — a single NvmfInitiator or a multipath
  /// PathGroup; the workload logic is identical over both.
  PerfDriver(Executor& exec, nvmf::IoSession& initiator, WorkloadSpec spec,
             u32 nsid = 1);

  /// Begin issuing; `done` fires once the run drains after `spec.duration`.
  void run(DoneCb done);

  [[nodiscard]] const WorkloadSpec& spec() const { return spec_; }
  /// Issue slots paused because the session reported congestion (target
  /// kQueueFull backpressure) — the driver polls instead of hammering.
  [[nodiscard]] u64 congestion_defers() const { return congestion_defers_; }

 private:
  void issue();
  void submit_read(u64 offset);
  void submit_write(u64 offset);
  void on_complete(TimeNs op_start, DurNs fill_ns, bool ok,
                   const nvmf::IoSession::IoResult& r);
  void maybe_finish();

  Executor& exec_;
  nvmf::IoSession& initiator_;
  WorkloadSpec spec_;
  u32 nsid_;

  OffsetStream stream_;
  sim::Resource fill_core_;
  std::vector<std::vector<u8>> buffers_;  ///< staged-path payload buffers
  u32 next_buffer_ = 0;

  TimeNs t0_ = 0;
  TimeNs warmup_end_ = 0;
  TimeNs stop_at_ = 0;
  TimeNs last_completion_ = 0;
  u32 outstanding_ = 0;
  bool stopped_issuing_ = false;
  u64 congestion_defers_ = 0;

  RunStats stats_;
  DoneCb done_;
};

}  // namespace oaf::bench

// Calibrated model parameters for the paper's two testbeds (Table 1).
//
// Chameleon Cloud (CC): Intel Xeon E5-2670 v3, Broadcom 10 GbE + Mellanox
// FDR 56 G InfiniBand; the 25 G TCP numbers come from IPoIB on this fabric
// and 10 G from throttling it (paper §5.1), so both inherit the old Xeon's
// per-byte stack cost. CloudLab (CL): AMD EPYC 7402P with ConnectX-5 25/100
// GbE, faster stack. RoCE ran on physical CL nodes with one real NVMe SSD.
//
// Every constant here is an engineering estimate chosen so the *relative*
// behaviour matches the paper's reported ratios (DESIGN.md §5); absolute
// megabytes differ from the authors' testbed and are expected to.
#pragma once

#include "af/config.h"
#include "net/fabric_params.h"
#include "nfs/nfs.h"
#include "ssd/sim_device.h"

namespace oaf::bench {

// ---------------------------------------------------------------------------
// TCP fabrics
// ---------------------------------------------------------------------------

/// 10 GbE (Chameleon, throttled IPoIB on the old Xeon): wire-bound.
inline net::TcpFabricParams tcp_10g() {
  net::TcpFabricParams p;
  p.link_gbps = 10.0;
  p.propagation_ns = 25'000;
  p.interrupt_delay_ns = 30'000;
  p.interrupt_cpu_ns = 28'000;
  p.poll_pickup_ns = 2'000;
  p.per_pdu_overhead_ns = 21'000;
  p.stack_bytes_per_sec = 1.9e9;
  p.node_stack_bytes_per_sec = 2.6e9;
  return p;
}

/// 25 GbE (IPoIB on Chameleon's FDR fabric): the slow Xeon stack keeps the
/// wire underutilized — the paper's "25G barely beats 10G" observation.
inline net::TcpFabricParams tcp_25g() {
  net::TcpFabricParams p = tcp_10g();
  p.link_gbps = 25.0;
  p.propagation_ns = 18'000;
  return p;
}

/// 100 GbE (CloudLab ConnectX-5 on EPYC): stack-bound far below the wire.
inline net::TcpFabricParams tcp_100g() {
  net::TcpFabricParams p;
  p.link_gbps = 100.0;
  p.propagation_ns = 15'000;
  p.interrupt_delay_ns = 30'000;
  p.interrupt_cpu_ns = 15'000;
  p.poll_pickup_ns = 2'000;
  p.per_pdu_overhead_ns = 13'000;
  p.stack_bytes_per_sec = 2.9e9;
  p.node_stack_bytes_per_sec = 3.8e9;
  return p;
}

// ---------------------------------------------------------------------------
// RDMA fabrics
// ---------------------------------------------------------------------------

/// 56 G FDR InfiniBand through SR-IOV VFs (Chameleon VMs).
inline net::RdmaFabricParams rdma_56g() {
  net::RdmaFabricParams p;
  p.link_gbps = 56.0;
  p.link_efficiency = 0.68;
  p.propagation_ns = 2'000;
  p.per_msg_overhead_ns = 600;
  p.reg_cache_slots = 128;
  p.reg_cost_mean_ns = 150'000;
  p.reg_cost_sigma = 1.0;
  return p;
}

/// 100 G RoCE between *physical* CloudLab nodes (paper: upper bound, no
/// virtualization overhead, one real SSD).
inline net::RdmaFabricParams roce_100g() {
  net::RdmaFabricParams p;
  p.link_gbps = 100.0;
  p.link_efficiency = 0.60;  // RoCE pacing/PFC on this testbed
  p.propagation_ns = 1'500;
  p.per_msg_overhead_ns = 500;
  p.reg_cache_slots = 128;
  p.reg_cost_mean_ns = 120'000;
  p.reg_cost_sigma = 1.0;
  return p;
}

// ---------------------------------------------------------------------------
// Shared memory / host
// ---------------------------------------------------------------------------

/// IVSHMEM-backed copies inside one physical host. The node aggregate cap
/// bounds NVMe-oAF's 4-stream peak (DESIGN.md: ~7.1x TCP-10G).
inline net::ShmFabricParams host_shm() {
  net::ShmFabricParams p;
  p.memcpy_bytes_per_sec = 5.5e9;
  p.node_mem_bytes_per_sec = 9.2e9;
  p.notify_pickup_ns = 800;
  return p;
}

// ---------------------------------------------------------------------------
// Devices
// ---------------------------------------------------------------------------

/// QEMU-emulated NVMe SSD attached to the target VM: DRAM-backed but with
/// high per-command emulation latency.
inline ssd::SimDeviceParams emulated_ssd() {
  ssd::SimDeviceParams p;
  p.block_size = 512;
  p.num_blocks = (8ull << 30) / 512;
  p.read_base_ns = 220'000;
  p.write_base_ns = 60'000;
  p.read_bytes_per_sec = 3.2e9;
  p.write_bytes_per_sec = 3.0e9;
  p.max_read_bytes_per_sec = 6.0e9;
  p.max_write_bytes_per_sec = 4.2e9;
  p.parallelism = 16;
  p.jitter_frac = 0.05;
  return p;
}

/// The one real NVMe SSD on the physical RoCE testbed.
inline ssd::SimDeviceParams real_ssd() {
  ssd::SimDeviceParams p;
  p.block_size = 512;
  p.num_blocks = (8ull << 30) / 512;
  p.read_base_ns = 85'000;
  p.write_base_ns = 15'000;
  p.read_bytes_per_sec = 2.8e9;
  p.write_bytes_per_sec = 1.8e9;
  p.max_read_bytes_per_sec = 3.2e9;
  p.max_write_bytes_per_sec = 2.0e9;
  p.parallelism = 32;
  p.jitter_frac = 0.05;
  return p;
}

// ---------------------------------------------------------------------------
// NFS (paper §5.7 baseline, async mount over the 25 G fabric)
// ---------------------------------------------------------------------------

inline nfs::NfsParams nfs_25g() {
  nfs::NfsParams p;
  p.wsize = 128 * kKiB;
  p.rsize = 128 * kKiB;
  p.rpc_overhead_ns = 380'000;
  p.rpc_pipeline = 2;
  p.link_bytes_per_sec = gbps_to_bytes_per_sec(25.0);
  p.server_disk_bytes_per_sec = 0.6e9;
  p.server_disk_latency_ns = 80'000;
  p.async_mount = true;
  p.dirty_limit_bytes = 512 * kMiB;
  p.page_cache_bytes_per_sec = 8e9;
  p.readahead_chunks = 2;
  return p;
}

// ---------------------------------------------------------------------------
// AF configurations (per experiment mode)
// ---------------------------------------------------------------------------

/// NVMe-oAF "SHM-0-copy": all §4.4 optimizations (the evaluated design).
inline af::AfConfig af_full(u64 max_io_bytes, u32 queue_depth) {
  af::AfConfig cfg = af::AfConfig::oaf();
  cfg.shm_slot_bytes = max_io_bytes;
  cfg.shm_slots = queue_depth;
  cfg.chunk_bytes = 512 * kKiB;  // the Fig 9 optimum
  return cfg;
}

/// Stock SPDK NVMe/TCP.
inline af::AfConfig af_stock_tcp() { return af::AfConfig::stock_tcp(); }

/// NVMe/RDMA-ish behaviour on top of the RDMA link model: single-shot data
/// transfers regardless of size, no shm.
inline af::AfConfig af_rdma() {
  af::AfConfig cfg = af::AfConfig::stock_tcp();
  cfg.in_capsule_threshold = UINT64_MAX;  // writes carried with the command
  cfg.chunk_bytes = 16 * kMiB;            // reads returned in one transfer
  return cfg;
}

}  // namespace oaf::bench

#include "common/json_parse.h"

#include <cstdlib>

namespace oaf {

namespace {

const JsonValue kNullValue{};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> parse() {
    auto v = value();
    if (!v) return v;
    skip_ws();
    if (pos_ != text_.size()) return err("trailing characters");
    return v;
  }

 private:
  Result<JsonValue> err(const char* what) {
    return make_error(StatusCode::kInvalidArgument,
                      std::string("json: ") + what + " at byte " +
                          std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool consume(char c) {
    if (at_end() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool consume_lit(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Result<JsonValue> value() {
    if (++depth_ > kMaxDepth) return err("nesting too deep");
    auto v = value_inner();
    --depth_;
    return v;
  }

  Result<JsonValue> value_inner() {
    skip_ws();
    if (at_end()) return err("unexpected end of input");
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      auto s = string();
      if (!s) return s.status();
      return JsonValue::make_string(std::move(s).take());
    }
    if (consume_lit("true")) return JsonValue::make_bool(true);
    if (consume_lit("false")) return JsonValue::make_bool(false);
    if (consume_lit("null")) return JsonValue::make_null();
    if (c == '-' || (c >= '0' && c <= '9')) return number();
    return err("unexpected character");
  }

  Result<JsonValue> object() {
    ++pos_;  // '{'
    std::vector<JsonValue::Member> members;
    skip_ws();
    if (consume('}')) return JsonValue::make_object(std::move(members));
    while (true) {
      skip_ws();
      if (at_end() || peek() != '"') return err("expected object key");
      auto key = string();
      if (!key) return key.status();
      skip_ws();
      if (!consume(':')) return err("expected ':'");
      auto v = value();
      if (!v) return v;
      members.emplace_back(std::move(key).take(), std::move(v).take());
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return JsonValue::make_object(std::move(members));
      return err("expected ',' or '}'");
    }
  }

  Result<JsonValue> array() {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    skip_ws();
    if (consume(']')) return JsonValue::make_array(std::move(items));
    while (true) {
      auto v = value();
      if (!v) return v;
      items.push_back(std::move(v).take());
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return JsonValue::make_array(std::move(items));
      return err("expected ',' or ']'");
    }
  }

  Result<std::string> string() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (at_end()) {
        return make_error(StatusCode::kInvalidArgument,
                          "json: unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) {
        return make_error(StatusCode::kInvalidArgument,
                          "json: unterminated escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return make_error(StatusCode::kInvalidArgument,
                              "json: truncated \\u escape");
          }
          u32 cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<u32>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<u32>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<u32>(h - 'A' + 10);
            else
              return make_error(StatusCode::kInvalidArgument,
                                "json: bad \\u escape");
          }
          // Our writer only escapes control characters this way; anything
          // else degrades to '?' (documented simplification).
          out.push_back(cp < 0x80 ? static_cast<char>(cp) : '?');
          break;
        }
        default:
          return make_error(StatusCode::kInvalidArgument,
                            "json: bad escape character");
      }
    }
  }

  Result<JsonValue> number() {
    const u64 start = pos_;
    if (consume('-')) {}
    while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    if (consume('.')) {
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0') return err("malformed number");
    return JsonValue::make_number(d);
  }

  static constexpr int kMaxDepth = 64;

  std::string_view text_;
  u64 pos_ = 0;
  int depth_ = 0;
};

}  // namespace

const JsonValue& JsonValue::operator[](std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return v;
  }
  return kNullValue;
}

bool JsonValue::has(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return true;
  }
  return false;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(std::vector<Member> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

Result<JsonValue> json_parse(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace oaf

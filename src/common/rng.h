// Deterministic random number generation for workloads and timing models.
//
// Every experiment seeds its own Rng so runs are reproducible bit-for-bit;
// std::mt19937 is avoided because its state is large and its distributions
// are not portable across standard library implementations.
#pragma once

#include <cmath>

#include "common/types.h"

namespace oaf {

/// xoshiro256** by Blackman & Vigna, seeded via SplitMix64. Fast, small
/// state, and fully deterministic across platforms.
class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(u64 seed) {
    // SplitMix64 to spread a small seed over the 256-bit state.
    u64 x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      u64 z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  u64 next_u64() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  u64 next_below(u64 bound) {
    // Rejection sampling to avoid modulo bias; bias is negligible for the
    // bounds we use, but rejection keeps property tests exact.
    const u64 threshold = (0 - bound) % bound;
    for (;;) {
      const u64 r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// Exponential variate with the given mean (used for service-time jitter).
  double next_exponential(double mean) {
    double u = next_double();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Lognormal variate; mu/sigma are of the underlying normal. Heavy tails
  /// for the RDMA registration-miss model (paper Fig 13 discussion).
  double next_lognormal(double mu, double sigma) {
    return std::exp(mu + sigma * next_gaussian());
  }

  /// Standard normal via Marsaglia polar method.
  double next_gaussian() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u = 0;
    double v = 0;
    double s = 0;
    do {
      u = 2.0 * next_double() - 1.0;
      v = 2.0 * next_double() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    has_spare_ = true;
    return u * m;
  }

 private:
  static constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

  u64 state_[4] = {};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace oaf

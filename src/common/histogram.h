// Log-bucketed latency histogram with percentile queries.
//
// HDR-style layout: values are grouped into power-of-two "tiers", each tier
// split into a fixed number of linear sub-buckets, giving a bounded relative
// error (~1/kSubBuckets) at every magnitude. Recording is O(1), lock-free not
// required (each worker owns a histogram; merge at the end).
#pragma once

#include <array>
#include <cstring>
#include <vector>

#include "common/types.h"

namespace oaf {

class Histogram {
 public:
  static constexpr int kTiers = 40;        // covers [0, 2^40) ns ≈ 18 minutes
  static constexpr int kSubBuckets = 64;   // ~1.6% relative error

  Histogram() { counts_.fill(0); }

  void record(i64 value) {
    if (value < 0) value = 0;
    counts_[bucket_index(static_cast<u64>(value))]++;
    count_++;
    sum_ += value;
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }

  void merge(const Histogram& other) {
    for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  void reset() {
    counts_.fill(0);
    count_ = 0;
    sum_ = 0;
    min_ = INT64_MAX;
    max_ = INT64_MIN;
  }

  [[nodiscard]] u64 count() const { return count_; }
  [[nodiscard]] i64 sum() const { return sum_; }
  [[nodiscard]] i64 min() const { return count_ ? min_ : 0; }
  [[nodiscard]] i64 max() const { return count_ ? max_ : 0; }
  [[nodiscard]] double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }

  /// Value at quantile q in [0, 1]; returns the representative (upper bound)
  /// of the containing bucket, clamped to the observed max.
  [[nodiscard]] i64 quantile(double q) const;

  /// Legacy alias for quantile().
  [[nodiscard]] i64 percentile(double q) const { return quantile(q); }

  [[nodiscard]] i64 p50() const { return quantile(0.50); }
  [[nodiscard]] i64 p99() const { return quantile(0.99); }
  [[nodiscard]] i64 p999() const { return quantile(0.999); }
  [[nodiscard]] i64 p9999() const { return quantile(0.9999); }

 private:
  static size_t bucket_index(u64 v);
  static u64 bucket_upper_bound(size_t index);

  std::array<u64, static_cast<size_t>(kTiers) * kSubBuckets> counts_{};
  u64 count_ = 0;
  i64 sum_ = 0;
  i64 min_ = INT64_MAX;
  i64 max_ = INT64_MIN;
};

}  // namespace oaf

// Capability-annotated mutex (DESIGN.md §14).
//
// libstdc++'s std::mutex carries no thread-safety attributes, so fields
// declared OAF_GUARDED_BY(a std::mutex) teach the analysis nothing — it
// cannot see std::lock_guard acquire anything. oaf::Mutex is a zero-cost
// wrapper that IS a capability, and oaf::MutexLock is the scoped
// acquisition the analysis tracks. Classes that state locking contracts
// hold an oaf::Mutex and take oaf::MutexLock; everything else may keep
// using std::mutex directly.
#pragma once

#include <mutex>

#include "common/thread_annotations.h"

namespace oaf {

class OAF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() OAF_ACQUIRE() { mu_.lock(); }
  void unlock() OAF_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() OAF_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// std::lock_guard with the scoped-capability annotation the analysis needs.
class OAF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) OAF_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() OAF_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace oaf

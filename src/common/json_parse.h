// Minimal recursive-descent JSON parser.
//
// The repo historically only *wrote* JSON (common/json.h); the observability
// plane needs to read it back — tools/oaf_trace_merge stitches two Chrome
// trace files and tools/bench_compare diffs two bench reports. This parser
// covers exactly RFC 8259 JSON (objects, arrays, strings with escapes,
// numbers, true/false/null) with two deliberate simplifications suited to
// reading our own output: numbers are held as double (all values we emit fit
// in 2^53) and \uXXXX escapes outside ASCII are passed through as '?' rather
// than encoded to UTF-8 (we never emit them).
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace oaf {

class JsonValue {
 public:
  enum class Kind : u8 { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }

  [[nodiscard]] bool as_bool(bool fallback = false) const {
    return kind_ == Kind::kBool ? bool_ : fallback;
  }
  [[nodiscard]] double as_double(double fallback = 0.0) const {
    return kind_ == Kind::kNumber ? num_ : fallback;
  }
  [[nodiscard]] i64 as_i64(i64 fallback = 0) const {
    return kind_ == Kind::kNumber ? static_cast<i64>(num_) : fallback;
  }
  [[nodiscard]] const std::string& as_string() const { return str_; }

  [[nodiscard]] const std::vector<JsonValue>& items() const { return items_; }
  [[nodiscard]] const std::vector<Member>& members() const { return members_; }

  /// Object member lookup; returns a shared null value when absent (chains
  /// safely: v["a"]["b"].as_double()).
  const JsonValue& operator[](std::string_view key) const;
  [[nodiscard]] bool has(std::string_view key) const;

  static JsonValue make_null() { return JsonValue{}; }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double d);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(std::vector<Member> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

/// Parse a complete JSON document. Trailing non-whitespace is an error.
Result<JsonValue> json_parse(std::string_view text);

}  // namespace oaf

// Move-only type-erased callable.
//
// std::function requires its target to be copyable, which forbids lambdas
// that capture a move-only value — in particular an armed af::OnceCallback
// riding inside a posted continuation. Executor::Fn is therefore a
// MoveFunc<void()>: same call through a vtable as std::function, but the
// target is only ever moved, never copied. Anything convertible to
// std::function converts here too (copyable callables are trivially
// movable), so existing post() sites compile unchanged; the one thing that
// stops compiling is copying the task itself, which no executor does.
//
// Deliberately minimal: heap-allocated target (no small-buffer
// optimisation), no target_type/target access, no allocator support. The
// hot paths that care about allocation already pool their continuations;
// everything else was paying std::function's heap cost for any capture
// beyond two words anyway.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace oaf {

template <typename Sig>
class MoveFunc;  // undefined; only the R(Args...) specialisation exists

template <typename R, typename... Args>
class MoveFunc<R(Args...)> {
 public:
  MoveFunc() = default;
  MoveFunc(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, MoveFunc> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  MoveFunc(F&& f)  // NOLINT(google-explicit-constructor)
      : impl_(std::make_unique<Model<D>>(std::forward<F>(f))) {}

  MoveFunc(MoveFunc&&) noexcept = default;
  MoveFunc& operator=(MoveFunc&&) noexcept = default;
  MoveFunc(const MoveFunc&) = delete;
  MoveFunc& operator=(const MoveFunc&) = delete;

  MoveFunc& operator=(std::nullptr_t) {
    impl_.reset();
    return *this;
  }

  [[nodiscard]] explicit operator bool() const { return impl_ != nullptr; }

  R operator()(Args... args) const {
    return impl_->invoke(std::forward<Args>(args)...);
  }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual R invoke(Args&&... args) = 0;
  };

  template <typename F>
  struct Model final : Concept {
    explicit Model(F f) : fn(std::move(f)) {}
    R invoke(Args&&... args) override {
      return fn(std::forward<Args>(args)...);
    }
    F fn;
  };

  std::unique_ptr<Concept> impl_;
};

}  // namespace oaf

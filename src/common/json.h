// Minimal JSON writer used by the telemetry exposition paths (metrics JSON,
// Chrome trace_event export) and the oaf_perf --json report.
//
// Deliberately dependency-free. Emission uses fixed formatting rules so the
// same inputs always produce byte-identical output (the trace golden tests
// rely on this). Reading our own artifacts back (trace merge, bench compare)
// lives in common/json_parse.h.
#pragma once

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace oaf {

/// Append `s` to `out` with JSON string escaping (no surrounding quotes).
inline void json_escape_to(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Streaming JSON builder. Keeps a stack of "first element?" flags so commas
/// are inserted exactly where needed; the caller is responsible for matching
/// begin/end calls and for alternating key()/value() inside objects.
class JsonWriter {
 public:
  JsonWriter& begin_object() {
    comma();
    out_ += '{';
    first_.push_back(true);
    return *this;
  }
  JsonWriter& end_object() {
    out_ += '}';
    first_.pop_back();
    return *this;
  }
  JsonWriter& begin_array() {
    comma();
    out_ += '[';
    first_.push_back(true);
    return *this;
  }
  JsonWriter& end_array() {
    out_ += ']';
    first_.pop_back();
    return *this;
  }

  JsonWriter& key(std::string_view k) {
    comma();
    out_ += '"';
    json_escape_to(out_, k);
    out_ += "\":";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    comma();
    out_ += '"';
    json_escape_to(out_, v);
    out_ += '"';
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) {
    comma();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& value(u64 v) {
    comma();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    out_ += buf;
    return *this;
  }
  JsonWriter& value(i64 v) {
    comma();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    out_ += buf;
    return *this;
  }
  JsonWriter& value(u32 v) { return value(static_cast<u64>(v)); }
  JsonWriter& value(i32 v) { return value(static_cast<i64>(v)); }
  JsonWriter& value(double v) {
    comma();
    if (!std::isfinite(v)) {
      out_ += '0';  // NaN/Inf are not valid JSON; clamp rather than emit
      return *this;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    out_ += buf;
    return *this;
  }

  /// Emit pre-formatted JSON (e.g. a nanosecond timestamp rendered as
  /// microseconds with fixed decimals). The caller guarantees validity.
  JsonWriter& raw(std::string_view v) {
    comma();
    out_ += v;
    return *this;
  }

  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void comma() {
    if (pending_value_) {
      // Value immediately following its key: no comma.
      pending_value_ = false;
      return;
    }
    if (!first_.empty()) {
      if (!first_.back()) out_ += ',';
      first_.back() = false;
    }
  }

  std::string out_;
  std::vector<bool> first_;
  bool pending_value_ = false;
};

}  // namespace oaf

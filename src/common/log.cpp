#include "common/log.h"

#include <cstdarg>
#include <atomic>

namespace oaf {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_message(LogLevel level, const char* file, int line, const std::string& msg) {
  // Strip directories for readability.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s] %s:%d %s\n", level_tag(level), base, line, msg.c_str());
}

namespace detail {
std::string format_log(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}
}  // namespace detail

}  // namespace oaf

#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdlib>
#include <cstring>
#include <string_view>

namespace oaf {

namespace {
int initial_level() {
  const char* env = std::getenv("OAF_LOG");
  return static_cast<int>(env != nullptr ? parse_log_level(env)
                                         : LogLevel::kWarn);
}

std::atomic<int> g_level{initial_level()};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}

TimeNs steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel parse_log_level(const char* s) {
  if (s == nullptr) return LogLevel::kWarn;
  if (std::strcmp(s, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(s, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(s, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(s, "error") == 0) return LogLevel::kError;
  if (std::strcmp(s, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

TimeNs log_uptime_ns() {
  // Epoch is captured on first use; function-local static init is
  // thread-safe, so racing first loggers agree on one epoch.
  static const TimeNs epoch = steady_now_ns();
  const TimeNs now = steady_now_ns();
  return now > epoch ? now - epoch : 0;
}

namespace detail {

std::string log_component(const char* file) {
  static constexpr const char* kRoots[] = {"src/", "tests/", "tools/",
                                           "bench/", "examples/"};
  const std::string_view path(file != nullptr ? file : "");
  for (const char* root : kRoots) {
    const size_t at = path.find(root);
    if (at == std::string_view::npos) continue;
    // Guard against matching mid-segment (e.g. "mysrc/"): require start of
    // path or a preceding '/'.
    if (at != 0 && path[at - 1] != '/') continue;
    const size_t start = at + std::strlen(root);
    const size_t slash = path.find('/', start);
    if (slash == std::string_view::npos) {
      // File directly under the root ("tools/oaf_perf.cpp"): tag by root.
      std::string tag(root);
      tag.pop_back();
      return tag;
    }
    return std::string(path.substr(start, slash - start));
  }
  // No known root: use the immediate parent directory if there is one.
  const size_t last = path.rfind('/');
  if (last == std::string_view::npos || last == 0) return "-";
  const size_t prev = path.rfind('/', last - 1);
  const size_t start = prev == std::string_view::npos ? 0 : prev + 1;
  return std::string(path.substr(start, last - start));
}

std::string format_log_line(TimeNs uptime_ns, LogLevel level, const char* file,
                            int line, const std::string& msg) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  char prefix[128];
  std::snprintf(prefix, sizeof(prefix), "[%6lld.%06lld] [%s] [%s] %s:%d ",
                static_cast<long long>(uptime_ns / 1'000'000'000),
                static_cast<long long>((uptime_ns % 1'000'000'000) / 1000),
                level_tag(level), log_component(file).c_str(), base, line);
  std::string out(prefix);
  out += msg;
  out += '\n';
  return out;
}

}  // namespace detail

void log_message(LogLevel level, const char* file, int line, const std::string& msg) {
  const std::string full =
      detail::format_log_line(log_uptime_ns(), level, file, line, msg);
  // One fwrite per line: stdio streams lock internally, so concurrent
  // writers emit whole lines instead of interleaved fragments.
  std::fwrite(full.data(), 1, full.size(), stderr);
}

namespace detail {
std::string format_log(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}
}  // namespace detail

}  // namespace oaf

#include "common/status.h"

namespace oaf {

std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kProtocolError:
      return "PROTOCOL_ERROR";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kPeerMisbehavior:
      return "PEER_MISBEHAVIOR";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  std::string out{oaf::to_string(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace oaf

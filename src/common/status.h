// Lightweight status / result types.
//
// Error handling in the data path must be allocation-free and branch-cheap,
// so we use a small enum-based Status plus a Result<T> that carries either a
// value or a Status. Exceptions are reserved for unrecoverable setup errors
// (e.g. shm mapping failures during construction).
#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace oaf {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,
  kDataLoss,
  kProtocolError,
  kTimeout,
  kInternal,
  kUnimplemented,
  /// A shared-memory peer violated the slot protocol (impossible state
  /// transition, out-of-range length, stale epoch). The channel can no
  /// longer be trusted; callers demote to TCP rather than touch the bytes.
  kPeerMisbehavior,
};

std::string_view to_string(StatusCode code);

/// A status code plus an optional human-readable message. Cheap to copy when
/// OK (no allocation on the success path).
class Status {
 public:
  Status() = default;
  explicit Status(StatusCode code) : code_(code) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status make_error(StatusCode code, std::string msg = {}) {
  return Status(code, std::move(msg));
}

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(payload_).is_ok() &&
           "Result constructed from OK status without a value");
  }

  [[nodiscard]] bool is_ok() const { return std::holds_alternative<T>(payload_); }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] const T& value() const& {
    assert(is_ok());
    return std::get<T>(payload_);
  }
  [[nodiscard]] T& value() & {
    assert(is_ok());
    return std::get<T>(payload_);
  }
  [[nodiscard]] T&& take() && {
    assert(is_ok());
    return std::get<T>(std::move(payload_));
  }

  [[nodiscard]] Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(payload_);
  }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace oaf

// Clang Thread Safety Analysis macros (DESIGN.md §14).
//
// These wrap clang's capability attributes so the whole repo can state its
// locking and affinity contracts in code: which mutex guards which field,
// which capability a function requires, which types are capabilities. Under
// `clang -Wthread-safety -Wthread-safety-beta` (the CI `static-analysis`
// job) a violated contract is a hard compile error; under gcc — the default
// toolchain here — every macro expands to nothing, so the annotations cost
// zero and gate nothing locally.
//
// Dependency-free by design: no includes, no repo types. Two capability
// kinds use these macros:
//
//   * oaf::Mutex / oaf::MutexLock (common/mutex.h) — a real lock.
//   * af::ExecutorSerial (af/exec_serial.h) — a zero-size capability that
//     models *executor affinity*: "runs on the owning reactor" is treated
//     exactly like "holds the lock", so touching reactor-affine state from
//     a foreign thread fails the build the same way unlocked access does.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define OAF_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define OAF_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op off clang
#endif

/// Marks a class as a capability (lockable / affinity token). `x` is the
/// capability kind shown in diagnostics, e.g. "mutex" or "executor".
#define OAF_CAPABILITY(x) OAF_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability (std::lock_guard shape).
#define OAF_SCOPED_CAPABILITY OAF_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Field is protected by the given capability: reads require the capability
/// shared, writes require it exclusively.
#define OAF_GUARDED_BY(x) OAF_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer field whose *pointee* is protected by the capability.
#define OAF_PT_GUARDED_BY(x) OAF_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Caller must hold the capability (exclusively) before calling.
#define OAF_REQUIRES(...) \
  OAF_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// Caller must hold the capability at least shared before calling.
#define OAF_REQUIRES_SHARED(...) \
  OAF_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define OAF_ACQUIRE(...) \
  OAF_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define OAF_ACQUIRE_SHARED(...) \
  OAF_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability.
#define OAF_RELEASE(...) \
  OAF_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define OAF_RELEASE_SHARED(...) \
  OAF_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

/// Function tries to acquire; first argument is the success return value.
#define OAF_TRY_ACQUIRE(...) \
  OAF_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// Runtime assertion that the capability is held — tells the analysis to
/// assume it from here to end of scope. This is how posted-task bodies
/// declare "I am on the owning executor" (af::ExecutorSerial::assume_held).
#define OAF_ASSERT_CAPABILITY(x) \
  OAF_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// Function returns a reference to the named capability (for accessors
/// like `Mutex& mu()` so callers can lock through the accessor).
#define OAF_RETURN_CAPABILITY(x) OAF_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Capability ordering: this capability must be acquired before `...`.
#define OAF_ACQUIRED_BEFORE(...) \
  OAF_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define OAF_ACQUIRED_AFTER(...) \
  OAF_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// Function body is deliberately exempt from the analysis (trusted code
/// whose locking the analysis cannot follow, e.g. handoff protocols).
#define OAF_NO_THREAD_SAFETY_ANALYSIS \
  OAF_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

/// Function may only run when the capability is NOT held (deadlock guard).
#define OAF_EXCLUDES(...) \
  OAF_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

// Minimal leveled logger. The data path never logs; logging exists for
// connection lifecycle events and bench harness diagnostics, so a simple
// stderr sink behind a global level is sufficient and dependency-free.
#pragma once

#include <cstdio>
#include <string>

namespace oaf {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

void log_message(LogLevel level, const char* file, int line, const std::string& msg);

namespace detail {
std::string format_log(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
}  // namespace detail

#define OAF_LOG(level, ...)                                                \
  do {                                                                     \
    if (static_cast<int>(level) >= static_cast<int>(::oaf::log_level())) { \
      ::oaf::log_message(level, __FILE__, __LINE__,                        \
                         ::oaf::detail::format_log(__VA_ARGS__));          \
    }                                                                      \
  } while (0)

#define OAF_DEBUG(...) OAF_LOG(::oaf::LogLevel::kDebug, __VA_ARGS__)
#define OAF_INFO(...) OAF_LOG(::oaf::LogLevel::kInfo, __VA_ARGS__)
#define OAF_WARN(...) OAF_LOG(::oaf::LogLevel::kWarn, __VA_ARGS__)
#define OAF_ERROR(...) OAF_LOG(::oaf::LogLevel::kError, __VA_ARGS__)

}  // namespace oaf

// Minimal leveled logger. The data path never logs; logging exists for
// connection lifecycle events and bench harness diagnostics, so a simple
// stderr sink behind a global level is sufficient and dependency-free.
//
// Lines carry a monotonic timestamp (seconds since process start) and a
// component tag derived from the source path, and each line is emitted with
// a single fwrite so concurrent writers (initiator reactor + target reactor
// in one test process) never interleave mid-line.
#pragma once

#include <cstdio>
#include <string>

#include "common/types.h"

namespace oaf {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

/// Parse "debug" / "info" / "warn" / "error" / "off" (case-sensitive).
/// Unknown strings return kWarn, the default level. The OAF_LOG environment
/// variable, read on first use, overrides the default in the tools.
LogLevel parse_log_level(const char* s);

void log_message(LogLevel level, const char* file, int line, const std::string& msg);

/// Monotonic nanoseconds since the first logging call of the process.
TimeNs log_uptime_ns();

namespace detail {
std::string format_log(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Component tag for a source path: the directory segment after a known root
/// ("src/", "tests/", "tools/", "bench/", "examples/"), else the file's own
/// directory, else "-". E.g. ".../src/nvmf/initiator.cpp" -> "nvmf".
std::string log_component(const char* file);

/// Render one complete log line (with trailing newline) exactly as
/// log_message() writes it. Exposed for tests.
std::string format_log_line(TimeNs uptime_ns, LogLevel level, const char* file,
                            int line, const std::string& msg);
}  // namespace detail

#define OAF_LOG(level, ...)                                                \
  do {                                                                     \
    if (static_cast<int>(level) >= static_cast<int>(::oaf::log_level())) { \
      ::oaf::log_message(level, __FILE__, __LINE__,                        \
                         ::oaf::detail::format_log(__VA_ARGS__));          \
    }                                                                      \
  } while (0)

#define OAF_DEBUG(...) OAF_LOG(::oaf::LogLevel::kDebug, __VA_ARGS__)
#define OAF_INFO(...) OAF_LOG(::oaf::LogLevel::kInfo, __VA_ARGS__)
#define OAF_WARN(...) OAF_LOG(::oaf::LogLevel::kWarn, __VA_ARGS__)
#define OAF_ERROR(...) OAF_LOG(::oaf::LogLevel::kError, __VA_ARGS__)

}  // namespace oaf

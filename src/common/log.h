// Minimal leveled logger. The data path never logs; logging exists for
// connection lifecycle events and bench harness diagnostics, so a simple
// stderr sink behind a global level is sufficient and dependency-free.
//
// Lines carry a monotonic timestamp (seconds since process start) and a
// component tag derived from the source path, and each line is emitted with
// a single fwrite so concurrent writers (initiator reactor + target reactor
// in one test process) never interleave mid-line.
#pragma once

#include <cstdio>
#include <mutex>
#include <string>

#include "common/mutex.h"
#include "common/types.h"

namespace oaf {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

/// Parse "debug" / "info" / "warn" / "error" / "off" (case-sensitive).
/// Unknown strings return kWarn, the default level. The OAF_LOG environment
/// variable, read on first use, overrides the default in the tools.
LogLevel parse_log_level(const char* s);

void log_message(LogLevel level, const char* file, int line, const std::string& msg);

/// Monotonic nanoseconds since the first logging call of the process.
TimeNs log_uptime_ns();

namespace detail {
std::string format_log(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Component tag for a source path: the directory segment after a known root
/// ("src/", "tests/", "tools/", "bench/", "examples/"), else the file's own
/// directory, else "-". E.g. ".../src/nvmf/initiator.cpp" -> "nvmf".
std::string log_component(const char* file);

/// Render one complete log line (with trailing newline) exactly as
/// log_message() writes it. Exposed for tests.
std::string format_log_line(TimeNs uptime_ns, LogLevel level, const char* file,
                            int line, const std::string& msg);

/// Token-bucket suppressor for hot-path warnings (one static instance per
/// OAF_*_RL call site). A misbehaving peer or a digest storm can trip the
/// same warning at queue-depth rates; the bucket lets a burst through, then
/// swallows repeats, and the next allowed line carries a
/// "[suppressed N similar]" trailer so no occurrence goes uncounted.
class LogRateLimiter {
 public:
  explicit constexpr LogRateLimiter(double tokens_per_sec = 10.0,
                                    double burst = 5.0)
      : tokens_(burst), rate_per_ns_(tokens_per_sec / 1e9), burst_(burst) {}

  /// True when this occurrence may log. On true, *suppressed receives the
  /// number of occurrences swallowed since the last allowed one.
  bool allow(TimeNs now, u64* suppressed) {
    MutexLock lk(mu_);
    if (now > last_) {
      tokens_ += static_cast<double>(now - last_) * rate_per_ns_;
      if (tokens_ > burst_) tokens_ = burst_;
      last_ = now;
    }
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      *suppressed = suppressed_;
      suppressed_ = 0;
      return true;
    }
    ++suppressed_;
    return false;
  }

  /// Occurrences currently swallowed and not yet reported in a trailer.
  [[nodiscard]] u64 pending_suppressed() {
    MutexLock lk(mu_);
    return suppressed_;
  }

 private:
  Mutex mu_;
  double tokens_ OAF_GUARDED_BY(mu_);
  double rate_per_ns_;  ///< immutable after construction
  double burst_;        ///< immutable after construction
  TimeNs last_ OAF_GUARDED_BY(mu_) = 0;
  u64 suppressed_ OAF_GUARDED_BY(mu_) = 0;
};
}  // namespace detail

#define OAF_LOG(level, ...)                                                \
  do {                                                                     \
    if (static_cast<int>(level) >= static_cast<int>(::oaf::log_level())) { \
      ::oaf::log_message(level, __FILE__, __LINE__,                        \
                         ::oaf::detail::format_log(__VA_ARGS__));          \
    }                                                                      \
  } while (0)

#define OAF_DEBUG(...) OAF_LOG(::oaf::LogLevel::kDebug, __VA_ARGS__)
#define OAF_INFO(...) OAF_LOG(::oaf::LogLevel::kInfo, __VA_ARGS__)
#define OAF_WARN(...) OAF_LOG(::oaf::LogLevel::kWarn, __VA_ARGS__)
#define OAF_ERROR(...) OAF_LOG(::oaf::LogLevel::kError, __VA_ARGS__)

/// Rate-limited variant for warnings that can fire at queue-depth rates
/// (peer misbehavior, digest storms): per-call-site token bucket, default
/// 10 lines/s with a burst of 5, swallowed repeats reported as a
/// "[suppressed N similar]" trailer on the next allowed line.
#define OAF_LOG_RL(level, ...)                                               \
  do {                                                                       \
    if (static_cast<int>(level) >= static_cast<int>(::oaf::log_level())) {   \
      static ::oaf::detail::LogRateLimiter oaf_rl_state_;                    \
      ::oaf::u64 oaf_rl_suppressed_ = 0;                                     \
      if (oaf_rl_state_.allow(::oaf::log_uptime_ns(), &oaf_rl_suppressed_)) {\
        std::string oaf_rl_msg_ = ::oaf::detail::format_log(__VA_ARGS__);    \
        if (oaf_rl_suppressed_ > 0) {                                        \
          oaf_rl_msg_ += " [suppressed " +                                   \
                         std::to_string(oaf_rl_suppressed_) + " similar]";   \
        }                                                                    \
        ::oaf::log_message(level, __FILE__, __LINE__, oaf_rl_msg_);          \
      }                                                                      \
    }                                                                        \
  } while (0)

#define OAF_WARN_RL(...) OAF_LOG_RL(::oaf::LogLevel::kWarn, __VA_ARGS__)

}  // namespace oaf

// Execution-context abstraction shared by the functional (threaded) and
// timing (discrete-event) planes.
//
// Protocol engines (Connection Manager, NVMe-oF target/initiator, AF
// endpoint) are written as single-threaded state machines driven by an
// Executor: they post continuations, arm timers, and read the clock, never
// touching std::thread or the simulation scheduler directly. The same engine
// object therefore runs unchanged on a real reactor thread in tests and on
// the virtual-time scheduler in the figure benches.
#pragma once

#include "common/function.h"
#include "common/types.h"

namespace oaf {

class Executor {
 public:
  /// Move-only: a posted task may carry move-only state (an armed
  /// af::OnceCallback, a unique_ptr) and is guaranteed to run — or be
  /// destroyed — exactly once, never duplicated by a copy.
  using Fn = MoveFunc<void()>;

  virtual ~Executor() = default;

  /// Run `fn` as soon as possible, after the current event completes.
  virtual void post(Fn fn) = 0;

  /// Run `fn` after `delay` nanoseconds of (virtual or real) time.
  virtual void schedule_after(DurNs delay, Fn fn) = 0;

  /// Current time on this executor's clock (ns since its epoch).
  [[nodiscard]] virtual TimeNs now() const = 0;
};

}  // namespace oaf

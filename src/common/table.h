// ASCII table printer for the benchmark harness. Each figure bench prints
// one or more of these tables with the same rows/series the paper reports.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace oaf {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& header(std::vector<std::string> cols) {
    header_ = std::move(cols);
    return *this;
  }

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  // Accessors for machine-readable export (bench/bench_report.h walks the
  // cells a bench printed and emits them as the oaf-bench-v1 document).
  [[nodiscard]] const std::string& title() const { return title_; }
  [[nodiscard]] const std::vector<std::string>& header_row() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& data_rows() const {
    return rows_;
  }

  /// Format helper: fixed-point double with `prec` digits.
  static std::string num(double v, int prec = 1) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<size_t> widths(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& r : rows_) {
      for (size_t c = 0; c < r.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], r[c].size());
      }
    }
    os << "\n== " << title_ << " ==\n";
    print_row(os, header_, widths);
    std::string sep;
    for (size_t c = 0; c < widths.size(); ++c) {
      sep += std::string(widths[c] + 2, '-');
      if (c + 1 < widths.size()) sep += "+";
    }
    os << sep << "\n";
    for (const auto& r : rows_) print_row(os, r, widths);
    os.flush();
  }

 private:
  static void print_row(std::ostream& os, const std::vector<std::string>& cells,
                        const std::vector<size_t>& widths) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << " " << std::setw(static_cast<int>(widths[c])) << std::left << cell << " ";
      if (c + 1 < widths.size()) os << "|";
    }
    os << "\n";
  }

  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace oaf

#include "common/histogram.h"

#include <bit>

namespace oaf {

size_t Histogram::bucket_index(u64 v) {
  // Tier 0 holds [0, kSubBuckets) linearly; tier t >= 1 holds
  // [kSubBuckets*2^(t-1), kSubBuckets*2^t) with kSubBuckets linear buckets.
  if (v < kSubBuckets) return static_cast<size_t>(v);
  const int msb = 63 - std::countl_zero(v);
  int tier = msb - 5;  // log2(kSubBuckets) == 6, first scaled tier starts at 2^6
  if (tier >= kTiers) tier = kTiers - 1;
  const u64 tier_base = u64{kSubBuckets} << (tier - 1);
  const u64 scale = tier_base / kSubBuckets;  // width of one sub-bucket
  u64 sub = (v - tier_base) / scale;
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return static_cast<size_t>(tier) * kSubBuckets + static_cast<size_t>(sub);
}

u64 Histogram::bucket_upper_bound(size_t index) {
  const size_t tier = index / kSubBuckets;
  const size_t sub = index % kSubBuckets;
  if (tier == 0) return sub;  // exact for tier 0
  const u64 tier_base = u64{kSubBuckets} << (tier - 1);
  const u64 scale = tier_base / kSubBuckets;
  return tier_base + (sub + 1) * scale - 1;
}

i64 Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample (1-based, ceil to match "q of samples <= x").
  u64 target = static_cast<u64>(q * static_cast<double>(count_));
  if (target == 0) target = 1;
  if (target > count_) target = count_;
  u64 running = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    running += counts_[i];
    if (running >= target) {
      const u64 rep = bucket_upper_bound(i);
      return rep > static_cast<u64>(max_) ? max_ : static_cast<i64>(rep);
    }
  }
  return max_;
}

}  // namespace oaf

// Aggregate statistics used by the benchmark harness and latency-breakdown
// accounting (paper Figures 3 and 12 split end-to-end latency into
// "I/O time" on the SSD, "communication time" on the fabric, and "other"
// client/target preparation & processing time).
#pragma once

#include <string>

#include "common/histogram.h"
#include "common/types.h"
#include "common/units.h"

namespace oaf {

/// Per-request latency decomposition (all nanoseconds).
struct LatencyParts {
  DurNs io = 0;     ///< time the request spent executing on the NVMe device
  DurNs comm = 0;   ///< time in transit on the fabric (wire + stack + notify)
  DurNs other = 0;  ///< preparation/processing at client and target

  [[nodiscard]] DurNs total() const { return io + comm + other; }

  LatencyParts& operator+=(const LatencyParts& o) {
    io += o.io;
    comm += o.comm;
    other += o.other;
    return *this;
  }
};

/// Accumulates latency decompositions over many requests.
class BreakdownStats {
 public:
  void record(const LatencyParts& parts) {
    sum_ += parts;
    count_++;
  }

  [[nodiscard]] u64 count() const { return count_; }
  [[nodiscard]] LatencyParts mean() const {
    if (count_ == 0) return {};
    // Round half up: with millions of I/Os a small-but-nonzero part (e.g. a
    // few hundred ns of "other" summed over 10M ops) must not truncate to 0.
    const auto div = [this](DurNs sum) -> DurNs {
      const i64 n = static_cast<i64>(count_);
      return (sum + n / 2) / n;
    };
    return {div(sum_.io), div(sum_.comm), div(sum_.other)};
  }

  void merge(const BreakdownStats& o) {
    sum_ += o.sum_;
    count_ += o.count_;
  }

  void reset() {
    sum_ = {};
    count_ = 0;
  }

 private:
  LatencyParts sum_;
  u64 count_ = 0;
};

/// Throughput + latency summary for one workload run.
struct RunStats {
  u64 ios_completed = 0;
  u64 bytes_moved = 0;
  u64 failures = 0;  ///< I/Os that completed with an error status
  DurNs elapsed = 0;
  Histogram latency;            ///< end-to-end per-I/O latency, ns
  BreakdownStats breakdown;     ///< io/comm/other decomposition

  [[nodiscard]] double bandwidth_mib_s() const {
    return mib_per_sec(bytes_moved, elapsed);
  }
  [[nodiscard]] double iops() const {
    if (elapsed <= 0) return 0.0;
    return static_cast<double>(ios_completed) /
           (static_cast<double>(elapsed) / 1e9);
  }
  [[nodiscard]] double avg_latency_us() const {
    return ns_to_us(static_cast<DurNs>(latency.mean()));
  }

  void merge(const RunStats& o) {
    ios_completed += o.ios_completed;
    bytes_moved += o.bytes_moved;
    failures += o.failures;
    if (o.elapsed > elapsed) elapsed = o.elapsed;
    latency.merge(o.latency);
    breakdown.merge(o.breakdown);
  }
};

/// Running scalar statistics (Welford) for property tests and calibration.
class RunningStat {
 public:
  void add(double x) {
    n_++;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }
  [[nodiscard]] u64 count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  u64 n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace oaf

// Fundamental integer/byte/time aliases used across the NVMe-oAF codebase.
//
// The timing plane runs on a virtual clock; the functional plane runs on the
// steady clock. Both use the same representation: signed nanoseconds since an
// arbitrary epoch, which keeps arithmetic on durations trivial and avoids
// mixing chrono types across the simulation boundary.
#pragma once

#include <cstddef>
#include <cstdint>

namespace oaf {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Virtual or real time point, in nanoseconds since an arbitrary epoch.
using TimeNs = i64;
/// Duration in nanoseconds.
using DurNs = i64;

inline constexpr TimeNs kTimeNever = INT64_MAX;

}  // namespace oaf

// Atomics policy: the seam that lets the lock-free structures (shm rings,
// telemetry) compile against either real std::atomic (production) or the
// instrumented chk::* wrappers of the deterministic model checker (src/chk).
//
// A policy provides:
//   - atomic<T>  : std::atomic-compatible wrapper for cross-thread words;
//   - var<T>     : a non-atomic value whose accesses the checker's race
//                  detector tracks (plain T in production);
//   - mutex      : BasicLockable used on registration slow paths;
//   - fence(mo)  : std::atomic_thread_fence equivalent;
//   - torn_copy / torn_read : a struct copy that the checker performs
//                  word-by-word with interleaving points, so seqlock-style
//                  validation logic can be model-checked against genuinely
//                  torn payloads (plain assignment in production);
//   - kChecked   : false for production, true under the checker. Layout
//                  static_asserts on shared-memory structs are gated on it,
//                  because chk::atomic is wider than the word it models.
//
// Production code uses the StdAtomicsPolicy alias defaults, so nothing
// outside tests/chk ever names a policy explicitly and the production types
// (shm::DoubleBufferRing, shm::SpscQueue, telemetry::TraceRecorder, ...)
// are byte-for-byte what they were before the templatization.
#pragma once

#include <atomic>

#include "common/mutex.h"

namespace oaf {

struct StdAtomicsPolicy {
  static constexpr bool kChecked = false;

  template <typename T>
  using atomic = std::atomic<T>;

  /// Plain value: reads/writes compile to ordinary loads/stores.
  template <typename T>
  using var = T;

  /// Capability-annotated (common/mutex.h) so fields in policy-templated
  /// classes can be declared OAF_GUARDED_BY(mu_) and checked under clang
  /// -Wthread-safety. `lock` is the scoped guard the analysis tracks.
  using mutex = oaf::Mutex;
  using lock = oaf::MutexLock;

  static void fence(std::memory_order mo) { std::atomic_thread_fence(mo); }

  /// Copy a trivially-copyable record that a concurrent peer may be
  /// overwriting. Production relies on the surrounding sequence-number
  /// protocol to discard torn results; the checker interleaves mid-copy.
  template <typename T>
  static void torn_copy(T& dst, const T& src) {
    dst = src;
  }
  template <typename T>
  static T torn_read(const T& src) {
    return src;
  }
};

}  // namespace oaf

// Unit helpers: sizes (KiB/MiB/GiB), link rates (Gbps), and time literals.
//
// Link rates in the paper are quoted in Gb/s (decimal) while I/O sizes are
// binary (KiB). Conversions here are explicit so the calibration tables in
// src/bench/calibration.* read exactly like the paper's configuration.
#pragma once

#include "common/types.h"

namespace oaf {

inline constexpr u64 kKiB = 1024;
inline constexpr u64 kMiB = 1024 * kKiB;
inline constexpr u64 kGiB = 1024 * kMiB;

constexpr u64 operator""_KiB(unsigned long long v) { return v * kKiB; }
constexpr u64 operator""_MiB(unsigned long long v) { return v * kMiB; }
constexpr u64 operator""_GiB(unsigned long long v) { return v * kGiB; }

constexpr DurNs operator""_ns(unsigned long long v) { return static_cast<DurNs>(v); }
constexpr DurNs operator""_us(unsigned long long v) { return static_cast<DurNs>(v) * 1000; }
constexpr DurNs operator""_ms(unsigned long long v) { return static_cast<DurNs>(v) * 1000000; }
constexpr DurNs operator""_s(unsigned long long v) { return static_cast<DurNs>(v) * 1000000000; }

/// Bytes per second for a decimal gigabit-per-second link rate.
constexpr double gbps_to_bytes_per_sec(double gbps) { return gbps * 1e9 / 8.0; }

/// Serialization time for `bytes` on a link of `gbps`, in nanoseconds.
constexpr DurNs wire_time_ns(u64 bytes, double gbps) {
  return static_cast<DurNs>(static_cast<double>(bytes) /
                            gbps_to_bytes_per_sec(gbps) * 1e9);
}

/// Time to move `bytes` at a byte-rate of `bytes_per_sec`.
constexpr DurNs transfer_time_ns(u64 bytes, double bytes_per_sec) {
  return static_cast<DurNs>(static_cast<double>(bytes) / bytes_per_sec * 1e9);
}

/// Throughput in MiB/s given bytes moved over a duration.
constexpr double mib_per_sec(u64 bytes, DurNs elapsed) {
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(bytes) / static_cast<double>(kMiB) /
         (static_cast<double>(elapsed) / 1e9);
}

constexpr double ns_to_us(DurNs ns) { return static_cast<double>(ns) / 1e3; }
constexpr double ns_to_ms(DurNs ns) { return static_cast<double>(ns) / 1e6; }

/// Ceiling division, used for chunk counts: ceil(io_size / chunk_size).
constexpr u64 ceil_div(u64 a, u64 b) { return (a + b - 1) / b; }

/// Round `v` up to a multiple of `align` (align must be a power of two).
constexpr u64 align_up(u64 v, u64 align) { return (v + align - 1) & ~(align - 1); }

constexpr bool is_pow2(u64 v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace oaf

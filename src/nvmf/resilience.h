// Connection-resilience policy and counters.
//
// The paper's adaptive fabric assumes a healthy channel; production NVMe-oF
// does not get that luxury. ReconnectPolicy bounds how hard an initiator
// fights to keep an association alive (reconnect attempts, exponential
// backoff with deterministic jitter, per-command replay budget, keep-alive
// cadence), and ResilienceCounters makes every recovery action observable
// so benches and tests can assert "recovered" rather than "didn't crash".
#pragma once

#include "common/types.h"

namespace oaf::nvmf {

/// Governs initiator-side recovery. The default (max_attempts == 0) keeps
/// the legacy behaviour: any transport fault tears the association down and
/// fails everything outstanding.
struct ReconnectPolicy {
  /// Reconnect attempts per outage; 0 disables recovery entirely.
  u32 max_attempts = 0;
  DurNs initial_backoff_ns = 1'000'000;    ///< 1 ms before the first retry
  DurNs max_backoff_ns = 1'000'000'000;    ///< backoff ceiling (1 s)
  double backoff_multiplier = 2.0;
  /// Jitter as a fraction of the backoff, drawn from a deterministic
  /// seeded stream so recovery schedules replay bit-identically.
  double jitter_frac = 0.1;
  u64 jitter_seed = 1;
  /// Replay budget per command across the connection lifetime. A command
  /// that out-lives this many attempts fails with kDataTransferError.
  u32 max_command_retries = 3;
  /// How long a reconnect handshake may wait for ICResp before the attempt
  /// is counted as failed and the next backoff starts.
  DurNs handshake_timeout_ns = 50'000'000;
  /// Keep-alive ping cadence; 0 disables pings (and therefore host-side
  /// dead-peer detection). Timing-plane tests must drive the clock with
  /// run_until() when this is non-zero — the tick re-arms itself.
  DurNs keepalive_interval_ns = 0;
  /// Consecutive unanswered keep-alives before the host declares the peer
  /// dead and starts a reconnect.
  u32 keepalive_miss_limit = 3;
  /// KATO advertised to the target in ICReq; 0 = use the target default.
  u64 kato_ns = 0;

  [[nodiscard]] bool enabled() const { return max_attempts > 0; }
};

/// Command-lifetime escalation ladder: what a per-command deadline expiry
/// does. Disabled by default (abort_budget == 0), which keeps the legacy
/// semantics — a deadline expiry goes straight to connection recovery (or
/// teardown without a ReconnectPolicy). When enabled, the rungs are:
///   deadline expires  -> send an NVMe Abort for the stuck command
///   abort times out   -> retry, up to abort_budget aborts per command;
///                        after demote_after_failed_aborts consecutive
///                        failures on a shm data path, demote_shm()
///   budget exhausted  -> the control path itself is dead: hand off to the
///                        PR-1 reconnect machine (recover()).
struct EscalationPolicy {
  /// Aborts attempted per stuck command before falling back to recovery;
  /// 0 disables the ladder entirely (legacy timeout -> recover()).
  u32 abort_budget = 0;
  /// Deadline for each Abort command itself; 0 = reuse command_timeout_ns.
  DurNs abort_timeout_ns = 0;
  /// Consecutive abort timeouts (across commands) that demote the shm data
  /// path — aborts ride the control channel, so if they fail while shm is
  /// up, the fast path is the prime suspect.
  u32 demote_after_failed_aborts = 2;

  [[nodiscard]] bool enabled() const { return abort_budget > 0; }
};

/// Recovery activity, exported by initiator and target stats and printed by
/// tools/oaf_perf.
struct ResilienceCounters {
  u64 reconnects = 0;          ///< successful re-handshakes
  u64 reconnect_failures = 0;  ///< attempts that never saw ICResp
  u64 commands_retried = 0;    ///< in-flight commands replayed after recovery
  u64 keepalive_sent = 0;
  u64 keepalive_misses = 0;    ///< ticks with the previous ping unanswered
  u64 shm_demotions = 0;       ///< runtime shm -> TCP data-path demotions
  u64 digest_errors = 0;       ///< CRC32C payload mismatches detected
  // Command-lifetime escalation ladder (per-I/O deadlines + NVMe Abort).
  u64 deadlines_expired = 0;   ///< per-command deadline wheel expiries
  u64 aborts_sent = 0;         ///< Abort commands issued
  u64 aborts_succeeded = 0;    ///< Abort responses received in time
  u64 aborts_failed = 0;       ///< Aborts that themselves timed out
  u64 commands_aborted = 0;    ///< victim commands completed as aborted
  u64 peer_misbehavior = 0;    ///< shm protocol violations (fencing hits)
  u64 ana_changes = 0;         ///< ANA state transitions applied (multipath)
  // Overload backpressure (DESIGN.md §12).
  u64 queue_full_received = 0;  ///< kQueueFull completions seen from the target
  u64 queue_full_retries = 0;   ///< of those, replayed after a local backoff
  u64 admission_rejects = 0;    ///< handshakes answered admitted=false
};

}  // namespace oaf::nvmf

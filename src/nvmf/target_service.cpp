#include "nvmf/target_service.h"

#include <algorithm>

#include "common/json.h"
#include "common/log.h"

namespace oaf::nvmf {

ShedPolicy parse_shed_policy(const std::string& name) {
  if (name == "fair") return ShedPolicy::kFair;
  return ShedPolicy::kOldestFirst;
}

NvmfTargetService::NvmfTargetService(Executor& exec, net::Copier& copier,
                                     af::ShmBroker& broker,
                                     ssd::Subsystem& subsystem,
                                     TargetServiceOptions opts)
    : exec_(exec),
      copier_(copier),
      broker_(broker),
      subsystem_(subsystem),
      opts_(std::move(opts)),
      global_staging_(opts_.global_staging_bytes) {
#if OAF_TELEMETRY_COMPILED
  auto& m = telemetry::metrics();
  tel_reaped_ = m.counter("oaf_target_associations_reaped_total",
                          "Associations garbage-collected (closed channel, "
                          "expired keep-alive, or stale name replaced)");
  tel_connects_rejected_ =
      m.counter("oaf_target_connects_rejected_total",
                "Handshakes answered with ICResp admitted=false at the "
                "max-conns admission cap");
  tel_evicted_ = m.counter(
      "oaf_target_connections_evicted_total",
      "Slow-client associations evicted by the stall watermark");
  active_cb_ = m.callback_gauge(
      "oaf_target_associations_active", "Live associations on this target",
      [this]() -> i64 { return static_cast<i64>(assocs_.size()); });
  staging_in_use_cb_ = m.callback_gauge(
      "oaf_target_staging_in_use_bytes",
      "Bytes held against the target-wide staging budget",
      [this]() -> i64 { return static_cast<i64>(global_staging_.in_use()); });
  staging_capacity_cb_ = m.callback_gauge(
      "oaf_target_staging_capacity_bytes",
      "Capacity of the target-wide staging budget (0 = unlimited)",
      [this]() -> i64 {
        return static_cast<i64>(global_staging_.capacity());
      });
#endif
}

NvmfTargetService::~NvmfTargetService() {
  *alive_ = false;
  reaper_epoch_++;
}

NvmfTargetConnection* NvmfTargetService::accept(
    std::unique_ptr<net::MsgChannel> channel, std::string conn_name) {
  // Clear out corpses first: a client reconnecting under its old name needs
  // the stale association gone or the shm provision will collide.
  reap_expired();
  const auto same_name = std::find_if(
      assocs_.begin(), assocs_.end(), [&conn_name](const Assoc& a) {
        return a.conn->connection_name() == conn_name;
      });
  if (same_name != assocs_.end()) {
    OAF_WARN("target service: replacing stale association %s",
             conn_name.c_str());
    reaped_++;
    OAF_TEL(telemetry::bump(tel_reaped_));
    retired_commands_ += same_name->conn->commands_served();
    retired_queue_full_ += same_name->conn->queue_full_rejects();
    retired_shed_ += same_name->conn->commands_shed();
    assocs_.erase(same_name);
  }

  // Connect-time admission: reject-mode associations exist only to deliver
  // the ICResp{admitted=false} and never count toward the cap themselves.
  std::size_t admitted_count = 0;
  for (const auto& a : assocs_) admitted_count += a.reject ? 0 : 1;
  const bool at_cap =
      opts_.max_conns != 0 && admitted_count >= opts_.max_conns;

  Assoc assoc;
  assoc.channel = std::move(channel);
  TargetOptions topts;
  topts.af = opts_.af;
  topts.connection_name = std::move(conn_name);
  topts.default_kato_ns = opts_.default_kato_ns;
  topts.max_inflight_cmds = opts_.max_inflight_cmds;
  topts.max_staging_bytes = opts_.max_staging_bytes;
  topts.global_staging = &global_staging_;
  if (at_cap) {
    OAF_WARN("target service: rejecting %s at max-conns cap (%zu/%u)",
             topts.connection_name.c_str(), admitted_count, opts_.max_conns);
    topts.reject_connect = true;
    topts.reject_reason = "connection limit reached";
    topts.reject_retry_after_ms = opts_.reject_retry_after_ms;
    assoc.reject = true;
    connects_rejected_++;
    OAF_TEL(telemetry::bump(tel_connects_rejected_));
  }
  assoc.conn = std::make_unique<NvmfTargetConnection>(
      exec_, *assoc.channel, copier_, broker_, subsystem_, std::move(topts));
  assocs_.push_back(std::move(assoc));
  return assocs_.back().conn.get();
}

std::size_t NvmfTargetService::reap_expired() {
  const TimeNs now = exec_.now();
  std::size_t reaped = 0;
  for (auto it = assocs_.begin(); it != assocs_.end();) {
    if (it->conn->closed() || it->conn->expired(now)) {
      OAF_INFO("target service: reaping association %s (%s)",
               it->conn->connection_name().c_str(),
               it->conn->closed() ? "closed" : "keep-alive expired");
      retired_commands_ += it->conn->commands_served();
      retired_queue_full_ += it->conn->queue_full_rejects();
      retired_shed_ += it->conn->commands_shed();
      it = assocs_.erase(it);  // ~NvmfTargetConnection revokes its shm
      reaped++;
    } else {
      ++it;
    }
  }
  reaped_ += reaped;
  OAF_TEL(telemetry::bump(tel_reaped_, reaped));
  return reaped;
}

void NvmfTargetService::start_reaper() {
  if (opts_.reaper_interval_ns <= 0) return;
  const u64 epoch = ++reaper_epoch_;
  exec_.schedule_after(opts_.reaper_interval_ns,
                       [this, alive = alive_, epoch] {
                         if (!*alive || epoch != reaper_epoch_) return;
                         reaper_tick();
                       });
}

u32 NvmfTargetService::sweep_orphan_slots() {
  u32 reclaimed = 0;
  for (auto& a : assocs_) {
    reclaimed += a.conn->sweep_orphan_slots(opts_.orphan_slot_timeout_ns);
  }
  if (reclaimed > 0) {
    OAF_WARN("target service: reclaimed %u orphaned shm slot(s)", reclaimed);
  }
  return reclaimed;
}

void NvmfTargetService::overload_tick() {
  const TimeNs now = exec_.now();
  // Slow-client detection: an association whose oldest in-flight command has
  // sat past the stall watermark is holding staging memory hostage — evict
  // it so its budget charges return to the pool.
  if (opts_.stall_timeout_ns > 0) {
    for (auto& a : assocs_) {
      if (a.reject || a.conn->evicted() || a.conn->closed()) continue;
      if (a.conn->oldest_inflight_age(now) > opts_.stall_timeout_ns) {
        evictions_++;
        OAF_TEL(telemetry::bump(tel_evicted_));
        a.conn->evict("stalled past watermark");
      }
    }
  }
  // Shed ladder: while the global staging budget sits above the high
  // watermark, give up admitted commands one at a time (each shed_oldest
  // releases its charge). Guard bounds the loop against a policy that can
  // no longer find a victim.
  if (opts_.shed_watermark > 0.0) {
    u32 guard = 0;
    while (global_staging_.above(opts_.shed_watermark) && guard < 4096) {
      if (!shed_one()) break;
      guard++;
    }
  }
}

bool NvmfTargetService::shed_one() {
  const TimeNs now = exec_.now();
  NvmfTargetConnection* victim = nullptr;
  if (opts_.shed_policy == ShedPolicy::kFair) {
    // Per-connection fair: the association hoarding the most in-flight
    // commands gives one up, spreading the pain toward heavy users.
    u64 most = 0;
    for (auto& a : assocs_) {
      if (a.reject || a.conn->evicted()) continue;
      const u64 n = a.conn->inflight_now();
      if (n > most) {
        most = n;
        victim = a.conn.get();
      }
    }
  } else {
    // Oldest-first: the association holding the globally oldest command
    // sheds it — drops the work least likely to still have a waiter.
    DurNs oldest = 0;
    for (auto& a : assocs_) {
      if (a.reject || a.conn->evicted()) continue;
      const DurNs age = a.conn->oldest_inflight_age(now);
      if (age > oldest) {
        oldest = age;
        victim = a.conn.get();
      }
    }
  }
  return victim != nullptr && victim->shed_oldest();
}

void NvmfTargetService::reaper_tick() {
  reap_expired();
  sweep_orphan_slots();
  overload_tick();
  const u64 epoch = reaper_epoch_;
  exec_.schedule_after(opts_.reaper_interval_ns,
                       [this, alive = alive_, epoch] {
                         if (!*alive || epoch != reaper_epoch_) return;
                         reaper_tick();
                       });
}

std::string NvmfTargetService::conns_json() const {
  const TimeNs now = exec_.now();
  JsonWriter w;
  w.begin_array();
  for (const auto& a : assocs_) {
    const NvmfTargetConnection& c = *a.conn;
    w.begin_object();
    w.key("name").value(c.connection_name());
    w.key("shm_active").value(c.shm_active());
    w.key("closed").value(c.closed());
    w.key("expired").value(c.expired(now));
    w.key("kato_ns").value(static_cast<i64>(c.kato_ns()));
    w.key("silent_ns").value(static_cast<i64>(now - c.last_heard()));
    w.key("commands_served").value(c.commands_served());
    w.key("r2ts_sent").value(c.r2ts_sent());
    w.key("bytes_read").value(c.bytes_read());
    w.key("bytes_written").value(c.bytes_written());
    w.key("keepalives_answered").value(c.keepalives_answered());
    w.key("digest_errors").value(c.digest_errors());
    w.key("shm_demotions").value(c.shm_demotions());
    w.key("aborts_handled").value(c.aborts_handled());
    w.key("commands_aborted").value(c.commands_aborted());
    w.key("orphan_slots_reclaimed").value(c.orphan_slots_reclaimed());
    w.key("peer_misbehavior").value(c.peer_misbehavior());
    w.key("ana").value(pdu::to_string(c.ana_state()));
    w.key("ana_changes").value(c.ana_changes());
    w.key("inflight_now").value(c.inflight_now());
    w.key("staging_bytes").value(c.staging_bytes());
    w.key("queue_full_rejects").value(c.queue_full_rejects());
    w.key("commands_shed").value(c.commands_shed());
    w.key("evicted").value(c.evicted());
    w.end_object();
  }
  w.end_array();
  return w.take();
}

NvmfTargetConnection* NvmfTargetService::find(const std::string& conn_name) {
  for (auto& a : assocs_) {
    if (a.conn->connection_name() == conn_name) return a.conn.get();
  }
  return nullptr;
}

bool NvmfTargetService::set_ana_state(const std::string& conn_name,
                                      pdu::AnaState state,
                                      const std::string& reason) {
  NvmfTargetConnection* conn = find(conn_name);
  if (conn == nullptr) return false;
  conn->set_ana_state(state, reason);
  return true;
}

}  // namespace oaf::nvmf

#include "nvmf/path_group.h"

#include <algorithm>

#include "common/log.h"
#include "telemetry/flight.h"

namespace oaf::nvmf {

void PathGroup::init_telemetry() {
#if OAF_TELEMETRY_COMPILED
  auto& m = telemetry::metrics();
  tel_.track = telemetry::tracer().track("pg:" + opts_.name);
  tel_.failovers = m.counter("oaf_pathgroup_failovers_total",
                             "Eligible paths lost to faults or ANA");
  tel_.redrives = m.counter("oaf_pathgroup_redrives_total",
                            "Commands re-driven onto another path");
  tel_.parked = m.counter("oaf_pathgroup_parked_total",
                          "Submissions that waited for an eligible path");
  tel_.park_overflow =
      m.counter("oaf_pathgroup_park_overflow_total",
                "Submissions failed fast at the max_parked bound");
  tel_.duplicates =
      m.counter("oaf_pathgroup_duplicates_suppressed_total",
                "Late completions fenced by the group sequence map");
#endif
}

PathGroup::PathGroup(Executor& exec, PathGroupOptions opts,
                     std::unique_ptr<PathSelector> selector)
    : exec_(exec), opts_(std::move(opts)), selector_(std::move(selector)) {
  if (!selector_) selector_ = std::make_unique<RoundRobinSelector>();
  init_telemetry();
}

void PathGroup::add_path(std::unique_ptr<NvmfInitiator> path) {
  const u32 index = static_cast<u32>(paths_.size());
  // Contract: the path runs on the group's reactor, so holding the group's
  // serial implies holding the path's. TSA cannot see that aliasing across
  // objects; assert the path's capability explicitly where it is borrowed.
  path->serial().assume_held();
  path->set_event_handler(
      [this, alive = alive_, index](NvmfInitiator::PathEvent e) {
        exec_serial_.assume_held();  // events fire on the shared reactor
        if (*alive) on_path_event(index, e);
      });
  PathSlot slot;
  slot.init = std::move(path);
  paths_.push_back(std::move(slot));
}

void PathGroup::connect(ConnectCb cb) {
  connect_cb_ = std::move(cb);
  // Per-path completion is observed through the kConnected event (which
  // also covers reconnects); the per-call callback has nothing to add.
  for (auto& s : paths_) {
    s.init->serial().assume_held();  // shared reactor (add_path contract)
    s.init->connect([](Status) {});
  }
}

// --------------------------------------------------------------------------
// Eligibility and selection
// --------------------------------------------------------------------------

bool PathGroup::eligible(const PathSlot& s) const {
  s.init->serial().assume_held();  // shared reactor (add_path contract)
  return s.init->connected() && !s.init->reconnecting() && !s.init->dead() &&
         s.init->ana_state() != pdu::AnaState::kInaccessible;
}

bool PathGroup::all_dead() const {
  for (const auto& s : paths_) {
    s.init->serial().assume_held();  // shared reactor (add_path contract)
    if (!s.init->dead()) return false;
  }
  return !paths_.empty();
}

std::vector<PathView> PathGroup::eligible_views() const {
  std::vector<PathView> views;
  bool any_optimized = false;
  for (u32 i = 0; i < paths_.size(); ++i) {
    const PathSlot& s = paths_[i];
    s.init->serial().assume_held();  // shared reactor (add_path contract)
    if (!eligible(s)) continue;
    PathView v;
    v.index = i;
    v.ana = s.init->ana_state();
    v.inflight = s.inflight;
    v.ewma_ns = s.init->latency_ewma_ns();
    v.shm_active = s.init->shm_active();
    any_optimized |= v.ana == pdu::AnaState::kOptimized;
    views.push_back(v);
  }
  // ANA preference tier: while any optimized path is usable, non-optimized
  // paths are held in reserve rather than mixed in.
  if (any_optimized) {
    std::erase_if(views, [](const PathView& v) {
      return v.ana != pdu::AnaState::kOptimized;
    });
  }
  return views;
}

// --------------------------------------------------------------------------
// Submission / failover
// --------------------------------------------------------------------------

void PathGroup::submit(GroupCmd cmd) {
  const u64 gseq = next_gseq_++;
  live_.emplace(gseq, std::move(cmd));
  dispatch(gseq);
}

void PathGroup::dispatch(u64 gseq) {
  const auto it = live_.find(gseq);
  if (it == live_.end()) return;
  const auto views = eligible_views();
  if (views.empty()) {
    if (all_dead()) {
      GroupCmd done = std::move(it->second);
      live_.erase(it);
      ios_completed_++;
      IoResult res;
      res.cpl.status = pdu::NvmeStatus::kDataTransferError;
      if (done.identify_cb) {
        std::move(done.identify_cb)(
            make_error(StatusCode::kUnavailable, "all paths dead"));
      } else if (done.cb) {
        std::move(done.cb)(res);
      }
      return;
    }
    // No path right now, but at least one may come back: wait, in order —
    // unless the parked queue is already at its bound, in which case this
    // submission fails fast with retryable backpressure instead of growing
    // the queue without limit (DESIGN.md §12).
    if (parked_.size() >= opts_.max_parked) {
      GroupCmd done = std::move(it->second);
      live_.erase(it);
      ios_completed_++;
      park_overflows_++;
      OAF_TEL(telemetry::bump(tel_.park_overflow));
      telemetry::flight().note("overload", "park_overflow", gseq, exec_.now());
      OAF_WARN_RL("pathgroup %s: parked queue full (%zu), failing fast",
                  opts_.name.c_str(), parked_.size());
      IoResult res;
      res.cpl.status = pdu::NvmeStatus::kQueueFull;
      if (done.identify_cb) {
        std::move(done.identify_cb)(make_error(StatusCode::kResourceExhausted,
                                               "parked queue full"));
      } else if (done.cb) {
        std::move(done.cb)(res);
      }
      return;
    }
    parked_.push_back(gseq);
    parked_total_++;
    OAF_TEL(telemetry::bump(tel_.parked));
    return;
  }
  const size_t pick = selector_->pick(views) % views.size();
  issue_on_path(gseq, views[pick].index);
}

void PathGroup::issue_on_path(u64 gseq, u32 path_index) {
  GroupCmd& cmd = live_[gseq];
  if (cmd.detour_start != 0) {
    if (cmd.op == GroupCmd::Op::kWrite || cmd.op == GroupCmd::Op::kRead) {
      telemetry::attribution().record_detour(
          cmd.op == GroupCmd::Op::kWrite ? telemetry::OpClass::kWrite
                                         : telemetry::OpClass::kRead,
          exec_.now() - cmd.detour_start, exec_.now());
    }
    cmd.detour_start = 0;
  }
  cmd.path = path_index;
  PathSlot& slot = paths_[path_index];
  slot.inflight++;
  NvmfInitiator& init = *slot.init;
  init.serial().assume_held();  // shared reactor (add_path contract)
  if (cmd.op == GroupCmd::Op::kIdentify) {
    init.identify(cmd.nsid, [this, alive = alive_,
                             gseq](Result<std::pair<u32, u64>> r) {
      exec_serial_.assume_held();  // completions deliver on the reactor
      if (*alive) on_identify_result(gseq, std::move(r));
    });
    return;
  }
  auto cb = [this, alive = alive_, gseq](IoResult res) {
    exec_serial_.assume_held();  // completions deliver on the reactor
    if (*alive) on_io_result(gseq, res);
  };
  switch (cmd.op) {
    case GroupCmd::Op::kWrite:
      init.write(cmd.nsid, cmd.slba, cmd.wdata, std::move(cb));
      break;
    case GroupCmd::Op::kRead:
      init.read(cmd.nsid, cmd.slba, cmd.rdata, std::move(cb));
      break;
    case GroupCmd::Op::kFlush:
      init.flush(cmd.nsid, std::move(cb));
      break;
    case GroupCmd::Op::kIdentify:
      break;  // handled above
  }
}

void PathGroup::finish_path_accounting(const GroupCmd& cmd) {
  PathSlot& slot = paths_[cmd.path];
  if (slot.inflight > 0) slot.inflight--;
  // Failover bookkeeping: once every command that was in flight on a
  // now-ineligible path has resolved (re-driven or delivered), the detour
  // is over.
  if (displaced_ > 0 && !eligible(slot)) {
    displaced_--;
    if (displaced_ == 0) {
      telemetry::flight().note("multipath", "failover_complete",
                               failover_redrives_, exec_.now());
      OAF_TEL(telemetry::tracer().instant(
          tel_.track, "multipath", "failover_complete", failover_redrives_,
          exec_.now(), "redrives", static_cast<i64>(failover_redrives_)));
      failover_redrives_ = 0;
    }
  }
}

void PathGroup::note_redrive(u64 gseq, GroupCmd& cmd) {
  cmd.redrives++;
  cmd.detour_start = exec_.now();
  redrives_++;
  failover_redrives_++;
  OAF_TEL(telemetry::bump(tel_.redrives));
  telemetry::flight().note("multipath", "redrive", gseq, exec_.now());
  OAF_TEL(telemetry::tracer().instant(tel_.track, "multipath", "redrive",
                                      gseq, exec_.now()));
}

void PathGroup::on_io_result(u64 gseq, IoResult res) {
  const auto it = live_.find(gseq);
  if (it == live_.end()) {
    // Exactly-once fence: the command was already delivered (or re-driven
    // and delivered elsewhere); this is a late duplicate from a path that
    // died mid-completion. Count it, never surface it.
    duplicates_suppressed_++;
    OAF_TEL(telemetry::bump(tel_.duplicates));
    return;
  }
  finish_path_accounting(it->second);
  if (!res.ok() && redrivable(res) &&
      it->second.redrives < opts_.redrive_budget) {
    note_redrive(gseq, it->second);
    dispatch(gseq);  // re-selects; parks if no path is up right now
    return;
  }
  GroupCmd done = std::move(it->second);
  live_.erase(it);  // fence BEFORE delivering: a late duplicate finds nothing
  ios_completed_++;
  if (done.identify_cb) {
    std::move(done.identify_cb)(
        make_error(StatusCode::kUnavailable, "identify failed"));
  } else if (done.cb) {
    std::move(done.cb)(res);
  }
}

void PathGroup::on_identify_result(u64 gseq, Result<std::pair<u32, u64>> r) {
  const auto it = live_.find(gseq);
  if (it == live_.end()) {
    duplicates_suppressed_++;
    OAF_TEL(telemetry::bump(tel_.duplicates));
    return;
  }
  finish_path_accounting(it->second);
  if (!r && it->second.redrives < opts_.redrive_budget) {
    note_redrive(gseq, it->second);
    dispatch(gseq);
    return;
  }
  GroupCmd done = std::move(it->second);
  live_.erase(it);
  ios_completed_++;
  if (done.identify_cb) std::move(done.identify_cb)(std::move(r));
}

// --------------------------------------------------------------------------
// Path lifecycle
// --------------------------------------------------------------------------

void PathGroup::on_path_event(u32 path_index, NvmfInitiator::PathEvent e) {
  PathSlot& slot = paths_[path_index];
  const bool now_eligible = eligible(slot);
  if (slot.was_eligible && !now_eligible) {
    failovers_++;
    OAF_TEL(telemetry::bump(tel_.failovers));
    displaced_ += slot.inflight;
    telemetry::flight().note("multipath", "failover_start", slot.inflight,
                             exec_.now());
    OAF_TEL(telemetry::tracer().instant(
        tel_.track, "multipath", "failover_start", path_index, exec_.now(),
        "inflight", static_cast<i64>(slot.inflight)));
    OAF_WARN("pathgroup %s: path %u lost (%u in flight)", opts_.name.c_str(),
             path_index, slot.inflight);
    if (slot.inflight == 0) {
      // Nothing was riding the path; the failover is instantaneous.
      telemetry::flight().note("multipath", "failover_complete", 0,
                               exec_.now());
    }
  }
  slot.was_eligible = now_eligible;

  switch (e) {
    case NvmfInitiator::PathEvent::kConnected:
      if (!connected_once_) {
        connected_once_ = true;
        if (connect_cb_) {
          auto cb = std::move(connect_cb_);
          std::move(cb)(Status::ok());
        }
      }
      drain_parked();
      break;
    case NvmfInitiator::PathEvent::kAnaChanged:
      drain_parked();
      break;
    case NvmfInitiator::PathEvent::kRecovering:
      // Fast failover: when another path can carry the load, don't wait out
      // this path's backoff ladder — abandon its recovery so the harvested
      // commands fail out immediately and get re-driven. Posted because the
      // event fires from inside recover(), which must finish harvesting
      // before the association is torn down under it. With no other path
      // (N == 1, or everything else down) the path keeps its own reconnect
      // machinery — the degenerate single-path behaviour.
      if (!eligible_views().empty()) {
        exec_.post([this, alive = alive_, path_index] {
          exec_serial_.assume_held();
          if (!*alive) return;
          NvmfInitiator& init = *paths_[path_index].init;
          init.serial().assume_held();  // shared reactor
          init.abandon_recovery("multipath failover");
        });
      }
      break;
    case NvmfInitiator::PathEvent::kDead:
      if (all_dead()) fail_all_parked();
      break;
    case NvmfInitiator::PathEvent::kShmDemoted:
      break;  // selectors see shm_active per snapshot; nothing to do now
  }
}

void PathGroup::drain_parked() {
  while (!parked_.empty() && !eligible_views().empty()) {
    const u64 gseq = parked_.front();
    parked_.pop_front();
    dispatch(gseq);
  }
}

void PathGroup::fail_all_parked() {
  while (!parked_.empty()) {
    const u64 gseq = parked_.front();
    parked_.pop_front();
    const auto it = live_.find(gseq);
    if (it == live_.end()) continue;
    GroupCmd done = std::move(it->second);
    live_.erase(it);
    ios_completed_++;
    IoResult res;
    res.cpl.status = pdu::NvmeStatus::kDataTransferError;
    if (done.identify_cb) {
      std::move(done.identify_cb)(
          make_error(StatusCode::kUnavailable, "all paths dead"));
    } else if (done.cb) {
      std::move(done.cb)(res);
    }
  }
}

// --------------------------------------------------------------------------
// IoSession surface
// --------------------------------------------------------------------------

void PathGroup::write(u32 nsid, u64 slba, std::span<const u8> data, IoCb cb) {
  GroupCmd cmd;
  cmd.op = GroupCmd::Op::kWrite;
  cmd.nsid = nsid;
  cmd.slba = slba;
  cmd.wdata = data;
  cmd.cb = std::move(cb);
  submit(std::move(cmd));
}

void PathGroup::read(u32 nsid, u64 slba, std::span<u8> out, IoCb cb) {
  GroupCmd cmd;
  cmd.op = GroupCmd::Op::kRead;
  cmd.nsid = nsid;
  cmd.slba = slba;
  cmd.rdata = out;
  cmd.cb = std::move(cb);
  submit(std::move(cmd));
}

void PathGroup::flush(u32 nsid, IoCb cb) {
  GroupCmd cmd;
  cmd.op = GroupCmd::Op::kFlush;
  cmd.nsid = nsid;
  cmd.cb = std::move(cb);
  submit(std::move(cmd));
}

void PathGroup::identify(u32 nsid, IdentifyCb cb) {
  GroupCmd cmd;
  cmd.op = GroupCmd::Op::kIdentify;
  cmd.nsid = nsid;
  cmd.identify_cb = std::move(cb);
  submit(std::move(cmd));
}

// Zero-copy is single-path only: slot memory dies with its path, so a
// borrowed buffer or view could not survive a failover. With N == 1 the
// calls delegate straight through (the group adds nothing there); with
// N > 1 supports_zero_copy() is false and begin/read refuse.

Result<PathGroup::WriteTicket> PathGroup::zero_copy_write_begin(u64 len) {
  if (!supports_zero_copy()) {
    return make_error(StatusCode::kUnavailable,
                      "zero-copy unavailable on multipath groups");
  }
  paths_[0].init->serial().assume_held();  // shared reactor
  return paths_[0].init->zero_copy_write_begin(len);
}

void PathGroup::zero_copy_write(const WriteTicket& ticket, u32 nsid, u64 slba,
                                u64 len, IoCb cb) {
  paths_[0].init->serial().assume_held();  // shared reactor
  paths_[0].init->zero_copy_write(ticket, nsid, slba, len, std::move(cb));
}

bool PathGroup::congested() const {
  bool any_eligible = false;
  for (const auto& s : paths_) {
    if (!eligible(s)) continue;
    any_eligible = true;
    s.init->serial().assume_held();  // shared reactor (add_path contract)
    if (!s.init->congested()) return false;  // at least one path has room
  }
  return any_eligible;
}

void PathGroup::zero_copy_read(u32 nsid, u64 slba, u64 len, ReadViewCb cb) {
  if (!supports_zero_copy()) {
    IoResult res;
    res.cpl.status = pdu::NvmeStatus::kInternalError;
    std::move(cb)(
        Result<ReadView>(make_error(
            StatusCode::kUnavailable,
            "zero-copy unavailable on multipath groups")),
        res);
    return;
  }
  paths_[0].init->serial().assume_held();  // shared reactor
  paths_[0].init->zero_copy_read(nsid, slba, len, std::move(cb));
}

}  // namespace oaf::nvmf

// Shared trace-span names for the NVMe-oF command lifecycle. The trace
// recorder stores raw pointers, so names must be string literals; using one
// helper on both sides keeps initiator and target spans aligned by name in
// the merged timeline.
#pragma once

#include "pdu/nvme_cmd.h"

namespace oaf::nvmf {

inline const char* op_span_name(pdu::NvmeOpcode op) {
  switch (op) {
    case pdu::NvmeOpcode::kWrite:
      return "write";
    case pdu::NvmeOpcode::kRead:
      return "read";
    case pdu::NvmeOpcode::kFlush:
      return "flush";
    case pdu::NvmeOpcode::kIdentify:
      return "identify";
    case pdu::NvmeOpcode::kAbort:
      return "abort";
  }
  return "admin";
}

}  // namespace oaf::nvmf

// NVMe-oF initiator (the SPDK "perf client" side, paper §4.6).
//
// One initiator drives one queue pair over one control channel. After the
// Connection Manager handshake the initiator adaptively routes each I/O:
// payloads ride the shared-memory double-buffer ring when the AF endpoint is
// connected, inline TCP data PDUs otherwise — the application never sees the
// difference. Command identifiers double as ring-slot indices (cid in
// [0, queue_depth), assigned round-robin), which realizes the paper's
// round-robin slot selection and guarantees a free slot whenever a cid is
// free. Requests beyond the queue depth are queued internally.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "af/busy_poll.h"
#include "af/config.h"
#include "af/connection_manager.h"
#include "af/endpoint.h"
#include "af/exec_serial.h"
#include "common/rng.h"
#include "common/stats.h"
#include "net/channel.h"
#include "nvmf/deadline_wheel.h"
#include "nvmf/io_session.h"
#include "nvmf/resilience.h"
#include "telemetry/anomaly.h"
#include "telemetry/attribution.h"
#include "telemetry/clock_sync.h"
#include "telemetry/telemetry.h"

namespace oaf::nvmf {

struct InitiatorOptions {
  af::AfConfig af;
  u32 queue_depth = 128;
  std::string connection_name = "conn0";
  /// Per-command timeout; 0 disables. On expiry the escalation ladder runs
  /// (abort -> demote -> recover) when `escalation` is enabled; otherwise
  /// the connection is torn down (or, with a ReconnectPolicy, recovered)
  /// and commands that cannot be replayed complete with kDataTransferError.
  DurNs command_timeout_ns = 0;
  /// Recovery behaviour; disabled by default (legacy teardown semantics).
  /// Reconnection additionally requires the ChannelFactory constructor.
  ReconnectPolicy reconnect;
  /// Per-command escalation on deadline expiry; disabled by default (a
  /// deadline then goes straight to recover(), the PR-1 behaviour).
  EscalationPolicy escalation;
};

/// One queue pair over one control channel. The application-facing types
/// (IoResult, ReadView, WriteTicket) live in IoSession; `NvmfInitiator::X`
/// keeps resolving to them through the base class.
class NvmfInitiator : public IoSession {
 public:
  /// Produces a fresh control channel to the target; called once per
  /// connection attempt (initial connect and every reconnect).
  using ChannelFactory = std::function<std::unique_ptr<net::MsgChannel>()>;

  /// Legacy constructor: the caller owns the channel. Reconnection is
  /// unavailable — a transport fault tears the association down.
  NvmfInitiator(Executor& exec, net::MsgChannel& control, net::Copier& copier,
                af::ShmBroker& broker, InitiatorOptions opts);

  /// Resilient constructor: the initiator dials through `factory` and can
  /// re-dial after a fault, replaying queued and safely-retryable in-flight
  /// commands under opts.reconnect.
  NvmfInitiator(Executor& exec, ChannelFactory factory, net::Copier& copier,
                af::ShmBroker& broker, InitiatorOptions opts);

  ~NvmfInitiator() override {
    *alive_ = false;
    // Hang up so the target can reap this association (and free its slot
    // under the connect admission cap) instead of waiting out the KATO.
    if (control_ != nullptr) control_->close();
    // Teardown discard: the application destroyed the session with work
    // still in flight, abandoning those completions — the one place an
    // armed OnceCallback may be dropped rather than invoked.
    discard_completions(connect_cb_);
    for (Pending& p : inflight_) discard_pending(p);
    for (Pending& p : waiting_) discard_pending(p);
    for (Pending& p : replay_) discard_pending(p);
  }

  /// Run the ICReq/ICResp handshake; cb(ok) once the fabric is established
  /// (shm granted or TCP-only fallback — both are success).
  void connect(ConnectCb cb) OAF_REQUIRES(exec_serial_);

  [[nodiscard]] bool connected() const OAF_REQUIRES_SHARED(exec_serial_) {
    return connected_;
  }
  [[nodiscard]] bool shm_active() const { return ep_.shm_ready(); }
  [[nodiscard]] const std::string& connection_name() const {
    return opts_.connection_name;
  }
  [[nodiscard]] const af::AfConfig& config() const { return opts_.af; }
  [[nodiscard]] af::AfEndpoint& endpoint() { return ep_; }
  [[nodiscard]] af::BusyPollGovernor& governor() { return governor_; }
  [[nodiscard]] Executor& executor() { return exec_; }
  /// The executor-affinity capability guarding this engine's state
  /// (af/exec_serial.h). External drivers that own the reactor call
  /// `serial().assume_held()` once at the top of the driving scope.
  [[nodiscard]] const af::ExecutorSerial& serial() const
      OAF_RETURN_CAPABILITY(exec_serial_) {
    return exec_serial_;
  }

  // --- data-path API -------------------------------------------------------

  /// Staged write: `data` is copied to the fabric (shm slot or inline PDU).
  /// Must stay alive until the callback fires.
  void write(u32 nsid, u64 slba, std::span<const u8> data, IoCb cb) override
      OAF_REQUIRES(exec_serial_);

  /// Staged read into `out` (sized to the full transfer length).
  void read(u32 nsid, u64 slba, std::span<u8> out, IoCb cb) override
      OAF_REQUIRES(exec_serial_);

  void flush(u32 nsid, IoCb cb) override OAF_REQUIRES(exec_serial_);

  /// Identify namespace: cb receives (block_size, num_blocks) on success.
  void identify(u32 nsid, IdentifyCb cb) override OAF_REQUIRES(exec_serial_);

  // --- zero-copy API (paper §4.4.3; requires shm) ---------------------------

  /// True when zero-copy buffers are available on this connection. Consults
  /// the endpoint's *effective* config (encryption demotes zero-copy).
  [[nodiscard]] bool supports_zero_copy() const override {
    return ep_.shm_ready() && ep_.config().zero_copy;
  }

  /// Borrow a write buffer created directly in shared memory. Fill it, then
  /// call zero_copy_write(). The buffer belongs to the connection; at most
  /// queue_depth tickets may be outstanding.
  Result<WriteTicket> zero_copy_write_begin(u64 len) override
      OAF_REQUIRES(exec_serial_);

  /// Submit the write for a ticket from zero_copy_write_begin. `len` bytes
  /// of the ticket buffer are sent with no client-side copy.
  void zero_copy_write(const WriteTicket& ticket, u32 nsid, u64 slba, u64 len,
                       IoCb cb) override OAF_REQUIRES(exec_serial_);

  /// Zero-copy read: the completion hands back a view of the shm slot.
  void zero_copy_read(u32 nsid, u64 slba, u64 len, ReadViewCb cb) override
      OAF_REQUIRES(exec_serial_);

  // --- resilience ----------------------------------------------------------

  /// Demote the data path from shm to optimized TCP at run time without
  /// aborting in-flight I/O. The target is notified via a ShmDemote PDU and
  /// stops staging new payloads in slots; transfers already parked in slots
  /// drain normally. No-op when shm is not active.
  void demote_shm(const std::string& reason) OAF_REQUIRES(exec_serial_);

  /// Force recovery as if a transport fault had been detected (testing and
  /// external health monitors). With reconnection disabled this tears the
  /// association down.
  void force_recover(const char* reason) OAF_REQUIRES(exec_serial_) {
    recover(reason);
  }

  [[nodiscard]] bool reconnecting() const OAF_REQUIRES_SHARED(exec_serial_) {
    return reconnecting_;
  }
  [[nodiscard]] const ResilienceCounters& resilience() const
      OAF_REQUIRES_SHARED(exec_serial_) {
    return counters_;
  }

  // --- multipath hooks (DESIGN.md §11) --------------------------------------

  /// Lifecycle notifications a PathGroup subscribes to. Events fire
  /// synchronously from inside the state transition, so a handler must not
  /// re-enter the initiator — post follow-up work to the executor instead.
  enum class PathEvent : u8 {
    kConnected,   ///< handshake done (initial connect or reconnect)
    kRecovering,  ///< transport fault detected; path ineligible from now
    kDead,        ///< torn down for good; in-flight failures follow
    kShmDemoted,  ///< shm lane lost; path now optimized-TCP only
    kAnaChanged,  ///< target advertised a new ANA state
  };
  using PathEventHandler = std::function<void(PathEvent)>;
  void set_event_handler(PathEventHandler h) OAF_REQUIRES(exec_serial_) {
    event_handler_ = std::move(h);
  }

  /// Target-advertised ANA state for this path (AnaLog PDUs, monotonic by
  /// change_seq). A fresh association always restarts optimized.
  [[nodiscard]] pdu::AnaState ana_state() const
      OAF_REQUIRES_SHARED(exec_serial_) {
    return ana_state_;
  }

  /// EWMA of completed-I/O total latency (alpha 1/8); 0 until the first
  /// successful completion. Feeds the latency-aware path selector.
  [[nodiscard]] DurNs latency_ewma_ns() const
      OAF_REQUIRES_SHARED(exec_serial_) {
    return static_cast<DurNs>(latency_ewma_ns_);
  }

  /// Commands occupying cid slots right now (excludes the waiting queue).
  [[nodiscard]] u32 inflight_count() const OAF_REQUIRES_SHARED(exec_serial_) {
    return inflight_count_;
  }

  /// True while this path is backing off from target kQueueFull pushback
  /// (DESIGN.md §12). Drivers should stop issuing new work until it clears;
  /// commands already submitted still complete normally.
  [[nodiscard]] bool congested() const override
      OAF_REQUIRES_SHARED(exec_serial_) {
    return congested_until_ > 0 && exec_.now() < congested_until_;
  }

  /// Multipath escape hatch: give up an in-progress recovery immediately and
  /// fail everything harvested/queued with kDataTransferError so a
  /// surrounding PathGroup can re-drive it on a surviving path instead of
  /// waiting out this path's backoff schedule. No-op unless recovering.
  void abandon_recovery(const char* reason) OAF_REQUIRES(exec_serial_) {
    if (!reconnecting_ || dead_) return;
    abort_connection(reason);
  }

  // --- observability -------------------------------------------------------

  /// True when the target accepted trace-context propagation (ICResp feature
  /// bit): every CapsuleCmd then carries this attempt's trace id so the
  /// target's spans can be stitched under the initiating I/O.
  [[nodiscard]] bool trace_ctx_active() const
      OAF_REQUIRES_SHARED(exec_serial_) {
    return trace_ctx_;
  }

  /// Target-minus-initiator clock-offset estimate, fed by the ICReq/ICResp
  /// exchange and refreshed by every KeepAlive echo.
  [[nodiscard]] const telemetry::ClockSyncEstimator& clock_sync() const {
    return clock_sync_;
  }

  // --- stats ---------------------------------------------------------------
  [[nodiscard]] u64 ios_completed() const OAF_REQUIRES_SHARED(exec_serial_) {
    return ios_completed_;
  }
  [[nodiscard]] u64 control_pdus_sent() const { return control_->pdus_sent(); }
  [[nodiscard]] u64 timeouts() const OAF_REQUIRES_SHARED(exec_serial_) {
    return timeouts_;
  }
  [[nodiscard]] bool dead() const OAF_REQUIRES_SHARED(exec_serial_) {
    return dead_;
  }

 private:
  struct Pending {
    pdu::NvmeCmd cmd;
    u64 data_len = 0;
    // staged paths
    std::span<const u8> wdata;  // write source
    std::span<u8> rdata;        // read sink
    bool zero_copy = false;
    IoCb cb;
    ReadViewCb view_cb;
    IdentifyCb identify_cb;
    std::pair<u32, u64> identify_result{0, 0};
    TimeNs submit_time = 0;    // current attempt's submit time
    TimeNs first_submit = -1;  // first attempt's submit time (spans retries;
                               // -1 = not yet submitted, 0 is a valid time)
    u64 bytes_received = 0;   // TCP read reassembly progress
    u64 generation = 0;       // guards timeout callbacks against cid reuse
    u16 gen = 0;              // wire attempt tag (echoed by the target)
    u32 attempts = 0;         // replays consumed from the retry budget
    u32 abort_attempts = 0;   // aborts consumed from the escalation budget
    telemetry::StageLedger ledger;  // per-stage latency attribution
  };

  /// One outstanding Abort command (its own cid space, kAbortCidBase+).
  struct AbortCtx {
    u16 victim_cid = 0;
    u64 victim_generation = 0;  // victim identity at abort time
    u16 victim_gen = 0;         // victim's wire attempt tag
  };
  static constexpr u16 kAbortCidBase = 0xF000;

  void on_pdu(pdu::Pdu pdu) OAF_REQUIRES(exec_serial_);
  void on_icresp(const pdu::ICResp& resp) OAF_REQUIRES(exec_serial_);
  void on_r2t(const pdu::R2T& r2t) OAF_REQUIRES(exec_serial_);
  void on_c2h(pdu::Pdu pdu) OAF_REQUIRES(exec_serial_);
  void on_resp(const pdu::CapsuleResp& resp) OAF_REQUIRES(exec_serial_);

  void submit_or_queue(Pending pending) OAF_REQUIRES(exec_serial_);
  void start_command(u16 cid) OAF_REQUIRES(exec_serial_);
  void start_write(u16 cid) OAF_REQUIRES(exec_serial_);
  void start_read(u16 cid) OAF_REQUIRES(exec_serial_);
  void send_capsule(u16 cid, bool in_capsule, pdu::DataPlacement placement,
                    std::vector<u8> inline_payload) OAF_REQUIRES(exec_serial_);
  void shm_write_chunk(u16 cid, u16 ttag, u64 offset, u64 end) OAF_REQUIRES(exec_serial_);
  void complete(u16 cid, const pdu::NvmeCpl& cpl, u64 io_ns, u64 target_ns) OAF_REQUIRES(exec_serial_);
  void release_cid(u16 cid) OAF_REQUIRES(exec_serial_);
  void drain_queue() OAF_REQUIRES(exec_serial_);
  void arm_timeout(u16 cid) OAF_REQUIRES(exec_serial_);
  void abort_connection(const char* reason) OAF_REQUIRES(exec_serial_);
  void fail_pending(Pending& p) OAF_REQUIRES(exec_serial_);

  // Escalation ladder (deadline -> abort -> demote -> reconnect).
  void on_deadline(u16 cid, u64 generation) OAF_REQUIRES(exec_serial_);
  void send_abort(u16 victim_cid) OAF_REQUIRES(exec_serial_);
  void on_abort_timeout(u16 abort_cid) OAF_REQUIRES(exec_serial_);
  void on_abort_resp(u16 abort_cid, const pdu::CapsuleResp& resp) OAF_REQUIRES(exec_serial_);
  [[nodiscard]] u16 alloc_abort_cid() OAF_REQUIRES(exec_serial_);
  /// Wheel granularity: a quarter of the shortest configured deadline, so
  /// expiries land at most ~25% late. Arbitrary (unused) when no timeout is
  /// configured — the wheel never ticks without armed entries anyway.
  [[nodiscard]] static DurNs wheel_tick_of(const InitiatorOptions& o) {
    DurNs t = o.command_timeout_ns;
    const DurNs a = o.escalation.abort_timeout_ns;
    if (a > 0 && (t <= 0 || a < t)) t = a;
    if (t <= 0) return 1'000'000;
    const DurNs tick = t / 4;
    return tick > 0 ? tick : 1;
  }
  [[nodiscard]] DurNs abort_deadline_ns() const {
    return opts_.escalation.abort_timeout_ns > 0
               ? opts_.escalation.abort_timeout_ns
               : opts_.command_timeout_ns;
  }
  /// Consume-path failure handling: a kPeerMisbehavior from the ring
  /// demotes the data path immediately (the fencing caught a bad peer).
  void note_shm_consume_failure(const Status& st) OAF_REQUIRES(exec_serial_);

  // Reconnect state machine.
  void recover(const char* reason) OAF_REQUIRES(exec_serial_);
  void schedule_reconnect(u32 attempt) OAF_REQUIRES(exec_serial_);
  void do_reconnect(u32 attempt) OAF_REQUIRES(exec_serial_);
  void send_icreq() OAF_REQUIRES(exec_serial_);
  /// Jittered exponential backoff for `attempt` (1-based) under
  /// opts_.reconnect — shared by the reconnect ladder and kQueueFull
  /// command retries, so both pull from the same deterministic jitter
  /// stream.
  [[nodiscard]] DurNs backoff_for_attempt(u32 attempt) OAF_REQUIRES(exec_serial_);
  [[nodiscard]] bool retryable(const Pending& p) const OAF_REQUIRES(exec_serial_);
  [[nodiscard]] bool stale(u16 pdu_gen, const Pending& p) const {
    return pdu_gen != 0 && p.gen != 0 && pdu_gen != p.gen;
  }

  // Keep-alive.
  void schedule_keepalive() OAF_REQUIRES(exec_serial_);
  void keepalive_tick() OAF_REQUIRES(exec_serial_);

  // Retroactive anomaly capture (DESIGN.md §13). On an SLO breach the
  // capture is claimed immediately but written only once the target's half
  // arrives (AnomalyResp) or the fetch times out — either way exactly one
  // file per claim.
  void maybe_capture_anomaly(const Pending& p, i64 total_ns,
                             telemetry::OpClass op) OAF_REQUIRES(exec_serial_);
  void on_anomaly_resp(pdu::Pdu pdu) OAF_REQUIRES(exec_serial_);
  static constexpr DurNs kAnomalyFetchTimeoutNs = 250'000'000;

  [[nodiscard]] bool cid_free(u16 cid) const OAF_REQUIRES_SHARED(exec_serial_) {
    return !slot_busy_[cid];
  }

  template <typename Cb>
  static void discard_completions(Cb& cb) {
    if (cb) std::move(cb).drop();
  }
  static void discard_pending(Pending& p) {
    discard_completions(p.cb);
    discard_completions(p.view_cb);
    discard_completions(p.identify_cb);
  }

  Executor& exec_;
  /// Executor-affinity capability (af/exec_serial.h): one logical "lock"
  /// standing for "running on this engine's reactor". Every mutable field
  /// below is OAF_GUARDED_BY(exec_serial_); handlers posted to exec_ open
  /// with exec_serial_.assume_held(), so clang -Wthread-safety rejects any
  /// new code path that touches engine state without first landing on the
  /// reactor. Declared before cm_, which borrows it at construction.
  af::ExecutorSerial exec_serial_;
  std::unique_ptr<net::MsgChannel> owned_control_;  // factory-dialed channel
  net::MsgChannel* control_;                        // never null after ctor
  ChannelFactory factory_;
  net::Copier& copier_;
  af::ConnectionManager cm_;
  af::AfEndpoint ep_;
  af::BusyPollGovernor governor_;
  InitiatorOptions opts_;
  Rng jitter_rng_;

  bool connected_ OAF_GUARDED_BY(exec_serial_) = false;
  ConnectCb connect_cb_ OAF_GUARDED_BY(exec_serial_);
  u32 maxh2cdata_ OAF_GUARDED_BY(exec_serial_) = 128 * 1024;
  bool data_digest_ OAF_GUARDED_BY(exec_serial_) =
      false;  // negotiated for this association
  bool trace_ctx_ OAF_GUARDED_BY(exec_serial_) =
      false;  // negotiated trace-context propagation
  telemetry::ClockSyncEstimator clock_sync_;

  std::vector<Pending> inflight_ OAF_GUARDED_BY(exec_serial_);  // by cid
  std::vector<bool> slot_busy_ OAF_GUARDED_BY(exec_serial_);  // cid alloc map
  u16 next_cid_ OAF_GUARDED_BY(exec_serial_) = 0;  // round-robin cursor
  std::deque<Pending> waiting_ OAF_GUARDED_BY(exec_serial_);  // beyond QD
  std::deque<Pending> replay_
      OAF_GUARDED_BY(exec_serial_);  // harvested, awaiting reconnect
  DeadlineWheel wheel_
      OAF_GUARDED_BY(exec_serial_);  // per-command + per-abort deadlines
  std::unordered_map<u16, AbortCtx> aborts_
      OAF_GUARDED_BY(exec_serial_);  // by abort cid
  u16 next_abort_cid_ OAF_GUARDED_BY(exec_serial_) = 0;
  u32 consecutive_abort_failures_ OAF_GUARDED_BY(exec_serial_) = 0;
  u64 next_generation_ OAF_GUARDED_BY(exec_serial_) = 1;
  u16 next_gen_ OAF_GUARDED_BY(exec_serial_) = 1;  // wire tags (0 reserved)
  bool dead_ OAF_GUARDED_BY(exec_serial_) = false;  // torn down for good

  bool reconnecting_ OAF_GUARDED_BY(exec_serial_) = false;
  u32 reconnect_attempt_ OAF_GUARDED_BY(exec_serial_) = 0;  // being dialed
  TimeNs congested_until_
      OAF_GUARDED_BY(exec_serial_) = 0;  // kQueueFull window end; 0 = clear
  PathEventHandler event_handler_ OAF_GUARDED_BY(exec_serial_);
  pdu::AnaState ana_state_ OAF_GUARDED_BY(exec_serial_) =
      pdu::AnaState::kOptimized;
  u64 ana_change_seq_ OAF_GUARDED_BY(exec_serial_) = 0;  // highest applied
  double latency_ewma_ns_
      OAF_GUARDED_BY(exec_serial_) = 0;  // EWMA of ok-completion total_ns
  u32 inflight_count_ OAF_GUARDED_BY(exec_serial_) = 0;  // busy cid slots
  u64 handshake_epoch_
      OAF_GUARDED_BY(exec_serial_) = 0;  // invalidates stale handshake timers
  u64 ka_epoch_
      OAF_GUARDED_BY(exec_serial_) = 0;  // invalidates ka ticks on teardown
  u64 ka_seq_ OAF_GUARDED_BY(exec_serial_) = 0;
  bool ka_outstanding_ OAF_GUARDED_BY(exec_serial_) = false;
  u32 ka_misses_ OAF_GUARDED_BY(exec_serial_) = 0;
  ResilienceCounters counters_ OAF_GUARDED_BY(exec_serial_);
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  u64 ios_completed_ OAF_GUARDED_BY(exec_serial_) = 0;
  u64 timeouts_ OAF_GUARDED_BY(exec_serial_) = 0;

  // In-flight anomaly fetch (at most one; begin_capture rate-limits).
  bool anomaly_fetch_pending_ OAF_GUARDED_BY(exec_serial_) = false;
  u64 anomaly_fetch_epoch_
      OAF_GUARDED_BY(exec_serial_) = 0;  // invalidates fetch-timeout callback
  telemetry::AnomalyContext anomaly_ctx_ OAF_GUARDED_BY(exec_serial_);

  /// Cached process-global telemetry handles (DESIGN.md §9). Counters mirror
  /// `counters_` so the resilience ladder exports uniformly; the trace track
  /// is this connection's initiator lane. All null / zero when telemetry is
  /// compiled out.
  struct Tel {
    u32 track = 0;
    u32 anomaly_track = 0;  ///< lane in the always-on anomaly ring
    telemetry::Counter* ios = nullptr;
    telemetry::HistogramMetric* latency = nullptr;
    telemetry::Counter* reconnects = nullptr;
    telemetry::Counter* reconnect_failures = nullptr;
    telemetry::Counter* retried = nullptr;
    telemetry::Counter* ka_sent = nullptr;
    telemetry::Counter* ka_misses = nullptr;
    telemetry::Counter* digest_errors = nullptr;
    telemetry::Counter* deadlines = nullptr;
    telemetry::Counter* aborts_sent = nullptr;
    telemetry::Counter* aborts_ok = nullptr;
    telemetry::Counter* aborts_failed = nullptr;
    telemetry::Counter* cmds_aborted = nullptr;
    telemetry::Counter* ana_changes = nullptr;
    telemetry::Counter* queue_full = nullptr;
    telemetry::Counter* admission_rejects = nullptr;
  } tel_;
  void init_telemetry() OAF_REQUIRES(exec_serial_);
  void fire_event(PathEvent e) OAF_REQUIRES(exec_serial_) {
    if (event_handler_) event_handler_(e);
  }
  /// End the active trace span for an in-flight command (by its generation).
  void trace_end_span(const Pending& p) OAF_REQUIRES(exec_serial_);
};

}  // namespace oaf::nvmf

// NVMe-oF initiator (the SPDK "perf client" side, paper §4.6).
//
// One initiator drives one queue pair over one control channel. After the
// Connection Manager handshake the initiator adaptively routes each I/O:
// payloads ride the shared-memory double-buffer ring when the AF endpoint is
// connected, inline TCP data PDUs otherwise — the application never sees the
// difference. Command identifiers double as ring-slot indices (cid in
// [0, queue_depth), assigned round-robin), which realizes the paper's
// round-robin slot selection and guarantees a free slot whenever a cid is
// free. Requests beyond the queue depth are queued internally.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "af/busy_poll.h"
#include "af/config.h"
#include "af/connection_manager.h"
#include "af/endpoint.h"
#include "common/stats.h"
#include "net/channel.h"

namespace oaf::nvmf {

struct InitiatorOptions {
  af::AfConfig af;
  u32 queue_depth = 128;
  std::string connection_name = "conn0";
  /// Per-command timeout; 0 disables. On expiry the connection is torn
  /// down and every outstanding command completes with kDataTransferError
  /// (mirroring NVMe-oF's controller-level error recovery — a lost PDU
  /// cannot be retried safely at this layer).
  DurNs command_timeout_ns = 0;
};

class NvmfInitiator {
 public:
  /// Logical block size all harness namespaces use.
  static constexpr u32 kBlockSize = 512;

  /// Outcome of one I/O as observed by the application.
  struct IoResult {
    pdu::NvmeCpl cpl;
    DurNs total_ns = 0;        ///< submit -> completion
    DurNs io_time_ns = 0;      ///< device residency (target-reported)
    DurNs target_time_ns = 0;  ///< target processing (target-reported)

    [[nodiscard]] bool ok() const { return cpl.ok(); }
    /// Communication component for the paper's breakdown figures.
    [[nodiscard]] DurNs comm_ns() const {
      const DurNs c = total_ns - static_cast<DurNs>(io_time_ns) -
                      static_cast<DurNs>(target_time_ns);
      return c > 0 ? c : 0;
    }
  };
  using IoCb = std::function<void(IoResult)>;

  /// Zero-copy read view: payload lives in the shm slot; call release()
  /// exactly once when done with the data.
  struct ReadView {
    std::span<const u8> data;
    std::function<void()> release;
  };
  using ReadViewCb = std::function<void(Result<ReadView>, IoResult)>;

  NvmfInitiator(Executor& exec, net::MsgChannel& control, net::Copier& copier,
                af::ShmBroker& broker, InitiatorOptions opts);

  /// Run the ICReq/ICResp handshake; cb(ok) once the fabric is established
  /// (shm granted or TCP-only fallback — both are success).
  void connect(std::function<void(Status)> cb);

  [[nodiscard]] bool connected() const { return connected_; }
  [[nodiscard]] bool shm_active() const { return ep_.shm_ready(); }
  [[nodiscard]] const af::AfConfig& config() const { return opts_.af; }
  [[nodiscard]] af::AfEndpoint& endpoint() { return ep_; }
  [[nodiscard]] af::BusyPollGovernor& governor() { return governor_; }
  [[nodiscard]] Executor& executor() { return exec_; }

  // --- data-path API -------------------------------------------------------

  /// Staged write: `data` is copied to the fabric (shm slot or inline PDU).
  /// Must stay alive until the callback fires.
  void write(u32 nsid, u64 slba, std::span<const u8> data, IoCb cb);

  /// Staged read into `out` (sized to the full transfer length).
  void read(u32 nsid, u64 slba, std::span<u8> out, IoCb cb);

  void flush(u32 nsid, IoCb cb);

  /// Identify namespace: cb receives (block_size, num_blocks) on success.
  void identify(u32 nsid, std::function<void(Result<std::pair<u32, u64>>)> cb);

  // --- zero-copy API (paper §4.4.3; requires shm) ---------------------------

  /// True when zero-copy buffers are available on this connection. Consults
  /// the endpoint's *effective* config (encryption demotes zero-copy).
  [[nodiscard]] bool supports_zero_copy() const {
    return ep_.shm_ready() && ep_.config().zero_copy;
  }

  /// Borrow a write buffer created directly in shared memory. Fill it, then
  /// call zero_copy_write(). The buffer belongs to the connection; at most
  /// queue_depth tickets may be outstanding.
  struct WriteTicket {
    u16 cid = 0;
    std::span<u8> buffer;
  };
  Result<WriteTicket> zero_copy_write_begin(u64 len);

  /// Submit the write for a ticket from zero_copy_write_begin. `len` bytes
  /// of the ticket buffer are sent with no client-side copy.
  void zero_copy_write(const WriteTicket& ticket, u32 nsid, u64 slba, u64 len,
                       IoCb cb);

  /// Zero-copy read: the completion hands back a view of the shm slot.
  void zero_copy_read(u32 nsid, u64 slba, u64 len, ReadViewCb cb);

  // --- stats ---------------------------------------------------------------
  [[nodiscard]] u64 ios_completed() const { return ios_completed_; }
  [[nodiscard]] u64 control_pdus_sent() const { return control_.pdus_sent(); }
  [[nodiscard]] u64 timeouts() const { return timeouts_; }
  [[nodiscard]] bool dead() const { return dead_; }

 private:
  struct Pending {
    pdu::NvmeCmd cmd;
    u64 data_len = 0;
    // staged paths
    std::span<const u8> wdata;  // write source
    std::span<u8> rdata;        // read sink
    bool zero_copy = false;
    IoCb cb;
    ReadViewCb view_cb;
    std::function<void(Result<std::pair<u32, u64>>)> identify_cb;
    std::pair<u32, u64> identify_result{0, 0};
    TimeNs submit_time = 0;
    u64 bytes_received = 0;  // TCP read reassembly progress
    u64 generation = 0;      // guards timeout callbacks against cid reuse
  };

  void on_pdu(pdu::Pdu pdu);
  void on_icresp(const pdu::ICResp& resp);
  void on_r2t(const pdu::R2T& r2t);
  void on_c2h(pdu::Pdu pdu);
  void on_resp(const pdu::CapsuleResp& resp);

  void submit_or_queue(Pending pending);
  void start_command(u16 cid);
  void start_write(u16 cid);
  void start_read(u16 cid);
  void send_capsule(u16 cid, bool in_capsule, pdu::DataPlacement placement,
                    std::vector<u8> inline_payload);
  void shm_write_chunk(u16 cid, u16 ttag, u64 offset, u64 end);
  void complete(u16 cid, const pdu::NvmeCpl& cpl, u64 io_ns, u64 target_ns);
  void release_cid(u16 cid);
  void drain_queue();
  void arm_timeout(u16 cid);
  void abort_connection(const char* reason);

  [[nodiscard]] bool cid_free(u16 cid) const { return !slot_busy_[cid]; }

  Executor& exec_;
  net::MsgChannel& control_;
  af::ConnectionManager cm_;
  af::AfEndpoint ep_;
  af::BusyPollGovernor governor_;
  InitiatorOptions opts_;

  bool connected_ = false;
  std::function<void(Status)> connect_cb_;
  u32 maxh2cdata_ = 128 * 1024;

  std::vector<Pending> inflight_;   // indexed by cid
  std::vector<bool> slot_busy_;     // cid allocation map
  u16 next_cid_ = 0;                // round-robin cursor
  std::deque<Pending> waiting_;     // beyond queue depth
  u64 next_generation_ = 1;
  bool dead_ = false;               // connection torn down

  u64 ios_completed_ = 0;
  u64 timeouts_ = 0;
};

}  // namespace oaf::nvmf

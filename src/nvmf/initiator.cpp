#include "nvmf/initiator.h"

#include <cstring>

#include "af/chunker.h"
#include "af/flow_control.h"
#include "common/log.h"
#include "nvmf/trace_names.h"
#include "pdu/crc32.h"
#include "telemetry/flight.h"
#include "telemetry/prof/cost_center.h"

namespace oaf::nvmf {

using pdu::DataPlacement;
using pdu::NvmeOpcode;
using pdu::Pdu;

void NvmfInitiator::init_telemetry() {
#if OAF_TELEMETRY_COMPILED
  auto& m = telemetry::metrics();
  tel_.track = telemetry::tracer().track("init:" + opts_.connection_name);
  tel_.anomaly_track =
      telemetry::anomaly().track("init:" + opts_.connection_name);
  tel_.ios = m.counter("oaf_initiator_ios_completed_total",
                       "I/Os completed by initiators in this process");
  tel_.latency = m.histogram("oaf_initiator_io_latency_ns",
                             "End-to-end per-I/O latency in nanoseconds");
  tel_.reconnects =
      m.counter("oaf_initiator_reconnects_total",
                "Successful association re-establishments");
  tel_.reconnect_failures =
      m.counter("oaf_initiator_reconnect_failures_total",
                "Reconnect dial/handshake attempts that failed");
  tel_.retried = m.counter("oaf_initiator_commands_retried_total",
                           "Commands replayed after faults");
  tel_.ka_sent = m.counter("oaf_initiator_keepalive_sent_total",
                           "Keep-alive PDUs sent");
  tel_.ka_misses = m.counter("oaf_initiator_keepalive_misses_total",
                             "Keep-alive intervals with no peer traffic");
  tel_.digest_errors = m.counter("oaf_initiator_digest_errors_total",
                                 "Data digest mismatches detected");
  tel_.deadlines = m.counter("oaf_initiator_deadlines_expired_total",
                             "Per-command deadlines that expired");
  tel_.aborts_sent =
      m.counter("oaf_initiator_aborts_sent_total", "NVMe Aborts sent");
  tel_.aborts_ok = m.counter("oaf_initiator_aborts_succeeded_total",
                             "NVMe Aborts acknowledged by the target");
  tel_.aborts_failed = m.counter("oaf_initiator_aborts_failed_total",
                                 "NVMe Aborts that timed out");
  tel_.cmds_aborted = m.counter("oaf_initiator_commands_aborted_total",
                                "Commands completed as aborted");
  tel_.ana_changes = m.counter("oaf_initiator_ana_changes_total",
                               "ANA path-state transitions applied");
  tel_.queue_full = m.counter("oaf_initiator_queue_full_total",
                              "kQueueFull backpressure completions received");
  tel_.admission_rejects =
      m.counter("oaf_initiator_admission_rejects_total",
                "Handshakes the target answered with admitted=false");
#endif
}

void NvmfInitiator::trace_end_span(const Pending& p) {
  (void)p;
  OAF_TEL(telemetry::tracer().end(tel_.track, "init_io",
                                  op_span_name(p.cmd.opcode), p.generation,
                                  exec_.now()));
  OAF_TEL(telemetry::anomaly().ring().end(tel_.anomaly_track, "init_io",
                                          op_span_name(p.cmd.opcode),
                                          p.generation, exec_.now()));
}

NvmfInitiator::NvmfInitiator(Executor& exec, net::MsgChannel& control,
                             net::Copier& copier, af::ShmBroker& broker,
                             InitiatorOptions opts)
    : exec_(exec),
      owned_control_(nullptr),
      control_(&control),
      copier_(copier),
      cm_(broker, exec_serial_),
      ep_(af::Role::kClient, exec, copier, opts.af),
      governor_(opts.af.busy_poll, opts.af.static_poll_ns),
      opts_(std::move(opts)),
      jitter_rng_(opts_.reconnect.jitter_seed),
      wheel_(exec, wheel_tick_of(opts_)) {
  // Queue depth cannot exceed the cid space / slot count.
  if (opts_.queue_depth == 0) opts_.queue_depth = 1;
  if (opts_.queue_depth > opts_.af.shm_slots) {
    opts_.queue_depth = opts_.af.shm_slots;
  }
  inflight_.resize(opts_.queue_depth);
  slot_busy_.assign(opts_.queue_depth, false);
  wheel_.set_callback([this](u16 cid, u64 generation) {
    exec_serial_.assume_held();  // wheel ticks run on the reactor
    on_deadline(cid, generation);
  });
  control_->set_handler([this, alive = alive_](Pdu p) {
    exec_serial_.assume_held();  // channel delivers on the reactor
    if (*alive) on_pdu(std::move(p));
  });
  init_telemetry();
}

NvmfInitiator::NvmfInitiator(Executor& exec, ChannelFactory factory,
                             net::Copier& copier, af::ShmBroker& broker,
                             InitiatorOptions opts)
    : exec_(exec),
      owned_control_(factory()),
      control_(owned_control_.get()),
      factory_(std::move(factory)),
      copier_(copier),
      cm_(broker, exec_serial_),
      ep_(af::Role::kClient, exec, copier, opts.af),
      governor_(opts.af.busy_poll, opts.af.static_poll_ns),
      opts_(std::move(opts)),
      jitter_rng_(opts_.reconnect.jitter_seed),
      wheel_(exec, wheel_tick_of(opts_)) {
  if (opts_.queue_depth == 0) opts_.queue_depth = 1;
  if (opts_.queue_depth > opts_.af.shm_slots) {
    opts_.queue_depth = opts_.af.shm_slots;
  }
  inflight_.resize(opts_.queue_depth);
  slot_busy_.assign(opts_.queue_depth, false);
  wheel_.set_callback([this](u16 cid, u64 generation) {
    exec_serial_.assume_held();  // wheel ticks run on the reactor
    on_deadline(cid, generation);
  });
  control_->set_handler([this, alive = alive_](Pdu p) {
    exec_serial_.assume_held();  // channel delivers on the reactor
    if (*alive) on_pdu(std::move(p));
  });
  init_telemetry();
}

void NvmfInitiator::send_icreq() {
  pdu::ICReq req = cm_.make_icreq(opts_.af);
  req.kato_ns = opts_.reconnect.kato_ns;
  req.t_sent_ns = static_cast<u64>(exec_.now());  // NTP t1, echoed in ICResp
  Pdu pdu;
  pdu.header = req;
  control_->send(std::move(pdu));
}

void NvmfInitiator::connect(ConnectCb cb) {
  connect_cb_ = std::move(cb);
  governor_.attach(control_);
  send_icreq();
  schedule_keepalive();
}

void NvmfInitiator::on_pdu(Pdu pdu) {
  ka_outstanding_ = false;  // any traffic proves the peer is alive
  switch (pdu.type()) {
    case pdu::PduType::kICResp:
      on_icresp(*pdu.as<pdu::ICResp>());
      break;
    case pdu::PduType::kR2T:
      on_r2t(*pdu.as<pdu::R2T>());
      break;
    case pdu::PduType::kC2HData:
      on_c2h(std::move(pdu));
      break;
    case pdu::PduType::kCapsuleResp: {
      const auto& resp = *pdu.as<pdu::CapsuleResp>();
      if (resp.cpl.cid < inflight_.size() && slot_busy_[resp.cpl.cid]) {
        Pending& p = inflight_[resp.cpl.cid];
        if (p.cmd.opcode == NvmeOpcode::kIdentify && p.identify_cb &&
            !stale(resp.gen, p)) {
          // Identify carries (block_size, num_blocks) in the payload.
          if (pdu.payload.size() >= 12 && resp.cpl.ok()) {
            u32 bs = 0;
            u64 nb = 0;
            for (int i = 0; i < 4; ++i) bs |= static_cast<u32>(pdu.payload[i]) << (8 * i);
            for (int i = 0; i < 8; ++i) {
              nb |= static_cast<u64>(pdu.payload[4 + i]) << (8 * i);
            }
            p.identify_result = {bs, nb};
          }
        }
      }
      on_resp(resp);
      break;
    }
    case pdu::PduType::kKeepAlive: {
      // Controller echo; the blanket ka_outstanding_ reset above already
      // recorded the liveness proof. The echo doubles as a clock-offset
      // probe: it returns our ping stamp (t1) plus the target clock at the
      // echo (t2 == t3).
      const auto& ka = *pdu.as<pdu::KeepAlive>();
      if (!ka.from_host && ka.echo_t_ns != 0) {
        clock_sync_.add_sample(ka.echo_t_ns, ka.t_sent_ns, ka.t_sent_ns,
                               static_cast<u64>(exec_.now()));
      }
      break;
    }
    case pdu::PduType::kC2HTermReq:
      OAF_WARN("initiator received TermReq: %s",
               pdu.as<pdu::TermReq>()->reason.c_str());
      telemetry::flight().note("resilience", "termreq_received", 0,
                               exec_.now());
      telemetry::flight().dump_now("received TermReq from target");
      control_->close();
      recover("target terminated association");
      break;
    case pdu::PduType::kShmDemote:
      // Target-initiated demotion (its fencing caught a protocol violation):
      // stop producing into the ring; parked transfers drain as usual.
      if (ep_.demote_shm()) {
        counters_.shm_demotions++;
        OAF_TEL(telemetry::tracer().instant(tel_.track, "resilience",
                                            "shm_demote", 0, exec_.now()));
        OAF_WARN("initiator: target demoted shm (%s)",
                 pdu.as<pdu::ShmDemote>()->reason.c_str());
        fire_event(PathEvent::kShmDemoted);
      }
      break;
    case pdu::PduType::kAnomalyResp:
      on_anomaly_resp(std::move(pdu));
      break;
    case pdu::PduType::kAnaLog: {
      // ANA path-state advertisement. change_seq is monotonic per
      // association; a stale or reordered notice must never regress the
      // state a newer one already applied.
      const auto& log = *pdu.as<pdu::AnaLog>();
      if (log.change_seq <= ana_change_seq_) break;
      ana_change_seq_ = log.change_seq;
      if (log.state == ana_state_) break;
      ana_state_ = log.state;
      counters_.ana_changes++;
      OAF_TEL(telemetry::bump(tel_.ana_changes));
      OAF_TEL(telemetry::tracer().instant(tel_.track, "multipath",
                                          "ana_change", log.change_seq,
                                          exec_.now()));
      telemetry::flight().note("multipath", "ana_change", log.change_seq,
                               exec_.now());
      OAF_WARN("initiator %s: ana -> %s (%s)", opts_.connection_name.c_str(),
               pdu::to_string(log.state), log.reason.c_str());
      fire_event(PathEvent::kAnaChanged);
      break;
    }
    default:
      OAF_WARN("initiator: unexpected PDU type %s", pdu::to_string(pdu.type()));
      break;
  }
}

void NvmfInitiator::on_icresp(const pdu::ICResp& resp) {
  handshake_epoch_++;  // cancels any pending handshake timeout
  if (!resp.admitted) {
    // Connect-time admission rejection (DESIGN.md §12): the target is over
    // its connection cap. This is retryable overload, not a fault — back
    // off at least as long as the target's retry-after hint and re-dial.
    counters_.admission_rejects++;
    OAF_TEL(telemetry::bump(tel_.admission_rejects));
    telemetry::flight().note("overload", "admission_rejected", 0, exec_.now());
    OAF_WARN("initiator: connect rejected by target (%s), retry-after %u ms",
             resp.reject_reason.c_str(), resp.retry_after_ms);
    control_->close();
    if (reconnecting_) {
      counters_.reconnect_failures++;
      OAF_TEL(telemetry::bump(tel_.reconnect_failures));
      const u32 next = reconnect_attempt_ + 1;
      if (next > opts_.reconnect.max_attempts) {
        abort_connection("connect admission rejected");
        return;
      }
      DurNs delay = backoff_for_attempt(next);
      const DurNs floor =
          static_cast<DurNs>(resp.retry_after_ms) * 1'000'000;
      if (delay < floor) delay = floor;
      exec_.schedule_after(delay, [this, alive = alive_, next] {
        exec_serial_.assume_held();
        if (!*alive || dead_ || !reconnecting_) return;
        do_reconnect(next);
      });
      return;
    }
    if (opts_.reconnect.enabled() && factory_) {
      // First connect: enter the normal recovery ladder, which re-dials
      // with backoff until the target has room (or attempts run out).
      recover("connect admission rejected");
      return;
    }
    if (connect_cb_) {
      auto cb = std::move(connect_cb_);
      std::move(cb)(
          make_error(StatusCode::kResourceExhausted,
                     "target rejected connection: " + resp.reject_reason));
    }
    abort_connection("connect admission rejected");
    return;
  }
  maxh2cdata_ = resp.maxh2cdata != 0 ? resp.maxh2cdata
                                     : static_cast<u32>(opts_.af.chunk_bytes);
  data_digest_ = resp.data_digest && opts_.af.data_digest;
  trace_ctx_ = resp.trace_ctx && opts_.af.trace_ctx;
  if (trace_ctx_ && resp.echo_t_ns != 0) {
    // NTP sample: t1 = our ICReq stamp (echoed), t2 == t3 = target clock at
    // the ICResp, t4 = now.
    clock_sync_.add_sample(resp.echo_t_ns, resp.t_now_ns, resp.t_now_ns,
                           static_cast<u64>(exec_.now()));
  }
  if (resp.shm_granted) {
    cm_.serial()->assume_held();  // cm_ borrowed this engine's serial
    if (auto st = cm_.complete_client(resp, ep_); !st) {
      OAF_WARN("shm grant could not be honoured, falling back to TCP: %s",
               st.to_string().c_str());
    }
  }
  connected_ = true;
  // A fresh association restarts the ANA ledger: the target re-advertises
  // from seq 1, and until it does the path counts as optimized.
  ana_change_seq_ = 0;
  ana_state_ = pdu::AnaState::kOptimized;
  const bool was_reconnect = reconnecting_;
  reconnecting_ = false;
  if (was_reconnect) {
    counters_.reconnects++;
    OAF_TEL(telemetry::bump(tel_.reconnects));
    OAF_TEL(telemetry::tracer().instant(tel_.track, "resilience",
                                        "reconnected", 0, exec_.now()));
    // Replay harvested in-flight commands first so they re-enter the queue
    // ahead of commands that were still waiting — the original submission
    // order is preserved.
    std::deque<Pending> replay;
    replay.swap(replay_);
    for (auto& p : replay) {
      counters_.commands_retried++;
      OAF_TEL(telemetry::bump(tel_.retried));
      submit_or_queue(std::move(p));
    }
    drain_queue();
  }
  fire_event(PathEvent::kConnected);
  if (connect_cb_) {
    auto cb = std::move(connect_cb_);
    std::move(cb)(Status::ok());
  }
}

// --------------------------------------------------------------------------
// Recovery
// --------------------------------------------------------------------------

bool NvmfInitiator::retryable(const Pending& p) const {
  // Zero-copy commands are bound to slot contents that do not survive a
  // reconnect (the region is renegotiated), and view callbacks may already
  // have leaked a borrowed span. Staged reads, un-acked staged writes,
  // flush, and identify all replay safely: the API contract keeps wdata
  // alive until the completion callback fires.
  return !p.zero_copy && !p.view_cb;
}

void NvmfInitiator::fail_pending(Pending& p) {
  if (p.generation != 0) trace_end_span(p);
  IoResult res;
  res.cpl.status = pdu::NvmeStatus::kDataTransferError;
  if (p.cb) std::move(p.cb)(res);
  if (p.view_cb) {
    std::move(p.view_cb)(
        Result<ReadView>(
            make_error(StatusCode::kUnavailable, "connection aborted")),
        res);
  }
  if (p.identify_cb) {
    std::move(p.identify_cb)(
        make_error(StatusCode::kUnavailable, "connection aborted"));
  }
}

void NvmfInitiator::recover(const char* reason) {
  if (dead_ || reconnecting_) return;
  if (!opts_.reconnect.enabled() || !factory_) {
    abort_connection(reason);
    return;
  }
  OAF_WARN("initiator: recovering connection (%s)", reason);
  OAF_TEL(telemetry::tracer().instant(tel_.track, "resilience", "recover", 0,
                                      exec_.now()));
  telemetry::flight().note("resilience", "recover", 0, exec_.now());
  reconnecting_ = true;
  connected_ = false;
  // Announce before harvesting: a PathGroup must mark this path ineligible
  // ahead of the failure completions the harvest is about to deliver, or it
  // would re-drive them right back onto the faulted path.
  fire_event(PathEvent::kRecovering);
  handshake_epoch_++;
  ka_outstanding_ = false;
  ka_misses_ = 0;
  wheel_.clear();
  aborts_.clear();
  consecutive_abort_failures_ = 0;
  control_->close();
  // Harvest in-flight commands into the replay queue; anything unsafe to
  // replay (or out of budget) fails now, exactly once.
  for (u16 cid = 0; cid < inflight_.size(); ++cid) {
    if (!slot_busy_[cid]) continue;
    Pending p = std::move(inflight_[cid]);
    slot_busy_[cid] = false;
    if (inflight_count_ > 0) inflight_count_--;
    inflight_[cid] = Pending{};
    if (retryable(p) && p.attempts < opts_.reconnect.max_command_retries) {
      // The attempt's span ends here; the replay begins a fresh one.
      trace_end_span(p);
      p.attempts++;
      p.bytes_received = 0;
      // From here until the replay resubmits, the I/O is parked off-path.
      p.ledger.enter(telemetry::Stage::kDetour, exec_.now());
      replay_.push_back(std::move(p));
    } else {
      fail_pending(p);
    }
  }
  // The shm region dies with the association; the reconnect handshake
  // negotiates a fresh one (or falls back to TCP).
  ep_.detach_shm();
  schedule_reconnect(1);
}

DurNs NvmfInitiator::backoff_for_attempt(u32 attempt) {
  DurNs backoff = opts_.reconnect.initial_backoff_ns;
  for (u32 i = 1; i < attempt; ++i) {
    backoff = static_cast<DurNs>(static_cast<double>(backoff) *
                                 opts_.reconnect.backoff_multiplier);
    if (backoff >= opts_.reconnect.max_backoff_ns) break;
  }
  if (backoff > opts_.reconnect.max_backoff_ns) {
    backoff = opts_.reconnect.max_backoff_ns;
  }
  if (opts_.reconnect.jitter_frac > 0.0) {
    const double j =
        opts_.reconnect.jitter_frac * (2.0 * jitter_rng_.next_double() - 1.0);
    backoff += static_cast<DurNs>(static_cast<double>(backoff) * j);
  }
  return backoff < 0 ? 0 : backoff;
}

void NvmfInitiator::schedule_reconnect(u32 attempt) {
  if (attempt > opts_.reconnect.max_attempts) {
    abort_connection("reconnect attempts exhausted");
    return;
  }
  const DurNs backoff = backoff_for_attempt(attempt);
  exec_.schedule_after(backoff, [this, alive = alive_, attempt] {
    exec_serial_.assume_held();
    if (!*alive || dead_ || !reconnecting_) return;
    do_reconnect(attempt);
  });
}

void NvmfInitiator::do_reconnect(u32 attempt) {
  reconnect_attempt_ = attempt;
  auto fresh = factory_();
  if (!fresh) {
    // Dial failed (e.g. the target is still down); burn the attempt and
    // back off again. The previous channel stays in place so control_
    // remains valid.
    counters_.reconnect_failures++;
    OAF_TEL(telemetry::bump(tel_.reconnect_failures));
    schedule_reconnect(attempt + 1);
    return;
  }
  owned_control_ = std::move(fresh);
  control_ = owned_control_.get();
  control_->set_handler([this, alive = alive_](Pdu p) {
    exec_serial_.assume_held();  // channel delivers on the reactor
    if (*alive) on_pdu(std::move(p));
  });
  governor_.attach(control_);
  send_icreq();
  if (opts_.reconnect.handshake_timeout_ns <= 0) return;
  const u64 epoch = handshake_epoch_;
  exec_.schedule_after(
      opts_.reconnect.handshake_timeout_ns,
      [this, alive = alive_, attempt, epoch] {
        exec_serial_.assume_held();
        if (!*alive || dead_ || !reconnecting_) return;
        if (epoch != handshake_epoch_) return;  // ICResp arrived in time
        counters_.reconnect_failures++;
        OAF_TEL(telemetry::bump(tel_.reconnect_failures));
        control_->close();
        schedule_reconnect(attempt + 1);
      });
}

void NvmfInitiator::demote_shm(const std::string& reason) {
  if (!ep_.demote_shm()) return;
  counters_.shm_demotions++;
  OAF_TEL(telemetry::tracer().instant(tel_.track, "resilience", "shm_demote",
                                      0, exec_.now()));
  telemetry::flight().note("resilience", "shm_demote", 0, exec_.now());
  OAF_WARN("initiator: demoting shm data path (%s)", reason.c_str());
  pdu::ShmDemote demote;
  demote.reason = reason;
  Pdu pdu;
  pdu.header = demote;
  control_->send(std::move(pdu));
  fire_event(PathEvent::kShmDemoted);
}

// --------------------------------------------------------------------------
// Keep-alive
// --------------------------------------------------------------------------

void NvmfInitiator::schedule_keepalive() {
  if (opts_.reconnect.keepalive_interval_ns <= 0) return;
  const u64 epoch = ka_epoch_;
  exec_.schedule_after(opts_.reconnect.keepalive_interval_ns,
                       [this, alive = alive_, epoch] {
                         exec_serial_.assume_held();
                         if (!*alive || dead_ || epoch != ka_epoch_) return;
                         keepalive_tick();
                       });
}

void NvmfInitiator::keepalive_tick() {
  // The data-path health probe rides the keep-alive cadence: a revoked or
  // re-provisioned locality page demotes the connection to TCP.
  if (ep_.shm_ready() && !ep_.shm_healthy()) {
    demote_shm("locality page health check failed");
  }
  if (connected_ && !reconnecting_) {
    if (ka_outstanding_) {
      counters_.keepalive_misses++;
      OAF_TEL(telemetry::bump(tel_.ka_misses));
      ka_misses_++;
      if (ka_misses_ >= opts_.reconnect.keepalive_miss_limit) {
        ka_misses_ = 0;
        ka_outstanding_ = false;
        schedule_keepalive();
        recover("keep-alive miss limit reached");
        return;
      }
    } else {
      ka_misses_ = 0;
    }
    pdu::KeepAlive ka;
    ka.from_host = true;
    ka.seq = ++ka_seq_;
    ka.t_sent_ns = static_cast<u64>(exec_.now());  // NTP t1 for the echo
    Pdu pdu;
    pdu.header = ka;
    control_->send(std::move(pdu));
    counters_.keepalive_sent++;
    OAF_TEL(telemetry::bump(tel_.ka_sent));
    ka_outstanding_ = true;
  }
  schedule_keepalive();
}

// --------------------------------------------------------------------------
// Submission
// --------------------------------------------------------------------------

void NvmfInitiator::arm_timeout(u16 cid) {
  if (opts_.command_timeout_ns <= 0) return;
  wheel_.arm(cid, inflight_[cid].generation, opts_.command_timeout_ns);
}

// --------------------------------------------------------------------------
// Escalation ladder: deadline -> abort -> demote -> reconnect
// --------------------------------------------------------------------------

void NvmfInitiator::on_deadline(u16 cid, u64 generation) {
  if (dead_) return;
  if (aborts_.count(cid) != 0) {
    // Abort cids live in their own namespace; an expiry there is rung two.
    on_abort_timeout(cid);
    return;
  }
  if (cid >= inflight_.size() || !slot_busy_[cid]) return;
  if (inflight_[cid].generation != generation) return;
  counters_.deadlines_expired++;
  OAF_TEL(telemetry::bump(tel_.deadlines));
  OAF_TEL(telemetry::tracer().instant(tel_.track, "resilience",
                                      "deadline_expired", generation,
                                      exec_.now()));
  telemetry::flight().note("resilience", "deadline_expired", generation,
                           exec_.now());
  timeouts_++;
  if (!opts_.escalation.enabled() || reconnecting_) {
    // Legacy semantics: a deadline expiry is a transport fault.
    recover("command timeout");
    return;
  }
  send_abort(cid);
}

u16 NvmfInitiator::alloc_abort_cid() {
  for (u32 tries = 0; tries < 256; ++tries) {
    const u16 acid = static_cast<u16>(kAbortCidBase + (next_abort_cid_++ & 0xFF));
    if (aborts_.count(acid) == 0) return acid;
  }
  return kAbortCidBase;  // unreachable: > 256 concurrent aborts cannot arise
}

void NvmfInitiator::send_abort(u16 victim_cid) {
  Pending& p = inflight_[victim_cid];
  p.abort_attempts++;
  const u16 acid = alloc_abort_cid();
  aborts_[acid] = AbortCtx{victim_cid, p.generation, p.gen};
  counters_.aborts_sent++;
  OAF_TEL(telemetry::bump(tel_.aborts_sent));
  OAF_TEL(telemetry::tracer().instant(tel_.track, "resilience", "abort_sent",
                                      p.generation, exec_.now()));
  telemetry::flight().note("resilience", "abort_sent", p.generation,
                           exec_.now());
  OAF_WARN_RL("initiator: aborting stuck cid %u (attempt %u/%u, abort cid %u)",
           victim_cid, p.abort_attempts, opts_.escalation.abort_budget, acid);
  pdu::CapsuleCmd capsule;
  capsule.cmd.opcode = NvmeOpcode::kAbort;
  capsule.cmd.cid = acid;
  capsule.cmd.abort_cid = victim_cid;
  capsule.cmd.abort_gen = p.gen;
  Pdu pdu;
  pdu.header = capsule;
  control_->send(std::move(pdu));
  wheel_.arm(acid, 0, abort_deadline_ns());
}

void NvmfInitiator::on_abort_timeout(u16 abort_cid) {
  const auto it = aborts_.find(abort_cid);
  if (it == aborts_.end()) return;
  const AbortCtx a = it->second;
  aborts_.erase(it);
  counters_.aborts_failed++;
  OAF_TEL(telemetry::bump(tel_.aborts_failed));
  consecutive_abort_failures_++;
  // Aborts ride the control channel. If they keep dying while shm is up,
  // suspect the fast path first and demote before burning the connection.
  if (ep_.shm_ready() && consecutive_abort_failures_ >=
                             opts_.escalation.demote_after_failed_aborts) {
    demote_shm("aborts timing out while shm active");
  }
  const bool victim_live = a.victim_cid < inflight_.size() &&
                           slot_busy_[a.victim_cid] &&
                           inflight_[a.victim_cid].generation ==
                               a.victim_generation;
  if (!victim_live) return;  // the victim resolved itself meanwhile
  if (inflight_[a.victim_cid].abort_attempts < opts_.escalation.abort_budget) {
    send_abort(a.victim_cid);
    return;
  }
  // Rung three: the control path itself is unresponsive.
  recover("abort escalation exhausted");
}

void NvmfInitiator::on_abort_resp(u16 abort_cid, const pdu::CapsuleResp& resp) {
  const AbortCtx a = aborts_[abort_cid];
  aborts_.erase(abort_cid);
  wheel_.cancel(abort_cid);
  consecutive_abort_failures_ = 0;
  counters_.aborts_succeeded++;
  OAF_TEL(telemetry::bump(tel_.aborts_ok));
  const bool victim_live = a.victim_cid < inflight_.size() &&
                           slot_busy_[a.victim_cid] &&
                           inflight_[a.victim_cid].generation ==
                               a.victim_generation;
  // The target sends the victim's (aborted) completion before the abort
  // response, so normally the victim is already closed here.
  if (!victim_live) return;
  if (resp.cpl.result != 0) {
    // result 1: the target has no record of the victim — the capsule (or
    // its completion) was lost on the wire. Replay in place.
    complete(a.victim_cid,
             {a.victim_cid, pdu::NvmeStatus::kTransientTransportError, 0}, 0,
             0);
  } else {
    // result 0 but the victim's own completion never arrived: close it as
    // aborted now rather than waiting for a PDU that is not coming.
    complete(a.victim_cid,
             {a.victim_cid, pdu::NvmeStatus::kAbortedByRequest, 0}, 0, 0);
  }
}

void NvmfInitiator::note_shm_consume_failure(const Status& st) {
  if (st.code() != StatusCode::kPeerMisbehavior) return;
  counters_.peer_misbehavior++;
  demote_shm("shm slot protocol violation on consume");
}

void NvmfInitiator::abort_connection(const char* reason) {
  if (dead_) return;
  dead_ = true;
  reconnecting_ = false;
  // Announce before failing in-flight: the PathGroup's redrive decisions
  // must already see this path as dead when the failure burst arrives.
  fire_event(PathEvent::kDead);
  ka_epoch_++;  // stop the keep-alive loop
  wheel_.clear();
  aborts_.clear();
  consecutive_abort_failures_ = 0;
  OAF_WARN("initiator: aborting connection (%s)", reason);
  // Escalation-ladder exhaustion / fatal teardown: capture the black box
  // before in-flight state is failed out (no-op unless flight().install()
  // armed dumping).
  telemetry::flight().note("resilience", "abort_connection", 0, exec_.now());
  telemetry::flight().dump_now(reason);
  // NVMe-oF error recovery past the reconnect budget is controller-scoped:
  // terminate the association and fail everything in flight. A late
  // response for a failed cid must not be matched against a new command,
  // so the queue stops here.
  pdu::TermReq term;
  term.from_host = true;
  term.fes = 2;
  term.reason = reason;
  Pdu pdu;
  pdu.header = term;
  control_->send(std::move(pdu));
  control_->close();

  for (u16 cid = 0; cid < inflight_.size(); ++cid) {
    if (!slot_busy_[cid]) continue;
    complete(cid, {cid, pdu::NvmeStatus::kDataTransferError, 0}, 0, 0);
  }
  while (!replay_.empty()) {
    Pending p = std::move(replay_.front());
    replay_.pop_front();
    fail_pending(p);
  }
  while (!waiting_.empty()) {
    Pending p = std::move(waiting_.front());
    waiting_.pop_front();
    fail_pending(p);
  }
  if (connect_cb_) {
    // A first connect that entered the recovery ladder (e.g. an admission
    // reject with reconnect enabled) and exhausted it must still resolve —
    // otherwise the caller waits on a callback that never comes.
    auto cb = std::move(connect_cb_);
    std::move(cb)(make_error(StatusCode::kUnavailable,
                             std::string("connection aborted: ") + reason));
  }
}

void NvmfInitiator::submit_or_queue(Pending pending) {
  const telemetry::prof::CostScope cost(telemetry::prof::CostCenter::kSubmit);
  // First submission opens the ledger's kQueue phase; a replay keeps its
  // ledger (currently accruing kDetour) so detour time stays attributed.
  if (pending.first_submit < 0) pending.ledger.reset(exec_.now());
  if (dead_) {
    fail_pending(pending);
    return;
  }
  if (reconnecting_) {
    // Hold everything until the association is re-established; the replay
    // flush resubmits in order.
    waiting_.push_back(std::move(pending));
    return;
  }
  // Find a free cid round-robin (paper: slots chosen round-robin w.r.t. the
  // application I/O depth).
  for (u32 i = 0; i < opts_.queue_depth; ++i) {
    const u16 cid = static_cast<u16>((next_cid_ + i) % opts_.queue_depth);
    if (!slot_busy_[cid]) {
      next_cid_ = static_cast<u16>((cid + 1) % opts_.queue_depth);
      slot_busy_[cid] = true;
      inflight_count_++;
      pending.cmd.cid = cid;
      inflight_[cid] = std::move(pending);
      start_command(cid);
      return;
    }
  }
  waiting_.push_back(std::move(pending));
}

void NvmfInitiator::drain_queue() {
  while (!waiting_.empty()) {
    if (reconnecting_ || dead_) return;
    // Re-check a cid is actually free before popping.
    bool any_free = false;
    for (u32 i = 0; i < opts_.queue_depth; ++i) {
      if (!slot_busy_[i]) {
        any_free = true;
        break;
      }
    }
    if (!any_free) return;
    Pending next = std::move(waiting_.front());
    waiting_.pop_front();
    submit_or_queue(std::move(next));
  }
}

void NvmfInitiator::start_command(u16 cid) {
  Pending& p = inflight_[cid];
  p.submit_time = exec_.now();
  if (p.first_submit < 0) p.first_submit = p.submit_time;
  p.generation = next_generation_++;
  p.gen = next_gen_++;
  if (next_gen_ == 0) next_gen_ = 1;  // 0 is the wildcard tag
  // Zero-copy commands enter here directly (no submit_or_queue); open their
  // ledger now. For everything else this closes kQueue (or a replay's
  // kDetour) into its bucket and starts the encode/staging phase.
  if (p.ledger.touched == 0) p.ledger.reset(p.submit_time);
  p.ledger.enter(telemetry::Stage::kEncode, p.submit_time);
  // One async span per submission attempt (a retry begins a fresh span with
  // its new generation, so detours stay visible on the timeline).
  OAF_TEL(telemetry::tracer().begin(tel_.track, "init_io",
                                    op_span_name(p.cmd.opcode), p.generation,
                                    p.submit_time, "bytes",
                                    static_cast<i64>(p.data_len)));
  OAF_TEL(telemetry::anomaly().ring().begin(
      tel_.anomaly_track, "init_io", op_span_name(p.cmd.opcode), p.generation,
      p.submit_time, "bytes", static_cast<i64>(p.data_len)));
  governor_.record_op(p.cmd.is_write());
  arm_timeout(cid);
  switch (p.cmd.opcode) {
    case NvmeOpcode::kWrite:
      start_write(cid);
      break;
    case NvmeOpcode::kRead:
      start_read(cid);
      break;
    default:
      send_capsule(cid, /*in_capsule=*/false, DataPlacement::kInline, {});
      break;
  }
}

void NvmfInitiator::send_capsule(u16 cid, bool in_capsule,
                                 DataPlacement placement,
                                 std::vector<u8> inline_payload) {
  const telemetry::prof::CostScope cost(telemetry::prof::CostCenter::kEncode);
  Pending& p = inflight_[cid];
  pdu::CapsuleCmd capsule;
  capsule.cmd = p.cmd;
  capsule.in_capsule_data = in_capsule;
  capsule.placement = placement;
  capsule.shm_slot = cid;
  capsule.data_len = p.data_len;
  capsule.gen = p.gen;
  if (trace_ctx_) {
    // The attempt generation doubles as trace id and parent span id: it is
    // unique per attempt, and the initiator's I/O span already uses it as
    // its async id, so target spans stitch under it in the merged timeline.
    capsule.trace_id = p.generation;
    capsule.parent_span = p.generation;
  }
  Pdu pdu;
  pdu.header = capsule;
  pdu.payload = std::move(inline_payload);
  // Capsule on the wire: encode/staging is done, the grant/response wait
  // begins (an R2T or first data moves the cursor to kXfer).
  p.ledger.enter(telemetry::Stage::kGrant, exec_.now());
  OAF_TEL(telemetry::tracer().instant(
      tel_.track, "init_io", in_capsule ? "capsule_sent" : "capsule_sent_r2t",
      p.generation, exec_.now(), "bytes", static_cast<i64>(p.data_len)));
  OAF_TEL(telemetry::anomaly().ring().instant(
      tel_.anomaly_track, "init_io",
      in_capsule ? "capsule_sent" : "capsule_sent_r2t", p.generation,
      exec_.now(), "bytes", static_cast<i64>(p.data_len)));
  control_->send(std::move(pdu));
}

void NvmfInitiator::start_write(u16 cid) {
  Pending& p = inflight_[cid];
  const bool shm = ep_.shm_ready();
  const bool in_capsule = af::write_in_capsule(opts_.af, shm, p.data_len);

  if (p.zero_copy) {
    // Payload already lives in the slot (acquired at zero_copy_write_begin);
    // publish it and notify the target in-capsule.
    const Status st = ep_.publish_app_buffer(cid, p.data_len, [this, cid] {
      send_capsule(cid, /*in_capsule=*/true, DataPlacement::kShmSlot, {});
    });
    if (!st) complete(cid, {cid, pdu::NvmeStatus::kInternalError, 0}, 0, 0);
    return;
  }

  if (shm) {
    if (in_capsule) {
      const Status st = ep_.stage_payload(cid, p.wdata, [this, cid] {
        send_capsule(cid, /*in_capsule=*/true, DataPlacement::kShmSlot, {});
      });
      if (!st) complete(cid, {cid, pdu::NvmeStatus::kInternalError, 0}, 0, 0);
    } else {
      // Conservative flow on shm (ablation baseline): command first, data
      // staged only after the target's R2T arrives.
      send_capsule(cid, /*in_capsule=*/false, DataPlacement::kShmSlot, {});
    }
    return;
  }

  // TCP-only path.
  if (in_capsule) {
    std::vector<u8> payload(p.wdata.begin(), p.wdata.end());
    send_capsule(cid, /*in_capsule=*/true, DataPlacement::kInline,
                 std::move(payload));
  } else {
    send_capsule(cid, /*in_capsule=*/false, DataPlacement::kInline, {});
  }
}

void NvmfInitiator::start_read(u16 cid) {
  send_capsule(cid, /*in_capsule=*/false,
               ep_.shm_ready() ? DataPlacement::kShmSlot : DataPlacement::kInline,
               {});
}

void NvmfInitiator::on_r2t(const pdu::R2T& r2t) {
  const u16 cid = r2t.cid;
  if (cid >= inflight_.size() || !slot_busy_[cid]) {
    OAF_WARN_RL("R2T for unknown cid %u", cid);
    return;
  }
  Pending& p = inflight_[cid];
  if (stale(r2t.gen, p)) {
    OAF_WARN_RL("stale R2T for cid %u (gen %u != %u)", cid, r2t.gen, p.gen);
    return;
  }
  // Grant arrived; the data-transfer phase starts.
  p.ledger.enter(telemetry::Stage::kXfer, exec_.now());
  OAF_TEL(telemetry::tracer().instant(tel_.track, "init_io", "r2t",
                                      p.generation, exec_.now(), "bytes",
                                      static_cast<i64>(r2t.length)));
  OAF_TEL(telemetry::anomaly().ring().instant(tel_.anomaly_track, "init_io",
                                              "r2t", p.generation, exec_.now(),
                                              "bytes",
                                              static_cast<i64>(r2t.length)));
  if (ep_.shm_ready()) {
    // Conservative flow on shm (pre-optimization design): the granted
    // window moves through the slot one maxh2cdata chunk at a time, each
    // chunk with its own out-of-band notification (Fig 6/7 steps 3 and 4,
    // repeated per chunk) — the serialization §4.4.2's in-capsule flow
    // eliminates.
    shm_write_chunk(cid, r2t.ttag, r2t.offset, r2t.offset + r2t.length);
    return;
  }
  // TCP: stream the granted window as inline chunks of maxh2cdata.
  const auto chunks =
      af::make_chunks(r2t.length, maxh2cdata_);
  for (const auto& c : chunks) {
    pdu::H2CData h2c;
    h2c.cid = cid;
    h2c.ttag = r2t.ttag;
    h2c.offset = r2t.offset + c.offset;
    h2c.length = c.length;
    h2c.last = c.last;
    h2c.placement = DataPlacement::kInline;
    h2c.gen = p.gen;
    Pdu pdu;
    pdu.header = h2c;
    const auto slice = p.wdata.subspan(r2t.offset + c.offset, c.length);
    pdu.payload.assign(slice.begin(), slice.end());
    if (data_digest_) {
      h2c.data_digest = pdu::crc32c(
          std::span<const u8>(pdu.payload.data(), pdu.payload.size()));
      pdu.header = h2c;
    }
    control_->send(std::move(pdu));
  }
}

void NvmfInitiator::shm_write_chunk(u16 cid, u16 ttag, u64 offset, u64 end) {
  if (cid >= inflight_.size() || !slot_busy_[cid]) return;
  Pending& p = inflight_[cid];
  const u64 chunk = std::min<u64>(maxh2cdata_, end - offset);
  const bool last = offset + chunk >= end;
  ep_.stage_payload_when_free(
      cid, p.wdata.subspan(offset, chunk),
      [this, cid, ttag, offset, chunk, last, end, gen = p.gen] {
        if (cid >= inflight_.size() || !slot_busy_[cid]) return;
        if (inflight_[cid].gen != gen) return;  // replaced by a replay
        pdu::H2CData h2c;
        h2c.cid = cid;
        h2c.ttag = ttag;
        h2c.offset = offset;
        h2c.length = chunk;
        h2c.last = last;
        h2c.placement = DataPlacement::kShmSlot;
        h2c.shm_slot = cid;
        h2c.gen = gen;
        Pdu pdu;
        pdu.header = h2c;
        control_->send(std::move(pdu));
        if (!last) shm_write_chunk(cid, ttag, offset + chunk, end);
      },
      // An aborted (or replayed) command must not park a stray payload in a
      // slot a successor will reuse — the poll re-checks before every stage.
      [this, alive = alive_, cid, gen = p.gen] {
        return !*alive || cid >= inflight_.size() || !slot_busy_[cid] ||
               inflight_[cid].gen != gen;
      });
}

// --------------------------------------------------------------------------
// Completion paths
// --------------------------------------------------------------------------

void NvmfInitiator::on_c2h(Pdu pdu) {
  const telemetry::prof::CostScope cost(telemetry::prof::CostCenter::kXfer);
  const auto& c2h = *pdu.as<pdu::C2HData>();
  const u16 cid = c2h.cid;
  if (cid >= inflight_.size() || !slot_busy_[cid]) {
    OAF_WARN_RL("C2HData for unknown cid %u", cid);
    return;
  }
  Pending& p = inflight_[cid];
  if (stale(c2h.gen, p)) {
    OAF_WARN_RL("stale C2HData for cid %u (gen %u != %u)", cid, c2h.gen, p.gen);
    return;
  }
  // First data closes the kGrant wait; later chunks just keep kXfer open.
  p.ledger.enter(telemetry::Stage::kXfer, exec_.now());

  if (c2h.placement == DataPlacement::kShmSlot) {
    if (p.zero_copy && p.view_cb) {
      // Zero-copy read: hand the application a view of the slot; the slot
      // (and the cid) are reclaimed when the application releases it.
      auto view = ep_.consume_view(c2h.shm_slot);
      IoResult res;
      res.cpl = {cid, pdu::NvmeStatus::kSuccess, 0};
      res.total_ns = exec_.now() - p.submit_time;
      res.io_time_ns = c2h.io_time_ns;
      res.target_time_ns = c2h.target_time_ns;
      auto cb = std::move(p.view_cb);
      trace_end_span(p);
      if (!view) {
        note_shm_consume_failure(view.status());
        release_cid(cid);
        std::move(cb)(view.status(), res);
        return;
      }
      ReadView rv;
      rv.data = view.value();
      rv.release = [this, cid, slot = c2h.shm_slot] {
        (void)ep_.release_slot(slot);
        release_cid(cid);
      };
      ios_completed_++;
      OAF_TEL(telemetry::bump(tel_.ios));
      OAF_TEL(tel_.latency->record(res.total_ns));
      // Zero-copy reads complete here, not via complete(): attribute now.
      p.ledger.finalize(exec_.now(), static_cast<DurNs>(res.io_time_ns),
                        static_cast<DurNs>(res.target_time_ns));
      if (telemetry::attribution().record(telemetry::OpClass::kRead, p.ledger,
                                          res.total_ns, p.generation,
                                          exec_.now())) {
        maybe_capture_anomaly(p, res.total_ns, telemetry::OpClass::kRead);
      }
      std::move(cb)(std::move(rv), res);
      return;
    }
    // Staged shm read: copy the published chunk into the application
    // buffer at its offset; the SUCCESS flag (optimized flow) folds the
    // completion into the last data PDU, otherwise CapsuleResp closes it.
    if (c2h.offset + c2h.length > p.rdata.size()) {
      complete(cid, {cid, pdu::NvmeStatus::kDataTransferError, 0}, 0, 0);
      return;
    }
    ep_.consume_payload(
        c2h.shm_slot, p.rdata.subspan(c2h.offset, c2h.length),
        [this, alive = alive_, cid, gen = p.gen, last = c2h.last,
         success = c2h.success, io_ns = c2h.io_time_ns,
         tgt_ns = c2h.target_time_ns](Result<u64> got) {
          exec_serial_.assume_held();  // consume completion posts here
          if (!*alive || cid >= inflight_.size() || !slot_busy_[cid]) return;
          if (inflight_[cid].gen != gen) return;  // replaced by a replay
          if (!got) {
            note_shm_consume_failure(got.status());
            complete(cid, {cid, pdu::NvmeStatus::kDataTransferError, 0}, 0, 0);
            return;
          }
          if (last && success) {
            complete(cid, {cid, pdu::NvmeStatus::kSuccess, 0}, io_ns, tgt_ns);
          }
        });
    return;
  }

  // Inline TCP chunk: land it in the application buffer.
  if (c2h.offset + c2h.length > p.rdata.size() ||
      pdu.payload.size() != c2h.length) {
    complete(cid, {cid, pdu::NvmeStatus::kDataTransferError, 0}, 0, 0);
    return;
  }
  if (data_digest_ && c2h.data_digest != 0) {
    const u32 computed = pdu::crc32c(
        std::span<const u8>(pdu.payload.data(), pdu.payload.size()));
    if (computed != c2h.data_digest) {
      counters_.digest_errors++;
      OAF_TEL(telemetry::bump(tel_.digest_errors));
      OAF_WARN_RL("C2HData digest mismatch for cid %u", cid);
      complete(cid, {cid, pdu::NvmeStatus::kTransientTransportError, 0}, 0, 0);
      return;
    }
  }
  std::memcpy(p.rdata.data() + c2h.offset, pdu.payload.data(), c2h.length);
  p.bytes_received += c2h.length;
  if (c2h.last && c2h.success) {
    complete(cid, {cid, pdu::NvmeStatus::kSuccess, 0}, c2h.io_time_ns,
             c2h.target_time_ns);
  }
  // Otherwise the CapsuleResp closes the command.
}

void NvmfInitiator::on_resp(const pdu::CapsuleResp& resp) {
  const u16 cid = resp.cpl.cid;
  if (aborts_.count(cid) != 0) {
    on_abort_resp(cid, resp);
    return;
  }
  if (cid >= inflight_.size() || !slot_busy_[cid]) {
    OAF_WARN_RL("CapsuleResp for unknown cid %u", cid);
    return;
  }
  if (stale(resp.gen, inflight_[cid])) {
    OAF_WARN_RL("stale CapsuleResp for cid %u (gen %u != %u)", cid, resp.gen,
             inflight_[cid].gen);
    return;
  }
  complete(cid, resp.cpl, resp.io_time_ns, resp.target_time_ns);
}

void NvmfInitiator::release_cid(u16 cid) {
  wheel_.cancel(cid);
  slot_busy_[cid] = false;
  if (inflight_count_ > 0) inflight_count_--;
  inflight_[cid] = Pending{};
  drain_queue();
}

void NvmfInitiator::complete(u16 cid, const pdu::NvmeCpl& cpl, u64 io_ns,
                             u64 target_ns) {
  const telemetry::prof::CostScope cost(
      telemetry::prof::CostCenter::kComplete);
  Pending& p = inflight_[cid];
  if (cpl.status == pdu::NvmeStatus::kTransientTransportError && !dead_ &&
      retryable(p) && p.attempts < opts_.reconnect.max_command_retries) {
    // Transport-level fault on an otherwise healthy association (e.g. a
    // data-digest mismatch): replay in place on the same cid. A fresh gen
    // tag fences any PDU still in flight from the failed attempt.
    trace_end_span(p);
    OAF_TEL(telemetry::tracer().instant(tel_.track, "resilience", "retry",
                                        p.generation, exec_.now()));
    OAF_TEL(telemetry::anomaly().ring().instant(tel_.anomaly_track,
                                                "resilience", "retry",
                                                p.generation, exec_.now()));
    // Close the failed attempt's wire phase; start_command reopens kEncode.
    p.ledger.enter(telemetry::Stage::kDetour, exec_.now());
    p.attempts++;
    p.bytes_received = 0;
    counters_.commands_retried++;
    OAF_TEL(telemetry::bump(tel_.retried));
    start_command(cid);
    return;
  }
  if (cpl.status == pdu::NvmeStatus::kQueueFull) {
    counters_.queue_full_received++;
    OAF_TEL(telemetry::bump(tel_.queue_full));
    telemetry::flight().note("overload", "queue_full_received", cid,
                             exec_.now());
    // Raise the congestion window on every reject — including those that
    // surface to the caller (zero-copy commands are not replayed in place):
    // congested() is how producers that manage their own buffers learn to
    // stop offering work to a saturated target.
    {
      const TimeNs until = exec_.now() + backoff_for_attempt(p.attempts + 1);
      if (until > congested_until_) congested_until_ = until;
    }
    if (!dead_ && retryable(p) &&
        p.attempts < opts_.reconnect.max_command_retries) {
      // NVMe-style backpressure: the target shed or refused this command
      // before it touched the medium, so replaying it is always safe. Hold
      // the cid slot through a jittered backoff (same deterministic stream
      // as reconnects) and resubmit in place; meanwhile congested() tells
      // drivers to stop offering new work.
      trace_end_span(p);
      OAF_TEL(telemetry::tracer().instant(tel_.track, "overload",
                                          "queue_full_backoff", p.generation,
                                          exec_.now()));
      OAF_TEL(telemetry::anomaly().ring().instant(
          tel_.anomaly_track, "overload", "queue_full_backoff", p.generation,
          exec_.now()));
      // The backoff window is off-path time; kDetour accrues until resubmit.
      p.ledger.enter(telemetry::Stage::kDetour, exec_.now());
      p.attempts++;
      p.bytes_received = 0;
      counters_.queue_full_retries++;
      // Park the deadline for the backoff window — the command is not on
      // the wire, so an expiry here would escalate (abort) a command the
      // target no longer has. start_command re-arms on resubmit.
      wheel_.cancel(cid);
      const DurNs backoff = backoff_for_attempt(p.attempts);
      const TimeNs until = exec_.now() + backoff;
      if (until > congested_until_) congested_until_ = until;
      const u64 generation = p.generation;
      exec_.schedule_after(
          backoff, [this, alive = alive_, cid, generation] {
            exec_serial_.assume_held();
            if (!*alive || dead_ || cid >= inflight_.size() ||
                !slot_busy_[cid] || inflight_[cid].generation != generation) {
              return;
            }
            start_command(cid);
          });
      return;
    }
    // Out of retry budget (or not replayable): deliver the kQueueFull
    // completion to the caller, who sees a retryable status.
  }
  trace_end_span(p);
  if (cpl.status == pdu::NvmeStatus::kAbortedByRequest) {
    counters_.commands_aborted++;
    OAF_TEL(telemetry::bump(tel_.cmds_aborted));
    OAF_TEL(telemetry::tracer().instant(tel_.track, "resilience", "aborted",
                                        p.generation, exec_.now()));
  }
  IoResult res;
  res.cpl = cpl;
  // total_ns spans the FIRST submission to the final completion so retried
  // commands report their true application-visible latency; io/target time
  // come from the completing attempt only, so device residency of earlier
  // (abandoned) attempts is never double-counted in the Fig 3/12 breakdown.
  res.total_ns =
      exec_.now() - (p.first_submit >= 0 ? p.first_submit : p.submit_time);
  res.io_time_ns = io_ns;
  res.target_time_ns = target_ns;

  // Close the ledger: carve the remotely-reported residency out of whichever
  // wire phase covered the round-trip, fold the stage breakdown into the
  // current attribution window, and let a breach verdict promote a capture.
  p.ledger.finalize(exec_.now(), static_cast<DurNs>(io_ns),
                    static_cast<DurNs>(target_ns));
  const telemetry::OpClass op_class = p.cmd.is_write()
                                          ? telemetry::OpClass::kWrite
                                          : telemetry::OpClass::kRead;
  if (telemetry::attribution().record(op_class, p.ledger, res.total_ns,
                                      p.generation, exec_.now())) {
    maybe_capture_anomaly(p, res.total_ns, op_class);
  }

  IoCb cb = std::move(p.cb);
  auto view_cb = std::move(p.view_cb);
  auto identify_cb = std::move(p.identify_cb);
  auto identify_result = p.identify_result;
  ios_completed_++;
  // cycles/IO denominator (one relaxed load when cycle accounting is off).
  telemetry::prof::cycle_ledger().add_io();
  OAF_TEL(telemetry::bump(tel_.ios));
  OAF_TEL(tel_.latency->record(res.total_ns));
  if (cpl.ok()) {
    // Per-path latency EWMA (alpha 1/8) for the latency-aware selector.
    const auto t = static_cast<double>(res.total_ns);
    latency_ewma_ns_ =
        latency_ewma_ns_ == 0 ? t : latency_ewma_ns_ + (t - latency_ewma_ns_) / 8;
    // The target served a command, so the overload that set the congestion
    // window has eased — lift it early rather than waiting it out.
    congested_until_ = 0;
  }
  release_cid(cid);

  if (identify_cb) {
    if (cpl.ok() && identify_result.first != 0) {
      std::move(identify_cb)(identify_result);
    } else {
      std::move(identify_cb)(
          make_error(StatusCode::kUnavailable, "identify failed"));
    }
    return;
  }
  if (view_cb) {
    // A zero-copy read normally completes through the C2HData slot
    // reference, which hands out the view and consumes this callback. A
    // completion landing here instead (aborted, errored, retries spent)
    // carries no payload — the caller must still hear about it, or an
    // aborted view read hangs its issuer forever.
    std::move(view_cb)(
        Result<ReadView>(make_error(StatusCode::kUnavailable,
                                    "read completed without a payload")),
        res);
    return;
  }
  if (cb) std::move(cb)(res);
}

// --------------------------------------------------------------------------
// Retroactive anomaly capture
// --------------------------------------------------------------------------

void NvmfInitiator::maybe_capture_anomaly(const Pending& p, i64 total_ns,
                                          telemetry::OpClass op) {
  auto& rec = telemetry::anomaly();
  const TimeNs now = exec_.now();
  const i64 idx = rec.begin_capture(now);
  if (idx < 0) return;  // disarmed, out of slots, or rate-limited
  telemetry::AnomalyContext ctx;
  ctx.index = idx;
  ctx.trace_id = p.generation;
  ctx.op = op;
  ctx.total_ns = total_ns;
  ctx.slo_ns = telemetry::attribution().slo_for(op);
  ctx.stage_ns = p.ledger.stage_ns;
  // 1 ms of pre-roll in front of the first submission catches the
  // neighbourhood that queued this I/O behind whatever stalled.
  ctx.t_from_ns =
      (p.first_submit >= 0 ? p.first_submit : p.submit_time) - 1'000'000;
  ctx.t_to_ns = now;
  ctx.clock_offset_ns = clock_sync_.offset_ns();
  if (connected_ && !dead_ && trace_ctx_) {
    // Ask the target for its half; the capture file is written when the
    // reply arrives or the fetch times out, whichever comes first. The
    // window travels pre-translated onto the target's clock.
    anomaly_ctx_ = ctx;
    anomaly_fetch_pending_ = true;
    const u64 epoch = ++anomaly_fetch_epoch_;
    pdu::AnomalyReq req;
    req.trace_id = ctx.trace_id;
    req.t_from_ns = ctx.t_from_ns + ctx.clock_offset_ns;
    req.t_to_ns = ctx.t_to_ns + ctx.clock_offset_ns;
    req.offset_ns = ctx.clock_offset_ns;
    Pdu pdu;
    pdu.header = req;
    control_->send(std::move(pdu));
    exec_.schedule_after(
        kAnomalyFetchTimeoutNs, [this, alive = alive_, epoch] {
          exec_serial_.assume_held();
          if (!*alive || epoch != anomaly_fetch_epoch_) return;
          if (!anomaly_fetch_pending_) return;
          anomaly_fetch_pending_ = false;
          // Evidence with a gap beats no evidence: local half only.
          telemetry::anomaly().capture(anomaly_ctx_);
        });
    return;
  }
  rec.capture(ctx);
}

void NvmfInitiator::on_anomaly_resp(Pdu pdu) {
  const auto& resp = *pdu.as<pdu::AnomalyResp>();
  if (!anomaly_fetch_pending_ || resp.trace_id != anomaly_ctx_.trace_id) {
    return;  // late reply after the fetch timeout already captured
  }
  anomaly_fetch_pending_ = false;
  anomaly_fetch_epoch_++;  // invalidates the pending fetch timeout
  anomaly_ctx_.remote_pid = resp.pid;
  anomaly_ctx_.remote_events_json.assign(pdu.payload.begin(),
                                         pdu.payload.end());
  telemetry::anomaly().capture(anomaly_ctx_);
}

// --------------------------------------------------------------------------
// Public API
// --------------------------------------------------------------------------

namespace {
pdu::NvmeCmd make_cmd(pdu::NvmeOpcode op, u32 nsid, u64 slba, u64 bytes,
                      u32 block_size) {
  pdu::NvmeCmd cmd;
  cmd.opcode = op;
  cmd.nsid = nsid;
  cmd.slba = slba;
  cmd.nlb = bytes == 0 ? 0 : static_cast<u32>(bytes / block_size - 1);
  return cmd;
}
}  // namespace

void NvmfInitiator::write(u32 nsid, u64 slba, std::span<const u8> data, IoCb cb) {
  Pending p;
  p.cmd = make_cmd(NvmeOpcode::kWrite, nsid, slba, data.size(), kBlockSize);
  p.data_len = data.size();
  p.wdata = data;
  p.cb = std::move(cb);
  submit_or_queue(std::move(p));
}

void NvmfInitiator::read(u32 nsid, u64 slba, std::span<u8> out, IoCb cb) {
  Pending p;
  p.cmd = make_cmd(NvmeOpcode::kRead, nsid, slba, out.size(), kBlockSize);
  p.data_len = out.size();
  p.rdata = out;
  p.cb = std::move(cb);
  submit_or_queue(std::move(p));
}

void NvmfInitiator::flush(u32 nsid, IoCb cb) {
  Pending p;
  p.cmd = make_cmd(NvmeOpcode::kFlush, nsid, 0, 0, kBlockSize);
  p.cb = std::move(cb);
  submit_or_queue(std::move(p));
}

void NvmfInitiator::identify(u32 nsid, IdentifyCb cb) {
  Pending p;
  p.cmd = make_cmd(NvmeOpcode::kIdentify, nsid, 0, 0, kBlockSize);
  p.identify_cb = std::move(cb);
  submit_or_queue(std::move(p));
}

Result<NvmfInitiator::WriteTicket> NvmfInitiator::zero_copy_write_begin(u64 len) {
  if (!supports_zero_copy()) {
    return make_error(StatusCode::kUnavailable, "zero-copy requires shm");
  }
  if (len > ep_.slot_bytes()) {
    return make_error(StatusCode::kOutOfRange, "length exceeds slot size");
  }
  for (u32 i = 0; i < opts_.queue_depth; ++i) {
    const u16 cid = static_cast<u16>((next_cid_ + i) % opts_.queue_depth);
    if (!slot_busy_[cid]) {
      auto buf = ep_.acquire_app_buffer(cid);
      if (!buf) return buf.status();
      next_cid_ = static_cast<u16>((cid + 1) % opts_.queue_depth);
      slot_busy_[cid] = true;
      inflight_count_++;
      return WriteTicket{cid, buf.value()};
    }
  }
  return make_error(StatusCode::kResourceExhausted, "queue depth exceeded");
}

void NvmfInitiator::zero_copy_write(const WriteTicket& ticket, u32 nsid,
                                    u64 slba, u64 len, IoCb cb) {
  Pending p;
  p.cmd = make_cmd(NvmeOpcode::kWrite, nsid, slba, len, kBlockSize);
  p.cmd.cid = ticket.cid;
  p.data_len = len;
  p.zero_copy = true;
  p.cb = std::move(cb);
  inflight_[ticket.cid] = std::move(p);
  start_command(ticket.cid);
}

void NvmfInitiator::zero_copy_read(u32 nsid, u64 slba, u64 len, ReadViewCb cb) {
  if (!supports_zero_copy()) {
    IoResult res;
    res.cpl.status = pdu::NvmeStatus::kInternalError;
    std::move(cb)(
        Result<ReadView>(
            make_error(StatusCode::kUnavailable, "zero-copy requires shm")),
        res);
    return;
  }
  Pending p;
  p.cmd = make_cmd(NvmeOpcode::kRead, nsid, slba, len, kBlockSize);
  p.data_len = len;
  p.zero_copy = true;
  p.view_cb = std::move(cb);
  submit_or_queue(std::move(p));
}

}  // namespace oaf::nvmf

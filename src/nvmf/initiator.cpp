#include "nvmf/initiator.h"

#include <cstring>

#include "af/chunker.h"
#include "af/flow_control.h"
#include "common/log.h"

namespace oaf::nvmf {

using pdu::DataPlacement;
using pdu::NvmeOpcode;
using pdu::Pdu;

NvmfInitiator::NvmfInitiator(Executor& exec, net::MsgChannel& control,
                             net::Copier& copier, af::ShmBroker& broker,
                             InitiatorOptions opts)
    : exec_(exec),
      control_(control),
      cm_(broker),
      ep_(af::Role::kClient, exec, copier, opts.af),
      governor_(opts.af.busy_poll, opts.af.static_poll_ns),
      opts_(std::move(opts)) {
  // Queue depth cannot exceed the cid space / slot count.
  if (opts_.queue_depth == 0) opts_.queue_depth = 1;
  if (opts_.queue_depth > opts_.af.shm_slots) {
    opts_.queue_depth = opts_.af.shm_slots;
  }
  inflight_.resize(opts_.queue_depth);
  slot_busy_.assign(opts_.queue_depth, false);
  control_.set_handler([this](Pdu p) { on_pdu(std::move(p)); });
}

void NvmfInitiator::connect(std::function<void(Status)> cb) {
  connect_cb_ = std::move(cb);
  governor_.attach(&control_);
  Pdu pdu;
  pdu.header = cm_.make_icreq(opts_.af);
  control_.send(std::move(pdu));
}

void NvmfInitiator::on_pdu(Pdu pdu) {
  switch (pdu.type()) {
    case pdu::PduType::kICResp:
      on_icresp(*pdu.as<pdu::ICResp>());
      break;
    case pdu::PduType::kR2T:
      on_r2t(*pdu.as<pdu::R2T>());
      break;
    case pdu::PduType::kC2HData:
      on_c2h(std::move(pdu));
      break;
    case pdu::PduType::kCapsuleResp: {
      const auto& resp = *pdu.as<pdu::CapsuleResp>();
      if (resp.cpl.cid < inflight_.size() && slot_busy_[resp.cpl.cid]) {
        Pending& p = inflight_[resp.cpl.cid];
        if (p.cmd.opcode == NvmeOpcode::kIdentify && p.identify_cb) {
          // Identify carries (block_size, num_blocks) in the payload.
          if (pdu.payload.size() >= 12 && resp.cpl.ok()) {
            u32 bs = 0;
            u64 nb = 0;
            for (int i = 0; i < 4; ++i) bs |= static_cast<u32>(pdu.payload[i]) << (8 * i);
            for (int i = 0; i < 8; ++i) {
              nb |= static_cast<u64>(pdu.payload[4 + i]) << (8 * i);
            }
            p.identify_result = {bs, nb};
          }
        }
      }
      on_resp(resp);
      break;
    }
    case pdu::PduType::kC2HTermReq:
      OAF_WARN("initiator received TermReq: %s",
               pdu.as<pdu::TermReq>()->reason.c_str());
      control_.close();
      break;
    default:
      OAF_WARN("initiator: unexpected PDU type %s", pdu::to_string(pdu.type()));
      break;
  }
}

void NvmfInitiator::on_icresp(const pdu::ICResp& resp) {
  maxh2cdata_ = resp.maxh2cdata != 0 ? resp.maxh2cdata
                                     : static_cast<u32>(opts_.af.chunk_bytes);
  if (resp.shm_granted) {
    if (auto st = cm_.complete_client(resp, ep_); !st) {
      OAF_WARN("shm grant could not be honoured, falling back to TCP: %s",
               st.to_string().c_str());
    }
  }
  connected_ = true;
  if (connect_cb_) {
    auto cb = std::move(connect_cb_);
    connect_cb_ = nullptr;
    cb(Status::ok());
  }
}

// --------------------------------------------------------------------------
// Submission
// --------------------------------------------------------------------------

void NvmfInitiator::arm_timeout(u16 cid) {
  if (opts_.command_timeout_ns <= 0) return;
  const u64 generation = inflight_[cid].generation;
  exec_.schedule_after(opts_.command_timeout_ns, [this, cid, generation] {
    if (dead_ || !slot_busy_[cid]) return;
    if (inflight_[cid].generation != generation) return;  // cid was reused
    timeouts_++;
    abort_connection("command timeout");
  });
}

void NvmfInitiator::abort_connection(const char* reason) {
  if (dead_) return;
  dead_ = true;
  OAF_WARN("initiator: aborting connection (%s)", reason);
  // NVMe-oF error recovery is controller-scoped: terminate the association
  // and fail everything in flight. A late response for a failed cid must
  // not be matched against a new command, so the queue stops here.
  pdu::TermReq term;
  term.from_host = true;
  term.fes = 2;
  term.reason = reason;
  Pdu pdu;
  pdu.header = term;
  control_.send(std::move(pdu));
  control_.close();

  for (u16 cid = 0; cid < inflight_.size(); ++cid) {
    if (!slot_busy_[cid]) continue;
    complete(cid, {cid, pdu::NvmeStatus::kDataTransferError, 0}, 0, 0);
  }
  while (!waiting_.empty()) {
    Pending p = std::move(waiting_.front());
    waiting_.pop_front();
    IoResult res;
    res.cpl.status = pdu::NvmeStatus::kDataTransferError;
    if (p.cb) p.cb(res);
    if (p.view_cb) {
      p.view_cb(Result<ReadView>(make_error(StatusCode::kUnavailable,
                                            "connection aborted")),
                res);
    }
    if (p.identify_cb) {
      p.identify_cb(make_error(StatusCode::kUnavailable, "connection aborted"));
    }
  }
}

void NvmfInitiator::submit_or_queue(Pending pending) {
  if (dead_) {
    IoResult res;
    res.cpl.status = pdu::NvmeStatus::kDataTransferError;
    if (pending.cb) pending.cb(res);
    if (pending.view_cb) {
      pending.view_cb(Result<ReadView>(make_error(StatusCode::kUnavailable,
                                                  "connection aborted")),
                      res);
    }
    if (pending.identify_cb) {
      pending.identify_cb(
          make_error(StatusCode::kUnavailable, "connection aborted"));
    }
    return;
  }
  // Find a free cid round-robin (paper: slots chosen round-robin w.r.t. the
  // application I/O depth).
  for (u32 i = 0; i < opts_.queue_depth; ++i) {
    const u16 cid = static_cast<u16>((next_cid_ + i) % opts_.queue_depth);
    if (!slot_busy_[cid]) {
      next_cid_ = static_cast<u16>((cid + 1) % opts_.queue_depth);
      slot_busy_[cid] = true;
      pending.cmd.cid = cid;
      inflight_[cid] = std::move(pending);
      start_command(cid);
      return;
    }
  }
  waiting_.push_back(std::move(pending));
}

void NvmfInitiator::drain_queue() {
  while (!waiting_.empty()) {
    // Re-check a cid is actually free before popping.
    bool any_free = false;
    for (u32 i = 0; i < opts_.queue_depth; ++i) {
      if (!slot_busy_[i]) {
        any_free = true;
        break;
      }
    }
    if (!any_free) return;
    Pending next = std::move(waiting_.front());
    waiting_.pop_front();
    submit_or_queue(std::move(next));
  }
}

void NvmfInitiator::start_command(u16 cid) {
  Pending& p = inflight_[cid];
  p.submit_time = exec_.now();
  p.generation = next_generation_++;
  governor_.record_op(p.cmd.is_write());
  arm_timeout(cid);
  switch (p.cmd.opcode) {
    case NvmeOpcode::kWrite:
      start_write(cid);
      break;
    case NvmeOpcode::kRead:
      start_read(cid);
      break;
    default:
      send_capsule(cid, /*in_capsule=*/false, DataPlacement::kInline, {});
      break;
  }
}

void NvmfInitiator::send_capsule(u16 cid, bool in_capsule,
                                 DataPlacement placement,
                                 std::vector<u8> inline_payload) {
  Pending& p = inflight_[cid];
  pdu::CapsuleCmd capsule;
  capsule.cmd = p.cmd;
  capsule.in_capsule_data = in_capsule;
  capsule.placement = placement;
  capsule.shm_slot = cid;
  capsule.data_len = p.data_len;
  Pdu pdu;
  pdu.header = capsule;
  pdu.payload = std::move(inline_payload);
  control_.send(std::move(pdu));
}

void NvmfInitiator::start_write(u16 cid) {
  Pending& p = inflight_[cid];
  const bool shm = ep_.shm_ready();
  const bool in_capsule = af::write_in_capsule(opts_.af, shm, p.data_len);

  if (p.zero_copy) {
    // Payload already lives in the slot (acquired at zero_copy_write_begin);
    // publish it and notify the target in-capsule.
    const Status st = ep_.publish_app_buffer(cid, p.data_len, [this, cid] {
      send_capsule(cid, /*in_capsule=*/true, DataPlacement::kShmSlot, {});
    });
    if (!st) complete(cid, {cid, pdu::NvmeStatus::kInternalError, 0}, 0, 0);
    return;
  }

  if (shm) {
    if (in_capsule) {
      const Status st = ep_.stage_payload(cid, p.wdata, [this, cid] {
        send_capsule(cid, /*in_capsule=*/true, DataPlacement::kShmSlot, {});
      });
      if (!st) complete(cid, {cid, pdu::NvmeStatus::kInternalError, 0}, 0, 0);
    } else {
      // Conservative flow on shm (ablation baseline): command first, data
      // staged only after the target's R2T arrives.
      send_capsule(cid, /*in_capsule=*/false, DataPlacement::kShmSlot, {});
    }
    return;
  }

  // TCP-only path.
  if (in_capsule) {
    std::vector<u8> payload(p.wdata.begin(), p.wdata.end());
    send_capsule(cid, /*in_capsule=*/true, DataPlacement::kInline,
                 std::move(payload));
  } else {
    send_capsule(cid, /*in_capsule=*/false, DataPlacement::kInline, {});
  }
}

void NvmfInitiator::start_read(u16 cid) {
  send_capsule(cid, /*in_capsule=*/false,
               ep_.shm_ready() ? DataPlacement::kShmSlot : DataPlacement::kInline,
               {});
}

void NvmfInitiator::on_r2t(const pdu::R2T& r2t) {
  const u16 cid = r2t.cid;
  if (cid >= inflight_.size() || !slot_busy_[cid]) {
    OAF_WARN("R2T for unknown cid %u", cid);
    return;
  }
  if (ep_.shm_ready()) {
    // Conservative flow on shm (pre-optimization design): the granted
    // window moves through the slot one maxh2cdata chunk at a time, each
    // chunk with its own out-of-band notification (Fig 6/7 steps 3 and 4,
    // repeated per chunk) — the serialization §4.4.2's in-capsule flow
    // eliminates.
    shm_write_chunk(cid, r2t.ttag, r2t.offset, r2t.offset + r2t.length);
    return;
  }
  Pending& p = inflight_[cid];
  // TCP: stream the granted window as inline chunks of maxh2cdata.
  const auto chunks =
      af::make_chunks(r2t.length, maxh2cdata_);
  for (const auto& c : chunks) {
    pdu::H2CData h2c;
    h2c.cid = cid;
    h2c.ttag = r2t.ttag;
    h2c.offset = r2t.offset + c.offset;
    h2c.length = c.length;
    h2c.last = c.last;
    h2c.placement = DataPlacement::kInline;
    Pdu pdu;
    pdu.header = h2c;
    const auto slice = p.wdata.subspan(r2t.offset + c.offset, c.length);
    pdu.payload.assign(slice.begin(), slice.end());
    control_.send(std::move(pdu));
  }
}

void NvmfInitiator::shm_write_chunk(u16 cid, u16 ttag, u64 offset, u64 end) {
  if (cid >= inflight_.size() || !slot_busy_[cid]) return;
  Pending& p = inflight_[cid];
  const u64 chunk = std::min<u64>(maxh2cdata_, end - offset);
  const bool last = offset + chunk >= end;
  ep_.stage_payload_when_free(
      cid, p.wdata.subspan(offset, chunk),
      [this, cid, ttag, offset, chunk, last, end] {
        pdu::H2CData h2c;
        h2c.cid = cid;
        h2c.ttag = ttag;
        h2c.offset = offset;
        h2c.length = chunk;
        h2c.last = last;
        h2c.placement = DataPlacement::kShmSlot;
        h2c.shm_slot = cid;
        Pdu pdu;
        pdu.header = h2c;
        control_.send(std::move(pdu));
        if (!last) shm_write_chunk(cid, ttag, offset + chunk, end);
      });
}

// --------------------------------------------------------------------------
// Completion paths
// --------------------------------------------------------------------------

void NvmfInitiator::on_c2h(Pdu pdu) {
  const auto& c2h = *pdu.as<pdu::C2HData>();
  const u16 cid = c2h.cid;
  if (cid >= inflight_.size() || !slot_busy_[cid]) {
    OAF_WARN("C2HData for unknown cid %u", cid);
    return;
  }
  Pending& p = inflight_[cid];

  if (c2h.placement == DataPlacement::kShmSlot) {
    if (p.zero_copy && p.view_cb) {
      // Zero-copy read: hand the application a view of the slot; the slot
      // (and the cid) are reclaimed when the application releases it.
      auto view = ep_.consume_view(c2h.shm_slot);
      IoResult res;
      res.cpl = {cid, pdu::NvmeStatus::kSuccess, 0};
      res.total_ns = exec_.now() - p.submit_time;
      res.io_time_ns = c2h.io_time_ns;
      res.target_time_ns = c2h.target_time_ns;
      auto cb = std::move(p.view_cb);
      if (!view) {
        release_cid(cid);
        cb(view.status(), res);
        return;
      }
      ReadView rv;
      rv.data = view.value();
      rv.release = [this, cid, slot = c2h.shm_slot] {
        (void)ep_.release_slot(slot);
        release_cid(cid);
      };
      ios_completed_++;
      cb(std::move(rv), res);
      return;
    }
    // Staged shm read: copy the published chunk into the application
    // buffer at its offset; the SUCCESS flag (optimized flow) folds the
    // completion into the last data PDU, otherwise CapsuleResp closes it.
    if (c2h.offset + c2h.length > p.rdata.size()) {
      complete(cid, {cid, pdu::NvmeStatus::kDataTransferError, 0}, 0, 0);
      return;
    }
    ep_.consume_payload(
        c2h.shm_slot, p.rdata.subspan(c2h.offset, c2h.length),
        [this, cid, last = c2h.last, success = c2h.success,
         io_ns = c2h.io_time_ns, tgt_ns = c2h.target_time_ns](Result<u64> got) {
          if (!got) {
            complete(cid, {cid, pdu::NvmeStatus::kDataTransferError, 0}, 0, 0);
            return;
          }
          if (last && success) {
            complete(cid, {cid, pdu::NvmeStatus::kSuccess, 0}, io_ns, tgt_ns);
          }
        });
    return;
  }

  // Inline TCP chunk: land it in the application buffer.
  if (c2h.offset + c2h.length > p.rdata.size() ||
      pdu.payload.size() != c2h.length) {
    complete(cid, {cid, pdu::NvmeStatus::kDataTransferError, 0}, 0, 0);
    return;
  }
  std::memcpy(p.rdata.data() + c2h.offset, pdu.payload.data(), c2h.length);
  p.bytes_received += c2h.length;
  if (c2h.last && c2h.success) {
    complete(cid, {cid, pdu::NvmeStatus::kSuccess, 0}, c2h.io_time_ns,
             c2h.target_time_ns);
  }
  // Otherwise the CapsuleResp closes the command.
}

void NvmfInitiator::on_resp(const pdu::CapsuleResp& resp) {
  const u16 cid = resp.cpl.cid;
  if (cid >= inflight_.size() || !slot_busy_[cid]) {
    OAF_WARN("CapsuleResp for unknown cid %u", cid);
    return;
  }
  complete(cid, resp.cpl, resp.io_time_ns, resp.target_time_ns);
}

void NvmfInitiator::release_cid(u16 cid) {
  slot_busy_[cid] = false;
  inflight_[cid] = Pending{};
  drain_queue();
}

void NvmfInitiator::complete(u16 cid, const pdu::NvmeCpl& cpl, u64 io_ns,
                             u64 target_ns) {
  Pending& p = inflight_[cid];
  IoResult res;
  res.cpl = cpl;
  res.total_ns = exec_.now() - p.submit_time;
  res.io_time_ns = io_ns;
  res.target_time_ns = target_ns;

  IoCb cb = std::move(p.cb);
  auto identify_cb = std::move(p.identify_cb);
  auto identify_result = p.identify_result;
  ios_completed_++;
  release_cid(cid);

  if (identify_cb) {
    if (cpl.ok() && identify_result.first != 0) {
      identify_cb(identify_result);
    } else {
      identify_cb(make_error(StatusCode::kUnavailable, "identify failed"));
    }
    return;
  }
  if (cb) cb(res);
}

// --------------------------------------------------------------------------
// Public API
// --------------------------------------------------------------------------

namespace {
pdu::NvmeCmd make_cmd(pdu::NvmeOpcode op, u32 nsid, u64 slba, u64 bytes,
                      u32 block_size) {
  pdu::NvmeCmd cmd;
  cmd.opcode = op;
  cmd.nsid = nsid;
  cmd.slba = slba;
  cmd.nlb = bytes == 0 ? 0 : static_cast<u32>(bytes / block_size - 1);
  return cmd;
}
}  // namespace

void NvmfInitiator::write(u32 nsid, u64 slba, std::span<const u8> data, IoCb cb) {
  Pending p;
  p.cmd = make_cmd(NvmeOpcode::kWrite, nsid, slba, data.size(), kBlockSize);
  p.data_len = data.size();
  p.wdata = data;
  p.cb = std::move(cb);
  submit_or_queue(std::move(p));
}

void NvmfInitiator::read(u32 nsid, u64 slba, std::span<u8> out, IoCb cb) {
  Pending p;
  p.cmd = make_cmd(NvmeOpcode::kRead, nsid, slba, out.size(), kBlockSize);
  p.data_len = out.size();
  p.rdata = out;
  p.cb = std::move(cb);
  submit_or_queue(std::move(p));
}

void NvmfInitiator::flush(u32 nsid, IoCb cb) {
  Pending p;
  p.cmd = make_cmd(NvmeOpcode::kFlush, nsid, 0, 0, kBlockSize);
  p.cb = std::move(cb);
  submit_or_queue(std::move(p));
}

void NvmfInitiator::identify(u32 nsid,
                             std::function<void(Result<std::pair<u32, u64>>)> cb) {
  Pending p;
  p.cmd = make_cmd(NvmeOpcode::kIdentify, nsid, 0, 0, kBlockSize);
  p.identify_cb = std::move(cb);
  submit_or_queue(std::move(p));
}

Result<NvmfInitiator::WriteTicket> NvmfInitiator::zero_copy_write_begin(u64 len) {
  if (!supports_zero_copy()) {
    return make_error(StatusCode::kUnavailable, "zero-copy requires shm");
  }
  if (len > ep_.slot_bytes()) {
    return make_error(StatusCode::kOutOfRange, "length exceeds slot size");
  }
  for (u32 i = 0; i < opts_.queue_depth; ++i) {
    const u16 cid = static_cast<u16>((next_cid_ + i) % opts_.queue_depth);
    if (!slot_busy_[cid]) {
      auto buf = ep_.acquire_app_buffer(cid);
      if (!buf) return buf.status();
      next_cid_ = static_cast<u16>((cid + 1) % opts_.queue_depth);
      slot_busy_[cid] = true;
      return WriteTicket{cid, buf.value()};
    }
  }
  return make_error(StatusCode::kResourceExhausted, "queue depth exceeded");
}

void NvmfInitiator::zero_copy_write(const WriteTicket& ticket, u32 nsid,
                                    u64 slba, u64 len, IoCb cb) {
  Pending p;
  p.cmd = make_cmd(NvmeOpcode::kWrite, nsid, slba, len, kBlockSize);
  p.cmd.cid = ticket.cid;
  p.data_len = len;
  p.zero_copy = true;
  p.cb = std::move(cb);
  inflight_[ticket.cid] = std::move(p);
  start_command(ticket.cid);
}

void NvmfInitiator::zero_copy_read(u32 nsid, u64 slba, u64 len, ReadViewCb cb) {
  if (!supports_zero_copy()) {
    IoResult res;
    res.cpl.status = pdu::NvmeStatus::kInternalError;
    cb(Result<ReadView>(
           make_error(StatusCode::kUnavailable, "zero-copy requires shm")),
       res);
    return;
  }
  Pending p;
  p.cmd = make_cmd(NvmeOpcode::kRead, nsid, slba, len, kBlockSize);
  p.data_len = len;
  p.zero_copy = true;
  p.view_cb = std::move(cb);
  submit_or_queue(std::move(p));
}

}  // namespace oaf::nvmf

// NVMe-oF target connection handler (the SPDK target application, §2.2/4.6).
//
// One NvmfTargetConnection serves one client queue pair: it answers the
// ICReq handshake (delegating shm provisioning to the Connection Manager /
// broker), runs the write flows (in-capsule inline, in-capsule shm slot, or
// conservative R2T with inline-chunk or shm-notify data), serves reads
// (C2HData chunks inline, or a shm slot + out-of-band notification), and
// reports device/processing times in completions for the paper's latency
// breakdowns. A Subsystem shared across connections maps NSIDs to devices.
#pragma once

#include <memory>
#include <unordered_map>

#include "af/busy_poll.h"
#include "af/config.h"
#include "af/connection_manager.h"
#include "af/endpoint.h"
#include "net/channel.h"
#include "ssd/namespace.h"

namespace oaf::nvmf {

struct TargetOptions {
  af::AfConfig af;
  std::string connection_name = "conn0";
};

class NvmfTargetConnection {
 public:
  NvmfTargetConnection(Executor& exec, net::MsgChannel& control,
                       net::Copier& copier, af::ShmBroker& broker,
                       ssd::Subsystem& subsystem, TargetOptions opts);
  ~NvmfTargetConnection();

  NvmfTargetConnection(const NvmfTargetConnection&) = delete;
  NvmfTargetConnection& operator=(const NvmfTargetConnection&) = delete;

  [[nodiscard]] bool shm_active() const { return ep_.shm_ready(); }
  [[nodiscard]] af::AfEndpoint& endpoint() { return ep_; }

  // --- stats ---------------------------------------------------------------
  [[nodiscard]] u64 commands_served() const { return commands_served_; }
  [[nodiscard]] u64 r2ts_sent() const { return r2ts_sent_; }
  [[nodiscard]] u64 bytes_read() const { return bytes_read_; }
  [[nodiscard]] u64 bytes_written() const { return bytes_written_; }

 private:
  /// Per-command transfer context (conservative-flow writes and reads).
  struct IoCtx {
    pdu::NvmeCmd cmd;
    std::vector<u8> buffer;   ///< contiguous staging for the device
    u64 bytes_received = 0;   ///< write reassembly progress
    TimeNs arrival = 0;       ///< capsule arrival time (target_time base)
    DurNs copy_wait = 0;      ///< data-path (shm copy) residency — reported
                              ///< as communication time, not processing
  };

  void on_pdu(pdu::Pdu pdu);
  void on_icreq(const pdu::ICReq& req);
  void on_capsule(pdu::Pdu pdu);
  void on_h2c(pdu::Pdu pdu);

  void start_device_write(u16 cid);
  void handle_read(u16 cid);
  void shm_read_chunk(u16 cid, u64 offset, pdu::NvmeCpl cpl, DurNs io_time);
  void handle_admin(u16 cid);
  void finish_read(u16 cid, pdu::NvmeCpl cpl, DurNs io_time);

  void send_resp(u16 cid, const pdu::NvmeCpl& cpl, DurNs io_time,
                 std::vector<u8> payload = {});
  void send_term(const std::string& reason);

  [[nodiscard]] DurNs target_time(u16 cid, DurNs io_time) const;

  Executor& exec_;
  net::MsgChannel& control_;
  af::ConnectionManager cm_;
  af::AfEndpoint ep_;
  af::BusyPollGovernor governor_;  ///< the target busy-polls its socket too
  ssd::Subsystem& subsystem_;
  TargetOptions opts_;

  std::unordered_map<u16, IoCtx> inflight_;

  u64 commands_served_ = 0;
  u64 r2ts_sent_ = 0;
  u64 bytes_read_ = 0;
  u64 bytes_written_ = 0;
};

}  // namespace oaf::nvmf

// NVMe-oF target connection handler (the SPDK target application, §2.2/4.6).
//
// One NvmfTargetConnection serves one client queue pair: it answers the
// ICReq handshake (delegating shm provisioning to the Connection Manager /
// broker), runs the write flows (in-capsule inline, in-capsule shm slot, or
// conservative R2T with inline-chunk or shm-notify data), serves reads
// (C2HData chunks inline, or a shm slot + out-of-band notification), and
// reports device/processing times in completions for the paper's latency
// breakdowns. A Subsystem shared across connections maps NSIDs to devices.
//
// Resilience extensions: the connection tracks when it last heard from the
// host against a negotiated KATO (so NvmfTargetService can reap dead
// associations), echoes KeepAlive pings, honours runtime ShmDemote notices
// (in-flight slot transfers drain, new data goes inline), verifies the
// optional CRC32C data digest on inline write payloads, and echoes the
// per-attempt gen tag so replayed commands never match stale PDUs.
#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "af/busy_poll.h"
#include "af/config.h"
#include "af/connection_manager.h"
#include "af/exec_serial.h"
#include "af/flow_control.h"
#include "af/endpoint.h"
#include "net/channel.h"
#include "ssd/namespace.h"
#include "telemetry/anomaly.h"
#include "telemetry/attribution.h"
#include "telemetry/telemetry.h"

namespace oaf::nvmf {

struct TargetOptions {
  af::AfConfig af;
  std::string connection_name = "conn0";
  /// KATO applied when the client's ICReq does not advertise one;
  /// 0 = the association never expires from silence.
  DurNs default_kato_ns = 0;

  // --- overload protection (DESIGN.md §12) ---------------------------------
  /// Per-connection cap on concurrently in-flight commands; excess is
  /// rejected with kQueueFull before any state is allocated. 0 = unlimited.
  u32 max_inflight_cmds = 0;
  /// Per-connection cap on staging-buffer bytes held by in-flight (and
  /// zombie) commands; 0 = unlimited.
  u64 max_staging_bytes = 0;
  /// Shared target-wide staging budget, owned by NvmfTargetService and
  /// outliving every connection. Null = no global budget.
  af::ResourceBudget* global_staging = nullptr;
  /// Connect-time admission control: when set, the connection answers the
  /// ICReq with an ICResp carrying admitted=false (plus the reason and
  /// retry hint below) and closes — the service creates reject-mode
  /// connections once it is at --max-conns.
  bool reject_connect = false;
  std::string reject_reason;
  u32 reject_retry_after_ms = 0;

  // --- tail-latency attribution (DESIGN.md §13) ----------------------------
  /// Target-side SLO breaches normally claim a local anomaly capture. When a
  /// host drives two-sided captures for the same breaches (or a single
  /// process hosts both halves and they share one recorder), that local
  /// claim races the host's and consumes its rate-limit budget; setting this
  /// false keeps the watchdog metrics but never claims a capture.
  bool capture_local_breaches = true;
};

class NvmfTargetConnection {
 public:
  NvmfTargetConnection(Executor& exec, net::MsgChannel& control,
                       net::Copier& copier, af::ShmBroker& broker,
                       ssd::Subsystem& subsystem, TargetOptions opts);
  ~NvmfTargetConnection();

  NvmfTargetConnection(const NvmfTargetConnection&) = delete;
  NvmfTargetConnection& operator=(const NvmfTargetConnection&) = delete;

  [[nodiscard]] bool shm_active() const { return ep_.shm_ready(); }
  [[nodiscard]] af::AfEndpoint& endpoint() { return ep_; }
  [[nodiscard]] const std::string& connection_name() const {
    return opts_.connection_name;
  }

  // --- liveness (association reaping) --------------------------------------
  [[nodiscard]] TimeNs last_heard() const OAF_REQUIRES_SHARED(exec_serial_) {
    return last_heard_;
  }
  [[nodiscard]] DurNs kato_ns() const OAF_REQUIRES_SHARED(exec_serial_) {
    return kato_ns_;
  }
  /// KATO expired: the host has been silent longer than the association's
  /// keep-alive timeout allows.
  [[nodiscard]] bool expired(TimeNs now) const
      OAF_REQUIRES_SHARED(exec_serial_) {
    return kato_ns_ > 0 && now - last_heard_ > kato_ns_;
  }
  /// The control channel is gone (client closed or crashed).
  [[nodiscard]] bool closed() const { return !control_.is_open(); }

  // --- multipath (ANA) -----------------------------------------------------
  /// Advertise a new ANA state for this path. Sends an AnaLog PDU with the
  /// next monotonic change_seq; no-op if the state is unchanged. The target
  /// keeps serving whatever arrives in every state — ANA is advisory
  /// steering for the initiator's selector, never admission control.
  void set_ana_state(pdu::AnaState state, const std::string& reason)
      OAF_REQUIRES(exec_serial_);
  [[nodiscard]] pdu::AnaState ana_state() const
      OAF_REQUIRES_SHARED(exec_serial_) {
    return ana_state_;
  }
  [[nodiscard]] u64 ana_changes() const OAF_REQUIRES_SHARED(exec_serial_) {
    return ana_change_seq_;
  }

  // --- command-lifetime robustness -----------------------------------------
  /// Reclaim shm slots stuck mid-transfer by a dead peer. The stuck window
  /// is this association's KATO (the owner is provably unreachable once it
  /// expires), or `fallback` when no KATO was negotiated. Returns the number
  /// of slots reclaimed.
  u32 sweep_orphan_slots(DurNs fallback) OAF_REQUIRES(exec_serial_);

  // --- overload protection -------------------------------------------------
  /// Commands currently in flight on this association.
  [[nodiscard]] u64 inflight_now() const OAF_REQUIRES_SHARED(exec_serial_) {
    return inflight_.size();
  }
  /// Staging bytes currently charged to this association (incl. zombies).
  [[nodiscard]] u64 staging_bytes() const OAF_REQUIRES_SHARED(exec_serial_) {
    return staging_bytes_;
  }
  /// Age of the oldest in-flight command, 0 when idle. A connection whose
  /// oldest command is stuck past the service's stall watermark is a slow
  /// client: it is not draining responses (or its shm consumer wedged) and
  /// is pinning staging memory everyone else needs.
  [[nodiscard]] DurNs oldest_inflight_age(TimeNs now) const
      OAF_REQUIRES_SHARED(exec_serial_);
  /// Shed one admitted-but-not-yet-executing command (oldest first),
  /// completing it with retryable kQueueFull. Returns false when every
  /// in-flight command is pinned by the device or an shm copy.
  bool shed_oldest() OAF_REQUIRES(exec_serial_);
  /// Terminate the association (TermReq + close); the next reap collects
  /// it. Used by the service's slow-client escalation.
  void evict(const std::string& reason) OAF_REQUIRES(exec_serial_);
  [[nodiscard]] bool evicted() const OAF_REQUIRES_SHARED(exec_serial_) {
    return evicted_;
  }

  /// True for a reject-mode association: it exists only to deliver the
  /// ICResp{admitted=false} verdict and then close.
  [[nodiscard]] bool connect_rejected() const { return opts_.reject_connect; }

  /// This connection's executor-affinity capability (af/exec_serial.h).
  /// The owning service drives reaping/sweeps from the same reactor and
  /// asserts this before calling the REQUIRES-annotated API above.
  [[nodiscard]] const af::ExecutorSerial& serial() const
      OAF_RETURN_CAPABILITY(exec_serial_) {
    return exec_serial_;
  }

  // --- stats ---------------------------------------------------------------
  [[nodiscard]] u64 commands_served() const
      OAF_REQUIRES_SHARED(exec_serial_) {
    return commands_served_;
  }
  [[nodiscard]] u64 queue_full_rejects() const
      OAF_REQUIRES_SHARED(exec_serial_) {
    return queue_full_rejects_;
  }
  [[nodiscard]] u64 commands_shed() const OAF_REQUIRES_SHARED(exec_serial_) {
    return commands_shed_;
  }
  [[nodiscard]] u64 r2ts_sent() const OAF_REQUIRES_SHARED(exec_serial_) {
    return r2ts_sent_;
  }
  [[nodiscard]] u64 bytes_read() const OAF_REQUIRES_SHARED(exec_serial_) {
    return bytes_read_;
  }
  [[nodiscard]] u64 bytes_written() const OAF_REQUIRES_SHARED(exec_serial_) {
    return bytes_written_;
  }
  [[nodiscard]] u64 keepalives_answered() const
      OAF_REQUIRES_SHARED(exec_serial_) {
    return keepalives_answered_;
  }
  [[nodiscard]] u64 digest_errors() const OAF_REQUIRES_SHARED(exec_serial_) {
    return digest_errors_;
  }
  [[nodiscard]] u64 shm_demotions() const { return ep_.shm_demotions(); }
  [[nodiscard]] u64 aborts_handled() const
      OAF_REQUIRES_SHARED(exec_serial_) {
    return aborts_handled_;
  }
  [[nodiscard]] u64 commands_aborted() const
      OAF_REQUIRES_SHARED(exec_serial_) {
    return commands_aborted_;
  }
  [[nodiscard]] u64 orphan_slots_reclaimed() const {
    return ep_.orphan_reclaims();
  }
  [[nodiscard]] u64 peer_misbehavior() const { return ep_.peer_misbehavior(); }

 private:
  /// Per-command transfer context (conservative-flow writes and reads).
  struct IoCtx {
    pdu::NvmeCmd cmd;
    std::vector<u8> buffer;   ///< contiguous staging for the device
    u64 bytes_received = 0;   ///< write reassembly progress
    TimeNs arrival = 0;       ///< capsule arrival time (target_time base)
    DurNs copy_wait = 0;      ///< data-path (shm copy) residency — reported
                              ///< as communication time, not processing
    u16 gen = 0;              ///< client attempt tag, echoed in every reply
    u64 seq = 0;              ///< unique per capsule: fences device callbacks
                              ///< against an abort recycling the cid
    u64 span = 0;             ///< trace span id: the wire trace id when the
                              ///< host propagated one, else the local seq.
                              ///< Never used for fencing — only for tracing.
    bool device_busy = false; ///< the device holds `buffer` right now
    u32 copies_in_flight = 0; ///< shm consumes targeting `buffer` right now
    u64 charged = 0;          ///< staging bytes charged against the budgets;
                              ///< moves to the zombie entry on abort
    telemetry::StageLedger ledger;  ///< target-side stage attribution
  };

  void on_pdu(pdu::Pdu pdu) OAF_REQUIRES(exec_serial_);
  void on_icreq(const pdu::ICReq& req) OAF_REQUIRES(exec_serial_);
  void on_capsule(pdu::Pdu pdu) OAF_REQUIRES(exec_serial_);
  void on_h2c(pdu::Pdu pdu) OAF_REQUIRES(exec_serial_);

  void start_device_write(u16 cid) OAF_REQUIRES(exec_serial_);
  void handle_read(u16 cid) OAF_REQUIRES(exec_serial_);
  void shm_read_chunk(u16 cid, u64 offset, pdu::NvmeCpl cpl, DurNs io_time)
      OAF_REQUIRES(exec_serial_);
  void handle_admin(u16 cid) OAF_REQUIRES(exec_serial_);
  void handle_abort(u16 cid) OAF_REQUIRES(exec_serial_);
  void finish_read(u16 cid, pdu::NvmeCpl cpl, DurNs io_time)
      OAF_REQUIRES(exec_serial_);

  /// Consume-path failure: kPeerMisbehavior means the fencing caught a bad
  /// peer — demote the data path and tell the host to stop producing too.
  void note_consume_failure(const Status& st) OAF_REQUIRES(exec_serial_);

  void send_resp(u16 cid, const pdu::NvmeCpl& cpl, DurNs io_time,
                 std::vector<u8> payload = {}) OAF_REQUIRES(exec_serial_);
  void send_term(const std::string& reason) OAF_REQUIRES(exec_serial_);

  /// Serve the peer's half of an anomaly capture from the local ring,
  /// timestamps pre-corrected onto the requester's clock.
  void on_anomaly_req(const pdu::AnomalyReq& req) OAF_REQUIRES(exec_serial_);
  /// Fold a finished command into the attribution window; on a target-side
  /// SLO breach, capture locally (no reverse fetch — the host owns the
  /// cross-process capture).
  void record_attribution(const IoCtx& ctx) OAF_REQUIRES(exec_serial_);

  /// Budget denial: answer `cid` with retryable kQueueFull without ever
  /// creating an IoCtx (the whole point is to allocate nothing).
  void reject_queue_full(u16 cid, u16 gen, const char* why)
      OAF_REQUIRES(exec_serial_);
  /// Return `n` staging bytes to the per-connection and global budgets.
  void release_staging(u64 n) OAF_REQUIRES(exec_serial_);
  /// Erase an in-flight command, returning its staging charge first.
  void erase_inflight(u16 cid) OAF_REQUIRES(exec_serial_);
  /// Drop an aborted command's parked buffer and return its charge.
  void drop_zombie(u64 seq) OAF_REQUIRES(exec_serial_);

  [[nodiscard]] DurNs target_time(u16 cid, DurNs io_time) const
      OAF_REQUIRES_SHARED(exec_serial_);
  [[nodiscard]] u16 gen_of(u16 cid) const OAF_REQUIRES_SHARED(exec_serial_) {
    const auto it = inflight_.find(cid);
    return it != inflight_.end() ? it->second.gen : 0;
  }

  Executor& exec_;
  /// Executor-affinity capability (af/exec_serial.h): this connection's
  /// state is single-reactor. PDU delivery, device completions, and shm
  /// consume continuations all assert it; any new off-reactor touch fails
  /// clang -Wthread-safety. Declared before cm_, which borrows it.
  af::ExecutorSerial exec_serial_;
  net::MsgChannel& control_;
  af::ConnectionManager cm_;
  af::AfEndpoint ep_;
  af::BusyPollGovernor governor_;  ///< the target busy-polls its socket too
  ssd::Subsystem& subsystem_;
  TargetOptions opts_;

  std::unordered_map<u16, IoCtx> inflight_ OAF_GUARDED_BY(exec_serial_);
  /// Cids whose command was aborted while transfer PDUs could still be in
  /// flight: late H2CData for them is discarded instead of terminating the
  /// association. An entry clears when its cid is reused.
  std::unordered_set<u16> recently_aborted_ OAF_GUARDED_BY(exec_serial_);
  /// Staging buffers of aborted commands whose device I/O is still running;
  /// keyed by ctx seq and dropped when the (swallowed) completion fires.
  /// The budget charge travels with the buffer: the memory is still pinned.
  struct ZombieBuffer {
    std::vector<u8> buffer;
    u64 charged = 0;
  };
  std::unordered_map<u64, ZombieBuffer> zombie_buffers_
      OAF_GUARDED_BY(exec_serial_);
  u64 next_ctx_seq_ OAF_GUARDED_BY(exec_serial_) = 1;
  TimeNs last_heard_ OAF_GUARDED_BY(exec_serial_) = 0;
  DurNs kato_ns_ OAF_GUARDED_BY(exec_serial_) = 0;
  bool data_digest_ OAF_GUARDED_BY(exec_serial_) = false;
  pdu::AnaState ana_state_ OAF_GUARDED_BY(exec_serial_) =
      pdu::AnaState::kOptimized;
  u64 ana_change_seq_
      OAF_GUARDED_BY(exec_serial_) = 0;  ///< notices sent; monotonic
  /// Guards device completions and shm-copy continuations against the
  /// association reaper destroying this connection while they are queued.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  u64 staging_bytes_
      OAF_GUARDED_BY(exec_serial_) = 0;  ///< live per-connection charge
  bool evicted_ OAF_GUARDED_BY(exec_serial_) = false;

  u64 commands_served_ OAF_GUARDED_BY(exec_serial_) = 0;
  u64 queue_full_rejects_ OAF_GUARDED_BY(exec_serial_) = 0;
  u64 commands_shed_ OAF_GUARDED_BY(exec_serial_) = 0;
  u64 r2ts_sent_ OAF_GUARDED_BY(exec_serial_) = 0;
  u64 bytes_read_ OAF_GUARDED_BY(exec_serial_) = 0;
  u64 bytes_written_ OAF_GUARDED_BY(exec_serial_) = 0;
  u64 keepalives_answered_ OAF_GUARDED_BY(exec_serial_) = 0;
  u64 digest_errors_ OAF_GUARDED_BY(exec_serial_) = 0;
  u64 aborts_handled_ OAF_GUARDED_BY(exec_serial_) = 0;
  u64 commands_aborted_ OAF_GUARDED_BY(exec_serial_) = 0;

  /// Cached process-global telemetry handles (DESIGN.md §9). The trace track
  /// is this connection's target lane; spans pair with the initiator's via
  /// the shared timeline. Null / zero when telemetry is compiled out.
  struct Tel {
    u32 track = 0;
    u32 anomaly_track = 0;  ///< lane in the always-on anomaly ring
    telemetry::Counter* commands = nullptr;
    telemetry::Counter* r2ts = nullptr;
    telemetry::Counter* bytes_read = nullptr;
    telemetry::Counter* bytes_written = nullptr;
    telemetry::Counter* keepalives = nullptr;
    telemetry::Counter* digest_errors = nullptr;
    telemetry::Counter* aborts_handled = nullptr;
    telemetry::Counter* cmds_aborted = nullptr;
    telemetry::Counter* queue_full = nullptr;
    telemetry::Counter* shed = nullptr;
  } tel_;
  void init_telemetry() OAF_REQUIRES(exec_serial_);
  /// End the command span for a still-inflight cid (no-op if unknown).
  void trace_end_cmd(u16 cid) OAF_REQUIRES(exec_serial_);
};

}  // namespace oaf::nvmf

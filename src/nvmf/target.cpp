#include "nvmf/target.h"

#include <cstring>

#include "af/chunker.h"
#include "af/flow_control.h"
#include "common/log.h"
#include "pdu/crc32.h"

namespace oaf::nvmf {

using pdu::DataPlacement;
using pdu::NvmeOpcode;
using pdu::NvmeStatus;
using pdu::Pdu;

NvmfTargetConnection::NvmfTargetConnection(Executor& exec,
                                           net::MsgChannel& control,
                                           net::Copier& copier,
                                           af::ShmBroker& broker,
                                           ssd::Subsystem& subsystem,
                                           TargetOptions opts)
    : exec_(exec),
      control_(control),
      cm_(broker),
      ep_(af::Role::kTarget, exec, copier, opts.af),
      governor_(opts.af.busy_poll, opts.af.static_poll_ns),
      subsystem_(subsystem),
      opts_(std::move(opts)) {
  last_heard_ = exec_.now();
  kato_ns_ = opts_.default_kato_ns;
  control_.set_handler([this, alive = alive_](Pdu p) {
    if (*alive) on_pdu(std::move(p));
  });
  governor_.attach(&control_);
}

NvmfTargetConnection::~NvmfTargetConnection() {
  *alive_ = false;
  if (ep_.shm_attached()) {
    (void)cm_.release(opts_.connection_name);
  }
}

void NvmfTargetConnection::on_pdu(Pdu pdu) {
  last_heard_ = exec_.now();
  switch (pdu.type()) {
    case pdu::PduType::kICReq:
      on_icreq(*pdu.as<pdu::ICReq>());
      break;
    case pdu::PduType::kCapsuleCmd:
      on_capsule(std::move(pdu));
      break;
    case pdu::PduType::kH2CData:
      on_h2c(std::move(pdu));
      break;
    case pdu::PduType::kKeepAlive: {
      // Echo the ping so the host's dead-peer detection stays quiet.
      const auto& ka = *pdu.as<pdu::KeepAlive>();
      if (ka.from_host) {
        pdu::KeepAlive echo;
        echo.from_host = false;
        echo.seq = ka.seq;
        Pdu out;
        out.header = echo;
        keepalives_answered_++;
        control_.send(std::move(out));
      }
      break;
    }
    case pdu::PduType::kShmDemote:
      // Host demoted the data path at run time: stop staging new payloads
      // in slots; whatever is already parked drains via shm_attached().
      OAF_WARN("target: client demoted shm (%s)",
               pdu.as<pdu::ShmDemote>()->reason.c_str());
      (void)ep_.demote_shm();
      break;
    case pdu::PduType::kH2CTermReq:
      OAF_WARN("target received TermReq: %s", pdu.as<pdu::TermReq>()->reason.c_str());
      control_.close();
      break;
    default:
      OAF_WARN("target: unexpected PDU type %s", pdu::to_string(pdu.type()));
      break;
  }
}

void NvmfTargetConnection::on_icreq(const pdu::ICReq& req) {
  if (req.kato_ns > 0) kato_ns_ = static_cast<DurNs>(req.kato_ns);
  data_digest_ = req.data_digest && opts_.af.data_digest;
  auto resp = cm_.accept_target(req, opts_.connection_name, ep_);
  Pdu out;
  if (!resp) {
    OAF_WARN("handshake failed: %s", resp.status().to_string().c_str());
    pdu::ICResp fallback;
    fallback.pfv = req.pfv;
    fallback.maxh2cdata = static_cast<u32>(opts_.af.chunk_bytes);
    fallback.shm_granted = false;
    fallback.data_digest = data_digest_;
    out.header = fallback;
  } else {
    out.header = resp.value();
  }
  control_.send(std::move(out));
}

DurNs NvmfTargetConnection::target_time(u16 cid, DurNs io_time) const {
  const auto it = inflight_.find(cid);
  if (it == inflight_.end()) return 0;
  // Processing time at the target: end-to-end residency minus device time
  // and minus data-path copy residency (which belongs to the breakdown's
  // communication component, Figs 3/12).
  const DurNs spent =
      exec_.now() - it->second.arrival - io_time - it->second.copy_wait;
  return spent > 0 ? spent : 0;
}

void NvmfTargetConnection::send_resp(u16 cid, const pdu::NvmeCpl& cpl,
                                     DurNs io_time, std::vector<u8> payload) {
  pdu::CapsuleResp resp;
  resp.cpl = cpl;
  resp.io_time_ns = static_cast<u64>(io_time);
  resp.target_time_ns = static_cast<u64>(target_time(cid, io_time));
  resp.gen = gen_of(cid);
  Pdu pdu;
  pdu.header = resp;
  pdu.payload = std::move(payload);
  inflight_.erase(cid);
  commands_served_++;
  control_.send(std::move(pdu));
}

void NvmfTargetConnection::send_term(const std::string& reason) {
  pdu::TermReq term;
  term.from_host = false;
  term.fes = 1;
  term.reason = reason;
  Pdu pdu;
  pdu.header = term;
  control_.send(std::move(pdu));
}

// --------------------------------------------------------------------------
// Command capsules
// --------------------------------------------------------------------------

void NvmfTargetConnection::on_capsule(Pdu pdu) {
  const auto& capsule = *pdu.as<pdu::CapsuleCmd>();
  const u16 cid = capsule.cmd.cid;
  if (inflight_.contains(cid)) {
    OAF_ERROR("duplicate cid %u: old opcode %d, new opcode %d, inflight=%zu",
              cid, static_cast<int>(inflight_[cid].cmd.opcode),
              static_cast<int>(capsule.cmd.opcode), inflight_.size());
    send_term("duplicate cid");
    return;
  }
  IoCtx& ctx = inflight_[cid];
  ctx.cmd = capsule.cmd;
  ctx.arrival = exec_.now();
  ctx.gen = capsule.gen;
  governor_.record_op(capsule.cmd.is_write());

  ssd::Device* device = subsystem_.find(capsule.cmd.nsid);
  if (device == nullptr &&
      (capsule.cmd.is_read() || capsule.cmd.is_write() ||
       capsule.cmd.opcode == NvmeOpcode::kFlush)) {
    send_resp(cid, {cid, NvmeStatus::kInvalidNamespace, 0}, 0);
    return;
  }

  switch (capsule.cmd.opcode) {
    case NvmeOpcode::kWrite: {
      const u64 len = capsule.cmd.data_bytes(device->block_size());
      if (capsule.data_len != len) {
        send_resp(cid, {cid, NvmeStatus::kInvalidField, 0}, 0);
        return;
      }
      // The DPDK-managed staging buffer the device DMA-copies from; the
      // copy from shm into this buffer is the one the paper says cannot be
      // avoided (§4.4.3).
      ctx.buffer.resize(len);

      if (capsule.in_capsule_data) {
        if (capsule.placement == DataPlacement::kShmSlot) {
          // shm_attached (not shm_ready): a payload parked before a runtime
          // demotion must still drain from its slot.
          if (!ep_.shm_attached()) {
            send_resp(cid, {cid, NvmeStatus::kDataTransferError, 0}, 0);
            return;
          }
          const TimeNs copy_start = exec_.now();
          ep_.consume_payload(
              capsule.shm_slot, ctx.buffer,
              [this, alive = alive_, cid, len, copy_start](Result<u64> got) {
                if (!*alive) return;
                if (!got || got.value() != len) {
                  send_resp(cid, {cid, NvmeStatus::kDataTransferError, 0}, 0);
                  return;
                }
                if (auto it2 = inflight_.find(cid); it2 != inflight_.end()) {
                  it2->second.copy_wait += exec_.now() - copy_start;
                }
                start_device_write(cid);
              });
        } else {
          if (pdu.payload.size() != len) {
            send_resp(cid, {cid, NvmeStatus::kDataTransferError, 0}, 0);
            return;
          }
          std::memcpy(ctx.buffer.data(), pdu.payload.data(), len);
          start_device_write(cid);
        }
        return;
      }

      // Conservative flow: grant the transfer window (Fig 7 step 2).
      pdu::R2T r2t;
      r2t.cid = cid;
      r2t.ttag = cid;
      r2t.offset = 0;
      r2t.length = len;
      r2t.gen = ctx.gen;
      r2ts_sent_++;
      Pdu out;
      out.header = r2t;
      control_.send(std::move(out));
      return;
    }
    case NvmeOpcode::kRead:
      handle_read(cid);
      return;
    default:
      handle_admin(cid);
      return;
  }
}

void NvmfTargetConnection::on_h2c(Pdu pdu) {
  const auto& h2c = *pdu.as<pdu::H2CData>();
  const u16 cid = h2c.cid;
  const auto it = inflight_.find(cid);
  if (it == inflight_.end()) {
    send_term("H2CData for unknown cid");
    return;
  }
  IoCtx& ctx = it->second;
  if (h2c.gen != 0 && ctx.gen != 0 && h2c.gen != ctx.gen) {
    OAF_WARN("stale H2CData for cid %u (gen %u != %u)", cid, h2c.gen, ctx.gen);
    return;
  }
  if (h2c.offset + h2c.length > ctx.buffer.size()) {
    send_resp(cid, {cid, NvmeStatus::kDataTransferError, 0}, 0);
    return;
  }

  if (h2c.placement == DataPlacement::kShmSlot) {
    if (!ep_.shm_attached()) {
      send_resp(cid, {cid, NvmeStatus::kDataTransferError, 0}, 0);
      return;
    }
    ep_.consume_payload(
        h2c.shm_slot,
        std::span<u8>(ctx.buffer.data() + h2c.offset, h2c.length),
        [this, alive = alive_, cid, len = h2c.length](Result<u64> got) {
          if (!*alive) return;
          if (!got || got.value() != len) {
            send_resp(cid, {cid, NvmeStatus::kDataTransferError, 0}, 0);
            return;
          }
          auto it2 = inflight_.find(cid);
          if (it2 == inflight_.end()) return;
          it2->second.bytes_received += len;
          if (it2->second.bytes_received >= it2->second.buffer.size()) {
            start_device_write(cid);
          }
        });
    return;
  }

  if (pdu.payload.size() != h2c.length) {
    send_resp(cid, {cid, NvmeStatus::kDataTransferError, 0}, 0);
    return;
  }
  if (data_digest_ && h2c.data_digest != 0) {
    const u32 computed = pdu::crc32c(
        std::span<const u8>(pdu.payload.data(), pdu.payload.size()));
    if (computed != h2c.data_digest) {
      digest_errors_++;
      OAF_WARN("H2CData digest mismatch for cid %u", cid);
      // Retryable at the host: the command replays on a fresh gen rather
      // than landing corrupt bytes on the device.
      send_resp(cid, {cid, NvmeStatus::kTransientTransportError, 0}, 0);
      return;
    }
  }
  std::memcpy(ctx.buffer.data() + h2c.offset, pdu.payload.data(), h2c.length);
  ctx.bytes_received += h2c.length;
  if (ctx.bytes_received >= ctx.buffer.size()) {
    start_device_write(cid);
  }
}

// --------------------------------------------------------------------------
// Device execution
// --------------------------------------------------------------------------

void NvmfTargetConnection::start_device_write(u16 cid) {
  auto it = inflight_.find(cid);
  if (it == inflight_.end()) return;
  IoCtx& ctx = it->second;
  ssd::Device* device = subsystem_.find(ctx.cmd.nsid);
  bytes_written_ += ctx.buffer.size();
  device->submit_write(ctx.cmd, ctx.buffer,
                       [this, alive = alive_, cid](pdu::NvmeCpl cpl,
                                                   DurNs io_time) {
                         if (!*alive) return;
                         send_resp(cid, cpl, io_time);
                       });
}

void NvmfTargetConnection::handle_read(u16 cid) {
  auto it = inflight_.find(cid);
  if (it == inflight_.end()) return;
  IoCtx& ctx = it->second;
  ssd::Device* device = subsystem_.find(ctx.cmd.nsid);
  const u64 len = ctx.cmd.data_bytes(device->block_size());
  ctx.buffer.resize(len);
  device->submit_read(ctx.cmd, ctx.buffer,
                      [this, alive = alive_, cid](pdu::NvmeCpl cpl,
                                                  DurNs io_time) {
                        if (!*alive) return;
                        finish_read(cid, cpl, io_time);
                      });
}

void NvmfTargetConnection::finish_read(u16 cid, pdu::NvmeCpl cpl, DurNs io_time) {
  auto it = inflight_.find(cid);
  if (it == inflight_.end()) return;
  IoCtx& ctx = it->second;
  if (!cpl.ok()) {
    send_resp(cid, cpl, io_time);
    return;
  }
  bytes_read_ += ctx.buffer.size();

  const bool fold_completion = af::read_success_flag(opts_.af, ep_.shm_ready());

  if (ep_.shm_ready()) {
    if (fold_completion) {
      // Optimized shm flow: the whole payload parks in its slot, one
      // notification with the SUCCESS flag closes the command (§4.4.2).
      const TimeNs copy_start = exec_.now();
      const Status st = ep_.stage_payload(
          cid, ctx.buffer,
          [this, alive = alive_, cid, io_time, copy_start] {
            if (!*alive) return;
            if (auto it2 = inflight_.find(cid); it2 != inflight_.end()) {
              it2->second.copy_wait += exec_.now() - copy_start;
            }
            pdu::C2HData c2h;
            c2h.cid = cid;
            c2h.offset = 0;
            const auto it2 = inflight_.find(cid);
            c2h.length = it2 != inflight_.end() ? it2->second.buffer.size() : 0;
            c2h.last = true;
            c2h.success = true;
            c2h.placement = DataPlacement::kShmSlot;
            c2h.shm_slot = cid;
            c2h.io_time_ns = static_cast<u64>(io_time);
            c2h.target_time_ns = static_cast<u64>(target_time(cid, io_time));
            c2h.gen = gen_of(cid);
            Pdu pdu;
            pdu.header = c2h;
            inflight_.erase(cid);
            commands_served_++;
            control_.send(std::move(pdu));
          });
      if (!st) {
        send_resp(cid, {cid, NvmeStatus::kDataTransferError, 0}, io_time);
      }
      return;
    }
    // Conservative flow on shm (pre-optimization design): the payload moves
    // through the slot one maxh2cdata-sized chunk at a time — each chunk
    // waits for the client to drain the previous one, and every chunk costs
    // an out-of-band notification. This chunk serialization plus the extra
    // messages is precisely what the shm flow control removes.
    shm_read_chunk(cid, 0, cpl, io_time);
    return;
  }

  // TCP: stream inline chunks of the configured chunk size (§4.5).
  const auto chunks = af::make_chunks(ctx.buffer.size(), opts_.af.chunk_bytes);
  for (const auto& c : chunks) {
    pdu::C2HData c2h;
    c2h.cid = cid;
    c2h.offset = c.offset;
    c2h.length = c.length;
    c2h.last = c.last;
    c2h.success = c.last && fold_completion;
    c2h.placement = DataPlacement::kInline;
    c2h.gen = ctx.gen;
    if (c.last) {
      c2h.io_time_ns = static_cast<u64>(io_time);
      c2h.target_time_ns = static_cast<u64>(target_time(cid, io_time));
    }
    Pdu pdu;
    pdu.payload.assign(ctx.buffer.begin() + static_cast<std::ptrdiff_t>(c.offset),
                       ctx.buffer.begin() +
                           static_cast<std::ptrdiff_t>(c.offset + c.length));
    if (data_digest_) {
      c2h.data_digest = pdu::crc32c(
          std::span<const u8>(pdu.payload.data(), pdu.payload.size()));
    }
    pdu.header = c2h;
    control_.send(std::move(pdu));
  }
  if (!fold_completion) {
    send_resp(cid, cpl, io_time);
  } else {
    inflight_.erase(cid);
    commands_served_++;
  }
}

void NvmfTargetConnection::shm_read_chunk(u16 cid, u64 offset,
                                          pdu::NvmeCpl cpl, DurNs io_time) {
  const auto it = inflight_.find(cid);
  if (it == inflight_.end()) return;
  IoCtx& ctx = it->second;
  const u64 total = ctx.buffer.size();
  const u64 chunk = std::min<u64>(opts_.af.chunk_bytes, total - offset);
  const bool last = offset + chunk >= total;
  ep_.stage_payload_when_free(
      cid, std::span<const u8>(ctx.buffer.data() + offset, chunk),
      [this, alive = alive_, cid, offset, chunk, last, cpl, io_time,
       gen = ctx.gen] {
        if (!*alive) return;
        pdu::C2HData c2h;
        c2h.cid = cid;
        c2h.offset = offset;
        c2h.length = chunk;
        c2h.last = last;
        c2h.success = false;
        c2h.placement = DataPlacement::kShmSlot;
        c2h.shm_slot = cid;
        c2h.gen = gen;
        Pdu pdu;
        pdu.header = c2h;
        control_.send(std::move(pdu));
        if (last) {
          send_resp(cid, cpl, io_time);
        } else {
          shm_read_chunk(cid, offset + chunk, cpl, io_time);
        }
      });
}

void NvmfTargetConnection::handle_admin(u16 cid) {
  auto it = inflight_.find(cid);
  if (it == inflight_.end()) return;
  IoCtx& ctx = it->second;

  if (ctx.cmd.opcode == NvmeOpcode::kIdentify) {
    ssd::Device* device = subsystem_.find(ctx.cmd.nsid);
    pdu::NvmeCpl cpl{cid, NvmeStatus::kSuccess, 0};
    std::vector<u8> payload;
    if (device == nullptr) {
      cpl.status = NvmeStatus::kInvalidNamespace;
    } else {
      payload.resize(12);
      const u32 bs = device->block_size();
      const u64 nb = device->num_blocks();
      for (int i = 0; i < 4; ++i) payload[i] = static_cast<u8>(bs >> (8 * i));
      for (int i = 0; i < 8; ++i) payload[4 + i] = static_cast<u8>(nb >> (8 * i));
    }
    send_resp(cid, cpl, 0, std::move(payload));
    return;
  }

  if (ctx.cmd.opcode == NvmeOpcode::kFlush) {
    ssd::Device* device = subsystem_.find(ctx.cmd.nsid);
    device->submit_other(ctx.cmd, [this, alive = alive_, cid](pdu::NvmeCpl cpl,
                                                              DurNs io_time) {
      if (!*alive) return;
      send_resp(cid, cpl, io_time);
    });
    return;
  }

  send_resp(cid, {cid, NvmeStatus::kInvalidOpcode, 0}, 0);
}

}  // namespace oaf::nvmf

#include "nvmf/target.h"

#include <algorithm>
#include <cstring>

#include <unistd.h>

#include "af/chunker.h"
#include "af/flow_control.h"
#include "common/log.h"
#include "nvmf/trace_names.h"
#include "pdu/crc32.h"
#include "telemetry/flight.h"
#include "telemetry/prof/cost_center.h"

namespace oaf::nvmf {

using pdu::DataPlacement;
using pdu::NvmeOpcode;
using pdu::NvmeStatus;
using pdu::Pdu;

NvmfTargetConnection::NvmfTargetConnection(Executor& exec,
                                           net::MsgChannel& control,
                                           net::Copier& copier,
                                           af::ShmBroker& broker,
                                           ssd::Subsystem& subsystem,
                                           TargetOptions opts)
    : exec_(exec),
      control_(control),
      cm_(broker, exec_serial_),
      ep_(af::Role::kTarget, exec, copier, opts.af),
      governor_(opts.af.busy_poll, opts.af.static_poll_ns),
      subsystem_(subsystem),
      opts_(std::move(opts)) {
  last_heard_ = exec_.now();
  kato_ns_ = opts_.default_kato_ns;
  control_.set_handler([this, alive = alive_](Pdu p) {
    exec_serial_.assume_held();  // channel delivers on the reactor
    if (*alive) on_pdu(std::move(p));
  });
  governor_.attach(&control_);
  init_telemetry();
}

void NvmfTargetConnection::init_telemetry() {
#if OAF_TELEMETRY_COMPILED
  auto& m = telemetry::metrics();
  tel_.track = telemetry::tracer().track("target:" + opts_.connection_name);
  tel_.anomaly_track =
      telemetry::anomaly().track("target:" + opts_.connection_name);
  tel_.commands = m.counter("oaf_target_commands_total",
                            "Commands fully served by target connections");
  tel_.r2ts = m.counter("oaf_target_r2ts_total",
                        "R2T transfer grants sent (conservative flow)");
  tel_.bytes_read = m.counter("oaf_target_bytes_read_total",
                              "Payload bytes served to hosts by reads");
  tel_.bytes_written = m.counter("oaf_target_bytes_written_total",
                                 "Payload bytes landed on devices by writes");
  tel_.keepalives = m.counter("oaf_target_keepalives_answered_total",
                              "Keep-alive pings echoed back to hosts");
  tel_.digest_errors = m.counter("oaf_target_digest_errors_total",
                                 "Inline write payload digest mismatches");
  tel_.aborts_handled = m.counter("oaf_target_aborts_handled_total",
                                  "NVMe Abort commands processed");
  tel_.cmds_aborted = m.counter("oaf_target_commands_aborted_total",
                                "In-flight commands cancelled by Abort");
  tel_.queue_full = m.counter("oaf_target_queue_full_rejects_total",
                              "Commands rejected with kQueueFull by a "
                              "resource budget before admission");
  tel_.shed = m.counter("oaf_target_commands_shed_total",
                        "Admitted commands shed with kQueueFull by the "
                        "overload high-watermark policy");
#endif
}

void NvmfTargetConnection::trace_end_cmd(u16 cid) {
  (void)cid;
  OAF_TEL({
    const auto it = inflight_.find(cid);
    if (it != inflight_.end()) {
      telemetry::tracer().end(tel_.track, "target_io",
                              op_span_name(it->second.cmd.opcode),
                              it->second.span, exec_.now());
      telemetry::anomaly().ring().end(tel_.anomaly_track, "target_io",
                                      op_span_name(it->second.cmd.opcode),
                                      it->second.span, exec_.now());
    }
  });
}

NvmfTargetConnection::~NvmfTargetConnection() {
  *alive_ = false;
  // The global budget outlives this connection (the service owns it);
  // everything still charged here — in-flight and zombie alike — must flow
  // back or a reaped association would leak target-wide capacity forever.
  for (const auto& [cid, ctx] : inflight_) release_staging(ctx.charged);
  for (const auto& [seq, z] : zombie_buffers_) release_staging(z.charged);
  if (ep_.shm_attached()) {
    cm_.serial()->assume_held();  // cm_ borrowed this connection's serial
    (void)cm_.release(opts_.connection_name);
  }
}

void NvmfTargetConnection::on_pdu(Pdu pdu) {
  last_heard_ = exec_.now();
  switch (pdu.type()) {
    case pdu::PduType::kICReq:
      on_icreq(*pdu.as<pdu::ICReq>());
      break;
    case pdu::PduType::kCapsuleCmd:
      on_capsule(std::move(pdu));
      break;
    case pdu::PduType::kH2CData:
      on_h2c(std::move(pdu));
      break;
    case pdu::PduType::kKeepAlive: {
      // Echo the ping so the host's dead-peer detection stays quiet.
      const auto& ka = *pdu.as<pdu::KeepAlive>();
      if (ka.from_host) {
        pdu::KeepAlive echo;
        echo.from_host = false;
        echo.seq = ka.seq;
        // NTP-style clock echo: reflect the host's transmit stamp and add
        // our own so the initiator can estimate the clock offset.
        echo.echo_t_ns = ka.t_sent_ns;
        echo.t_sent_ns = static_cast<u64>(exec_.now());
        Pdu out;
        out.header = echo;
        keepalives_answered_++;
        OAF_TEL(telemetry::bump(tel_.keepalives));
        control_.send(std::move(out));
      }
      break;
    }
    case pdu::PduType::kShmDemote:
      // Host demoted the data path at run time: stop staging new payloads
      // in slots; whatever is already parked drains via shm_attached().
      OAF_WARN("target: client demoted shm (%s)",
               pdu.as<pdu::ShmDemote>()->reason.c_str());
      (void)ep_.demote_shm();
      break;
    case pdu::PduType::kAnomalyReq:
      on_anomaly_req(*pdu.as<pdu::AnomalyReq>());
      break;
    case pdu::PduType::kH2CTermReq:
      OAF_WARN("target received TermReq: %s", pdu.as<pdu::TermReq>()->reason.c_str());
      telemetry::flight().note("resilience", "termreq_received", 0, exec_.now());
      (void)telemetry::flight().dump_now("target received TermReq from host");
      control_.close();
      break;
    default:
      OAF_WARN("target: unexpected PDU type %s", pdu::to_string(pdu.type()));
      break;
  }
}

void NvmfTargetConnection::on_icreq(const pdu::ICReq& req) {
  if (opts_.reject_connect) {
    // Admission control: answer with an explicit verdict (so the host backs
    // off instead of diagnosing a dead target) and close. No shm, no KATO,
    // no state — the association exists only long enough to say no.
    pdu::ICResp reject;
    reject.pfv = req.pfv;
    reject.admitted = false;
    reject.retry_after_ms = opts_.reject_retry_after_ms;
    reject.reject_reason = opts_.reject_reason;
    telemetry::flight().note("overload", "connect_rejected", 0, exec_.now());
    OAF_WARN("target %s: rejecting connect (%s)",
             opts_.connection_name.c_str(), opts_.reject_reason.c_str());
    Pdu out;
    out.header = reject;
    control_.send(std::move(out));
    // Defer the hangup one executor turn: queued transports (the sim pipe)
    // drop undelivered PDUs on close, so a synchronous close here would
    // outrun the verdict we just sent.
    exec_.post([this, alive = alive_] {
      exec_serial_.assume_held();
      if (!*alive) return;
      control_.close();
    });
    return;
  }
  if (req.kato_ns > 0) kato_ns_ = static_cast<DurNs>(req.kato_ns);
  data_digest_ = req.data_digest && opts_.af.data_digest;
  cm_.serial()->assume_held();  // cm_ borrowed this connection's serial
  auto resp = cm_.accept_target(req, opts_.connection_name, ep_);
  Pdu out;
  if (!resp) {
    OAF_WARN("handshake failed: %s", resp.status().to_string().c_str());
    pdu::ICResp fallback;
    fallback.pfv = req.pfv;
    fallback.maxh2cdata = static_cast<u32>(opts_.af.chunk_bytes);
    fallback.shm_granted = false;
    fallback.data_digest = data_digest_;
    out.header = fallback;
  } else {
    out.header = resp.value();
  }
  control_.send(std::move(out));
}

DurNs NvmfTargetConnection::target_time(u16 cid, DurNs io_time) const {
  const auto it = inflight_.find(cid);
  if (it == inflight_.end()) return 0;
  // Processing time at the target: end-to-end residency minus device time
  // and minus data-path copy residency (which belongs to the breakdown's
  // communication component, Figs 3/12).
  const DurNs spent =
      exec_.now() - it->second.arrival - io_time - it->second.copy_wait;
  return spent > 0 ? spent : 0;
}

void NvmfTargetConnection::send_resp(u16 cid, const pdu::NvmeCpl& cpl,
                                     DurNs io_time, std::vector<u8> payload) {
  const telemetry::prof::CostScope cost(
      telemetry::prof::CostCenter::kComplete);
  pdu::CapsuleResp resp;
  resp.cpl = cpl;
  resp.io_time_ns = static_cast<u64>(io_time);
  resp.target_time_ns = static_cast<u64>(target_time(cid, io_time));
  resp.gen = gen_of(cid);
  Pdu pdu;
  pdu.header = resp;
  pdu.payload = std::move(payload);
  trace_end_cmd(cid);
  {
    const auto it = inflight_.find(cid);
    if (it != inflight_.end()) record_attribution(it->second);
  }
  erase_inflight(cid);
  commands_served_++;
  OAF_TEL(telemetry::bump(tel_.commands));
  control_.send(std::move(pdu));
}

void NvmfTargetConnection::reject_queue_full(u16 cid, u16 gen,
                                             const char* why) {
  queue_full_rejects_++;
  OAF_TEL(telemetry::bump(tel_.queue_full));
  telemetry::flight().note("overload", "queue_full", cid, exec_.now());
  OAF_WARN_RL("target %s: kQueueFull for cid %u (%s)",
              opts_.connection_name.c_str(), cid, why);
  pdu::CapsuleResp resp;
  resp.cpl = {cid, NvmeStatus::kQueueFull, 0};
  resp.gen = gen;
  Pdu pdu;
  pdu.header = resp;
  control_.send(std::move(pdu));
}

void NvmfTargetConnection::release_staging(u64 n) {
  if (n == 0) return;
  staging_bytes_ = n > staging_bytes_ ? 0 : staging_bytes_ - n;
  if (opts_.global_staging != nullptr) opts_.global_staging->release(n);
}

void NvmfTargetConnection::erase_inflight(u16 cid) {
  const auto it = inflight_.find(cid);
  if (it == inflight_.end()) return;
  release_staging(it->second.charged);
  inflight_.erase(it);
}

void NvmfTargetConnection::drop_zombie(u64 seq) {
  const auto it = zombie_buffers_.find(seq);
  if (it == zombie_buffers_.end()) return;
  release_staging(it->second.charged);
  zombie_buffers_.erase(it);
}

DurNs NvmfTargetConnection::oldest_inflight_age(TimeNs now) const {
  DurNs oldest = 0;
  for (const auto& [cid, ctx] : inflight_) {
    const DurNs age = now - ctx.arrival;
    if (age > oldest) oldest = age;
  }
  return oldest;
}

bool NvmfTargetConnection::shed_oldest() {
  // Oldest admitted command that nothing else references: a device I/O or
  // an in-flight shm copy pins its buffer, so those must complete normally.
  u16 victim = 0;
  TimeNs best = 0;
  bool found = false;
  for (const auto& [cid, ctx] : inflight_) {
    if (ctx.device_busy || ctx.copies_in_flight > 0) continue;
    if (!found || ctx.arrival < best) {
      found = true;
      best = ctx.arrival;
      victim = cid;
    }
  }
  if (!found) return false;
  commands_shed_++;
  OAF_TEL(telemetry::bump(tel_.shed));
  telemetry::flight().note("overload", "shed", victim, exec_.now());
  OAF_WARN_RL("target %s: shedding cid %u under overload",
              opts_.connection_name.c_str(), victim);
  if (ep_.shm_attached()) {
    // A half-staged payload must not greet the slot's next owner.
    ep_.abandon_slot(victim);
  }
  // Late transfer PDUs for the shed command are raced, not hostile.
  recently_aborted_.insert(victim);
  send_resp(victim, {victim, NvmeStatus::kQueueFull, 0}, 0);
  return true;
}

void NvmfTargetConnection::evict(const std::string& reason) {
  if (evicted_) return;
  evicted_ = true;
  telemetry::flight().note("overload", "evict", 0, exec_.now());
  OAF_WARN("target %s: evicting association (%s)",
           opts_.connection_name.c_str(), reason.c_str());
  send_term("evicted: " + reason);
  // Defer the hangup one executor turn so the TermReq flushes ahead of it
  // on queued transports; the next reap collects the corpse.
  exec_.post([this, alive = alive_] {
    exec_serial_.assume_held();
    if (!*alive) return;
    control_.close();
  });
}

void NvmfTargetConnection::set_ana_state(pdu::AnaState state,
                                         const std::string& reason) {
  if (state == ana_state_) return;
  ana_state_ = state;
  pdu::AnaLog log;
  log.state = state;
  log.change_seq = ++ana_change_seq_;
  log.reason = reason;
  OAF_WARN("target %s: advertising ana %s (%s)",
           opts_.connection_name.c_str(), pdu::to_string(state),
           reason.c_str());
  telemetry::flight().note("multipath", "ana_advertised", log.change_seq,
                           exec_.now());
  Pdu pdu;
  pdu.header = log;
  control_.send(std::move(pdu));
}

void NvmfTargetConnection::send_term(const std::string& reason) {
  // TermReq tears down the association — exactly the moment the flight
  // recorder exists for.  Dump before the frame goes out.
  telemetry::flight().note("resilience", "termreq_sent", 0, exec_.now());
  (void)telemetry::flight().dump_now(("target sent TermReq: " + reason).c_str());
  pdu::TermReq term;
  term.from_host = false;
  term.fes = 1;
  term.reason = reason;
  Pdu pdu;
  pdu.header = term;
  control_.send(std::move(pdu));
}

// --------------------------------------------------------------------------
// Command capsules
// --------------------------------------------------------------------------

void NvmfTargetConnection::on_capsule(Pdu pdu) {
  const telemetry::prof::CostScope cost(
      telemetry::prof::CostCenter::kTarget);
  const auto& capsule = *pdu.as<pdu::CapsuleCmd>();
  const u16 cid = capsule.cmd.cid;
  if (inflight_.contains(cid)) {
    OAF_ERROR("duplicate cid %u: old opcode %d, new opcode %d, inflight=%zu",
              cid, static_cast<int>(inflight_[cid].cmd.opcode),
              static_cast<int>(capsule.cmd.opcode), inflight_.size());
    send_term("duplicate cid");
    return;
  }
  recently_aborted_.erase(cid);  // the cid is live again

  // Overload admission: budgets are checked (and charged) BEFORE any
  // per-command state exists, so a rejected command costs the target
  // nothing but this CapsuleResp. Only data-bearing commands stage bytes;
  // flush/identify/abort are admitted freely (they are how a congested
  // host drains). An unknown namespace skips admission — the ordinary
  // kInvalidNamespace path below answers it.
  u64 admit_charge = 0;
  if (capsule.cmd.is_read() || capsule.cmd.is_write()) {
    ssd::Device* adm_dev = subsystem_.find(capsule.cmd.nsid);
    if (adm_dev != nullptr) {
      const u64 len = capsule.cmd.data_bytes(adm_dev->block_size());
      if (opts_.max_inflight_cmds != 0 &&
          inflight_.size() >= opts_.max_inflight_cmds) {
        reject_queue_full(cid, capsule.gen, "per-connection inflight cap");
        return;
      }
      if (opts_.max_staging_bytes != 0 &&
          staging_bytes_ + len > opts_.max_staging_bytes) {
        reject_queue_full(cid, capsule.gen, "per-connection staging budget");
        return;
      }
      if (opts_.global_staging != nullptr &&
          !opts_.global_staging->try_acquire(len)) {
        reject_queue_full(cid, capsule.gen, "global staging budget");
        return;
      }
      staging_bytes_ += len;
      admit_charge = len;
    }
  }

  IoCtx& ctx = inflight_[cid];
  ctx.cmd = capsule.cmd;
  ctx.arrival = exec_.now();
  ctx.gen = capsule.gen;
  ctx.seq = next_ctx_seq_++;
  ctx.charged = admit_charge;
  // Trace stitching: adopt the host's trace id as this command's span id so
  // both processes' spans share one async id in the merged timeline. The
  // local seq stays the fencing token — the wire id is host-controlled and
  // must never gate abort/cid-reuse checks.
  ctx.span = capsule.trace_id != 0 ? capsule.trace_id : ctx.seq;
  // The target's half of the stage vocabulary: processing (kTarget) from
  // arrival, kXfer while waiting on write data, kDevice under the device,
  // kComplete while the response/data goes back out.
  ctx.ledger.reset(ctx.arrival, telemetry::Stage::kTarget);
  OAF_TEL(telemetry::tracer().begin(tel_.track, "target_io",
                                    op_span_name(ctx.cmd.opcode), ctx.span,
                                    ctx.arrival, "bytes",
                                    static_cast<i64>(capsule.data_len)));
  OAF_TEL(telemetry::anomaly().ring().begin(
      tel_.anomaly_track, "target_io", op_span_name(ctx.cmd.opcode), ctx.span,
      ctx.arrival, "bytes", static_cast<i64>(capsule.data_len)));
  governor_.record_op(capsule.cmd.is_write());

  ssd::Device* device = subsystem_.find(capsule.cmd.nsid);
  if (device == nullptr &&
      (capsule.cmd.is_read() || capsule.cmd.is_write() ||
       capsule.cmd.opcode == NvmeOpcode::kFlush)) {
    send_resp(cid, {cid, NvmeStatus::kInvalidNamespace, 0}, 0);
    return;
  }

  switch (capsule.cmd.opcode) {
    case NvmeOpcode::kWrite: {
      const u64 len = capsule.cmd.data_bytes(device->block_size());
      if (capsule.data_len != len) {
        send_resp(cid, {cid, NvmeStatus::kInvalidField, 0}, 0);
        return;
      }
      // The DPDK-managed staging buffer the device DMA-copies from; the
      // copy from shm into this buffer is the one the paper says cannot be
      // avoided (§4.4.3).
      ctx.buffer.resize(len);

      if (capsule.in_capsule_data) {
        ctx.ledger.enter(telemetry::Stage::kXfer, exec_.now());
        if (capsule.placement == DataPlacement::kShmSlot) {
          // shm_attached (not shm_ready): a payload parked before a runtime
          // demotion must still drain from its slot.
          if (!ep_.shm_attached()) {
            send_resp(cid, {cid, NvmeStatus::kDataTransferError, 0}, 0);
            return;
          }
          const TimeNs copy_start = exec_.now();
          ctx.copies_in_flight++;
          ep_.consume_payload(
              capsule.shm_slot, ctx.buffer,
              [this, alive = alive_, cid, seq = ctx.seq, len,
               copy_start](Result<u64> got) {
                exec_serial_.assume_held();  // consume posts on the reactor
                if (!*alive) return;
                drop_zombie(seq);  // copy done; zombie (and its charge) can go
                const auto it2 = inflight_.find(cid);
                if (it2 == inflight_.end() || it2->second.seq != seq) {
                  return;  // aborted while the copy was in flight
                }
                it2->second.copies_in_flight--;
                if (!got || got.value() != len) {
                  if (!got) note_consume_failure(got.status());
                  send_resp(cid, {cid, NvmeStatus::kDataTransferError, 0}, 0);
                  return;
                }
                it2->second.copy_wait += exec_.now() - copy_start;
                start_device_write(cid);
              });
        } else {
          if (pdu.payload.size() != len) {
            send_resp(cid, {cid, NvmeStatus::kDataTransferError, 0}, 0);
            return;
          }
          std::memcpy(ctx.buffer.data(), pdu.payload.data(), len);
          start_device_write(cid);
        }
        return;
      }

      // Conservative flow: grant the transfer window (Fig 7 step 2).
      pdu::R2T r2t;
      r2t.cid = cid;
      r2t.ttag = cid;
      r2t.offset = 0;
      r2t.length = len;
      r2t.gen = ctx.gen;
      ctx.ledger.enter(telemetry::Stage::kXfer, exec_.now());
      r2ts_sent_++;
      OAF_TEL(telemetry::bump(tel_.r2ts));
      OAF_TEL(telemetry::tracer().instant(tel_.track, "target_io", "r2t_sent",
                                          ctx.span, exec_.now(), "bytes",
                                          static_cast<i64>(len)));
      Pdu out;
      out.header = r2t;
      control_.send(std::move(out));
      return;
    }
    case NvmeOpcode::kRead:
      handle_read(cid);
      return;
    case NvmeOpcode::kAbort:
      handle_abort(cid);
      return;
    default:
      handle_admin(cid);
      return;
  }
}

void NvmfTargetConnection::handle_abort(u16 cid) {
  const auto it = inflight_.find(cid);
  if (it == inflight_.end()) return;
  const u16 victim = it->second.cmd.abort_cid;
  const u16 vgen = it->second.cmd.abort_gen;
  aborts_handled_++;
  OAF_TEL(telemetry::bump(tel_.aborts_handled));
  OAF_TEL(telemetry::tracer().instant(tel_.track, "resilience",
                                      "abort_handled", it->second.span,
                                      exec_.now()));
  // cpl.result: 0 = victim found and cancelled, 1 = no record of the victim
  // (its capsule or completion was lost; the host replays it).
  u64 result = 1;
  const auto vit = inflight_.find(victim);
  if (vit != inflight_.end() && victim != cid &&
      (vgen == 0 || vit->second.gen == 0 || vit->second.gen == vgen)) {
    IoCtx& vctx = vit->second;
    commands_aborted_++;
    OAF_TEL(telemetry::bump(tel_.cmds_aborted));
    result = 0;
    OAF_WARN_RL("target: aborting cid %u (device_busy=%d)", victim,
             static_cast<int>(vctx.device_busy));
    if (vctx.device_busy || vctx.copies_in_flight > 0) {
      // The device (or an in-flight shm copy) still references the staging
      // buffer; park it with the zombie until that completion fires. The
      // budget charge moves with it — the memory is still pinned.
      zombie_buffers_[vctx.seq] = {std::move(vctx.buffer), vctx.charged};
      vctx.charged = 0;
    } else if (ep_.shm_attached()) {
      // Waiting on data: drop whatever the victim parked in its slot so the
      // next command to use it starts clean.
      ep_.abandon_slot(victim);
    }
    recently_aborted_.insert(victim);
    // Victim completion first, then the abort's own — the host normally
    // closes the victim off the former and only consults the latter when
    // the victim's completion was itself lost.
    send_resp(victim, {victim, NvmeStatus::kAbortedByRequest, 0}, 0);
  }
  send_resp(cid, {cid, NvmeStatus::kSuccess, result}, 0);
}

void NvmfTargetConnection::on_h2c(Pdu pdu) {
  const auto& h2c = *pdu.as<pdu::H2CData>();
  const u16 cid = h2c.cid;
  const auto it = inflight_.find(cid);
  if (it == inflight_.end()) {
    if (recently_aborted_.count(cid) != 0) {
      // A transfer PDU that raced the abort: expected, not hostile. If it
      // announces a shm payload, drop whatever is parked in the slot so the
      // next owner starts clean.
      if (h2c.placement == DataPlacement::kShmSlot && ep_.shm_attached()) {
        ep_.abandon_slot(h2c.shm_slot);
      }
      return;
    }
    send_term("H2CData for unknown cid");
    return;
  }
  IoCtx& ctx = it->second;
  if (h2c.gen != 0 && ctx.gen != 0 && h2c.gen != ctx.gen) {
    OAF_WARN_RL("stale H2CData for cid %u (gen %u != %u)", cid, h2c.gen, ctx.gen);
    return;
  }
  if (h2c.offset + h2c.length > ctx.buffer.size()) {
    send_resp(cid, {cid, NvmeStatus::kDataTransferError, 0}, 0);
    return;
  }

  if (h2c.placement == DataPlacement::kShmSlot) {
    if (!ep_.shm_attached()) {
      send_resp(cid, {cid, NvmeStatus::kDataTransferError, 0}, 0);
      return;
    }
    ctx.copies_in_flight++;
    ep_.consume_payload(
        h2c.shm_slot,
        std::span<u8>(ctx.buffer.data() + h2c.offset, h2c.length),
        [this, alive = alive_, cid, seq = ctx.seq,
         len = h2c.length](Result<u64> got) {
          exec_serial_.assume_held();  // consume posts on the reactor
          if (!*alive) return;
          drop_zombie(seq);  // copy done; zombie (and its charge) can go
          auto it2 = inflight_.find(cid);
          if (it2 == inflight_.end() || it2->second.seq != seq) {
            return;  // aborted while the copy was in flight
          }
          it2->second.copies_in_flight--;
          if (!got || got.value() != len) {
            if (!got) note_consume_failure(got.status());
            send_resp(cid, {cid, NvmeStatus::kDataTransferError, 0}, 0);
            return;
          }
          it2->second.bytes_received += len;
          if (it2->second.bytes_received >= it2->second.buffer.size()) {
            start_device_write(cid);
          }
        });
    return;
  }

  if (pdu.payload.size() != h2c.length) {
    send_resp(cid, {cid, NvmeStatus::kDataTransferError, 0}, 0);
    return;
  }
  if (data_digest_ && h2c.data_digest != 0) {
    const u32 computed = pdu::crc32c(
        std::span<const u8>(pdu.payload.data(), pdu.payload.size()));
    if (computed != h2c.data_digest) {
      digest_errors_++;
      OAF_TEL(telemetry::bump(tel_.digest_errors));
      OAF_WARN_RL("H2CData digest mismatch for cid %u", cid);
      // Retryable at the host: the command replays on a fresh gen rather
      // than landing corrupt bytes on the device.
      send_resp(cid, {cid, NvmeStatus::kTransientTransportError, 0}, 0);
      return;
    }
  }
  std::memcpy(ctx.buffer.data() + h2c.offset, pdu.payload.data(), h2c.length);
  ctx.bytes_received += h2c.length;
  if (ctx.bytes_received >= ctx.buffer.size()) {
    start_device_write(cid);
  }
}

// --------------------------------------------------------------------------
// Device execution
// --------------------------------------------------------------------------

void NvmfTargetConnection::start_device_write(u16 cid) {
  auto it = inflight_.find(cid);
  if (it == inflight_.end()) return;
  IoCtx& ctx = it->second;
  ssd::Device* device = subsystem_.find(ctx.cmd.nsid);
  bytes_written_ += ctx.buffer.size();
  OAF_TEL(telemetry::bump(tel_.bytes_written, ctx.buffer.size()));
  ctx.device_busy = true;
  ctx.ledger.enter(telemetry::Stage::kDevice, exec_.now());
  OAF_TEL(telemetry::tracer().begin(tel_.track, "target_io", "device",
                                    ctx.span, exec_.now(), "bytes",
                                    static_cast<i64>(ctx.buffer.size())));
  OAF_TEL(telemetry::anomaly().ring().begin(
      tel_.anomaly_track, "target_io", "device", ctx.span, exec_.now(),
      "bytes", static_cast<i64>(ctx.buffer.size())));
  device->submit_write(ctx.cmd, ctx.buffer,
                       [this, alive = alive_, cid, seq = ctx.seq,
                        span = ctx.span](pdu::NvmeCpl cpl, DurNs io_time) {
                         exec_serial_.assume_held();  // device completes here
                         if (!*alive) return;
                         OAF_TEL(telemetry::tracer().end(
                             tel_.track, "target_io", "device", span,
                             exec_.now()));
                         OAF_TEL(telemetry::anomaly().ring().end(
                             tel_.anomaly_track, "target_io", "device", span,
                             exec_.now()));
                         drop_zombie(seq);
                         const auto it2 = inflight_.find(cid);
                         if (it2 == inflight_.end() ||
                             it2->second.seq != seq) {
                           return;  // aborted: swallow the completion
                         }
                         it2->second.device_busy = false;
                         it2->second.ledger.enter(telemetry::Stage::kComplete,
                                                  exec_.now());
                         send_resp(cid, cpl, io_time);
                       });
}

void NvmfTargetConnection::handle_read(u16 cid) {
  auto it = inflight_.find(cid);
  if (it == inflight_.end()) return;
  IoCtx& ctx = it->second;
  ssd::Device* device = subsystem_.find(ctx.cmd.nsid);
  const u64 len = ctx.cmd.data_bytes(device->block_size());
  ctx.buffer.resize(len);
  ctx.device_busy = true;
  ctx.ledger.enter(telemetry::Stage::kDevice, exec_.now());
  OAF_TEL(telemetry::tracer().begin(tel_.track, "target_io", "device",
                                    ctx.span, exec_.now(), "bytes",
                                    static_cast<i64>(len)));
  OAF_TEL(telemetry::anomaly().ring().begin(tel_.anomaly_track, "target_io",
                                            "device", ctx.span, exec_.now(),
                                            "bytes", static_cast<i64>(len)));
  device->submit_read(ctx.cmd, ctx.buffer,
                      [this, alive = alive_, cid, seq = ctx.seq,
                       span = ctx.span](pdu::NvmeCpl cpl, DurNs io_time) {
                        exec_serial_.assume_held();  // device completes here
                        if (!*alive) return;
                        OAF_TEL(telemetry::tracer().end(tel_.track,
                                                        "target_io", "device",
                                                        span, exec_.now()));
                        OAF_TEL(telemetry::anomaly().ring().end(
                            tel_.anomaly_track, "target_io", "device", span,
                            exec_.now()));
                        drop_zombie(seq);
                        const auto it2 = inflight_.find(cid);
                        if (it2 == inflight_.end() || it2->second.seq != seq) {
                          return;  // aborted: swallow the completion
                        }
                        it2->second.device_busy = false;
                        finish_read(cid, cpl, io_time);
                      });
}

void NvmfTargetConnection::finish_read(u16 cid, pdu::NvmeCpl cpl, DurNs io_time) {
  auto it = inflight_.find(cid);
  if (it == inflight_.end()) return;
  IoCtx& ctx = it->second;
  ctx.ledger.enter(telemetry::Stage::kComplete, exec_.now());
  if (!cpl.ok()) {
    send_resp(cid, cpl, io_time);
    return;
  }
  bytes_read_ += ctx.buffer.size();
  OAF_TEL(telemetry::bump(tel_.bytes_read, ctx.buffer.size()));

  const bool fold_completion = af::read_success_flag(opts_.af, ep_.shm_ready());

  if (ep_.shm_ready()) {
    if (fold_completion) {
      // Optimized shm flow: the whole payload parks in its slot, one
      // notification with the SUCCESS flag closes the command (§4.4.2).
      const TimeNs copy_start = exec_.now();
      const Status st = ep_.stage_payload(
          cid, ctx.buffer,
          [this, alive = alive_, cid, seq = ctx.seq, io_time, copy_start] {
            exec_serial_.assume_held();
            if (!*alive) return;
            const auto it2 = inflight_.find(cid);
            if (it2 == inflight_.end() || it2->second.seq != seq) {
              // Aborted mid-stage: the published payload has no consumer —
              // drop it so the slot's next owner starts clean.
              ep_.abandon_slot(cid);
              return;
            }
            it2->second.copy_wait += exec_.now() - copy_start;
            pdu::C2HData c2h;
            c2h.cid = cid;
            c2h.offset = 0;
            c2h.length = it2->second.buffer.size();
            c2h.last = true;
            c2h.success = true;
            c2h.placement = DataPlacement::kShmSlot;
            c2h.shm_slot = cid;
            c2h.io_time_ns = static_cast<u64>(io_time);
            c2h.target_time_ns = static_cast<u64>(target_time(cid, io_time));
            c2h.gen = gen_of(cid);
            Pdu pdu;
            pdu.header = c2h;
            trace_end_cmd(cid);
            record_attribution(it2->second);
            erase_inflight(cid);
            commands_served_++;
            OAF_TEL(telemetry::bump(tel_.commands));
            control_.send(std::move(pdu));
          });
      if (!st) {
        send_resp(cid, {cid, NvmeStatus::kDataTransferError, 0}, io_time);
      }
      return;
    }
    // Conservative flow on shm (pre-optimization design): the payload moves
    // through the slot one maxh2cdata-sized chunk at a time — each chunk
    // waits for the client to drain the previous one, and every chunk costs
    // an out-of-band notification. This chunk serialization plus the extra
    // messages is precisely what the shm flow control removes.
    shm_read_chunk(cid, 0, cpl, io_time);
    return;
  }

  // TCP: stream inline chunks of the configured chunk size (§4.5).
  const auto chunks = af::make_chunks(ctx.buffer.size(), opts_.af.chunk_bytes);
  for (const auto& c : chunks) {
    pdu::C2HData c2h;
    c2h.cid = cid;
    c2h.offset = c.offset;
    c2h.length = c.length;
    c2h.last = c.last;
    c2h.success = c.last && fold_completion;
    c2h.placement = DataPlacement::kInline;
    c2h.gen = ctx.gen;
    if (c.last) {
      c2h.io_time_ns = static_cast<u64>(io_time);
      c2h.target_time_ns = static_cast<u64>(target_time(cid, io_time));
    }
    Pdu pdu;
    pdu.payload.assign(ctx.buffer.begin() + static_cast<std::ptrdiff_t>(c.offset),
                       ctx.buffer.begin() +
                           static_cast<std::ptrdiff_t>(c.offset + c.length));
    if (data_digest_) {
      c2h.data_digest = pdu::crc32c(
          std::span<const u8>(pdu.payload.data(), pdu.payload.size()));
    }
    pdu.header = c2h;
    control_.send(std::move(pdu));
  }
  if (!fold_completion) {
    send_resp(cid, cpl, io_time);
  } else {
    trace_end_cmd(cid);
    record_attribution(ctx);
    erase_inflight(cid);
    commands_served_++;
    OAF_TEL(telemetry::bump(tel_.commands));
  }
}

// --------------------------------------------------------------------------
// Tail-latency attribution & anomaly capture (DESIGN.md §13)
// --------------------------------------------------------------------------

void NvmfTargetConnection::record_attribution(const IoCtx& ctx) {
  if (!ctx.cmd.is_read() && !ctx.cmd.is_write()) return;
  auto& attr = telemetry::attribution();
  if (!attr.enabled()) return;
  const TimeNs now = exec_.now();
  telemetry::StageLedger ledger = ctx.ledger;
  ledger.close(now);
  const i64 total_ns = now - ctx.arrival;
  const telemetry::OpClass op = ctx.cmd.is_write()
                                    ? telemetry::OpClass::kWrite
                                    : telemetry::OpClass::kRead;
  if (!attr.record(op, ledger, total_ns, ctx.span, now)) return;
  if (!opts_.capture_local_breaches) return;
  // Target-side breach: capture the local half only. The host drives the
  // cross-process capture for breaches it observes end-to-end.
  auto& rec = telemetry::anomaly();
  const i64 idx = rec.begin_capture(now);
  if (idx < 0) return;
  telemetry::AnomalyContext actx;
  actx.index = idx;
  actx.trace_id = ctx.span;
  actx.op = op;
  actx.total_ns = total_ns;
  actx.slo_ns = attr.slo_for(op);
  actx.stage_ns = ledger.stage_ns;
  actx.t_from_ns = ctx.arrival - 1'000'000;
  actx.t_to_ns = now;
  rec.capture(actx);
}

void NvmfTargetConnection::on_anomaly_req(const pdu::AnomalyReq& req) {
  auto& rec = telemetry::anomaly();
  // The window arrives already translated onto our clock; subtracting the
  // offset from every emitted timestamp sends the events back on the
  // requester's clock, so it embeds them without rewriting.
  const std::string events =
      rec.events_json(req.trace_id, req.t_from_ns, req.t_to_ns,
                      -req.offset_ns, rec.options().max_events);
  pdu::AnomalyResp resp;
  resp.trace_id = req.trace_id;
  resp.pid = static_cast<u64>(::getpid());
  // events_json emits flat objects, so top-level '{' count == event count.
  resp.event_count =
      static_cast<u32>(std::count(events.begin(), events.end(), '{'));
  Pdu out;
  out.header = resp;
  out.payload.assign(events.begin(), events.end());
  control_.send(std::move(out));
}

void NvmfTargetConnection::shm_read_chunk(u16 cid, u64 offset,
                                          pdu::NvmeCpl cpl, DurNs io_time) {
  const auto it = inflight_.find(cid);
  if (it == inflight_.end()) return;
  IoCtx& ctx = it->second;
  const u64 total = ctx.buffer.size();
  const u64 chunk = std::min<u64>(opts_.af.chunk_bytes, total - offset);
  const bool last = offset + chunk >= total;
  ep_.stage_payload_when_free(
      cid, std::span<const u8>(ctx.buffer.data() + offset, chunk),
      [this, alive = alive_, cid, seq = ctx.seq, offset, chunk, last, cpl,
       io_time, gen = ctx.gen] {
        exec_serial_.assume_held();
        if (!*alive) return;
        const auto it2 = inflight_.find(cid);
        if (it2 == inflight_.end() || it2->second.seq != seq) {
          ep_.abandon_slot(cid);  // aborted mid-stage: drop the orphan chunk
          return;
        }
        pdu::C2HData c2h;
        c2h.cid = cid;
        c2h.offset = offset;
        c2h.length = chunk;
        c2h.last = last;
        c2h.success = false;
        c2h.placement = DataPlacement::kShmSlot;
        c2h.shm_slot = cid;
        c2h.gen = gen;
        Pdu pdu;
        pdu.header = c2h;
        control_.send(std::move(pdu));
        if (last) {
          send_resp(cid, cpl, io_time);
        } else {
          shm_read_chunk(cid, offset + chunk, cpl, io_time);
        }
      },
      // An aborted read must not keep parking chunks in the slot.
      [this, alive = alive_, cid, seq = ctx.seq] {
        exec_serial_.assume_held();
        if (!*alive) return true;
        const auto it2 = inflight_.find(cid);
        return it2 == inflight_.end() || it2->second.seq != seq;
      });
}

void NvmfTargetConnection::handle_admin(u16 cid) {
  auto it = inflight_.find(cid);
  if (it == inflight_.end()) return;
  IoCtx& ctx = it->second;

  if (ctx.cmd.opcode == NvmeOpcode::kIdentify) {
    ssd::Device* device = subsystem_.find(ctx.cmd.nsid);
    pdu::NvmeCpl cpl{cid, NvmeStatus::kSuccess, 0};
    std::vector<u8> payload;
    if (device == nullptr) {
      cpl.status = NvmeStatus::kInvalidNamespace;
    } else {
      payload.resize(12);
      const u32 bs = device->block_size();
      const u64 nb = device->num_blocks();
      for (int i = 0; i < 4; ++i) payload[i] = static_cast<u8>(bs >> (8 * i));
      for (int i = 0; i < 8; ++i) payload[4 + i] = static_cast<u8>(nb >> (8 * i));
    }
    send_resp(cid, cpl, 0, std::move(payload));
    return;
  }

  if (ctx.cmd.opcode == NvmeOpcode::kFlush) {
    ssd::Device* device = subsystem_.find(ctx.cmd.nsid);
    ctx.device_busy = true;
    OAF_TEL(telemetry::tracer().begin(tel_.track, "target_io", "device",
                                      ctx.span, exec_.now()));
    device->submit_other(
        ctx.cmd, [this, alive = alive_, cid, seq = ctx.seq,
                  span = ctx.span](pdu::NvmeCpl cpl, DurNs io_time) {
          exec_serial_.assume_held();  // device completes here
          if (!*alive) return;
          OAF_TEL(telemetry::tracer().end(tel_.track, "target_io", "device",
                                          span, exec_.now()));
          drop_zombie(seq);
          const auto it2 = inflight_.find(cid);
          if (it2 == inflight_.end() || it2->second.seq != seq) return;
          it2->second.device_busy = false;
          send_resp(cid, cpl, io_time);
        });
    return;
  }

  send_resp(cid, {cid, NvmeStatus::kInvalidOpcode, 0}, 0);
}

void NvmfTargetConnection::note_consume_failure(const Status& st) {
  if (st.code() != StatusCode::kPeerMisbehavior) return;
  if (!ep_.demote_shm()) return;
  OAF_WARN("target: demoting shm after peer protocol violation (%s)",
           st.to_string().c_str());
  // Tell the host to stop producing into the ring too; its handler is
  // idempotent, so the echo it may send back is a no-op here.
  pdu::ShmDemote demote;
  demote.reason = "target fencing: " + st.to_string();
  Pdu out;
  out.header = demote;
  control_.send(std::move(out));
}

u32 NvmfTargetConnection::sweep_orphan_slots(DurNs fallback) {
  const DurNs window = kato_ns_ > 0 ? kato_ns_ : fallback;
  return ep_.sweep_orphans(window);
}

}  // namespace oaf::nvmf

// The application-facing I/O surface, factored out of NvmfInitiator so a
// workload driver can run unchanged over one connection (NvmfInitiator) or
// over a multipath PathGroup fanning out across several. The types here —
// IoResult, ReadView, WriteTicket — are the exact shapes NvmfInitiator has
// always exposed; they live in the base class so `NvmfInitiator::IoResult`
// spelled anywhere in tests and tools keeps resolving.
#pragma once

#include <functional>
#include <span>
#include <utility>

#include "af/once_callback.h"
#include "common/status.h"
#include "common/types.h"
#include "pdu/nvme_cmd.h"

namespace oaf::nvmf {

class IoSession {
 public:
  /// Logical block size all harness namespaces use.
  static constexpr u32 kBlockSize = 512;

  /// Outcome of one I/O as observed by the application.
  struct IoResult {
    pdu::NvmeCpl cpl;
    DurNs total_ns = 0;        ///< submit -> completion
    DurNs io_time_ns = 0;      ///< device residency (target-reported)
    DurNs target_time_ns = 0;  ///< target processing (target-reported)

    [[nodiscard]] bool ok() const { return cpl.ok(); }
    /// Communication component for the paper's breakdown figures.
    [[nodiscard]] DurNs comm_ns() const {
      const DurNs c = total_ns - static_cast<DurNs>(io_time_ns) -
                      static_cast<DurNs>(target_time_ns);
      return c > 0 ? c : 0;
    }
  };
  /// Completion token: move-only, fires exactly once. Destroying an armed
  /// IoCb without invoking it aborts with a flight dump (af/once_callback.h)
  /// — a lost completion is a crash at the drop site, not a hung issuer.
  using IoCb = af::OnceCallback<void(IoResult)>;

  /// Zero-copy read view: payload lives in the shm slot; call release()
  /// exactly once when done with the data.
  struct ReadView {
    std::span<const u8> data;
    std::function<void()> release;
  };
  using ReadViewCb = af::OnceCallback<void(Result<ReadView>, IoResult)>;

  /// Identify completion: (block_size, num_blocks) on success.
  using IdentifyCb = af::OnceCallback<void(Result<std::pair<u32, u64>>)>;

  /// Connect completion shared by NvmfInitiator and PathGroup.
  using ConnectCb = af::OnceCallback<void(Status)>;

  /// Zero-copy write ticket from zero_copy_write_begin.
  struct WriteTicket {
    u16 cid = 0;
    std::span<u8> buffer;
  };

  virtual ~IoSession() = default;

  // --- data-path API -------------------------------------------------------

  /// Staged write: `data` is copied to the fabric (shm slot or inline PDU).
  /// Must stay alive until the callback fires.
  virtual void write(u32 nsid, u64 slba, std::span<const u8> data, IoCb cb) = 0;

  /// Staged read into `out` (sized to the full transfer length).
  virtual void read(u32 nsid, u64 slba, std::span<u8> out, IoCb cb) = 0;

  virtual void flush(u32 nsid, IoCb cb) = 0;

  /// Identify namespace: cb receives (block_size, num_blocks) on success.
  virtual void identify(u32 nsid, IdentifyCb cb) = 0;

  // --- zero-copy API (paper §4.4.3; requires shm) --------------------------

  /// True when zero-copy buffers are available on this session.
  [[nodiscard]] virtual bool supports_zero_copy() const = 0;

  /// Borrow a write buffer created directly in shared memory. Fill it, then
  /// call zero_copy_write(). At most queue_depth tickets may be outstanding.
  virtual Result<WriteTicket> zero_copy_write_begin(u64 len) = 0;

  /// Submit the write for a ticket from zero_copy_write_begin. `len` bytes
  /// of the ticket buffer are sent with no client-side copy.
  virtual void zero_copy_write(const WriteTicket& ticket, u32 nsid, u64 slba,
                               u64 len, IoCb cb) = 0;

  /// Zero-copy read: the completion hands back a view of the shm slot.
  virtual void zero_copy_read(u32 nsid, u64 slba, u64 len, ReadViewCb cb) = 0;

  // --- backpressure (DESIGN.md §12) ----------------------------------------

  /// True while the session is backing off from target kQueueFull pushback.
  /// Well-behaved drivers stop issuing new work until this clears instead of
  /// hammering a saturated target. Default: never congested, so sessions
  /// without an overload path are unchanged.
  [[nodiscard]] virtual bool congested() const { return false; }
};

}  // namespace oaf::nvmf

// Per-command deadline wheel.
//
// PR 1 armed one executor timer per command attempt; timers cannot be
// cancelled, so completed commands left dead lambdas in the scheduler and
// every expiry had to re-validate cid/generation. The wheel replaces that
// with bucketed deadlines drained by a single self-rearming tick: arm() is
// an O(log buckets) insert, cancel() is an O(1) map erase, and the tick only
// runs while entries are live — so a sim Scheduler::run() still terminates
// once all I/O completes, unlike the keep-alive loop which must be driven
// with run_until().
//
// Firing discipline: a deadline fires at or after its exact time, never
// early (latency assertions like "a timed-out command spans its full
// timeout" rely on this), and at most one tick late.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/executor.h"
#include "common/types.h"
#include "common/units.h"

namespace oaf::nvmf {

class DeadlineWheel {
 public:
  /// Called on the executor when an armed (cid, generation) expires.
  using ExpireFn = std::function<void(u16 cid, u64 generation)>;

  DeadlineWheel(Executor& exec, DurNs tick_ns)
      : exec_(exec), tick_ns_(tick_ns > 0 ? tick_ns : 1) {}
  ~DeadlineWheel() { *alive_ = false; }

  DeadlineWheel(const DeadlineWheel&) = delete;
  DeadlineWheel& operator=(const DeadlineWheel&) = delete;

  void set_callback(ExpireFn fn) { on_expire_ = std::move(fn); }

  [[nodiscard]] DurNs tick_ns() const { return tick_ns_; }
  [[nodiscard]] std::size_t armed() const { return armed_.size(); }

  /// Arm (or re-arm) a deadline for `cid`. A later arm for the same cid
  /// supersedes the earlier one (the stale bucket entry becomes a tombstone
  /// its generation check skips).
  void arm(u16 cid, u64 generation, DurNs timeout) {
    const TimeNs deadline = exec_.now() + (timeout > 0 ? timeout : 0);
    armed_[cid] = generation;
    buckets_[bucket_of(deadline)].push_back(Entry{cid, generation, deadline});
    if (!ticking_) {
      ticking_ = true;
      schedule_tick();
    }
  }

  /// Disarm `cid` (completion beat the deadline). Lazy: the bucket entry
  /// stays behind as a tombstone and is skipped on its tick.
  void cancel(u16 cid) { armed_.erase(cid); }

  /// Disarm everything (connection teardown / recovery).
  void clear() { armed_.clear(); }

 private:
  struct Entry {
    u16 cid;
    u64 generation;
    TimeNs deadline;
  };

  [[nodiscard]] u64 bucket_of(TimeNs t) const {
    return static_cast<u64>(t) / static_cast<u64>(tick_ns_);
  }

  void schedule_tick() {
    exec_.schedule_after(tick_ns_, [this, alive = alive_] {
      if (!*alive) return;
      tick();
    });
  }

  void tick() {
    const TimeNs now = exec_.now();
    const u64 now_bucket = bucket_of(now);
    std::vector<Entry> due;
    for (auto it = buckets_.begin();
         it != buckets_.end() && it->first <= now_bucket;) {
      std::vector<Entry> keep;
      for (const Entry& e : it->second) {
        const auto a = armed_.find(e.cid);
        if (a == armed_.end() || a->second != e.generation) continue;
        if (e.deadline <= now) {
          due.push_back(e);
        } else {
          keep.push_back(e);  // same bucket, but its exact time is not up yet
        }
      }
      if (keep.empty()) {
        it = buckets_.erase(it);
      } else {
        it->second = std::move(keep);
        ++it;
      }
    }
    // Fire outside the bucket walk: expiry handlers may re-enter arm()
    // (e.g. a timed-out command escalating to an Abort with its own
    // deadline), which mutates buckets_.
    for (const Entry& e : due) {
      const auto a = armed_.find(e.cid);
      if (a == armed_.end() || a->second != e.generation) continue;
      armed_.erase(a);
      if (on_expire_) on_expire_(e.cid, e.generation);
    }
    if (armed_.empty()) {
      ticking_ = false;
      buckets_.clear();
      return;
    }
    schedule_tick();
  }

  Executor& exec_;
  DurNs tick_ns_;
  ExpireFn on_expire_;
  std::map<u64, std::vector<Entry>> buckets_;   // tick index -> entries
  std::unordered_map<u16, u64> armed_;          // cid -> live generation
  bool ticking_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace oaf::nvmf

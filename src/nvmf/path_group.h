// Multipath I/O: one PathGroup fans a workload out over N independent
// NVMe-oF associations ("paths") to the same subsystem and survives the
// loss of any of them with zero failed I/Os (DESIGN.md §11).
//
// Each path is a full NvmfInitiator — its own control channel, cid space,
// shm negotiation, and resilience ladder. The group adds three things on
// top:
//
//   * ANA-aware selection: every submission snapshots the eligible paths
//     (connected, not recovering, not dead, ANA != inaccessible; optimized
//     preferred over non-optimized) and asks a pluggable PathSelector to
//     pick one.
//   * Seamless failover: a command that fails with a transport-shaped
//     status (kDataTransferError / kAbortedByRequest) is re-driven on a
//     surviving path, up to a redrive budget. The group keys every live
//     command by a group sequence number; erasing the entry before
//     delivering the application callback is the exactly-once fence — a
//     late duplicate completion from a half-dead path finds nothing to
//     complete and is counted, not delivered.
//   * Parking: when no path is currently eligible but not all are dead,
//     submissions wait in a deque and drain the moment a path connects or
//     an ANA notice re-opens one.
//
// A single-path group degenerates to plain NvmfInitiator semantics: the
// one path keeps its own reconnect/replay machinery (there is nowhere else
// to re-drive to), and zero-copy is delegated straight through. With N > 1
// the group disables zero-copy — slot memory dies with its path, so a
// borrowed view could not survive a failover.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "af/exec_serial.h"
#include "common/executor.h"
#include "nvmf/initiator.h"
#include "nvmf/io_session.h"
#include "nvmf/path_selector.h"
#include "telemetry/telemetry.h"

namespace oaf::nvmf {

struct PathGroupOptions {
  std::string name = "pg0";
  /// Cross-path redrives per command before the failure is surfaced to the
  /// application. Distinct from (and stacked on top of) each path's own
  /// in-place retry budget.
  u32 redrive_budget = 3;
  /// Bound on the parked queue (DESIGN.md §12). A submission arriving while
  /// this many commands already wait for a path fails fast with kQueueFull
  /// instead of growing the queue without limit during a long outage.
  /// Deliberately generous: parking is the normal failover buffer; the cap
  /// only exists so memory stays bounded when no path comes back.
  u32 max_parked = 1024;
};

class PathGroup final : public IoSession {
 public:
  PathGroup(Executor& exec, PathGroupOptions opts,
            std::unique_ptr<PathSelector> selector);
  ~PathGroup() override {
    *alive_ = false;
    // Teardown discard: commands still live or parked at destruction were
    // abandoned by the application — deliberately drop their tokens.
    if (connect_cb_) std::move(connect_cb_).drop();
    for (auto& [gseq, cmd] : live_) {
      if (cmd.cb) std::move(cmd.cb).drop();
      if (cmd.identify_cb) std::move(cmd.identify_cb).drop();
    }
  }

  /// Register a path. All paths must be added before connect(); the group
  /// subscribes to the path's lifecycle events here.
  void add_path(std::unique_ptr<NvmfInitiator> path)
      OAF_REQUIRES(exec_serial_);

  /// Dial every path. cb fires once, on the first successful handshake —
  /// the group is usable from that moment; remaining paths join as their
  /// handshakes land.
  void connect(ConnectCb cb) OAF_REQUIRES(exec_serial_);

  // --- IoSession -----------------------------------------------------------
  void write(u32 nsid, u64 slba, std::span<const u8> data, IoCb cb) override
      OAF_REQUIRES(exec_serial_);
  void read(u32 nsid, u64 slba, std::span<u8> out, IoCb cb) override
      OAF_REQUIRES(exec_serial_);
  void flush(u32 nsid, IoCb cb) override OAF_REQUIRES(exec_serial_);
  void identify(u32 nsid, IdentifyCb cb) override OAF_REQUIRES(exec_serial_);
  [[nodiscard]] bool supports_zero_copy() const override
      OAF_REQUIRES_SHARED(exec_serial_) {
    return paths_.size() == 1 && paths_[0].init->supports_zero_copy();
  }
  Result<WriteTicket> zero_copy_write_begin(u64 len) override
      OAF_REQUIRES(exec_serial_);
  void zero_copy_write(const WriteTicket& ticket, u32 nsid, u64 slba, u64 len,
                       IoCb cb) override OAF_REQUIRES(exec_serial_);
  void zero_copy_read(u32 nsid, u64 slba, u64 len, ReadViewCb cb) override
      OAF_REQUIRES(exec_serial_);
  /// True when every currently-eligible path is backing off from target
  /// kQueueFull pushback — the whole group is saturated, so drivers should
  /// pause. An empty eligible set is "parked", not congested.
  [[nodiscard]] bool congested() const override
      OAF_REQUIRES_SHARED(exec_serial_);

  // --- observability -------------------------------------------------------
  [[nodiscard]] size_t path_count() const OAF_REQUIRES_SHARED(exec_serial_) {
    return paths_.size();
  }
  [[nodiscard]] NvmfInitiator& path(size_t i)
      OAF_REQUIRES_SHARED(exec_serial_) {
    return *paths_[i].init;
  }
  [[nodiscard]] const NvmfInitiator& path(size_t i) const
      OAF_REQUIRES_SHARED(exec_serial_) {
    return *paths_[i].init;
  }
  /// Group I/Os currently outstanding on path i.
  [[nodiscard]] u32 path_inflight(size_t i) const
      OAF_REQUIRES_SHARED(exec_serial_) {
    return paths_[i].inflight;
  }
  [[nodiscard]] u64 ios_completed() const OAF_REQUIRES_SHARED(exec_serial_) {
    return ios_completed_;
  }
  [[nodiscard]] u64 failovers() const OAF_REQUIRES_SHARED(exec_serial_) {
    return failovers_;
  }
  [[nodiscard]] u64 redrives() const OAF_REQUIRES_SHARED(exec_serial_) {
    return redrives_;
  }
  [[nodiscard]] u64 parked_total() const OAF_REQUIRES_SHARED(exec_serial_) {
    return parked_total_;
  }
  /// Submissions failed fast with kQueueFull at the max_parked bound.
  [[nodiscard]] u64 park_overflows() const OAF_REQUIRES_SHARED(exec_serial_) {
    return park_overflows_;
  }
  [[nodiscard]] u64 duplicates_suppressed() const
      OAF_REQUIRES_SHARED(exec_serial_) {
    return duplicates_suppressed_;
  }
  [[nodiscard]] size_t parked_now() const OAF_REQUIRES_SHARED(exec_serial_) {
    return parked_.size();
  }
  [[nodiscard]] size_t live_now() const OAF_REQUIRES_SHARED(exec_serial_) {
    return live_.size();
  }
  [[nodiscard]] const char* selector_name() const { return selector_->name(); }
  /// The group's executor-affinity capability (af/exec_serial.h).
  [[nodiscard]] const af::ExecutorSerial& serial() const
      OAF_RETURN_CAPABILITY(exec_serial_) {
    return exec_serial_;
  }

 private:
  struct PathSlot {
    std::unique_ptr<NvmfInitiator> init;
    u32 inflight = 0;  ///< group commands outstanding on this path
    bool was_eligible = false;  ///< cached; edges drive failover accounting
  };

  /// Everything needed to re-issue a command on another path. Buffer spans
  /// are safe to re-use: the IoSession contract keeps application buffers
  /// alive until the final callback, which the group has not delivered yet.
  struct GroupCmd {
    enum class Op : u8 { kWrite, kRead, kFlush, kIdentify } op = Op::kFlush;
    u32 nsid = 0;
    u64 slba = 0;
    std::span<const u8> wdata;
    std::span<u8> rdata;
    IoCb cb;
    IdentifyCb identify_cb;
    u32 redrives = 0;
    u32 path = 0;  ///< current path index (valid while issued, not parked)
    /// When a redrive pulled this command off its path: the gap until it is
    /// re-issued (including any parked wait) is attributed as kDetour —
    /// only the group sees this time, the paths' ledgers never do.
    TimeNs detour_start = 0;
  };

  [[nodiscard]] bool eligible(const PathSlot& s) const
      OAF_REQUIRES_SHARED(exec_serial_);
  [[nodiscard]] bool all_dead() const OAF_REQUIRES_SHARED(exec_serial_);
  /// Snapshot eligible paths honouring the ANA preference tier; empty when
  /// no path is usable right now.
  [[nodiscard]] std::vector<PathView> eligible_views() const
      OAF_REQUIRES_SHARED(exec_serial_);

  void submit(GroupCmd cmd) OAF_REQUIRES(exec_serial_);
  void dispatch(u64 gseq) OAF_REQUIRES(exec_serial_);
  void issue_on_path(u64 gseq, u32 path_index) OAF_REQUIRES(exec_serial_);
  void on_io_result(u64 gseq, IoResult res) OAF_REQUIRES(exec_serial_);
  void on_identify_result(u64 gseq, Result<std::pair<u32, u64>> r)
      OAF_REQUIRES(exec_serial_);
  void on_path_event(u32 path_index, NvmfInitiator::PathEvent e)
      OAF_REQUIRES(exec_serial_);
  void finish_path_accounting(const GroupCmd& cmd)
      OAF_REQUIRES(exec_serial_);
  void note_redrive(u64 gseq, GroupCmd& cmd) OAF_REQUIRES(exec_serial_);
  void drain_parked() OAF_REQUIRES(exec_serial_);
  void fail_all_parked() OAF_REQUIRES(exec_serial_);
  [[nodiscard]] static bool redrivable(const IoResult& res) {
    return res.cpl.status == pdu::NvmeStatus::kDataTransferError ||
           res.cpl.status == pdu::NvmeStatus::kAbortedByRequest;
  }

  Executor& exec_;
  /// Executor-affinity capability: group state and every path it owns live
  /// on one reactor. Path lifecycle handlers and redrive continuations open
  /// with exec_serial_.assume_held(); calls into a path's REQUIRES-annotated
  /// API additionally assert that path's own serial (paths share the
  /// group's reactor by construction — add_path enforces it).
  af::ExecutorSerial exec_serial_;
  PathGroupOptions opts_;
  std::unique_ptr<PathSelector> selector_;
  std::vector<PathSlot> paths_ OAF_GUARDED_BY(exec_serial_);

  std::unordered_map<u64, GroupCmd> live_
      OAF_GUARDED_BY(exec_serial_);  ///< by gseq; erase = delivered
  std::deque<u64> parked_
      OAF_GUARDED_BY(exec_serial_);  ///< gseqs awaiting a path
  u64 next_gseq_ OAF_GUARDED_BY(exec_serial_) = 1;

  ConnectCb connect_cb_ OAF_GUARDED_BY(exec_serial_);
  bool connected_once_ OAF_GUARDED_BY(exec_serial_) = false;

  u64 ios_completed_ OAF_GUARDED_BY(exec_serial_) = 0;
  u64 failovers_ OAF_GUARDED_BY(exec_serial_) = 0;  ///< eligible paths lost
  u64 redrives_ OAF_GUARDED_BY(exec_serial_) = 0;   ///< re-driven commands
  u64 parked_total_
      OAF_GUARDED_BY(exec_serial_) = 0;  ///< submissions that ever waited
  u64 park_overflows_
      OAF_GUARDED_BY(exec_serial_) = 0;  ///< fast-failed at max_parked
  u64 duplicates_suppressed_
      OAF_GUARDED_BY(exec_serial_) = 0;  ///< late completions fenced
  u32 displaced_
      OAF_GUARDED_BY(exec_serial_) = 0;  ///< in-flight on ineligible paths
  u32 failover_redrives_
      OAF_GUARDED_BY(exec_serial_) = 0;  ///< redrives this failover
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  struct Tel {
    u32 track = 0;
    telemetry::Counter* failovers = nullptr;
    telemetry::Counter* redrives = nullptr;
    telemetry::Counter* parked = nullptr;
    telemetry::Counter* park_overflow = nullptr;
    telemetry::Counter* duplicates = nullptr;
  } tel_;
  void init_telemetry() OAF_REQUIRES(exec_serial_);
};

}  // namespace oaf::nvmf

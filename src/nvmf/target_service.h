// NVMe-oF target service: association lifecycle for one listening target.
//
// Owns the per-client (channel, NvmfTargetConnection) pairs and implements
// the keep-alive side of the resilience layer: an association whose control
// channel closed, or whose host has been silent past its negotiated KATO, is
// garbage-collected — its shm region is revoked and its name becomes free
// again, so the same client can reconnect under the same connection name and
// get a fresh shm grant. Reaping runs on accept() (so a reconnecting client
// never races its own corpse), on explicit reap_expired() calls, and
// optionally on a periodic timer.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nvmf/target.h"

namespace oaf::nvmf {

/// Which association gives up work when the global staging budget crosses
/// its high watermark (DESIGN.md §12).
enum class ShedPolicy {
  kOldestFirst,  ///< the association holding the oldest in-flight command
  kFair,         ///< the association holding the most in-flight commands
};

/// Parse "oldest" / "fair"; anything else falls back to kOldestFirst.
ShedPolicy parse_shed_policy(const std::string& name);

struct TargetServiceOptions {
  af::AfConfig af;
  /// KATO for clients that do not advertise one; 0 = never expire on silence.
  DurNs default_kato_ns = 0;
  /// Periodic reaper interval; 0 disables the timer (reaping still happens
  /// on accept and on explicit reap_expired calls). The timer re-arms
  /// itself, so with the sim scheduler drive it with run_until, not run().
  DurNs reaper_interval_ns = 0;
  /// Stuck window for the orphan-slot sweeper on associations that have no
  /// negotiated KATO; 0 disables sweeping those (KATO associations always
  /// sweep with their KATO as the window).
  DurNs orphan_slot_timeout_ns = 0;

  // --- overload protection (DESIGN.md §12) ---------------------------------
  /// Connect-time admission cap: past this many live associations a new
  /// handshake is answered with ICResp{admitted=false} and closed.
  /// 0 = unlimited.
  u32 max_conns = 0;
  /// Backoff hint carried in the connect rejection.
  u32 reject_retry_after_ms = 100;
  /// Per-connection command/staging budgets, forwarded to every connection.
  u32 max_inflight_cmds = 0;
  u64 max_staging_bytes = 0;
  /// Target-wide staging budget shared by all connections; 0 = unlimited.
  u64 global_staging_bytes = 0;
  /// Occupancy fraction of the global budget at which the reaper starts
  /// shedding admitted commands; <= 0 disables shedding.
  double shed_watermark = 0.9;
  ShedPolicy shed_policy = ShedPolicy::kOldestFirst;
  /// A connection whose oldest in-flight command exceeds this age is a slow
  /// client and is evicted (TermReq + close). 0 = never evict.
  DurNs stall_timeout_ns = 0;
};

class NvmfTargetService {
 public:
  NvmfTargetService(Executor& exec, net::Copier& copier, af::ShmBroker& broker,
                    ssd::Subsystem& subsystem, TargetServiceOptions opts);
  ~NvmfTargetService();

  NvmfTargetService(const NvmfTargetService&) = delete;
  NvmfTargetService& operator=(const NvmfTargetService&) = delete;

  /// Take ownership of a freshly-accepted control channel and serve it as
  /// association `conn_name`. Dead associations (closed or KATO-expired) are
  /// reaped first — including a stale one under the same name, which would
  /// otherwise hold the shm region the new handshake needs.
  NvmfTargetConnection* accept(std::unique_ptr<net::MsgChannel> channel,
                               std::string conn_name);

  /// Destroy every association that is closed or KATO-expired; returns how
  /// many were reaped.
  std::size_t reap_expired();

  /// Arm the periodic reaper (no-op when reaper_interval_ns == 0).
  void start_reaper();

  /// Sweep every live association's shm ring for slots stuck mid-transfer by
  /// a dead owner (the per-association window is its KATO, else
  /// orphan_slot_timeout_ns). Runs from the periodic reaper too. Returns the
  /// number of slots reclaimed.
  u32 sweep_orphan_slots();

  [[nodiscard]] std::size_t active() const { return assocs_.size(); }
  [[nodiscard]] u64 reaped() const { return reaped_; }
  /// Commands served across the service's lifetime, including by
  /// associations that have since been reaped.
  [[nodiscard]] u64 commands_served() const {
    u64 total = retired_commands_;
    for (const auto& a : assocs_) total += a.conn->commands_served();
    return total;
  }
  [[nodiscard]] NvmfTargetConnection* find(const std::string& conn_name);
  /// Advertise a new ANA state on one association (admin drain, rebalance).
  /// Returns false when no live association has that name.
  bool set_ana_state(const std::string& conn_name, pdu::AnaState state,
                     const std::string& reason);
  /// JSON array describing every live association (name, data path, per-
  /// connection counters, liveness). Feeds the live introspection endpoint's
  /// `conns` command. Must run on the executor thread — it walks assocs_.
  [[nodiscard]] std::string conns_json() const;
  /// Orphan slots reclaimed across the service's lifetime (live assocs only;
  /// a reaped association's slots die with its ring).
  [[nodiscard]] u64 orphan_slots_reclaimed() const {
    u64 total = 0;
    for (const auto& a : assocs_) total += a.conn->orphan_slots_reclaimed();
    return total;
  }

  // --- overload protection ---------------------------------------------
  /// The target-wide staging budget every association draws from.
  [[nodiscard]] const af::ResourceBudget& global_staging() const {
    return global_staging_;
  }
  /// Handshakes turned away at the max_conns cap.
  [[nodiscard]] u64 connects_rejected() const { return connects_rejected_; }
  /// Slow clients evicted by the stall watermark.
  [[nodiscard]] u64 evictions() const { return evictions_; }
  /// kQueueFull rejects across live associations.
  [[nodiscard]] u64 queue_full_rejects() const {
    u64 total = retired_queue_full_;
    for (const auto& a : assocs_) total += a.conn->queue_full_rejects();
    return total;
  }
  /// Admitted commands shed by the watermark ladder, across live assocs.
  [[nodiscard]] u64 commands_shed() const {
    u64 total = retired_shed_;
    for (const auto& a : assocs_) total += a.conn->commands_shed();
    return total;
  }
  /// Run the stall-eviction and watermark-shed ladder once (the periodic
  /// reaper calls this; exposed so tests and tools can force a pass).
  void overload_tick();

 private:
  struct Assoc {
    std::unique_ptr<net::MsgChannel> channel;
    std::unique_ptr<NvmfTargetConnection> conn;
    /// Created only to deliver an ICResp{admitted=false}; never counts
    /// toward the max_conns cap and is reaped as soon as it closes.
    bool reject = false;
  };

  void reaper_tick();
  /// Shed one admitted command according to the configured policy; false
  /// when no association has anything sheddable.
  bool shed_one();

  Executor& exec_;
  net::Copier& copier_;
  af::ShmBroker& broker_;
  ssd::Subsystem& subsystem_;
  TargetServiceOptions opts_;

  std::vector<Assoc> assocs_;
  u64 reaped_ = 0;
  u64 retired_commands_ = 0;  // served by since-reaped associations
  u64 retired_queue_full_ = 0;  // queue-full rejects by reaped associations
  u64 retired_shed_ = 0;        // sheds by reaped associations
  u64 reaper_epoch_ = 0;  // invalidates queued ticks on shutdown
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  /// Target-wide staging budget (capacity from global_staging_bytes); every
  /// association holds a pointer into it via TargetOptions.global_staging.
  af::ResourceBudget global_staging_;
  u64 connects_rejected_ = 0;
  u64 evictions_ = 0;

  telemetry::Counter* tel_reaped_ = nullptr;
  telemetry::Counter* tel_connects_rejected_ = nullptr;
  telemetry::Counter* tel_evicted_ = nullptr;
  /// Samples assocs_.size() at exposition time; declared after assocs_ so it
  /// unregisters before the vector is destroyed.
  telemetry::MetricsRegistry::CallbackHandle active_cb_;
  /// Global staging occupancy gauges; declared after global_staging_.
  telemetry::MetricsRegistry::CallbackHandle staging_in_use_cb_;
  telemetry::MetricsRegistry::CallbackHandle staging_capacity_cb_;
};

}  // namespace oaf::nvmf

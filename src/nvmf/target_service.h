// NVMe-oF target service: association lifecycle for one listening target.
//
// Owns the per-client (channel, NvmfTargetConnection) pairs and implements
// the keep-alive side of the resilience layer: an association whose control
// channel closed, or whose host has been silent past its negotiated KATO, is
// garbage-collected — its shm region is revoked and its name becomes free
// again, so the same client can reconnect under the same connection name and
// get a fresh shm grant. Reaping runs on accept() (so a reconnecting client
// never races its own corpse), on explicit reap_expired() calls, and
// optionally on a periodic timer.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nvmf/target.h"

namespace oaf::nvmf {

struct TargetServiceOptions {
  af::AfConfig af;
  /// KATO for clients that do not advertise one; 0 = never expire on silence.
  DurNs default_kato_ns = 0;
  /// Periodic reaper interval; 0 disables the timer (reaping still happens
  /// on accept and on explicit reap_expired calls). The timer re-arms
  /// itself, so with the sim scheduler drive it with run_until, not run().
  DurNs reaper_interval_ns = 0;
  /// Stuck window for the orphan-slot sweeper on associations that have no
  /// negotiated KATO; 0 disables sweeping those (KATO associations always
  /// sweep with their KATO as the window).
  DurNs orphan_slot_timeout_ns = 0;
};

class NvmfTargetService {
 public:
  NvmfTargetService(Executor& exec, net::Copier& copier, af::ShmBroker& broker,
                    ssd::Subsystem& subsystem, TargetServiceOptions opts);
  ~NvmfTargetService();

  NvmfTargetService(const NvmfTargetService&) = delete;
  NvmfTargetService& operator=(const NvmfTargetService&) = delete;

  /// Take ownership of a freshly-accepted control channel and serve it as
  /// association `conn_name`. Dead associations (closed or KATO-expired) are
  /// reaped first — including a stale one under the same name, which would
  /// otherwise hold the shm region the new handshake needs.
  NvmfTargetConnection* accept(std::unique_ptr<net::MsgChannel> channel,
                               std::string conn_name);

  /// Destroy every association that is closed or KATO-expired; returns how
  /// many were reaped.
  std::size_t reap_expired();

  /// Arm the periodic reaper (no-op when reaper_interval_ns == 0).
  void start_reaper();

  /// Sweep every live association's shm ring for slots stuck mid-transfer by
  /// a dead owner (the per-association window is its KATO, else
  /// orphan_slot_timeout_ns). Runs from the periodic reaper too. Returns the
  /// number of slots reclaimed.
  u32 sweep_orphan_slots();

  [[nodiscard]] std::size_t active() const { return assocs_.size(); }
  [[nodiscard]] u64 reaped() const { return reaped_; }
  /// Commands served across the service's lifetime, including by
  /// associations that have since been reaped.
  [[nodiscard]] u64 commands_served() const {
    u64 total = retired_commands_;
    for (const auto& a : assocs_) total += a.conn->commands_served();
    return total;
  }
  [[nodiscard]] NvmfTargetConnection* find(const std::string& conn_name);
  /// Advertise a new ANA state on one association (admin drain, rebalance).
  /// Returns false when no live association has that name.
  bool set_ana_state(const std::string& conn_name, pdu::AnaState state,
                     const std::string& reason);
  /// JSON array describing every live association (name, data path, per-
  /// connection counters, liveness). Feeds the live introspection endpoint's
  /// `conns` command. Must run on the executor thread — it walks assocs_.
  [[nodiscard]] std::string conns_json() const;
  /// Orphan slots reclaimed across the service's lifetime (live assocs only;
  /// a reaped association's slots die with its ring).
  [[nodiscard]] u64 orphan_slots_reclaimed() const {
    u64 total = 0;
    for (const auto& a : assocs_) total += a.conn->orphan_slots_reclaimed();
    return total;
  }

 private:
  struct Assoc {
    std::unique_ptr<net::MsgChannel> channel;
    std::unique_ptr<NvmfTargetConnection> conn;
  };

  void reaper_tick();

  Executor& exec_;
  net::Copier& copier_;
  af::ShmBroker& broker_;
  ssd::Subsystem& subsystem_;
  TargetServiceOptions opts_;

  std::vector<Assoc> assocs_;
  u64 reaped_ = 0;
  u64 retired_commands_ = 0;  // served by since-reaped associations
  u64 reaper_epoch_ = 0;  // invalidates queued ticks on shutdown
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  telemetry::Counter* tel_reaped_ = nullptr;
  /// Samples assocs_.size() at exposition time; declared after assocs_ so it
  /// unregisters before the vector is destroyed.
  telemetry::MetricsRegistry::CallbackHandle active_cb_;
};

}  // namespace oaf::nvmf

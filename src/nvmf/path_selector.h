// Pluggable path-selection policies for PathGroup (DESIGN.md §11).
//
// A selector sees one immutable PathView per *eligible* path (connected,
// not recovering, not dead, ANA != inaccessible) and picks an index into
// that vector. Eligibility filtering and the optimized-over-non-optimized
// ANA preference happen in PathGroup before the selector runs, so policies
// only rank paths the group already considers usable — a selector can never
// steer an I/O onto a path the target told us to avoid.
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "pdu/pdu.h"

namespace oaf::nvmf {

/// Read-only snapshot of one eligible path at selection time.
struct PathView {
  u32 index = 0;  ///< path index within the group (stable for its lifetime)
  pdu::AnaState ana = pdu::AnaState::kOptimized;
  u32 inflight = 0;       ///< group I/Os currently outstanding on this path
  DurNs ewma_ns = 0;      ///< completion-latency EWMA; 0 = no sample yet
  bool shm_active = false;
};

class PathSelector {
 public:
  virtual ~PathSelector() = default;
  /// Pick one of `paths` (never empty); returns a position in the vector,
  /// not a group path index — PathGroup maps it back.
  virtual size_t pick(const std::vector<PathView>& paths) = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Strict rotation over eligible paths. The cursor advances globally (not
/// per-membership), so the spread stays even as paths come and go.
class RoundRobinSelector final : public PathSelector {
 public:
  size_t pick(const std::vector<PathView>& paths) override {
    return cursor_++ % paths.size();
  }
  [[nodiscard]] const char* name() const override { return "round-robin"; }

 private:
  size_t cursor_ = 0;
};

/// Join-the-shortest-queue: least outstanding group I/Os wins; ties go to
/// the lowest index, which keeps the choice deterministic.
class QueueDepthSelector final : public PathSelector {
 public:
  size_t pick(const std::vector<PathView>& paths) override {
    size_t best = 0;
    for (size_t i = 1; i < paths.size(); ++i) {
      if (paths[i].inflight < paths[best].inflight) best = i;
    }
    return best;
  }
  [[nodiscard]] const char* name() const override { return "queue-depth"; }
};

/// Latency-aware: lowest completion-latency EWMA wins. An unprobed path
/// (ewma == 0) is preferred outright so every path gets measured before the
/// policy settles — otherwise a cold standby could never prove itself.
class LatencyEwmaSelector final : public PathSelector {
 public:
  size_t pick(const std::vector<PathView>& paths) override {
    size_t best = 0;
    for (size_t i = 1; i < paths.size(); ++i) {
      const DurNs a = paths[i].ewma_ns;
      const DurNs b = paths[best].ewma_ns;
      if (a == 0 && b != 0) {
        best = i;
      } else if (a != 0 && b != 0 && a < b) {
        best = i;
      }
    }
    return best;
  }
  [[nodiscard]] const char* name() const override { return "latency-ewma"; }
};

/// Factory by policy name ("round-robin" | "queue-depth" | "latency-ewma");
/// nullptr on an unknown name so callers can report the bad flag.
inline std::unique_ptr<PathSelector> make_selector(std::string_view policy) {
  if (policy == "round-robin") return std::make_unique<RoundRobinSelector>();
  if (policy == "queue-depth") return std::make_unique<QueueDepthSelector>();
  if (policy == "latency-ewma") return std::make_unique<LatencyEwmaSelector>();
  return nullptr;
}

}  // namespace oaf::nvmf

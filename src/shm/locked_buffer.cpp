#include "shm/locked_buffer.h"

#include <cstring>
#include <new>

namespace oaf::shm {

Result<LockedSharedBuffer> LockedSharedBuffer::create(void* mem, u64 bytes,
                                                      u64 capacity) {
  if (mem == nullptr || capacity == 0) {
    return make_error(StatusCode::kInvalidArgument, "bad buffer geometry");
  }
  if (bytes < required_bytes(capacity)) {
    return make_error(StatusCode::kOutOfRange, "region too small");
  }
  auto* ctl = new (mem) Ctl{};
  ctl->lock.store(0, std::memory_order_relaxed);
  ctl->full.store(0, std::memory_order_relaxed);
  ctl->len = 0;
  ctl->contentions.store(0, std::memory_order_relaxed);
  auto* data = static_cast<u8*>(mem) + kHeaderBytes;
  return LockedSharedBuffer(ctl, data, capacity);
}

void LockedSharedBuffer::lock() {
  u32 expected = 0;
  while (!ctl_->lock.compare_exchange_weak(expected, 1, std::memory_order_acquire,
                                           std::memory_order_relaxed)) {
    ctl_->contentions.fetch_add(1, std::memory_order_relaxed);
    expected = 0;
#if defined(__x86_64__)
    __builtin_ia32_pause();
#endif
  }
}

void LockedSharedBuffer::unlock() { ctl_->lock.store(0, std::memory_order_release); }

Status LockedSharedBuffer::put(std::span<const u8> data) {
  if (data.size() > capacity_) {
    return make_error(StatusCode::kOutOfRange, "payload exceeds capacity");
  }
  // Wait for the consumer to drain the previous payload.
  for (;;) {
    lock();
    if (ctl_->full.load(std::memory_order_relaxed) == 0) break;
    unlock();
#if defined(__x86_64__)
    __builtin_ia32_pause();
#endif
  }
  std::memcpy(data_, data.data(), data.size());
  ctl_->len = data.size();
  ctl_->full.store(1, std::memory_order_release);
  unlock();
  return Status::ok();
}

bool LockedSharedBuffer::has_payload() const {
  return ctl_->full.load(std::memory_order_acquire) != 0;
}

Result<u64> LockedSharedBuffer::take(std::span<u8> out) {
  lock();
  if (ctl_->full.load(std::memory_order_relaxed) == 0) {
    unlock();
    return make_error(StatusCode::kUnavailable, "no payload staged");
  }
  const u64 len = ctl_->len;
  if (out.size() < len) {
    unlock();
    return make_error(StatusCode::kOutOfRange, "output buffer too small");
  }
  std::memcpy(out.data(), data_, len);
  ctl_->full.store(0, std::memory_order_release);
  unlock();
  return len;
}

}  // namespace oaf::shm

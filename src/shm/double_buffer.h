// Lock-free double-buffer ring over a shared-memory region (paper §4.4.1).
//
// The region is logically split into two independent buffers — one the
// client writes and the target reads (C2T, write payloads) and one the
// target writes and the client reads (T2C, read payloads) — giving
// bi-directional transfer with no shared cursor. Each buffer is divided into
// `slot_count` slots of `slot_size` bytes, where slot_count equals the queue
// depth and slot_size the maximum I/O size, exactly as the paper prescribes.
// A producer picks the slot for sequence number n round-robin (n % slots);
// because at most `queue_depth` commands are in flight and completion frees
// the slot, the round-robin choice is contention-free in steady state, and a
// single CAS per slot transition makes overlap detectable rather than UB.
//
// Slot lifecycle: kFree -CAS-> kWriting -store(release)-> kReady
//                 kReady -CAS-> kDraining -store(release)-> kFree
// The payload length is written to the slot header before the releasing
// store, so a consumer that observes kReady (acquire) also observes the
// length and the payload bytes.
//
// Trust model: the region is writable by both sides, so every field a peer
// controls — the slot length, the slot state word, and the epoch tag — is
// re-validated on this side of the fence before it is used. A violation
// surfaces as kPeerMisbehavior (never an out-of-bounds span): the consumer
// reclaims the slot and the caller demotes the data path to TCP.
//
// Epoch fencing: the header carries a ring_epoch that create() bumps every
// time the region is re-formatted (reconnect handshakes re-create the ring
// at the target). Producers stamp the epoch they attached under into each
// slot they publish; consumers reject slots whose stamp does not match the
// live header, so a demoted/reaped peer still holding a stale mapping cannot
// land payloads in a ring that has since been handed to its successor.
#pragma once

#include <atomic>
#include <span>

#include "common/status.h"
#include "common/types.h"
#include "common/units.h"

namespace oaf::shm {

enum class Direction : u32 {
  kClientToTarget = 0,
  kTargetToClient = 1,
};

class DoubleBufferRing {
 public:
  enum SlotState : u32 {
    kFree = 0,
    kWriting = 1,
    kReady = 2,
    kDraining = 3,
  };

  DoubleBufferRing() = default;

  /// Bytes a region must have for the given geometry; 0 if the geometry
  /// overflows u64 (callers must reject such rings).
  static u64 required_bytes(u64 slot_size, u32 slot_count);

  /// Format `mem` (size `bytes`) as a fresh ring. Returns error if the
  /// buffer is too small or the geometry is invalid. If `mem` already holds
  /// a valid ring header, the new ring's epoch is the old epoch + 1 so
  /// stale peers of the previous incarnation are fenced out.
  static Result<DoubleBufferRing> create(void* mem, u64 bytes, u64 slot_size,
                                         u32 slot_count);

  /// Attach to a region already formatted by create() (the peer side).
  static Result<DoubleBufferRing> attach(void* mem, u64 bytes);

  [[nodiscard]] u64 slot_size() const { return header_->slot_size; }
  [[nodiscard]] u32 slot_count() const { return header_->slot_count; }
  [[nodiscard]] bool valid() const { return header_ != nullptr; }

  /// Epoch of the live ring header (what consumers check against).
  [[nodiscard]] u32 ring_epoch() const { return header_->ring_epoch; }
  /// Epoch this handle attached under (what producers stamp).
  [[nodiscard]] u32 attached_epoch() const { return attached_epoch_; }

  /// Round-robin slot for sequence number `seq` (paper: offset chosen
  /// round-robin with respect to the application I/O depth).
  [[nodiscard]] u32 slot_for(u64 seq) const {
    return static_cast<u32>(seq % header_->slot_count);
  }

  /// Producer: claim `slot` for writing. Fails with kResourceExhausted if
  /// the slot is still owned by a previous in-flight I/O (QD overflow), or
  /// kPeerMisbehavior if this handle's epoch is stale (the region was
  /// re-formatted since we attached).
  Status acquire(Direction dir, u32 slot);

  /// Producer: payload area of a claimed slot.
  [[nodiscard]] std::span<u8> slot_data(Direction dir, u32 slot);

  /// Producer: make `len` bytes visible to the consumer (release store).
  Status publish(Direction dir, u32 slot, u64 len);

  /// Consumer: true if the slot has a published payload.
  [[nodiscard]] bool ready(Direction dir, u32 slot) const;

  /// Consumer: claim a published slot for draining; returns its payload.
  /// Re-validates the peer-stamped length and epoch; a violation reclaims
  /// the slot and returns kPeerMisbehavior.
  Result<std::span<const u8>> consume(Direction dir, u32 slot);

  /// Consumer: return a drained slot to the free pool.
  Status release(Direction dir, u32 slot);

  /// Consumer: drop a published payload without reading it (aborted
  /// command whose data already parked). kReady -> kFree in one step.
  Status discard(Direction dir, u32 slot);

  /// Sweeper: reclaim a slot stuck in kWriting or kDraining by a peer that
  /// died mid-transfer. Returns kFailedPrecondition if the slot is in any
  /// other state (racing a legitimate transition is detected by the CAS).
  Status force_release(Direction dir, u32 slot);

  /// Observed state (for tests and invariant checks).
  [[nodiscard]] SlotState state(Direction dir, u32 slot) const;

  /// Count of slots currently not kFree in a direction.
  [[nodiscard]] u32 in_flight(Direction dir) const;

  /// Operations this handle rejected because an epoch fence tripped (stale
  /// handle or stale slot stamp). Per-handle, not shared through the region:
  /// each side observes its own fence activity.
  [[nodiscard]] u64 fence_rejects() const { return fence_rejects_; }

 private:
  friend class ShmFaultRing;  // test-only fault injection (corrupts fields)

  // Per-slot control word, padded to a cache line so producer/consumer pairs
  // on adjacent slots never false-share. `epoch` and `len` are written by
  // the producer while it owns the slot (before the kReady release-store)
  // and read by the consumer after the acquire-CAS, so neither needs to be
  // atomic — but both are peer-controlled and re-validated at consume.
  struct alignas(64) SlotCtl {
    std::atomic<u32> state;
    u32 epoch;  // producer's attached_epoch at publish time
    u64 len;
    u8 pad[48];
  };
  static_assert(sizeof(SlotCtl) == 64);

  struct Header {
    u64 magic;
    u32 version;
    u32 slot_count;
    u64 slot_size;
    u64 total_bytes;
    u32 ring_epoch;  // bumped on every re-format of the same region
  };

  static constexpr u64 kMagic = 0x4f41465f52494e47ULL;  // "OAF_RING"
  static constexpr u32 kVersion = 2;  // v2: ring_epoch + per-slot epoch tags

  DoubleBufferRing(Header* header, SlotCtl* ctl, u8* data)
      : header_(header), ctl_(ctl), data_(data),
        attached_epoch_(header->ring_epoch) {}

  [[nodiscard]] SlotCtl& slot_ctl(Direction dir, u32 slot) const {
    const u64 base = dir == Direction::kClientToTarget ? 0 : header_->slot_count;
    return ctl_[base + slot];
  }
  [[nodiscard]] u8* slot_base(Direction dir, u32 slot) const {
    const u64 half = static_cast<u64>(header_->slot_count) * header_->slot_size;
    const u64 base = dir == Direction::kClientToTarget ? 0 : half;
    return data_ + base + static_cast<u64>(slot) * header_->slot_size;
  }
  [[nodiscard]] bool slot_in_range(u32 slot) const {
    return header_ != nullptr && slot < header_->slot_count;
  }

  Header* header_ = nullptr;
  SlotCtl* ctl_ = nullptr;
  u8* data_ = nullptr;
  u32 attached_epoch_ = 0;
  u64 fence_rejects_ = 0;  // plain (not atomic): handles stay copyable
};

}  // namespace oaf::shm

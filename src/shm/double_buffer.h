// Lock-free double-buffer ring over a shared-memory region (paper §4.4.1).
//
// The region is logically split into two independent buffers — one the
// client writes and the target reads (C2T, write payloads) and one the
// target writes and the client reads (T2C, read payloads) — giving
// bi-directional transfer with no shared cursor. Each buffer is divided into
// `slot_count` slots of `slot_size` bytes, where slot_count equals the queue
// depth and slot_size the maximum I/O size, exactly as the paper prescribes.
// A producer picks the slot for sequence number n round-robin (n % slots);
// because at most `queue_depth` commands are in flight and completion frees
// the slot, the round-robin choice is contention-free in steady state, and a
// single CAS per slot transition makes overlap detectable rather than UB.
//
// Slot lifecycle: kFree -CAS-> kWriting -CAS(release)-> kReady
//                 kReady -CAS-> kDraining -CAS(release)-> kFree
// Every transition out of an owned state is a CAS, not a store: the orphan
// sweeper (force_release) may legitimately steal a kWriting/kDraining slot
// from a peer presumed dead, and if that peer is merely slow its publish or
// release must then FAIL rather than overwrite a slot that has been recycled
// under it. The payload length is written to the slot header before the
// releasing CAS, so a consumer that observes kReady (acquire) also observes
// the length and the payload bytes.
//
// Trust model: the region is writable by both sides, so every field a peer
// controls — the slot length, the slot state word, and the epoch tag — is
// re-validated on this side of the fence before it is used. A violation
// surfaces as kPeerMisbehavior (never an out-of-bounds span): the consumer
// reclaims the slot and the caller demotes the data path to TCP.
//
// Epoch fencing: the header carries a ring_epoch that create() bumps every
// time the region is re-formatted (reconnect handshakes re-create the ring
// at the target). Producers stamp the epoch they attached under into each
// slot they publish; consumers reject slots whose stamp does not match the
// live header, so a demoted/reaped peer still holding a stale mapping cannot
// land payloads in a ring that has since been handed to its successor.
//
// Templatized over an atomics policy (common/atomics_policy.h). Production
// code uses the DoubleBufferRing alias (StdAtomicsPolicy — byte-identical to
// the untemplatized ring); the deterministic model checker instantiates
// BasicDoubleBufferRing<chk::CheckedPolicy> over the same source to verify
// the slot state machine, the epoch fence, and the sweeper/owner races
// (tests/chk/double_buffer_model_test.cpp).
#pragma once

#include <atomic>
#include <new>
#include <span>

#include "common/atomics_policy.h"
#include "common/status.h"
#include "common/types.h"
#include "common/units.h"

namespace oaf::shm {

enum class Direction : u32 {
  kClientToTarget = 0,
  kTargetToClient = 1,
};

template <typename Policy>
class BasicShmFaultRing;

template <typename Policy = StdAtomicsPolicy>
class BasicDoubleBufferRing {
  template <typename U>
  using Atomic = typename Policy::template atomic<U>;

 public:
  enum SlotState : u32 {
    kFree = 0,
    kWriting = 1,
    kReady = 2,
    kDraining = 3,
  };

  BasicDoubleBufferRing() = default;

  /// Bytes a region must have for the given geometry; 0 if the geometry
  /// overflows u64 (callers must reject such rings).
  static u64 required_bytes(u64 slot_size, u32 slot_count) {
    // The geometry is peer-controlled on attach, so the arithmetic must not
    // wrap: a forged header with slot_size * slot_count overflowing u64 would
    // otherwise pass the region-size check and index out of bounds.
    u64 half = 0;
    u64 data_bytes = 0;
    u64 total = 0;
    if (__builtin_mul_overflow(slot_size, static_cast<u64>(slot_count),
                               &half) ||
        __builtin_mul_overflow(half, 2ULL, &data_bytes)) {
      return 0;
    }
    const u64 ctl_bytes = sizeof(SlotCtl) * 2ULL * slot_count;
    if (__builtin_add_overflow(kHeaderBytes + ctl_bytes, data_bytes, &total)) {
      return 0;
    }
    return total;
  }

  /// Format `mem` (size `bytes`) as a fresh ring. Returns error if the
  /// buffer is too small or the geometry is invalid. If `mem` already holds
  /// a valid ring header, the new ring's epoch is the old epoch + 1 so
  /// stale peers of the previous incarnation are fenced out.
  static Result<BasicDoubleBufferRing> create(void* mem, u64 bytes,
                                              u64 slot_size, u32 slot_count) {
    if (mem == nullptr || slot_size == 0 || slot_count == 0) {
      return make_error(StatusCode::kInvalidArgument, "bad ring geometry");
    }
    if (reinterpret_cast<uintptr_t>(mem) % 64 != 0) {
      return make_error(StatusCode::kInvalidArgument,
                        "ring memory must be 64B aligned");
    }
    const u64 need = required_bytes(slot_size, slot_count);
    if (need == 0) {
      return make_error(StatusCode::kOutOfRange, "ring geometry overflows");
    }
    if (bytes < need) {
      return make_error(StatusCode::kOutOfRange, "region too small for ring");
    }

    // Re-formatting the same region (reconnect) bumps the epoch so a stale
    // peer of the previous incarnation can never publish into this one.
    // Epoch 0 is reserved as "never stamped".
    u32 epoch = 1;
    {
      const auto* old = static_cast<const Header*>(mem);
      if (bytes >= kHeaderBytes && old->magic == kMagic) {
        epoch = old->ring_epoch.load(std::memory_order_relaxed) + 1;
        if (epoch == 0) epoch = 1;
      }
    }

    auto* header = new (mem) Header{};
    header->magic = kMagic;
    header->version = kVersion;
    header->slot_count = slot_count;
    header->slot_size = slot_size;
    header->total_bytes = need;
    header->ring_epoch.store(epoch, std::memory_order_relaxed);
    auto* ctl_mem = static_cast<u8*>(mem) + kHeaderBytes;
    auto* ctl = reinterpret_cast<SlotCtl*>(ctl_mem);
    for (u64 i = 0; i < 2ULL * slot_count; ++i) {
      new (&ctl[i]) SlotCtl{};
      ctl[i].state.store(kFree, std::memory_order_relaxed);
      ctl[i].len.store(0, std::memory_order_relaxed);
      ctl[i].epoch.store(0, std::memory_order_relaxed);
    }
    auto* data = ctl_mem + sizeof(SlotCtl) * 2ULL * slot_count;
    Policy::fence(std::memory_order_release);
    return BasicDoubleBufferRing(header, ctl, data);
  }

  /// Attach to a region already formatted by create() (the peer side).
  static Result<BasicDoubleBufferRing> attach(void* mem, u64 bytes) {
    if (mem == nullptr || bytes < kHeaderBytes) {
      return make_error(StatusCode::kInvalidArgument, "region too small");
    }
    auto* header = static_cast<Header*>(mem);
    if (header->magic != kMagic) {
      return make_error(StatusCode::kFailedPrecondition, "ring magic mismatch");
    }
    if (header->version != kVersion) {
      return make_error(StatusCode::kFailedPrecondition,
                        "ring version mismatch");
    }
    // Every geometry field here was written by the peer: validate before use.
    const u64 need = required_bytes(header->slot_size, header->slot_count);
    if (header->slot_size == 0 || header->slot_count == 0 || need == 0 ||
        header->total_bytes > bytes || need != header->total_bytes) {
      return make_error(StatusCode::kDataLoss, "ring geometry corrupt");
    }
    auto* ctl_mem = static_cast<u8*>(mem) + kHeaderBytes;
    auto* ctl = reinterpret_cast<SlotCtl*>(ctl_mem);
    auto* data = ctl_mem + sizeof(SlotCtl) * 2ULL * header->slot_count;
    return BasicDoubleBufferRing(header, ctl, data);
  }

  [[nodiscard]] u64 slot_size() const { return header_->slot_size; }
  [[nodiscard]] u32 slot_count() const { return header_->slot_count; }
  [[nodiscard]] bool valid() const { return header_ != nullptr; }

  /// Epoch of the live ring header (what consumers check against).
  [[nodiscard]] u32 ring_epoch() const {
    return header_->ring_epoch.load(std::memory_order_relaxed);
  }
  /// Epoch this handle attached under (what producers stamp).
  [[nodiscard]] u32 attached_epoch() const { return attached_epoch_; }

  /// Round-robin slot for sequence number `seq` (paper: offset chosen
  /// round-robin with respect to the application I/O depth).
  [[nodiscard]] u32 slot_for(u64 seq) const {
    return static_cast<u32>(seq % header_->slot_count);
  }

  /// Producer: claim `slot` for writing. Fails with kResourceExhausted if
  /// the slot is still owned by a previous in-flight I/O (QD overflow), or
  /// kPeerMisbehavior if this handle's epoch is stale (the region was
  /// re-formatted since we attached).
  Status acquire(Direction dir, u32 slot) {
    if (!slot_in_range(slot)) {
      return make_error(StatusCode::kOutOfRange, "slot out of range");
    }
    if (attached_epoch_ != ring_epoch()) {
      // The region was re-formatted under us: this handle belongs to a dead
      // incarnation and must not touch the new one's slots.
      fence_rejects_++;
      return make_error(StatusCode::kPeerMisbehavior, "stale ring epoch");
    }
    u32 expected = kFree;
    if (!slot_ctl(dir, slot).state.compare_exchange_strong(
            expected, kWriting, std::memory_order_acquire,
            std::memory_order_relaxed)) {
      return make_error(StatusCode::kResourceExhausted, "slot busy");
    }
    return Status::ok();
  }

  /// Producer: payload area of a claimed slot.
  [[nodiscard]] std::span<u8> slot_data(Direction dir, u32 slot) {
    if (!slot_in_range(slot)) return {};
    return {slot_base(dir, slot), header_->slot_size};
  }

  /// Producer: make `len` bytes visible to the consumer (release CAS). Fails
  /// with kFailedPrecondition if the slot is not in kWriting — including
  /// when the orphan sweeper reclaimed it from under a slow producer, in
  /// which case the payload must be considered lost, never re-published.
  Status publish(Direction dir, u32 slot, u64 len) {
    if (!slot_in_range(slot) || len > header_->slot_size) {
      return make_error(StatusCode::kOutOfRange, "publish length exceeds slot");
    }
    if (attached_epoch_ != ring_epoch()) {
      // Re-formatted between acquire and publish: leave the slot to the
      // orphan sweeper rather than inject a payload into the new incarnation.
      fence_rejects_++;
      return make_error(StatusCode::kPeerMisbehavior, "stale ring epoch");
    }
    SlotCtl& ctl = slot_ctl(dir, slot);
    if (ctl.state.load(std::memory_order_relaxed) != kWriting) {
      // Caller misuse (no acquire) — fail before touching the slot. NOT the
      // authority on ownership: the sweeper may still steal the slot after
      // this check, which the CAS below detects.
      return make_error(StatusCode::kFailedPrecondition,
                        "publish without acquire");
    }
    // len/epoch land before the state CAS; if the CAS loses (sweeper stole
    // the slot) they are dead values a future publish fully rewrites, and
    // consume() re-validates both regardless.
    ctl.len.store(len, std::memory_order_relaxed);
    ctl.epoch.store(attached_epoch_, std::memory_order_relaxed);
    u32 expected = kWriting;
    if (!ctl.state.compare_exchange_strong(expected, kReady,
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {
      return make_error(StatusCode::kFailedPrecondition,
                        "publish without acquire");
    }
    return Status::ok();
  }

  /// Consumer: true if the slot has a published payload.
  [[nodiscard]] bool ready(Direction dir, u32 slot) const {
    if (!slot_in_range(slot)) return false;
    return slot_ctl(dir, slot).state.load(std::memory_order_acquire) == kReady;
  }

  /// Consumer: claim a published slot for draining; returns its payload.
  /// Re-validates the peer-stamped length and epoch; a violation reclaims
  /// the slot and returns kPeerMisbehavior.
  Result<std::span<const u8>> consume(Direction dir, u32 slot) {
    if (!slot_in_range(slot)) {
      return make_error(StatusCode::kOutOfRange, "slot out of range");
    }
    SlotCtl& ctl = slot_ctl(dir, slot);
    u32 expected = kReady;
    if (!ctl.state.compare_exchange_strong(expected, kDraining,
                                           std::memory_order_acquire,
                                           std::memory_order_relaxed)) {
      return make_error(StatusCode::kUnavailable, "slot not ready");
    }
    // `len` and `epoch` were written by the peer; trust neither. A violation
    // reclaims the slot so the ring stays usable while the caller demotes.
    if (ctl.epoch.load(std::memory_order_relaxed) != ring_epoch()) {
      reclaim(ctl);
      fence_rejects_++;
      return make_error(StatusCode::kPeerMisbehavior, "stale slot epoch");
    }
    const u64 len = ctl.len.load(std::memory_order_relaxed);
    if (len > header_->slot_size) {
      reclaim(ctl);
      fence_rejects_++;
      return make_error(StatusCode::kPeerMisbehavior,
                        "slot length exceeds slot size");
    }
    return std::span<const u8>(slot_base(dir, slot), len);
  }

  /// Consumer: return a drained slot to the free pool. Fails with
  /// kFailedPrecondition if the slot is not in kDraining — including when
  /// the orphan sweeper reclaimed it from a consumer presumed dead.
  Status release(Direction dir, u32 slot) {
    if (!slot_in_range(slot)) {
      return make_error(StatusCode::kOutOfRange, "slot out of range");
    }
    SlotCtl& ctl = slot_ctl(dir, slot);
    if (ctl.state.load(std::memory_order_relaxed) != kDraining) {
      return make_error(StatusCode::kFailedPrecondition,
                        "release without consume");
    }
    ctl.len.store(0, std::memory_order_relaxed);
    ctl.epoch.store(0, std::memory_order_relaxed);
    u32 expected = kDraining;
    if (!ctl.state.compare_exchange_strong(expected, kFree,
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {
      return make_error(StatusCode::kFailedPrecondition,
                        "release without consume");
    }
    return Status::ok();
  }

  /// Consumer: drop a published payload without reading it (aborted
  /// command whose data already parked). kReady -> kFree in one step.
  Status discard(Direction dir, u32 slot) {
    if (!slot_in_range(slot)) {
      return make_error(StatusCode::kOutOfRange, "slot out of range");
    }
    SlotCtl& ctl = slot_ctl(dir, slot);
    u32 expected = kReady;
    if (!ctl.state.compare_exchange_strong(expected, kDraining,
                                           std::memory_order_acquire,
                                           std::memory_order_relaxed)) {
      return make_error(StatusCode::kUnavailable, "slot not ready");
    }
    reclaim(ctl);
    return Status::ok();
  }

  /// Sweeper: reclaim a slot stuck in kWriting or kDraining by a peer that
  /// died mid-transfer. Returns kFailedPrecondition if the slot is in any
  /// other state (racing a legitimate transition is detected by the CAS).
  Status force_release(Direction dir, u32 slot) {
    if (!slot_in_range(slot)) {
      return make_error(StatusCode::kOutOfRange, "slot out of range");
    }
    SlotCtl& ctl = slot_ctl(dir, slot);
    u32 cur = ctl.state.load(std::memory_order_acquire);
    if (cur != kWriting && cur != kDraining) {
      return make_error(StatusCode::kFailedPrecondition, "slot not stuck");
    }
    // Claim by moving to the *other* mid-transfer state — a transition no
    // legitimate owner ever performs, so winning the CAS means exclusive
    // ownership, and a resurrected owner's publish/release fails its own
    // state CAS instead of corrupting a recycled slot.
    const u32 claim = cur == kWriting ? kDraining : kWriting;
    if (!ctl.state.compare_exchange_strong(cur, claim,
                                           std::memory_order_acquire,
                                           std::memory_order_relaxed)) {
      return make_error(StatusCode::kFailedPrecondition, "lost race to owner");
    }
    reclaim(ctl);
    return Status::ok();
  }

  /// Observed state (for tests and invariant checks).
  [[nodiscard]] SlotState state(Direction dir, u32 slot) const {
    if (!slot_in_range(slot)) return kFree;
    return static_cast<SlotState>(
        slot_ctl(dir, slot).state.load(std::memory_order_acquire));
  }

  /// Count of slots currently not kFree in a direction.
  [[nodiscard]] u32 in_flight(Direction dir) const {
    if (header_ == nullptr) return 0;
    u32 n = 0;
    for (u32 s = 0; s < header_->slot_count; ++s) {
      if (state(dir, s) != kFree) n++;
    }
    return n;
  }

  /// Operations this handle rejected because an epoch fence tripped (stale
  /// handle or stale slot stamp). Per-handle, not shared through the region:
  /// each side observes its own fence activity.
  [[nodiscard]] u64 fence_rejects() const { return fence_rejects_; }

 private:
  friend class BasicShmFaultRing<Policy>;  // test-only fault injection

  // Per-slot control word, padded to a cache line so producer/consumer pairs
  // on adjacent slots never false-share. `epoch` and `len` are written by
  // the producer while it owns the slot (before the kReady release-CAS) and
  // read by the consumer after the acquire-CAS. They are relaxed atomics —
  // the state CAS carries all ordering — because the orphan sweeper may zero
  // them concurrently with a slow owner's last write, and both are
  // peer-controlled and re-validated at consume anyway.
  struct alignas(64) SlotCtl {
    Atomic<u32> state;
    Atomic<u32> epoch;  // producer's attached_epoch at publish time
    Atomic<u64> len;
    u8 pad[48];
  };
  static_assert(Policy::kChecked || sizeof(SlotCtl) == 64,
                "SlotCtl is wire format: one cache line per slot");

  struct Header {
    u64 magic;
    u32 version;
    u32 slot_count;
    u64 slot_size;
    u64 total_bytes;
    // Bumped on every re-format of the same region; read concurrently by
    // handles of older incarnations probing whether they are stale.
    Atomic<u32> ring_epoch;
  };

  static constexpr u64 kMagic = 0x4f41465f52494e47ULL;  // "OAF_RING"
  static constexpr u32 kVersion = 2;  // v2: ring_epoch + per-slot epoch tags
  static constexpr u64 kHeaderBytes = 64;  // Header padded to one cache line
  static_assert(Policy::kChecked || sizeof(Header) <= kHeaderBytes);

  BasicDoubleBufferRing(Header* header, SlotCtl* ctl, u8* data)
      : header_(header), ctl_(ctl), data_(data),
        attached_epoch_(header->ring_epoch.load(std::memory_order_relaxed)) {}

  /// Zero the peer-stamped fields and free a slot this side owns (it holds
  /// the slot in a mid-transfer state it legitimately claimed).
  static void reclaim(SlotCtl& ctl) {
    ctl.len.store(0, std::memory_order_relaxed);
    ctl.epoch.store(0, std::memory_order_relaxed);
    ctl.state.store(kFree, std::memory_order_release);
  }

  [[nodiscard]] SlotCtl& slot_ctl(Direction dir, u32 slot) const {
    const u64 base =
        dir == Direction::kClientToTarget ? 0 : header_->slot_count;
    return ctl_[base + slot];
  }
  [[nodiscard]] u8* slot_base(Direction dir, u32 slot) const {
    const u64 half =
        static_cast<u64>(header_->slot_count) * header_->slot_size;
    const u64 base = dir == Direction::kClientToTarget ? 0 : half;
    return data_ + base + static_cast<u64>(slot) * header_->slot_size;
  }
  [[nodiscard]] bool slot_in_range(u32 slot) const {
    return header_ != nullptr && slot < header_->slot_count;
  }

  Header* header_ = nullptr;
  SlotCtl* ctl_ = nullptr;
  u8* data_ = nullptr;
  u32 attached_epoch_ = 0;
  u64 fence_rejects_ = 0;  // plain (not atomic): handles stay copyable
};

/// Production ring: byte-identical layout and behavior to the pre-policy
/// implementation (std::atomic, plain stores compile to the same code).
using DoubleBufferRing = BasicDoubleBufferRing<StdAtomicsPolicy>;

extern template class BasicDoubleBufferRing<StdAtomicsPolicy>;

}  // namespace oaf::shm

// Lock-free double-buffer ring over a shared-memory region (paper §4.4.1).
//
// The region is logically split into two independent buffers — one the
// client writes and the target reads (C2T, write payloads) and one the
// target writes and the client reads (T2C, read payloads) — giving
// bi-directional transfer with no shared cursor. Each buffer is divided into
// `slot_count` slots of `slot_size` bytes, where slot_count equals the queue
// depth and slot_size the maximum I/O size, exactly as the paper prescribes.
// A producer picks the slot for sequence number n round-robin (n % slots);
// because at most `queue_depth` commands are in flight and completion frees
// the slot, the round-robin choice is contention-free in steady state, and a
// single CAS per slot transition makes overlap detectable rather than UB.
//
// Slot lifecycle: kFree -CAS-> kWriting -store(release)-> kReady
//                 kReady -CAS-> kDraining -store(release)-> kFree
// The payload length is written to the slot header before the releasing
// store, so a consumer that observes kReady (acquire) also observes the
// length and the payload bytes.
#pragma once

#include <atomic>
#include <span>

#include "common/status.h"
#include "common/types.h"
#include "common/units.h"

namespace oaf::shm {

enum class Direction : u32 {
  kClientToTarget = 0,
  kTargetToClient = 1,
};

class DoubleBufferRing {
 public:
  enum SlotState : u32 {
    kFree = 0,
    kWriting = 1,
    kReady = 2,
    kDraining = 3,
  };

  DoubleBufferRing() = default;

  /// Bytes a region must have for the given geometry.
  static u64 required_bytes(u64 slot_size, u32 slot_count);

  /// Format `mem` (size `bytes`) as a fresh ring. Returns error if the
  /// buffer is too small or the geometry is invalid.
  static Result<DoubleBufferRing> create(void* mem, u64 bytes, u64 slot_size,
                                         u32 slot_count);

  /// Attach to a region already formatted by create() (the peer side).
  static Result<DoubleBufferRing> attach(void* mem, u64 bytes);

  [[nodiscard]] u64 slot_size() const { return header_->slot_size; }
  [[nodiscard]] u32 slot_count() const { return header_->slot_count; }
  [[nodiscard]] bool valid() const { return header_ != nullptr; }

  /// Round-robin slot for sequence number `seq` (paper: offset chosen
  /// round-robin with respect to the application I/O depth).
  [[nodiscard]] u32 slot_for(u64 seq) const {
    return static_cast<u32>(seq % header_->slot_count);
  }

  /// Producer: claim `slot` for writing. Fails with kResourceExhausted if
  /// the slot is still owned by a previous in-flight I/O (QD overflow).
  Status acquire(Direction dir, u32 slot);

  /// Producer: payload area of a claimed slot.
  [[nodiscard]] std::span<u8> slot_data(Direction dir, u32 slot);

  /// Producer: make `len` bytes visible to the consumer (release store).
  Status publish(Direction dir, u32 slot, u64 len);

  /// Consumer: true if the slot has a published payload.
  [[nodiscard]] bool ready(Direction dir, u32 slot) const;

  /// Consumer: claim a published slot for draining; returns its payload.
  Result<std::span<const u8>> consume(Direction dir, u32 slot);

  /// Consumer: return a drained slot to the free pool.
  Status release(Direction dir, u32 slot);

  /// Observed state (for tests and invariant checks).
  [[nodiscard]] SlotState state(Direction dir, u32 slot) const;

  /// Count of slots currently not kFree in a direction.
  [[nodiscard]] u32 in_flight(Direction dir) const;

 private:
  // Per-slot control word, padded to a cache line so producer/consumer pairs
  // on adjacent slots never false-share.
  struct alignas(64) SlotCtl {
    std::atomic<u32> state;
    u64 len;  // placed at offset 8 after implicit padding
    u8 pad[48];
  };
  static_assert(sizeof(SlotCtl) == 64);

  struct Header {
    u64 magic;
    u32 version;
    u32 slot_count;
    u64 slot_size;
    u64 total_bytes;
  };

  static constexpr u64 kMagic = 0x4f41465f52494e47ULL;  // "OAF_RING"
  static constexpr u32 kVersion = 1;

  DoubleBufferRing(Header* header, SlotCtl* ctl, u8* data)
      : header_(header), ctl_(ctl), data_(data) {}

  [[nodiscard]] SlotCtl& slot_ctl(Direction dir, u32 slot) const {
    const u64 base = dir == Direction::kClientToTarget ? 0 : header_->slot_count;
    return ctl_[base + slot];
  }
  [[nodiscard]] u8* slot_base(Direction dir, u32 slot) const {
    const u64 half = static_cast<u64>(header_->slot_count) * header_->slot_size;
    const u64 base = dir == Direction::kClientToTarget ? 0 : half;
    return data_ + base + static_cast<u64>(slot) * header_->slot_size;
  }
  [[nodiscard]] bool slot_in_range(u32 slot) const {
    return header_ != nullptr && slot < header_->slot_count;
  }

  Header* header_ = nullptr;
  SlotCtl* ctl_ = nullptr;
  u8* data_ = nullptr;
};

}  // namespace oaf::shm

// Pre-reserved shared-memory page used by the locality helper (paper §4.2).
//
// In a real deployment a helper process (Kubernetes / OpenStack / SLURM
// agent) hotplugs an IVSHMEM/ICSHMEM region into the VM/container and then
// signals readiness by setting a flag in a page both sides pre-map. The
// Connection Manager polls this flag. Here the page is a small struct at a
// fixed offset: a generation counter (incremented per hotplug event), the
// host-identity token used for locality checks, and the name of the granted
// data region.
#pragma once

#include <atomic>
#include <cstring>
#include <string>

#include "common/types.h"

namespace oaf::shm {

class LocalityPage {
 public:
  static constexpr u64 kBytes = 256;
  static constexpr u64 kNameCapacity = 128;

  /// Interpret `mem` (>= kBytes) as a locality page; `init` clears it.
  explicit LocalityPage(void* mem, bool init = false)
      : ctl_(static_cast<Ctl*>(mem)) {
    if (init) {
      ctl_->generation.store(0, std::memory_order_relaxed);
      ctl_->opened.store(0, std::memory_order_relaxed);
      ctl_->node_token = 0;
      std::memset(ctl_->region_name, 0, sizeof(ctl_->region_name));
    }
  }

  /// Helper side: announce that `region_name` has been hotplugged on the
  /// host identified by `node_token`. The generation bump is the release
  /// point the poller synchronizes with.
  void announce(u64 node_token, const std::string& region_name) {
    ctl_->node_token = node_token;
    const size_t n = std::min<size_t>(region_name.size(), kNameCapacity - 1);
    std::memcpy(ctl_->region_name, region_name.data(), n);
    ctl_->region_name[n] = '\0';
    ctl_->generation.fetch_add(1, std::memory_order_release);
  }

  /// Poller side: current generation (0 = nothing announced yet).
  [[nodiscard]] u64 generation() const {
    return ctl_->generation.load(std::memory_order_acquire);
  }

  /// Claim the region for this client. Exactly one claim ever succeeds —
  /// the cross-process form of the paper's one-region-per-connection
  /// isolation rule (§6); works between processes because the flag lives
  /// in the shared page itself.
  bool try_claim() {
    u32 expected = 0;
    return ctl_->opened.compare_exchange_strong(expected, 1,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire);
  }

  [[nodiscard]] bool claimed() const {
    return ctl_->opened.load(std::memory_order_acquire) != 0;
  }

  [[nodiscard]] u64 node_token() const { return ctl_->node_token; }

  [[nodiscard]] std::string region_name() const {
    return std::string(ctl_->region_name);
  }

 private:
  struct Ctl {
    std::atomic<u64> generation;
    std::atomic<u32> opened;
    u64 node_token;
    char region_name[kNameCapacity];
  };
  static_assert(sizeof(Ctl) <= kBytes);

  Ctl* ctl_;
};

}  // namespace oaf::shm

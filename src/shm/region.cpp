#include "shm/region.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace oaf::shm {

namespace {
std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}
}  // namespace

ShmRegion::~ShmRegion() { reset(); }

ShmRegion::ShmRegion(ShmRegion&& other) noexcept
    : addr_(std::exchange(other.addr_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      name_(std::move(other.name_)),
      owner_(std::exchange(other.owner_, false)) {
  other.name_.clear();
}

ShmRegion& ShmRegion::operator=(ShmRegion&& other) noexcept {
  if (this != &other) {
    reset();
    addr_ = std::exchange(other.addr_, nullptr);
    size_ = std::exchange(other.size_, 0);
    name_ = std::move(other.name_);
    other.name_.clear();
    owner_ = std::exchange(other.owner_, false);
  }
  return *this;
}

void ShmRegion::reset() {
  if (addr_ != nullptr) {
    ::munmap(addr_, size_);
    addr_ = nullptr;
  }
  if (owner_ && !name_.empty()) {
    ::shm_unlink(name_.c_str());
  }
  size_ = 0;
  name_.clear();
  owner_ = false;
}

Result<ShmRegion> ShmRegion::create(const std::string& name, u64 bytes) {
  if (name.empty() || name[0] != '/' || bytes == 0) {
    return make_error(StatusCode::kInvalidArgument,
                      "shm name must start with '/' and size must be > 0");
  }
  const int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) {
    if (errno == EEXIST) {
      return make_error(StatusCode::kAlreadyExists, "shm region exists: " + name);
    }
    return make_error(StatusCode::kInternal, errno_message("shm_open"));
  }
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    const auto err = errno_message("ftruncate");
    ::close(fd);
    ::shm_unlink(name.c_str());
    return make_error(StatusCode::kResourceExhausted, err);
  }
  void* addr = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) {
    ::shm_unlink(name.c_str());
    return make_error(StatusCode::kResourceExhausted, errno_message("mmap"));
  }
  return ShmRegion(addr, bytes, name, /*owner=*/true);
}

Result<ShmRegion> ShmRegion::attach(const std::string& name) {
  const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) {
    return make_error(StatusCode::kNotFound, errno_message("shm_open"));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return make_error(StatusCode::kInternal, errno_message("fstat"));
  }
  const u64 bytes = static_cast<u64>(st.st_size);
  void* addr = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) {
    return make_error(StatusCode::kResourceExhausted, errno_message("mmap"));
  }
  return ShmRegion(addr, bytes, name, /*owner=*/false);
}

Result<ShmRegion> ShmRegion::anonymous(u64 bytes) {
  if (bytes == 0) {
    return make_error(StatusCode::kInvalidArgument, "size must be > 0");
  }
  void* addr = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (addr == MAP_FAILED) {
    return make_error(StatusCode::kResourceExhausted, errno_message("mmap"));
  }
  return ShmRegion(addr, bytes, std::string(), /*owner=*/false);
}

void ShmRegion::unlink() {
  if (!name_.empty()) {
    ::shm_unlink(name_.c_str());
    owner_ = false;
  }
}

}  // namespace oaf::shm

// The "SHM-baseline" of the paper's ablation (Fig 8): a naive shared-memory
// transfer buffer guarded by a spinlock. Every producer/consumer access takes
// the lock, and there is a single staging area per direction, so concurrent
// I/Os serialize. Exists to quantify what the lock-free double-buffer design
// buys; never used by the optimized NVMe-oAF path.
#pragma once

#include <atomic>
#include <span>

#include "common/status.h"
#include "common/types.h"

namespace oaf::shm {

class LockedSharedBuffer {
 public:
  /// Bytes required in the backing region for a buffer of `capacity`.
  static u64 required_bytes(u64 capacity) { return kHeaderBytes + capacity; }

  static Result<LockedSharedBuffer> create(void* mem, u64 bytes, u64 capacity);

  /// Producer: copy `data` into the staging area. Spins while the previous
  /// payload has not been drained (the serialization the ablation measures).
  Status put(std::span<const u8> data);

  /// Consumer: true if a payload is staged.
  [[nodiscard]] bool has_payload() const;

  /// Consumer: copy the staged payload out into `out` (must be large
  /// enough); returns the payload size and frees the staging area.
  Result<u64> take(std::span<u8> out);

  [[nodiscard]] u64 capacity() const { return capacity_; }
  [[nodiscard]] u64 lock_contentions() const {
    return ctl_->contentions.load(std::memory_order_relaxed);
  }

 private:
  static constexpr u64 kHeaderBytes = 128;

  struct Ctl {
    std::atomic<u32> lock;      ///< 0 = unlocked
    std::atomic<u32> full;      ///< 1 = payload staged
    u64 len;
    std::atomic<u64> contentions;
  };

  LockedSharedBuffer(Ctl* ctl, u8* data, u64 capacity)
      : ctl_(ctl), data_(data), capacity_(capacity) {}

  void lock();
  void unlock();

  Ctl* ctl_ = nullptr;
  u8* data_ = nullptr;
  u64 capacity_ = 0;
};

}  // namespace oaf::shm

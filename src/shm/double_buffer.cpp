#include "shm/double_buffer.h"

#include <cstring>
#include <new>

namespace oaf::shm {

namespace {
constexpr u64 kHeaderBytes = 64;  // Header padded to one cache line
}

u64 DoubleBufferRing::required_bytes(u64 slot_size, u32 slot_count) {
  const u64 ctl_bytes = sizeof(SlotCtl) * 2ULL * slot_count;
  const u64 data_bytes = 2ULL * slot_size * slot_count;
  return kHeaderBytes + ctl_bytes + data_bytes;
}

Result<DoubleBufferRing> DoubleBufferRing::create(void* mem, u64 bytes,
                                                  u64 slot_size, u32 slot_count) {
  if (mem == nullptr || slot_size == 0 || slot_count == 0) {
    return make_error(StatusCode::kInvalidArgument, "bad ring geometry");
  }
  if (reinterpret_cast<uintptr_t>(mem) % 64 != 0) {
    return make_error(StatusCode::kInvalidArgument, "ring memory must be 64B aligned");
  }
  const u64 need = required_bytes(slot_size, slot_count);
  if (bytes < need) {
    return make_error(StatusCode::kOutOfRange, "region too small for ring");
  }

  auto* header = new (mem) Header{kMagic, kVersion, slot_count, slot_size, need};
  auto* ctl_mem = static_cast<u8*>(mem) + kHeaderBytes;
  auto* ctl = reinterpret_cast<SlotCtl*>(ctl_mem);
  for (u64 i = 0; i < 2ULL * slot_count; ++i) {
    new (&ctl[i]) SlotCtl{};
    ctl[i].state.store(kFree, std::memory_order_relaxed);
    ctl[i].len = 0;
  }
  auto* data = ctl_mem + sizeof(SlotCtl) * 2ULL * slot_count;
  std::atomic_thread_fence(std::memory_order_release);
  return DoubleBufferRing(header, ctl, data);
}

Result<DoubleBufferRing> DoubleBufferRing::attach(void* mem, u64 bytes) {
  if (mem == nullptr || bytes < kHeaderBytes) {
    return make_error(StatusCode::kInvalidArgument, "region too small");
  }
  auto* header = static_cast<Header*>(mem);
  if (header->magic != kMagic) {
    return make_error(StatusCode::kFailedPrecondition, "ring magic mismatch");
  }
  if (header->version != kVersion) {
    return make_error(StatusCode::kFailedPrecondition, "ring version mismatch");
  }
  if (header->total_bytes > bytes ||
      required_bytes(header->slot_size, header->slot_count) != header->total_bytes) {
    return make_error(StatusCode::kDataLoss, "ring geometry corrupt");
  }
  auto* ctl_mem = static_cast<u8*>(mem) + kHeaderBytes;
  auto* ctl = reinterpret_cast<SlotCtl*>(ctl_mem);
  auto* data = ctl_mem + sizeof(SlotCtl) * 2ULL * header->slot_count;
  return DoubleBufferRing(header, ctl, data);
}

Status DoubleBufferRing::acquire(Direction dir, u32 slot) {
  if (!slot_in_range(slot)) {
    return make_error(StatusCode::kOutOfRange, "slot out of range");
  }
  u32 expected = kFree;
  if (!slot_ctl(dir, slot).state.compare_exchange_strong(
          expected, kWriting, std::memory_order_acquire,
          std::memory_order_relaxed)) {
    return make_error(StatusCode::kResourceExhausted, "slot busy");
  }
  return Status::ok();
}

std::span<u8> DoubleBufferRing::slot_data(Direction dir, u32 slot) {
  if (!slot_in_range(slot)) return {};
  return {slot_base(dir, slot), header_->slot_size};
}

Status DoubleBufferRing::publish(Direction dir, u32 slot, u64 len) {
  if (!slot_in_range(slot) || len > header_->slot_size) {
    return make_error(StatusCode::kOutOfRange, "publish length exceeds slot");
  }
  SlotCtl& ctl = slot_ctl(dir, slot);
  if (ctl.state.load(std::memory_order_relaxed) != kWriting) {
    return make_error(StatusCode::kFailedPrecondition, "publish without acquire");
  }
  ctl.len = len;
  ctl.state.store(kReady, std::memory_order_release);
  return Status::ok();
}

bool DoubleBufferRing::ready(Direction dir, u32 slot) const {
  if (!slot_in_range(slot)) return false;
  return slot_ctl(dir, slot).state.load(std::memory_order_acquire) == kReady;
}

Result<std::span<const u8>> DoubleBufferRing::consume(Direction dir, u32 slot) {
  if (!slot_in_range(slot)) {
    return make_error(StatusCode::kOutOfRange, "slot out of range");
  }
  SlotCtl& ctl = slot_ctl(dir, slot);
  u32 expected = kReady;
  if (!ctl.state.compare_exchange_strong(expected, kDraining,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
    return make_error(StatusCode::kUnavailable, "slot not ready");
  }
  return std::span<const u8>(slot_base(dir, slot), ctl.len);
}

Status DoubleBufferRing::release(Direction dir, u32 slot) {
  if (!slot_in_range(slot)) {
    return make_error(StatusCode::kOutOfRange, "slot out of range");
  }
  SlotCtl& ctl = slot_ctl(dir, slot);
  if (ctl.state.load(std::memory_order_relaxed) != kDraining) {
    return make_error(StatusCode::kFailedPrecondition, "release without consume");
  }
  ctl.len = 0;
  ctl.state.store(kFree, std::memory_order_release);
  return Status::ok();
}

DoubleBufferRing::SlotState DoubleBufferRing::state(Direction dir, u32 slot) const {
  if (!slot_in_range(slot)) return kFree;
  return static_cast<SlotState>(
      slot_ctl(dir, slot).state.load(std::memory_order_acquire));
}

u32 DoubleBufferRing::in_flight(Direction dir) const {
  if (header_ == nullptr) return 0;
  u32 n = 0;
  for (u32 s = 0; s < header_->slot_count; ++s) {
    if (state(dir, s) != kFree) n++;
  }
  return n;
}

}  // namespace oaf::shm

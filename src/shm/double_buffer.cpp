#include "shm/double_buffer.h"

#include <cstring>
#include <new>

namespace oaf::shm {

namespace {
constexpr u64 kHeaderBytes = 64;  // Header padded to one cache line
}

u64 DoubleBufferRing::required_bytes(u64 slot_size, u32 slot_count) {
  // The geometry is peer-controlled on attach, so the arithmetic must not
  // wrap: a forged header with slot_size * slot_count overflowing u64 would
  // otherwise pass the region-size check and index out of bounds.
  u64 half = 0;
  u64 data_bytes = 0;
  u64 total = 0;
  if (__builtin_mul_overflow(slot_size, static_cast<u64>(slot_count), &half) ||
      __builtin_mul_overflow(half, 2ULL, &data_bytes)) {
    return 0;
  }
  const u64 ctl_bytes = sizeof(SlotCtl) * 2ULL * slot_count;
  if (__builtin_add_overflow(kHeaderBytes + ctl_bytes, data_bytes, &total)) {
    return 0;
  }
  return total;
}

Result<DoubleBufferRing> DoubleBufferRing::create(void* mem, u64 bytes,
                                                  u64 slot_size, u32 slot_count) {
  if (mem == nullptr || slot_size == 0 || slot_count == 0) {
    return make_error(StatusCode::kInvalidArgument, "bad ring geometry");
  }
  if (reinterpret_cast<uintptr_t>(mem) % 64 != 0) {
    return make_error(StatusCode::kInvalidArgument, "ring memory must be 64B aligned");
  }
  const u64 need = required_bytes(slot_size, slot_count);
  if (need == 0) {
    return make_error(StatusCode::kOutOfRange, "ring geometry overflows");
  }
  if (bytes < need) {
    return make_error(StatusCode::kOutOfRange, "region too small for ring");
  }

  // Re-formatting the same region (reconnect) bumps the epoch so a stale
  // peer of the previous incarnation can never publish into this one.
  // Epoch 0 is reserved as "never stamped".
  u32 epoch = 1;
  {
    const auto* old = static_cast<const Header*>(mem);
    if (bytes >= kHeaderBytes && old->magic == kMagic) {
      epoch = old->ring_epoch + 1;
      if (epoch == 0) epoch = 1;
    }
  }

  auto* header =
      new (mem) Header{kMagic, kVersion, slot_count, slot_size, need, epoch};
  auto* ctl_mem = static_cast<u8*>(mem) + kHeaderBytes;
  auto* ctl = reinterpret_cast<SlotCtl*>(ctl_mem);
  for (u64 i = 0; i < 2ULL * slot_count; ++i) {
    new (&ctl[i]) SlotCtl{};
    ctl[i].state.store(kFree, std::memory_order_relaxed);
    ctl[i].len = 0;
    ctl[i].epoch = 0;
  }
  auto* data = ctl_mem + sizeof(SlotCtl) * 2ULL * slot_count;
  std::atomic_thread_fence(std::memory_order_release);
  return DoubleBufferRing(header, ctl, data);
}

Result<DoubleBufferRing> DoubleBufferRing::attach(void* mem, u64 bytes) {
  if (mem == nullptr || bytes < kHeaderBytes) {
    return make_error(StatusCode::kInvalidArgument, "region too small");
  }
  auto* header = static_cast<Header*>(mem);
  if (header->magic != kMagic) {
    return make_error(StatusCode::kFailedPrecondition, "ring magic mismatch");
  }
  if (header->version != kVersion) {
    return make_error(StatusCode::kFailedPrecondition, "ring version mismatch");
  }
  // Every geometry field here was written by the peer: validate before use.
  const u64 need = required_bytes(header->slot_size, header->slot_count);
  if (header->slot_size == 0 || header->slot_count == 0 || need == 0 ||
      header->total_bytes > bytes || need != header->total_bytes) {
    return make_error(StatusCode::kDataLoss, "ring geometry corrupt");
  }
  auto* ctl_mem = static_cast<u8*>(mem) + kHeaderBytes;
  auto* ctl = reinterpret_cast<SlotCtl*>(ctl_mem);
  auto* data = ctl_mem + sizeof(SlotCtl) * 2ULL * header->slot_count;
  return DoubleBufferRing(header, ctl, data);
}

Status DoubleBufferRing::acquire(Direction dir, u32 slot) {
  if (!slot_in_range(slot)) {
    return make_error(StatusCode::kOutOfRange, "slot out of range");
  }
  if (attached_epoch_ != header_->ring_epoch) {
    // The region was re-formatted under us: this handle belongs to a dead
    // incarnation and must not touch the new one's slots.
    fence_rejects_++;
    return make_error(StatusCode::kPeerMisbehavior, "stale ring epoch");
  }
  u32 expected = kFree;
  if (!slot_ctl(dir, slot).state.compare_exchange_strong(
          expected, kWriting, std::memory_order_acquire,
          std::memory_order_relaxed)) {
    return make_error(StatusCode::kResourceExhausted, "slot busy");
  }
  return Status::ok();
}

std::span<u8> DoubleBufferRing::slot_data(Direction dir, u32 slot) {
  if (!slot_in_range(slot)) return {};
  return {slot_base(dir, slot), header_->slot_size};
}

Status DoubleBufferRing::publish(Direction dir, u32 slot, u64 len) {
  if (!slot_in_range(slot) || len > header_->slot_size) {
    return make_error(StatusCode::kOutOfRange, "publish length exceeds slot");
  }
  if (attached_epoch_ != header_->ring_epoch) {
    // Re-formatted between acquire and publish: leave the slot to the
    // orphan sweeper rather than inject a payload into the new incarnation.
    fence_rejects_++;
    return make_error(StatusCode::kPeerMisbehavior, "stale ring epoch");
  }
  SlotCtl& ctl = slot_ctl(dir, slot);
  if (ctl.state.load(std::memory_order_relaxed) != kWriting) {
    return make_error(StatusCode::kFailedPrecondition, "publish without acquire");
  }
  ctl.len = len;
  ctl.epoch = attached_epoch_;
  ctl.state.store(kReady, std::memory_order_release);
  return Status::ok();
}

bool DoubleBufferRing::ready(Direction dir, u32 slot) const {
  if (!slot_in_range(slot)) return false;
  return slot_ctl(dir, slot).state.load(std::memory_order_acquire) == kReady;
}

Result<std::span<const u8>> DoubleBufferRing::consume(Direction dir, u32 slot) {
  if (!slot_in_range(slot)) {
    return make_error(StatusCode::kOutOfRange, "slot out of range");
  }
  SlotCtl& ctl = slot_ctl(dir, slot);
  u32 expected = kReady;
  if (!ctl.state.compare_exchange_strong(expected, kDraining,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
    return make_error(StatusCode::kUnavailable, "slot not ready");
  }
  // `len` and `epoch` were written by the peer; trust neither. A violation
  // reclaims the slot so the ring stays usable while the caller demotes.
  if (ctl.epoch != header_->ring_epoch) {
    ctl.len = 0;
    ctl.epoch = 0;
    ctl.state.store(kFree, std::memory_order_release);
    fence_rejects_++;
    return make_error(StatusCode::kPeerMisbehavior, "stale slot epoch");
  }
  if (ctl.len > header_->slot_size) {
    ctl.len = 0;
    ctl.epoch = 0;
    ctl.state.store(kFree, std::memory_order_release);
    fence_rejects_++;
    return make_error(StatusCode::kPeerMisbehavior,
                      "slot length exceeds slot size");
  }
  return std::span<const u8>(slot_base(dir, slot), ctl.len);
}

Status DoubleBufferRing::release(Direction dir, u32 slot) {
  if (!slot_in_range(slot)) {
    return make_error(StatusCode::kOutOfRange, "slot out of range");
  }
  SlotCtl& ctl = slot_ctl(dir, slot);
  if (ctl.state.load(std::memory_order_relaxed) != kDraining) {
    return make_error(StatusCode::kFailedPrecondition, "release without consume");
  }
  ctl.len = 0;
  ctl.epoch = 0;
  ctl.state.store(kFree, std::memory_order_release);
  return Status::ok();
}

Status DoubleBufferRing::discard(Direction dir, u32 slot) {
  if (!slot_in_range(slot)) {
    return make_error(StatusCode::kOutOfRange, "slot out of range");
  }
  SlotCtl& ctl = slot_ctl(dir, slot);
  u32 expected = kReady;
  if (!ctl.state.compare_exchange_strong(expected, kDraining,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
    return make_error(StatusCode::kUnavailable, "slot not ready");
  }
  ctl.len = 0;
  ctl.epoch = 0;
  ctl.state.store(kFree, std::memory_order_release);
  return Status::ok();
}

Status DoubleBufferRing::force_release(Direction dir, u32 slot) {
  if (!slot_in_range(slot)) {
    return make_error(StatusCode::kOutOfRange, "slot out of range");
  }
  SlotCtl& ctl = slot_ctl(dir, slot);
  u32 cur = ctl.state.load(std::memory_order_acquire);
  if (cur != kWriting && cur != kDraining) {
    return make_error(StatusCode::kFailedPrecondition, "slot not stuck");
  }
  // Claim by moving to the *other* mid-transfer state — a transition no
  // legitimate owner ever performs, so winning the CAS means exclusive
  // ownership, and a resurrected owner's publish/release fails its own
  // state check instead of corrupting a recycled slot.
  const u32 claim = cur == kWriting ? kDraining : kWriting;
  if (!ctl.state.compare_exchange_strong(cur, claim, std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
    return make_error(StatusCode::kFailedPrecondition, "lost race to owner");
  }
  ctl.len = 0;
  ctl.epoch = 0;
  ctl.state.store(kFree, std::memory_order_release);
  return Status::ok();
}

DoubleBufferRing::SlotState DoubleBufferRing::state(Direction dir, u32 slot) const {
  if (!slot_in_range(slot)) return kFree;
  return static_cast<SlotState>(
      slot_ctl(dir, slot).state.load(std::memory_order_acquire));
}

u32 DoubleBufferRing::in_flight(Direction dir) const {
  if (header_ == nullptr) return 0;
  u32 n = 0;
  for (u32 s = 0; s < header_->slot_count; ++s) {
    if (state(dir, s) != kFree) n++;
  }
  return n;
}

}  // namespace oaf::shm

#include "shm/double_buffer.h"

namespace oaf::shm {

// The implementation lives in the header (class template over the atomics
// policy); the production instantiation is compiled once, here, and every
// other TU links against it (extern template in the header).
template class BasicDoubleBufferRing<StdAtomicsPolicy>;

}  // namespace oaf::shm

// Single-producer single-consumer lock-free ring for fixed-size POD records.
//
// Used as the in-memory notification queue between reactor threads on the
// functional plane (an alternative to socket notifications for co-located
// endpoints) and stress-tested as part of the lock-free property suite.
// Classic Lamport queue with cached cursors to halve coherence traffic.
//
// Templatized over an atomics policy (common/atomics_policy.h): the default
// StdAtomicsPolicy compiles to exactly the pre-policy code, while
// chk::CheckedPolicy runs the same source under the deterministic model
// checker (tests/chk/spsc_model_test.cpp), where slot payloads go through
// the race detector and the head/tail protocol through the weak-memory
// simulator.
#pragma once

#include <atomic>
#include <cstring>
#include <type_traits>
#include <vector>

#include "common/atomics_policy.h"
#include "common/types.h"
#include "common/units.h"

namespace oaf::shm {

template <typename T, typename Policy = StdAtomicsPolicy>
class SpscQueue {
  static_assert(std::is_trivially_copyable_v<T>,
                "SpscQueue requires trivially copyable records");

  template <typename U>
  using Atomic = typename Policy::template atomic<U>;
  template <typename U>
  using Var = typename Policy::template var<U>;

 public:
  /// Capacity is rounded up to a power of two; usable slots = capacity - 1.
  explicit SpscQueue(u32 capacity_hint = 1024) {
    u64 cap = 2;
    while (cap < capacity_hint) cap <<= 1;
    mask_ = cap - 1;
    buffer_.resize(cap);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer: returns false when full.
  bool push(const T& item) {
    const u64 head = head_.load(std::memory_order_relaxed);
    const u64 next = head + 1;
    if (next - cached_tail_ > mask_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (next - cached_tail_ > mask_) return false;
    }
    buffer_[head & mask_] = item;
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer: returns false when empty.
  bool pop(T& out) {
    const u64 tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail == cached_head_) return false;
    }
    out = buffer_[tail & mask_];
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  [[nodiscard]] u64 size_approx() const {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }

  [[nodiscard]] u64 capacity() const { return mask_; }

 private:
  std::vector<Var<T>> buffer_;
  u64 mask_ = 0;

  alignas(64) Atomic<u64> head_{0};
  alignas(64) u64 cached_tail_ = 0;   // producer-local
  alignas(64) Atomic<u64> tail_{0};
  alignas(64) u64 cached_head_ = 0;   // consumer-local
};

}  // namespace oaf::shm

// Fault injection for the shared-memory data path — the shm counterpart of
// net::FaultChannel. A ShmFaultRing wraps a DoubleBufferRing and pokes the
// peer-controlled control words directly (length, state, epoch), modelling a
// crashed, stale, or actively corrupting co-located peer. The fencing tests
// use it to prove consume() degrades to kPeerMisbehavior instead of handing
// out an out-of-bounds span, and that the orphan sweeper reclaims slots a
// dead peer left mid-transfer.
//
// Test-only: linked into the test binaries, never into the tools. All
// mutations are relaxed stores into fields the protocol defines as
// single-owner, so calls must not race a live producer/consumer on the SAME
// slot (the tests phase corruption between protocol steps, which also keeps
// the TSan job honest). Templatized over the same atomics policy as the
// ring, so the chk model suite can inject the identical faults under the
// deterministic checker.
#pragma once

#include "shm/double_buffer.h"

namespace oaf::shm {

template <typename Policy>
class BasicShmFaultRing {
  using Ring = BasicDoubleBufferRing<Policy>;

 public:
  explicit BasicShmFaultRing(Ring& ring) : ring_(ring) {}

  /// Forge the peer-stamped payload length of a slot (any state).
  void corrupt_len(Direction dir, u32 slot, u64 len) {
    ring_.slot_ctl(dir, slot).len.store(len, std::memory_order_relaxed);
  }

  /// Forge the peer-stamped epoch tag (0 = "never stamped", i.e. stale).
  void stamp_epoch(Direction dir, u32 slot, u32 epoch) {
    ring_.slot_ctl(dir, slot).epoch.store(epoch, std::memory_order_relaxed);
  }

  /// Flip the slot state word to an arbitrary value, bypassing the CAS
  /// protocol (a misbehaving peer is not obliged to play by the rules).
  void force_state(Direction dir, u32 slot, typename Ring::SlotState s) {
    ring_.slot_ctl(dir, slot).state.store(s, std::memory_order_release);
  }

  /// Model a peer that acquired a slot and then died: the slot is left in
  /// kWriting with a valid epoch stamp and never published. Only the orphan
  /// sweeper can reclaim it.
  void freeze_writing(Direction dir, u32 slot) {
    auto& ctl = ring_.slot_ctl(dir, slot);
    ctl.epoch.store(ring_.attached_epoch(), std::memory_order_relaxed);
    ctl.state.store(Ring::kWriting, std::memory_order_release);
  }

  /// Peer-visible epoch of a slot (observability for tests).
  [[nodiscard]] u32 slot_epoch(Direction dir, u32 slot) const {
    return ring_.slot_ctl(dir, slot).epoch.load(std::memory_order_relaxed);
  }

  /// Peer-visible length of a slot (observability for tests).
  [[nodiscard]] u64 slot_len(Direction dir, u32 slot) const {
    return ring_.slot_ctl(dir, slot).len.load(std::memory_order_relaxed);
  }

 private:
  Ring& ring_;
};

using ShmFaultRing = BasicShmFaultRing<StdAtomicsPolicy>;

}  // namespace oaf::shm

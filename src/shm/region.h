// RAII POSIX shared-memory region.
//
// This is the substitute for QEMU IVSHMEM / ICSHMEM (paper §2.3): IVSHMEM
// exposes a host shm region to guests as a PCI BAR, ICSHMEM shares the IPC
// namespace between containers — in both cases the substrate is a named
// POSIX shm object mapped by two parties, which is exactly what this class
// provides. Creator and attacher both get the same physical pages, so the
// lock-free ring built on top exercises real cross-thread (or cross-process)
// memory ordering.
#pragma once

#include <string>

#include "common/status.h"
#include "common/types.h"

namespace oaf::shm {

class ShmRegion {
 public:
  ShmRegion() = default;
  ~ShmRegion();

  ShmRegion(ShmRegion&& other) noexcept;
  ShmRegion& operator=(ShmRegion&& other) noexcept;
  ShmRegion(const ShmRegion&) = delete;
  ShmRegion& operator=(const ShmRegion&) = delete;

  /// Create a new named region of `bytes` (zero-filled). Fails if the name
  /// already exists — one region per (client, target) pair is a security
  /// invariant (paper §6), so silent reuse is forbidden.
  static Result<ShmRegion> create(const std::string& name, u64 bytes);

  /// Attach to an existing named region.
  static Result<ShmRegion> attach(const std::string& name);

  /// Anonymous shared mapping (no name) — used by single-process tests that
  /// don't need the shm_open path but want MAP_SHARED semantics.
  static Result<ShmRegion> anonymous(u64 bytes);

  [[nodiscard]] void* data() const { return addr_; }
  [[nodiscard]] u8* bytes() const { return static_cast<u8*>(addr_); }
  [[nodiscard]] u64 size() const { return size_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool valid() const { return addr_ != nullptr; }

  /// Unlink the name from the filesystem (mapping stays valid until unmap).
  void unlink();

 private:
  ShmRegion(void* addr, u64 size, std::string name, bool owner)
      : addr_(addr), size_(size), name_(std::move(name)), owner_(owner) {}

  void reset();

  void* addr_ = nullptr;
  u64 size_ = 0;
  std::string name_;
  bool owner_ = false;  ///< creator unlinks on destruction
};

}  // namespace oaf::shm

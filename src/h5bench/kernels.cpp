#include "h5bench/kernels.h"

#include <memory>
#include <vector>

namespace oaf::h5bench {

u8 particle_byte(u64 seed, u32 ds, u64 byte_idx) {
  // Cheap deterministic mix — fast enough to generate gigabytes, strong
  // enough that shifted/offset reads fail verification.
  u64 x = seed ^ (static_cast<u64>(ds) << 48) ^ byte_idx;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 29;
  return static_cast<u8>(x);
}

namespace {

/// Drives the interleaved chunk traversal shared by both kernels: for each
/// chunk index, visit every dataset (the multi-variable interleaving of
/// h5bench), issuing synchronous calls one at a time.
struct Traversal : std::enable_shared_from_this<Traversal> {
  Traversal(Executor& exec_in, h5::H5File& file_in, BenchConfig cfg_in,
            bool is_write_in, bool verify_in, KernelCb cb_in)
      : exec(exec_in),
        file(file_in),
        cfg(cfg_in),
        is_write(is_write_in),
        verify(verify_in),
        cb(std::move(cb_in)),
        buffer(cfg.chunk_elems * cfg.elem_size) {}

  Executor& exec;
  h5::H5File& file;
  BenchConfig cfg;
  bool is_write;
  bool verify;
  KernelCb cb;

  std::vector<h5::H5File::DatasetId> ids;
  std::vector<u8> buffer;
  u64 chunk_index = 0;
  u32 ds_index = 0;
  u64 bytes_done = 0;
  TimeNs start = 0;

  void begin() {
    start = exec.now();
    step();
  }

  /// Callbacks capture shared ownership so the traversal outlives its
  /// in-flight asynchronous operations.
  std::shared_ptr<Traversal> self() { return shared_from_this(); }

  void fail(Status st) {
    auto done = std::move(cb);
    done(st);
  }

  void finish() {
    const TimeNs io_end = exec.now();
    if (is_write && cfg.time_close) {
      file.close([this, keep = self()](Status st) {
        if (!st) {
          fail(st);
          return;
        }
        emit(exec.now());
      });
      return;
    }
    emit(io_end);
  }

  void emit(TimeNs end) {
    KernelStats stats;
    stats.bytes = bytes_done;
    stats.elapsed = end - start;
    auto done = std::move(cb);
    done(stats);
  }

  void step() {
    const u64 total_chunks =
        ceil_div(cfg.particles_per_dataset, cfg.chunk_elems);
    if (chunk_index >= total_chunks) {
      finish();
      return;
    }
    const u64 elem_off = chunk_index * cfg.chunk_elems;
    const u64 elems =
        std::min<u64>(cfg.chunk_elems, cfg.particles_per_dataset - elem_off);
    const u64 bytes = elems * cfg.elem_size;
    const u32 ds = ds_index;
    const u64 byte_off = elem_off * cfg.elem_size;

    auto advance = [this](u64 moved) {
      bytes_done += moved;
      ds_index++;
      if (ds_index >= cfg.num_datasets) {
        ds_index = 0;
        chunk_index++;
      }
      step();
    };

    if (is_write) {
      for (u64 i = 0; i < bytes; ++i) {
        buffer[i] = particle_byte(cfg.seed, ds, byte_off + i);
      }
      file.write(ids[ds], elem_off, std::span<const u8>(buffer.data(), bytes),
                 [this, bytes, advance, keep = self()](Status st) {
                   if (!st) {
                     fail(st);
                     return;
                   }
                   advance(bytes);
                 });
    } else {
      file.read(ids[ds], elem_off, std::span<u8>(buffer.data(), bytes),
                [this, bytes, ds, byte_off, advance, keep = self()](Status st) {
                  if (!st) {
                    fail(st);
                    return;
                  }
                  if (verify) {
                    for (u64 i = 0; i < bytes; ++i) {
                      if (buffer[i] != particle_byte(cfg.seed, ds, byte_off + i)) {
                        fail(make_error(StatusCode::kDataLoss,
                                        "verification mismatch"));
                        return;
                      }
                    }
                  }
                  advance(bytes);
                });
    }
  }

};

std::string dataset_name(u32 ds) { return "particles_var" + std::to_string(ds); }

}  // namespace

void run_write_kernel(Executor& exec, h5::H5File& file, const BenchConfig& cfg,
                      KernelCb cb) {
  auto t = std::make_shared<Traversal>(exec, file, cfg, /*is_write=*/true,
                                       /*verify=*/false, std::move(cb));
  for (u32 ds = 0; ds < cfg.num_datasets; ++ds) {
    auto id = file.create_dataset(dataset_name(ds), cfg.elem_size,
                                  cfg.particles_per_dataset);
    if (!id) {
      t->fail(id.status());
      return;
    }
    t->ids.push_back(id.value());
  }
  t->begin();
}

void run_read_kernel(Executor& exec, h5::H5File& file, const BenchConfig& cfg,
                     bool verify, KernelCb cb) {
  auto t = std::make_shared<Traversal>(exec, file, cfg, /*is_write=*/false,
                                       verify, std::move(cb));
  for (u32 ds = 0; ds < cfg.num_datasets; ++ds) {
    auto id = file.find_dataset(dataset_name(ds));
    if (!id) {
      t->fail(id.status());
      return;
    }
    t->ids.push_back(id.value());
  }
  t->begin();
}

}  // namespace oaf::h5bench

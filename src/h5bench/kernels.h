// h5bench-style I/O kernels (paper §5.7, h5bench CUG'21).
//
// The write kernel stores 1-D particle arrays of fixed-size elements as
// HDF5 datasets with a contiguous memory and file pattern; the read kernel
// performs a full read of what the write kernel stored. Two configurations
// mirror the paper:
//   config-1: 16M particles, one dataset — a single large contiguous
//             stream, issued in large transfer chunks;
//   config-2: 8M particles in each of 8 datasets — the multi-variable
//             particle layout interleaves variables in memory, so each
//             H5Dwrite call moves a small strided chunk per dataset.
// Transfers are synchronous per call (h5bench sync mode): call n+1 starts
// when call n completes; whether the final close/commit is timed is a
// config knob (it is, by default, as in h5bench sync mode).
#pragma once

#include <functional>

#include "common/executor.h"
#include "common/stats.h"
#include "h5/file.h"

namespace oaf::h5bench {

struct BenchConfig {
  u32 num_datasets = 1;
  u64 particles_per_dataset = 16ull * 1024 * 1024;
  u32 elem_size = 4;          ///< float32 per particle per variable
  u64 chunk_elems = 512 * 1024;  ///< elements per H5Dwrite/H5Dread call
  bool time_close = true;     ///< include H5Fclose (flush/commit) in timing
  u64 seed = 1;

  [[nodiscard]] u64 dataset_bytes() const {
    return particles_per_dataset * elem_size;
  }
  [[nodiscard]] u64 total_bytes() const {
    return dataset_bytes() * num_datasets;
  }

  /// Paper config-1: 16M particles, one dataset, large transfers.
  static BenchConfig config1() { return BenchConfig{}; }

  /// Paper config-2: 8 datasets x 8M particles, small interleaved transfers.
  static BenchConfig config2() {
    BenchConfig cfg;
    cfg.num_datasets = 8;
    cfg.particles_per_dataset = 8ull * 1024 * 1024;
    cfg.chunk_elems = 8 * 1024;  // 32 KiB per call — interleaved variables
    return cfg;
  }
};

struct KernelStats {
  u64 bytes = 0;
  DurNs elapsed = 0;
  [[nodiscard]] double bandwidth_mib_s() const { return mib_per_sec(bytes, elapsed); }
};

using KernelCb = std::function<void(Result<KernelStats>)>;

/// Deterministic particle value for dataset `ds`, element `idx` (verify).
u8 particle_byte(u64 seed, u32 ds, u64 byte_idx);

/// Create the datasets and write all particles; reports write bandwidth.
/// The file must already be create()d.
void run_write_kernel(Executor& exec, h5::H5File& file, const BenchConfig& cfg,
                      KernelCb cb);

/// Full read of the datasets written by run_write_kernel; when `verify`,
/// every byte is checked against the generator.
void run_read_kernel(Executor& exec, h5::H5File& file, const BenchConfig& cfg,
                     bool verify, KernelCb cb);

}  // namespace oaf::h5bench

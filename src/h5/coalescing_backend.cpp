#include "h5/coalescing_backend.h"

#include <cstring>

namespace oaf::h5 {

u64 CoalescingBackend::pending_bytes() const {
  u64 sum = 0;
  for (const auto& run : runs_) sum += run->data.size();
  return sum;
}

bool CoalescingBackend::overlaps_any_run(u64 offset, u64 length) const {
  for (const auto& run : runs_) {
    if (offset < run->end() && offset + length > run->offset) return true;
  }
  return false;
}

void CoalescingBackend::invalidate_windows(u64 offset, u64 length) {
  for (auto it = windows_.begin(); it != windows_.end();) {
    if (offset < (*it)->end() && offset + length > (*it)->offset) {
      it = windows_.erase(it);
    } else {
      ++it;
    }
  }
}

void CoalescingBackend::drain_run(std::unique_ptr<Run> run, IoCb then) {
  coalesced_flushes_++;
  // std::function requires copyable captures; promote the run to shared
  // ownership for the duration of the inner write.
  std::shared_ptr<Run> shared = std::move(run);
  inner_.write(shared->offset, shared->data,
               [shared, then = std::move(then)](Status st) { then(st); });
}

void CoalescingBackend::drain_all(IoCb then) {
  if (runs_.empty()) {
    then(Status::ok());
    return;
  }
  auto pending = std::make_shared<int>(static_cast<int>(runs_.size()));
  auto first_error = std::make_shared<Status>();
  auto done = std::make_shared<IoCb>(std::move(then));
  while (!runs_.empty()) {
    auto run = std::move(runs_.front());
    runs_.pop_front();
    drain_run(std::move(run), [pending, first_error, done](Status st) {
      if (!st && first_error->is_ok()) *first_error = st;
      if (--*pending == 0) (*done)(*first_error);
    });
  }
}

void CoalescingBackend::write(u64 offset, std::span<const u8> data, IoCb cb) {
  invalidate_windows(offset, data.size());

  // Extend an open run?
  for (auto it = runs_.begin(); it != runs_.end(); ++it) {
    Run& run = **it;
    if (offset == run.end() && run.data.size() + data.size() <= run_bytes_) {
      run.data.insert(run.data.end(), data.begin(), data.end());
      writes_absorbed_++;
      // Move to LRU back (most recently used).
      auto node = std::move(*it);
      runs_.erase(it);
      const bool full = node->data.size() >= run_bytes_;
      if (full) {
        drain_run(std::move(node), std::move(cb));
      } else {
        runs_.push_back(std::move(node));
        cb(Status::ok());
      }
      return;
    }
  }

  // Overlapping rewrite of pending data: keep it simple and correct — drain
  // everything, then write through.
  if (overlaps_any_run(offset, data.size())) {
    auto owned = std::make_shared<std::vector<u8>>(data.begin(), data.end());
    drain_all([this, offset, owned, cb = std::move(cb)](Status st) mutable {
      if (!st) {
        cb(st);
        return;
      }
      inner_.write(offset, *owned, [owned, cb = std::move(cb)](Status st2) {
        cb(st2);
      });
    });
    return;
  }

  // Open a new run, evicting the least-recently-used one if at capacity.
  if (runs_.size() >= max_runs_) {
    auto evict = std::move(runs_.front());
    runs_.pop_front();
    auto node = std::make_unique<Run>();
    node->offset = offset;
    node->data.assign(data.begin(), data.end());
    writes_absorbed_++;
    runs_.push_back(std::move(node));
    // The caller's completion rides the eviction drain: backpressure
    // propagates once the stream count exceeds the coalescer's capacity.
    drain_run(std::move(evict), std::move(cb));
    return;
  }
  auto node = std::make_unique<Run>();
  node->offset = offset;
  node->data.assign(data.begin(), data.end());
  node->data.reserve(run_bytes_);
  writes_absorbed_++;
  runs_.push_back(std::move(node));
  cb(Status::ok());
}

void CoalescingBackend::read(u64 offset, std::span<u8> out, IoCb cb) {
  // Read-your-writes: serve from a pending run when fully covered.
  for (const auto& run : runs_) {
    if (offset >= run->offset && offset + out.size() <= run->end()) {
      std::memcpy(out.data(), run->data.data() + (offset - run->offset),
                  out.size());
      cb(Status::ok());
      return;
    }
  }
  // Partially overlapping dirty data: drain for consistency, then re-read.
  if (overlaps_any_run(offset, out.size())) {
    drain_all([this, offset, out, cb = std::move(cb)](Status st) mutable {
      if (!st) {
        cb(st);
        return;
      }
      read(offset, out, std::move(cb));
    });
    return;
  }

  // Readahead window hit?
  for (auto it = windows_.begin(); it != windows_.end(); ++it) {
    Window& w = **it;
    if (offset >= w.offset && offset + out.size() <= w.end()) {
      std::memcpy(out.data(), w.data.data() + (offset - w.offset), out.size());
      // LRU touch.
      auto node = std::move(*it);
      windows_.erase(it);
      windows_.push_back(std::move(node));
      cb(Status::ok());
      return;
    }
  }

  if (readahead_bytes_ <= out.size()) {
    inner_.read(offset, out, std::move(cb));
    return;
  }

  // Fetch a per-stream window and serve this read from it.
  u64 window = readahead_bytes_;
  if (capacity_bytes() != 0 && offset + window > capacity_bytes()) {
    window = capacity_bytes() - offset;
  }
  if (window < out.size()) {
    inner_.read(offset, out, std::move(cb));
    return;
  }
  auto node = std::make_shared<Window>();
  node->offset = offset;
  node->data.resize(window);
  inner_.read(offset, node->data,
              [this, node, out, cb = std::move(cb)](Status st) mutable {
                if (!st) {
                  cb(st);
                  return;
                }
                std::memcpy(out.data(), node->data.data(), out.size());
                if (windows_.size() >= max_windows_) windows_.pop_front();
                auto owned = std::make_unique<Window>(std::move(*node));
                windows_.push_back(std::move(owned));
                cb(Status::ok());
              });
}

void CoalescingBackend::flush(IoCb cb) {
  drain_all([this, cb = std::move(cb)](Status st) mutable {
    if (!st) {
      cb(st);
      return;
    }
    inner_.flush(std::move(cb));
  });
}

}  // namespace oaf::h5

// Application-agnostic I/O coalescing (paper §5.7.1, Fig 17).
//
// Many-dataset HDF5 workloads emit *interleaved* streams of adjacent small
// writes — one stream per dataset extent. Submitting each write to the
// fabric pays per-command overhead and SSD latency; NFS hides that behind
// its page cache. The coalescer gives NVMe-oAF the same benefit without
// giving up direct storage access: it keeps several open "runs" (one per
// active stream), appends writes that extend a run, and submits a run as
// one large I/O when it fills, breaks, or flush() is called. Reads are
// served from pending runs when they hit them (read-your-writes), and
// sequential read streams prefetch per-stream readahead windows.
#pragma once

#include <list>
#include <memory>
#include <vector>

#include "h5/backend.h"

namespace oaf::h5 {

class CoalescingBackend final : public StorageBackend {
 public:
  /// `run_bytes`: size a run drains at; `max_runs`: concurrent streams
  /// tracked; `readahead_bytes`: per-stream prefetch window (0 = off);
  /// `max_windows`: concurrent readahead streams tracked.
  CoalescingBackend(StorageBackend& inner, u64 run_bytes, u64 readahead_bytes = 0,
                    u32 max_runs = 16, u32 max_windows = 8)
      : inner_(inner),
        run_bytes_(run_bytes),
        readahead_bytes_(readahead_bytes),
        max_runs_(max_runs),
        max_windows_(max_windows) {}

  void write(u64 offset, std::span<const u8> data, IoCb cb) override;
  void read(u64 offset, std::span<u8> out, IoCb cb) override;
  void flush(IoCb cb) override;

  [[nodiscard]] u64 capacity_bytes() const override {
    return inner_.capacity_bytes();
  }

  [[nodiscard]] u64 coalesced_flushes() const { return coalesced_flushes_; }
  [[nodiscard]] u64 writes_absorbed() const { return writes_absorbed_; }
  [[nodiscard]] u64 pending_bytes() const;
  [[nodiscard]] size_t open_runs() const { return runs_.size(); }

 private:
  struct Run {
    u64 offset = 0;
    std::vector<u8> data;
    [[nodiscard]] u64 end() const { return offset + data.size(); }
  };
  struct Window {
    u64 offset = 0;
    std::vector<u8> data;
    [[nodiscard]] u64 end() const { return offset + data.size(); }
  };

  /// Submit one run to the inner backend; `then` runs on completion.
  void drain_run(std::unique_ptr<Run> run, IoCb then);
  /// Submit every open run; `then` once all have completed.
  void drain_all(IoCb then);

  [[nodiscard]] bool overlaps_any_run(u64 offset, u64 length) const;
  void invalidate_windows(u64 offset, u64 length);

  StorageBackend& inner_;
  u64 run_bytes_;
  u64 readahead_bytes_;
  u32 max_runs_;
  u32 max_windows_;

  std::list<std::unique_ptr<Run>> runs_;       // LRU order: front = oldest
  std::list<std::unique_ptr<Window>> windows_; // LRU order: front = oldest

  u64 coalesced_flushes_ = 0;
  u64 writes_absorbed_ = 0;
};

}  // namespace oaf::h5

// Mini-HDF5 file runtime.
//
// A deliberately small but real re-implementation of the HDF5 pieces
// h5bench exercises: a superblock, a flat object table of named 1-D
// datasets with fixed element size, and contiguous data layout. All data
// transfers go through a VOL connector (vol.h); all bytes go through a
// StorageBackend, so the same file logic runs on memory, NVMe-oAF, or NFS.
//
// On-disk layout (little-endian):
//   [0, 4096)        superblock: magic, version, dataset count, eof
//   [4096, 65536)    object table: kMaxDatasets fixed-size entries
//   [65536, ...)     dataset data, each dataset 4 KiB-aligned, contiguous
#pragma once

#include <vector>

#include "h5/backend.h"
#include "h5/vol.h"

namespace oaf::h5 {

class H5File {
 public:
  using Cb = StorageBackend::IoCb;
  using DatasetId = int;

  static constexpr u64 kSuperblockBytes = 4096;
  static constexpr u64 kObjectTableBytes = 60 * 1024;
  static constexpr u64 kDataStart = kSuperblockBytes + kObjectTableBytes;
  static constexpr u32 kMaxDatasets = 256;
  static constexpr u32 kMaxNameBytes = 200;
  static constexpr u64 kDataAlign = 4096;

  H5File(StorageBackend& backend, VolConnector& vol)
      : backend_(backend), vol_(vol) {}

  /// Format a fresh (empty) file and persist the superblock.
  void create(Cb cb);

  /// Load and validate an existing file's metadata.
  void open(Cb cb);

  /// Define a new dataset (metadata only; persisted by close()/sync()).
  Result<DatasetId> create_dataset(const std::string& name, u32 elem_size,
                                   u64 num_elems);

  Result<DatasetId> find_dataset(const std::string& name) const;
  [[nodiscard]] const DatasetInfo& dataset(DatasetId id) const {
    return datasets_[static_cast<size_t>(id)];
  }
  [[nodiscard]] size_t dataset_count() const { return datasets_.size(); }
  [[nodiscard]] bool is_open() const { return open_; }
  [[nodiscard]] u64 eof() const { return eof_; }

  /// Write `data` starting at element `elem_off` of dataset `id`.
  void write(DatasetId id, u64 elem_off, std::span<const u8> data, Cb cb);

  /// Read into `out` starting at element `elem_off`.
  void read(DatasetId id, u64 elem_off, std::span<u8> out, Cb cb);

  /// Persist metadata without closing.
  void sync(Cb cb);

  /// Persist metadata and flush the backend. The file stays usable.
  void close(Cb cb);

 private:
  [[nodiscard]] std::vector<u8> encode_metadata() const;
  Status decode_metadata(std::span<const u8> super, std::span<const u8> table);
  Status check_io(DatasetId id, u64 elem_off, u64 bytes) const;

  StorageBackend& backend_;
  VolConnector& vol_;
  std::vector<DatasetInfo> datasets_;
  u64 eof_ = kDataStart;
  bool open_ = false;
};

}  // namespace oaf::h5

// HDF5-over-NFS backend (the paper's baseline in Figs 16/17): the file is a
// single NFS file; reads and writes map directly to NFS client operations.
#pragma once

#include <string>

#include "h5/backend.h"
#include "nfs/nfs.h"

namespace oaf::h5 {

class NfsBackend final : public StorageBackend {
 public:
  NfsBackend(nfs::NfsClient& client, std::string file, u64 capacity)
      : client_(client), file_(std::move(file)), capacity_(capacity) {}

  void write(u64 offset, std::span<const u8> data, IoCb cb) override {
    if (offset + data.size() > capacity_) {
      cb(make_error(StatusCode::kOutOfRange, "write past capacity"));
      return;
    }
    client_.write(file_, offset, data, std::move(cb));
  }

  void read(u64 offset, std::span<u8> out, IoCb cb) override {
    if (offset + out.size() > capacity_) {
      cb(make_error(StatusCode::kOutOfRange, "read past capacity"));
      return;
    }
    client_.read(file_, offset, out, std::move(cb));
  }

  void flush(IoCb cb) override { client_.commit(std::move(cb)); }

  [[nodiscard]] u64 capacity_bytes() const override { return capacity_; }

 private:
  nfs::NfsClient& client_;
  std::string file_;
  u64 capacity_;
};

}  // namespace oaf::h5

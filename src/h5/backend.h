// Storage backends for the mini-HDF5 runtime.
//
// The HDF5 file is a flat byte address space; a StorageBackend maps it onto
// some storage service. Implementations: in-memory (tests), NVMe-oAF (the
// paper's co-design — file bytes on a remote namespace through the
// initiator, optionally zero-copy), NFS (baseline), and a coalescing
// decorator that merges adjacent small I/Os into large ones (the
// application-agnostic optimization behind Fig 17).
#pragma once

#include <functional>
#include <span>

#include "common/status.h"
#include "common/types.h"

namespace oaf::h5 {

class StorageBackend {
 public:
  using IoCb = std::function<void(Status)>;

  virtual ~StorageBackend() = default;

  virtual void write(u64 offset, std::span<const u8> data, IoCb cb) = 0;
  virtual void read(u64 offset, std::span<u8> out, IoCb cb) = 0;

  /// Persist all buffered state (coalescers drain, NFS commits, fabrics
  /// flush the device write cache).
  virtual void flush(IoCb cb) = 0;

  [[nodiscard]] virtual u64 capacity_bytes() const = 0;
};

/// In-memory backend for unit tests and examples.
class MemoryBackend final : public StorageBackend {
 public:
  explicit MemoryBackend(u64 capacity) : data_(capacity, 0) {}

  void write(u64 offset, std::span<const u8> data, IoCb cb) override {
    if (offset + data.size() > data_.size()) {
      cb(make_error(StatusCode::kOutOfRange, "write past capacity"));
      return;
    }
    std::copy(data.begin(), data.end(), data_.begin() + static_cast<long>(offset));
    writes_++;
    cb(Status::ok());
  }

  void read(u64 offset, std::span<u8> out, IoCb cb) override {
    if (offset + out.size() > data_.size()) {
      cb(make_error(StatusCode::kOutOfRange, "read past capacity"));
      return;
    }
    std::copy_n(data_.begin() + static_cast<long>(offset), out.size(), out.begin());
    reads_++;
    cb(Status::ok());
  }

  void flush(IoCb cb) override { cb(Status::ok()); }

  [[nodiscard]] u64 capacity_bytes() const override { return data_.size(); }
  [[nodiscard]] u64 writes() const { return writes_; }
  [[nodiscard]] u64 reads() const { return reads_; }

 private:
  std::vector<u8> data_;
  u64 writes_ = 0;
  u64 reads_ = 0;
};

}  // namespace oaf::h5

// HDF5 Virtual Object Layer (VOL) seam.
//
// The paper intercepts HDF5 dataset operations through a VOL connector to
// route application I/O onto NVMe-oAF (§5.7.1). Our mini-HDF5 runtime keeps
// the same seam: every dataset data transfer the H5File performs goes
// through a VolConnector, so alternative connectors can redirect, observe,
// or transform I/O without the application changing a line — which is the
// property the paper's co-design relies on.
#pragma once

#include <functional>
#include <string>

#include "h5/backend.h"

namespace oaf::h5 {

struct DatasetInfo {
  std::string name;
  u32 elem_size = 0;
  u64 num_elems = 0;
  u64 data_offset = 0;  ///< absolute file offset of element 0

  [[nodiscard]] u64 data_bytes() const { return elem_size * num_elems; }
};

class VolConnector {
 public:
  using IoCb = StorageBackend::IoCb;

  virtual ~VolConnector() = default;

  /// Transfer `data` into dataset bytes [byte_off, byte_off + size).
  virtual void dataset_write(StorageBackend& backend, const DatasetInfo& info,
                             u64 byte_off, std::span<const u8> data, IoCb cb) {
    backend.write(info.data_offset + byte_off, data, std::move(cb));
  }

  virtual void dataset_read(StorageBackend& backend, const DatasetInfo& info,
                            u64 byte_off, std::span<u8> out, IoCb cb) {
    backend.read(info.data_offset + byte_off, out, std::move(cb));
  }
};

/// Default connector: contiguous layout straight onto the backend.
class NativeVol final : public VolConnector {};

/// Pass-through connector that counts operations and bytes — used in tests
/// and as the template for building custom interception connectors.
class CountingVol final : public VolConnector {
 public:
  explicit CountingVol(VolConnector& inner) : inner_(inner) {}

  void dataset_write(StorageBackend& backend, const DatasetInfo& info,
                     u64 byte_off, std::span<const u8> data, IoCb cb) override {
    writes_++;
    bytes_written_ += data.size();
    inner_.dataset_write(backend, info, byte_off, data, std::move(cb));
  }

  void dataset_read(StorageBackend& backend, const DatasetInfo& info,
                    u64 byte_off, std::span<u8> out, IoCb cb) override {
    reads_++;
    bytes_read_ += out.size();
    inner_.dataset_read(backend, info, byte_off, out, std::move(cb));
  }

  [[nodiscard]] u64 writes() const { return writes_; }
  [[nodiscard]] u64 reads() const { return reads_; }
  [[nodiscard]] u64 bytes_written() const { return bytes_written_; }
  [[nodiscard]] u64 bytes_read() const { return bytes_read_; }

 private:
  VolConnector& inner_;
  u64 writes_ = 0;
  u64 reads_ = 0;
  u64 bytes_written_ = 0;
  u64 bytes_read_ = 0;
};

}  // namespace oaf::h5

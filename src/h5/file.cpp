#include "h5/file.h"

#include "common/units.h"

#include <cstring>
#include <memory>

namespace oaf::h5 {

namespace {

constexpr u64 kMagic = 0x4f41464844463500ULL;  // "OAFHDF5\0"
constexpr u32 kVersion = 1;
constexpr u64 kEntryBytes = 240;  // fixed-size object table entry

void put_u32(u8* p, u32 v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<u8>(v >> (8 * i));
}
void put_u64(u8* p, u64 v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<u8>(v >> (8 * i));
}
u32 get_u32(const u8* p) {
  u32 v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<u32>(p[i]) << (8 * i);
  return v;
}
u64 get_u64(const u8* p) {
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::vector<u8> H5File::encode_metadata() const {
  std::vector<u8> buf(kSuperblockBytes + kObjectTableBytes, 0);
  put_u64(buf.data(), kMagic);
  put_u32(buf.data() + 8, kVersion);
  put_u32(buf.data() + 12, static_cast<u32>(datasets_.size()));
  put_u64(buf.data() + 16, eof_);

  u8* table = buf.data() + kSuperblockBytes;
  for (size_t i = 0; i < datasets_.size(); ++i) {
    const DatasetInfo& ds = datasets_[i];
    u8* e = table + i * kEntryBytes;
    put_u32(e, static_cast<u32>(ds.name.size()));
    std::memcpy(e + 4, ds.name.data(), ds.name.size());
    put_u32(e + 4 + kMaxNameBytes, ds.elem_size);
    put_u64(e + 8 + kMaxNameBytes, ds.num_elems);
    put_u64(e + 16 + kMaxNameBytes, ds.data_offset);
  }
  return buf;
}

Status H5File::decode_metadata(std::span<const u8> super,
                               std::span<const u8> table) {
  if (super.size() < 24 || get_u64(super.data()) != kMagic) {
    return make_error(StatusCode::kDataLoss, "not an OAF-HDF5 file");
  }
  if (get_u32(super.data() + 8) != kVersion) {
    return make_error(StatusCode::kFailedPrecondition, "unsupported version");
  }
  const u32 count = get_u32(super.data() + 12);
  if (count > kMaxDatasets) {
    return make_error(StatusCode::kDataLoss, "corrupt dataset count");
  }
  eof_ = get_u64(super.data() + 16);

  datasets_.clear();
  datasets_.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    const u8* e = table.data() + i * kEntryBytes;
    DatasetInfo ds;
    const u32 name_len = get_u32(e);
    if (name_len > kMaxNameBytes) {
      return make_error(StatusCode::kDataLoss, "corrupt dataset name");
    }
    ds.name.assign(reinterpret_cast<const char*>(e + 4), name_len);
    ds.elem_size = get_u32(e + 4 + kMaxNameBytes);
    ds.num_elems = get_u64(e + 8 + kMaxNameBytes);
    ds.data_offset = get_u64(e + 16 + kMaxNameBytes);
    if (ds.elem_size == 0 || ds.data_offset < kDataStart ||
        ds.data_offset + ds.data_bytes() > eof_) {
      return make_error(StatusCode::kDataLoss, "corrupt dataset extent");
    }
    datasets_.push_back(std::move(ds));
  }
  return Status::ok();
}

void H5File::create(Cb cb) {
  datasets_.clear();
  eof_ = kDataStart;
  open_ = true;
  sync(std::move(cb));
}

void H5File::open(Cb cb) {
  auto buf = std::make_shared<std::vector<u8>>(kSuperblockBytes + kObjectTableBytes);
  backend_.read(0, *buf, [this, buf, cb = std::move(cb)](Status st) {
    if (!st) {
      cb(st);
      return;
    }
    const std::span<const u8> all(*buf);
    const Status decoded = decode_metadata(all.subspan(0, kSuperblockBytes),
                                           all.subspan(kSuperblockBytes));
    open_ = decoded.is_ok();
    cb(decoded);
  });
}

Result<H5File::DatasetId> H5File::create_dataset(const std::string& name,
                                                 u32 elem_size, u64 num_elems) {
  if (!open_) {
    return make_error(StatusCode::kFailedPrecondition, "file not open");
  }
  if (name.empty() || name.size() > kMaxNameBytes) {
    return make_error(StatusCode::kInvalidArgument, "bad dataset name");
  }
  if (elem_size == 0 || num_elems == 0) {
    return make_error(StatusCode::kInvalidArgument, "empty dataset");
  }
  if (datasets_.size() >= kMaxDatasets) {
    return make_error(StatusCode::kResourceExhausted, "too many datasets");
  }
  if (find_dataset(name).is_ok()) {
    return make_error(StatusCode::kAlreadyExists, "dataset exists: " + name);
  }
  DatasetInfo ds;
  ds.name = name;
  ds.elem_size = elem_size;
  ds.num_elems = num_elems;
  ds.data_offset = align_up(eof_, kDataAlign);
  const u64 new_eof = ds.data_offset + ds.data_bytes();
  if (backend_.capacity_bytes() != 0 && new_eof > backend_.capacity_bytes()) {
    return make_error(StatusCode::kResourceExhausted, "backend capacity exceeded");
  }
  eof_ = new_eof;
  datasets_.push_back(std::move(ds));
  return static_cast<DatasetId>(datasets_.size() - 1);
}

Result<H5File::DatasetId> H5File::find_dataset(const std::string& name) const {
  for (size_t i = 0; i < datasets_.size(); ++i) {
    if (datasets_[i].name == name) return static_cast<DatasetId>(i);
  }
  return make_error(StatusCode::kNotFound, "no such dataset: " + name);
}

Status H5File::check_io(DatasetId id, u64 elem_off, u64 bytes) const {
  if (!open_) {
    return make_error(StatusCode::kFailedPrecondition, "file not open");
  }
  if (id < 0 || static_cast<size_t>(id) >= datasets_.size()) {
    return make_error(StatusCode::kNotFound, "bad dataset id");
  }
  const DatasetInfo& ds = datasets_[static_cast<size_t>(id)];
  if (bytes % ds.elem_size != 0) {
    return make_error(StatusCode::kInvalidArgument,
                      "transfer not a multiple of element size");
  }
  const u64 elems = bytes / ds.elem_size;
  if (elem_off > ds.num_elems || elems > ds.num_elems - elem_off) {
    return make_error(StatusCode::kOutOfRange, "transfer exceeds dataset");
  }
  return Status::ok();
}

void H5File::write(DatasetId id, u64 elem_off, std::span<const u8> data, Cb cb) {
  if (auto st = check_io(id, elem_off, data.size()); !st) {
    cb(st);
    return;
  }
  const DatasetInfo& ds = datasets_[static_cast<size_t>(id)];
  vol_.dataset_write(backend_, ds, elem_off * ds.elem_size, data, std::move(cb));
}

void H5File::read(DatasetId id, u64 elem_off, std::span<u8> out, Cb cb) {
  if (auto st = check_io(id, elem_off, out.size()); !st) {
    cb(st);
    return;
  }
  const DatasetInfo& ds = datasets_[static_cast<size_t>(id)];
  vol_.dataset_read(backend_, ds, elem_off * ds.elem_size, out, std::move(cb));
}

void H5File::sync(Cb cb) {
  if (!open_) {
    cb(make_error(StatusCode::kFailedPrecondition, "file not open"));
    return;
  }
  auto buf = std::make_shared<std::vector<u8>>(encode_metadata());
  backend_.write(0, *buf, [buf, cb = std::move(cb)](Status st) { cb(st); });
}

void H5File::close(Cb cb) {
  sync([this, cb = std::move(cb)](Status st) mutable {
    if (!st) {
      cb(st);
      return;
    }
    backend_.flush(std::move(cb));
  });
}

}  // namespace oaf::h5

// NVMe-oAF storage backend: the paper's SPDK+HDF5 co-design (§4.6, §5.7).
//
// File offsets map 1:1 onto namespace LBAs. I/Os are split into
// slot-size-bounded, block-aligned commands; unaligned edges use
// read-modify-write. When the initiator's zero-copy API is available the
// backend requests shm-resident buffers so dataset payloads never take the
// extra client copy — this is what "co-designing the upper-layer runtime
// with NVMe-oAF" means concretely.
#pragma once

#include <deque>
#include <memory>

#include "h5/backend.h"
#include "nvmf/initiator.h"

namespace oaf::h5 {

class NvmfBackend final : public StorageBackend {
 public:
  NvmfBackend(nvmf::NvmfInitiator& initiator, u32 nsid, u64 max_io_bytes)
      : initiator_(initiator),
        nsid_(nsid),
        max_io_bytes_(max_io_bytes),
        block_size_(nvmf::NvmfInitiator::kBlockSize) {}

  void write(u64 offset, std::span<const u8> data, IoCb cb) override;
  void read(u64 offset, std::span<u8> out, IoCb cb) override;
  void flush(IoCb cb) override;

  [[nodiscard]] u64 capacity_bytes() const override { return capacity_; }
  void set_capacity(u64 bytes) { capacity_ = bytes; }

  [[nodiscard]] u64 commands_issued() const { return commands_issued_; }
  [[nodiscard]] u64 zero_copy_writes() const { return zero_copy_writes_; }
  /// Requests deferred because the session reported congestion (target
  /// kQueueFull backpressure); each defer re-polls instead of splitting
  /// more commands onto a saturated target.
  [[nodiscard]] u64 congestion_defers() const { return congestion_defers_; }

 private:
  /// One block-aligned sub-I/O of a larger request.
  void write_aligned(u64 offset, std::span<const u8> data,
                     std::shared_ptr<IoCb> done, std::shared_ptr<int> pending,
                     std::shared_ptr<Status> first_error);
  void rmw_edge(u64 offset, std::span<const u8> data, std::shared_ptr<IoCb> done,
                std::shared_ptr<int> pending, std::shared_ptr<Status> first_error);

  static void finish_one(std::shared_ptr<IoCb> done, std::shared_ptr<int> pending,
                         std::shared_ptr<Status> first_error, Status st);

  nvmf::NvmfInitiator& initiator_;
  u32 nsid_;
  u64 max_io_bytes_;
  u32 block_size_;
  u64 capacity_ = 0;
  u64 commands_issued_ = 0;
  u64 zero_copy_writes_ = 0;
  u64 congestion_defers_ = 0;
};

}  // namespace oaf::h5

#include "h5/nvmf_backend.h"

#include <cstring>

namespace oaf::h5 {

namespace {
/// Poll interval while the session reports congestion. Mirrors the perf
/// driver's backoff: short enough to resume promptly, long enough not to
/// hammer a saturated target.
constexpr DurNs kCongestionPollNs = 100'000;  // 100 us
}  // namespace

void NvmfBackend::finish_one(std::shared_ptr<IoCb> done,
                             std::shared_ptr<int> pending,
                             std::shared_ptr<Status> first_error, Status st) {
  if (!st && first_error->is_ok()) *first_error = st;
  if (--*pending == 0) (*done)(*first_error);
}

void NvmfBackend::write(u64 offset, std::span<const u8> data, IoCb cb) {
  if (capacity_ != 0 && offset + data.size() > capacity_) {
    cb(make_error(StatusCode::kOutOfRange, "write past namespace capacity"));
    return;
  }
  if (initiator_.congested()) {
    // Target kQueueFull backpressure: hold the whole request back and
    // re-poll, rather than splitting it into sub-commands the target will
    // only reject. The backend contract keeps `data` alive until cb fires.
    congestion_defers_++;
    initiator_.executor().schedule_after(
        kCongestionPollNs, [this, offset, data, cb = std::move(cb)]() mutable {
          write(offset, data, std::move(cb));
        });
    return;
  }
  auto done = std::make_shared<IoCb>(std::move(cb));
  auto pending = std::make_shared<int>(1);  // sentinel
  auto first_error = std::make_shared<Status>();

  u64 off = offset;
  u64 remaining = data.size();
  const u8* src = data.data();

  // Leading unaligned edge.
  const u64 lead = off % block_size_;
  if (lead != 0 && remaining > 0) {
    const u64 n = std::min<u64>(block_size_ - lead, remaining);
    ++*pending;
    rmw_edge(off, std::span<const u8>(src, n), done, pending, first_error);
    off += n;
    src += n;
    remaining -= n;
  }

  // Aligned body in max_io-sized commands.
  while (remaining >= block_size_) {
    const u64 body = std::min(remaining - remaining % block_size_, max_io_bytes_);
    ++*pending;
    write_aligned(off, std::span<const u8>(src, body), done, pending, first_error);
    off += body;
    src += body;
    remaining -= body;
  }

  // Trailing unaligned edge.
  if (remaining > 0) {
    ++*pending;
    rmw_edge(off, std::span<const u8>(src, remaining), done, pending, first_error);
  }

  finish_one(done, pending, first_error, Status::ok());  // drop sentinel
}

void NvmfBackend::write_aligned(u64 offset, std::span<const u8> data,
                                std::shared_ptr<IoCb> done,
                                std::shared_ptr<int> pending,
                                std::shared_ptr<Status> first_error) {
  commands_issued_++;
  const u64 slba = offset / block_size_;

  if (initiator_.supports_zero_copy() &&
      data.size() <= initiator_.endpoint().slot_bytes()) {
    auto ticket = initiator_.zero_copy_write_begin(data.size());
    if (ticket.is_ok()) {
      zero_copy_writes_++;
      // The Buffer Manager created this buffer in shm; filling it here is
      // the only data movement the client performs.
      std::memcpy(ticket.value().buffer.data(), data.data(), data.size());
      initiator_.zero_copy_write(
          ticket.value(), nsid_, slba, data.size(),
          [done, pending, first_error](nvmf::NvmfInitiator::IoResult r) {
            finish_one(done, pending, first_error,
                       r.ok() ? Status::ok()
                              : make_error(StatusCode::kDataLoss, "write failed"));
          });
      return;
    }
    // All slots busy: fall through to the staged path.
  }

  initiator_.write(nsid_, slba, data,
                   [done, pending, first_error](nvmf::NvmfInitiator::IoResult r) {
                     finish_one(done, pending, first_error,
                                r.ok() ? Status::ok()
                                       : make_error(StatusCode::kDataLoss,
                                                    "write failed"));
                   });
}

void NvmfBackend::rmw_edge(u64 offset, std::span<const u8> data,
                           std::shared_ptr<IoCb> done,
                           std::shared_ptr<int> pending,
                           std::shared_ptr<Status> first_error) {
  // Read the containing block, merge, write back.
  const u64 slba = offset / block_size_;
  const u64 within = offset % block_size_;
  auto block = std::make_shared<std::vector<u8>>(block_size_);
  commands_issued_ += 2;
  initiator_.read(
      nsid_, slba, *block,
      [this, slba, within, data, block, done, pending,
       first_error](nvmf::NvmfInitiator::IoResult r) {
        if (!r.ok()) {
          finish_one(done, pending, first_error,
                     make_error(StatusCode::kDataLoss, "rmw read failed"));
          return;
        }
        std::memcpy(block->data() + within, data.data(), data.size());
        initiator_.write(nsid_, slba, *block,
                         [block, done, pending,
                          first_error](nvmf::NvmfInitiator::IoResult r2) {
                           finish_one(done, pending, first_error,
                                      r2.ok() ? Status::ok()
                                              : make_error(StatusCode::kDataLoss,
                                                           "rmw write failed"));
                         });
      });
}

void NvmfBackend::read(u64 offset, std::span<u8> out, IoCb cb) {
  if (capacity_ != 0 && offset + out.size() > capacity_) {
    cb(make_error(StatusCode::kOutOfRange, "read past namespace capacity"));
    return;
  }
  if (initiator_.congested()) {
    congestion_defers_++;
    initiator_.executor().schedule_after(
        kCongestionPollNs, [this, offset, out, cb = std::move(cb)]() mutable {
          read(offset, out, std::move(cb));
        });
    return;
  }
  auto done = std::make_shared<IoCb>(std::move(cb));
  auto pending = std::make_shared<int>(1);
  auto first_error = std::make_shared<Status>();

  u64 off = offset;
  u64 remaining = out.size();
  u8* dst = out.data();

  while (remaining > 0) {
    const u64 lead = off % block_size_;
    const u64 slba = off / block_size_;
    if (lead != 0 || remaining < block_size_) {
      // Unaligned or short: read the whole block and copy the piece out.
      const u64 n = std::min<u64>(block_size_ - lead, remaining);
      auto block = std::make_shared<std::vector<u8>>(block_size_);
      commands_issued_++;
      ++*pending;
      initiator_.read(nsid_, slba, *block,
                      [block, dst, lead, n, done, pending,
                       first_error](nvmf::NvmfInitiator::IoResult r) {
                        if (r.ok()) std::memcpy(dst, block->data() + lead, n);
                        finish_one(done, pending, first_error,
                                   r.ok() ? Status::ok()
                                          : make_error(StatusCode::kDataLoss,
                                                       "read failed"));
                      });
      off += n;
      dst += n;
      remaining -= n;
      continue;
    }
    const u64 body = std::min(remaining - remaining % block_size_, max_io_bytes_);
    commands_issued_++;
    ++*pending;
    initiator_.read(nsid_, slba, std::span<u8>(dst, body),
                    [done, pending, first_error](nvmf::NvmfInitiator::IoResult r) {
                      finish_one(done, pending, first_error,
                                 r.ok() ? Status::ok()
                                        : make_error(StatusCode::kDataLoss,
                                                     "read failed"));
                    });
    off += body;
    dst += body;
    remaining -= body;
  }

  finish_one(done, pending, first_error, Status::ok());
}

void NvmfBackend::flush(IoCb cb) {
  initiator_.flush(nsid_, [cb = std::move(cb)](nvmf::NvmfInitiator::IoResult r) {
    cb(r.ok() ? Status::ok() : make_error(StatusCode::kDataLoss, "flush failed"));
  });
}

}  // namespace oaf::h5

// Payload-copy service.
//
// The AF data path performs explicit copies (client buffer -> shm slot,
// shm slot -> target DPDK buffer); the zero-copy design removes the first.
// Protocol engines call Copier instead of memcpy directly so that the
// timing plane can charge copy time against the host's memory bandwidth
// while the functional plane completes immediately. Both planes move the
// real bytes, so data integrity is verifiable everywhere.
#pragma once

#include <cstring>
#include <functional>
#include <span>

#include "common/types.h"
#include "net/fabric_params.h"
#include "sim/resource.h"

namespace oaf::net {

class Copier {
 public:
  using Done = std::function<void()>;

  virtual ~Copier() = default;

  /// Copy src into dst (dst.size() >= src.size()); `done` fires when the
  /// copy has "completed" on this plane's clock.
  virtual void copy(std::span<const u8> src, std::span<u8> dst, Done done) = 0;

  /// Charge the cost of a copy of `bytes` without moving data (used when
  /// the bytes were already placed by the application, e.g. zero-copy
  /// publish where only bookkeeping remains).
  virtual void charge(u64 bytes, Done done) = 0;
};

/// Functional plane: memcpy now, complete now.
class InlineCopier final : public Copier {
 public:
  void copy(std::span<const u8> src, std::span<u8> dst, Done done) override {
    std::memcpy(dst.data(), src.data(), src.size());
    done();
  }
  void charge(u64 /*bytes*/, Done done) override { done(); }
};

/// Node-wide memory bandwidth shared by all copy streams on one host. The
/// aggregate cap is part of what bounds NVMe-oAF's peak bandwidth when four
/// streams share one host (paper Fig 11's ~7x over TCP-10G rather than ~30x).
class SimMemoryBus {
 public:
  SimMemoryBus(sim::Scheduler& sched, const ShmFabricParams& params)
      : sched_(sched), params_(params),
        node_bw_(sched, params.node_mem_bytes_per_sec) {}

  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] const ShmFabricParams& params() const { return params_; }
  [[nodiscard]] sim::Throttle& throttle() { return node_bw_; }
  [[nodiscard]] u64 bytes_copied() const { return node_bw_.bytes_sent(); }

 private:
  sim::Scheduler& sched_;
  ShmFabricParams params_;
  sim::Throttle node_bw_;
};

/// Timing plane: memcpy now (data still moves), completion charged against
/// this stream's copy rate and the node-wide memory bus. One SimCopier per
/// connection; all SimCopiers of a host share one SimMemoryBus.
class SimCopier final : public Copier {
 public:
  explicit SimCopier(SimMemoryBus& bus)
      : bus_(bus),
        stream_bw_(bus.scheduler(), bus.params().memcpy_bytes_per_sec) {}

  void copy(std::span<const u8> src, std::span<u8> dst, Done done) override {
    std::memcpy(dst.data(), src.data(), src.size());
    charge(src.size(), std::move(done));
  }

  void charge(u64 bytes, Done done) override {
    // Serialize on the per-stream core first (a single core can only copy
    // so fast), then on the shared node memory bus.
    stream_bw_.transmit(bytes, 0, [this, bytes, done = std::move(done)]() mutable {
      bus_.throttle().transmit(bytes, 0, std::move(done));
    });
  }

 private:
  SimMemoryBus& bus_;
  sim::Throttle stream_bw_;
};

}  // namespace oaf::net

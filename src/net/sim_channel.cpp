#include "net/sim_channel.h"

#include <atomic>
#include <cmath>
#include <vector>

#include "common/rng.h"

#include "pdu/codec.h"

namespace oaf::net {

namespace {

/// Common machinery: endpoints share connection state; delivery runs on the
/// single sim scheduler. Payload bytes are moved by value (the sim plane
/// still transports real data so integrity is checkable end to end).
struct ConnState {
  std::atomic<bool> open{true};
  MsgChannel::Handler handler[2];
  bool handler_set[2] = {false, false};
};

class SimEndpointBase : public MsgChannel {
 public:
  SimEndpointBase(int side, sim::Scheduler& sched, std::shared_ptr<ConnState> conn)
      : side_(side), sched_(sched), conn_(std::move(conn)) {}

  void set_handler(Handler handler) override {
    conn_->handler_set[side_] = handler != nullptr;
    conn_->handler[side_] = std::move(handler);
  }

  void close() override { conn_->open.store(false, std::memory_order_release); }

  [[nodiscard]] bool is_open() const override {
    return conn_->open.load(std::memory_order_acquire);
  }

  [[nodiscard]] Executor& executor() override { return sched_; }
  [[nodiscard]] u64 bytes_sent() const override { return bytes_sent_; }
  [[nodiscard]] u64 pdus_sent() const override { return pdus_sent_; }

 protected:
  void deliver_to_peer(pdu::Pdu pdu) {
    const int peer = 1 - side_;
    if (!conn_->open.load(std::memory_order_acquire)) return;
    if (!conn_->handler_set[peer]) return;
    conn_->handler[peer](std::move(pdu));
  }

  const int side_;
  sim::Scheduler& sched_;
  std::shared_ptr<ConnState> conn_;
  u64 bytes_sent_ = 0;
  u64 pdus_sent_ = 0;
};

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

/// Per-endpoint receive-side state for the busy-poll model (paper §4.5).
///
/// When a PDU lands and the endpoint busy-polls with budget B:
///   * hit (inter-arrival gap <= B): the poll loop is still spinning and
///     picks the message up almost immediately; larger budgets use coarser
///     loop granularity, adding B/16 of batching delay — this is why very
///     long polls degrade read-heavy workloads (Fig 10);
///   * miss (gap > B): on average half the budget was spun before the
///     socket gave up and slept, and the wake-up then takes the interrupt
///     path plus a reschedule penalty — this is why short polls make write
///     workloads *slower than interrupts* (Fig 10).
/// B == 0 models stock interrupt-driven NVMe/TCP.
struct TcpRxState {
  TimeNs last_arrival = -1;
  TimeNs fifo_watermark = 0;  ///< TCP in-order delivery: rx entry clamp
  DurNs poll_budget = 0;
  u64 poll_hits = 0;
  u64 poll_misses = 0;
  DurNs gap_ewma = 0;  ///< exponentially weighted mean inter-arrival gap
};

}  // namespace

struct SimTcpLink::Impl {
  Impl(sim::Scheduler& s, const TcpFabricParams& p)
      : sched(s),
        wire_c2t(s, gbps_to_bytes_per_sec(p.link_gbps)),
        wire_t2c(s, gbps_to_bytes_per_sec(p.link_gbps)),
        node_stack_client(s, p.node_stack_bytes_per_sec),
        node_stack_target(s, p.node_stack_bytes_per_sec),
        rng(p.rng_seed) {}

  /// Heavy-tailed extra delay on interrupt-path deliveries (0 most often).
  DurNs interrupt_spike(const TcpFabricParams& p) {
    if (!rng.next_bool(p.tail_spike_prob)) return 0;
    const double mu = std::log(static_cast<double>(p.tail_spike_mean_ns)) -
                      p.tail_spike_sigma * p.tail_spike_sigma / 2.0;
    return static_cast<DurNs>(rng.next_lognormal(mu, p.tail_spike_sigma));
  }

  sim::Scheduler& sched;
  sim::Throttle wire_c2t;
  sim::Throttle wire_t2c;
  // Aggregate per-VM TCP stack capacity, shared by every connection ending
  // on that side of the link (see TcpFabricParams::node_stack_bytes_per_sec).
  sim::Throttle node_stack_client;
  sim::Throttle node_stack_target;
  Rng rng;
};

namespace {

class SimTcpEndpoint final : public SimEndpointBase, public BusyPollTunable {
 public:
  /// Scheduler round trip after a failed poll put the task to sleep.
  static constexpr DurNs kReschedNs = 5'000;

  SimTcpEndpoint(int side, sim::Scheduler& sched, std::shared_ptr<ConnState> conn,
                 SimTcpLink::Impl& link, const TcpFabricParams& params,
                 std::shared_ptr<sim::Resource> self_cpu,
                 std::shared_ptr<sim::Resource> peer_cpu,
                 std::shared_ptr<TcpRxState> self_rx,
                 std::shared_ptr<TcpRxState> peer_rx)
      : SimEndpointBase(side, sched, std::move(conn)),
        link_(link),
        params_(params),
        self_cpu_(std::move(self_cpu)),
        peer_cpu_(std::move(peer_cpu)),
        self_rx_(std::move(self_rx)),
        peer_rx_(std::move(peer_rx)) {
    self_rx_->poll_budget = params_.initial_poll_budget_ns;
  }

  void send(pdu::Pdu pdu) override {
    if (!is_open()) return;
    const u64 bytes = pdu::wire_size(pdu);
    bytes_sent_ += bytes;
    pdus_sent_++;

    // 1. Sender stack: per-PDU overhead + per-byte processing on this
    //    connection's core.
    const DurNs tx_cpu =
        params_.per_pdu_overhead_ns +
        transfer_time_ns(bytes, params_.stack_bytes_per_sec);
    auto shared_pdu = std::make_shared<pdu::Pdu>(std::move(pdu));
    self_cpu_->submit(tx_cpu, [this, bytes, shared_pdu] {
      // 2. Wire serialization + propagation.
      auto& wire = side_ == 0 ? link_.wire_c2t : link_.wire_t2c;
      wire.transmit(bytes, params_.propagation_ns, [this, bytes, shared_pdu] {
        // 3. Receive path: busy-poll hit/miss or interrupt.
        const TimeNs arrival = sched_.now();
        DurNs rx_extra = 0;
        const DurNs budget = peer_rx_->poll_budget;
        // CPU charged to the receiving core for this delivery, beyond the
        // per-byte stack work: either the virtualized interrupt path
        // (VM-exit + injection + softirq) or the busy-poll spin
        // (min(inter-arrival gap, budget) of burned cycles). This is the
        // §4.5 trade-off: polls convert interrupt latency+CPU into spin
        // CPU, which pays off exactly when arrivals land inside the budget.
        DurNs rx_cpu_extra = 0;
        const DurNs gap = peer_rx_->last_arrival >= 0
                              ? arrival - peer_rx_->last_arrival
                              : kTimeNever;
        if (budget <= 0) {
          rx_extra = params_.interrupt_delay_ns + link_.interrupt_spike(params_);
          rx_cpu_extra = params_.interrupt_cpu_ns;
        } else if (gap <= budget) {
          // The poll loop was still spinning: near-immediate pickup, plus a
          // batching delay that grows with the loop granularity. Most of
          // the spin overlaps the reactor's useful work (SPDK-style
          // polling), so only a fraction of it is charged as lost CPU.
          rx_extra = params_.poll_pickup_ns + budget / 16;
          rx_cpu_extra = gap / 8;
          peer_rx_->poll_hits++;
        } else {
          // The poll expired before this arrival: the full budget was spun
          // for nothing, and the message takes the interrupt path (plus a
          // reschedule after the failed spin). This is why short polls make
          // workloads with long completion gaps slower than interrupts
          // (paper Fig 10, writes at 25 us).
          rx_extra = params_.interrupt_delay_ns + kReschedNs +
                     link_.interrupt_spike(params_);
          // The failed spin burned the budget, but most of it overlaps the
          // reactor's other work; the interrupt path cost is paid in full.
          rx_cpu_extra = budget / 8 + params_.interrupt_cpu_ns;
          peer_rx_->poll_misses++;
        }
        if (gap != kTimeNever) {
          peer_rx_->gap_ewma = peer_rx_->gap_ewma == 0
                                   ? gap
                                   : (peer_rx_->gap_ewma * 7 + gap) / 8;
        }
        peer_rx_->last_arrival = arrival;
        // TCP is a byte stream: a later PDU can never overtake an earlier
        // one, so clamp each PDU's stack-entry time to the previous one's.
        TimeNs rx_ready = arrival + rx_extra;
        if (rx_ready < peer_rx_->fifo_watermark) {
          rx_ready = peer_rx_->fifo_watermark;
        }
        peer_rx_->fifo_watermark = rx_ready;
        rx_extra = rx_ready - arrival;
        // 4. Receiver stack processing (per-connection core, then the
        //    receiving VM's aggregate stack), then delivery.
        const DurNs rx_cpu =
            params_.per_pdu_overhead_ns +
            transfer_time_ns(bytes, params_.stack_bytes_per_sec);
        // Write-direction payloads (client -> target) cost extra on the
        // target's stack: the staging copy into DPDK buffers.
        u64 node_bytes = bytes;
        if (side_ == 0 && !shared_pdu->payload.empty()) {
          node_bytes = static_cast<u64>(static_cast<double>(bytes) *
                                        params_.target_rx_data_multiplier);
        }
        sched_.schedule_after(rx_extra, [this, node_bytes, rx_cpu, shared_pdu] {
          peer_cpu_->submit(rx_cpu, [this, node_bytes, shared_pdu] {
            auto& node_stack =
                side_ == 0 ? link_.node_stack_target : link_.node_stack_client;
            node_stack.transmit(node_bytes, 0, [this, shared_pdu] {
              deliver_to_peer(std::move(*shared_pdu));
            });
          });
        });
        if (rx_cpu_extra > 0) {
          // Interrupt/spin cost displaces future work on the receiving
          // core (it cannot delay the message that ended it).
          sched_.schedule_after(rx_extra, [this, rx_cpu_extra] {
            peer_cpu_->submit(rx_cpu_extra, [] {});
          });
        }
      });
    });
  }

  // BusyPollTunable -----------------------------------------------------
  void set_rx_poll_budget(DurNs budget_ns) override {
    self_rx_->poll_budget = budget_ns;
  }
  [[nodiscard]] DurNs rx_poll_budget() const override {
    return self_rx_->poll_budget;
  }
  [[nodiscard]] u64 rx_poll_hits() const override { return self_rx_->poll_hits; }
  [[nodiscard]] u64 rx_poll_misses() const override {
    return self_rx_->poll_misses;
  }
  [[nodiscard]] DurNs rx_mean_gap_ns() const override {
    return self_rx_->gap_ewma;
  }

 private:
  SimTcpLink::Impl& link_;
  const TcpFabricParams params_;
  std::shared_ptr<sim::Resource> self_cpu_;
  std::shared_ptr<sim::Resource> peer_cpu_;
  std::shared_ptr<TcpRxState> self_rx_;
  std::shared_ptr<TcpRxState> peer_rx_;
};

}  // namespace

SimTcpLink::SimTcpLink(sim::Scheduler& sched, const TcpFabricParams& params)
    : impl_(std::make_unique<Impl>(sched, params)), params_(params) {}

SimTcpLink::~SimTcpLink() = default;

ChannelPair SimTcpLink::connect() {
  auto conn = std::make_shared<ConnState>();
  auto cpu_client = std::make_shared<sim::Resource>(impl_->sched, 1);
  auto cpu_target = std::make_shared<sim::Resource>(impl_->sched, 1);
  auto rx_client = std::make_shared<TcpRxState>();
  auto rx_target = std::make_shared<TcpRxState>();
  auto client = std::make_unique<SimTcpEndpoint>(0, impl_->sched, conn, *impl_,
                                                 params_, cpu_client, cpu_target,
                                                 rx_client, rx_target);
  auto target = std::make_unique<SimTcpEndpoint>(1, impl_->sched, conn, *impl_,
                                                 params_, cpu_target, cpu_client,
                                                 rx_target, rx_client);
  return {std::move(client), std::move(target)};
}

u64 SimTcpLink::wire_bytes() const {
  return impl_->wire_c2t.bytes_sent() + impl_->wire_t2c.bytes_sent();
}

double SimTcpLink::utilization_c2t() const {
  const TimeNs t = impl_->sched.now();
  return t > 0 ? static_cast<double>(impl_->wire_c2t.busy_time()) /
                     static_cast<double>(t)
               : 0.0;
}

double SimTcpLink::utilization_t2c() const {
  const TimeNs t = impl_->sched.now();
  return t > 0 ? static_cast<double>(impl_->wire_t2c.busy_time()) /
                     static_cast<double>(t)
               : 0.0;
}

// ---------------------------------------------------------------------------
// RDMA
// ---------------------------------------------------------------------------

struct SimRdmaLink::Impl {
  Impl(sim::Scheduler& s, const RdmaFabricParams& p)
      : sched(s),
        wire_c2t(s, gbps_to_bytes_per_sec(p.link_gbps) * p.link_efficiency),
        wire_t2c(s, gbps_to_bytes_per_sec(p.link_gbps) * p.link_efficiency),
        rng(p.rng_seed) {}

  sim::Scheduler& sched;
  sim::Throttle wire_c2t;
  sim::Throttle wire_t2c;
  Rng rng;
  u64 reg_misses = 0;
};

namespace {

/// RDMA endpoint: NIC-offloaded transfer (no per-byte host CPU), ~µs
/// latency, but data-bearing messages draw from a pool of transfer buffers
/// that must be registered with the NIC on first use. Registration is slow
/// and heavy-tailed, which is why the paper observes higher p99.99 for
/// NVMe/RDMA than NVMe-oAF on short runs (Fig 13) — after warmup the cache
/// hits and the tail collapses, matching their longer-run counter-check.
class SimRdmaEndpoint final : public SimEndpointBase {
 public:
  SimRdmaEndpoint(int side, sim::Scheduler& sched, std::shared_ptr<ConnState> conn,
                  SimRdmaLink::Impl& link, const RdmaFabricParams& params)
      : SimEndpointBase(side, sched, std::move(conn)), link_(link), params_(params) {}

  void send(pdu::Pdu pdu) override {
    if (!is_open()) return;
    const u64 bytes = pdu::wire_size(pdu);
    bytes_sent_ += bytes;
    pdus_sent_++;

    DurNs reg_cost = 0;
    if (!pdu.payload.empty()) {
      // Round-robin over the buffer pool; first use of each slot pays a
      // registration, and steady-state pool churn occasionally evicts an
      // entry. The pool is per connection endpoint.
      const u32 slot = next_buffer_++ % params_.reg_cache_slots;
      bool miss = !registered_[slot % kMaxSlots];
      if (!miss && link_.rng.next_bool(params_.reg_churn_prob)) miss = true;
      if (miss) {
        registered_[slot % kMaxSlots] = true;
        link_.reg_misses++;
        const double mu = std::log(static_cast<double>(params_.reg_cost_mean_ns)) -
                          params_.reg_cost_sigma * params_.reg_cost_sigma / 2.0;
        reg_cost = static_cast<DurNs>(
            link_.rng.next_lognormal(mu, params_.reg_cost_sigma));
      }
    }

    auto shared_pdu = std::make_shared<pdu::Pdu>(std::move(pdu));
    // RC queue pairs are FIFO: a registration stall delays everything queued
    // behind it on this endpoint rather than letting later sends overtake.
    TimeNs enter_wire =
        sched_.now() + reg_cost + params_.per_msg_overhead_ns;
    if (enter_wire < send_watermark_) enter_wire = send_watermark_;
    send_watermark_ = enter_wire;
    sched_.schedule_after(enter_wire - sched_.now(), [this, bytes, shared_pdu] {
      auto& wire = side_ == 0 ? link_.wire_c2t : link_.wire_t2c;
      wire.transmit(bytes, params_.propagation_ns, [this, shared_pdu] {
        // Polled CQ on the receive side: sub-µs pickup, folded into
        // per_msg_overhead.
        deliver_to_peer(std::move(*shared_pdu));
      });
    });
  }

 private:
  static constexpr u32 kMaxSlots = 4096;

  SimRdmaLink::Impl& link_;
  const RdmaFabricParams params_;
  TimeNs send_watermark_ = 0;
  u32 next_buffer_ = 0;
  std::array<bool, kMaxSlots> registered_{};
};

}  // namespace

SimRdmaLink::SimRdmaLink(sim::Scheduler& sched, const RdmaFabricParams& params)
    : impl_(std::make_unique<Impl>(sched, params)), params_(params) {}

SimRdmaLink::~SimRdmaLink() = default;

ChannelPair SimRdmaLink::connect() {
  auto conn = std::make_shared<ConnState>();
  auto client =
      std::make_unique<SimRdmaEndpoint>(0, impl_->sched, conn, *impl_, params_);
  auto target =
      std::make_unique<SimRdmaEndpoint>(1, impl_->sched, conn, *impl_, params_);
  return {std::move(client), std::move(target)};
}

u64 SimRdmaLink::wire_bytes() const {
  return impl_->wire_c2t.bytes_sent() + impl_->wire_t2c.bytes_sent();
}

u64 SimRdmaLink::registration_misses() const { return impl_->reg_misses; }

// ---------------------------------------------------------------------------
// Instant channel (control glue for sim-plane unit tests)
// ---------------------------------------------------------------------------

namespace {

class InstantEndpoint final : public SimEndpointBase {
 public:
  using SimEndpointBase::SimEndpointBase;

  void send(pdu::Pdu pdu) override {
    if (!is_open()) return;
    bytes_sent_ += pdu::wire_size(pdu);
    pdus_sent_++;
    auto shared_pdu = std::make_shared<pdu::Pdu>(std::move(pdu));
    sched_.post([this, shared_pdu] { deliver_to_peer(std::move(*shared_pdu)); });
  }
};

}  // namespace

ChannelPair make_instant_channel_pair(sim::Scheduler& sched) {
  auto conn = std::make_shared<ConnState>();
  return {std::make_unique<InstantEndpoint>(0, sched, conn),
          std::make_unique<InstantEndpoint>(1, sched, conn)};
}

}  // namespace oaf::net

// Cost-model parameters for the simulated fabrics.
//
// Each struct captures the performance-relevant characteristics of one
// transport from the paper's testbed (Table 1 + §3's characterization):
//   * TCP over 10/25/100 GbE through SR-IOV VFs — link serialization plus a
//     per-connection kernel/SPDK stack cost that becomes the bottleneck
//     before the wire does at 25/100 G (the paper's "network bandwidth is
//     not fully utilized" observation), and an interrupt-driven rx path
//     unless busy polling is enabled (§4.5);
//   * RDMA (IB-FDR 56 G / RoCE 100 G) — NIC-offloaded, microsecond latency,
//     no per-byte host CPU cost, but memory-registration misses with a
//     heavy-tailed cost (the Fig 13 tail-latency culprit);
//   * shared memory — host memcpy bandwidth shared by all co-located
//     channels, nanosecond-scale notification pickup.
// Calibrated presets for the paper's testbeds live in bench/calibration.h.
#pragma once

#include "common/types.h"
#include "common/units.h"

namespace oaf::net {

struct TcpFabricParams {
  double link_gbps = 25.0;
  DurNs propagation_ns = 20'000;       ///< one-way base latency (VM exit + kernel)
  DurNs interrupt_delay_ns = 30'000;   ///< rx interrupt path when not polling
  /// CPU consumed by the interrupt path per delivery (VM-exit + interrupt
  /// injection + softirq). Busy-poll hits avoid it — the CPU half of the
  /// §4.5 trade-off.
  DurNs interrupt_cpu_ns = 28'000;
  DurNs poll_pickup_ns = 2'000;        ///< rx cost when a busy poll hits
  DurNs per_pdu_overhead_ns = 3'000;   ///< per-message syscall + PDU processing
  double stack_bytes_per_sec = 2.8e9;  ///< per-connection single-core stack rate
  /// Aggregate TCP processing rate of one VM across all its connections
  /// (vhost/softirq serialization); this is why the paper's NVMe/TCP cannot
  /// fill a 25/100 G wire no matter how many clients run (Figs 2, 11).
  double node_stack_bytes_per_sec = 1e12;
  /// Extra per-byte cost when the *target* side ingests write data: the
  /// SPDK NVMe/TCP target stages received payloads into DPDK buffers (the
  /// copy the paper's §4.4.3 discusses), so write-direction data is more
  /// expensive than read-direction data — the reason NVMe/TCP write
  /// bandwidth trails read bandwidth in Figs 2 and 11.
  double target_rx_data_multiplier = 1.4;
  DurNs initial_poll_budget_ns = 0;    ///< 0 = interrupt mode (stock NVMe/TCP)
  /// Interrupt-path latency spikes (softirq contention, interrupt
  /// coalescing, vCPU scheduling): with probability `tail_spike_prob` an
  /// interrupt-mode delivery pays a heavy-tailed extra delay. Busy-polled
  /// deliveries skip the interrupt path and therefore the spikes — a large
  /// part of why NVMe-oAF's p99.99 beats NVMe/TCP (Fig 13).
  double tail_spike_prob = 0.004;
  DurNs tail_spike_mean_ns = 250'000;
  double tail_spike_sigma = 0.8;
  u64 rng_seed = 17;
};

struct RdmaFabricParams {
  double link_gbps = 56.0;
  double link_efficiency = 0.75;      ///< goodput fraction (headers, pacing, ECN)
  DurNs propagation_ns = 2'000;
  DurNs per_msg_overhead_ns = 600;
  u32 reg_cache_slots = 128;          ///< distinct buffers before all are registered
  DurNs reg_cost_mean_ns = 150'000;   ///< registration cost on a cache miss
  double reg_cost_sigma = 1.0;        ///< lognormal sigma (heavy tail)
  /// Memory-registration cache churn: probability that a data transfer hits
  /// an unregistered buffer even in steady state (pool recycling under
  /// queue-depth pressure). This keeps the paper's Fig 13 observation alive
  /// beyond warmup: NVMe/RDMA's p99.99 is dominated by registration stalls
  /// on short runs.
  double reg_churn_prob = 0.0;
  u64 rng_seed = 42;
};

struct ShmFabricParams {
  double memcpy_bytes_per_sec = 12e9;       ///< single-stream copy bandwidth
  double node_mem_bytes_per_sec = 36e9;     ///< aggregate copy cap for the host
  DurNs notify_pickup_ns = 800;             ///< consumer poll pickup of a slot
};

}  // namespace oaf::net

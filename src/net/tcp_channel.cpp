#include "net/tcp_channel.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "net/socket_channel.h"

namespace oaf::net {

namespace {
std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}
}  // namespace

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(other.port_) {}

Result<TcpListener> TcpListener::listen(u16 port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return make_error(StatusCode::kInternal, errno_message("socket"));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const auto err = errno_message("bind");
    ::close(fd);
    return make_error(StatusCode::kUnavailable, err);
  }
  if (::listen(fd, 16) != 0) {
    const auto err = errno_message("listen");
    ::close(fd);
    return make_error(StatusCode::kInternal, err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const auto err = errno_message("getsockname");
    ::close(fd);
    return make_error(StatusCode::kInternal, err);
  }
  return TcpListener(fd, ntohs(addr.sin_port));
}

Result<std::unique_ptr<MsgChannel>> TcpListener::accept(
    Executor& exec, const pdu::CodecOptions& opts) {
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) {
    return make_error(StatusCode::kUnavailable, errno_message("accept"));
  }
  const int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return wrap_stream_fd(client, exec, opts);
}

Result<std::unique_ptr<MsgChannel>> tcp_connect(const std::string& host,
                                                u16 port, Executor& exec,
                                                const pdu::CodecOptions& opts) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return make_error(StatusCode::kInternal, errno_message("socket"));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return make_error(StatusCode::kInvalidArgument, "bad IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const auto err = errno_message("connect");
    ::close(fd);
    return make_error(StatusCode::kUnavailable, err);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return wrap_stream_fd(fd, exec, opts);
}

}  // namespace oaf::net

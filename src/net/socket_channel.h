// Functional-plane channel over a real AF_UNIX socketpair.
//
// This is the stand-in for the kernel TCP control path: PDUs are framed by
// their length field, written with full-write semantics, and a per-endpoint
// reader thread decodes frames and posts them to the endpoint's executor.
// Used by integration tests and examples that want the OS in the loop.
#pragma once

#include "common/status.h"
#include "net/channel.h"
#include "pdu/codec.h"

namespace oaf::net {

Result<ChannelPair> make_socket_channel_pair(Executor& a, Executor& b,
                                             const pdu::CodecOptions& opts = {});

/// Wrap an already-connected stream socket (socketpair end, accepted TCP
/// connection, ...) as a framed PDU channel delivering into `exec`. Takes
/// ownership of `fd`.
std::unique_ptr<MsgChannel> wrap_stream_fd(int fd, Executor& exec,
                                           const pdu::CodecOptions& opts = {});

}  // namespace oaf::net

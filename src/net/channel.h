// Message channel abstraction.
//
// A MsgChannel carries whole PDUs between two endpoints. Three families
// implement it:
//   * PipeChannel   — functional plane, in-memory, encodes/decodes through
//                     the real codec and hops executors (deterministic-ish,
//                     fast, used by most protocol tests);
//   * SocketChannel — functional plane over a real socketpair with framing
//                     and a reader thread (exercises the OS path);
//   * Sim*Channel   — timing plane: delivery is scheduled on the virtual
//                     clock according to a fabric cost model.
// Handlers always run on the receiving endpoint's Executor; protocol engines
// are therefore single-threaded state machines regardless of the plane.
#pragma once

#include <functional>
#include <memory>

#include "common/executor.h"
#include "pdu/pdu.h"

namespace oaf::net {

class MsgChannel {
 public:
  using Handler = std::function<void(pdu::Pdu)>;

  virtual ~MsgChannel() = default;

  /// Asynchronously send a PDU to the peer. Never blocks the caller.
  virtual void send(pdu::Pdu pdu) = 0;

  /// Install the receive handler (must be set before the peer sends).
  virtual void set_handler(Handler handler) = 0;

  /// Close the channel; queued messages may be dropped.
  virtual void close() = 0;

  [[nodiscard]] virtual bool is_open() const = 0;

  /// Executor on which this endpoint's handler runs.
  [[nodiscard]] virtual Executor& executor() = 0;

  // Traffic counters (bytes as encoded on the wire).
  [[nodiscard]] virtual u64 bytes_sent() const = 0;
  [[nodiscard]] virtual u64 pdus_sent() const = 0;
};

using ChannelPair = std::pair<std::unique_ptr<MsgChannel>, std::unique_ptr<MsgChannel>>;

}  // namespace oaf::net

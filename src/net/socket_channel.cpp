#include "net/socket_channel.h"

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/log.h"
#include "common/mutex.h"

namespace oaf::net {

namespace {

/// MSG_NOSIGNAL: a peer that vanishes mid-run (path kill, crash) must
/// surface as a send error on this channel, not a process-wide SIGPIPE —
/// with multipath the other connections keep serving.
bool write_all(int fd, const u8* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool read_all(int fd, u8* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::read(fd, data + off, len - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // peer closed or error
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Handler slot shared with posted deliveries, so a delivery that is still
/// queued on the executor when the endpoint is destroyed finds an empty slot
/// instead of a dangling endpoint. PDUs that arrive before a handler is
/// installed park in `pending` and flush in arrival order once set_handler
/// runs — an ICReq can land on a freshly accepted connection before its
/// engine finishes constructing, and dropping it would hang the handshake.
struct HandlerBox {
  Mutex mu;
  MsgChannel::Handler handler OAF_GUARDED_BY(mu);
  std::vector<pdu::Pdu> pending OAF_GUARDED_BY(mu);
};

/// Deliver `pdu` through the box's handler, or park it if none is installed
/// yet. Runs on the executor thread; drains parked PDUs first so arrival
/// order survives the handoff.
void deliver(const std::shared_ptr<HandlerBox>& box, pdu::Pdu pdu) {
  std::vector<pdu::Pdu> batch;
  MsgChannel::Handler h;
  {
    MutexLock lk(box->mu);
    box->pending.push_back(std::move(pdu));
    if (!box->handler) return;
    h = box->handler;
    batch.swap(box->pending);
  }
  for (auto& p : batch) h(std::move(p));
}

/// Flush PDUs parked before set_handler. Also runs on the executor thread.
void drain(const std::shared_ptr<HandlerBox>& box) {
  std::vector<pdu::Pdu> batch;
  MsgChannel::Handler h;
  {
    MutexLock lk(box->mu);
    if (!box->handler || box->pending.empty()) return;
    h = box->handler;
    batch.swap(box->pending);
  }
  for (auto& p : batch) h(std::move(p));
}

class SocketEndpoint final : public MsgChannel {
 public:
  SocketEndpoint(int fd, Executor& exec, pdu::CodecOptions opts)
      : fd_(fd), exec_(exec), opts_(opts), box_(std::make_shared<HandlerBox>()) {}

  ~SocketEndpoint() override {
    close();
    if (reader_.joinable()) reader_.join();
    ::close(fd_);
    MutexLock lk(box_->mu);
    box_->handler = nullptr;
  }

  void start() {
    reader_ = std::thread([this] { read_loop(); });
  }

  void send(pdu::Pdu pdu) override {
    if (!open_.load(std::memory_order_acquire)) return;
    const std::vector<u8> encoded = pdu::encode(pdu, opts_);
    MutexLock lk(write_mu_);
    if (!write_all(fd_, encoded.data(), encoded.size())) {
      open_.store(false, std::memory_order_release);
      return;
    }
    bytes_sent_ += encoded.size();
    pdus_sent_++;
  }

  void set_handler(Handler handler) override {
    {
      MutexLock lk(box_->mu);
      box_->handler = std::move(handler);
    }
    // Flush any PDUs that raced in before subscription. Posted (not invoked
    // inline) so parked PDUs are delivered on the executor thread, ahead of
    // deliveries the reader posts after this point (FIFO executor).
    exec_.post([box = box_] { drain(box); });
  }

  void close() override {
    if (open_.exchange(false, std::memory_order_acq_rel)) {
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

  [[nodiscard]] bool is_open() const override {
    return open_.load(std::memory_order_acquire);
  }
  [[nodiscard]] Executor& executor() override { return exec_; }
  [[nodiscard]] u64 bytes_sent() const override { return bytes_sent_; }
  [[nodiscard]] u64 pdus_sent() const override { return pdus_sent_; }

 private:
  void read_loop() {
    std::vector<u8> frame;
    for (;;) {
      u8 prefix[8];
      if (!read_all(fd_, prefix, sizeof(prefix))) break;
      auto len = pdu::frame_length(std::span<const u8>(prefix, sizeof(prefix)));
      if (!len) {
        OAF_ERROR("socket channel: bad frame: %s", len.status().to_string().c_str());
        break;
      }
      frame.resize(len.value());
      std::memcpy(frame.data(), prefix, sizeof(prefix));
      if (len.value() > sizeof(prefix) &&
          !read_all(fd_, frame.data() + sizeof(prefix),
                    len.value() - sizeof(prefix))) {
        break;
      }
      auto decoded = pdu::decode(frame, opts_);
      if (!decoded) {
        OAF_ERROR("socket channel decode failed: %s",
                  decoded.status().to_string().c_str());
        break;
      }
      exec_.post([box = box_, p = std::make_shared<pdu::Pdu>(std::move(decoded).take())] {
        deliver(box, std::move(*p));
      });
    }
    open_.store(false, std::memory_order_release);
  }

  const int fd_;
  Executor& exec_;
  const pdu::CodecOptions opts_;
  std::thread reader_;
  /// Serializes whole-PDU writes from the engine and keep-alive paths.
  Mutex write_mu_;
  std::shared_ptr<HandlerBox> box_;
  std::atomic<bool> open_{true};
  std::atomic<u64> bytes_sent_{0};
  std::atomic<u64> pdus_sent_{0};
};

}  // namespace

Result<ChannelPair> make_socket_channel_pair(Executor& a, Executor& b,
                                             const pdu::CodecOptions& opts) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return make_error(StatusCode::kInternal,
                      std::string("socketpair: ") + std::strerror(errno));
  }
  auto ea = std::make_unique<SocketEndpoint>(fds[0], a, opts);
  auto eb = std::make_unique<SocketEndpoint>(fds[1], b, opts);
  ea->start();
  eb->start();
  return ChannelPair{std::move(ea), std::move(eb)};
}

std::unique_ptr<MsgChannel> wrap_stream_fd(int fd, Executor& exec,
                                           const pdu::CodecOptions& opts) {
  auto ch = std::make_unique<SocketEndpoint>(fd, exec, opts);
  ch->start();
  return ch;
}

}  // namespace oaf::net

// Timing-plane channels: PDUs delivered on the virtual clock per the fabric
// cost models in fabric_params.h.
//
// A Sim*Link represents one full-duplex NIC/link between a client VM and a
// target VM (both directions have independent wire throttles). connect()
// creates a connection: a channel pair whose endpoints share the link but
// own their per-connection stack resources — mirroring SPDK's
// one-connection-per-core pinning. Multiple connections over one link model
// the paper's four-clients-one-NIC contention (Figs 2, 11).
#pragma once

#include <memory>

#include "common/rng.h"
#include "net/channel.h"
#include "net/fabric_params.h"
#include "sim/resource.h"
#include "sim/scheduler.h"

namespace oaf::net {

/// Optional tuning interface implemented by sim TCP endpoints; the AF's
/// adaptive busy-poll governor (paper §4.5) discovers it via dynamic_cast.
class BusyPollTunable {
 public:
  virtual ~BusyPollTunable() = default;
  virtual void set_rx_poll_budget(DurNs budget_ns) = 0;
  [[nodiscard]] virtual DurNs rx_poll_budget() const = 0;
  /// Poll outcome counters: the governor uses the miss rate as feedback to
  /// escalate the budget when arrivals keep landing outside the window.
  [[nodiscard]] virtual u64 rx_poll_hits() const = 0;
  [[nodiscard]] virtual u64 rx_poll_misses() const = 0;
  /// Mean inter-arrival gap observed on this endpoint (ns; 0 if unknown).
  [[nodiscard]] virtual DurNs rx_mean_gap_ns() const = 0;
};

class SimTcpLink {
 public:
  SimTcpLink(sim::Scheduler& sched, const TcpFabricParams& params);
  ~SimTcpLink();

  /// New connection over this link. first = client side, second = target.
  ChannelPair connect();

  [[nodiscard]] const TcpFabricParams& params() const { return params_; }
  [[nodiscard]] u64 wire_bytes() const;

  /// Link utilization over [0, now] in each direction (0..1).
  [[nodiscard]] double utilization_c2t() const;
  [[nodiscard]] double utilization_t2c() const;

  struct Impl;  // public so sim endpoints in the .cpp can use it

 private:
  std::unique_ptr<Impl> impl_;
  TcpFabricParams params_;
};

class SimRdmaLink {
 public:
  SimRdmaLink(sim::Scheduler& sched, const RdmaFabricParams& params);
  ~SimRdmaLink();

  ChannelPair connect();

  [[nodiscard]] const RdmaFabricParams& params() const { return params_; }
  [[nodiscard]] u64 wire_bytes() const;
  [[nodiscard]] u64 registration_misses() const;

  struct Impl;  // public so sim endpoints in the .cpp can use it

 private:
  std::unique_ptr<Impl> impl_;
  RdmaFabricParams params_;
};

/// Zero-cost channel pair on the scheduler (control-plane glue in unit
/// tests of the sim plane; delivery next event, no modelled cost).
ChannelPair make_instant_channel_pair(sim::Scheduler& sched);

}  // namespace oaf::net

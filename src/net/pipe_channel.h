// In-memory channel pair for the functional plane.
//
// send() encodes the PDU with the production codec, then posts the encoded
// bytes to the peer executor where they are decoded and handed to the
// handler — so every test that uses PipeChannel also round-trips the wire
// format, including header digests when enabled.
#pragma once

#include <atomic>
#include <memory>

#include "net/channel.h"
#include "pdu/codec.h"

namespace oaf::net {

/// Create a connected pair; endpoint .first delivers into `a`'s executor's
/// context, .second into `b`'s.
ChannelPair make_pipe_channel_pair(Executor& a, Executor& b,
                                   const pdu::CodecOptions& opts = {});

}  // namespace oaf::net

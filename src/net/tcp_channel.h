// Real TCP/IP channels (AF_INET), for running the target and client as
// separate processes — the paper's actual deployment shape: control PDUs
// over a TCP connection, payloads over a POSIX shm region both processes
// map. Framing and reader-thread delivery are identical to SocketChannel.
#pragma once

#include <string>

#include "common/status.h"
#include "net/channel.h"
#include "pdu/codec.h"

namespace oaf::net {

/// Listening socket; accept() yields one channel per client connection.
class TcpListener {
 public:
  ~TcpListener();
  TcpListener(TcpListener&&) noexcept;
  TcpListener& operator=(TcpListener&&) = delete;
  TcpListener(const TcpListener&) = delete;

  /// Bind and listen on 127.0.0.1:`port` (0 = ephemeral).
  static Result<TcpListener> listen(u16 port);

  /// Port actually bound (useful with port 0).
  [[nodiscard]] u16 port() const { return port_; }

  /// Block until a client connects; the returned channel delivers into
  /// `exec`.
  Result<std::unique_ptr<MsgChannel>> accept(Executor& exec,
                                             const pdu::CodecOptions& opts = {});

 private:
  TcpListener(int fd, u16 port) : fd_(fd), port_(port) {}
  int fd_ = -1;
  u16 port_ = 0;
};

/// Connect to `host`:`port`; the returned channel delivers into `exec`.
Result<std::unique_ptr<MsgChannel>> tcp_connect(
    const std::string& host, u16 port, Executor& exec,
    const pdu::CodecOptions& opts = {});

}  // namespace oaf::net

#include "net/pipe_channel.h"

#include "common/log.h"

namespace oaf::net {

namespace {

/// Connection state shared by both endpoints. Endpoints are thin handles;
/// in-flight deliveries capture only this shared state, so an endpoint may
/// be destroyed while messages are still in transit — they are dropped once
/// `open` clears or the side's handler is removed.
struct PipeShared {
  explicit PipeShared(Executor& a, Executor& b) : exec{&a, &b} {}

  std::atomic<bool> open{true};
  pdu::CodecOptions opts;
  Executor* exec[2];
  MsgChannel::Handler handler[2];  // only touched from the owning executor
  std::atomic<bool> handler_set[2] = {false, false};
};

class PipeEndpoint final : public MsgChannel {
 public:
  PipeEndpoint(int side, std::shared_ptr<PipeShared> shared)
      : side_(side), shared_(std::move(shared)) {}

  ~PipeEndpoint() override {
    shared_->handler_set[side_].store(false, std::memory_order_release);
  }

  void send(pdu::Pdu pdu) override {
    if (!shared_->open.load(std::memory_order_acquire)) return;
    std::vector<u8> encoded = pdu::encode(pdu, shared_->opts);
    bytes_sent_ += encoded.size();
    pdus_sent_++;
    const int peer = 1 - side_;
    shared_->exec[peer]->post([shared = shared_, peer, data = std::move(encoded)] {
      if (!shared->open.load(std::memory_order_acquire)) return;
      if (!shared->handler_set[peer].load(std::memory_order_acquire)) return;
      auto decoded = pdu::decode(data, shared->opts);
      if (!decoded) {
        OAF_ERROR("pipe channel decode failed: %s",
                  decoded.status().to_string().c_str());
        return;
      }
      shared->handler[peer](std::move(decoded).take());
    });
  }

  void set_handler(Handler handler) override {
    shared_->handler[side_] = std::move(handler);
    shared_->handler_set[side_].store(shared_->handler[side_] != nullptr,
                                      std::memory_order_release);
  }

  void close() override { shared_->open.store(false, std::memory_order_release); }

  [[nodiscard]] bool is_open() const override {
    return shared_->open.load(std::memory_order_acquire);
  }

  [[nodiscard]] Executor& executor() override { return *shared_->exec[side_]; }
  [[nodiscard]] u64 bytes_sent() const override { return bytes_sent_; }
  [[nodiscard]] u64 pdus_sent() const override { return pdus_sent_; }

 private:
  const int side_;
  std::shared_ptr<PipeShared> shared_;
  u64 bytes_sent_ = 0;
  u64 pdus_sent_ = 0;
};

}  // namespace

ChannelPair make_pipe_channel_pair(Executor& a, Executor& b,
                                   const pdu::CodecOptions& opts) {
  auto shared = std::make_shared<PipeShared>(a, b);
  shared->opts = opts;
  return {std::make_unique<PipeEndpoint>(0, shared),
          std::make_unique<PipeEndpoint>(1, shared)};
}

}  // namespace oaf::net

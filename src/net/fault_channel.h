// Fault-injection channel wrapper.
//
// FaultChannel decorates any MsgChannel endpoint with deterministic,
// seeded misbehaviour: probabilistic drop / payload corruption /
// duplication, fixed-plus-jittered delivery delay, and an explicit
// partition switch (drop everything until healed). A free-form FaultFn
// hook supports surgical faults ("drop the next CapsuleResp", "point this
// capsule at a bogus slot") on top of the stochastic policy, and inject()
// forges PDUs as if the local endpoint had sent them.
//
// Multipath extensions: partitions can be asymmetric (outbound-only or
// inbound-only, modelling one-way link failures that keep-alive echoes
// would otherwise mask), and kill_at(n) closes the underlying channel on
// the nth subsequent send — a deterministic "pull the cable mid-burst"
// trigger, so failover tests never depend on timing to kill a path at a
// reproducible point in the PDU stream.
//
// Because corruption and timing all derive from a caller-supplied seed,
// fault scenarios replay bit-identically on the timing plane and are used
// by the resilience tests to assert the protocol *recovers* — not merely
// fails safely — under loss.
#pragma once

#include <functional>
#include <memory>

#include "common/rng.h"
#include "net/channel.h"

namespace oaf::net {

/// Stochastic misbehaviour knobs. All probabilities are per-PDU and
/// evaluated from a deterministic seeded stream.
struct FaultPolicy {
  u64 seed = 1;
  double drop_prob = 0.0;       ///< silently discard the PDU
  double corrupt_prob = 0.0;    ///< flip one payload byte (inline data only)
  double duplicate_prob = 0.0;  ///< deliver the PDU twice
  DurNs delay_ns = 0;           ///< fixed extra latency per forwarded PDU
  DurNs delay_jitter_ns = 0;    ///< extra uniform latency in [0, jitter)
};

/// Which traffic a partition swallows, relative to this endpoint.
enum class Direction : u8 {
  kBoth = 0,
  kOutbound = 1,  ///< our send()s vanish; the peer's still arrive
  kInbound = 2,   ///< the peer's PDUs vanish; our send()s still leave
};

class FaultChannel final : public MsgChannel {
 public:
  /// Returns false to drop the PDU; may mutate it in place. Runs before
  /// the stochastic policy.
  using FaultFn = std::function<bool(pdu::Pdu&)>;

  explicit FaultChannel(std::unique_ptr<MsgChannel> inner,
                        FaultPolicy policy = {});

  /// Replaces the policy and reseeds the deterministic stream.
  void set_policy(FaultPolicy policy);
  void set_fault(FaultFn fn) { fault_ = std::move(fn); }

  /// Drop every PDU travelling in `d` until heal() is called. Directions
  /// accumulate: partition(kOutbound) then partition(kInbound) equals
  /// partition(kBoth).
  void partition(Direction d = Direction::kBoth) {
    if (d != Direction::kInbound) partitioned_out_ = true;
    if (d != Direction::kOutbound) partitioned_in_ = true;
  }
  void heal() { partitioned_out_ = partitioned_in_ = false; }
  [[nodiscard]] bool partitioned() const {
    return partitioned_out_ || partitioned_in_;
  }

  /// Deterministic kill switch: the nth subsequent send() (1-based) closes
  /// the underlying channel instead of delivering, as if the transport died
  /// mid-burst at an exact point in the PDU stream. 0 disarms. The trigger
  /// counts attempted sends — PDUs the fault hook or a partition would have
  /// swallowed still advance it, so "kill at the 5th PDU" means the same
  /// thing whatever other faults are active.
  void kill_at(u64 nth_pdu) { kill_countdown_ = nth_pdu; }
  /// Observer invoked (once) when the kill trigger fires, before close().
  void set_on_kill(std::function<void()> fn) { on_kill_ = std::move(fn); }
  [[nodiscard]] bool killed() const { return killed_; }

  /// Forge a PDU as if the local endpoint had sent it: bypasses the
  /// fault policy entirely.
  void inject(pdu::Pdu pdu) { inner_->send(std::move(pdu)); }

  /// One-shot stall: the next forwarded send() is delivered `ns` late (on
  /// top of any policy delay), then the stall disarms itself. The
  /// deterministic trigger for tail-latency tests — one PDU limps, every
  /// neighbour stays fast, and the SLO watchdog should finger exactly it.
  void inject_delay(DurNs ns) { injected_delay_ns_ = ns; }
  [[nodiscard]] bool delay_pending() const { return injected_delay_ns_ > 0; }

  // MsgChannel
  void send(pdu::Pdu pdu) override;
  void set_handler(Handler handler) override;
  void close() override { inner_->close(); }
  [[nodiscard]] bool is_open() const override { return inner_->is_open(); }
  [[nodiscard]] Executor& executor() override { return inner_->executor(); }
  [[nodiscard]] u64 bytes_sent() const override { return inner_->bytes_sent(); }
  [[nodiscard]] u64 pdus_sent() const override { return inner_->pdus_sent(); }

  // Fault counters.
  [[nodiscard]] u64 dropped() const { return dropped_; }
  [[nodiscard]] u64 corrupted() const { return corrupted_; }
  [[nodiscard]] u64 duplicated() const { return duplicated_; }
  [[nodiscard]] u64 delayed() const { return delayed_; }
  [[nodiscard]] u64 inbound_dropped() const { return inbound_dropped_; }

 private:
  void forward(pdu::Pdu pdu);

  std::unique_ptr<MsgChannel> inner_;
  FaultPolicy policy_;
  Rng rng_;
  FaultFn fault_;
  Handler handler_;  ///< the user's receive handler (inbound gate)
  std::function<void()> on_kill_;
  bool partitioned_out_ = false;
  bool partitioned_in_ = false;
  u64 kill_countdown_ = 0;  ///< sends left until the kill fires; 0 = disarmed
  bool killed_ = false;
  DurNs injected_delay_ns_ = 0;  ///< one-shot stall armed by inject_delay()
  u64 dropped_ = 0;
  u64 corrupted_ = 0;
  u64 duplicated_ = 0;
  u64 delayed_ = 0;
  u64 inbound_dropped_ = 0;
};

/// Wraps both endpoints of an existing pair in FaultChannels sharing the
/// same policy (seeds are split so the two directions draw independent
/// streams).
std::pair<std::unique_ptr<FaultChannel>, std::unique_ptr<FaultChannel>>
wrap_fault_pair(ChannelPair pair, FaultPolicy policy = {});

}  // namespace oaf::net

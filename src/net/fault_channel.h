// Fault-injection channel wrapper.
//
// FaultChannel decorates any MsgChannel endpoint with deterministic,
// seeded misbehaviour: probabilistic drop / payload corruption /
// duplication, fixed-plus-jittered delivery delay, and an explicit
// partition switch (drop everything until healed). A free-form FaultFn
// hook supports surgical faults ("drop the next CapsuleResp", "point this
// capsule at a bogus slot") on top of the stochastic policy, and inject()
// forges PDUs as if the local endpoint had sent them.
//
// Because corruption and timing all derive from a caller-supplied seed,
// fault scenarios replay bit-identically on the timing plane and are used
// by the resilience tests to assert the protocol *recovers* — not merely
// fails safely — under loss.
#pragma once

#include <functional>
#include <memory>

#include "common/rng.h"
#include "net/channel.h"

namespace oaf::net {

/// Stochastic misbehaviour knobs. All probabilities are per-PDU and
/// evaluated from a deterministic seeded stream.
struct FaultPolicy {
  u64 seed = 1;
  double drop_prob = 0.0;       ///< silently discard the PDU
  double corrupt_prob = 0.0;    ///< flip one payload byte (inline data only)
  double duplicate_prob = 0.0;  ///< deliver the PDU twice
  DurNs delay_ns = 0;           ///< fixed extra latency per forwarded PDU
  DurNs delay_jitter_ns = 0;    ///< extra uniform latency in [0, jitter)
};

class FaultChannel final : public MsgChannel {
 public:
  /// Returns false to drop the PDU; may mutate it in place. Runs before
  /// the stochastic policy.
  using FaultFn = std::function<bool(pdu::Pdu&)>;

  explicit FaultChannel(std::unique_ptr<MsgChannel> inner,
                        FaultPolicy policy = {});

  /// Replaces the policy and reseeds the deterministic stream.
  void set_policy(FaultPolicy policy);
  void set_fault(FaultFn fn) { fault_ = std::move(fn); }

  /// Drop every PDU (both directions are typically partitioned by
  /// wrapping each endpoint) until heal() is called.
  void partition() { partitioned_ = true; }
  void heal() { partitioned_ = false; }
  [[nodiscard]] bool partitioned() const { return partitioned_; }

  /// Forge a PDU as if the local endpoint had sent it: bypasses the
  /// fault policy entirely.
  void inject(pdu::Pdu pdu) { inner_->send(std::move(pdu)); }

  // MsgChannel
  void send(pdu::Pdu pdu) override;
  void set_handler(Handler handler) override {
    inner_->set_handler(std::move(handler));
  }
  void close() override { inner_->close(); }
  [[nodiscard]] bool is_open() const override { return inner_->is_open(); }
  [[nodiscard]] Executor& executor() override { return inner_->executor(); }
  [[nodiscard]] u64 bytes_sent() const override { return inner_->bytes_sent(); }
  [[nodiscard]] u64 pdus_sent() const override { return inner_->pdus_sent(); }

  // Fault counters.
  [[nodiscard]] u64 dropped() const { return dropped_; }
  [[nodiscard]] u64 corrupted() const { return corrupted_; }
  [[nodiscard]] u64 duplicated() const { return duplicated_; }
  [[nodiscard]] u64 delayed() const { return delayed_; }

 private:
  void forward(pdu::Pdu pdu);

  std::unique_ptr<MsgChannel> inner_;
  FaultPolicy policy_;
  Rng rng_;
  FaultFn fault_;
  bool partitioned_ = false;
  u64 dropped_ = 0;
  u64 corrupted_ = 0;
  u64 duplicated_ = 0;
  u64 delayed_ = 0;
};

/// Wraps both endpoints of an existing pair in FaultChannels sharing the
/// same policy (seeds are split so the two directions draw independent
/// streams).
std::pair<std::unique_ptr<FaultChannel>, std::unique_ptr<FaultChannel>>
wrap_fault_pair(ChannelPair pair, FaultPolicy policy = {});

}  // namespace oaf::net

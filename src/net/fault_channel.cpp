#include "net/fault_channel.h"

namespace oaf::net {

FaultChannel::FaultChannel(std::unique_ptr<MsgChannel> inner,
                           FaultPolicy policy)
    : inner_(std::move(inner)), policy_(policy), rng_(policy.seed) {}

void FaultChannel::set_policy(FaultPolicy policy) {
  policy_ = policy;
  rng_ = Rng(policy.seed);
}

void FaultChannel::set_handler(Handler handler) {
  handler_ = std::move(handler);
  // Interpose on the inbound path so an inbound partition can swallow
  // deliveries. `this` outlives the inner channel (we own it), so the
  // capture cannot dangle.
  inner_->set_handler([this](pdu::Pdu p) {
    if (partitioned_in_) {
      inbound_dropped_++;
      return;
    }
    if (handler_) handler_(std::move(p));
  });
}

void FaultChannel::send(pdu::Pdu pdu) {
  if (kill_countdown_ > 0 && --kill_countdown_ == 0) {
    // The cable is cut mid-send: this PDU dies with the channel.
    killed_ = true;
    if (on_kill_) on_kill_();
    inner_->close();
    return;
  }
  if (fault_ && !fault_(pdu)) {
    dropped_++;
    return;
  }
  if (partitioned_out_) {
    dropped_++;
    return;
  }
  if (policy_.drop_prob > 0.0 && rng_.next_bool(policy_.drop_prob)) {
    dropped_++;
    return;
  }
  if (policy_.corrupt_prob > 0.0 && !pdu.payload.empty() &&
      rng_.next_bool(policy_.corrupt_prob)) {
    pdu.payload[rng_.next_below(pdu.payload.size())] ^= 0xFF;
    corrupted_++;
  }
  const bool duplicate =
      policy_.duplicate_prob > 0.0 && rng_.next_bool(policy_.duplicate_prob);
  if (duplicate) {
    duplicated_++;
    forward(pdu);
  }
  forward(std::move(pdu));
}

void FaultChannel::forward(pdu::Pdu pdu) {
  DurNs delay = policy_.delay_ns;
  if (injected_delay_ns_ > 0) {
    delay += injected_delay_ns_;
    injected_delay_ns_ = 0;  // one-shot: only this PDU limps
  }
  if (policy_.delay_jitter_ns > 0) {
    delay += static_cast<DurNs>(
        rng_.next_below(static_cast<u64>(policy_.delay_jitter_ns)));
  }
  if (delay <= 0) {
    inner_->send(std::move(pdu));
    return;
  }
  delayed_++;
  // inner_ outlives scheduled work in every harness (channels are torn down
  // only after the executor drains), so capturing the raw pointer is safe.
  auto* inner = inner_.get();
  inner_->executor().schedule_after(
      delay, [inner, p = std::move(pdu)]() mutable {
        if (inner->is_open()) inner->send(std::move(p));
      });
}

std::pair<std::unique_ptr<FaultChannel>, std::unique_ptr<FaultChannel>>
wrap_fault_pair(ChannelPair pair, FaultPolicy policy) {
  FaultPolicy second = policy;
  second.seed = policy.seed * 0x9E3779B97F4A7C15ULL + 1;
  return {std::make_unique<FaultChannel>(std::move(pair.first), policy),
          std::make_unique<FaultChannel>(std::move(pair.second), second)};
}

}  // namespace oaf::net

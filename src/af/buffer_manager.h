// Buffer Manager (paper §4.1, §4.4.3).
//
// Two allocation domains:
//   * a DPDK-style pool — fixed-size, cache-line-aligned buffers carved from
//     one slab, used by the target for DMA-able staging buffers and by the
//     client when no shm channel exists. Buffer size follows the configured
//     chunk size, which is why the chunk knob also moves target memory
//     utilization (Fig 9);
//   * shared-memory slots — owned by the DoubleBufferRing; under the
//     zero-copy design the Buffer Manager hands the application a buffer
//     that *is* a ring slot, eliminating the client->shm copy.
#pragma once

#include <cstdlib>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "common/units.h"

namespace oaf::af {

/// Fixed-size aligned buffer pool with an intrusive free list. Not
/// thread-safe by design: each connection's pool lives on one reactor.
class BufferPool {
 public:
  /// `buffer_bytes` per buffer, `count` buffers, aligned to `alignment`.
  BufferPool(u64 buffer_bytes, u32 count, u64 alignment = 4096);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Borrow one buffer; returns empty span when exhausted (the exhaustion
  /// is counted either way — prefer try_alloc() for a typed error).
  [[nodiscard]] std::span<u8> alloc();

  /// Borrow one buffer, or a retryable kResourceExhausted error when the
  /// pool is empty. Exhaustion is expected under overload, so callers must
  /// turn it into backpressure (kQueueFull), never treat it as fatal.
  [[nodiscard]] Result<std::span<u8>> try_alloc();

  /// Return a buffer previously obtained from alloc().
  Status free(std::span<u8> buffer);

  [[nodiscard]] u64 buffer_bytes() const { return buffer_bytes_; }
  [[nodiscard]] u32 capacity() const { return count_; }
  [[nodiscard]] u32 in_use() const { return in_use_; }
  [[nodiscard]] u32 peak_in_use() const { return peak_in_use_; }
  /// Allocation attempts that found the pool empty.
  [[nodiscard]] u64 exhaustions() const { return exhaustions_; }
  [[nodiscard]] u64 slab_bytes() const { return buffer_bytes_ * count_; }
  /// True if `p` points into this pool's slab (ownership check).
  [[nodiscard]] bool owns(const u8* p) const;

 private:
  u64 buffer_bytes_;
  u32 count_;
  u8* slab_ = nullptr;
  std::vector<u32> free_list_;
  // One bit per buffer so free() detects a double free in O(1) instead of
  // scanning the free list.
  std::vector<bool> in_use_map_;
  u32 in_use_ = 0;
  u32 peak_in_use_ = 0;
  u64 exhaustions_ = 0;
};

/// Per-connection buffer manager: routes allocations to shm slots or the
/// DPDK pool based on channel availability and the zero-copy setting.
/// The shm side is wired in by the AfEndpoint after the handshake.
class BufferManager {
 public:
  BufferManager(u64 pool_buffer_bytes, u32 pool_count)
      : pool_(pool_buffer_bytes, pool_count) {}

  [[nodiscard]] BufferPool& pool() { return pool_; }
  [[nodiscard]] const BufferPool& pool() const { return pool_; }

  /// Staging buffer for one chunk (target side / TCP fallback).
  [[nodiscard]] std::span<u8> alloc_staging() { return pool_.alloc(); }
  /// Typed variant: kResourceExhausted (retryable) instead of a silent
  /// empty span when the pool is dry.
  [[nodiscard]] Result<std::span<u8>> try_alloc_staging() {
    return pool_.try_alloc();
  }
  Status free_staging(std::span<u8> b) { return pool_.free(b); }

  /// Memory footprint the pool pins for this connection — the "memory
  /// utilization" series of Fig 9.
  [[nodiscard]] u64 pinned_bytes() const { return pool_.slab_bytes(); }

 private:
  BufferPool pool_;
};

}  // namespace oaf::af

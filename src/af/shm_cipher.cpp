#include "af/shm_cipher.h"

namespace oaf::af {

namespace {

/// SplitMix64 step — cheap, seekable block keystream.
inline u64 block_key(u64 key, u64 block_index) {
  u64 z = key + 0x9e3779b97f4a7c15ULL * (block_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void xor_keystream(std::span<u8> data, u64 key, u64 stream_offset) {
  u64 pos = stream_offset;
  for (u8& byte : data) {
    const u64 block = pos / 8;
    const u64 within = pos % 8;
    byte ^= static_cast<u8>(block_key(key, block) >> (8 * within));
    pos++;
  }
}

}  // namespace oaf::af

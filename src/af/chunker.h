// Application-level chunking (paper §4.5).
//
// NVMe/TCP splits each I/O into ceil(io_size / chunk_size) data PDUs; the
// chunk size also dictates the target's staging-buffer size, so small chunks
// cost per-PDU overhead and huge chunks waste pool memory. The Fig 9 bench
// sweeps this knob.
#pragma once

#include <vector>

#include "common/types.h"
#include "common/units.h"
#include "telemetry/telemetry.h"

namespace oaf::af {

struct Chunk {
  u64 offset = 0;
  u64 length = 0;
  bool last = false;
};

namespace detail {
/// Cached process-global chunk counter (chunking happens on both engines'
/// data paths; the registry lookup is done once).
inline telemetry::Counter* chunk_counter() {
  static telemetry::Counter* c = telemetry::metrics().counter(
      "oaf_chunks_total", "Data PDU chunks produced by application chunking");
  return c;
}
}  // namespace detail

/// Split [0, total) into chunks of at most `chunk_bytes`.
inline std::vector<Chunk> make_chunks(u64 total, u64 chunk_bytes) {
  std::vector<Chunk> out;
  if (total == 0) {
    out.push_back({0, 0, true});
    OAF_TEL(telemetry::bump(detail::chunk_counter()));
    return out;
  }
  if (chunk_bytes == 0) chunk_bytes = total;
  out.reserve(ceil_div(total, chunk_bytes));
  for (u64 off = 0; off < total; off += chunk_bytes) {
    const u64 len = std::min(chunk_bytes, total - off);
    out.push_back({off, len, off + len == total});
  }
  OAF_TEL(telemetry::bump(detail::chunk_counter(), out.size()));
  return out;
}

/// Number of chunks an I/O of `total` bytes produces.
inline u64 chunk_count(u64 total, u64 chunk_bytes) {
  if (total == 0) return 1;
  if (chunk_bytes == 0) return 1;
  return ceil_div(total, chunk_bytes);
}

}  // namespace oaf::af

// Connection Manager (paper §4.1, Fig 5).
//
// Runs the adaptive-fabric leg of connection establishment on top of the
// NVMe/TCP ICReq/ICResp exchange:
//   1. client CM builds an ICReq carrying its host-identity token and shm
//      request;
//   2. target CM checks locality (token == its broker's token); if
//      co-located it asks the broker (helper process) to provision an
//      isolated region, formats the double-buffer ring in it, wires its
//      endpoint, and grants the channel in ICResp;
//   3. client CM verifies the helper's announcement on the locality page,
//      maps the region, attaches the ring, and wires its endpoint.
// After step 3 both AF endpoint objects are connected and data can flow
// through shm; otherwise both sides keep the optimized-TCP-only mode.
#pragma once

#include <string>

#include "af/endpoint.h"
#include "af/exec_serial.h"
#include "af/locality.h"
#include "pdu/pdu.h"

namespace oaf::af {

class ConnectionManager {
 public:
  /// `broker` is this side's host helper ("hypervisor agent").
  explicit ConnectionManager(ShmBroker& broker) : broker_(broker) {}

  /// Reactor-affine construction: the owning engine lends its executor
  /// serial (af/exec_serial.h), making the handshake methods below
  /// OAF_REQUIRES(*exec_serial_) — clang -Wthread-safety then rejects any
  /// handshake call that is not provably on the engine's reactor. The
  /// single-argument constructor leaves the capability unbound for
  /// free-standing use (tests, offline tools).
  ConnectionManager(ShmBroker& broker, const ExecutorSerial& serial)
      : broker_(broker), exec_serial_(&serial) {}

  /// The borrowed reactor capability; null when constructed unbound.
  /// Call sites inside the owning engine re-assert it:
  ///   cm_.serial()->assume_held();
  [[nodiscard]] const ExecutorSerial* serial() const
      OAF_RETURN_CAPABILITY(*exec_serial_) {
    return exec_serial_;
  }

  // --- client role -------------------------------------------------------

  /// ICReq advertising this host's token and the endpoint's shm wish.
  [[nodiscard]] pdu::ICReq make_icreq(const AfConfig& cfg) const;

  /// Process the target's ICResp; on a grant, maps the region and attaches
  /// the ring to `ep`. Returns error if the grant cannot be honoured (the
  /// connection should then fall back to TCP-only).
  Status complete_client(const pdu::ICResp& resp, AfEndpoint& ep)
      OAF_REQUIRES(*exec_serial_);

  // --- target role ---------------------------------------------------------

  /// Process a client's ICReq for connection `conn_name`; provisions and
  /// attaches shm when co-located, and returns the ICResp to send.
  Result<pdu::ICResp> accept_target(const pdu::ICReq& req,
                                    const std::string& conn_name,
                                    AfEndpoint& ep) OAF_REQUIRES(*exec_serial_);

  /// Release the region backing `conn_name` (connection teardown).
  Status release(const std::string& conn_name) OAF_REQUIRES(*exec_serial_) {
    return broker_.revoke(conn_name);
  }

  [[nodiscard]] ShmBroker& broker() { return broker_; }

 private:
  ShmBroker& broker_;
  /// Borrowed from the owning engine; never owned, may be null (unbound).
  const ExecutorSerial* exec_serial_ = nullptr;
};

}  // namespace oaf::af

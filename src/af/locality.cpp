#include "af/locality.h"

#include <sys/mman.h>

namespace oaf::af {

namespace {
std::string posix_name(const std::string& name) { return "/oaf_" + name; }
}  // namespace

Result<RegionHandle> ShmBroker::provision(const std::string& name, u64 bytes) {
  if (name.empty()) {
    return make_error(StatusCode::kInvalidArgument, "empty region name");
  }
  if (entries_.contains(name)) {
    return make_error(StatusCode::kAlreadyExists,
                      "region already provisioned: " + name);
  }
  const u64 total = RegionHandle::kRingOffset + bytes;

  auto region_res = backing_ == Backing::kPosixShm
                        ? shm::ShmRegion::create(posix_name(name), total)
                        : shm::ShmRegion::anonymous(total);
  if (!region_res && region_res.status().code() == StatusCode::kAlreadyExists) {
    // A previous process died without unlinking its region. The broker owns
    // this name space (entries_ already guarantees no live connection uses
    // it), so garbage-collect the stale object and retry.
    ::shm_unlink(posix_name(name).c_str());
    region_res = shm::ShmRegion::create(posix_name(name), total);
  }
  if (!region_res) return region_res.status();
  auto region = std::make_shared<shm::ShmRegion>(std::move(region_res).take());

  RegionHandle handle;
  handle.name = name;
  handle.base = region->bytes();
  handle.bytes = total;
  handle.keepalive = region;

  // Initialize and announce on the pre-reserved page — the flag the client's
  // Connection Manager polls for during establishment.
  shm::LocalityPage page(handle.base, /*init=*/true);
  page.announce(node_token_, name);

  entries_[name] = Entry{region, nullptr};
  return handle;
}

Result<RegionHandle> ShmBroker::open(const std::string& name) {
  auto it = entries_.find(name);
  RegionHandle handle;
  handle.name = name;

  if (it == entries_.end()) {
    // Not provisioned by *this* broker object. With POSIX backing the
    // region may have been provisioned by the target's broker in another
    // process — attach by name (the helper's announcement and the claim
    // flag below still gate access).
    if (backing_ != Backing::kPosixShm) {
      return make_error(StatusCode::kNotFound, "region not provisioned: " + name);
    }
    auto mapped = shm::ShmRegion::attach(posix_name(name));
    if (!mapped) return mapped.status();
    auto region = std::make_shared<shm::ShmRegion>(std::move(mapped).take());
    handle.base = region->bytes();
    handle.bytes = region->size();
    handle.keepalive = region;
  } else if (backing_ == Backing::kPosixShm) {
    auto mapped = shm::ShmRegion::attach(posix_name(name));
    if (!mapped) return mapped.status();
    auto region = std::make_shared<shm::ShmRegion>(std::move(mapped).take());
    handle.base = region->bytes();
    handle.bytes = region->size();
    handle.keepalive = region;
  } else {
    handle.base = it->second.region->bytes();
    handle.bytes = it->second.region->size();
    handle.keepalive = it->second.region;
  }

  // The helper must have announced the hotplug before the client maps.
  if (handle.locality_page().generation() == 0) {
    return make_error(StatusCode::kFailedPrecondition,
                      "region not announced by helper: " + name);
  }
  // Isolation: one client per region (paper §6). The claim flag lives in
  // the shared page, so it holds across processes too.
  if (!handle.locality_page().try_claim()) {
    return make_error(StatusCode::kFailedPrecondition,
                      "region already opened by another client: " + name);
  }
  return handle;
}

Status ShmBroker::revoke(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return make_error(StatusCode::kNotFound, "region not provisioned: " + name);
  }
  if (backing_ == Backing::kPosixShm) {
    it->second.region->unlink();
  }
  entries_.erase(it);
  return Status::ok();
}

std::shared_ptr<sim::AsyncMutex> ShmBroker::mutex_for(const std::string& name,
                                                      Executor& exec) {
  auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  if (!it->second.mutex) {
    it->second.mutex = std::make_shared<sim::AsyncMutex>(exec);
  }
  return it->second.mutex;
}

}  // namespace oaf::af

#include "af/connection_manager.h"

#include "common/log.h"

namespace oaf::af {

pdu::ICReq ConnectionManager::make_icreq(const AfConfig& cfg) const {
  pdu::ICReq req;
  req.pfv = 1;
  req.maxr2t = 1;
  req.node_token = broker_.node_token();
  req.want_shm = cfg.want_shm;
  req.data_digest = cfg.data_digest;
  req.trace_ctx = cfg.trace_ctx;
  // t_sent_ns is stamped by the sender at transmit time (it needs the
  // executor clock, which the CM deliberately doesn't know about).
  return req;
}

Result<pdu::ICResp> ConnectionManager::accept_target(const pdu::ICReq& req,
                                                     const std::string& conn_name,
                                                     AfEndpoint& ep) {
  pdu::ICResp resp;
  resp.pfv = req.pfv;
  resp.maxh2cdata = static_cast<u32>(ep.config().chunk_bytes);
  resp.data_digest = req.data_digest && ep.config().data_digest;
  resp.trace_ctx = req.trace_ctx && ep.config().trace_ctx;
  resp.echo_t_ns = req.t_sent_ns;
  resp.t_now_ns = static_cast<u64>(ep.executor().now());

  const bool co_located = req.node_token == broker_.node_token();
  if (!req.want_shm || !ep.config().want_shm || !co_located) {
    resp.shm_granted = false;
    return resp;
  }

  const AfConfig& cfg = ep.config();
  const u64 ring_bytes =
      shm::DoubleBufferRing::required_bytes(cfg.shm_slot_bytes, cfg.shm_slots);
  auto handle = broker_.provision(conn_name, ring_bytes);
  if (!handle) {
    OAF_WARN("shm provision failed for %s: %s", conn_name.c_str(),
             handle.status().to_string().c_str());
    resp.shm_granted = false;
    return resp;
  }
  auto region = std::move(handle).take();
  auto ring = shm::DoubleBufferRing::create(region.ring_area(),
                                            region.ring_bytes(),
                                            cfg.shm_slot_bytes, cfg.shm_slots);
  if (!ring) {
    (void)broker_.revoke(conn_name);
    return ring.status();
  }

  std::shared_ptr<sim::AsyncMutex> lock;
  if (cfg.shm_access == ShmAccessMode::kLocked) {
    lock = broker_.mutex_for(conn_name, ep.executor());
  }

  resp.shm_granted = true;
  resp.shm_bytes = region.bytes;
  resp.shm_slots = cfg.shm_slots;
  resp.shm_name = conn_name;
  ep.enable_shm(std::move(region), ring.value(), std::move(lock));
  return resp;
}

Status ConnectionManager::complete_client(const pdu::ICResp& resp, AfEndpoint& ep) {
  if (!resp.shm_granted) {
    return make_error(StatusCode::kUnavailable, "target did not grant shm");
  }
  auto handle = broker_.open(resp.shm_name);
  if (!handle) return handle.status();
  auto region = std::move(handle).take();

  // The helper must have announced this exact region (paper §4.2's flag
  // polling); ShmBroker::open already verified generation > 0, so only the
  // name is re-checked here.
  if (region.locality_page().region_name() != resp.shm_name) {
    return make_error(StatusCode::kFailedPrecondition,
                      "locality page names a different region");
  }

  auto ring = shm::DoubleBufferRing::attach(region.ring_area(), region.ring_bytes());
  if (!ring) return ring.status();

  std::shared_ptr<sim::AsyncMutex> lock;
  if (ep.config().shm_access == ShmAccessMode::kLocked) {
    lock = broker_.mutex_for(resp.shm_name, ep.executor());
  }

  ep.enable_shm(std::move(region), ring.value(), std::move(lock));
  return Status::ok();
}

}  // namespace oaf::af

#include "af/once_callback.h"

#include <cstdio>
#include <cstdlib>

#include "telemetry/flight.h"

namespace oaf::af::detail {

void once_armed_drop() {
  // The drop site is in the abort backtrace; the flight dump carries the
  // last telemetry ring so the wedge-that-would-have-been is attributable.
  std::fputs(
      "oaf: FATAL: armed af::OnceCallback destroyed without being invoked "
      "or drop()ed — a completion was lost; dumping flight recorder\n",
      stderr);
  telemetry::flight().dump_now("once_callback_armed_drop");
  std::abort();
}

}  // namespace oaf::af::detail

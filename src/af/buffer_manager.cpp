#include "af/buffer_manager.h"

#include <cassert>

namespace oaf::af {

BufferPool::BufferPool(u64 buffer_bytes, u32 count, u64 alignment)
    : buffer_bytes_(align_up(buffer_bytes, 64)), count_(count) {
  assert(is_pow2(alignment));
  const u64 slab = align_up(buffer_bytes_ * count_, alignment);
  slab_ = static_cast<u8*>(std::aligned_alloc(alignment, slab));
  free_list_.reserve(count_);
  // Reverse order so alloc() hands out low addresses first (cache-friendly,
  // and deterministic for tests).
  for (u32 i = count_; i > 0; --i) free_list_.push_back(i - 1);
  in_use_map_.assign(count_, false);
}

BufferPool::~BufferPool() { std::free(slab_); }

std::span<u8> BufferPool::alloc() {
  if (free_list_.empty() || slab_ == nullptr) {
    exhaustions_++;
    return {};
  }
  const u32 idx = free_list_.back();
  free_list_.pop_back();
  in_use_map_[idx] = true;
  in_use_++;
  if (in_use_ > peak_in_use_) peak_in_use_ = in_use_;
  return {slab_ + static_cast<u64>(idx) * buffer_bytes_, buffer_bytes_};
}

Result<std::span<u8>> BufferPool::try_alloc() {
  const std::span<u8> b = alloc();
  if (b.empty()) {
    return make_error(StatusCode::kResourceExhausted, "buffer pool exhausted");
  }
  return b;
}

Status BufferPool::free(std::span<u8> buffer) {
  if (buffer.data() == nullptr) {
    return make_error(StatusCode::kInvalidArgument, "null buffer");
  }
  if (!owns(buffer.data())) {
    return make_error(StatusCode::kInvalidArgument, "buffer not from this pool");
  }
  const u64 off = static_cast<u64>(buffer.data() - slab_);
  if (off % buffer_bytes_ != 0) {
    return make_error(StatusCode::kInvalidArgument, "misaligned buffer pointer");
  }
  const u32 idx = static_cast<u32>(off / buffer_bytes_);
  if (!in_use_map_[idx]) {
    return make_error(StatusCode::kFailedPrecondition, "double free");
  }
  in_use_map_[idx] = false;
  free_list_.push_back(idx);
  in_use_--;
  return Status::ok();
}

bool BufferPool::owns(const u8* p) const {
  return slab_ != nullptr && p >= slab_ && p < slab_ + buffer_bytes_ * count_;
}

}  // namespace oaf::af

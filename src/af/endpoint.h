// AF endpoint: one side's view of an adaptive-fabric connection (paper §4.6).
//
// The endpoint owns the shared-memory data-path state for a connection —
// the double-buffer ring mapping, the access mode (lock-free vs the locked
// ablation baseline), and the zero-copy buffer API — and exposes the payload
// primitives the NVMe-oF engines compose:
//   producer side:  stage_payload (copy into a slot and publish) or
//                   acquire_app_buffer + publish_app_buffer (zero-copy);
//   consumer side:  consume_payload (copy out and release) or
//                   consume_view + release_slot (zero-copy read).
// Control PDUs never pass through here; they ride the TCP channel owned by
// the NVMe-oF engine. When no shm channel was negotiated the engines fall
// back to inline TCP data PDUs and the endpoint is idle — that *is* the
// adaptive selection (paper §4.2).
#pragma once

#include <memory>
#include <vector>

#include "af/config.h"
#include "af/locality.h"
#include "common/executor.h"
#include "net/copier.h"
#include "shm/double_buffer.h"
#include "telemetry/telemetry.h"

namespace oaf::af {

enum class Role { kClient, kTarget };

class AfEndpoint {
 public:
  using Done = std::function<void()>;

  /// Lock hold time per slot access in the locked ablation mode (spinlock
  /// acquire + slot bookkeeping under contention).
  static constexpr DurNs kLockHoldNs = 1'500;

  AfEndpoint(Role role, Executor& exec, net::Copier& copier, AfConfig cfg)
      : role_(role), exec_(exec), copier_(copier), cfg_(std::move(cfg)) {
    // Encryption requires both sides to transform payloads, which the
    // zero-copy path bypasses by construction.
    if (cfg_.encrypt_shm) cfg_.zero_copy = false;
    init_telemetry();
  }

  AfEndpoint(const AfEndpoint&) = delete;
  AfEndpoint& operator=(const AfEndpoint&) = delete;

  ~AfEndpoint() { *alive_ = false; }

  /// Wire up the shm channel after the Connection Manager handshake.
  /// `lock` is non-null only in the locked-access ablation mode, where it
  /// must be the same AsyncMutex on both sides of the connection.
  void enable_shm(RegionHandle handle, shm::DoubleBufferRing ring,
                  std::shared_ptr<sim::AsyncMutex> lock = nullptr);

  /// True when new payloads should ride the shm ring. Demotion turns this
  /// off while leaving the ring attached so in-flight transfers drain.
  [[nodiscard]] bool shm_ready() const { return ring_.valid() && !demoted_; }

  /// True while the ring is mapped at all — consume paths use this so a
  /// payload already parked in a slot survives a runtime demotion.
  [[nodiscard]] bool shm_attached() const { return ring_.valid(); }

  /// Runtime shm -> TCP demotion (paper's adaptivity extended to run-time):
  /// stop producing into the ring; in-flight slot transfers still complete.
  /// Idempotent. Returns true if this call performed the demotion.
  bool demote_shm();
  [[nodiscard]] bool demoted() const { return demoted_; }

  /// Drop the ring mapping entirely (reconnect teardown). Pending slot
  /// consumers fail; callers must have drained or failed in-flight I/O.
  void detach_shm();

  /// Cheap data-path health probe: the helper's locality page must still
  /// announce exactly the region this endpoint mapped. A revoked or
  /// re-provisioned page fails the check and should trigger demotion.
  [[nodiscard]] bool shm_healthy() const;
  [[nodiscard]] Role role() const { return role_; }
  [[nodiscard]] const AfConfig& config() const { return cfg_; }
  [[nodiscard]] Executor& executor() { return exec_; }
  [[nodiscard]] net::Copier& copier() { return copier_; }

  /// Round-robin slot for command sequence `seq` (paper §4.4.1).
  [[nodiscard]] u32 slot_for(u64 seq) const { return ring_.slot_for(seq); }
  [[nodiscard]] u64 slot_bytes() const { return ring_.slot_size(); }
  [[nodiscard]] u32 slot_count() const { return ring_.slot_count(); }

  /// Raw ring handle. For diagnostics and test fault injection
  /// (shm::ShmFaultRing) only — the staged/zero-copy methods are the data
  /// path; mutating slots through this handle bypasses the protocol.
  [[nodiscard]] shm::DoubleBufferRing& ring() { return ring_; }

  // --- producer side -----------------------------------------------------

  /// Copy `data` into slot `slot` and publish it. `done` fires when the
  /// payload is visible to the peer (copy complete on this plane's clock).
  Status stage_payload(u32 slot, std::span<const u8> data, Done done);

  /// Like stage_payload, but if the slot is still owned by the previous
  /// transfer, poll until it frees. Used by the conservative (chunked) flow,
  /// where one command's chunks reuse a single slot sequentially — the
  /// serialization the shm flow control optimization removes (§4.4.2).
  /// `cancelled` (optional) is checked before each attempt: once it returns
  /// true the transfer is dropped silently (`done` never fires) — an aborted
  /// command must not park a stray payload in a slot a successor will reuse.
  void stage_payload_when_free(u32 slot, std::span<const u8> data, Done done,
                               std::function<bool()> cancelled = nullptr);

  /// Zero-copy: claim slot `slot` and return its buffer for the application
  /// to fill in place (the Buffer Manager "creates the app buffer on shm").
  Result<std::span<u8>> acquire_app_buffer(u32 slot);

  /// Zero-copy: publish `len` bytes already written via acquire_app_buffer.
  /// No copy is charged — that is the entire point (§4.4.3).
  Status publish_app_buffer(u32 slot, u64 len, Done done);

  // --- consumer side -----------------------------------------------------

  /// Copy the published payload of `slot` into `dst` and release the slot.
  /// `done` receives the payload length, or an error status.
  void consume_payload(u32 slot, std::span<u8> dst,
                       std::function<void(Result<u64>)> done);

  /// Zero-copy read: borrow the slot contents. Caller must release_slot()
  /// when the application is done with the data.
  Result<std::span<const u8>> consume_view(u32 slot);

  Status release_slot(u32 slot);

  // --- command-lifetime robustness ----------------------------------------

  /// Drop whatever an aborted command parked in `slot`, in both directions:
  /// a published-but-unconsumed payload is discarded so the slot (and the
  /// cid that owns it) can be reused by the next command. Slots in other
  /// states are left alone (the orphan sweeper age-gates those).
  void abandon_slot(u32 slot);

  /// Reclaim slots stuck in kWriting/kDraining longer than `stuck_after`
  /// (owner died mid-transfer — e.g. a client that froze after
  /// zero_copy_write_begin). Both directions are swept; a slot's age resets
  /// whenever its observed state changes. Returns how many were reclaimed.
  u32 sweep_orphans(DurNs stuck_after);

  // --- stats ---------------------------------------------------------------
  [[nodiscard]] u64 shm_payload_bytes() const { return shm_payload_bytes_; }
  [[nodiscard]] u64 zero_copy_publishes() const { return zero_copy_publishes_; }
  [[nodiscard]] u64 staged_copies() const { return staged_copies_; }
  [[nodiscard]] u64 shm_demotions() const { return shm_demotions_; }
  /// Protocol violations detected on the consume path (kPeerMisbehavior).
  [[nodiscard]] u64 peer_misbehavior() const { return peer_misbehavior_; }
  /// Slots reclaimed from dead owners by sweep_orphans.
  [[nodiscard]] u64 orphan_reclaims() const { return orphan_reclaims_; }

 private:
  [[nodiscard]] shm::Direction produce_dir() const {
    return role_ == Role::kClient ? shm::Direction::kClientToTarget
                                  : shm::Direction::kTargetToClient;
  }
  [[nodiscard]] shm::Direction consume_dir() const {
    return role_ == Role::kClient ? shm::Direction::kTargetToClient
                                  : shm::Direction::kClientToTarget;
  }

  /// Run `op` under the region lock in locked mode, or directly otherwise.
  /// `op` receives an unlock callback it must invoke when the critical
  /// section ends.
  void with_access(std::function<void(Done unlock)> op);

  /// Count consume-path failures that indicate a misbehaving peer. The
  /// endpoint is the single registry authority for this event (engines call
  /// in here from every consume path, so counting there would double it).
  void note_consume_error(const Status& st) {
    if (st.code() == StatusCode::kPeerMisbehavior) {
      peer_misbehavior_++;
      OAF_TEL(telemetry::bump(tel_.peer_misbehavior));
    }
  }

  void init_telemetry();

  Role role_;
  Executor& exec_;
  net::Copier& copier_;
  AfConfig cfg_;
  RegionHandle handle_;
  shm::DoubleBufferRing ring_;
  std::shared_ptr<sim::AsyncMutex> lock_;
  bool demoted_ = false;
  /// Guards deferred work (slot polls, lock acquires, copier completions)
  /// against the endpoint being destroyed mid-run — the association reaper
  /// tears connections down while the executor still holds their lambdas.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  u64 shm_payload_bytes_ = 0;
  u64 zero_copy_publishes_ = 0;
  u64 staged_copies_ = 0;
  u64 shm_demotions_ = 0;
  u64 peer_misbehavior_ = 0;
  u64 orphan_reclaims_ = 0;

  /// Orphan-sweep age tracking: last observed state and when it was first
  /// seen, per (direction, slot). Lazily sized on the first sweep.
  struct SlotAge {
    u32 state = 0;  // shm::DoubleBufferRing::kFree
    TimeNs since = 0;
  };
  std::vector<SlotAge> slot_age_[2];

  /// Cached process-global telemetry handles (DESIGN.md §9). This endpoint
  /// is the single authority for the shm demotion / peer-misbehavior /
  /// orphan-reclaim counters: every engine path funnels through it.
  struct Tel {
    u32 track = 0;
    telemetry::Counter* staged_copies = nullptr;
    telemetry::Counter* zc_publishes = nullptr;
    telemetry::Counter* zc_consumes = nullptr;
    telemetry::Counter* payload_bytes = nullptr;
    telemetry::Counter* demotions = nullptr;
    telemetry::Counter* peer_misbehavior = nullptr;
    telemetry::Counter* orphan_reclaims = nullptr;
    telemetry::Counter* slot_wait_polls = nullptr;
  } tel_;
  /// Sampled gauges (slot occupancy of this side's produce direction and the
  /// ring handle's epoch-fence reject count). Declared last so they
  /// unregister before any state their callbacks read is torn down.
  telemetry::MetricsRegistry::CallbackHandle occupancy_cb_;
  telemetry::MetricsRegistry::CallbackHandle fence_cb_;
};

}  // namespace oaf::af

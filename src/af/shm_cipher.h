// Shared-memory channel cipher hook (paper §6).
//
// The paper proposes hardening the shm channel by encrypting it with the
// client's key so that a co-resident snooper who somehow maps the region
// reads ciphertext. This module provides the hook with a keystream cipher
// whose interface matches what a real implementation (AES-CTR) would need:
// seekable, so any slot offset can be en/decrypted independently. The
// keystream itself is xoshiro-based — NOT cryptographically secure, a
// stand-in documenting the integration point and its performance cost (one
// extra pass over the payload on each side, measured by the ablation
// bench).
#pragma once

#include <span>

#include "common/types.h"

namespace oaf::af {

/// XOR `data` in place with the keystream for (key, stream_offset).
/// Encryption and decryption are the same operation.
void xor_keystream(std::span<u8> data, u64 key, u64 stream_offset);

}  // namespace oaf::af

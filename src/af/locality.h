// Locality Awareness (paper §4.2).
//
// ShmBroker plays the helper process (the Kubernetes/OpenStack/SLURM agent
// plus hypervisor) on one physical host: it provisions an isolated shared
// memory region per (client, target) connection, announces it through a
// pre-reserved locality page, and hands mappings to each side. Locality
// detection is by host-identity token: the client sends its broker's token
// in ICReq; the target grants shm only when the token matches its own
// broker's token (same physical host). Two backings exist:
//   * kProcessShared — one allocation shared by pointer; used by the timing
//     plane and by single-process tests;
//   * kPosixShm — real shm_open regions; creator and attacher get distinct
//     mappings of the same pages (the IVSHMEM-equivalent path).
//
// Security invariant (paper §6): a region is provisioned for exactly one
// connection and may be opened by exactly one client; repeat opens fail.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "shm/locality_page.h"
#include "shm/region.h"
#include "sim/resource.h"

namespace oaf::af {

/// A mapped view of a provisioned region. Offset 0 holds the LocalityPage;
/// the ring area starts at kRingOffset.
struct RegionHandle {
  static constexpr u64 kRingOffset = 256;

  std::string name;
  u8* base = nullptr;
  u64 bytes = 0;
  std::shared_ptr<void> keepalive;  ///< owns the mapping / allocation

  [[nodiscard]] bool valid() const { return base != nullptr; }
  [[nodiscard]] u8* ring_area() const { return base + kRingOffset; }
  [[nodiscard]] u64 ring_bytes() const {
    return bytes > kRingOffset ? bytes - kRingOffset : 0;
  }
  [[nodiscard]] shm::LocalityPage locality_page() const {
    return shm::LocalityPage(base);
  }
};

class ShmBroker {
 public:
  enum class Backing { kProcessShared, kPosixShm };

  explicit ShmBroker(u64 node_token, Backing backing = Backing::kProcessShared)
      : node_token_(node_token), backing_(backing) {}

  [[nodiscard]] u64 node_token() const { return node_token_; }

  /// Target side: create the region for connection `name` (+ring payload of
  /// `bytes`) and announce it on the locality page.
  Result<RegionHandle> provision(const std::string& name, u64 bytes);

  /// Client side: map a previously provisioned region. Verifies that the
  /// helper has announced it (generation > 0) and enforces single-open.
  Result<RegionHandle> open(const std::string& name);

  /// Tear down a region (connection closed). Mappings already handed out
  /// stay valid until their keepalive drops.
  Status revoke(const std::string& name);

  /// Shared async mutex for the locked-access ablation mode; one per region.
  [[nodiscard]] std::shared_ptr<sim::AsyncMutex> mutex_for(const std::string& name,
                                                           Executor& exec);

  [[nodiscard]] size_t active_regions() const { return entries_.size(); }

 private:
  struct Entry {
    std::shared_ptr<shm::ShmRegion> region;  // process-shared backing
    std::shared_ptr<sim::AsyncMutex> mutex;
  };

  u64 node_token_;
  Backing backing_;
  std::map<std::string, Entry> entries_;
};

}  // namespace oaf::af

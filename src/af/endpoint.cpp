#include "af/endpoint.h"

#include "af/shm_cipher.h"

namespace oaf::af {

void AfEndpoint::enable_shm(RegionHandle handle, shm::DoubleBufferRing ring,
                            std::shared_ptr<sim::AsyncMutex> lock) {
  handle_ = std::move(handle);
  ring_ = ring;
  lock_ = std::move(lock);
  demoted_ = false;
}

bool AfEndpoint::demote_shm() {
  if (!ring_.valid() || demoted_) return false;
  demoted_ = true;
  shm_demotions_++;
  return true;
}

void AfEndpoint::detach_shm() {
  handle_ = RegionHandle{};
  ring_ = shm::DoubleBufferRing{};
  lock_.reset();
  demoted_ = false;
}

bool AfEndpoint::shm_healthy() const {
  if (!ring_.valid() || !handle_.valid()) return false;
  const auto page = handle_.locality_page();
  return page.generation() > 0 && page.region_name() == handle_.name;
}

void AfEndpoint::with_access(std::function<void(Done unlock)> op) {
  if (cfg_.shm_access == ShmAccessMode::kLocked && lock_ != nullptr) {
    // The naive SHM-baseline grabs the region lock around every slot
    // access. The hold time covers the bookkeeping, not the payload copy
    // (even the naive design copies outside the lock), so the cost shows
    // up as serialization jitter/tail rather than lost bandwidth — exactly
    // the paper's Fig 8 observation that going lock-free cut p99.99 by
    // ~38% while leaving bandwidth unchanged.
    auto lock = lock_;
    lock->acquire([this, lock, alive = alive_, op = std::move(op)] {
      if (!*alive) return;
      exec_.schedule_after(kLockHoldNs, [lock, alive, op = std::move(op)] {
        if (!*alive) return;
        op([lock] { lock->release(); });
      });
    });
  } else {
    op([] {});
  }
}

Status AfEndpoint::stage_payload(u32 slot, std::span<const u8> data, Done done) {
  if (!ring_.valid()) {
    return make_error(StatusCode::kFailedPrecondition, "no shm channel");
  }
  if (data.size() > ring_.slot_size()) {
    return make_error(StatusCode::kOutOfRange, "payload exceeds slot size");
  }
  if (auto st = ring_.acquire(produce_dir(), slot); !st) return st;
  shm_payload_bytes_ += data.size();
  staged_copies_++;
  with_access([this, slot, data, done = std::move(done)](Done unlock) mutable {
    auto dst = ring_.slot_data(produce_dir(), slot);
    copier_.copy(data, dst, [this, alive = alive_, slot, len = data.size(),
                             done = std::move(done),
                             unlock = std::move(unlock)]() mutable {
      if (!*alive) return;
      if (cfg_.encrypt_shm) {
        // Only ciphertext ever lands in the shared region (§6).
        auto buf = ring_.slot_data(produce_dir(), slot);
        xor_keystream(buf.subspan(0, len), cfg_.shm_key,
                      static_cast<u64>(slot) * ring_.slot_size());
        // One extra pass over the payload, charged like a copy.
        copier_.charge(len, [this, alive = std::move(alive), slot, len,
                             done = std::move(done),
                             unlock = std::move(unlock)]() mutable {
          if (!*alive) return;
          (void)ring_.publish(produce_dir(), slot, len);
          unlock();
          done();
        });
        return;
      }
      // publish cannot fail here: we hold the slot in kWriting.
      (void)ring_.publish(produce_dir(), slot, len);
      unlock();
      done();
    });
  });
  return Status::ok();
}

void AfEndpoint::stage_payload_when_free(u32 slot, std::span<const u8> data,
                                         Done done,
                                         std::function<bool()> cancelled) {
  if (cancelled && cancelled()) return;  // command aborted mid-chunk: drop
  const Status st = stage_payload(slot, data, done);
  if (st.is_ok()) return;
  if (st.code() != StatusCode::kResourceExhausted) {
    // Hard error: surface by completing immediately (callers treat the
    // transfer as failed when the peer never sees the payload).
    exec_.post(std::move(done));
    return;
  }
  // Slot still draining on the peer: poll, as the consumer-side CM does
  // for the locality flag. The granularity mirrors the notify pickup cost.
  exec_.schedule_after(
      1'000, [this, alive = alive_, slot, data, done = std::move(done),
              cancelled = std::move(cancelled)]() mutable {
        if (!*alive) return;
        stage_payload_when_free(slot, data, std::move(done),
                                std::move(cancelled));
      });
}

Result<std::span<u8>> AfEndpoint::acquire_app_buffer(u32 slot) {
  if (!ring_.valid()) {
    return make_error(StatusCode::kFailedPrecondition, "no shm channel");
  }
  if (auto st = ring_.acquire(produce_dir(), slot); !st) return st;
  return ring_.slot_data(produce_dir(), slot);
}

Status AfEndpoint::publish_app_buffer(u32 slot, u64 len, Done done) {
  if (!ring_.valid()) {
    return make_error(StatusCode::kFailedPrecondition, "no shm channel");
  }
  if (auto st = ring_.publish(produce_dir(), slot, len); !st) return st;
  shm_payload_bytes_ += len;
  zero_copy_publishes_++;
  // Zero-copy: no data movement to charge; completion is immediate on both
  // planes (the application already produced the bytes in place).
  exec_.post(std::move(done));
  return Status::ok();
}

void AfEndpoint::consume_payload(u32 slot, std::span<u8> dst,
                                 std::function<void(Result<u64>)> done) {
  if (!ring_.valid()) {
    done(make_error(StatusCode::kFailedPrecondition, "no shm channel"));
    return;
  }
  with_access([this, slot, dst, done = std::move(done)](Done unlock) mutable {
    auto view = ring_.consume(consume_dir(), slot);
    if (!view) {
      note_consume_error(view.status());
      unlock();
      done(view.status());
      return;
    }
    const auto src = view.value();
    if (dst.size() < src.size()) {
      unlock();
      done(Result<u64>(make_error(StatusCode::kOutOfRange, "dst too small")));
      return;
    }
    copier_.copy(src, dst.subspan(0, src.size()),
                 [this, alive = alive_, slot, dst, len = src.size(),
                  done = std::move(done), unlock = std::move(unlock)]() mutable {
                   if (!*alive) return;
                   if (cfg_.encrypt_shm) {
                     // Decrypt the private copy; the shared region keeps
                     // only ciphertext.
                     xor_keystream(dst.subspan(0, len), cfg_.shm_key,
                                   static_cast<u64>(slot) * ring_.slot_size());
                     (void)ring_.release(consume_dir(), slot);
                     unlock();
                     copier_.charge(len, [len, done = std::move(done)]() mutable {
                       done(Result<u64>(len));
                     });
                     return;
                   }
                   (void)ring_.release(consume_dir(), slot);
                   unlock();
                   done(Result<u64>(len));
                 });
  });
}

Result<std::span<const u8>> AfEndpoint::consume_view(u32 slot) {
  if (!ring_.valid()) {
    return make_error(StatusCode::kFailedPrecondition, "no shm channel");
  }
  if (cfg_.encrypt_shm) {
    // A borrowed view would expose ciphertext; encrypted channels must use
    // the staged (decrypting) consume path.
    return make_error(StatusCode::kFailedPrecondition,
                      "zero-copy views unavailable on encrypted channels");
  }
  auto view = ring_.consume(consume_dir(), slot);
  if (!view) note_consume_error(view.status());
  return view;
}

Status AfEndpoint::release_slot(u32 slot) {
  if (!ring_.valid()) {
    return make_error(StatusCode::kFailedPrecondition, "no shm channel");
  }
  return ring_.release(consume_dir(), slot);
}

void AfEndpoint::abandon_slot(u32 slot) {
  if (!ring_.valid()) return;
  // Either side may have parked a payload for the aborted command: the
  // victim's write data waits in our consume direction, and our own staged
  // (but never notified) chunk may sit in the produce direction.
  (void)ring_.discard(consume_dir(), slot);
  (void)ring_.discard(produce_dir(), slot);
}

u32 AfEndpoint::sweep_orphans(DurNs stuck_after) {
  if (!ring_.valid() || stuck_after <= 0) return 0;
  const TimeNs now = exec_.now();
  u32 reclaimed = 0;
  for (int d = 0; d < 2; ++d) {
    const auto dir = static_cast<shm::Direction>(d);
    auto& ages = slot_age_[d];
    if (ages.size() != ring_.slot_count()) {
      ages.assign(ring_.slot_count(), SlotAge{});
    }
    for (u32 s = 0; s < ring_.slot_count(); ++s) {
      const auto st = ring_.state(dir, s);
      SlotAge& age = ages[s];
      if (static_cast<u32>(st) != age.state) {
        age.state = static_cast<u32>(st);
        age.since = now;
        continue;
      }
      // kReady is a parked payload waiting for a slow consumer — normal.
      // Only mid-transfer states with no live owner are orphans.
      if (st != shm::DoubleBufferRing::kWriting &&
          st != shm::DoubleBufferRing::kDraining) {
        continue;
      }
      if (now - age.since < stuck_after) continue;
      if (ring_.force_release(dir, s)) {
        reclaimed++;
        orphan_reclaims_++;
        age = SlotAge{};
      }
    }
  }
  return reclaimed;
}

}  // namespace oaf::af

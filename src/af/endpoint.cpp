#include "af/endpoint.h"

#include "af/shm_cipher.h"

namespace oaf::af {

void AfEndpoint::init_telemetry() {
#if OAF_TELEMETRY_COMPILED
  const bool client = role_ == Role::kClient;
  auto& m = telemetry::metrics();
  tel_.track = telemetry::tracer().track(client ? "af:client" : "af:target");
  tel_.staged_copies =
      m.counter("oaf_shm_staged_copies_total",
                "Payloads copied into a shm slot (staged producer path)");
  tel_.zc_publishes =
      m.counter("oaf_shm_zero_copy_publishes_total",
                "Payloads published in place via the zero-copy buffer API");
  tel_.zc_consumes =
      m.counter("oaf_shm_zero_copy_consumes_total",
                "Payloads borrowed in place via the zero-copy view API");
  tel_.payload_bytes = m.counter("oaf_shm_payload_bytes_total",
                                 "Payload bytes moved over the shm ring");
  tel_.demotions = m.counter("oaf_shm_demotions_total",
                             "Runtime shm-to-TCP data-path demotions");
  tel_.peer_misbehavior =
      m.counter("oaf_shm_peer_misbehavior_total",
                "Consume-path protocol violations caught by slot fencing");
  tel_.orphan_reclaims =
      m.counter("oaf_shm_orphan_reclaims_total",
                "Slots reclaimed from dead owners by the orphan sweeper");
  tel_.slot_wait_polls =
      m.counter("oaf_shm_slot_wait_polls_total",
                "Producer polls while waiting for a slot to drain "
                "(conservative-flow slot reuse serialization, paper 4.4.2)");
  // Occupancy of this side's produce direction only: the two endpoints of a
  // connection share one ring, so sampling both directions from both sides
  // would double-count. Client produces C2T, target produces T2C.
  occupancy_cb_ = m.callback_gauge(
      client ? "oaf_shm_slots_busy_c2t" : "oaf_shm_slots_busy_t2c",
      client ? "Busy client-to-target shm slots (write payloads in flight)"
             : "Busy target-to-client shm slots (read payloads in flight)",
      [this]() -> i64 {
        return ring_.valid()
                   ? static_cast<i64>(ring_.in_flight(produce_dir()))
                   : 0;
      });
  fence_cb_ = m.callback_gauge(
      "oaf_shm_epoch_fence_rejects",
      "Ring operations rejected by the epoch fence (stale handle or slot)",
      [this]() -> i64 { return static_cast<i64>(ring_.fence_rejects()); });
#endif
}

void AfEndpoint::enable_shm(RegionHandle handle, shm::DoubleBufferRing ring,
                            std::shared_ptr<sim::AsyncMutex> lock) {
  handle_ = std::move(handle);
  ring_ = ring;
  lock_ = std::move(lock);
  demoted_ = false;
}

bool AfEndpoint::demote_shm() {
  if (!ring_.valid() || demoted_) return false;
  demoted_ = true;
  shm_demotions_++;
  OAF_TEL({
    telemetry::bump(tel_.demotions);
    telemetry::tracer().instant(tel_.track, "resilience", "shm_demoted", 0,
                                exec_.now());
  });
  return true;
}

void AfEndpoint::detach_shm() {
  handle_ = RegionHandle{};
  ring_ = shm::DoubleBufferRing{};
  lock_.reset();
  demoted_ = false;
}

bool AfEndpoint::shm_healthy() const {
  if (!ring_.valid() || !handle_.valid()) return false;
  const auto page = handle_.locality_page();
  return page.generation() > 0 && page.region_name() == handle_.name;
}

void AfEndpoint::with_access(std::function<void(Done unlock)> op) {
  if (cfg_.shm_access == ShmAccessMode::kLocked && lock_ != nullptr) {
    // The naive SHM-baseline grabs the region lock around every slot
    // access. The hold time covers the bookkeeping, not the payload copy
    // (even the naive design copies outside the lock), so the cost shows
    // up as serialization jitter/tail rather than lost bandwidth — exactly
    // the paper's Fig 8 observation that going lock-free cut p99.99 by
    // ~38% while leaving bandwidth unchanged.
    auto lock = lock_;
    lock->acquire([this, lock, alive = alive_, op = std::move(op)] {
      if (!*alive) return;
      exec_.schedule_after(kLockHoldNs, [lock, alive, op = std::move(op)] {
        if (!*alive) return;
        op([lock] { lock->release(); });
      });
    });
  } else {
    op([] {});
  }
}

Status AfEndpoint::stage_payload(u32 slot, std::span<const u8> data, Done done) {
  if (!ring_.valid()) {
    return make_error(StatusCode::kFailedPrecondition, "no shm channel");
  }
  if (data.size() > ring_.slot_size()) {
    return make_error(StatusCode::kOutOfRange, "payload exceeds slot size");
  }
  if (auto st = ring_.acquire(produce_dir(), slot); !st) return st;
  shm_payload_bytes_ += data.size();
  staged_copies_++;
  TimeNs t0 = 0;
  OAF_TEL({
    telemetry::bump(tel_.staged_copies);
    telemetry::bump(tel_.payload_bytes, data.size());
    t0 = exec_.now();
  });
  with_access([this, slot, data, t0,
               done = std::move(done)](Done unlock) mutable {
    auto dst = ring_.slot_data(produce_dir(), slot);
    copier_.copy(data, dst, [this, alive = alive_, slot, t0,
                             len = data.size(), done = std::move(done),
                             unlock = std::move(unlock)]() mutable {
      if (!*alive) return;
      if (cfg_.encrypt_shm) {
        // Only ciphertext ever lands in the shared region (§6).
        auto buf = ring_.slot_data(produce_dir(), slot);
        xor_keystream(buf.subspan(0, len), cfg_.shm_key,
                      static_cast<u64>(slot) * ring_.slot_size());
        // One extra pass over the payload, charged like a copy.
        copier_.charge(len, [this, alive = std::move(alive), slot, t0, len,
                             done = std::move(done),
                             unlock = std::move(unlock)]() mutable {
          if (!*alive) return;
          (void)ring_.publish(produce_dir(), slot, len);
          OAF_TEL(telemetry::tracer().complete(
              tel_.track, "shm", "shm_stage", slot, t0, exec_.now() - t0,
              "bytes", static_cast<i64>(len)));
          unlock();
          done();
        });
        return;
      }
      // publish cannot fail here: we hold the slot in kWriting.
      (void)ring_.publish(produce_dir(), slot, len);
      OAF_TEL(telemetry::tracer().complete(tel_.track, "shm", "shm_stage",
                                           slot, t0, exec_.now() - t0, "bytes",
                                           static_cast<i64>(len)));
      unlock();
      done();
    });
  });
  return Status::ok();
}

void AfEndpoint::stage_payload_when_free(u32 slot, std::span<const u8> data,
                                         Done done,
                                         std::function<bool()> cancelled) {
  if (cancelled && cancelled()) return;  // command aborted mid-chunk: drop
  const Status st = stage_payload(slot, data, done);
  if (st.is_ok()) return;
  if (st.code() != StatusCode::kResourceExhausted) {
    // Hard error: surface by completing immediately (callers treat the
    // transfer as failed when the peer never sees the payload).
    exec_.post(std::move(done));
    return;
  }
  // Slot still draining on the peer: poll, as the consumer-side CM does
  // for the locality flag. The granularity mirrors the notify pickup cost.
  OAF_TEL(telemetry::bump(tel_.slot_wait_polls));
  exec_.schedule_after(
      1'000, [this, alive = alive_, slot, data, done = std::move(done),
              cancelled = std::move(cancelled)]() mutable {
        if (!*alive) return;
        stage_payload_when_free(slot, data, std::move(done),
                                std::move(cancelled));
      });
}

Result<std::span<u8>> AfEndpoint::acquire_app_buffer(u32 slot) {
  if (!ring_.valid()) {
    return make_error(StatusCode::kFailedPrecondition, "no shm channel");
  }
  if (auto st = ring_.acquire(produce_dir(), slot); !st) return st;
  return ring_.slot_data(produce_dir(), slot);
}

Status AfEndpoint::publish_app_buffer(u32 slot, u64 len, Done done) {
  if (!ring_.valid()) {
    return make_error(StatusCode::kFailedPrecondition, "no shm channel");
  }
  if (auto st = ring_.publish(produce_dir(), slot, len); !st) return st;
  shm_payload_bytes_ += len;
  zero_copy_publishes_++;
  OAF_TEL({
    telemetry::bump(tel_.zc_publishes);
    telemetry::bump(tel_.payload_bytes, len);
    telemetry::tracer().instant(tel_.track, "shm", "zc_publish", slot,
                                exec_.now(), "bytes", static_cast<i64>(len));
  });
  // Zero-copy: no data movement to charge; completion is immediate on both
  // planes (the application already produced the bytes in place).
  exec_.post(std::move(done));
  return Status::ok();
}

void AfEndpoint::consume_payload(u32 slot, std::span<u8> dst,
                                 std::function<void(Result<u64>)> done) {
  if (!ring_.valid()) {
    done(make_error(StatusCode::kFailedPrecondition, "no shm channel"));
    return;
  }
  TimeNs t0 = 0;
  OAF_TEL(t0 = exec_.now());
  with_access([this, slot, dst, t0,
               done = std::move(done)](Done unlock) mutable {
    auto view = ring_.consume(consume_dir(), slot);
    if (!view) {
      note_consume_error(view.status());
      unlock();
      done(view.status());
      return;
    }
    const auto src = view.value();
    if (dst.size() < src.size()) {
      unlock();
      done(Result<u64>(make_error(StatusCode::kOutOfRange, "dst too small")));
      return;
    }
    copier_.copy(src, dst.subspan(0, src.size()),
                 [this, alive = alive_, slot, dst, t0, len = src.size(),
                  done = std::move(done), unlock = std::move(unlock)]() mutable {
                   if (!*alive) return;
                   if (cfg_.encrypt_shm) {
                     // Decrypt the private copy; the shared region keeps
                     // only ciphertext.
                     xor_keystream(dst.subspan(0, len), cfg_.shm_key,
                                   static_cast<u64>(slot) * ring_.slot_size());
                     (void)ring_.release(consume_dir(), slot);
                     unlock();
                     copier_.charge(len, [this, alive = std::move(alive), slot,
                                          t0, len,
                                          done = std::move(done)]() mutable {
                       if (!*alive) return;
                       OAF_TEL(telemetry::tracer().complete(
                           tel_.track, "shm", "shm_consume", slot, t0,
                           exec_.now() - t0, "bytes", static_cast<i64>(len)));
                       done(Result<u64>(len));
                     });
                     return;
                   }
                   (void)ring_.release(consume_dir(), slot);
                   OAF_TEL(telemetry::tracer().complete(
                       tel_.track, "shm", "shm_consume", slot, t0,
                       exec_.now() - t0, "bytes", static_cast<i64>(len)));
                   unlock();
                   done(Result<u64>(len));
                 });
  });
}

Result<std::span<const u8>> AfEndpoint::consume_view(u32 slot) {
  if (!ring_.valid()) {
    return make_error(StatusCode::kFailedPrecondition, "no shm channel");
  }
  if (cfg_.encrypt_shm) {
    // A borrowed view would expose ciphertext; encrypted channels must use
    // the staged (decrypting) consume path.
    return make_error(StatusCode::kFailedPrecondition,
                      "zero-copy views unavailable on encrypted channels");
  }
  auto view = ring_.consume(consume_dir(), slot);
  if (!view) {
    note_consume_error(view.status());
    return view;
  }
  OAF_TEL({
    telemetry::bump(tel_.zc_consumes);
    telemetry::bump(tel_.payload_bytes, view.value().size());
    telemetry::tracer().instant(tel_.track, "shm", "zc_consume", slot,
                                exec_.now(), "bytes",
                                static_cast<i64>(view.value().size()));
  });
  return view;
}

Status AfEndpoint::release_slot(u32 slot) {
  if (!ring_.valid()) {
    return make_error(StatusCode::kFailedPrecondition, "no shm channel");
  }
  return ring_.release(consume_dir(), slot);
}

void AfEndpoint::abandon_slot(u32 slot) {
  if (!ring_.valid()) return;
  // Either side may have parked a payload for the aborted command: the
  // victim's write data waits in our consume direction, and our own staged
  // (but never notified) chunk may sit in the produce direction.
  (void)ring_.discard(consume_dir(), slot);
  (void)ring_.discard(produce_dir(), slot);
}

u32 AfEndpoint::sweep_orphans(DurNs stuck_after) {
  if (!ring_.valid() || stuck_after <= 0) return 0;
  const TimeNs now = exec_.now();
  u32 reclaimed = 0;
  for (int d = 0; d < 2; ++d) {
    const auto dir = static_cast<shm::Direction>(d);
    auto& ages = slot_age_[d];
    if (ages.size() != ring_.slot_count()) {
      ages.assign(ring_.slot_count(), SlotAge{});
    }
    for (u32 s = 0; s < ring_.slot_count(); ++s) {
      const auto st = ring_.state(dir, s);
      SlotAge& age = ages[s];
      if (static_cast<u32>(st) != age.state) {
        age.state = static_cast<u32>(st);
        age.since = now;
        continue;
      }
      // kReady is a parked payload waiting for a slow consumer — normal.
      // Only mid-transfer states with no live owner are orphans.
      if (st != shm::DoubleBufferRing::kWriting &&
          st != shm::DoubleBufferRing::kDraining) {
        continue;
      }
      if (now - age.since < stuck_after) continue;
      if (ring_.force_release(dir, s)) {
        reclaimed++;
        orphan_reclaims_++;
        OAF_TEL({
          telemetry::bump(tel_.orphan_reclaims);
          telemetry::tracer().instant(tel_.track, "resilience",
                                      "orphan_reclaim", s, now, "slot",
                                      static_cast<i64>(s));
        });
        age = SlotAge{};
      }
    }
  }
  return reclaimed;
}

}  // namespace oaf::af

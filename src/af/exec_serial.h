// Executor affinity as a compile-time capability (DESIGN.md §14).
//
// Every protocol engine in this repo (initiator, target connection, path
// group, connection manager) is a single-threaded state machine: its fields
// may only be touched from tasks running on its owning Executor. That rule
// has always been conventional — enforced by review and, after the fact, by
// TSan. ExecutorSerial makes it structural: a zero-size capability object
// the engine owns, so that
//
//   af::ExecutorSerial exec_serial_;
//   u64 next_gseq_ OAF_GUARDED_BY(exec_serial_) = 1;
//
// turns "accessed off the reactor" into a clang -Wthread-safety compile
// error, exactly as if the field were behind an unheld mutex.
//
// There is no runtime lock — the executor's serialization IS the mutual
// exclusion. Three ways code proves it holds the capability:
//
//   * Methods annotated OAF_REQUIRES(exec_serial_): callable only from a
//     context that already holds it (other engine methods, posted tasks).
//   * Posted-task bodies open with `exec_serial_.assume_held();` — the
//     executor delivered this task, so affinity holds by construction.
//   * Tests and drivers that own the only thread call assume_held() once
//     at the top of the driving scope.
//
// The capability is deliberately per-engine rather than per-Executor
// object: two engines sharing one reactor still get separate capabilities,
// which is the granularity the sharded-reactor refactor (ROADMAP item 1)
// needs when engines migrate between shards.
#pragma once

#include "common/thread_annotations.h"

namespace oaf::af {

class OAF_CAPABILITY("executor") ExecutorSerial {
 public:
  ExecutorSerial() = default;
  ExecutorSerial(const ExecutorSerial&) = delete;
  ExecutorSerial& operator=(const ExecutorSerial&) = delete;

  /// Declare that the current context runs on the owning executor. No
  /// runtime effect; tells the analysis to assume the capability from here
  /// to the end of the enclosing scope. Call at the head of every lambda
  /// body posted to the engine's executor.
  void assume_held() const OAF_ASSERT_CAPABILITY(this) {}
};

}  // namespace oaf::af

// Linear completion token (DESIGN.md §14).
//
// The bug class this kills: a completion callback that is silently
// destroyed instead of invoked. With std::function the initiator's Pending
// entry (or the target's response closure) can be dropped on any error
// path, and the application waits forever — found the hard way in the
// reconnect (PR 2) and overload-shedding (PR 7) work. OnceCallback makes
// the completion a *linear* value: move-only, invoke-at-most-once, and
// loud — destroying one while it is still armed dumps the flight recorder
// and aborts, turning a wedge into an attributed crash at the drop site.
//
// Grammar:
//   af::OnceCallback<void(Status)> cb = [..](Status s){..};  // armed
//   std::move(cb)(st);      // invoke: disarms first, then calls
//   std::move(cb).drop();   // deliberate discard (documented teardown only)
//   if (cb) ...             // armed?
//
// Invocation is rvalue-only, so every call site spells std::move and the
// token is visibly consumed. Assigning over an armed token is the same
// violation as dropping it.
//
// Strictness is ON by default in every build type — including
// RelWithDebInfo, the repo default, precisely so the tier-1 suite runs the
// armed-drop trap. Define OAF_ONCE_RELAXED to compile the trap out (the
// destructor then discards silently, std::function-style); nothing in this
// repo does.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace oaf::af {

namespace detail {
/// Report an armed OnceCallback destroyed without being invoked or
/// drop()ed, then abort. Never returns. Out of line so the header stays
/// dependency-free; the implementation dumps the telemetry flight
/// recorder before aborting.
[[noreturn]] void once_armed_drop();
}  // namespace detail

template <typename Sig>
class OnceCallback;  // undefined; only the R(Args...) specialisation exists

template <typename R, typename... Args>
class [[nodiscard]] OnceCallback<R(Args...)> {
 public:
  /// Disarmed token: safe to destroy, false-y, must not be invoked.
  OnceCallback() = default;
  OnceCallback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  /// Arm with any callable. Move-only callables welcome — that is the
  /// point: a token can capture another token.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, OnceCallback> &&
                                        std::is_invocable_r_v<R, D&&, Args...>>>
  OnceCallback(F&& f)  // NOLINT(google-explicit-constructor)
      : impl_(std::make_unique<Model<D>>(std::forward<F>(f))) {}

  OnceCallback(OnceCallback&& other) noexcept = default;

  /// Move-assign. Overwriting an *armed* token is the armed-drop violation:
  /// the displaced completion could never fire.
  OnceCallback& operator=(OnceCallback&& other) noexcept {
    if (this != &other) {
      check_disarmed();
      impl_ = std::move(other.impl_);
    }
    return *this;
  }

  OnceCallback& operator=(std::nullptr_t) {
    check_disarmed();
    return *this;
  }

  OnceCallback(const OnceCallback&) = delete;
  OnceCallback& operator=(const OnceCallback&) = delete;

  ~OnceCallback() { check_disarmed(); }

  [[nodiscard]] explicit operator bool() const { return impl_ != nullptr; }

  /// Invoke and consume. The token disarms *before* the target runs, so a
  /// target that re-enters and destroys the token's owner (completions
  /// routinely erase their own Pending entry) sees it already spent.
  R operator()(Args... args) && {
    std::unique_ptr<Concept> impl = std::move(impl_);
    return impl->invoke(std::forward<Args>(args)...);
  }

  /// Deliberate discard. The only sanctioned way to destroy an armed
  /// token — reserved for documented teardown paths (engine destructors
  /// dropping in-flight work the application has already abandoned).
  void drop() && { impl_.reset(); }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual R invoke(Args&&... args) = 0;
  };

  template <typename F>
  struct Model final : Concept {
    explicit Model(F f) : fn(std::move(f)) {}
    R invoke(Args&&... args) override {
      return std::move(fn)(std::forward<Args>(args)...);
    }
    F fn;
  };

  void check_disarmed() {
#if !defined(OAF_ONCE_RELAXED)
    if (impl_ != nullptr) detail::once_armed_drop();
#else
    impl_.reset();
#endif
  }

  std::unique_ptr<Concept> impl_;
};

}  // namespace oaf::af

// Adaptive busy-poll governor (paper §4.5, Fig 10).
//
// Static poll budgets lose: 25 µs polls make pure-write workloads *slower*
// than interrupts (write completions arrive late, so every poll expires and
// its budget is wasted), while 100 µs polls burn CPU that read workloads
// need. The governor watches the recent read/write mix on a connection and
// re-tunes the receive poll budget: read-heavy -> short budget, write-heavy
// -> long budget, mixed -> middle.
#pragma once

#include "af/config.h"
#include "common/types.h"
#include "net/sim_channel.h"
#include "telemetry/telemetry.h"

namespace oaf::af {

class BusyPollGovernor {
 public:
  static constexpr DurNs kReadBudgetNs = 37'500;    // 25–50 µs band
  static constexpr DurNs kWriteBudgetNs = 100'000;  // writes want long polls
  static constexpr DurNs kMixedBudgetNs = 50'000;
  static constexpr u32 kWindowOps = 64;             // re-evaluate cadence

  BusyPollGovernor(BusyPollPolicy policy, DurNs static_budget_ns)
      : policy_(policy), static_budget_ns_(static_budget_ns) {}

  /// Attach the connection's receive side. Channels that are not tunable
  /// (functional plane, RDMA) make the governor a no-op.
  void attach(net::MsgChannel* channel) {
    tunable_ = dynamic_cast<net::BusyPollTunable*>(channel);
    apply(initial_budget());
  }

  /// Record one submitted operation; periodically re-tunes the budget from
  /// two signals: the read/write mix picks the base budget (paper §4.5),
  /// and the observed poll miss rate escalates it when completions keep
  /// arriving outside the window (so adaptive polling degrades gracefully
  /// instead of spinning-and-sleeping on every delivery).
  void record_op(bool is_write) {
    if (policy_ != BusyPollPolicy::kAdaptive) return;
    ops_++;
    if (is_write) writes_++;
    if (ops_ < kWindowOps) return;
    const double write_frac =
        static_cast<double>(writes_) / static_cast<double>(ops_);
    ops_ = 0;
    writes_ = 0;
    DurNs base = kMixedBudgetNs;
    int type = 1;
    if (write_frac >= 0.8) {
      base = kWriteBudgetNs;
      type = 2;
    } else if (write_frac <= 0.2) {
      base = kReadBudgetNs;
      type = 0;
    }
    if (type != workload_type_) {
      workload_type_ = type;
      escalation_ = 1;  // fresh workload: restart from the per-type base
    }
    if (tunable_ != nullptr) {
      const u64 hits = tunable_->rx_poll_hits();
      const u64 misses = tunable_->rx_poll_misses();
      const u64 dh = hits - last_hits_;
      const u64 dm = misses - last_misses_;
      last_hits_ = hits;
      last_misses_ = misses;
      OAF_TEL({
        telemetry::bump(tel().hits, dh);
        telemetry::bump(tel().misses, dm);
        if (dh + dm > 0) {
          // Budget utilization for the profiling plane (oaf_stat prof):
          // the fraction of polls whose budget actually caught a message.
          tel().hit_permille->set(
              static_cast<i64>(dh * 1000 / (dh + dm)));
        }
      });
      if (dh + dm > 0 && escalation_ != kInterruptFallback) {
        const double miss_frac =
            static_cast<double>(dm) / static_cast<double>(dh + dm);
        if (miss_frac > 0.3) {
          if (escalation_ < kMaxEscalation) {
            escalation_ *= 2;  // widen the window toward the arrival cadence
          } else if (miss_frac > 0.6) {
            // Arrivals are simply too sparse for polling to win on this
            // workload: degrade gracefully to interrupt mode.
            escalation_ = kInterruptFallback;
            OAF_TEL(telemetry::bump(tel().fallbacks));
          }
        }
      }
    }
    OAF_TEL({
      telemetry::bump(tel().retunes);
      tel().workload->set(workload_type_);
      tel().escalation->set(escalation_);
    });
    apply(escalation_ == kInterruptFallback ? 0 : base * escalation_);
  }

  [[nodiscard]] DurNs current_budget() const { return current_; }

 private:
  [[nodiscard]] DurNs initial_budget() const {
    switch (policy_) {
      case BusyPollPolicy::kInterrupt:
        return 0;
      case BusyPollPolicy::kStatic:
        return static_budget_ns_;
      case BusyPollPolicy::kAdaptive:
        return kMixedBudgetNs;
    }
    return 0;
  }

  void apply(DurNs budget) {
    current_ = budget;
    if (tunable_ != nullptr) tunable_->set_rx_poll_budget(budget);
    OAF_TEL(tel().budget->set(budget));
  }

  /// Process-global handles, registered once (governors are per-connection;
  /// the counters aggregate across them and the budget gauge reflects the
  /// most recently applied value — on a single-connection run, the live one).
  struct Tel {
    telemetry::Counter* hits = nullptr;
    telemetry::Counter* misses = nullptr;
    telemetry::Counter* retunes = nullptr;
    telemetry::Counter* fallbacks = nullptr;
    telemetry::Gauge* budget = nullptr;
    telemetry::Gauge* hit_permille = nullptr;
    telemetry::Gauge* workload = nullptr;
    telemetry::Gauge* escalation = nullptr;
  };
  static const Tel& tel() {
    static const Tel t = [] {
      auto& m = telemetry::metrics();
      return Tel{
          m.counter("oaf_busy_poll_hits_total",
                    "Receive polls that found a message within the budget"),
          m.counter("oaf_busy_poll_misses_total",
                    "Receive polls whose budget expired empty"),
          m.counter("oaf_busy_poll_retunes_total",
                    "Budget re-evaluations by the adaptive governor"),
          m.counter("oaf_busy_poll_interrupt_fallbacks_total",
                    "Degradations to interrupt mode (arrivals too sparse)"),
          m.gauge("oaf_busy_poll_budget_ns",
                  "Receive busy-poll budget most recently applied"),
          m.gauge("oaf_busy_poll_hit_permille",
                  "Budget utilization over the last window: polls that "
                  "caught a message, per thousand"),
          m.gauge("oaf_busy_poll_workload_class",
                  "Detected workload mix: 0 read-heavy, 1 mixed, 2 "
                  "write-heavy, -1 unknown"),
          m.gauge("oaf_busy_poll_escalation",
                  "Current budget multiplier (-1 = interrupt fallback)"),
      };
    }();
    return t;
  }

  static constexpr DurNs kMaxEscalation = 8;
  static constexpr DurNs kInterruptFallback = -1;

  BusyPollPolicy policy_;
  DurNs static_budget_ns_;
  net::BusyPollTunable* tunable_ = nullptr;
  DurNs current_ = 0;
  u32 ops_ = 0;
  u32 writes_ = 0;
  int workload_type_ = -1;
  DurNs escalation_ = 1;
  u64 last_hits_ = 0;
  u64 last_misses_ = 0;
};

}  // namespace oaf::af

// Adaptive Fabric configuration.
//
// One AfConfig describes how a connection behaves; the ablation benches
// (paper Fig 8) toggle individual optimizations off to quantify each one.
#pragma once

#include "common/types.h"
#include "common/units.h"

namespace oaf::af {

/// Flow-control policy for write commands (paper §4.4.2).
enum class FlowControlMode {
  /// Stock NVMe/TCP rules: in-capsule data below the threshold, R2T above.
  kConservative,
  /// Shared-memory flow control: in-capsule for every size when the payload
  /// rides in shm (the slot parks the data until the target drains it).
  kShmInCapsule,
};

/// How the shared-memory channel is accessed (ablation levers, Fig 8).
enum class ShmAccessMode {
  kLocked,    ///< SHM-baseline: one staging buffer behind a spinlock
  kLockFree,  ///< lock-free double-buffer ring (§4.4.1)
};

/// Busy-poll policy for the TCP channel (paper §4.5 / Fig 10).
enum class BusyPollPolicy {
  kInterrupt,  ///< stock: no polling
  kStatic,     ///< fixed budget (static_poll_ns)
  kAdaptive,   ///< AF: budget chosen from the observed read/write mix
};

struct AfConfig {
  // --- shared-memory channel ---
  bool want_shm = true;              ///< request the shm channel when co-located
  ShmAccessMode shm_access = ShmAccessMode::kLockFree;
  FlowControlMode flow_control = FlowControlMode::kShmInCapsule;
  bool zero_copy = true;             ///< app buffers created in shm (§4.4.3)
  u64 shm_slot_bytes = 512 * kKiB;   ///< slot size == max I/O size
  u32 shm_slots = 128;               ///< slot count == queue depth
  /// Paper §6 hardening: encrypt slot payloads with the tenant's key so a
  /// snooper reads ciphertext. Forces the staged path (zero-copy would
  /// expose plaintext buffers) and costs one extra pass per side.
  bool encrypt_shm = false;
  u64 shm_key = 0;                   ///< tenant key (out-of-band provisioned)

  /// Resilience: CRC32C data digest over inline H2CData/C2HData payloads,
  /// negotiated in ICReq/ICResp (both sides must enable it). A mismatch is
  /// a retryable transport error, not a device error.
  bool data_digest = false;

  /// Observability: offer wire-level trace-context propagation in ICReq
  /// (trace id + parent span on every CapsuleCmd, NTP-style clock echoes on
  /// ICResp/KeepAlive). Both sides must support it; an old peer simply
  /// never echoes the feature bit and the connection runs without it.
  bool trace_ctx = true;

  // --- TCP channel ---
  u64 in_capsule_threshold = 8 * kKiB;  ///< stock NVMe/TCP in-capsule limit
  u64 chunk_bytes = 128 * kKiB;         ///< application-level chunk size (§4.5)
  BusyPollPolicy busy_poll = BusyPollPolicy::kAdaptive;
  DurNs static_poll_ns = 50'000;        ///< used when busy_poll == kStatic

  /// Stock SPDK NVMe/TCP: no shm, conservative flow control, 128 KiB
  /// chunks, interrupt-driven receive.
  static AfConfig stock_tcp() {
    AfConfig cfg;
    cfg.want_shm = false;
    cfg.flow_control = FlowControlMode::kConservative;
    cfg.zero_copy = false;
    cfg.chunk_bytes = 128 * kKiB;
    cfg.busy_poll = BusyPollPolicy::kInterrupt;
    return cfg;
  }

  /// Full NVMe-oAF ("SHM-0-copy" in the paper): every optimization on.
  static AfConfig oaf() { return AfConfig{}; }
};

}  // namespace oaf::af

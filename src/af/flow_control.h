// Flow-control decisions (paper §4.4.2).
//
// Stock NVMe/TCP: writes <= the in-capsule threshold (8 KiB) travel with the
// command capsule; larger writes use the conservative R2T exchange (3
// messages before the I/O can reach the SSD). With a shared-memory channel
// the payload can park in its slot until the target drains it, so the AF
// switches every write to in-capsule regardless of size — eliminating the
// R2T and the separate H2CData notification (steps 2 and 4 of Fig 7).
#pragma once

#include "af/config.h"

namespace oaf::af {

/// True if a write of `data_len` should carry its data with the command
/// capsule (in-capsule flow); false means the conservative R2T flow.
inline bool write_in_capsule(const AfConfig& cfg, bool shm_channel_ready,
                             u64 data_len) {
  if (shm_channel_ready && cfg.flow_control == FlowControlMode::kShmInCapsule) {
    return true;  // shm-based flow control: always in-capsule
  }
  return data_len <= cfg.in_capsule_threshold;
}

/// Control messages a write command will cost under the current policy
/// (bench assertions + the Fig 8 flow-control ablation's bookkeeping).
inline int write_control_messages(const AfConfig& cfg, bool shm_channel_ready,
                                  u64 data_len) {
  // In-capsule: CapsuleCmd + CapsuleResp.
  // Conservative: CapsuleCmd + R2T + H2CData(+payload) + CapsuleResp.
  return write_in_capsule(cfg, shm_channel_ready, data_len) ? 2 : 4;
}

/// True if a read completion is folded into the final C2HData PDU (the
/// SUCCESS-flag optimization, enabled along with shm flow control).
inline bool read_success_flag(const AfConfig& cfg, bool shm_channel_ready) {
  return shm_channel_ready && cfg.flow_control == FlowControlMode::kShmInCapsule;
}

/// Accounting for one bounded resource (staging bytes, in-flight commands,
/// shm slots). Grants are all-or-nothing: a request that would push usage
/// past `capacity` is denied and counted, never queued — the caller turns
/// the denial into a retryable kQueueFull so backpressure reaches the
/// submitter instead of growing an unbounded queue. capacity == 0 means
/// unlimited (accounting only). Not thread-safe: one budget lives on one
/// reactor, like the pools it guards.
class ResourceBudget {
 public:
  ResourceBudget() = default;
  explicit ResourceBudget(u64 capacity) : capacity_(capacity) {}

  /// Acquire `n` units; false (and a counted denial) when over budget.
  [[nodiscard]] bool try_acquire(u64 n) {
    if (capacity_ != 0 && in_use_ + n > capacity_) {
      denied_++;
      return false;
    }
    in_use_ += n;
    if (in_use_ > peak_) peak_ = in_use_;
    return true;
  }

  /// Return `n` units. Releasing more than is held clamps to zero — the
  /// caller tracks per-owner charges, so a clamp indicates a bug there,
  /// but the budget itself must never underflow into "infinite credit".
  void release(u64 n) { in_use_ = n > in_use_ ? 0 : in_use_ - n; }

  [[nodiscard]] u64 capacity() const { return capacity_; }
  [[nodiscard]] u64 in_use() const { return in_use_; }
  [[nodiscard]] u64 peak() const { return peak_; }
  [[nodiscard]] u64 denied() const { return denied_; }
  [[nodiscard]] double occupancy() const {
    return capacity_ == 0 ? 0.0
                          : static_cast<double>(in_use_) /
                                static_cast<double>(capacity_);
  }
  /// True when usage sits at or above `frac` of capacity (watermark test).
  [[nodiscard]] bool above(double frac) const {
    return capacity_ != 0 && occupancy() >= frac;
  }

 private:
  u64 capacity_ = 0;  ///< 0 = unlimited
  u64 in_use_ = 0;
  u64 peak_ = 0;
  u64 denied_ = 0;
};

}  // namespace oaf::af

// Flow-control decisions (paper §4.4.2).
//
// Stock NVMe/TCP: writes <= the in-capsule threshold (8 KiB) travel with the
// command capsule; larger writes use the conservative R2T exchange (3
// messages before the I/O can reach the SSD). With a shared-memory channel
// the payload can park in its slot until the target drains it, so the AF
// switches every write to in-capsule regardless of size — eliminating the
// R2T and the separate H2CData notification (steps 2 and 4 of Fig 7).
#pragma once

#include "af/config.h"

namespace oaf::af {

/// True if a write of `data_len` should carry its data with the command
/// capsule (in-capsule flow); false means the conservative R2T flow.
inline bool write_in_capsule(const AfConfig& cfg, bool shm_channel_ready,
                             u64 data_len) {
  if (shm_channel_ready && cfg.flow_control == FlowControlMode::kShmInCapsule) {
    return true;  // shm-based flow control: always in-capsule
  }
  return data_len <= cfg.in_capsule_threshold;
}

/// Control messages a write command will cost under the current policy
/// (bench assertions + the Fig 8 flow-control ablation's bookkeeping).
inline int write_control_messages(const AfConfig& cfg, bool shm_channel_ready,
                                  u64 data_len) {
  // In-capsule: CapsuleCmd + CapsuleResp.
  // Conservative: CapsuleCmd + R2T + H2CData(+payload) + CapsuleResp.
  return write_in_capsule(cfg, shm_channel_ready, data_len) ? 2 : 4;
}

/// True if a read completion is folded into the final C2HData PDU (the
/// SUCCESS-flag optimization, enabled along with shm flow control).
inline bool read_success_flag(const AfConfig& cfg, bool shm_channel_ready) {
  return shm_channel_ready && cfg.flow_control == FlowControlMode::kShmInCapsule;
}

}  // namespace oaf::af

// Queueing primitives for the timing plane.
//
// Resource models a station with `servers` identical servers and a FIFO
// queue — used for NVMe device internal parallelism (paper Fig 14's
// concurrency scaling) and per-core TCP stack processing. Throttle models a
// serial link: transmissions occupy the wire back-to-back at a fixed byte
// rate — used for NIC serialization (the 10/25/100 Gbps caps in Figs 2, 11).
#pragma once

#include <deque>

#include "common/executor.h"
#include "sim/scheduler.h"

namespace oaf::sim {

class Resource {
 public:
  using Fn = Executor::Fn;  // move-only; jobs may carry linear tokens

  Resource(Executor& exec, int servers)
      : exec_(exec), free_(servers), servers_(servers) {}

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Submit a job needing `service_time` on one server; `on_done` fires at
  /// the virtual instant the job completes (after any queueing delay).
  void submit(DurNs service_time, Fn on_done) {
    jobs_submitted_++;
    if (free_ > 0) {
      start(service_time, std::move(on_done));
    } else {
      queue_.push_back(Job{service_time, std::move(on_done)});
      if (queue_.size() > max_queue_len_) max_queue_len_ = queue_.size();
    }
  }

  [[nodiscard]] int servers() const { return servers_; }
  [[nodiscard]] int free_servers() const { return free_; }
  [[nodiscard]] size_t queue_length() const { return queue_.size(); }
  [[nodiscard]] size_t max_queue_length() const { return max_queue_len_; }
  [[nodiscard]] u64 jobs_submitted() const { return jobs_submitted_; }
  [[nodiscard]] u64 jobs_completed() const { return jobs_completed_; }
  [[nodiscard]] DurNs busy_time() const { return busy_time_; }

 private:
  struct Job {
    DurNs service_time;
    Fn on_done;
  };

  void start(DurNs service_time, Fn on_done) {
    free_--;
    busy_time_ += service_time;
    exec_.schedule_after(service_time, [this, cb = std::move(on_done)]() mutable {
      free_++;
      jobs_completed_++;
      cb();
      if (!queue_.empty() && free_ > 0) {
        Job next = std::move(queue_.front());
        queue_.pop_front();
        start(next.service_time, std::move(next.on_done));
      }
    });
  }

  Executor& exec_;
  std::deque<Job> queue_;
  int free_;
  int servers_;
  size_t max_queue_len_ = 0;
  u64 jobs_submitted_ = 0;
  u64 jobs_completed_ = 0;
  DurNs busy_time_ = 0;
};

/// Serial link: bytes leave the wire in submission order at `bytes_per_sec`.
/// Delivery time for a message is its queueing delay behind earlier traffic
/// plus its own serialization time. Equivalent to a 1-server Resource but
/// tracked with a "link free at" watermark, which is O(1) with no deque.
class Throttle {
 public:
  using Fn = Executor::Fn;  // move-only; jobs may carry linear tokens

  Throttle(Executor& exec, double bytes_per_sec)
      : exec_(exec), bytes_per_sec_(bytes_per_sec) {}

  Throttle(const Throttle&) = delete;
  Throttle& operator=(const Throttle&) = delete;

  /// Transmit `bytes`; `on_delivered` fires when the last byte leaves the
  /// wire. Extra `tail_latency` (e.g. propagation + receiver cost) is added
  /// after serialization without occupying the link.
  void transmit(u64 bytes, DurNs tail_latency, Fn on_delivered) {
    const DurNs serialization =
        static_cast<DurNs>(static_cast<double>(bytes) / bytes_per_sec_ * 1e9);
    const TimeNs now = exec_.now();
    const TimeNs start = std::max(now, free_at_);
    free_at_ = start + serialization;
    bytes_sent_ += bytes;
    busy_time_ += serialization;
    exec_.schedule_after(free_at_ + tail_latency - now, std::move(on_delivered));
  }

  [[nodiscard]] double bytes_per_sec() const { return bytes_per_sec_; }
  [[nodiscard]] u64 bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] DurNs busy_time() const { return busy_time_; }
  [[nodiscard]] TimeNs free_at() const { return free_at_; }

 private:
  Executor& exec_;
  double bytes_per_sec_;
  TimeNs free_at_ = 0;
  u64 bytes_sent_ = 0;
  DurNs busy_time_ = 0;
};

/// Asynchronous mutex: callers queue for exclusive ownership and release it
/// explicitly. Models a spinlock-guarded critical section on the timing
/// plane (the Fig 8 "SHM-baseline" serialization) and works unchanged on the
/// functional plane. FIFO grant order.
class AsyncMutex {
 public:
  using Fn = Executor::Fn;  // move-only; jobs may carry linear tokens

  explicit AsyncMutex(Executor& exec) : exec_(exec) {}

  AsyncMutex(const AsyncMutex&) = delete;
  AsyncMutex& operator=(const AsyncMutex&) = delete;

  /// Request ownership; `on_granted` runs (possibly immediately via post)
  /// once the lock is held.
  void acquire(Fn on_granted) {
    if (held_) {
      waiters_.push_back(std::move(on_granted));
      contentions_++;
      return;
    }
    held_ = true;
    exec_.post(std::move(on_granted));
  }

  /// Release ownership; the next waiter (if any) is granted.
  void release() {
    if (!waiters_.empty()) {
      Fn next = std::move(waiters_.front());
      waiters_.pop_front();
      exec_.post(std::move(next));
      return;  // ownership transfers directly
    }
    held_ = false;
  }

  [[nodiscard]] bool held() const { return held_; }
  [[nodiscard]] size_t waiters() const { return waiters_.size(); }
  [[nodiscard]] u64 contentions() const { return contentions_; }

 private:
  Executor& exec_;
  std::deque<Fn> waiters_;
  bool held_ = false;
  u64 contentions_ = 0;
};

}  // namespace oaf::sim

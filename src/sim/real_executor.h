// Real-time executor: a reactor thread driving the functional plane.
//
// Each protocol endpoint (client, target) owns one RealExecutor in tests and
// examples; channels hand messages across executors with post(), which is the
// only cross-thread entry point (guarded by a mutex + condition variable).
// Timers use the same steady clock that now() reports.
#pragma once

#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/executor.h"
#include "telemetry/prof/cost_center.h"
#include "telemetry/prof/reactor_health.h"
#include "telemetry/telemetry.h"

namespace oaf::sim {

class RealExecutor final : public Executor {
 public:
  RealExecutor() : start_(std::chrono::steady_clock::now()) {
    thread_ = std::thread([this] { loop(); });
  }

  ~RealExecutor() override {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  RealExecutor(const RealExecutor&) = delete;
  RealExecutor& operator=(const RealExecutor&) = delete;

  void post(Fn fn) override {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ready_.push_back(std::move(fn));
    }
    cv_.notify_all();
  }

  void schedule_after(DurNs delay, Fn fn) override {
    if (delay < 0) delay = 0;
    {
      std::lock_guard<std::mutex> lk(mu_);
      timers_.emplace(clock_now() + delay, std::move(fn));
    }
    cv_.notify_all();
  }

  [[nodiscard]] TimeNs now() const override { return clock_now(); }

  /// Block the *calling* thread until the executor has no ready work and no
  /// due timers (used by tests to quiesce).
  void drain() {
    std::unique_lock<std::mutex> lk(mu_);
    drained_cv_.wait(lk, [this] {
      return ready_.empty() && !running_ &&
             (timers_.empty() || timers_.begin()->first > clock_now());
    });
  }

 private:
  [[nodiscard]] TimeNs clock_now() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  void loop() {
    std::unique_lock<std::mutex> lk(mu_);
    while (!stop_) {
      // Move due timers into the ready queue.
      const TimeNs t = clock_now();
      while (!timers_.empty() && timers_.begin()->first <= t) {
        ready_.push_back(std::move(timers_.begin()->second));
        timers_.erase(timers_.begin());
      }
      if (!ready_.empty()) {
#if OAF_TELEMETRY_COMPILED
        const u64 runq = ready_.size();
#endif
        Fn fn = std::move(ready_.front());
        ready_.erase(ready_.begin());
        running_ = true;
        lk.unlock();
#if OAF_TELEMETRY_COMPILED
        const TimeNs t0 = clock_now();
#endif
        fn();
#if OAF_TELEMETRY_COMPILED
        // The task may have left a per-I/O cost center stamped; CPU burned
        // between tasks belongs to the reactor itself.
        telemetry::prof::set_cost_center(
            telemetry::prof::CostCenter::kReactor);
        telemetry::prof::reactor_health().on_task(clock_now() - t0, runq);
#endif
        lk.lock();
        running_ = false;
        drained_cv_.notify_all();
        continue;
      }
      drained_cv_.notify_all();
#if OAF_TELEMETRY_COMPILED
      const TimeNs idle0 = clock_now();
#endif
      if (timers_.empty()) {
        cv_.wait(lk);
      } else {
        const auto wake = start_ + std::chrono::nanoseconds(timers_.begin()->first);
        cv_.wait_until(lk, wake);
      }
#if OAF_TELEMETRY_COMPILED
      telemetry::prof::reactor_health().on_idle(clock_now() - idle0);
#endif
    }
  }

  const std::chrono::steady_clock::time_point start_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable drained_cv_;
  std::vector<Fn> ready_;
  std::multimap<TimeNs, Fn> timers_;
  bool stop_ = false;
  bool running_ = false;
};

}  // namespace oaf::sim

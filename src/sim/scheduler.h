// Discrete-event scheduler: the heart of the timing plane.
//
// A binary-heap event queue ordered by (time, insertion sequence) gives a
// deterministic total order: two events at the same virtual instant run in
// the order they were scheduled. The scheduler implements the Executor
// interface so protocol engines run on it unmodified.
#pragma once

#include <queue>
#include <vector>

#include "common/executor.h"
#include "common/types.h"

namespace oaf::sim {

class Scheduler final : public Executor {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Executor interface -------------------------------------------------
  void post(Fn fn) override { schedule_at(now_, std::move(fn)); }
  void schedule_after(DurNs delay, Fn fn) override {
    schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }
  [[nodiscard]] TimeNs now() const override { return now_; }

  // Simulation control -------------------------------------------------
  void schedule_at(TimeNs at, Fn fn) {
    if (at < now_) at = now_;
    queue_.push(Event{at, seq_++, std::move(fn)});
  }

  /// Run the next event; returns false when the queue is empty.
  bool step() {
    if (queue_.empty()) return false;
    // Moving out of the priority queue requires a const_cast because
    // std::priority_queue::top() is const; the pop immediately follows.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ev.fn();
    executed_++;
    return true;
  }

  /// Run all events with time <= `deadline`. Clock ends at min(deadline,
  /// last event time); events beyond the deadline stay queued.
  void run_until(TimeNs deadline) {
    while (!queue_.empty() && queue_.top().at <= deadline) step();
    if (now_ < deadline) now_ = deadline;
  }

  /// Drain the queue completely.
  void run() {
    while (step()) {
    }
  }

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] size_t pending() const { return queue_.size(); }
  [[nodiscard]] u64 executed() const { return executed_; }

 private:
  struct Event {
    TimeNs at;
    u64 seq;
    Fn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  TimeNs now_ = 0;
  u64 seq_ = 0;
  u64 executed_ = 0;
};

}  // namespace oaf::sim

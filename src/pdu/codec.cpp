#include "pdu/codec.h"

#include <cstring>

#include "pdu/crc32.h"
#include "pdu/wire_contract.h"

namespace oaf::pdu {

namespace {

constexpr u64 kCommonHeaderBytes = kWireCommonHeaderBytes;
constexpr u8 kFlagHeaderDigest = 0x01;

class Writer {
 public:
  explicit Writer(std::vector<u8>& out) : out_(out) {}

  void u8_(u8 v) { out_.push_back(v); }
  void u16_(u16 v) {
    out_.push_back(static_cast<u8>(v));
    out_.push_back(static_cast<u8>(v >> 8));
  }
  void u32_(u32 v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<u8>(v >> (8 * i)));
  }
  void u64_(u64 v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<u8>(v >> (8 * i)));
  }
  void bool_(bool v) { u8_(v ? 1 : 0); }
  void str_(const std::string& s) {
    u32_(static_cast<u32>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

 private:
  std::vector<u8>& out_;
};

class Reader {
 public:
  explicit Reader(std::span<const u8> in) : in_(in) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] u64 consumed() const { return pos_; }
  /// Unread bytes left in the typed header. Used to decode fields appended
  /// by newer protocol revisions only when the peer actually sent them —
  /// a short (older-peer) header decodes cleanly with defaulted values.
  [[nodiscard]] u64 remaining() const {
    return ok_ ? in_.size() - pos_ : 0;
  }

  u8 u8_() {
    if (!need(1)) return 0;
    return in_[pos_++];
  }
  u16 u16_() {
    if (!need(2)) return 0;
    u16 v = static_cast<u16>(in_[pos_] | (in_[pos_ + 1] << 8));
    pos_ += 2;
    return v;
  }
  u32 u32_() {
    if (!need(4)) return 0;
    u32 v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<u32>(in_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }
  u64 u64_() {
    if (!need(8)) return 0;
    u64 v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<u64>(in_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }
  bool bool_() { return u8_() != 0; }
  std::string str_() {
    const u32 len = u32_();
    if (!ok_ || !need(len)) return {};
    std::string s(reinterpret_cast<const char*>(in_.data() + pos_), len);
    pos_ += len;
    return s;
  }

 private:
  bool need(u64 n) {
    if (pos_ + n > in_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const u8> in_;
  u64 pos_ = 0;
  bool ok_ = true;
};

void encode_cmd(Writer& w, const NvmeCmd& cmd) {
  w.u8_(static_cast<u8>(cmd.opcode));
  w.u16_(cmd.cid);
  w.u32_(cmd.nsid);
  w.u64_(cmd.slba);
  w.u32_(cmd.nlb);
  w.u16_(cmd.abort_cid);
  w.u16_(cmd.abort_gen);
}

NvmeCmd decode_cmd(Reader& r) {
  NvmeCmd cmd;
  cmd.opcode = static_cast<NvmeOpcode>(r.u8_());
  cmd.cid = r.u16_();
  cmd.nsid = r.u32_();
  cmd.slba = r.u64_();
  cmd.nlb = r.u32_();
  cmd.abort_cid = r.u16_();
  cmd.abort_gen = r.u16_();
  return cmd;
}

void encode_header(Writer& w, const PduHeader& header) {
  std::visit(
      [&w](const auto& h) {
        using T = std::decay_t<decltype(h)>;
        if constexpr (std::is_same_v<T, ICReq>) {
          w.u16_(h.pfv);
          w.u8_(h.hpda);
          w.bool_(h.header_digest);
          w.u32_(h.maxr2t);
          w.u64_(h.node_token);
          w.bool_(h.want_shm);
          w.bool_(h.data_digest);
          w.u64_(h.kato_ns);
          w.bool_(h.trace_ctx);
          w.u64_(h.t_sent_ns);
        } else if constexpr (std::is_same_v<T, ICResp>) {
          w.u16_(h.pfv);
          w.bool_(h.header_digest);
          w.u32_(h.maxh2cdata);
          w.bool_(h.shm_granted);
          w.u64_(h.shm_bytes);
          w.u32_(h.shm_slots);
          w.str_(h.shm_name);
          w.bool_(h.data_digest);
          w.bool_(h.trace_ctx);
          w.u64_(h.echo_t_ns);
          w.u64_(h.t_now_ns);
          w.bool_(h.admitted);
          w.u32_(h.retry_after_ms);
          w.str_(h.reject_reason);
        } else if constexpr (std::is_same_v<T, CapsuleCmd>) {
          encode_cmd(w, h.cmd);
          w.u8_(static_cast<u8>(h.placement));
          w.bool_(h.in_capsule_data);
          w.u32_(h.shm_slot);
          w.u64_(h.data_len);
          w.u16_(h.gen);
          w.u64_(h.trace_id);
          w.u64_(h.parent_span);
        } else if constexpr (std::is_same_v<T, CapsuleResp>) {
          w.u16_(h.cpl.cid);
          w.u16_(static_cast<u16>(h.cpl.status));
          w.u64_(h.cpl.result);
          w.u64_(h.io_time_ns);
          w.u64_(h.target_time_ns);
          w.u16_(h.gen);
        } else if constexpr (std::is_same_v<T, R2T>) {
          w.u16_(h.cid);
          w.u16_(h.ttag);
          w.u64_(h.offset);
          w.u64_(h.length);
          w.u16_(h.gen);
        } else if constexpr (std::is_same_v<T, H2CData>) {
          w.u16_(h.cid);
          w.u16_(h.ttag);
          w.u64_(h.offset);
          w.u64_(h.length);
          w.bool_(h.last);
          w.u8_(static_cast<u8>(h.placement));
          w.u32_(h.shm_slot);
          w.u16_(h.gen);
          w.u32_(h.data_digest);
        } else if constexpr (std::is_same_v<T, C2HData>) {
          w.u16_(h.cid);
          w.u64_(h.offset);
          w.u64_(h.length);
          w.bool_(h.last);
          w.bool_(h.success);
          w.u8_(static_cast<u8>(h.placement));
          w.u32_(h.shm_slot);
          w.u64_(h.io_time_ns);
          w.u64_(h.target_time_ns);
          w.u16_(h.gen);
          w.u32_(h.data_digest);
        } else if constexpr (std::is_same_v<T, TermReq>) {
          w.bool_(h.from_host);
          w.u16_(h.fes);
          w.str_(h.reason);
        } else if constexpr (std::is_same_v<T, KeepAlive>) {
          w.bool_(h.from_host);
          w.u64_(h.seq);
          w.u64_(h.t_sent_ns);
          w.u64_(h.echo_t_ns);
        } else if constexpr (std::is_same_v<T, ShmDemote>) {
          w.str_(h.reason);
        } else if constexpr (std::is_same_v<T, AnaLog>) {
          w.u8_(static_cast<u8>(h.state));
          w.u64_(h.change_seq);
          w.str_(h.reason);
        } else if constexpr (std::is_same_v<T, AnomalyReq>) {
          w.u64_(h.trace_id);
          w.u64_(static_cast<u64>(h.t_from_ns));
          w.u64_(static_cast<u64>(h.t_to_ns));
          w.u64_(static_cast<u64>(h.offset_ns));
        } else if constexpr (std::is_same_v<T, AnomalyResp>) {
          w.u64_(h.trace_id);
          w.u64_(h.pid);
          w.u32_(h.event_count);
        }
      },
      header);
}

Result<PduHeader> decode_header(PduType type, Reader& r) {
  switch (type) {
    case PduType::kICReq: {
      ICReq h;
      h.pfv = r.u16_();
      h.hpda = r.u8_();
      h.header_digest = r.bool_();
      h.maxr2t = r.u32_();
      h.node_token = r.u64_();
      h.want_shm = r.bool_();
      h.data_digest = r.bool_();
      h.kato_ns = r.u64_();
      if (r.remaining() >= 1 + 8) {  // rev 2: trace-context offer
        h.trace_ctx = r.bool_();
        h.t_sent_ns = r.u64_();
      }
      return PduHeader{h};
    }
    case PduType::kICResp: {
      ICResp h;
      h.pfv = r.u16_();
      h.header_digest = r.bool_();
      h.maxh2cdata = r.u32_();
      h.shm_granted = r.bool_();
      h.shm_bytes = r.u64_();
      h.shm_slots = r.u32_();
      h.shm_name = r.str_();
      h.data_digest = r.bool_();
      if (r.remaining() >= 1 + 8 + 8) {  // rev 2: trace-context + clock echo
        h.trace_ctx = r.bool_();
        h.echo_t_ns = r.u64_();
        h.t_now_ns = r.u64_();
      }
      // rev 4: admission verdict (1 + 4 fixed bytes + the reject reason's
      // u32 length prefix). Short (older-peer) headers default to admitted.
      if (r.remaining() >= 1 + 4 + 4) {
        h.admitted = r.bool_();
        h.retry_after_ms = r.u32_();
        h.reject_reason = r.str_();
      }
      return PduHeader{h};
    }
    case PduType::kCapsuleCmd: {
      CapsuleCmd h;
      h.cmd = decode_cmd(r);
      h.placement = static_cast<DataPlacement>(r.u8_());
      h.in_capsule_data = r.bool_();
      h.shm_slot = r.u32_();
      h.data_len = r.u64_();
      h.gen = r.u16_();
      if (r.remaining() >= 8 + 8) {  // rev 2: trace context
        h.trace_id = r.u64_();
        h.parent_span = r.u64_();
      }
      return PduHeader{h};
    }
    case PduType::kCapsuleResp: {
      CapsuleResp h;
      h.cpl.cid = r.u16_();
      h.cpl.status = static_cast<NvmeStatus>(r.u16_());
      h.cpl.result = r.u64_();
      h.io_time_ns = r.u64_();
      h.target_time_ns = r.u64_();
      h.gen = r.u16_();
      return PduHeader{h};
    }
    case PduType::kR2T: {
      R2T h;
      h.cid = r.u16_();
      h.ttag = r.u16_();
      h.offset = r.u64_();
      h.length = r.u64_();
      h.gen = r.u16_();
      return PduHeader{h};
    }
    case PduType::kH2CData: {
      H2CData h;
      h.cid = r.u16_();
      h.ttag = r.u16_();
      h.offset = r.u64_();
      h.length = r.u64_();
      h.last = r.bool_();
      h.placement = static_cast<DataPlacement>(r.u8_());
      h.shm_slot = r.u32_();
      h.gen = r.u16_();
      h.data_digest = r.u32_();
      return PduHeader{h};
    }
    case PduType::kC2HData: {
      C2HData h;
      h.cid = r.u16_();
      h.offset = r.u64_();
      h.length = r.u64_();
      h.last = r.bool_();
      h.success = r.bool_();
      h.placement = static_cast<DataPlacement>(r.u8_());
      h.shm_slot = r.u32_();
      h.io_time_ns = r.u64_();
      h.target_time_ns = r.u64_();
      h.gen = r.u16_();
      h.data_digest = r.u32_();
      return PduHeader{h};
    }
    case PduType::kH2CTermReq:
    case PduType::kC2HTermReq: {
      TermReq h;
      h.from_host = r.bool_();
      h.fes = r.u16_();
      h.reason = r.str_();
      return PduHeader{h};
    }
    case PduType::kKeepAlive: {
      KeepAlive h;
      h.from_host = r.bool_();
      h.seq = r.u64_();
      if (r.remaining() >= 8 + 8) {  // rev 2: clock-offset echo
        h.t_sent_ns = r.u64_();
        h.echo_t_ns = r.u64_();
      }
      return PduHeader{h};
    }
    case PduType::kShmDemote: {
      ShmDemote h;
      h.reason = r.str_();
      return PduHeader{h};
    }
    case PduType::kAnaLog: {
      AnaLog h;
      h.state = static_cast<AnaState>(r.u8_());
      h.change_seq = r.u64_();
      h.reason = r.str_();
      return PduHeader{h};
    }
    case PduType::kAnomalyReq: {
      AnomalyReq h;
      h.trace_id = r.u64_();
      h.t_from_ns = static_cast<i64>(r.u64_());
      h.t_to_ns = static_cast<i64>(r.u64_());
      h.offset_ns = static_cast<i64>(r.u64_());
      return PduHeader{h};
    }
    case PduType::kAnomalyResp: {
      AnomalyResp h;
      h.trace_id = r.u64_();
      h.pid = r.u64_();
      h.event_count = r.u32_();
      return PduHeader{h};
    }
  }
  return make_error(StatusCode::kProtocolError, "unknown PDU type");
}

}  // namespace

PduType Pdu::type() const {
  return std::visit(
      [this](const auto& h) -> PduType {
        using T = std::decay_t<decltype(h)>;
        if constexpr (std::is_same_v<T, ICReq>) return PduType::kICReq;
        if constexpr (std::is_same_v<T, ICResp>) return PduType::kICResp;
        if constexpr (std::is_same_v<T, CapsuleCmd>) return PduType::kCapsuleCmd;
        if constexpr (std::is_same_v<T, CapsuleResp>) return PduType::kCapsuleResp;
        if constexpr (std::is_same_v<T, R2T>) return PduType::kR2T;
        if constexpr (std::is_same_v<T, H2CData>) return PduType::kH2CData;
        if constexpr (std::is_same_v<T, C2HData>) return PduType::kC2HData;
        if constexpr (std::is_same_v<T, TermReq>) {
          return h.from_host ? PduType::kH2CTermReq : PduType::kC2HTermReq;
        }
        if constexpr (std::is_same_v<T, KeepAlive>) return PduType::kKeepAlive;
        if constexpr (std::is_same_v<T, ShmDemote>) return PduType::kShmDemote;
        if constexpr (std::is_same_v<T, AnaLog>) return PduType::kAnaLog;
        if constexpr (std::is_same_v<T, AnomalyReq>) {
          return PduType::kAnomalyReq;
        }
        if constexpr (std::is_same_v<T, AnomalyResp>) {
          return PduType::kAnomalyResp;
        }
      },
      header);
}

const char* to_string(PduType t) {
  switch (t) {
    case PduType::kICReq:
      return "ICReq";
    case PduType::kICResp:
      return "ICResp";
    case PduType::kH2CTermReq:
      return "H2CTermReq";
    case PduType::kC2HTermReq:
      return "C2HTermReq";
    case PduType::kCapsuleCmd:
      return "CapsuleCmd";
    case PduType::kCapsuleResp:
      return "CapsuleResp";
    case PduType::kH2CData:
      return "H2CData";
    case PduType::kC2HData:
      return "C2HData";
    case PduType::kR2T:
      return "R2T";
    case PduType::kKeepAlive:
      return "KeepAlive";
    case PduType::kShmDemote:
      return "ShmDemote";
    case PduType::kAnaLog:
      return "AnaLog";
    case PduType::kAnomalyReq:
      return "AnomalyReq";
    case PduType::kAnomalyResp:
      return "AnomalyResp";
  }
  return "?";
}

const char* to_string(AnaState s) {
  switch (s) {
    case AnaState::kOptimized:
      return "optimized";
    case AnaState::kNonOptimized:
      return "non-optimized";
    case AnaState::kInaccessible:
      return "inaccessible";
  }
  return "?";
}

std::vector<u8> encode(const Pdu& pdu, const CodecOptions& opts) {
  std::vector<u8> out;
  out.reserve(kCommonHeaderBytes + 64 + pdu.payload.size());
  Writer w(out);
  w.u8_(static_cast<u8>(pdu.type()));
  w.u8_(opts.header_digest ? kFlagHeaderDigest : 0);
  w.u16_(0);  // hlen placeholder
  w.u32_(0);  // plen placeholder
  encode_header(w, pdu.header);

  const u64 hlen = out.size();
  if (hlen > UINT16_MAX) {
    // Typed headers are tiny; this would be a programming error.
    out.clear();
    return out;
  }
  out[2] = static_cast<u8>(hlen);
  out[3] = static_cast<u8>(hlen >> 8);

  // plen must be final before the digest is computed — the digest covers
  // the common header including the length field.
  const u64 plen =
      hlen + (opts.header_digest ? 4 : 0) + pdu.payload.size();
  for (int i = 0; i < 4; ++i) out[4 + i] = static_cast<u8>(plen >> (8 * i));

  if (opts.header_digest) {
    const u32 digest = crc32c(std::span<const u8>(out.data(), out.size()));
    w.u32_(digest);
  }
  out.insert(out.end(), pdu.payload.begin(), pdu.payload.end());
  return out;
}

Result<u64> frame_length(std::span<const u8> prefix) {
  if (prefix.size() < kCommonHeaderBytes) {
    return make_error(StatusCode::kOutOfRange, "short PDU prefix");
  }
  u64 plen = 0;
  for (int i = 0; i < 4; ++i) plen |= static_cast<u64>(prefix[4 + i]) << (8 * i);
  if (plen < kCommonHeaderBytes || plen > kMaxPduBytes) {
    return make_error(StatusCode::kProtocolError, "bad PDU length");
  }
  return plen;
}

Result<Pdu> decode(std::span<const u8> bytes, const CodecOptions& opts) {
  if (bytes.size() < kCommonHeaderBytes) {
    return make_error(StatusCode::kProtocolError, "PDU shorter than header");
  }
  const auto type_raw = bytes[0];
  const u8 flags = bytes[1];
  const u16 hlen = static_cast<u16>(bytes[2] | (bytes[3] << 8));
  auto plen_res = frame_length(bytes);
  if (!plen_res) return plen_res.status();
  const u64 plen = plen_res.value();
  if (plen != bytes.size()) {
    return make_error(StatusCode::kProtocolError, "PDU length mismatch");
  }
  if (hlen < kCommonHeaderBytes || hlen > plen) {
    return make_error(StatusCode::kProtocolError, "bad header length");
  }

  const bool has_digest = (flags & kFlagHeaderDigest) != 0;
  if (opts.header_digest != has_digest) {
    return make_error(StatusCode::kProtocolError, "digest flag mismatch");
  }
  u64 payload_start = hlen;
  if (has_digest) {
    if (static_cast<u64>(hlen) + 4 > plen) {
      return make_error(StatusCode::kProtocolError, "truncated digest");
    }
    u32 stored = 0;
    for (int i = 0; i < 4; ++i) {
      stored |= static_cast<u32>(bytes[hlen + static_cast<u64>(i)]) << (8 * i);
    }
    const u32 computed = crc32c(bytes.subspan(0, hlen));
    if (stored != computed) {
      return make_error(StatusCode::kDataLoss, "header digest mismatch");
    }
    payload_start += 4;
  }

  Reader r(bytes.subspan(kCommonHeaderBytes, hlen - kCommonHeaderBytes));
  auto header = decode_header(static_cast<PduType>(type_raw), r);
  if (!header) return header.status();
  if (!r.ok()) {
    return make_error(StatusCode::kProtocolError, "truncated typed header");
  }

  Pdu pdu;
  pdu.header = std::move(header).take();
  pdu.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(payload_start),
                     bytes.end());
  return pdu;
}

u64 wire_size(const Pdu& pdu) {
  // Cheap exact computation: encode header-only. Headers are tiny (< 100 B)
  // so this is fine off the data path; the timing plane caches sizes.
  Pdu header_only;
  header_only.header = pdu.header;
  return encode(header_only).size() + pdu.payload.size();
}

}  // namespace oaf::pdu

// NVMe/TCP-style Protocol Data Units with the NVMe-oAF extensions.
//
// Types and flow follow the NVMe-oF 1.1 TCP transport binding: connections
// are initialized with ICReq/ICResp, commands travel as capsules, large
// writes use R2T + H2CData, reads return C2HData, and completions arrive as
// CapsuleResp. The oAF extension (paper §4.1–4.4) adds:
//   * AF capability negotiation piggybacked on ICReq/ICResp (locality token,
//     shared-memory region grant: name/bytes/slots);
//   * data PDUs that may reference a shared-memory slot instead of carrying
//     an inline payload — the out-of-band notification of Figure 6.
// The resilience layer adds three more pieces:
//   * KeepAlive ping/echo PDUs plus a KATO advertised in ICReq, so the
//     target can reap dead associations and the host can detect dead peers;
//   * a per-attempt generation tag (`gen`) carried in CapsuleCmd and echoed
//     in R2T/H2CData/C2HData/CapsuleResp, so a replayed command is never
//     matched against PDUs of an earlier attempt;
//   * an optional CRC32C data digest over inline data payloads, negotiated
//     in ICReq/ICResp — a mismatch is a retryable transport error.
// The observability layer appends one more (fully backward compatible)
// extension: trace-context propagation. ICReq carries a `trace_ctx` feature
// bit plus a send timestamp; ICResp echoes both, adding the target's local
// clock so the host can estimate the clock offset NTP-style; CapsuleCmd then
// carries a 64-bit trace id + parent span id, and KeepAlive echoes carry
// timestamps to keep the offset estimate fresh. All new fields are appended
// at the *end* of the typed headers: the codec tolerates both short (old
// peer) and long (new peer) headers, so mixed-version associations work —
// the feature simply stays off.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "pdu/nvme_cmd.h"

namespace oaf::pdu {

enum class PduType : u8 {
  kICReq = 0x00,
  kICResp = 0x01,
  kH2CTermReq = 0x02,
  kC2HTermReq = 0x03,
  kCapsuleCmd = 0x04,
  kCapsuleResp = 0x05,
  kH2CData = 0x06,
  kC2HData = 0x07,
  kR2T = 0x09,
  kKeepAlive = 0x0a,   ///< resilience ext.: host ping / controller echo
  kShmDemote = 0x0b,   ///< resilience ext.: runtime shm -> TCP demotion
  kAnaLog = 0x0c,      ///< multipath ext.: ANA path-state change notice
  kAnomalyReq = 0x0d,  ///< observability ext.: fetch peer anomaly events
  kAnomalyResp = 0x0e, ///< observability ext.: anomaly events reply
};

const char* to_string(PduType t);

/// Asymmetric Namespace Access state of one controller (path), modelled on
/// NVMe ANA groups but scoped per-association: the target advertises how
/// this path should be treated relative to its siblings and the initiator's
/// PathGroup weighs it during selection. Advisory — the target keeps
/// serving commands in every state; `kInaccessible` only steers *new*
/// submissions away.
enum class AnaState : u8 {
  kOptimized = 0,      ///< preferred path, full service
  kNonOptimized = 1,   ///< usable, but pick an optimized sibling first
  kInaccessible = 2,   ///< do not submit new commands on this path
};

const char* to_string(AnaState s);

/// Where a data PDU's payload lives.
enum class DataPlacement : u8 {
  kInline = 0,  ///< payload bytes follow the header on the TCP stream
  kShmSlot = 1, ///< payload parked in a shared-memory slot (oAF extension)
};

/// Initialize Connection Request. `node_token` identifies the physical host
/// the client runs on (supplied by the locality helper); `want_shm` asks the
/// target to grant a shared-memory channel if co-located.
struct ICReq {
  u16 pfv = 0;              ///< PDU format version
  u8 hpda = 0;              ///< host PDU data alignment (shift)
  bool header_digest = false;
  u32 maxr2t = 1;           ///< max outstanding R2Ts per command
  u64 node_token = 0;       ///< oAF: opaque host-identity token
  bool want_shm = false;    ///< oAF: request shared-memory channel
  bool data_digest = false; ///< resilience: CRC32C over inline data payloads
  u64 kato_ns = 0;          ///< keep-alive timeout; 0 = use target default
  bool trace_ctx = false;   ///< observability: offer trace-context propagation
  u64 t_sent_ns = 0;        ///< observability: host clock when ICReq was sent
};

/// Initialize Connection Response. When `shm_granted`, the client maps the
/// named region and the double-buffer geometry (bytes/slots) is fixed for
/// the connection lifetime.
struct ICResp {
  u16 pfv = 0;
  bool header_digest = false;
  u32 maxh2cdata = 0;       ///< largest H2CData payload target accepts
  bool shm_granted = false; ///< oAF: shared-memory channel established
  u64 shm_bytes = 0;        ///< oAF: total region size
  u32 shm_slots = 0;        ///< oAF: slots per direction (== queue depth)
  std::string shm_name;     ///< oAF: region name to shm_open/map
  bool data_digest = false; ///< resilience: data digest accepted
  bool trace_ctx = false;   ///< observability: trace-context accepted
  u64 echo_t_ns = 0;        ///< observability: ICReq::t_sent_ns echoed back
  u64 t_now_ns = 0;         ///< observability: target clock when ICResp sent
  /// Overload ext. (rev 4): connect-time admission verdict. Defaults keep
  /// an old peer's short header decoding as "admitted" — rejection is only
  /// ever explicit. When `admitted` is false the target closes the
  /// association right after this ICResp; `retry_after_ms` hints how long
  /// the host should back off before redialing (0 = host's own policy).
  bool admitted = true;
  u32 retry_after_ms = 0;
  std::string reject_reason;
};

/// Command capsule. For writes, data may be in-capsule (inline payload or a
/// shm slot reference under shared-memory flow control) or deferred until an
/// R2T arrives (conservative flow control).
struct CapsuleCmd {
  NvmeCmd cmd;
  DataPlacement placement = DataPlacement::kInline;
  bool in_capsule_data = false;  ///< write payload accompanies the capsule
  u32 shm_slot = 0;              ///< valid when placement == kShmSlot
  u64 data_len = 0;              ///< total data length for this command
  u16 gen = 0;                   ///< attempt generation, echoed by the target
                                 ///< (0 = no replay protection requested)
  u64 trace_id = 0;              ///< observability: trace id (0 = untraced)
  u64 parent_span = 0;           ///< observability: initiator's I/O span id
};

/// Response capsule (completion). The two *_ns fields are oAF reproduction
/// instrumentation: the target reports how long the command spent on the
/// NVMe device and in target-side processing, which the client uses to
/// produce the paper's I/O-time / comm-time / other latency breakdowns
/// (Figs 3 and 12) without clock synchronization games.
struct CapsuleResp {
  NvmeCpl cpl;
  u64 io_time_ns = 0;
  u64 target_time_ns = 0;
  u16 gen = 0;  ///< echo of CapsuleCmd::gen (0 = unknown, matches anything)
};

/// Ready-to-Transfer: target grants the client permission to send `length`
/// bytes starting at `offset` for command `cid` (conservative flow control).
struct R2T {
  u16 cid = 0;
  u16 ttag = 0;   ///< transfer tag to echo in H2CData
  u64 offset = 0;
  u64 length = 0;
  u16 gen = 0;    ///< echo of CapsuleCmd::gen
};

/// Host-to-Controller data (write payload), inline or a shm slot reference.
struct H2CData {
  u16 cid = 0;
  u16 ttag = 0;
  u64 offset = 0;
  u64 length = 0;
  bool last = true;
  DataPlacement placement = DataPlacement::kInline;
  u32 shm_slot = 0;
  u16 gen = 0;          ///< echo of CapsuleCmd::gen
  u32 data_digest = 0;  ///< CRC32C over the inline payload (when negotiated)
};

/// Controller-to-Host data (read payload), inline or a shm slot reference.
/// `success` mirrors NVMe/TCP's C2HData SUCCESS flag: when set on the last
/// data PDU the host treats the command as completed and no CapsuleResp
/// follows — the shm flow control uses it to cut one control message per
/// read (paper §4.4.2).
struct C2HData {
  u16 cid = 0;
  u64 offset = 0;
  u64 length = 0;
  bool last = true;
  bool success = false;
  DataPlacement placement = DataPlacement::kInline;
  u32 shm_slot = 0;
  u64 io_time_ns = 0;      ///< instrumentation (valid when success is set)
  u64 target_time_ns = 0;  ///< instrumentation (valid when success is set)
  u16 gen = 0;             ///< echo of CapsuleCmd::gen
  u32 data_digest = 0;     ///< CRC32C over the inline payload (when negotiated)
};

/// Terminate request (either direction); `fes` = fatal error status.
struct TermReq {
  bool from_host = true;
  u16 fes = 0;
  std::string reason;
};

/// Keep-alive ping (host -> controller) and echo (controller -> host).
/// The target refreshes its last-heard stamp on *any* PDU; KeepAlive exists
/// so idle associations stay provably alive and a silent peer is reaped
/// once its KATO expires.
struct KeepAlive {
  bool from_host = true;  ///< ping when true, echo when false
  u64 seq = 0;            ///< monotonically increasing per connection
  u64 t_sent_ns = 0;      ///< observability: sender clock at transmit time
  u64 echo_t_ns = 0;      ///< observability: echo of the ping's t_sent_ns
};

/// Runtime shm -> TCP demotion notice (host -> controller). The sender has
/// stopped placing new payloads in shared memory (locality flag dropped or
/// a ring health check failed); in-flight slot transfers still complete,
/// new data rides inline TCP PDUs.
struct ShmDemote {
  std::string reason;
};

/// ANA log-page-style path-state notice (controller -> host), pushed
/// asynchronously whenever the target changes this association's ANA state.
/// `change_seq` increases monotonically per association so a delayed or
/// reordered notice can never roll the host's view backwards; a fresh
/// association restarts at seq 1 with state kOptimized.
struct AnaLog {
  AnaState state = AnaState::kOptimized;
  u64 change_seq = 0;
  std::string reason;
};

/// Anomaly-event fetch (host -> controller). On an SLO breach the host asks
/// the peer for its half of the story: every buffered anomaly-ring event
/// matching `trace_id` plus neighbours inside [t_from_ns, t_to_ns] — a
/// window already translated onto the *target's* clock. `offset_ns` is the
/// host's remote-minus-local estimate; the target subtracts it from every
/// event timestamp in the reply so the returned events land directly on the
/// host's timeline (no parsing/rewriting on the hot breach path).
struct AnomalyReq {
  u64 trace_id = 0;
  i64 t_from_ns = 0;   ///< window start, target clock
  i64 t_to_ns = 0;     ///< window end, target clock
  i64 offset_ns = 0;   ///< remote-minus-local clock estimate to undo
};

/// Anomaly-event reply (controller -> host). The payload is a UTF-8 JSON
/// array of event objects (already clock-corrected, capped by the target's
/// anomaly recorder); `event_count` is its length so the host can log
/// truncation without parsing.
struct AnomalyResp {
  u64 trace_id = 0;    ///< echo of AnomalyReq::trace_id
  u64 pid = 0;         ///< target process id, linking the capture's halves
  u32 event_count = 0;
};

using PduHeader =
    std::variant<ICReq, ICResp, CapsuleCmd, CapsuleResp, R2T, H2CData, C2HData,
                 TermReq, KeepAlive, ShmDemote, AnaLog, AnomalyReq,
                 AnomalyResp>;

/// A full PDU: typed header plus (possibly empty) inline payload bytes.
struct Pdu {
  PduHeader header;
  std::vector<u8> payload;

  [[nodiscard]] PduType type() const;

  template <typename T>
  [[nodiscard]] const T* as() const {
    return std::get_if<T>(&header);
  }
  template <typename T>
  [[nodiscard]] T* as() {
    return std::get_if<T>(&header);
  }
};

/// Wire size of an encoded PDU (common header + typed fields + payload),
/// used by the timing plane to charge serialization costs without encoding.
u64 wire_size(const Pdu& pdu);

}  // namespace oaf::pdu

#include "pdu/crc32.h"

#include <array>

namespace oaf::pdu {

namespace {

constexpr u32 kPoly = 0x82f63b78;  // reflected CRC32C polynomial

std::array<u32, 256> make_table() {
  std::array<u32, 256> table{};
  for (u32 i = 0; i < 256; ++i) {
    u32 crc = i;
    for (int b = 0; b < 8; ++b) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<u32, 256>& table() {
  static const std::array<u32, 256> t = make_table();
  return t;
}

}  // namespace

u32 crc32c(std::span<const u8> data, u32 seed) {
  const auto& t = table();
  u32 crc = ~seed;
  for (const u8 byte : data) {
    crc = t[(crc ^ byte) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace oaf::pdu

// Binary PDU codec.
//
// Wire layout (little-endian):
//   common header: [type:1][flags:1][hlen:2][plen:4]
//   typed fields (hlen - 8 bytes)
//   optional header digest (CRC32C over common header + typed fields)
//   payload (plen - header - digest bytes)
//
// Decoding is fully bounds-checked and never trusts length fields beyond the
// buffer; malformed input yields a Status, not UB — this is the surface a
// remote peer controls.
#pragma once

#include <span>
#include <vector>

#include "common/status.h"
#include "pdu/pdu.h"

namespace oaf::pdu {

struct CodecOptions {
  bool header_digest = false;
};

/// Encode `pdu` to a fresh byte vector.
std::vector<u8> encode(const Pdu& pdu, const CodecOptions& opts = {});

/// Decode a single complete PDU from `bytes`. `bytes` must contain exactly
/// one encoded PDU (framing is the channel's job).
Result<Pdu> decode(std::span<const u8> bytes, const CodecOptions& opts = {});

/// Number of bytes the full PDU occupies given at least the 8-byte common
/// header; used by stream channels to frame. Returns error if the prefix is
/// too short or the length field is insane.
Result<u64> frame_length(std::span<const u8> prefix);

/// Upper bound accepted for a single PDU (header + payload).
inline constexpr u64 kMaxPduBytes = 64 * 1024 * 1024;

}  // namespace oaf::pdu

// CRC32C (Castagnoli) — the header/data digest algorithm NVMe/TCP mandates.
// Table-driven software implementation; the functional plane verifies
// digests on every decoded PDU when digests are negotiated.
#pragma once

#include <span>

#include "common/types.h"

namespace oaf::pdu {

u32 crc32c(std::span<const u8> data, u32 seed = 0);

}  // namespace oaf::pdu

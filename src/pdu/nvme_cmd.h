// Simplified NVMe command set shared by the initiator, target, and device
// model. Field names follow the NVMe base specification (CID, NSID, SLBA,
// NLB); only the subset NVMe-oF I/O queues exercise is modelled.
#pragma once

#include "common/types.h"

namespace oaf::pdu {

enum class NvmeOpcode : u8 {
  kFlush = 0x00,
  kWrite = 0x01,
  kRead = 0x02,
  kIdentify = 0x06,  // carried on the admin queue in real NVMe; simplified here
  kAbort = 0x08,     // cancel an outstanding command by (cid, attempt tag)
};

inline const char* to_string(NvmeOpcode op) {
  switch (op) {
    case NvmeOpcode::kFlush:
      return "FLUSH";
    case NvmeOpcode::kWrite:
      return "WRITE";
    case NvmeOpcode::kRead:
      return "READ";
    case NvmeOpcode::kIdentify:
      return "IDENTIFY";
    case NvmeOpcode::kAbort:
      return "ABORT";
  }
  return "?";
}

/// NVMe completion status codes (generic command set, abbreviated).
enum class NvmeStatus : u16 {
  kSuccess = 0x0,
  kInvalidOpcode = 0x1,
  kInvalidField = 0x2,
  kDataTransferError = 0x4,
  kInternalError = 0x6,
  /// The command was cancelled by an Abort from the host before (or
  /// instead of) executing; no data reached the medium.
  kAbortedByRequest = 0x7,
  /// Not a device status: the transport detected a recoverable fault
  /// (e.g. data-digest mismatch) and the command is safe to replay.
  kTransientTransportError = 0x8,
  /// Not a device error: the target is over a resource budget (staging
  /// bytes, in-flight commands) and rejected the command before it touched
  /// the medium. Retryable after backoff; maps to NVMe's SQ-full /
  /// namespace-resource conditions rather than a data-path failure.
  kQueueFull = 0x9,
  kInvalidNamespace = 0xB,
  kLbaOutOfRange = 0x80,
  kCapacityExceeded = 0x81,
};

/// Submission queue entry (64 bytes on the wire in real NVMe; we keep the
/// semantically relevant fields).
struct NvmeCmd {
  NvmeOpcode opcode = NvmeOpcode::kFlush;
  u16 cid = 0;    ///< command identifier, unique per queue pair
  u32 nsid = 0;   ///< namespace id (1-based)
  u64 slba = 0;   ///< starting logical block address
  u32 nlb = 0;    ///< number of logical blocks, 0's-based per spec (nlb+1 blocks)
  // kAbort only: the victim. abort_gen == 0 matches any attempt of the cid.
  u16 abort_cid = 0;
  u16 abort_gen = 0;

  [[nodiscard]] u64 blocks() const { return static_cast<u64>(nlb) + 1; }
  [[nodiscard]] u64 data_bytes(u32 block_size) const {
    if (opcode == NvmeOpcode::kRead || opcode == NvmeOpcode::kWrite) {
      return blocks() * block_size;
    }
    return 0;
  }
  [[nodiscard]] bool is_write() const { return opcode == NvmeOpcode::kWrite; }
  [[nodiscard]] bool is_read() const { return opcode == NvmeOpcode::kRead; }
};

/// Completion queue entry.
struct NvmeCpl {
  u16 cid = 0;
  NvmeStatus status = NvmeStatus::kSuccess;
  u64 result = 0;

  [[nodiscard]] bool ok() const { return status == NvmeStatus::kSuccess; }
};

}  // namespace oaf::pdu

// Compile-time wire-format contracts for the PDU layer.
//
// Two kinds of guarantee, both enforced at compile time so an innocent
// refactor (reordering fields, widening a counter, adding a virtual) can
// never silently change what peers exchange:
//
//  1. In-memory ABI of the structs that cross address spaces raw — NvmeCmd
//     and NvmeCpl are embedded by value in capsules, parked in shared-memory
//     slots, and copied with memcpy-equivalent moves. They must stay
//     trivially copyable, standard-layout, and bit-for-bit stable
//     (exact sizeof + offsetof).
//
//  2. Serialized width of every fixed-size field the codec writes. The
//     codec is explicitly little-endian field-by-field (never a struct
//     memcpy), so its contract is the per-field byte widths; the constants
//     below are cross-checked against the encoder in codec.cpp and against
//     the member widths here. Variable-length fields (strings, payloads)
//     carry their own u32 length prefix and are excluded from the fixed
//     byte counts.
//
// If a static_assert in this header fires, you are changing the wire or
// shared-memory protocol: bump pdu::kVersion / shm ring kVersion and update
// BOTH peers rather than "fixing" the assert.
#pragma once

#include <cstddef>
#include <type_traits>

#include "pdu/nvme_cmd.h"
#include "pdu/pdu.h"

namespace oaf::pdu {

// ---------------------------------------------------------------------------
// Enum carriers: each enum is serialized by casting to its fixed underlying
// type; the cast width is part of the protocol.
static_assert(sizeof(NvmeOpcode) == 1, "NvmeOpcode travels as u8");
static_assert(sizeof(NvmeStatus) == 2, "NvmeStatus travels as u16");
static_assert(sizeof(PduType) == 1, "PduType travels as u8");
static_assert(sizeof(DataPlacement) == 1, "DataPlacement travels as u8");
static_assert(sizeof(AnaState) == 1, "AnaState travels as u8");

// ---------------------------------------------------------------------------
// NvmeCmd: submission-queue entry, embedded raw in capsules and shm slots.
static_assert(std::is_trivially_copyable_v<NvmeCmd>,
              "NvmeCmd is memcpy'd across address spaces");
static_assert(std::is_standard_layout_v<NvmeCmd>,
              "NvmeCmd layout must be deterministic");
static_assert(sizeof(NvmeCmd) == 24, "NvmeCmd in-memory ABI changed");
static_assert(offsetof(NvmeCmd, opcode) == 0);
static_assert(offsetof(NvmeCmd, cid) == 2);
static_assert(offsetof(NvmeCmd, nsid) == 4);
static_assert(offsetof(NvmeCmd, slba) == 8);
static_assert(offsetof(NvmeCmd, nlb) == 16);
static_assert(offsetof(NvmeCmd, abort_cid) == 20);
static_assert(offsetof(NvmeCmd, abort_gen) == 22);

// NvmeCpl: completion-queue entry, same transport treatment.
static_assert(std::is_trivially_copyable_v<NvmeCpl>,
              "NvmeCpl is memcpy'd across address spaces");
static_assert(std::is_standard_layout_v<NvmeCpl>,
              "NvmeCpl layout must be deterministic");
static_assert(sizeof(NvmeCpl) == 16, "NvmeCpl in-memory ABI changed");
static_assert(offsetof(NvmeCpl, cid) == 0);
static_assert(offsetof(NvmeCpl, status) == 2);
static_assert(offsetof(NvmeCpl, result) == 8);

// ---------------------------------------------------------------------------
// Serialized field widths (bytes on the wire, little-endian). Grouped per
// PDU as written by codec.cpp's encode_header(); codec.cpp static_asserts
// it writes exactly these many fixed bytes per header.
inline constexpr u64 kWireCmdBytes = 1 + 2 + 4 + 8 + 4 + 2 + 2;  // NvmeCmd
inline constexpr u64 kWireCplBytes = 2 + 2 + 8;                  // NvmeCpl
static_assert(kWireCmdBytes == sizeof(NvmeOpcode) + sizeof(NvmeCmd::cid) +
                                   sizeof(NvmeCmd::nsid) +
                                   sizeof(NvmeCmd::slba) +
                                   sizeof(NvmeCmd::nlb) +
                                   sizeof(NvmeCmd::abort_cid) +
                                   sizeof(NvmeCmd::abort_gen),
              "codec field widths diverged from NvmeCmd members");
static_assert(kWireCplBytes == sizeof(NvmeCpl::cid) + sizeof(NvmeStatus) +
                                   sizeof(NvmeCpl::result),
              "codec field widths diverged from NvmeCpl members");

/// Common framing preamble: type u8, flags u8, hlen u16, plen u32.
inline constexpr u64 kWireCommonHeaderBytes = 1 + 1 + 2 + 4;
/// Every variable-length string is prefixed with a u32 byte count.
inline constexpr u64 kWireStrPrefixBytes = 4;

/// Fixed (non-string, non-payload) bytes of each PDU header as serialized.
///
/// Revision history (decoders accept any prefix ending on a revision
/// boundary; encoders always write the newest revision):
///   rev 1 — resilience layer (gen tags, digests, KATO).
///   rev 2 — observability: trace-context feature bit + NTP-style clock
///           echo fields appended to ICReq/ICResp/CapsuleCmd/KeepAlive.
inline constexpr u64 kWireICReqBytesV1 = 2 + 1 + 1 + 4 + 8 + 1 + 1 + 8;
inline constexpr u64 kWireICReqBytes = kWireICReqBytesV1 + 1 + 8;
inline constexpr u64 kWireICRespBytesV1 = 2 + 1 + 4 + 1 + 8 + 4 + 1;
inline constexpr u64 kWireICRespBytesV2 = kWireICRespBytesV1 + 1 + 8 + 8;
///   rev 4 — overload: admission verdict (admitted flag + retry-after hint)
///           appended to ICResp; the reject reason string rides behind it
///           with its own length prefix.
inline constexpr u64 kWireICRespBytes = kWireICRespBytesV2 + 1 + 4;
inline constexpr u64 kWireCapsuleCmdBytesV1 =
    kWireCmdBytes + 1 + 1 + 4 + 8 + 2;
inline constexpr u64 kWireCapsuleCmdBytes = kWireCapsuleCmdBytesV1 + 8 + 8;
inline constexpr u64 kWireCapsuleRespBytes = kWireCplBytes + 8 + 8 + 2;
inline constexpr u64 kWireR2TBytes = 2 + 2 + 8 + 8 + 2;
inline constexpr u64 kWireH2CDataBytes = 2 + 2 + 8 + 8 + 1 + 1 + 4 + 2 + 4;
inline constexpr u64 kWireC2HDataBytes =
    2 + 8 + 8 + 1 + 1 + 1 + 4 + 8 + 8 + 2 + 4;
inline constexpr u64 kWireTermReqFixedBytes = 1 + 2;
/// ShmDemote is its reason string alone — no fixed fields beyond the
/// common header and the string's length prefix.
inline constexpr u64 kWireShmDemoteFixedBytes = 0;
inline constexpr u64 kWireKeepAliveBytesV1 = 1 + 8;
inline constexpr u64 kWireKeepAliveBytes = kWireKeepAliveBytesV1 + 8 + 8;
///   rev 3 — multipath: AnaLog PDU (new type, so no rev-gating needed — an
///           old peer never sends one and ignores ours as "unexpected").
inline constexpr u64 kWireAnaLogFixedBytes = 1 + 8;
///   rev 5 — observability: anomaly-capture fetch PDUs (new types, no
///           rev-gating needed for the same reason as AnaLog). AnomalyResp
///           carries the clock-corrected event array as its payload.
inline constexpr u64 kWireAnomalyReqBytes = 8 + 8 + 8 + 8;
inline constexpr u64 kWireAnomalyRespBytes = 8 + 8 + 4;

}  // namespace oaf::pdu

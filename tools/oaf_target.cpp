// oaf_target — standalone NVMe-oAF storage service.
//
// Listens for NVMe-oAF clients on TCP (control path) and serves an
// in-memory NVMe namespace. Clients whose --token matches this target's
// token are treated as co-located and get a POSIX shared-memory data
// channel (the IVSHMEM stand-in); others transparently use TCP.
//
//   oaf_target --port 4420 --token 42 --capacity-mb 256 --conns 1
//   oaf_perf   --port 4420 --token 42 --io-size-kib 128 --qd 32 --seconds 2
//
// The process exits once every accepted connection has closed.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "af/locality.h"
#include "net/tcp_channel.h"
#include "nvmf/target.h"
#include "sim/real_executor.h"
#include "ssd/real_device.h"

using namespace oaf;

namespace {

struct Options {
  u16 port = 4420;
  u64 token = 42;
  u64 capacity_mb = 256;
  int conns = 1;
  std::string conn_prefix = "oafconn";
};

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = next();
      if (!v) return false;
      opts.port = static_cast<u16>(std::atoi(v));
    } else if (arg == "--token") {
      const char* v = next();
      if (!v) return false;
      opts.token = std::strtoull(v, nullptr, 10);
    } else if (arg == "--capacity-mb") {
      const char* v = next();
      if (!v) return false;
      opts.capacity_mb = std::strtoull(v, nullptr, 10);
    } else if (arg == "--conns") {
      const char* v = next();
      if (!v) return false;
      opts.conns = std::atoi(v);
    } else if (arg == "--conn-prefix") {
      const char* v = next();
      if (!v) return false;
      opts.conn_prefix = v;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: oaf_target [--port N] [--token T] [--capacity-mb M]\n"
      "                  [--conns K] [--conn-prefix P]\n"
      "Serves an in-memory NVMe namespace over NVMe-oAF; exits when all K\n"
      "connections have closed.\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) {
    usage();
    return 2;
  }

  sim::RealExecutor exec;
  net::InlineCopier copier;
  af::ShmBroker broker(opts.token, af::ShmBroker::Backing::kPosixShm);

  ssd::RealDevice device(exec, 512, opts.capacity_mb * kMiB / 512);
  ssd::Subsystem subsystem("nqn.2026-07.io.oaf:target");
  if (auto st = subsystem.add_namespace(1, &device); !st) {
    std::fprintf(stderr, "namespace: %s\n", st.to_string().c_str());
    return 1;
  }

  auto listener_res = net::TcpListener::listen(opts.port);
  if (!listener_res) {
    std::fprintf(stderr, "listen: %s\n", listener_res.status().to_string().c_str());
    return 1;
  }
  auto listener = std::move(listener_res).take();
  std::printf("oaf_target: listening on 127.0.0.1:%u (token %llu, %llu MiB, "
              "%d connection%s)\n",
              listener.port(), static_cast<unsigned long long>(opts.token),
              static_cast<unsigned long long>(opts.capacity_mb), opts.conns,
              opts.conns == 1 ? "" : "s");
  std::fflush(stdout);

  struct Served {
    std::unique_ptr<net::MsgChannel> channel;
    std::unique_ptr<nvmf::NvmfTargetConnection> conn;
  };
  std::vector<Served> served;
  for (int i = 0; i < opts.conns; ++i) {
    auto accepted = listener.accept(exec);
    if (!accepted) {
      std::fprintf(stderr, "accept: %s\n", accepted.status().to_string().c_str());
      return 1;
    }
    Served s;
    s.channel = std::move(accepted).take();
    const std::string conn_name = opts.conn_prefix + std::to_string(i);
    s.conn = std::make_unique<nvmf::NvmfTargetConnection>(
        exec, *s.channel, copier, broker, subsystem,
        nvmf::TargetOptions{af::AfConfig::oaf(), conn_name});
    std::printf("oaf_target: accepted connection %d (%s)\n", i, conn_name.c_str());
    std::fflush(stdout);
    served.push_back(std::move(s));
  }

  // Serve until every client hangs up.
  for (;;) {
    bool any_open = false;
    for (const auto& s : served) any_open |= s.channel->is_open();
    if (!any_open) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  u64 commands = 0;
  for (const auto& s : served) commands += s.conn->commands_served();
  std::printf("oaf_target: all connections closed; served %llu commands\n",
              static_cast<unsigned long long>(commands));
  return 0;
}

// oaf_target — standalone NVMe-oAF storage service.
//
// Listens for NVMe-oAF clients on TCP (control path) and serves an
// in-memory NVMe namespace. Clients whose --token matches this target's
// token are treated as co-located and get a POSIX shared-memory data
// channel (the IVSHMEM stand-in); others transparently use TCP.
//
//   oaf_target --port 4420 --token 42 --capacity-mb 256 --conns 1
//   oaf_perf   --port 4420 --token 42 --io-size-kib 128 --qd 32 --seconds 2
//
// The process exits once every accepted connection has closed.
//
// Observability: SIGUSR1 dumps the metrics registry (Prometheus text — shm
// slot occupancy, resilience counters, per-command totals) to stderr at the
// next poll tick; --stats-interval-ms does the same periodically.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "af/locality.h"
#include "net/tcp_channel.h"
#include "nvmf/target_service.h"
#include "sim/real_executor.h"
#include "ssd/real_device.h"
#include "telemetry/anomaly.h"
#include "telemetry/attribution.h"
#include "telemetry/flight.h"
#include "telemetry/prof/prof.h"
#include "telemetry/stat_server.h"
#include "telemetry/telemetry.h"

using namespace oaf;

namespace {

struct Options {
  u16 port = 4420;
  u64 token = 42;
  u64 capacity_mb = 256;
  int conns = 1;
  std::string conn_prefix = "oafconn";
  u64 kato_ms = 0;  // default KATO; 0 = associations never expire on silence
  u64 orphan_sweep_ms = 0;  // stuck window for no-KATO assocs; 0 = no sweep
  u64 stats_interval_ms = 0;  // periodic metrics dump to stderr; 0 = off
  int stat_port = -1;         // live introspection endpoint; -1 off, 0 = ephemeral
  std::string trace_out;      // Chrome trace_event JSON path; "" = no tracing
  std::string flight_dir;     // arm the flight recorder into DIR; "" = off
  // Overload protection (DESIGN.md §12); all off by default.
  u64 max_conns = 0;          // connect-time admission cap; 0 = unlimited
  u64 max_inflight = 0;       // per-connection in-flight command cap
  u64 max_staging_kib = 0;    // per-connection staging budget
  u64 global_staging_kib = 0; // target-wide staging budget
  std::string shed_policy = "oldest";  // "oldest" | "fair"
  double shed_watermark = 0.9;
  u64 stall_timeout_ms = 0;   // slow-client eviction threshold; 0 = off
  // Tail-latency attribution (DESIGN.md §13). SLO flags arm the target-side
  // watchdog over its own residency (arrival → response); breaches capture
  // locally when --anomaly-dir is set (no reverse fetch — the initiator owns
  // the cross-process capture).
  u64 slo_read_us = 0;        // read residency SLO; 0 = off
  u64 slo_write_us = 0;       // write residency SLO; 0 = off
  std::string anomaly_dir;    // arm retroactive anomaly capture into DIR
  // Continuous profiling (DESIGN.md §15).
  std::string profile_out;    // collapsed-stack output path; "" = sampler off
  u32 profile_hz = 997;       // sampling rate (prime: avoids phase lock)
};

/// Set by SIGUSR1; the serve loop picks it up on its next tick so the dump
/// itself runs on the executor thread (registry callbacks sample live
/// connection state there).
volatile std::sig_atomic_t g_dump_requested = 0;

void on_sigusr1(int) { g_dump_requested = 1; }

void dump_metrics(const char* why) {
  const std::string text = telemetry::metrics().to_prometheus();
  std::fprintf(stderr, "# oaf_target metrics dump (%s)\n", why);
  std::fwrite(text.data(), 1, text.size(), stderr);
  std::fflush(stderr);
}

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = next();
      if (!v) return false;
      opts.port = static_cast<u16>(std::atoi(v));
    } else if (arg == "--token") {
      const char* v = next();
      if (!v) return false;
      opts.token = std::strtoull(v, nullptr, 10);
    } else if (arg == "--capacity-mb") {
      const char* v = next();
      if (!v) return false;
      opts.capacity_mb = std::strtoull(v, nullptr, 10);
    } else if (arg == "--conns") {
      const char* v = next();
      if (!v) return false;
      opts.conns = std::atoi(v);
    } else if (arg == "--conn-prefix") {
      const char* v = next();
      if (!v) return false;
      opts.conn_prefix = v;
    } else if (arg == "--kato-ms") {
      const char* v = next();
      if (!v) return false;
      opts.kato_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--orphan-sweep-ms") {
      const char* v = next();
      if (!v) return false;
      opts.orphan_sweep_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--stats-interval-ms") {
      const char* v = next();
      if (!v) return false;
      opts.stats_interval_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--stat-port") {
      const char* v = next();
      if (!v) return false;
      opts.stat_port = std::atoi(v);
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return false;
      opts.trace_out = v;
    } else if (arg == "--flight-dir") {
      const char* v = next();
      if (!v) return false;
      opts.flight_dir = v;
    } else if (arg == "--max-conns") {
      const char* v = next();
      if (!v) return false;
      opts.max_conns = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-inflight") {
      const char* v = next();
      if (!v) return false;
      opts.max_inflight = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-staging-kib") {
      const char* v = next();
      if (!v) return false;
      opts.max_staging_kib = std::strtoull(v, nullptr, 10);
    } else if (arg == "--global-staging-kib") {
      const char* v = next();
      if (!v) return false;
      opts.global_staging_kib = std::strtoull(v, nullptr, 10);
    } else if (arg == "--shed-policy") {
      const char* v = next();
      if (!v) return false;
      opts.shed_policy = v;
    } else if (arg == "--shed-watermark") {
      const char* v = next();
      if (!v) return false;
      opts.shed_watermark = std::atof(v);
    } else if (arg == "--stall-timeout-ms") {
      const char* v = next();
      if (!v) return false;
      opts.stall_timeout_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--slo-read-us") {
      const char* v = next();
      if (!v) return false;
      opts.slo_read_us = std::strtoull(v, nullptr, 10);
    } else if (arg == "--slo-write-us") {
      const char* v = next();
      if (!v) return false;
      opts.slo_write_us = std::strtoull(v, nullptr, 10);
    } else if (arg == "--anomaly-dir") {
      const char* v = next();
      if (!v) return false;
      opts.anomaly_dir = v;
    } else if (arg == "--profile-out") {
      const char* v = next();
      if (!v) return false;
      opts.profile_out = v;
    } else if (arg == "--profile-hz") {
      const char* v = next();
      if (!v) return false;
      opts.profile_hz = static_cast<u32>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: oaf_target [--port N] [--token T] [--capacity-mb M]\n"
      "                  [--conns K] [--conn-prefix P] [--kato-ms MS]\n"
      "                  [--orphan-sweep-ms MS] [--stats-interval-ms MS]\n"
      "                  [--stat-port N] [--trace-out FILE] [--flight-dir DIR]\n"
      "                  [--max-conns N] [--max-inflight N]\n"
      "                  [--max-staging-kib K] [--global-staging-kib K]\n"
      "                  [--shed-policy oldest|fair] [--shed-watermark F]\n"
      "                  [--stall-timeout-ms MS]\n"
      "                  [--slo-read-us US] [--slo-write-us US]\n"
      "                  [--anomaly-dir DIR]\n"
      "                  [--profile-out FILE] [--profile-hz HZ]\n"
      "Serves an in-memory NVMe namespace over NVMe-oAF; exits when all K\n"
      "associations have closed or expired their keep-alive timeout.\n"
      "SIGUSR1 dumps the metrics registry to stderr.\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) {
    usage();
    return 2;
  }

  if (!opts.trace_out.empty()) telemetry::tracer().set_enabled(true);
  if (!opts.flight_dir.empty()) {
    telemetry::flight().install({opts.flight_dir, /*fatal_signals=*/true});
  }
  // Target-side attribution is always on (feeds the heat/top stat verbs);
  // the SLO watchdog over target residency stays off until the flags arm it.
  {
    telemetry::AttributionOptions aopts;
    aopts.slo_read_ns = static_cast<DurNs>(opts.slo_read_us) * 1'000;
    aopts.slo_write_ns = static_cast<DurNs>(opts.slo_write_us) * 1'000;
    telemetry::attribution().configure(aopts);
  }
  if (!opts.anomaly_dir.empty()) {
    telemetry::AnomalyOptions an;
    an.dir = opts.anomaly_dir;
    telemetry::anomaly().configure(an);
  }

  // Cycle accounting is always on (it is what makes `oaf_stat prof` report
  // live cycles/IO); the sampling profiler is opt-in via --profile-out.
  telemetry::prof::cycle_ledger().set_enabled(true);

  sim::RealExecutor exec;
  net::InlineCopier copier;
  af::ShmBroker broker(opts.token, af::ShmBroker::Backing::kPosixShm);

  if (!opts.profile_out.empty()) {
    auto& prof = telemetry::prof::profiler();
    if (auto st = prof.register_this_thread("main"); !st) {
      std::fprintf(stderr, "oaf_target: profiler: %s\n",
                   st.to_string().c_str());
    }
    std::atomic<bool> registered{false};
    exec.post([&] {
      (void)prof.register_this_thread("reactor");
      registered = true;
    });
    while (!registered.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    telemetry::prof::ProfilerOptions popts;
    popts.sample_hz = opts.profile_hz;
    if (auto st = prof.start(popts); !st) {
      std::fprintf(stderr, "oaf_target: profiler: %s\n",
                   st.to_string().c_str());
    } else {
      std::fprintf(stderr, "oaf_target: sampling at %u Hz -> %s\n",
                   opts.profile_hz, opts.profile_out.c_str());
    }
  }

  ssd::RealDevice device(exec, 512, opts.capacity_mb * kMiB / 512);
  ssd::Subsystem subsystem("nqn.2026-07.io.oaf:target");
  if (auto st = subsystem.add_namespace(1, &device); !st) {
    std::fprintf(stderr, "namespace: %s\n", st.to_string().c_str());
    return 1;
  }

  auto listener_res = net::TcpListener::listen(opts.port);
  if (!listener_res) {
    std::fprintf(stderr, "listen: %s\n", listener_res.status().to_string().c_str());
    return 1;
  }
  auto listener = std::move(listener_res).take();
  std::printf("oaf_target: listening on 127.0.0.1:%u (token %llu, %llu MiB, "
              "%d connection%s)\n",
              listener.port(), static_cast<unsigned long long>(opts.token),
              static_cast<unsigned long long>(opts.capacity_mb), opts.conns,
              opts.conns == 1 ? "" : "s");
  std::fflush(stdout);

  nvmf::TargetServiceOptions sopts;
  sopts.af = af::AfConfig::oaf();
  sopts.default_kato_ns = static_cast<DurNs>(opts.kato_ms) * 1'000'000;
  sopts.orphan_slot_timeout_ns =
      static_cast<DurNs>(opts.orphan_sweep_ms) * 1'000'000;
  sopts.max_conns = static_cast<u32>(opts.max_conns);
  sopts.max_inflight_cmds = static_cast<u32>(opts.max_inflight);
  sopts.max_staging_bytes = opts.max_staging_kib * 1024;
  sopts.global_staging_bytes = opts.global_staging_kib * 1024;
  sopts.shed_policy = nvmf::parse_shed_policy(opts.shed_policy);
  sopts.shed_watermark = opts.shed_watermark;
  sopts.stall_timeout_ns = static_cast<DurNs>(opts.stall_timeout_ms) * 1'000'000;
  nvmf::NvmfTargetService service(exec, copier, broker, subsystem, sopts);

  for (int i = 0; i < opts.conns;) {
    auto accepted = listener.accept(exec);
    if (!accepted) {
      std::fprintf(stderr, "accept: %s\n", accepted.status().to_string().c_str());
      return 1;
    }
    const std::string conn_name = opts.conn_prefix + std::to_string(i);
    nvmf::NvmfTargetConnection* conn =
        service.accept(std::move(accepted).take(), conn_name);
    if (conn->connect_rejected()) {
      // A dial past --max-conns got its ICResp{admitted=false} verdict; it
      // must not consume a --conns slot, or the listener would go dark
      // before the rejected client's re-dial can be admitted.
      continue;
    }
    std::printf("oaf_target: accepted connection %d (%s)\n", i, conn_name.c_str());
    std::fflush(stdout);
    ++i;
  }

  std::signal(SIGUSR1, on_sigusr1);

  // Live introspection endpoint (opt-in). The conns provider walks service
  // state owned by the executor thread, so it posts there and waits.
  telemetry::StatServer stat;
  if (opts.stat_port >= 0) {
    stat.handle("metrics", [] { return telemetry::metrics().to_prometheus(); });
    stat.handle("trace", [] { return telemetry::tracer().to_chrome_json(); });
    // prof_json reads only atomics/registry handles — safe off-executor.
    stat.handle("prof", [] { return telemetry::prof::prof_json(); });
    stat.handle("heat", [&exec] {
      return telemetry::attribution().heat_json(exec.now());
    });
    stat.handle("top", [&exec] {
      return telemetry::attribution().top_json(exec.now());
    });
    stat.handle("conns", [&exec, &service]() -> std::string {
      std::string out;
      std::atomic<bool> ready{false};
      exec.post([&] {
        out = service.conns_json();
        ready = true;
      });
      while (!ready.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return out;
    });
    if (auto st = stat.start(static_cast<u16>(opts.stat_port)); !st) {
      std::fprintf(stderr, "stat server: %s\n", st.to_string().c_str());
      return 1;
    }
    std::printf("oaf_target: stat server on 127.0.0.1:%u\n", stat.port());
    std::fflush(stdout);
  }

  // Serve until every association has hung up or been reaped. Reaping must
  // run on the executor thread — it destroys connections whose callbacks
  // run there — and so must metrics dumps: the registry's callback gauges
  // sample live connection state.
  u64 commands = 0;
  auto last_dump = std::chrono::steady_clock::now();
  for (;;) {
    std::atomic<bool> polled{false};
    std::size_t active = 0;
    const char* why = nullptr;
    if (g_dump_requested != 0) {
      g_dump_requested = 0;
      why = "SIGUSR1";
    } else if (opts.stats_interval_ms > 0) {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_dump >= std::chrono::milliseconds(opts.stats_interval_ms)) {
        last_dump = now;
        why = "periodic";
      }
    }
    exec.post([&] {
      service.reap_expired();
      service.sweep_orphan_slots();
      service.overload_tick();
      active = service.active();
      commands = service.commands_served();
      if (why != nullptr) dump_metrics(why);
      polled = true;
    });
    while (!polled.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (active == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  if (!opts.profile_out.empty()) {
    auto& prof = telemetry::prof::profiler();
    prof.stop();
    if (prof.write_collapsed(opts.profile_out)) {
      std::fprintf(
          stderr,
          "oaf_target: profile written to %s (%llu samples, %llu dropped)\n",
          opts.profile_out.c_str(),
          static_cast<unsigned long long>(prof.samples_total()),
          static_cast<unsigned long long>(prof.dropped_total()));
    } else {
      std::fprintf(stderr, "oaf_target: failed to write profile to %s\n",
                   opts.profile_out.c_str());
    }
  }

  if (!opts.trace_out.empty()) {
    if (telemetry::tracer().write_chrome_json(opts.trace_out)) {
      std::fprintf(stderr,
                   "oaf_target: trace written to %s (%llu events, %llu dropped)\n",
                   opts.trace_out.c_str(),
                   static_cast<unsigned long long>(telemetry::tracer().size()),
                   static_cast<unsigned long long>(telemetry::tracer().dropped()));
    } else {
      std::fprintf(stderr, "oaf_target: failed to write trace to %s\n",
                   opts.trace_out.c_str());
    }
  }

  std::printf("oaf_target: all associations closed; served %llu commands "
              "(%llu association%s reaped)\n",
              static_cast<unsigned long long>(commands),
              static_cast<unsigned long long>(service.reaped()),
              service.reaped() == 1 ? "" : "s");
  return 0;
}

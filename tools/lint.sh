#!/usr/bin/env bash
# Repo lint driver: clang-tidy over first-party translation units.
#
#   tools/lint.sh [build-dir] [--changed[=BASE]]
#
# Default scope is every TU under src/ and tools/. --changed narrows it to
# the .cpp files touched since BASE (default: origin/main, falling back to
# main) plus the TUs whose directory owns a touched header — the
# quick pre-push loop; CI still runs the full sweep on main.
#
# Requires a build directory configured with CMAKE_EXPORT_COMPILE_COMMANDS=ON
# (the CI lint job does this; locally: cmake -B build -S .
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON). Every finding is an error — the
# .clang-tidy config at the repo root sets WarningsAsErrors and documents
# which checks are enabled and why.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="build"
CHANGED_BASE=""
CHANGED_ONLY=0

for arg in "$@"; do
  case "${arg}" in
    --changed) CHANGED_ONLY=1 ;;
    --changed=*) CHANGED_ONLY=1; CHANGED_BASE="${arg#--changed=}" ;;
    --*)
      echo "lint.sh: unknown flag ${arg}" >&2
      exit 2
      ;;
    *) BUILD_DIR="${arg}" ;;
  esac
done

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint.sh: clang-tidy not found in PATH" >&2
  echo "lint.sh: install clang-tidy (>= 14) or run the CI lint job" >&2
  exit 2
fi
if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "lint.sh: ${BUILD_DIR}/compile_commands.json missing" >&2
  echo "lint.sh: configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

# First-party TUs only: library code and the CLI tools. Tests and benches
# are exercised by the test jobs; generated/third-party code has no place
# in the compile DB for these globs.
mapfile -t FILES < <(find src tools -name '*.cpp' | sort)

if [ "${CHANGED_ONLY}" -eq 1 ]; then
  if [ -z "${CHANGED_BASE}" ]; then
    if git rev-parse --verify -q origin/main >/dev/null; then
      CHANGED_BASE="origin/main"
    else
      CHANGED_BASE="main"
    fi
  fi
  mapfile -t TOUCHED < <(
    { git diff --name-only "${CHANGED_BASE}"...HEAD -- src tools
      git diff --name-only HEAD -- src tools
      git ls-files --others --exclude-standard -- src tools
    } | sort -u)
  # A touched header lints through the TUs of its own directory — the
  # cheapest over-approximation of its include closure that still catches
  # header-only regressions without a full-tree run.
  declare -A WANT=()
  for f in "${TOUCHED[@]}"; do
    case "${f}" in
      *.cpp) WANT["${f}"]=1 ;;
      *.h)
        dir=$(dirname "${f}")
        for tu in "${FILES[@]}"; do
          [[ "${tu}" == "${dir}"/*.cpp ]] && WANT["${tu}"]=1
        done
        ;;
    esac
  done
  FILES=()
  for tu in "${!WANT[@]}"; do
    [ -f "${tu}" ] && FILES+=("${tu}")
  done
  if [ "${#FILES[@]}" -eq 0 ]; then
    echo "lint.sh: no first-party TUs changed vs ${CHANGED_BASE}; clean"
    exit 0
  fi
  mapfile -t FILES < <(printf '%s\n' "${FILES[@]}" | sort)
  echo "lint.sh: --changed vs ${CHANGED_BASE}"
fi

echo "lint.sh: clang-tidy over ${#FILES[@]} translation units"
clang-tidy -p "${BUILD_DIR}" --quiet "${FILES[@]}"
echo "lint.sh: clean"

#!/usr/bin/env bash
# Repo lint driver: clang-tidy over all first-party translation units.
#
#   tools/lint.sh [build-dir]
#
# Requires a build directory configured with CMAKE_EXPORT_COMPILE_COMMANDS=ON
# (the CI lint job does this; locally: cmake -B build -S .
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON). Every finding is an error — the
# .clang-tidy config at the repo root sets WarningsAsErrors and documents
# which checks are enabled and why.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint.sh: clang-tidy not found in PATH" >&2
  echo "lint.sh: install clang-tidy (>= 14) or run the CI lint job" >&2
  exit 2
fi
if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "lint.sh: ${BUILD_DIR}/compile_commands.json missing" >&2
  echo "lint.sh: configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

# First-party TUs only: library code and the CLI tools. Tests and benches
# are exercised by the test jobs; generated/third-party code has no place
# in the compile DB for these globs.
mapfile -t FILES < <(find src tools -name '*.cpp' | sort)

echo "lint.sh: clang-tidy over ${#FILES[@]} translation units"
clang-tidy -p "${BUILD_DIR}" --quiet "${FILES[@]}"
echo "lint.sh: clean"

// oaf_storm: seeded, replayable overload soak (DESIGN.md §12).
//
// A deterministic virtual-time session that drives one NvmfTargetService far
// past its configured budgets and proves the overload layer degrades
// gracefully instead of falling over:
//
//   - N greedy clients, each pushing a closed-loop write storm at several
//     times the target's admitted queue depth (kQueueFull backpressure),
//   - one slow client that wins admission and then never delivers its data
//     (stall detection -> eviction -> recovery -> replay),
//   - one client beyond the connect admission cap (explicit ICResp reject),
//   - a mid-soak cable kill on one greedy client's channel
//     (net::FaultChannel::kill_at, reconnect + replay under pressure).
//
// Invariants checked at the end of the run — any violation is counted in
// `invariants_failed` and fails the process:
//
//   1. every submitted I/O completed exactly once (no lost, no duplicated),
//   2. no I/O failed (backpressure is retryable, never an error),
//   3. the global staging budget's peak never exceeded its capacity,
//   4. every staging charge was released (in_use == 0 when quiescent),
//   5. the overload machinery actually engaged (rejects/evictions > 0).
//
// Every completion is folded into an order-sensitive FNV-1a sequence hash;
// the same --seed must reproduce the same hash bit-for-bit, which CI checks
// by running the soak twice. Output is a single JSON object on stdout.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/log.h"
#include "net/fault_channel.h"
#include "net/pipe_channel.h"
#include "nvmf/initiator.h"
#include "nvmf/target_service.h"
#include "sim/scheduler.h"
#include "ssd/real_device.h"

using namespace oaf;

namespace {

struct Options {
  u64 seed = 42;
  u64 clients = 4;        // greedy writers
  u64 ios_per_client = 200;
  u64 queue_depth = 16;   // per greedy client (admitted cap is far lower)
  u64 max_inflight = 4;   // per-connection admitted command cap
  u64 global_staging_kib = 64;
  u64 kill_at_pdu = 500;  // cable kill on client 0's first channel
  std::string shed_policy = "oldest";
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed N] [--clients N] [--ios N] [--qd N]\n"
      "          [--max-inflight N] [--global-staging-kib N]\n"
      "          [--kill-at-pdu N] [--shed-policy oldest|fair]\n",
      argv0);
}

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    const char* v = nullptr;
    if (arg == "--seed" && (v = value())) {
      opts.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--clients" && (v = value())) {
      opts.clients = std::strtoull(v, nullptr, 10);
    } else if (arg == "--ios" && (v = value())) {
      opts.ios_per_client = std::strtoull(v, nullptr, 10);
    } else if (arg == "--qd" && (v = value())) {
      opts.queue_depth = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-inflight" && (v = value())) {
      opts.max_inflight = std::strtoull(v, nullptr, 10);
    } else if (arg == "--global-staging-kib" && (v = value())) {
      opts.global_staging_kib = std::strtoull(v, nullptr, 10);
    } else if (arg == "--kill-at-pdu" && (v = value())) {
      opts.kill_at_pdu = std::strtoull(v, nullptr, 10);
    } else if (arg == "--shed-policy" && (v = value())) {
      opts.shed_policy = v;
    } else {
      usage(argv[0]);
      return false;
    }
  }
  return opts.clients > 0 && opts.ios_per_client > 0 && opts.queue_depth > 0;
}

/// Order-sensitive FNV-1a over the completion stream: same seed, same
/// admission/shed/retry interleaving, same hash.
struct SequenceHash {
  u64 h = 0xcbf29ce484222325ULL;
  void fold(u64 v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
};

/// Closed-loop greedy writer: keeps `queue_depth` writes outstanding until
/// its quota is spent, tallying per-I/O completion counts for the
/// exactly-once ledger.
struct GreedyClient {
  nvmf::NvmfInitiator* init = nullptr;
  u64 id = 0;
  u64 quota = 0;
  u64 qd = 0;
  u64 issued = 0;
  u64 ok = 0;
  u64 failed = 0;
  std::vector<u32> fires;      // per-I/O completion count
  std::vector<u8> payload;
  SequenceHash* hash = nullptr;
  u64* completion_counter = nullptr;

  void pump() {
    while (issued < quota && issued - (ok + failed) < qd) {
      const u64 idx = issued++;
      // Disjoint LBA ranges per client; 8 blocks per 4 KiB I/O.
      const u64 slba = (id * quota + idx) * 8;
      init->write(1, slba, payload, [this, idx](nvmf::NvmfInitiator::IoResult r) {
        fires[idx]++;
        (r.ok() ? ok : failed)++;
        hash->fold((id << 32) | idx);
        hash->fold(static_cast<u64>(r.cpl.status));
        hash->fold((*completion_counter)++);
        pump();
      });
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return 2;

  sim::Scheduler sched;
  net::InlineCopier copier;
  af::ShmBroker broker(1);
  ssd::RealDevice device(sched, 512, 1 << 20);
  ssd::Subsystem subsystem("nqn.storm");
  (void)subsystem.add_namespace(1, &device);

  nvmf::TargetServiceOptions sopts;
  sopts.af = af::AfConfig::oaf();
  sopts.max_conns = static_cast<u32>(opts.clients) + 1;  // greedy + slow
  sopts.reject_retry_after_ms = 1;
  sopts.max_inflight_cmds = static_cast<u32>(opts.max_inflight);
  sopts.global_staging_bytes = opts.global_staging_kib * 1024;
  sopts.shed_policy = nvmf::parse_shed_policy(opts.shed_policy);
  sopts.stall_timeout_ns = 5'000'000;  // 5 ms virtual: slow client dies fast
  nvmf::NvmfTargetService service(sched, copier, broker, subsystem, sopts);

  // Deterministic fault seeds derive from --seed; dial order is fixed by
  // the virtual-time scheduler, so each dial's channel is reproducible.
  u64 dials = 0;
  auto dial = [&](const std::string& name,
                  bool kill_first) -> std::unique_ptr<net::MsgChannel> {
    dials++;
    net::FaultPolicy p;
    p.seed = opts.seed + dials * 1000;
    auto [c, t] =
        net::wrap_fault_pair(net::make_pipe_channel_pair(sched, sched), p);
    net::FaultChannel* raw = c.get();
    service.accept(std::move(t), name);
    if (kill_first) raw->kill_at(opts.kill_at_pdu);
    return std::move(c);
  };

  auto storm_iopts = [&](const std::string& name) {
    nvmf::InitiatorOptions iopts;
    iopts.af = af::AfConfig::stock_tcp();
    iopts.queue_depth = static_cast<u32>(opts.queue_depth);
    iopts.connection_name = name;
    iopts.reconnect.max_attempts = 20;
    iopts.reconnect.initial_backoff_ns = 1'000'000;
    iopts.reconnect.handshake_timeout_ns = 10'000'000;
    iopts.reconnect.max_command_retries = 128;
    iopts.command_timeout_ns = 50'000'000;
    return iopts;
  };

  SequenceHash hash;
  u64 completion_counter = 0;

  // Greedy writers. Client 0's *first* channel gets the mid-soak cable
  // kill; its reconnect replays the displaced writes under full pressure.
  std::vector<std::unique_ptr<nvmf::NvmfInitiator>> inits;
  std::vector<GreedyClient> clients(opts.clients);
  for (u64 i = 0; i < opts.clients; ++i) {
    const std::string name = "storm.c" + std::to_string(i);
    u64 client_dials = 0;
    inits.push_back(std::make_unique<nvmf::NvmfInitiator>(
        sched,
        [&dial, name, i, client_dials]() mutable {
          client_dials++;
          return dial(name, i == 0 && client_dials == 1);
        },
        copier, broker, storm_iopts(name)));
    GreedyClient& c = clients[i];
    c.init = inits.back().get();
    c.id = i;
    c.quota = opts.ios_per_client;
    c.qd = opts.queue_depth;
    c.fires.assign(opts.ios_per_client, 0);
    c.payload.assign(4096, static_cast<u8>(0xA0 + i));
    c.hash = &hash;
    c.completion_counter = &completion_counter;
    c.init->connect([](Status) {});
  }

  // The slow client: admitted, then drops every H2CData PDU of its 32 KiB
  // write — the stalled command squats on target state until the overload
  // tick evicts the association; the fresh post-eviction channel (no fault)
  // replays it to completion.
  u64 slow_dials = 0;
  auto slow_init = std::make_unique<nvmf::NvmfInitiator>(
      sched,
      [&dial, slow_dials]() mutable -> std::unique_ptr<net::MsgChannel> {
        slow_dials++;
        auto c = dial("storm.slow", false);
        if (slow_dials == 1) {
          static_cast<net::FaultChannel*>(c.get())->set_fault(
              [](pdu::Pdu& p) { return p.type() != pdu::PduType::kH2CData; });
        }
        return c;
      },
      copier, broker, storm_iopts("storm.slow"));
  u32 slow_fires = 0;
  u64 slow_ok = 0;
  std::vector<u8> slow_payload(32768, 0x5C);
  slow_init->connect([](Status) {});

  // One client past the connect cap: admission control answers with an
  // explicit retryable verdict and the client gives up (no reconnect).
  nvmf::InitiatorOptions extra_iopts = storm_iopts("storm.extra");
  extra_iopts.reconnect.max_attempts = 0;
  auto extra_init = std::make_unique<nvmf::NvmfInitiator>(
      sched, [&dial] { return dial("storm.extra", false); }, copier, broker,
      extra_iopts);
  bool extra_rejected = false;

  // Choreography, all in virtual time: connect everyone, launch the storm,
  // and run the overload tick (stall eviction + shed ladder) every 1 ms
  // until the soak drains.
  sched.run();
  bool draining = false;
  std::function<void()> tick = [&] {
    service.overload_tick();
    if (!draining) sched.schedule_after(1'000'000, tick);
  };
  sched.schedule_after(1'000'000, [&] {
    for (auto& c : clients) c.pump();
    slow_init->write(1, 1 << 16, slow_payload,
                     [&](nvmf::NvmfInitiator::IoResult r) {
                       slow_fires++;
                       if (r.ok()) slow_ok++;
                       hash.fold(0x5103ULL << 32);
                       hash.fold(static_cast<u64>(r.cpl.status));
                       hash.fold(completion_counter++);
                     });
    extra_init->connect([&](Status st) {
      extra_rejected = !st.is_ok();
    });
    tick();
  });

  // Drain watchdog: once every ledger entry is resolved, stop re-arming the
  // tick so the virtual run can quiesce.
  std::function<void()> watch = [&] {
    u64 resolved = 0;
    for (const auto& c : clients) resolved += c.ok + c.failed;
    const bool all_done =
        resolved == opts.clients * opts.ios_per_client && slow_fires > 0;
    if (all_done) {
      draining = true;
      return;
    }
    sched.schedule_after(1'000'000, watch);
  };
  sched.schedule_after(2'000'000, watch);
  sched.run();

  // --- ledger + invariants -------------------------------------------------
  u64 completed = 0;
  u64 failed = 0;
  u64 lost = 0;
  u64 duplicated = 0;
  for (const auto& c : clients) {
    completed += c.ok;
    failed += c.failed;
    for (const u32 f : c.fires) {
      if (f == 0) lost++;
      if (f > 1) duplicated++;
    }
  }
  completed += slow_ok;
  if (slow_fires == 0) lost++;
  if (slow_fires > 1) duplicated++;

  u64 queue_full_received = 0;
  u64 queue_full_retries = 0;
  for (const auto& init : inits) {
    queue_full_received += init->resilience().queue_full_received;
    queue_full_retries += init->resilience().queue_full_retries;
  }
  const af::ResourceBudget& budget = service.global_staging();

  u64 invariants_failed = 0;
  auto check = [&](bool okay, const char* what) {
    if (!okay) {
      invariants_failed++;
      std::fprintf(stderr, "INVARIANT FAILED: %s\n", what);
    }
  };
  check(lost == 0, "every submitted I/O completed");
  check(duplicated == 0, "no I/O completed twice");
  check(failed == 0, "backpressure never surfaced as an error");
  check(slow_ok == 1, "the evicted slow client's write replayed to success");
  check(budget.peak() <= budget.capacity(), "staging peak within budget");
  check(budget.in_use() == 0, "all staging charges released");
  check(service.queue_full_rejects() > 0, "kQueueFull backpressure engaged");
  check(queue_full_retries > 0, "initiators retried through kQueueFull");
  check(service.evictions() > 0, "the slow client was evicted");
  check(extra_rejected && service.connects_rejected() > 0,
        "the over-cap client was rejected at connect");

  // Fold the end-state counters in too: a run that completed the same I/Os
  // via a different admission/shed sequence must still hash differently.
  hash.fold(service.queue_full_rejects());
  hash.fold(service.commands_shed());
  hash.fold(service.evictions());
  hash.fold(service.connects_rejected());

  std::printf(
      "{\"schema\":\"oaf-storm-v1\",\"seed\":%llu,\"clients\":%llu,"
      "\"ios_per_client\":%llu,\"queue_depth\":%llu,"
      "\"shed_policy\":\"%s\",\"completed\":%llu,\"failed\":%llu,"
      "\"lost\":%llu,\"duplicated\":%llu,"
      "\"queue_full_rejects\":%llu,\"queue_full_received\":%llu,"
      "\"queue_full_retries\":%llu,\"commands_shed\":%llu,"
      "\"evictions\":%llu,\"connects_rejected\":%llu,"
      "\"staging_peak_bytes\":%llu,\"staging_capacity_bytes\":%llu,"
      "\"staging_in_use_end\":%llu,\"virtual_ns\":%llu,"
      "\"invariants_failed\":%llu,\"sequence_hash\":\"%016llx\"}\n",
      static_cast<unsigned long long>(opts.seed),
      static_cast<unsigned long long>(opts.clients),
      static_cast<unsigned long long>(opts.ios_per_client),
      static_cast<unsigned long long>(opts.queue_depth),
      opts.shed_policy.c_str(),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(lost),
      static_cast<unsigned long long>(duplicated),
      static_cast<unsigned long long>(service.queue_full_rejects()),
      static_cast<unsigned long long>(queue_full_received),
      static_cast<unsigned long long>(queue_full_retries),
      static_cast<unsigned long long>(service.commands_shed()),
      static_cast<unsigned long long>(service.evictions()),
      static_cast<unsigned long long>(service.connects_rejected()),
      static_cast<unsigned long long>(budget.peak()),
      static_cast<unsigned long long>(budget.capacity()),
      static_cast<unsigned long long>(budget.in_use()),
      static_cast<unsigned long long>(sched.now()),
      static_cast<unsigned long long>(invariants_failed),
      static_cast<unsigned long long>(hash.h));
  return invariants_failed == 0 ? 0 : 1;
}

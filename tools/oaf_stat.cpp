// oaf_stat — query a live oaf_target / oaf_perf introspection endpoint.
//
//   oaf_stat --port N [command]
//
// Sends one line-protocol command (default "help") to 127.0.0.1:N and
// prints the response. Standard commands: metrics (Prometheus text), conns
// (per-connection JSON), trace (Chrome trace JSON snapshot), heat (windowed
// per-stage latency heatmap), top (slowest I/Os per window with stage
// breakdowns), prof (profiling plane: reactor health, cycles/IO by cost
// center, allocation ledger, sampler status), help.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "telemetry/stat_server.h"

using namespace oaf;

int main(int argc, char** argv) {
  u16 port = 0;
  std::string command = "help";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = static_cast<u16>(std::atoi(argv[++i]));
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr, "usage: oaf_stat --port N [command]\n");
      return 2;
    } else {
      command = arg;
    }
  }
  if (port == 0) {
    std::fprintf(stderr, "usage: oaf_stat --port N [command]\n");
    return 2;
  }
  auto resp = telemetry::stat_query(port, command);
  if (!resp) {
    std::fprintf(stderr, "oaf_stat: %s\n", resp.status().to_string().c_str());
    return 1;
  }
  std::fwrite(resp.value().data(), 1, resp.value().size(), stdout);
  if (!resp.value().empty() && resp.value().back() != '\n') std::putchar('\n');
  return 0;
}

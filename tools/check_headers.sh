#!/usr/bin/env bash
# Header self-sufficiency gate: every first-party header must compile as its
# own translation unit (all of its includes stated, no hidden ordering
# dependency on whoever happened to include it first).
#
#   tools/check_headers.sh [compiler]
#
# Compiler defaults to $CXX, then c++. Exit 0 when every header compiles,
# 1 with a per-header error listing otherwise. oaflint's header-hygiene rule
# covers the structural half (#pragma once, no relative includes); this
# covers the semantic half by actually compiling each header standalone.
set -uo pipefail

cd "$(dirname "$0")/.."
CXX_BIN="${1:-${CXX:-c++}}"

if ! command -v "${CXX_BIN}" >/dev/null 2>&1; then
  echo "check_headers.sh: compiler '${CXX_BIN}' not found" >&2
  exit 2
fi

mapfile -t HEADERS < <(find src -name '*.h' | sort)

fails=0
for h in "${HEADERS[@]}"; do
  # Compile the header itself as a TU; -fsyntax-only keeps it fast and
  # object-free. -I src mirrors the build's single include root.
  if ! out=$("${CXX_BIN}" -std=c++20 -fsyntax-only -x c++ -I src \
             -Wall -Wextra "$h" 2>&1); then
    echo "check_headers.sh: ${h} is not self-sufficient:" >&2
    echo "${out}" | head -15 >&2
    fails=$((fails + 1))
  fi
done

if [ "${fails}" -ne 0 ]; then
  echo "check_headers.sh: ${fails}/${#HEADERS[@]} headers failed" >&2
  exit 1
fi
echo "check_headers.sh: all ${#HEADERS[@]} headers are self-sufficient"

// bench_compare — diff two oaf-bench-v1 documents and gate on regressions.
//
//   bench_compare baseline.json candidate.json [--threshold-pct P]
//
// Compares the flat "metrics" maps: every metric present in the baseline
// must exist in the candidate, and its relative delta must stay within the
// threshold (default 10%). Deltas are judged in both directions — a large
// "improvement" in a deterministic simulation means the model changed and
// the baseline needs a deliberate refresh, not a silent pass.
//
// Exit status: 0 in-threshold, 1 regression/missing metric, 2 usage or
// parse error. CI runs this against the committed bench/BENCH_smoke.json.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/json_parse.h"

using namespace oaf;

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// Load the "metrics" map of one oaf-bench-v1 document.
bool load_metrics(const std::string& path,
                  std::map<std::string, double>* out, std::string* bench) {
  std::string text;
  if (!read_file(path, &text)) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path.c_str());
    return false;
  }
  auto doc = json_parse(text);
  if (!doc) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(),
                 doc.status().to_string().c_str());
    return false;
  }
  const JsonValue& root = doc.value();
  if (root["schema"].as_string() != "oaf-bench-v1") {
    std::fprintf(stderr, "bench_compare: %s: not an oaf-bench-v1 document\n",
                 path.c_str());
    return false;
  }
  *bench = root["bench"].as_string();
  for (const auto& [key, value] : root["metrics"].members()) {
    out->emplace(key, value.as_double());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string base_path;
  std::string cand_path;
  double threshold_pct = 10.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold-pct" && i + 1 < argc) {
      threshold_pct = std::strtod(argv[++i], nullptr);
    } else if (base_path.empty()) {
      base_path = arg;
    } else if (cand_path.empty()) {
      cand_path = arg;
    } else {
      std::fprintf(stderr, "usage: bench_compare baseline.json candidate.json"
                           " [--threshold-pct P]\n");
      return 2;
    }
  }
  if (cand_path.empty()) {
    std::fprintf(stderr, "usage: bench_compare baseline.json candidate.json"
                         " [--threshold-pct P]\n");
    return 2;
  }

  std::map<std::string, double> base;
  std::map<std::string, double> cand;
  std::string base_bench;
  std::string cand_bench;
  if (!load_metrics(base_path, &base, &base_bench) ||
      !load_metrics(cand_path, &cand, &cand_bench)) {
    return 2;
  }
  if (base_bench != cand_bench) {
    std::fprintf(stderr,
                 "bench_compare: comparing different benches (%s vs %s)\n",
                 base_bench.c_str(), cand_bench.c_str());
    return 2;
  }

  int violations = 0;
  for (const auto& [key, base_v] : base) {
    const auto it = cand.find(key);
    if (it == cand.end()) {
      std::printf("MISSING  %-60s (baseline %.3f)\n", key.c_str(), base_v);
      violations++;
      continue;
    }
    const double cand_v = it->second;
    const double denom = std::fabs(base_v) > 1e-12 ? std::fabs(base_v) : 1.0;
    const double delta_pct = 100.0 * (cand_v - base_v) / denom;
    const bool bad = std::fabs(delta_pct) > threshold_pct;
    if (bad) violations++;
    std::printf("%s %-60s %12.3f -> %12.3f  (%+.2f%%)\n",
                bad ? "FAIL    " : "ok      ", key.c_str(), base_v, cand_v,
                delta_pct);
  }
  for (const auto& [key, v] : cand) {
    if (base.find(key) == base.end()) {
      std::printf("new      %-60s %12.3f (not in baseline)\n", key.c_str(), v);
    }
  }

  std::printf("bench_compare: %s, %d metric(s) outside +/-%.1f%% of %zu "
              "compared\n",
              violations == 0 ? "PASS" : "FAIL", violations, threshold_pct,
              base.size());
  return violations == 0 ? 0 : 1;
}

// oaflint: dependency-free structural linter for the oaf source tree.
//
// Enforces the repo's cross-file contracts that neither the compiler nor
// clang-tidy can see (DESIGN.md §14):
//
//   pdu-contract        every PduType opcode in src/pdu/pdu.h has a fixed-
//                       size entry in src/pdu/wire_contract.h and a codec
//                       round-trip test in tests/pdu/codec_test.cpp.
//   tel-span-pairing    every tracer()/anomaly-ring .begin( span with a
//                       literal (category, name) has a matching .end(
//                       somewhere in src/ — and vice versa. Spans whose
//                       name is computed (e.g. op_span_name(...)) pair as
//                       wildcards within their category.
//   metric-unit-suffix  counter names end in _total; histogram names end in
//                       a unit (_ns or _bytes); gauge names must not end in
//                       _total (that's a counter).
//   hot-path-hygiene    the data-path translation units must not allocate
//                       with naked `new` or type-erase through
//                       std::function (move-only af::OnceCallback /
//                       MoveFunc are the sanctioned tools there).
//   header-hygiene      every header starts with #pragma once and never
//                       includes through "../" (include paths are rooted
//                       at src/).
//
// Usage: oaflint [--root DIR] [--fix] [--report FILE]
//   exit 0: clean; exit 1: violations found; exit 2: usage/setup error.
//
// --fix rewrites what is mechanically safe: appends the missing unit
// suffix to metric-name literals, inserts a missing #pragma once, and
// synthesizes the matching .end( call for an unpaired literal span begin.
//
// Deliberately a structural (line/token) checker, not a parser: the rules
// key on the narrow idioms this codebase actually uses, which keeps the
// tool dependency-free and fast enough to run on every CI push.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Diag {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string msg;
};

struct Options {
  fs::path root = ".";
  bool fix = false;
  std::string report;
};

std::vector<Diag> g_diags;

void diag(const fs::path& file, size_t line, const char* rule,
          std::string msg) {
  g_diags.push_back({file.generic_string(), line, rule, std::move(msg)});
}

// --- file helpers ---------------------------------------------------------

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool write_file(const fs::path& p, const std::string& content) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return out.good();
}

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

/// Blank out comments (// and /*...*/) across the whole file, preserving
/// line structure and string literals. Used before token scans so `new` in
/// a comment never fires.
std::string strip_comments(const std::string& src) {
  std::string out = src;
  enum { kCode, kLine, kBlock, kStr, kChar } st = kCode;
  for (size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char n = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (st) {
      case kCode:
        if (c == '/' && n == '/') {
          st = kLine;
          out[i] = ' ';
        } else if (c == '/' && n == '*') {
          st = kBlock;
          out[i] = ' ';
        } else if (c == '"') {
          st = kStr;
        } else if (c == '\'') {
          st = kChar;
        }
        break;
      case kLine:
        if (c == '\n') {
          st = kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case kBlock:
        if (c == '*' && n == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case kStr:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          st = kCode;
        }
        break;
      case kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          st = kCode;
        }
        break;
    }
  }
  return out;
}

/// Additionally blank out string/char literals (call on already
/// comment-stripped text) so identifier scans never match inside strings.
std::string strip_strings(const std::string& src) {
  std::string out = src;
  enum { kCode, kStr, kChar } st = kCode;
  for (size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    switch (st) {
      case kCode:
        if (c == '"') {
          st = kStr;
        } else if (c == '\'') {
          st = kChar;
        }
        break;
      case kStr:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < out.size() && out[i + 1] != '\n') out[++i] = ' ';
        } else if (c == '"') {
          st = kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < out.size() && out[i + 1] != '\n') out[++i] = ' ';
        } else if (c == '\'') {
          st = kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

size_t line_of(const std::string& s, size_t pos) {
  return 1 + static_cast<size_t>(std::count(s.begin(), s.begin() +
                                                          static_cast<long>(
                                                              pos),
                                            '\n'));
}

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Find `needle` at position >= from where it is not part of a longer
/// identifier. Returns npos if absent.
size_t find_token(const std::string& s, const std::string& needle,
                  size_t from) {
  for (size_t pos = s.find(needle, from); pos != std::string::npos;
       pos = s.find(needle, pos + 1)) {
    const bool left_ok = pos == 0 || !is_ident(s[pos - 1]);
    const size_t end = pos + needle.size();
    const bool right_ok = end >= s.size() || !is_ident(s[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string::npos;
}

std::vector<fs::path> collect(const fs::path& dir,
                              std::initializer_list<const char*> exts) {
  std::vector<fs::path> out;
  if (!fs::exists(dir)) return out;
  for (const auto& e : fs::recursive_directory_iterator(dir)) {
    if (!e.is_regular_file()) continue;
    const std::string ext = e.path().extension().string();
    for (const char* want : exts) {
      if (ext == want) {
        out.push_back(e.path());
        break;
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// --- rule: pdu-contract ---------------------------------------------------

void check_pdu_contract(const Options& opt) {
  const fs::path pdu_h = opt.root / "src/pdu/pdu.h";
  const fs::path wire_h = opt.root / "src/pdu/wire_contract.h";
  const fs::path codec_t = opt.root / "tests/pdu/codec_test.cpp";
  std::string pdu, wire, codec;
  if (!read_file(pdu_h, pdu) || !read_file(wire_h, wire) ||
      !read_file(codec_t, codec)) {
    diag(pdu_h, 0, "pdu-contract",
         "cannot read pdu.h / wire_contract.h / codec_test.cpp");
    return;
  }
  const std::string code = strip_comments(pdu);
  const size_t en = code.find("enum class PduType");
  if (en == std::string::npos) {
    diag(pdu_h, 0, "pdu-contract", "enum class PduType not found");
    return;
  }
  const size_t open = code.find('{', en);
  const size_t close = code.find('}', open);
  if (open == std::string::npos || close == std::string::npos) {
    diag(pdu_h, line_of(code, en), "pdu-contract", "malformed PduType enum");
    return;
  }
  // Enumerators: identifiers starting with 'k' directly inside the braces.
  std::vector<std::pair<std::string, size_t>> opcodes;  // name, line
  for (size_t i = open + 1; i < close;) {
    while (i < close && !is_ident(code[i])) ++i;
    size_t j = i;
    while (j < close && is_ident(code[j])) ++j;
    if (j > i) {
      const std::string tok = code.substr(i, j - i);
      if (tok.size() > 1 && tok[0] == 'k' &&
          std::isupper(static_cast<unsigned char>(tok[1])) != 0) {
        opcodes.emplace_back(tok.substr(1), line_of(code, i));
      }
      // Skip the value expression up to the next comma.
      i = code.find(',', j);
      if (i == std::string::npos || i > close) break;
      ++i;
    } else {
      break;
    }
  }
  for (const auto& [name, line] : opcodes) {
    // Both TermReq directions share one wire shape.
    std::string wire_name = name;
    if (wire_name == "H2CTermReq" || wire_name == "C2HTermReq") {
      wire_name = "TermReq";
    }
    const std::string a = "kWire" + wire_name + "Bytes";
    const std::string b = "kWire" + wire_name + "FixedBytes";
    if (find_token(wire, a, 0) == std::string::npos &&
        find_token(wire, b, 0) == std::string::npos) {
      diag(pdu_h, line, "pdu-contract",
           "PduType::k" + name + " has no " + a + " / " + b +
               " entry in wire_contract.h");
    }
    std::string test_name = name;
    if (test_name == "H2CTermReq" || test_name == "C2HTermReq") {
      test_name = "TermReq";
    }
    if (codec.find(test_name) == std::string::npos) {
      diag(pdu_h, line, "pdu-contract",
           "PduType::k" + name +
               " has no round-trip coverage in tests/pdu/codec_test.cpp");
    }
  }
}

// --- rule: tel-span-pairing -----------------------------------------------

struct SpanSite {
  fs::path file;
  size_t line = 0;
  std::string cat;   // literal category
  std::string name;  // literal name, or "*" when computed
  size_t call_end = 0;  // offset just past the call's closing ');'
  size_t call_begin = 0;
  std::string call_text;
};

/// Extract the (category, name) literals from a `.begin(` / `.end(` span
/// call starting at `pos` (offset of the opening parenthesis). The first
/// argument is the track expression; category and name are the first two
/// string literals after it.
bool parse_span_call(const std::string& src, size_t paren, SpanSite& out) {
  int depth = 0;
  std::vector<std::string> literals;
  bool computed_name = false;
  size_t i = paren;
  for (; i < src.size(); ++i) {
    const char c = src[i];
    if (c == '(') {
      ++depth;
    } else if (c == ')') {
      --depth;
      if (depth == 0) break;
    } else if (c == '"') {
      std::string lit;
      ++i;
      while (i < src.size() && src[i] != '"') {
        if (src[i] == '\\') ++i;
        lit += src[i];
        ++i;
      }
      if (literals.size() < 2) literals.push_back(lit);
    } else if (depth == 1 && literals.size() == 1 && is_ident(c)) {
      // An identifier where the name literal belongs: computed name.
      computed_name = true;
    }
  }
  if (literals.empty()) return false;
  out.cat = literals[0];
  out.name = literals.size() > 1 ? literals[1]
             : computed_name     ? std::string("*")
                                 : std::string("*");
  out.call_end = i + 1;
  return true;
}

void scan_spans(const fs::path& file, const std::string& raw,
                std::vector<SpanSite>& begins, std::vector<SpanSite>& ends) {
  const std::string code = strip_comments(raw);
  for (const char* kind : {".begin(", ".end("}) {
    for (size_t pos = code.find(kind); pos != std::string::npos;
         pos = code.find(kind, pos + 1)) {
      // Only tracer()/ring() span calls — anchor on the receiver.
      const size_t ls = code.rfind('\n', pos);
      const std::string before =
          code.substr(ls == std::string::npos ? 0 : ls, pos - ls);
      const size_t ctx_from = pos > 200 ? pos - 200 : 0;
      const std::string ctx = code.substr(ctx_from, pos - ctx_from);
      if (ctx.rfind("tracer()") == std::string::npos &&
          ctx.rfind(".ring()") == std::string::npos) {
        continue;
      }
      const size_t anchor = std::max(ctx.rfind("tracer()") ==
                                             std::string::npos
                                         ? 0
                                         : ctx.rfind("tracer()"),
                                     ctx.rfind(".ring()") == std::string::npos
                                         ? 0
                                         : ctx.rfind(".ring()"));
      // The receiver must be adjacent (allowing whitespace) to this call.
      const std::string between = ctx.substr(anchor);
      if (between.find(';') != std::string::npos) continue;
      SpanSite site;
      site.file = file;
      site.line = line_of(code, pos);
      site.call_begin = pos;
      const size_t paren = pos + std::strlen(kind) - 1;
      if (!parse_span_call(code, paren, site)) continue;
      site.call_text = raw.substr(pos, site.call_end - pos);
      (std::strcmp(kind, ".begin(") == 0 ? begins : ends).push_back(site);
    }
  }
}

void check_tel_pairing(const Options& opt,
                       std::map<std::string, std::vector<SpanSite>>* unpaired) {
  std::vector<SpanSite> begins;
  std::vector<SpanSite> ends;
  for (const auto& f :
       collect(opt.root / "src", {".cpp", ".h"})) {
    std::string raw;
    if (!read_file(f, raw)) continue;
    scan_spans(f, raw, begins, ends);
  }
  auto has_match = [](const std::vector<SpanSite>& pool, const SpanSite& s) {
    for (const auto& p : pool) {
      if (p.cat != s.cat) continue;
      if (p.name == s.name || p.name == "*" || s.name == "*") return true;
    }
    return false;
  };
  for (const auto& b : begins) {
    if (!has_match(ends, b)) {
      diag(b.file, b.line, "tel-span-pairing",
           "span begin (\"" + b.cat + "\", \"" + b.name +
               "\") has no matching end() anywhere in src/");
      if (unpaired != nullptr) {
        (*unpaired)[b.file.generic_string()].push_back(b);
      }
    }
  }
  for (const auto& e : ends) {
    if (!has_match(begins, e)) {
      diag(e.file, e.line, "tel-span-pairing",
           "span end (\"" + e.cat + "\", \"" + e.name +
               "\") has no matching begin() anywhere in src/");
    }
  }
}

// --- rule: metric-unit-suffix ---------------------------------------------

bool ends_with(const std::string& s, const std::string& suf) {
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

struct MetricFix {
  size_t lit_begin = 0;  // offset of the opening quote
  size_t lit_end = 0;    // offset of the closing quote
  std::string fixed;     // replacement name
};

void check_metric_names(const fs::path& file, const std::string& raw,
                        std::vector<MetricFix>* fixes) {
  const std::string code = strip_comments(raw);
  struct Kind {
    const char* call;
    const char* what;
  };
  static const Kind kKinds[] = {
      {"counter(\"", "counter"},
      {"histogram(\"", "histogram"},
      {"gauge(\"", "gauge"},
  };
  for (const auto& k : kKinds) {
    for (size_t pos = code.find(k.call); pos != std::string::npos;
         pos = code.find(k.call, pos + 1)) {
      if (pos > 0 && is_ident(code[pos - 1])) continue;  // foocounter(
      const size_t lit_begin = pos + std::strlen(k.call) - 1;
      const size_t lit_close = code.find('"', lit_begin + 1);
      if (lit_close == std::string::npos) continue;
      const std::string name =
          code.substr(lit_begin + 1, lit_close - lit_begin - 1);
      if (name.empty()) continue;
      const size_t ln = line_of(code, pos);
      std::string want;
      if (std::strcmp(k.what, "counter") == 0) {
        if (!ends_with(name, "_total")) {
          diag(file, ln, "metric-unit-suffix",
               "counter \"" + name + "\" must end in _total");
          want = name + "_total";
        }
      } else if (std::strcmp(k.what, "histogram") == 0) {
        if (!ends_with(name, "_ns") && !ends_with(name, "_bytes")) {
          diag(file, ln, "metric-unit-suffix",
               "histogram \"" + name +
                   "\" must carry a unit suffix (_ns or _bytes)");
          want = name + "_ns";
        }
      } else {
        if (ends_with(name, "_total")) {
          diag(file, ln, "metric-unit-suffix",
               "gauge \"" + name +
                   "\" must not end in _total (that names a counter)");
        }
      }
      if (!want.empty() && fixes != nullptr) {
        fixes->push_back({lit_begin, lit_close, want});
      }
    }
  }
}

// --- rule: hot-path-hygiene -----------------------------------------------

bool is_hot_path_file(const fs::path& f) {
  static const char* kHot[] = {
      "src/nvmf/initiator.cpp",
      "src/nvmf/target.cpp",
      "src/nvmf/path_group.cpp",
  };
  const std::string g = f.generic_string();
  for (const char* h : kHot) {
    if (ends_with(g, h)) return true;
  }
  return false;
}

void check_hot_path(const fs::path& file, const std::string& raw) {
  const std::string code = strip_strings(strip_comments(raw));
  for (size_t pos = find_token(code, "new", 0); pos != std::string::npos;
       pos = find_token(code, "new", pos + 1)) {
    diag(file, line_of(code, pos), "hot-path-hygiene",
         "naked `new` on the data path — use value members, "
         "std::make_unique at setup time, or pool allocation");
  }
  for (size_t pos = code.find("std::function"); pos != std::string::npos;
       pos = code.find("std::function", pos + 1)) {
    diag(file, line_of(code, pos), "hot-path-hygiene",
         "std::function on the data path — completions are linear "
         "af::OnceCallback, generic callables are oaf::MoveFunc");
  }
  // Raw C allocators dodge both the operator-new rule above and the
  // OAF_PROF allocation ledger's typed accounting; they have no place on
  // the data path. (free() is not flagged: releasing setup-time buffers
  // from a teardown path is fine — it is acquisition that must not happen.)
  for (const char* fn : {"malloc", "calloc", "realloc"}) {
    for (size_t pos = find_token(code, fn, 0); pos != std::string::npos;
         pos = find_token(code, fn, pos + 1)) {
      diag(file, line_of(code, pos), "hot-path-hygiene",
           std::string("raw `") + fn +
               "` on the data path — use value members or pool "
               "allocation; the allocation ledger cannot attribute "
               "untyped C buffers");
    }
  }
}

// --- rule: header-hygiene -------------------------------------------------

void check_header(const fs::path& file, const std::string& raw,
                  bool* missing_pragma) {
  const std::string code = strip_comments(raw);
  if (code.find("#pragma once") == std::string::npos) {
    diag(file, 1, "header-hygiene", "header is missing #pragma once");
    if (missing_pragma != nullptr) *missing_pragma = true;
  }
  for (size_t pos = code.find("#include \"../"); pos != std::string::npos;
       pos = code.find("#include \"../", pos + 1)) {
    diag(file, line_of(code, pos), "header-hygiene",
         "relative #include \"../…\" — include paths are rooted at src/");
  }
}

// --- fix application ------------------------------------------------------

void apply_fixes(const Options& opt) {
  // Metric suffixes + missing pragma once, file by file.
  for (const auto& f : collect(opt.root / "src", {".cpp", ".h"})) {
    std::string raw;
    if (!read_file(f, raw)) continue;
    std::vector<MetricFix> fixes;
    std::vector<Diag> scratch;
    std::swap(scratch, g_diags);  // don't double-report during fix scan
    check_metric_names(f, raw, &fixes);
    bool missing_pragma = false;
    if (f.extension() == ".h") check_header(f, raw, &missing_pragma);
    std::swap(scratch, g_diags);
    if (fixes.empty() && !missing_pragma) continue;
    // Apply literal replacements back-to-front so offsets stay valid.
    std::sort(fixes.begin(), fixes.end(),
              [](const MetricFix& a, const MetricFix& b) {
                return a.lit_begin > b.lit_begin;
              });
    for (const auto& fx : fixes) {
      raw.replace(fx.lit_begin + 1, fx.lit_end - fx.lit_begin - 1, fx.fixed);
    }
    if (missing_pragma) {
      // Insert after the leading comment block (if any).
      const std::vector<std::string> lines = split_lines(raw);
      size_t at = 0;
      while (at < lines.size() &&
             (lines[at].rfind("//", 0) == 0 || lines[at].empty())) {
        ++at;
      }
      std::string rebuilt;
      for (size_t i = 0; i < lines.size(); ++i) {
        if (i == at) rebuilt += "#pragma once\n";
        rebuilt += lines[i];
        rebuilt += '\n';
      }
      if (at >= lines.size()) rebuilt += "#pragma once\n";
      raw = rebuilt;
    }
    write_file(f, raw);
    std::fprintf(stderr, "oaflint: fixed %s\n", f.generic_string().c_str());
  }

  // Unpaired span begins: synthesize the matching end() directly after the
  // begin statement — same receiver, track, category, and name; id and
  // timestamp degrade to 0 for the author to refine.
  std::map<std::string, std::vector<SpanSite>> unpaired;
  {
    std::vector<Diag> scratch;
    std::swap(scratch, g_diags);
    check_tel_pairing(opt, &unpaired);
    std::swap(scratch, g_diags);
  }
  for (auto& [file, sites] : unpaired) {
    std::string raw;
    if (!read_file(file, raw)) continue;
    std::sort(sites.begin(), sites.end(),
              [](const SpanSite& a, const SpanSite& b) {
                return a.call_begin > b.call_begin;
              });
    bool changed = false;
    for (const auto& s : sites) {
      // Receiver: walk back from the call to the start of the expression.
      size_t expr_begin = s.call_begin;
      while (expr_begin > 0 &&
             (is_ident(raw[expr_begin - 1]) || raw[expr_begin - 1] == ':' ||
              raw[expr_begin - 1] == '.' || raw[expr_begin - 1] == ')' ||
              raw[expr_begin - 1] == '(')) {
        --expr_begin;
      }
      const std::string receiver =
          raw.substr(expr_begin, s.call_begin - expr_begin);
      // First argument (track expression) of the begin call.
      const size_t paren = raw.find('(', s.call_begin);
      size_t comma = paren;
      int depth = 0;
      for (size_t i = paren; i < raw.size(); ++i) {
        if (raw[i] == '(') ++depth;
        if (raw[i] == ')') --depth;
        if (raw[i] == ',' && depth == 1) {
          comma = i;
          break;
        }
      }
      const std::string track = raw.substr(paren + 1, comma - paren - 1);
      const size_t stmt_end = raw.find(';', expr_begin + (s.call_end -
                                                          s.call_begin));
      if (stmt_end == std::string::npos) continue;
      const std::string insert = "\n  " + receiver + ".end(" + track + ", \"" +
                                 s.cat + "\", \"" + s.name + "\", 0, 0);";
      raw.insert(stmt_end + 1, insert);
      changed = true;
    }
    if (changed) {
      write_file(file, raw);
      std::fprintf(stderr, "oaflint: fixed %s\n", file.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--fix") {
      opt.fix = true;
    } else if (a == "--root" && i + 1 < argc) {
      opt.root = argv[++i];
    } else if (a == "--report" && i + 1 < argc) {
      opt.report = argv[++i];
    } else if (a == "--help" || a == "-h") {
      std::fprintf(stderr,
                   "usage: oaflint [--root DIR] [--fix] [--report FILE]\n");
      return 2;
    } else {
      std::fprintf(stderr, "oaflint: unknown argument '%s'\n", a.c_str());
      return 2;
    }
  }
  if (!fs::exists(opt.root / "src")) {
    std::fprintf(stderr, "oaflint: no src/ under root '%s'\n",
                 opt.root.generic_string().c_str());
    return 2;
  }

  if (opt.fix) apply_fixes(opt);

  check_pdu_contract(opt);
  check_tel_pairing(opt, nullptr);
  for (const auto& f : collect(opt.root / "src", {".cpp", ".h"})) {
    std::string raw;
    if (!read_file(f, raw)) continue;
    check_metric_names(f, raw, nullptr);
    if (is_hot_path_file(f)) check_hot_path(f, raw);
    if (f.extension() == ".h") check_header(f, raw, nullptr);
  }

  std::sort(g_diags.begin(), g_diags.end(), [](const Diag& a, const Diag& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  std::ostringstream report;
  for (const auto& d : g_diags) {
    report << d.file << ":" << d.line << ": " << d.rule << ": " << d.msg
           << "\n";
  }
  std::fputs(report.str().c_str(), stdout);
  if (!opt.report.empty()) {
    std::ostringstream full;
    full << "oaflint report\nroot: " << opt.root.generic_string()
         << "\nviolations: " << g_diags.size() << "\n\n"
         << report.str();
    if (!write_file(opt.report, full.str())) {
      std::fprintf(stderr, "oaflint: cannot write report '%s'\n",
                   opt.report.c_str());
      return 2;
    }
  }
  if (g_diags.empty()) {
    std::fprintf(stderr, "oaflint: clean\n");
    return 0;
  }
  std::fprintf(stderr, "oaflint: %zu violation(s)\n", g_diags.size());
  return 1;
}

// oaf_trace_merge — stitch initiator + target trace files into one timeline.
//
//   oaf_trace_merge initiator.json target.json -o merged.json [--offset-ns N]
//
// Inputs are the Chrome trace JSON files the two processes wrote
// (oaf_perf --trace-out, oaf_target --trace-out). The output is one Chrome
// trace: initiator events on pid 1, target events on pid 2 with timestamps
// corrected onto the initiator's clock using the NTP-style offset oaf_perf
// embedded in its document (otherData.clock_offset_ns), or --offset-ns when
// given. Load the result in Perfetto / chrome://tracing: the two sides of
// each I/O share one async id (the wire trace id), so target spans nest
// under the initiating I/O.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/trace_merge.h"

using namespace oaf;

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string init_path;
  std::string target_path;
  std::string out_path;
  telemetry::TraceMergeOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--offset-ns" && i + 1 < argc) {
      opts.has_offset_override = true;
      opts.offset_ns_override = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: oaf_trace_merge initiator.json target.json"
                   " -o merged.json [--offset-ns N]\n");
      return 2;
    } else if (init_path.empty()) {
      init_path = arg;
    } else if (target_path.empty()) {
      target_path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (target_path.empty() || out_path.empty()) {
    std::fprintf(stderr,
                 "usage: oaf_trace_merge initiator.json target.json"
                 " -o merged.json [--offset-ns N]\n");
    return 2;
  }

  std::string init_json;
  std::string target_json;
  if (!read_file(init_path, &init_json)) {
    std::fprintf(stderr, "cannot read %s\n", init_path.c_str());
    return 1;
  }
  if (!read_file(target_path, &target_json)) {
    std::fprintf(stderr, "cannot read %s\n", target_path.c_str());
    return 1;
  }

  auto merged = telemetry::merge_chrome_traces(init_json, target_json, opts);
  if (!merged) {
    std::fprintf(stderr, "merge failed: %s\n",
                 merged.status().to_string().c_str());
    return 1;
  }
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << merged.value() << '\n';
  std::printf("merged trace: %s\n", out_path.c_str());
  return 0;
}

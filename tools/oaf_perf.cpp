// oaf_perf — standalone workload client (the SPDK `perf` role).
//
// Connects to a running oaf_target over TCP, negotiates the adaptive fabric
// (shared memory when the --token matches the target's host token), runs a
// timed workload at a fixed queue depth, and prints bandwidth, IOPS, and
// latency percentiles with the I/O-time/comm/other breakdown.
//
//   oaf_perf --port 4420 --token 42 --io-size-kib 128 --qd 32
//            --rw 1.0 --seconds 2
//
// Observability: --json replaces the tables with one machine-readable
// RunStats object on stdout (human banners go to stderr); --trace-out=FILE
// records per-I/O spans and writes a Chrome trace_event JSON for
// chrome://tracing or https://ui.perfetto.dev; --metrics-json=FILE dumps the
// process metrics registry.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "af/locality.h"
#include "bench/perf_driver.h"
#include "common/json.h"
#include "common/table.h"
#include "net/fault_channel.h"
#include "net/tcp_channel.h"
#include "nvmf/initiator.h"
#include "nvmf/path_group.h"
#include "nvmf/path_selector.h"
#include "sim/real_executor.h"
#include "telemetry/anomaly.h"
#include "telemetry/attribution.h"
#include "telemetry/flight.h"
#include "telemetry/prof/prof.h"
#include "telemetry/stat_server.h"
#include "telemetry/telemetry.h"

using namespace oaf;

namespace {

struct Options {
  std::string host = "127.0.0.1";
  u16 port = 4420;
  u64 token = 42;
  std::string conn = "oafconn0";
  u64 io_size_kib = 128;
  u32 qd = 32;
  double read_fraction = 1.0;  // --rw: 1.0 read, 0.0 write, else mix
  double seconds = 2.0;
  u64 working_set_mb = 128;
  bool sequential = true;
  // resilience knobs
  u32 reconnect_attempts = 0;  // 0 = legacy teardown on fault
  u64 keepalive_ms = 0;        // 0 = no keep-alive pings
  u64 kato_ms = 0;             // advertised KATO; 0 = none
  bool data_digest = false;    // CRC32C on inline data PDUs
  u64 cmd_timeout_ms = 0;      // per-command deadline; 0 = none
  u32 abort_budget = 0;        // aborts per stuck command; 0 = legacy teardown
  u32 cmd_retries = 3;         // in-place retry budget (kQueueFull, replays)
  // multipath knobs
  u32 paths = 1;               // associations in the path group
  std::string selector = "round-robin";  // round-robin|queue-depth|latency-ewma
  int kill_path = -1;          // force-fault this path mid-run; -1 = never
  u64 kill_after_ms = 500;     // when the kill fires, relative to run start
  // observability
  bool json = false;           // one RunStats JSON object on stdout
  std::string trace_out;       // Chrome trace_event JSON path; "" = no tracing
  std::string metrics_json;    // metrics registry JSON path; "" = none
  int stat_port = -1;          // live introspection endpoint; -1 off, 0 = ephemeral
  std::string flight_dir;      // arm the flight recorder into DIR; "" = off
  // tail-latency attribution (DESIGN.md §13)
  u64 slo_read_us = 0;         // read latency SLO; 0 = no read SLO
  u64 slo_write_us = 0;        // write latency SLO; 0 = no write SLO
  std::string anomaly_dir;     // arm retroactive anomaly capture into DIR
  u64 inject_delay_us = 0;     // one-shot stall on path 0 mid-run; 0 = off
  u64 inject_after_ms = 500;   // when the stall arms, relative to run start
  // continuous profiling (DESIGN.md §15)
  std::string profile_out;     // collapsed-stack output path; "" = sampler off
  u32 profile_hz = 997;        // sampling rate (prime: avoids phase lock)
};

bool parse_args(int argc, char** argv, Options& o) {
  // Accept both "--flag value" and "--flag=value" by splitting '=' forms up
  // front (telemetry flags are commonly passed the GNU way from CI).
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      args.push_back(arg.substr(0, eq));
      args.push_back(arg.substr(eq + 1));
    } else {
      args.push_back(arg);
    }
  }
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const char* {
      return i + 1 < args.size() ? args[++i].c_str() : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--host" && (v = next())) {
      o.host = v;
    } else if (arg == "--port" && (v = next())) {
      o.port = static_cast<u16>(std::atoi(v));
    } else if (arg == "--token" && (v = next())) {
      o.token = std::strtoull(v, nullptr, 10);
    } else if (arg == "--conn" && (v = next())) {
      o.conn = v;
    } else if (arg == "--io-size-kib" && (v = next())) {
      o.io_size_kib = std::strtoull(v, nullptr, 10);
    } else if (arg == "--qd" && (v = next())) {
      o.qd = static_cast<u32>(std::atoi(v));
    } else if (arg == "--rw" && (v = next())) {
      if (std::strcmp(v, "read") == 0) {
        o.read_fraction = 1.0;
      } else if (std::strcmp(v, "write") == 0) {
        o.read_fraction = 0.0;
      } else {
        o.read_fraction = std::atof(v);
      }
    } else if (arg == "--seconds" && (v = next())) {
      o.seconds = std::atof(v);
    } else if (arg == "--working-set-mb" && (v = next())) {
      o.working_set_mb = std::strtoull(v, nullptr, 10);
    } else if (arg == "--random") {
      o.sequential = false;
    } else if (arg == "--reconnect-attempts" && (v = next())) {
      o.reconnect_attempts = static_cast<u32>(std::atoi(v));
    } else if (arg == "--keepalive-ms" && (v = next())) {
      o.keepalive_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--kato-ms" && (v = next())) {
      o.kato_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--data-digest") {
      o.data_digest = true;
    } else if (arg == "--cmd-timeout-ms" && (v = next())) {
      o.cmd_timeout_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--abort-budget" && (v = next())) {
      o.abort_budget = static_cast<u32>(std::atoi(v));
    } else if (arg == "--cmd-retries" && (v = next())) {
      o.cmd_retries = static_cast<u32>(std::atoi(v));
    } else if (arg == "--paths" && (v = next())) {
      o.paths = std::max(1, std::atoi(v));
    } else if (arg == "--selector" && (v = next())) {
      o.selector = v;
    } else if (arg == "--kill-path" && (v = next())) {
      o.kill_path = std::atoi(v);
    } else if (arg == "--kill-after-ms" && (v = next())) {
      o.kill_after_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--json") {
      o.json = true;
    } else if (arg == "--trace-out" && (v = next())) {
      o.trace_out = v;
    } else if (arg == "--metrics-json" && (v = next())) {
      o.metrics_json = v;
    } else if (arg == "--stat-port" && (v = next())) {
      o.stat_port = std::atoi(v);
    } else if (arg == "--flight-dir" && (v = next())) {
      o.flight_dir = v;
    } else if (arg == "--slo-read-us" && (v = next())) {
      o.slo_read_us = std::strtoull(v, nullptr, 10);
    } else if (arg == "--slo-write-us" && (v = next())) {
      o.slo_write_us = std::strtoull(v, nullptr, 10);
    } else if (arg == "--anomaly-dir" && (v = next())) {
      o.anomaly_dir = v;
    } else if (arg == "--profile-out" && (v = next())) {
      o.profile_out = v;
    } else if (arg == "--profile-hz" && (v = next())) {
      o.profile_hz = static_cast<u32>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--inject-delay-us" && (v = next())) {
      o.inject_delay_us = std::strtoull(v, nullptr, 10);
    } else if (arg == "--inject-after-ms" && (v = next())) {
      o.inject_after_ms = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(
          stderr,
          "usage: oaf_perf [--host H] [--port N] [--token T] [--conn NAME]\n"
          "                [--io-size-kib S] [--qd D] [--rw read|write|FRAC]\n"
          "                [--seconds SEC] [--working-set-mb M] [--random]\n"
          "                [--reconnect-attempts N] [--keepalive-ms MS]\n"
          "                [--kato-ms MS] [--data-digest]\n"
          "                [--cmd-timeout-ms MS] [--abort-budget N]\n"
          "                [--cmd-retries N]\n"
          "                [--paths N] [--selector NAME]\n"
          "                [--kill-path I] [--kill-after-ms MS]\n"
          "                [--json] [--trace-out FILE] [--metrics-json FILE]\n"
          "                [--stat-port N] [--flight-dir DIR]\n"
          "                [--slo-read-us US] [--slo-write-us US]\n"
          "                [--anomaly-dir DIR]\n"
          "                [--inject-delay-us US] [--inject-after-ms MS]\n"
          "                [--profile-out FILE] [--profile-hz HZ]\n");
      return false;
    }
  }
  return true;
}

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

/// The full RunStats (plus workload, data path, multipath, and resilience
/// context) as one JSON object — the machine-readable twin of the tables.
std::string stats_json(const Options& opts, const bench::WorkloadSpec& spec,
                       bool shm_active, bool zero_copy, const RunStats& stats,
                       const nvmf::ResilienceCounters& rc,
                       const nvmf::PathGroup& group) {
  JsonWriter w;
  w.begin_object();
  w.key("tool").value("oaf_perf");
  w.key("workload").begin_object();
  w.key("io_bytes").value(spec.io_bytes);
  w.key("queue_depth").value(spec.queue_depth);
  w.key("read_fraction").value(spec.read_fraction);
  w.key("sequential").value(spec.sequential);
  w.key("duration_ns").value(static_cast<i64>(spec.duration));
  w.key("working_set_bytes").value(spec.working_set_bytes);
  w.end_object();
  w.key("data_path").begin_object();
  w.key("connection").value(opts.conn);
  w.key("shm").value(shm_active);
  w.key("zero_copy").value(zero_copy);
  w.end_object();
  w.key("results").begin_object();
  w.key("ios_completed").value(stats.ios_completed);
  w.key("failures").value(stats.failures);
  w.key("bytes_moved").value(stats.bytes_moved);
  w.key("elapsed_ns").value(static_cast<i64>(stats.elapsed));
  w.key("bandwidth_mib_s").value(stats.bandwidth_mib_s());
  w.key("iops").value(stats.iops());
  w.key("latency_ns").begin_object();
  w.key("count").value(stats.latency.count());
  w.key("min").value(stats.latency.min());
  w.key("mean").value(stats.latency.mean());
  w.key("max").value(stats.latency.max());
  w.key("p50").value(stats.latency.p50());
  w.key("p99").value(stats.latency.p99());
  w.key("p999").value(stats.latency.p999());
  w.key("p9999").value(stats.latency.p9999());
  w.end_object();
  const LatencyParts mean = stats.breakdown.mean();
  w.key("breakdown_ns").begin_object();
  w.key("io").value(static_cast<i64>(mean.io));
  w.key("comm").value(static_cast<i64>(mean.comm));
  w.key("other").value(static_cast<i64>(mean.other));
  w.end_object();
  // Per-stage attribution summary (queue/encode/grant/xfer/device/target/
  // complete/detour) — the finer-grained twin of breakdown_ns.
  w.key("stages").raw(telemetry::attribution().summary_json());
  w.key("slo").begin_object();
  w.key("read_us").value(opts.slo_read_us);
  w.key("write_us").value(opts.slo_write_us);
  w.key("anomaly_captures").value(telemetry::anomaly().captures());
  w.end_object();
  w.end_object();
  w.key("resilience").begin_object();
  w.key("reconnects").value(rc.reconnects);
  w.key("reconnect_failures").value(rc.reconnect_failures);
  w.key("commands_retried").value(rc.commands_retried);
  w.key("keepalive_sent").value(rc.keepalive_sent);
  w.key("keepalive_misses").value(rc.keepalive_misses);
  w.key("shm_demotions").value(rc.shm_demotions);
  w.key("digest_errors").value(rc.digest_errors);
  w.key("deadlines_expired").value(rc.deadlines_expired);
  w.key("aborts_sent").value(rc.aborts_sent);
  w.key("aborts_succeeded").value(rc.aborts_succeeded);
  w.key("aborts_failed").value(rc.aborts_failed);
  w.key("commands_aborted").value(rc.commands_aborted);
  w.key("peer_misbehavior").value(rc.peer_misbehavior);
  w.key("queue_full_received").value(rc.queue_full_received);
  w.key("queue_full_retries").value(rc.queue_full_retries);
  w.key("admission_rejects").value(rc.admission_rejects);
  w.end_object();
  w.key("multipath").begin_object();
  w.key("paths").value(static_cast<u64>(group.path_count()));
  w.key("selector").value(group.selector_name());
  w.key("failovers").value(group.failovers());
  w.key("redrives").value(group.redrives());
  w.key("parked_total").value(group.parked_total());
  w.key("duplicates_suppressed").value(group.duplicates_suppressed());
  w.key("per_path").begin_array();
  for (size_t i = 0; i < group.path_count(); ++i) {
    const nvmf::NvmfInitiator& p = group.path(i);
    w.begin_object();
    w.key("name").value(p.connection_name());
    w.key("shm").value(p.shm_active());
    w.key("ana").value(pdu::to_string(p.ana_state()));
    w.key("connected").value(p.connected());
    w.key("dead").value(p.dead());
    w.key("ios_completed").value(p.ios_completed());
    w.key("reconnects").value(p.resilience().reconnects);
    w.key("latency_ewma_ns").value(static_cast<i64>(p.latency_ewma_ns()));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();
  std::string out = w.take();
  out += '\n';
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return 2;

  if (!opts.trace_out.empty()) telemetry::tracer().set_enabled(true);
  if (!opts.flight_dir.empty()) {
    telemetry::flight().install({opts.flight_dir, /*fatal_signals=*/true});
  }
  // Attribution is always on in this tool — the per-stage breakdown feeds
  // the --json "stages" section and the heat/top stat verbs either way.
  // SLOs default to 0 (no watchdog) until the flags arm them.
  {
    telemetry::AttributionOptions aopts;
    aopts.slo_read_ns = static_cast<DurNs>(opts.slo_read_us) * 1'000;
    aopts.slo_write_ns = static_cast<DurNs>(opts.slo_write_us) * 1'000;
    telemetry::attribution().configure(aopts);
  }
  if (!opts.anomaly_dir.empty()) {
    telemetry::AnomalyOptions an;
    an.dir = opts.anomaly_dir;
    telemetry::anomaly().configure(an);
  }

  // Cycle accounting is always on in this tool: the per-scope cost is a TSC
  // read + relaxed adds, and it is what makes `oaf_stat prof` report live
  // cycles/IO. The sampling profiler is opt-in via --profile-out.
  telemetry::prof::cycle_ledger().set_enabled(true);

  sim::RealExecutor exec;
  net::InlineCopier copier;
  af::ShmBroker broker(opts.token, af::ShmBroker::Backing::kPosixShm);

  if (!opts.profile_out.empty()) {
    auto& prof = telemetry::prof::profiler();
    if (auto st = prof.register_this_thread("main"); !st) {
      std::fprintf(stderr, "oaf_perf: profiler: %s\n",
                   st.to_string().c_str());
    }
    std::atomic<bool> registered{false};
    exec.post([&] {
      (void)prof.register_this_thread("reactor");
      registered = true;
    });
    while (!registered.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    telemetry::prof::ProfilerOptions popts;
    popts.sample_hz = opts.profile_hz;
    if (auto st = prof.start(popts); !st) {
      std::fprintf(stderr, "oaf_perf: profiler: %s\n",
                   st.to_string().c_str());
    } else {
      std::fprintf(stderr, "oaf_perf: sampling at %u Hz -> %s\n",
                   opts.profile_hz, opts.profile_out.c_str());
    }
  }

  auto channel_res = net::tcp_connect(opts.host, opts.port, exec);
  if (!channel_res) {
    std::fprintf(stderr, "connect: %s\n", channel_res.status().to_string().c_str());
    return 1;
  }
  auto first_channel = std::move(channel_res).take();

  af::AfConfig cfg = af::AfConfig::oaf();
  cfg.shm_slot_bytes = std::max<u64>(opts.io_size_kib * kKiB, 4 * kKiB);
  cfg.shm_slots = std::max<u32>(opts.qd, 1);
  cfg.data_digest = opts.data_digest;

  nvmf::InitiatorOptions iopts;
  iopts.af = cfg;
  iopts.queue_depth = opts.qd;
  iopts.connection_name = opts.conn;
  iopts.reconnect.max_attempts = opts.reconnect_attempts;
  iopts.reconnect.keepalive_interval_ns =
      static_cast<DurNs>(opts.keepalive_ms) * 1'000'000;
  iopts.reconnect.kato_ns = opts.kato_ms * 1'000'000;
  iopts.command_timeout_ns = static_cast<DurNs>(opts.cmd_timeout_ms) * 1'000'000;
  iopts.escalation.abort_budget = opts.abort_budget;
  iopts.reconnect.max_command_retries = opts.cmd_retries;

  // All paths live in one PathGroup; --paths 1 (the default) degenerates to
  // the single-association behaviour this tool always had. Path 0 carries
  // the adaptive-fabric config (shm eligible); extra paths are stock TCP
  // spares, exactly the paper's one-fast-lane-plus-spares topology.
  auto selector = nvmf::make_selector(opts.selector);
  if (selector == nullptr) {
    std::fprintf(stderr, "oaf_perf: unknown --selector %s\n",
                 opts.selector.c_str());
    return 2;
  }
  nvmf::PathGroupOptions gopts;
  gopts.name = opts.conn;
  nvmf::PathGroup group(exec, std::move(gopts), std::move(selector));
  // With --inject-delay-us, path 0's channel is wrapped in a FaultChannel so
  // a one-shot stall can be armed mid-run — the deterministic tail-latency
  // trigger for the SLO watchdog / anomaly-capture demo. The pointer tracks
  // the latest wrapper (reconnects re-wrap); both the factory and the armed
  // stall run on the executor thread, so no synchronisation is needed.
  net::FaultChannel* injector = nullptr;
  for (u32 i = 0; i < opts.paths; ++i) {
    nvmf::InitiatorOptions piopts = iopts;
    if (i > 0) {
      piopts.connection_name = opts.conn + ".p" + std::to_string(i);
      piopts.af = af::AfConfig::stock_tcp();
      piopts.af.data_digest = opts.data_digest;
    }
    // The factory hands out the pre-dialed channel on path 0's first connect
    // and re-dials the target for everything else (spare paths, reconnects).
    group.add_path(std::make_unique<nvmf::NvmfInitiator>(
        exec,
        [&, i]() -> std::unique_ptr<net::MsgChannel> {
          std::unique_ptr<net::MsgChannel> ch;
          if (i == 0 && first_channel) {
            ch = std::move(first_channel);
          } else {
            auto res = net::tcp_connect(opts.host, opts.port, exec);
            if (!res) return nullptr;
            ch = std::move(res).take();
          }
          if (i == 0 && opts.inject_delay_us > 0) {
            auto fc = std::make_unique<net::FaultChannel>(std::move(ch));
            injector = fc.get();
            return fc;
          }
          return ch;
        },
        copier, broker, piopts));
  }
  nvmf::NvmfInitiator& client = group.path(0);

  std::atomic<bool> connected{false};
  exec.post([&] {
    group.connect([&](Status st) {
      if (!st) std::fprintf(stderr, "handshake: %s\n", st.to_string().c_str());
      connected = true;
    });
  });
  while (!connected.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The group is usable after the first handshake; give the spare paths a
  // bounded moment to join so the run starts with the full fan-out.
  for (int spin = 0; spin < 2000; ++spin) {
    std::atomic<int> up{-1};
    exec.post([&] {
      int n = 0;
      for (size_t i = 0; i < group.path_count(); ++i) {
        if (group.path(i).connected()) n++;
      }
      up = n;
    });
    while (up.load() < 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (up.load() == static_cast<int>(opts.paths)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // In --json mode stdout carries exactly one JSON object; banners move to
  // stderr so `oaf_perf --json | jq` works.
  std::fprintf(opts.json ? stderr : stdout,
               "oaf_perf: connected to %s:%u — data path: %s%s, %u path(s)\n",
               opts.host.c_str(), opts.port,
               client.shm_active() ? "shared memory" : "TCP",
               group.supports_zero_copy() ? " (zero-copy)" : "", opts.paths);

  // Live introspection endpoint (opt-in). Providers that touch client state
  // post onto the executor thread and wait — the stat server thread itself
  // must never walk reactor-owned structures.
  telemetry::StatServer stat;
  if (opts.stat_port >= 0) {
    auto on_executor = [&exec](std::function<std::string()> fn) {
      return [&exec, fn]() -> std::string {
        std::string out;
        std::atomic<bool> ready{false};
        exec.post([&] {
          out = fn();
          ready = true;
        });
        while (!ready.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return out;
      };
    };
    stat.handle("metrics",
                [] { return telemetry::metrics().to_prometheus(); });
    stat.handle("trace", [] { return telemetry::tracer().to_chrome_json(); });
    // prof_json reads only atomics/registry handles — safe off-executor.
    stat.handle("prof", [] { return telemetry::prof::prof_json(); });
    stat.handle("heat", on_executor([&exec]() -> std::string {
                  return telemetry::attribution().heat_json(exec.now());
                }));
    stat.handle("top", on_executor([&exec]() -> std::string {
                  return telemetry::attribution().top_json(exec.now());
                }));
    stat.handle("conns", on_executor([&group]() -> std::string {
                  JsonWriter w;
                  w.begin_array();
                  for (size_t i = 0; i < group.path_count(); ++i) {
                    const nvmf::NvmfInitiator& p = group.path(i);
                    w.begin_object();
                    w.key("name").value(p.connection_name());
                    w.key("shm_active").value(p.shm_active());
                    w.key("zero_copy").value(p.supports_zero_copy());
                    w.key("trace_ctx").value(p.trace_ctx_active());
                    w.key("clock_offset_ns")
                        .value(p.clock_sync().offset_ns());
                    w.key("clock_rtt_ns").value(p.clock_sync().best_rtt_ns());
                    const nvmf::ResilienceCounters& rc = p.resilience();
                    w.key("reconnects").value(rc.reconnects);
                    w.key("commands_retried").value(rc.commands_retried);
                    w.key("keepalive_sent").value(rc.keepalive_sent);
                    w.key("shm_demotions").value(rc.shm_demotions);
                    w.key("aborts_sent").value(rc.aborts_sent);
                    w.key("ana").value(pdu::to_string(p.ana_state()));
                    w.key("dead").value(p.dead());
                    w.key("group_inflight")
                        .value(static_cast<u64>(group.path_inflight(i)));
                    w.end_object();
                  }
                  w.end_array();
                  return w.take();
                }));
    if (auto st = stat.start(static_cast<u16>(opts.stat_port)); !st) {
      std::fprintf(stderr, "oaf_perf: stat server: %s\n",
                   st.to_string().c_str());
      return 1;
    }
    std::fprintf(stderr, "oaf_perf: stat server on 127.0.0.1:%u\n",
                 stat.port());
  }

  bench::WorkloadSpec spec;
  spec.io_bytes = opts.io_size_kib * kKiB;
  spec.queue_depth = opts.qd;
  spec.read_fraction = opts.read_fraction;
  spec.sequential = opts.sequential;
  spec.duration = static_cast<DurNs>(opts.seconds * 1e9);
  spec.warmup = spec.duration / 10;
  spec.working_set_bytes = opts.working_set_mb * kMiB;

  bench::PerfDriver driver(exec, group, spec);
  std::atomic<bool> done{false};
  RunStats stats;
  exec.post([&] {
    // Fault injection for failover demos: fault the chosen path mid-run and
    // let the group re-drive its in-flight I/Os on the survivors. With
    // --reconnect-attempts 0 the path dies for good; with a budget it heals
    // and rejoins the rotation.
    if (opts.kill_path >= 0 &&
        static_cast<u32>(opts.kill_path) < group.path_count()) {
      exec.schedule_after(
          static_cast<DurNs>(opts.kill_after_ms) * 1'000'000, [&] {
            std::fprintf(stderr, "oaf_perf: killing path %d\n", opts.kill_path);
            group.path(static_cast<size_t>(opts.kill_path))
                .force_recover("oaf_perf --kill-path");
          });
    }
    // Deterministic tail event: one PDU on path 0 limps by the injected
    // stall; with an SLO armed, exactly that I/O breaches and (when
    // --anomaly-dir is set) promotes one retroactive capture.
    if (opts.inject_delay_us > 0) {
      exec.schedule_after(
          static_cast<DurNs>(opts.inject_after_ms) * 1'000'000, [&] {
            if (injector == nullptr) return;
            std::fprintf(stderr, "oaf_perf: injecting %llu us stall on path 0\n",
                         static_cast<unsigned long long>(opts.inject_delay_us));
            injector->inject_delay(static_cast<DurNs>(opts.inject_delay_us) *
                                   1'000);
          });
    }
    driver.run([&](RunStats s) {
      stats = std::move(s);
      done = true;
    });
  });
  while (!done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  if (!opts.profile_out.empty()) {
    auto& prof = telemetry::prof::profiler();
    prof.stop();
    if (prof.write_collapsed(opts.profile_out)) {
      std::fprintf(
          stderr,
          "oaf_perf: profile written to %s (%llu samples, %llu dropped)\n",
          opts.profile_out.c_str(),
          static_cast<unsigned long long>(prof.samples_total()),
          static_cast<unsigned long long>(prof.dropped_total()));
    } else {
      std::fprintf(stderr, "oaf_perf: failed to write profile to %s\n",
                   opts.profile_out.c_str());
    }
  }

  if (!opts.trace_out.empty()) {
    // Embed the NTP-style clock estimate so oaf_trace_merge can re-home the
    // target's spans onto this process's timeline without extra flags.
    const telemetry::ClockSyncEstimator& cs = client.clock_sync();
    const std::vector<std::pair<std::string, i64>> clock_meta = {
        {"clock_offset_ns", cs.offset_ns()},
        {"clock_rtt_ns", cs.best_rtt_ns()},
        {"clock_samples", static_cast<i64>(cs.samples())},
        {"trace_ctx", client.trace_ctx_active() ? 1 : 0},
    };
    if (telemetry::tracer().write_chrome_json(opts.trace_out, clock_meta)) {
      std::fprintf(stderr, "oaf_perf: trace written to %s (%llu events, %llu dropped)\n",
                   opts.trace_out.c_str(),
                   static_cast<unsigned long long>(telemetry::tracer().size()),
                   static_cast<unsigned long long>(telemetry::tracer().dropped()));
    } else {
      std::fprintf(stderr, "oaf_perf: failed to write trace to %s\n",
                   opts.trace_out.c_str());
    }
  }
  if (!opts.metrics_json.empty()) {
    if (!write_file(opts.metrics_json, telemetry::metrics().to_json())) {
      std::fprintf(stderr, "oaf_perf: failed to write metrics to %s\n",
                   opts.metrics_json.c_str());
    }
  }

  if (opts.json) {
    const std::string body =
        stats_json(opts, spec, client.shm_active(), group.supports_zero_copy(),
                   stats, client.resilience(), group);
    std::fwrite(body.data(), 1, body.size(), stdout);
    return 0;
  }

  Table t("oaf_perf results");
  t.header({"metric", "value"});
  t.row({"bandwidth (MiB/s)", Table::num(stats.bandwidth_mib_s(), 1)});
  t.row({"IOPS", Table::num(stats.iops(), 0)});
  t.row({"I/Os completed", std::to_string(stats.ios_completed)});
  t.row({"I/O failures", std::to_string(stats.failures)});
  t.row({"avg latency (us)", Table::num(stats.avg_latency_us(), 1)});
  t.row({"p50 (us)", Table::num(ns_to_us(stats.latency.p50()), 1)});
  t.row({"p99 (us)", Table::num(ns_to_us(stats.latency.p99()), 1)});
  t.row({"p99.99 (us)", Table::num(ns_to_us(stats.latency.p9999()), 1)});
  const LatencyParts mean = stats.breakdown.mean();
  t.row({"I/O time (us)", Table::num(ns_to_us(mean.io), 1)});
  t.row({"comm time (us)", Table::num(ns_to_us(mean.comm), 1)});
  t.row({"other (us)", Table::num(ns_to_us(mean.other), 1)});
  t.print();

  const nvmf::ResilienceCounters& rc = client.resilience();
  Table r("resilience");
  r.header({"counter", "value"});
  r.row({"reconnects", std::to_string(rc.reconnects)});
  r.row({"reconnect failures", std::to_string(rc.reconnect_failures)});
  r.row({"commands retried", std::to_string(rc.commands_retried)});
  r.row({"keepalives sent", std::to_string(rc.keepalive_sent)});
  r.row({"keepalive misses", std::to_string(rc.keepalive_misses)});
  r.row({"shm demotions", std::to_string(rc.shm_demotions)});
  r.row({"digest errors", std::to_string(rc.digest_errors)});
  r.row({"deadlines expired", std::to_string(rc.deadlines_expired)});
  r.row({"aborts sent", std::to_string(rc.aborts_sent)});
  r.row({"aborts succeeded", std::to_string(rc.aborts_succeeded)});
  r.row({"aborts failed", std::to_string(rc.aborts_failed)});
  r.row({"commands aborted", std::to_string(rc.commands_aborted)});
  r.row({"peer misbehavior", std::to_string(rc.peer_misbehavior)});
  r.row({"queue-full received", std::to_string(rc.queue_full_received)});
  r.row({"queue-full retries", std::to_string(rc.queue_full_retries)});
  r.row({"admission rejects", std::to_string(rc.admission_rejects)});
  r.print();

  if (group.path_count() > 1) {
    Table m("multipath");
    m.header({"path", "state", "ana", "I/Os", "reconnects", "ewma (us)"});
    for (size_t i = 0; i < group.path_count(); ++i) {
      const nvmf::NvmfInitiator& p = group.path(i);
      m.row({p.connection_name(),
             p.dead()        ? "dead"
             : p.connected() ? (p.shm_active() ? "shm" : "tcp")
                             : "down",
             pdu::to_string(p.ana_state()), std::to_string(p.ios_completed()),
             std::to_string(p.resilience().reconnects),
             Table::num(ns_to_us(p.latency_ewma_ns()), 1)});
    }
    m.row({"group: " + std::string(group.selector_name()),
           "failovers " + std::to_string(group.failovers()),
           "redrives " + std::to_string(group.redrives()),
           "parked " + std::to_string(group.parked_total()),
           "dups " + std::to_string(group.duplicates_suppressed()), ""});
    m.print();
  }

  // The group owns every path's control channel; its destructor hangs up.
  return 0;
}

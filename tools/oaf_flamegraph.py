#!/usr/bin/env python3
"""Render collapsed-stack text (oaf_perf/oaf_target --profile-out) as an SVG
flame graph. Stdlib only — no external dependencies.

Usage:
    oaf_flamegraph.py profile.collapsed [-o flamegraph.svg] [--title TITLE]

Input format (one stack per line, root-to-leaf, semicolon-separated):
    thread;cc:center;outer;...;leaf 42

The SVG is self-contained: hover shows frame name, sample count, and share
of total; colors are deterministic (hash of frame name) so recompiles that
keep the same symbols keep the same palette.
"""
import argparse
import hashlib
import html
import sys

FRAME_H = 17       # px per stack level
MIN_W = 0.3        # px; frames narrower than this are elided
FONT_SIZE = 11
PAD = 10


class Node:
    __slots__ = ("name", "value", "children")

    def __init__(self, name):
        self.name = name
        self.value = 0
        self.children = {}

    def child(self, name):
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = Node(name)
        return node

    def depth(self):
        if not self.children:
            return 1
        return 1 + max(c.depth() for c in self.children.values())


def parse_collapsed(lines):
    root = Node("all")
    for raw in lines:
        line = raw.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        stack, sep, count = line.rpartition(" ")
        if not sep:
            continue
        try:
            n = int(count)
        except ValueError:
            continue
        root.value += n
        node = root
        for frame in stack.split(";"):
            node = node.child(frame)
            node.value += n
    return root


def color_for(name):
    """Deterministic warm color from the frame name."""
    h = hashlib.md5(name.encode("utf-8", "replace")).digest()
    r = 205 + h[0] % 50
    g = 60 + h[1] % 130
    b = h[2] % 60
    if name.startswith("cc:"):       # cost-center frames: cool palette
        r, g, b = h[0] % 60, 100 + h[1] % 100, 190 + h[2] % 60
    return "rgb(%d,%d,%d)" % (r, g, b)


def render(root, width, title):
    total = root.value
    if total == 0:
        raise SystemExit("oaf_flamegraph: no samples in input")
    depth = root.depth()
    height = depth * FRAME_H + 2 * PAD + 2 * FONT_SIZE
    px_per = (width - 2 * PAD) / total
    out = []
    out.append(
        '<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" '
        'font-family="monospace" font-size="%d">' % (width, height, FONT_SIZE))
    out.append(
        '<style>rect:hover{stroke:black;stroke-width:1}</style>')
    out.append(
        '<text x="%d" y="%d" font-size="%d">%s — %d samples</text>'
        % (PAD, PAD + FONT_SIZE, FONT_SIZE + 2, html.escape(title), total))

    def emit(node, x, level):
        w = node.value * px_per
        if w < MIN_W:
            return
        y = height - PAD - (level + 1) * FRAME_H
        pct = 100.0 * node.value / total
        label = html.escape(node.name)
        out.append('<g><title>%s (%d samples, %.2f%%)</title>'
                   % (label, node.value, pct))
        out.append(
            '<rect x="%.2f" y="%d" width="%.2f" height="%d" fill="%s" '
            'rx="1"/>' % (x, y, w, FRAME_H - 1, color_for(node.name)))
        # ~7px per glyph at 11px monospace; clip label to the box.
        max_chars = int(w / 7)
        if max_chars >= 3:
            text = node.name
            if len(text) > max_chars:
                text = text[: max_chars - 2] + ".."
            out.append('<text x="%.2f" y="%d">%s</text>'
                       % (x + 2, y + FRAME_H - 5, html.escape(text)))
        out.append("</g>")
        cx = x
        for child in sorted(node.children.values(), key=lambda c: c.name):
            emit(child, cx, level + 1)
            cx += child.value * px_per

    emit(root, PAD, 0)
    out.append("</svg>")
    return "\n".join(out)


def main():
    ap = argparse.ArgumentParser(
        description="collapsed-stack text -> SVG flame graph")
    ap.add_argument("input", help="collapsed profile (use - for stdin)")
    ap.add_argument("-o", "--output", default="flamegraph.svg")
    ap.add_argument("--width", type=int, default=1200)
    ap.add_argument("--title", default="oaf cpu profile")
    args = ap.parse_args()

    if args.input == "-":
        lines = sys.stdin.readlines()
    else:
        with open(args.input, encoding="utf-8", errors="replace") as f:
            lines = f.readlines()
    root = parse_collapsed(lines)
    svg = render(root, args.width, args.title)
    with open(args.output, "w", encoding="utf-8") as f:
        f.write(svg)
    print("oaf_flamegraph: %s (%d samples, depth %d)"
          % (args.output, root.value, root.depth() - 1))


if __name__ == "__main__":
    main()

// Attribution-plane unit tests: StageLedger accounting (including the
// finalize carve that subtracts remote residency from wire phases), the
// windowed histogram ring's rotation edges — empty windows, forward clock
// steps, wraparound — top-K eviction order, the SLO watchdog verdict, and
// the anomaly recorder's rate-limit gate / event filtering / capture file.
//
// All timestamps are synthetic: Attribution::record() takes `now`
// explicitly, so the edge cases need no executor.
#include "telemetry/attribution.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/json_parse.h"
#include "telemetry/anomaly.h"

namespace oaf::telemetry {
namespace {

constexpr DurNs kWin = 1'000'000'000;  // 1 s windows everywhere below

class AttributionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AttributionOptions opts;
    opts.window_ns = kWin;
    opts.windows = 4;
    opts.top_k = 3;
    attribution().configure(opts);
    attribution().reset_for_test();
  }
  void TearDown() override {
    attribution().set_enabled(false);
    attribution().reset_for_test();
  }

  /// A minimal completed-read ledger: `total` ns, all in kGrant.
  static StageLedger grant_only(TimeNs start, i64 total) {
    StageLedger l;
    l.reset(start, Stage::kGrant);
    l.close(start + total);
    return l;
  }
};

// --- StageLedger ------------------------------------------------------------

TEST_F(AttributionTest, LedgerStagesSumToElapsed) {
  StageLedger l;
  l.reset(100);                     // kQueue opens at 100
  l.enter(Stage::kEncode, 150);     // queue += 50
  l.enter(Stage::kGrant, 180);      // encode += 30
  l.enter(Stage::kXfer, 400);       // grant += 220
  l.close(460);                     // xfer += 60
  EXPECT_EQ(l.stage_ns[static_cast<size_t>(Stage::kQueue)], 50);
  EXPECT_EQ(l.stage_ns[static_cast<size_t>(Stage::kEncode)], 30);
  EXPECT_EQ(l.stage_ns[static_cast<size_t>(Stage::kGrant)], 220);
  EXPECT_EQ(l.stage_ns[static_cast<size_t>(Stage::kXfer)], 60);
  EXPECT_EQ(l.total_ns(), 360);
  EXPECT_TRUE(l.was_touched(Stage::kQueue));
  EXPECT_FALSE(l.was_touched(Stage::kDevice));
}

TEST_F(AttributionTest, LedgerCreditDoesNotMoveTheCursor) {
  StageLedger l;
  l.reset(0, Stage::kGrant);
  l.credit(Stage::kDetour, 500);  // a retry gap, attributed mid-flight
  l.close(1000);
  EXPECT_EQ(l.stage_ns[static_cast<size_t>(Stage::kGrant)], 1000);
  EXPECT_EQ(l.stage_ns[static_cast<size_t>(Stage::kDetour)], 500);
}

TEST_F(AttributionTest, FinalizeCarvesRemoteResidencyOutOfTheOpenWireStage) {
  // A read: the whole round-trip (1000 ns) sat in kGrant, still open at
  // completion. The target reported 300 ns device + 100 ns processing; the
  // fabric keeps the remaining 600.
  StageLedger l;
  l.reset(0, Stage::kGrant);
  l.finalize(1000, /*device_ns=*/300, /*target_ns=*/100);
  EXPECT_EQ(l.stage_ns[static_cast<size_t>(Stage::kGrant)], 600);
  EXPECT_EQ(l.stage_ns[static_cast<size_t>(Stage::kDevice)], 300);
  EXPECT_EQ(l.stage_ns[static_cast<size_t>(Stage::kTarget)], 100);
  EXPECT_EQ(l.total_ns(), 1000);  // nothing double-counted
}

TEST_F(AttributionTest, FinalizeCarveOverflowsIntoGrantThenXfer) {
  // A write whose wire time split 100 grant / 200 xfer (open at finalize),
  // with 250 ns of remote residency: the carve drains the open stage (xfer)
  // first, then grant — and the device/target split is preserved.
  StageLedger l;
  l.reset(0, Stage::kGrant);
  l.enter(Stage::kXfer, 100);
  l.finalize(300, /*device_ns=*/225, /*target_ns=*/25);
  EXPECT_EQ(l.stage_ns[static_cast<size_t>(Stage::kXfer)], 0);
  EXPECT_EQ(l.stage_ns[static_cast<size_t>(Stage::kGrant)], 50);
  EXPECT_EQ(l.stage_ns[static_cast<size_t>(Stage::kDevice)], 225);
  EXPECT_EQ(l.stage_ns[static_cast<size_t>(Stage::kTarget)], 25);
  EXPECT_EQ(l.total_ns(), 300);
}

TEST_F(AttributionTest, FinalizeClampsWhenRemoteExceedsWireTime) {
  // A skewed target clock reports more residency than the round-trip took.
  // The carve clamps at the wire time — no stage goes negative, and only
  // the carved amount is credited remotely.
  StageLedger l;
  l.reset(0, Stage::kGrant);
  l.finalize(100, /*device_ns=*/500, /*target_ns=*/500);
  EXPECT_EQ(l.stage_ns[static_cast<size_t>(Stage::kGrant)], 0);
  EXPECT_EQ(l.stage_ns[static_cast<size_t>(Stage::kDevice)], 100);
  EXPECT_EQ(l.stage_ns[static_cast<size_t>(Stage::kTarget)], 0);
  EXPECT_EQ(l.total_ns(), 100);
}

TEST_F(AttributionTest, FinalizeIgnoresNegativeRemoteDurations) {
  StageLedger l;
  l.reset(0, Stage::kGrant);
  l.finalize(1000, -50, -20);
  EXPECT_EQ(l.stage_ns[static_cast<size_t>(Stage::kGrant)], 1000);
  EXPECT_FALSE(l.was_touched(Stage::kDevice));
}

// --- Windowed ring ----------------------------------------------------------

TEST_F(AttributionTest, RecordsLandInTheirWindow) {
  attribution().record(OpClass::kRead, grant_only(0, 500), 500, 1, 500);
  attribution().record(OpClass::kRead, grant_only(kWin, 700), 700, 2,
                       kWin + 700);
  const auto wins = attribution().snapshot_windows(kWin + 700);
  ASSERT_EQ(wins.size(), 2u);
  EXPECT_EQ(wins[0].index, 0u);
  EXPECT_EQ(wins[1].index, 1u);
  EXPECT_EQ(wins[0].classes[0].count(), 1u);
  EXPECT_EQ(wins[1].classes[0].count(), 1u);
}

TEST_F(AttributionTest, EmptyWindowsAreSkippedNotFabricated) {
  // I/Os in window 0 and window 2; window 1 saw nothing. The snapshot
  // reports exactly the two live windows — no zero-filled ghost between.
  attribution().record(OpClass::kRead, grant_only(0, 10), 10, 1, 10);
  attribution().record(OpClass::kRead, grant_only(2 * kWin, 10), 10, 2,
                       2 * kWin + 10);
  const auto wins = attribution().snapshot_windows(2 * kWin + 10);
  ASSERT_EQ(wins.size(), 2u);
  EXPECT_EQ(wins[0].index, 0u);
  EXPECT_EQ(wins[1].index, 2u);
}

TEST_F(AttributionTest, ForwardClockStepInvalidatesTheWholeRing) {
  // A jump far past the ring depth: every old slot is stale at the new
  // `now`; recording there retags cleanly and the old windows never leak
  // into the snapshot even though their slots still physically hold data.
  attribution().record(OpClass::kRead, grant_only(0, 10), 10, 1, 10);
  const TimeNs later = 1000 * kWin;
  attribution().record(OpClass::kWrite, grant_only(later, 20), 20, 2,
                       later + 20);
  const auto wins = attribution().snapshot_windows(later + 20);
  ASSERT_EQ(wins.size(), 1u);
  EXPECT_EQ(wins[0].index, 1000u);
  EXPECT_EQ(wins[0].classes[1].count(), 1u);
}

TEST_F(AttributionTest, WraparoundReusesSlotsForNewWindows) {
  // Ring depth 4: windows 0..5 walk through the ring half again. At the
  // end only the last 4 (2..5) are live; 0 and 1 were overwritten by their
  // modulo successors.
  for (u64 widx = 0; widx <= 5; ++widx) {
    const TimeNs t = static_cast<TimeNs>(widx) * kWin + 1;
    attribution().record(OpClass::kRead, grant_only(t, 100), 100,
                         /*trace_id=*/widx, t + 100);
  }
  const auto wins = attribution().snapshot_windows(5 * kWin + 200);
  ASSERT_EQ(wins.size(), 4u);
  for (size_t i = 0; i < wins.size(); ++i) {
    EXPECT_EQ(wins[i].index, 2 + i);
    EXPECT_EQ(wins[i].classes[0].count(), 1u);
  }
}

TEST_F(AttributionTest, StaleWindowBeyondDepthVanishesFromSnapshot) {
  attribution().record(OpClass::kRead, grant_only(0, 10), 10, 1, 10);
  // Nothing recorded since; `now` has moved past the ring's reach.
  const auto wins = attribution().snapshot_windows(10 * kWin);
  EXPECT_TRUE(wins.empty());
}

// --- Top-K ------------------------------------------------------------------

TEST_F(AttributionTest, TopKKeepsTheSlowestSortedAndEvictsTheFastest) {
  const i64 totals[] = {10, 50, 30, 40, 20};
  for (size_t i = 0; i < 5; ++i) {
    attribution().record(OpClass::kRead, grant_only(0, totals[i]), totals[i],
                         /*trace_id=*/100 + i, 500);
  }
  const auto wins = attribution().snapshot_windows(500);
  ASSERT_EQ(wins.size(), 1u);
  const auto& top = wins[0].top;
  ASSERT_EQ(top.size(), 3u);  // top_k = 3
  EXPECT_EQ(top[0].total_ns, 50);
  EXPECT_EQ(top[1].total_ns, 40);
  EXPECT_EQ(top[2].total_ns, 30);
  EXPECT_EQ(top[0].trace_id, 101u);
  EXPECT_EQ(top[1].trace_id, 103u);
  EXPECT_EQ(top[2].trace_id, 102u);
}

TEST_F(AttributionTest, TopKRejectsEntriesNoSlowerThanTheFloor) {
  for (i64 t : {30, 40, 50}) {
    attribution().record(OpClass::kRead, grant_only(0, t), t, 1, 100);
  }
  // 30 ties the current floor: rejected, the set is unchanged.
  attribution().record(OpClass::kRead, grant_only(0, 30), 30, 99, 100);
  const auto wins = attribution().snapshot_windows(100);
  ASSERT_EQ(wins.size(), 1u);
  ASSERT_EQ(wins[0].top.size(), 3u);
  EXPECT_NE(wins[0].top[2].trace_id, 99u);
}

TEST_F(AttributionTest, TopKResetsWithItsWindow) {
  attribution().record(OpClass::kRead, grant_only(0, 999), 999, 1, 100);
  attribution().record(OpClass::kRead, grant_only(kWin, 5), 5, 2, kWin + 50);
  const auto wins = attribution().snapshot_windows(kWin + 50);
  ASSERT_EQ(wins.size(), 2u);
  ASSERT_EQ(wins[1].top.size(), 1u);
  EXPECT_EQ(wins[1].top[0].total_ns, 5);  // the old 999 stayed in window 0
}

// --- SLO watchdog -----------------------------------------------------------

TEST_F(AttributionTest, BreachVerdictFollowsPerClassSlos) {
  AttributionOptions opts;
  opts.window_ns = kWin;
  opts.windows = 4;
  opts.slo_read_ns = 100;
  opts.slo_write_ns = 0;  // writes unbounded
  attribution().configure(opts);

  EXPECT_FALSE(
      attribution().record(OpClass::kRead, grant_only(0, 100), 100, 1, 100));
  EXPECT_TRUE(
      attribution().record(OpClass::kRead, grant_only(0, 101), 101, 2, 101));
  EXPECT_FALSE(
      attribution().record(OpClass::kWrite, grant_only(0, 9999), 9999, 3, 200));
  const auto wins = attribution().snapshot_windows(200);
  ASSERT_EQ(wins.size(), 1u);
  EXPECT_EQ(wins[0].breaches[0], 1u);  // reads
  EXPECT_EQ(wins[0].breaches[1], 0u);  // writes
}

TEST_F(AttributionTest, DisabledRecorderNeverBreaches) {
  AttributionOptions opts;
  opts.slo_read_ns = 1;
  attribution().configure(opts);
  attribution().set_enabled(false);
  EXPECT_FALSE(
      attribution().record(OpClass::kRead, grant_only(0, 1000), 1000, 1, 50));
  EXPECT_TRUE(attribution().snapshot_windows(50).empty());
}

TEST_F(AttributionTest, DetourRecordsIntoTheDetourStage) {
  attribution().record_detour(OpClass::kWrite, 12345, 10);
  const auto wins = attribution().snapshot_windows(10);
  ASSERT_EQ(wins.size(), 1u);
  const auto& h = wins[0].stages[static_cast<size_t>(Stage::kDetour)];
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), 12345);
}

TEST_F(AttributionTest, HeatAndTopJsonAreWellFormed) {
  attribution().record(OpClass::kRead, grant_only(0, 500), 500, 7, 500);
  auto heat = json_parse(attribution().heat_json(500));
  ASSERT_TRUE(heat) << heat.status().to_string();
  ASSERT_TRUE(heat.value()["windows"].is_array());
  auto top = json_parse(attribution().top_json(500));
  ASSERT_TRUE(top) << top.status().to_string();
  ASSERT_TRUE(top.value()["windows"].is_array());
}

// --- AnomalyRecorder --------------------------------------------------------

class AnomalyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    anomaly().reset_for_test();
    dir_ = ::testing::TempDir() + "anomaly_test";
    std::remove((dir_ + "/oaf_anomaly_0.json").c_str());
    std::remove((dir_ + "/oaf_anomaly_1.json").c_str());
  }
  void TearDown() override { anomaly().reset_for_test(); }

  void arm(size_t max_captures = 8, DurNs min_interval = 1'000'000) {
    AnomalyOptions opts;
    opts.dir = dir_;
    opts.max_captures = max_captures;
    opts.min_interval_ns = min_interval;
    // gtest's TempDir always exists; the subdir might not. capture() itself
    // doesn't mkdir, so create it the portable-enough way.
    (void)std::system(("mkdir -p " + dir_).c_str());
    anomaly().configure(opts);
  }

  std::string dir_;
};

TEST_F(AnomalyTest, DisarmedRecorderNeverClaims) {
  EXPECT_EQ(anomaly().begin_capture(0), -1);
}

TEST_F(AnomalyTest, RateLimitGateSpacesClaims) {
  arm(/*max_captures=*/2, /*min_interval=*/1'000'000);
  EXPECT_EQ(anomaly().begin_capture(100), 0);
  EXPECT_EQ(anomaly().begin_capture(200), -1);  // inside the interval
  EXPECT_EQ(anomaly().begin_capture(100 + 1'000'000), 1);
  EXPECT_EQ(anomaly().begin_capture(100 + 3'000'000), -1);  // max_captures
}

TEST_F(AnomalyTest, EventsJsonFiltersByIdAndWindowAndAdjustsTimestamps) {
  AnomalyRecorder rec(64);
  const u32 t = rec.track("test");
  rec.ring().begin(t, "io", "read", /*id=*/42, /*now=*/1000);
  rec.ring().instant(t, "io", "neighbor", /*id=*/7, /*now=*/1500);
  rec.ring().end(t, "io", "read", 42, 2000);
  rec.ring().instant(t, "io", "faraway", /*id=*/8, /*now=*/999'999);

  // id 42 matches outside the window; neighbor falls inside it; faraway is
  // neither and must be excluded. ts_adjust shifts everything by +10.
  const std::string json = rec.events_json(/*trace_id=*/42, /*from=*/1400,
                                           /*to=*/1600, /*ts_adjust=*/10, 64);
  auto doc = json_parse(json);
  ASSERT_TRUE(doc) << doc.status().to_string();
  const auto& arr = doc.value();
  ASSERT_TRUE(arr.is_array());
  ASSERT_EQ(arr.items().size(), 3u);
  EXPECT_EQ(arr.items()[0]["ts_ns"].as_i64(), 1010);
  EXPECT_EQ(arr.items()[1]["ts_ns"].as_i64(), 1510);
  EXPECT_EQ(arr.items()[2]["ts_ns"].as_i64(), 2010);
}

TEST_F(AnomalyTest, CaptureWritesBothHalvesAndTheLedger) {
  arm();
  const u32 t = anomaly().track("capture-test");
  anomaly().ring().begin(t, "io", "read", /*id=*/77, /*now=*/5000);
  anomaly().ring().end(t, "io", "read", 77, 9000);

  const i64 idx = anomaly().begin_capture(10'000);
  ASSERT_EQ(idx, 0);
  AnomalyContext ctx;
  ctx.index = idx;
  ctx.trace_id = 77;
  ctx.op = OpClass::kRead;
  ctx.total_ns = 4000;
  ctx.slo_ns = 1000;
  ctx.stage_ns[static_cast<size_t>(Stage::kGrant)] = 4000;
  ctx.t_from_ns = 4000;
  ctx.t_to_ns = 10'000;
  ctx.clock_offset_ns = 12;
  ctx.remote_pid = 4242;
  ctx.remote_events_json = R"([{"ts_ns":6000,"ph":"i","name":"dev"}])";
  const std::string path = anomaly().capture(ctx);
  ASSERT_FALSE(path.empty());

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string body(1 << 20, '\0');
  body.resize(std::fread(body.data(), 1, body.size(), f));
  std::fclose(f);

  auto doc = json_parse(body);
  ASSERT_TRUE(doc) << doc.status().to_string();
  const auto& root = doc.value();
  EXPECT_EQ(root["trace_id"].as_i64(), 77);
  EXPECT_EQ(root["slo_ns"].as_i64(), 1000);
  EXPECT_EQ(root["stages"]["grant"].as_i64(), 4000);
  EXPECT_EQ(root["remote"]["pid"].as_i64(), 4242);
  ASSERT_TRUE(root["remote"]["events"].is_array());
  EXPECT_EQ(root["remote"]["events"].items().size(), 1u);
  // The breaching I/O's own spans came out of the local ring.
  bool found = false;
  for (const auto& ev : root["local"]["events"].items()) {
    found |= ev["id"].as_i64() == 77;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace oaf::telemetry

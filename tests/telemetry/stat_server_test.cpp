// Live introspection endpoint: line-protocol round-trips, unknown-command
// errors, the built-in help listing, and deterministic stop/restart.
#include "telemetry/stat_server.h"

#include <gtest/gtest.h>

#include <string>

namespace oaf::telemetry {
namespace {

TEST(StatServerTest, RoundTripsRegisteredCommands) {
  StatServer s;
  s.handle("ping", [] { return std::string("pong"); });
  s.handle("metrics", [] { return std::string("# HELP oaf_x_total x\n"); });
  const Status st = s.start(0);
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  EXPECT_TRUE(s.running());
  ASSERT_NE(s.port(), 0);

  auto r = stat_query(s.port(), "ping");
  ASSERT_TRUE(r) << r.status().to_string();
  EXPECT_EQ(r.value(), "pong\n");  // responses are newline-terminated

  auto m = stat_query(s.port(), "metrics");
  ASSERT_TRUE(m);
  EXPECT_EQ(m.value(), "# HELP oaf_x_total x\n");  // no double newline
}

TEST(StatServerTest, UnknownCommandGetsErrLine) {
  StatServer s;
  s.handle("ping", [] { return std::string("pong"); });
  ASSERT_TRUE(s.start(0).is_ok());
  auto r = stat_query(s.port(), "bogus");
  ASSERT_TRUE(r);
  EXPECT_EQ(r.value(), "ERR unknown command bogus\n");
}

TEST(StatServerTest, HelpListsEveryRegisteredCommand) {
  StatServer s;
  s.handle("conns", [] { return std::string("[]"); });
  s.handle("metrics", [] { return std::string(""); });
  ASSERT_TRUE(s.start(0).is_ok());
  auto r = stat_query(s.port(), "help");
  ASSERT_TRUE(r);
  EXPECT_EQ(r.value(), "conns\nmetrics\nhelp\n");
}

TEST(StatServerTest, DoubleStartFailsCleanly) {
  StatServer s;
  ASSERT_TRUE(s.start(0).is_ok());
  EXPECT_FALSE(s.start(0).is_ok());
  EXPECT_TRUE(s.running());  // original listener unaffected
}

TEST(StatServerTest, StopIsDeterministicAndRestartable) {
  StatServer s;
  s.handle("ping", [] { return std::string("pong"); });
  ASSERT_TRUE(s.start(0).is_ok());
  const u16 old_port = s.port();
  s.stop();
  EXPECT_FALSE(s.running());
  EXPECT_EQ(s.port(), 0);
  EXPECT_FALSE(stat_query(old_port, "ping"));  // nothing listening anymore

  ASSERT_TRUE(s.start(0).is_ok());
  auto r = stat_query(s.port(), "ping");
  ASSERT_TRUE(r);
  EXPECT_EQ(r.value(), "pong\n");
}

TEST(StatServerTest, ProviderExceptionsAreNotRequired) {
  // Providers returning large payloads stream fully (response > one recv).
  StatServer s;
  s.handle("big", [] { return std::string(256 * 1024, 'x'); });
  ASSERT_TRUE(s.start(0).is_ok());
  auto r = stat_query(s.port(), "big");
  ASSERT_TRUE(r);
  EXPECT_EQ(r.value().size(), 256 * 1024 + 1);  // + appended newline
  EXPECT_EQ(r.value().back(), '\n');
}

}  // namespace
}  // namespace oaf::telemetry

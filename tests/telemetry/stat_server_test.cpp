// Live introspection endpoint: line-protocol round-trips, unknown-command
// errors, the built-in help listing, and deterministic stop/restart.
#include "telemetry/stat_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace oaf::telemetry {
namespace {

TEST(StatServerTest, RoundTripsRegisteredCommands) {
  StatServer s;
  s.handle("ping", [] { return std::string("pong"); });
  s.handle("metrics", [] { return std::string("# HELP oaf_x_total x\n"); });
  const Status st = s.start(0);
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  EXPECT_TRUE(s.running());
  ASSERT_NE(s.port(), 0);

  auto r = stat_query(s.port(), "ping");
  ASSERT_TRUE(r) << r.status().to_string();
  EXPECT_EQ(r.value(), "pong\n");  // responses are newline-terminated

  auto m = stat_query(s.port(), "metrics");
  ASSERT_TRUE(m);
  EXPECT_EQ(m.value(), "# HELP oaf_x_total x\n");  // no double newline
}

TEST(StatServerTest, UnknownCommandGetsErrLine) {
  StatServer s;
  s.handle("ping", [] { return std::string("pong"); });
  ASSERT_TRUE(s.start(0).is_ok());
  auto r = stat_query(s.port(), "bogus");
  ASSERT_TRUE(r);
  EXPECT_EQ(r.value(), "ERR unknown command bogus\n");
}

TEST(StatServerTest, HelpListsEveryRegisteredCommand) {
  StatServer s;
  s.handle("conns", [] { return std::string("[]"); });
  s.handle("metrics", [] { return std::string(""); });
  ASSERT_TRUE(s.start(0).is_ok());
  auto r = stat_query(s.port(), "help");
  ASSERT_TRUE(r);
  EXPECT_EQ(r.value(), "conns\nmetrics\nhelp\n");
}

TEST(StatServerTest, DoubleStartFailsCleanly) {
  StatServer s;
  ASSERT_TRUE(s.start(0).is_ok());
  EXPECT_FALSE(s.start(0).is_ok());
  EXPECT_TRUE(s.running());  // original listener unaffected
}

TEST(StatServerTest, StopIsDeterministicAndRestartable) {
  StatServer s;
  s.handle("ping", [] { return std::string("pong"); });
  ASSERT_TRUE(s.start(0).is_ok());
  const u16 old_port = s.port();
  s.stop();
  EXPECT_FALSE(s.running());
  EXPECT_EQ(s.port(), 0);
  EXPECT_FALSE(stat_query(old_port, "ping"));  // nothing listening anymore

  ASSERT_TRUE(s.start(0).is_ok());
  auto r = stat_query(s.port(), "ping");
  ASSERT_TRUE(r);
  EXPECT_EQ(r.value(), "pong\n");
}

TEST(StatServerTest, ProviderExceptionsAreNotRequired) {
  // Providers returning large payloads stream fully (response > one recv).
  StatServer s;
  s.handle("big", [] { return std::string(256 * 1024, 'x'); });
  ASSERT_TRUE(s.start(0).is_ok());
  auto r = stat_query(s.port(), "big");
  ASSERT_TRUE(r);
  EXPECT_EQ(r.value().size(), 256 * 1024 + 1);  // + appended newline
  EXPECT_EQ(r.value().back(), '\n');
}

TEST(StatServerTest, StopUnderConcurrentQueriesIsSafe) {
  // Regression: stop() used to close the listening fd BEFORE joining the
  // accept thread, so a stop()/start() cycle could hand the accept loop a
  // recycled fd number belonging to the next listener (or to a query
  // socket). stop() now joins first; this hammers the old window.
  StatServer s;
  std::atomic<u64> hits{0};
  s.handle("ping", [&hits] {
    hits.fetch_add(1, std::memory_order_relaxed);
    return std::string("pong");
  });

  std::atomic<bool> done{false};
  std::atomic<u16> port{0};
  std::vector<std::thread> clients;
  clients.reserve(3);
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&done, &port] {
      while (!done.load(std::memory_order_acquire)) {
        const u16 p = port.load(std::memory_order_acquire);
        if (p == 0) continue;
        // Failure is fine (server mid-restart); crashing or wedging is not.
        (void)stat_query(p, "ping");
      }
    });
  }

  for (int cycle = 0; cycle < 20; ++cycle) {
    ASSERT_TRUE(s.start(0).is_ok());
    port.store(s.port(), std::memory_order_release);
    // Give the clients a beat to land connections on this incarnation.
    while (hits.load(std::memory_order_relaxed) == 0 &&
           stat_query(s.port(), "ping")) {
    }
    port.store(0, std::memory_order_release);
    s.stop();
    EXPECT_FALSE(s.running());
  }
  done.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();

  // The server must come back healthy after the churn.
  ASSERT_TRUE(s.start(0).is_ok());
  auto r = stat_query(s.port(), "ping");
  ASSERT_TRUE(r);
  EXPECT_EQ(r.value(), "pong\n");
}

}  // namespace
}  // namespace oaf::telemetry
